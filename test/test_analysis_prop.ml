(** Property suite for the structural-analysis library.

    Three fronts: the CHK dominator tree against a naive
    reachability-based oracle (a dominates b iff deleting a
    disconnects b from the entry), well-formedness of the natural-loop
    forest (headers dominate their bodies, nesting is a forest,
    back/irreducible edges are classified correctly), and the static
    profile estimator's hard invariant — every estimated profile
    validates and satisfies exact per-block flow conservation on any
    random CFG, including irreducible flow and blocks that cannot
    reach an exit. *)

open Ba_cfg
module Dom = Ba_analysis.Dom
module Loops = Ba_analysis.Loops
module Estimate = Ba_analysis.Estimate
module Profile = Ba_profile.Profile

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let cfg_of ~seed ~max_n =
  let rng = Random.State.make [| 0xD0A1; seed |] in
  Ba_testutil.Gen.cfg rng ~n:(1 + Random.State.int rng max_n)

(* reachability from the entry with one block deleted *)
let reach_without (g : Cfg.t) skip =
  let n = Cfg.n_blocks g in
  let seen = Array.make n false in
  let rec go l =
    if (skip < 0 || l <> skip) && not seen.(l) then begin
      seen.(l) <- true;
      List.iter go (Cfg.successors g l)
    end
  in
  go g.Cfg.entry;
  seen

let prop_dom_oracle =
  QCheck2.Test.make ~count:200 ~name:"dominators match the deletion oracle"
    gen_seed (fun seed ->
      let g = cfg_of ~seed ~max_n:20 in
      let dom = Dom.compute g in
      let n = Cfg.n_blocks g in
      let reachable = reach_without g (-1) in
      for a = 0 to n - 1 do
        let without_a = reach_without g a in
        for b = 0 to n - 1 do
          let expect =
            reachable.(a) && reachable.(b)
            && (a = b || not without_a.(b))
          in
          if Dom.dominates dom a b <> expect then
            QCheck2.Test.fail_reportf "dominates %d %d: got %b, oracle %b"
              a b (Dom.dominates dom a b) expect
        done
      done;
      (* idom/depth consistency on reachable non-entry blocks *)
      for b = 0 to n - 1 do
        if reachable.(b) then
          match Dom.idom dom b with
          | None ->
              if b <> g.Cfg.entry then
                QCheck2.Test.fail_reportf "block %d has no idom" b
          | Some p ->
              if not (Dom.dominates dom p b) then
                QCheck2.Test.fail_reportf "idom %d of %d does not dominate" p b;
              if Dom.depth dom b <> Dom.depth dom p + 1 then
                QCheck2.Test.fail_reportf "depth of %d is not idom depth + 1" b
      done;
      true)

let prop_loop_forest =
  QCheck2.Test.make ~count:200 ~name:"loop forest is well-formed" gen_seed
    (fun seed ->
      let g = cfg_of ~seed ~max_n:30 in
      let dom = Dom.compute g in
      let loops = Loops.compute dom in
      let n = Cfg.n_blocks g in
      let larr = Loops.loops loops in
      Array.iteri
        (fun li (l : Loops.loop) ->
          (* nesting is a forest: parents are discovered later (outer) *)
          if l.Loops.parent >= 0 then begin
            if l.Loops.parent <= li then
              QCheck2.Test.fail_reportf "loop %d has parent %d" li l.Loops.parent;
            let p = larr.(l.Loops.parent) in
            if l.Loops.depth <> p.Loops.depth + 1 then
              QCheck2.Test.fail_reportf "loop %d depth is not parent depth + 1" li;
            if not (Dom.dominates dom p.Loops.header l.Loops.header) then
              QCheck2.Test.fail_reportf
                "outer header %d does not dominate inner header %d"
                p.Loops.header l.Loops.header
          end
          else if l.Loops.depth <> 1 then
            QCheck2.Test.fail_reportf "top-level loop %d has depth %d" li
              l.Loops.depth;
          (* back edges are CFG edges whose target dominates the tail *)
          List.iter
            (fun (t, h) ->
              if h <> l.Loops.header then
                QCheck2.Test.fail_reportf "back edge of loop %d targets %d" li h;
              if not (Block.has_successor (Cfg.block g t) h) then
                QCheck2.Test.fail_reportf "back edge %d->%d is not an edge" t h;
              if not (Dom.dominates dom h t) then
                QCheck2.Test.fail_reportf "header %d does not dominate tail %d" h t)
            l.Loops.back_edges;
          if l.Loops.back_edges = [] then
            QCheck2.Test.fail_reportf "loop %d has no back edge" li)
        larr;
      (* headers dominate every member; membership is ancestor-closed *)
      for b = 0 to n - 1 do
        let li = Loops.innermost loops b in
        if li >= 0 then begin
          let rec up j =
            if j >= 0 then begin
              if not (Loops.mem loops j b) then
                QCheck2.Test.fail_reportf "block %d not member of ancestor %d" b j;
              if not (Dom.dominates dom larr.(j).Loops.header b) then
                QCheck2.Test.fail_reportf "header of loop %d does not dominate %d"
                  j b;
              up larr.(j).Loops.parent
            end
          in
          up li;
          if Loops.depth_of loops b <> larr.(li).Loops.depth then
            QCheck2.Test.fail_reportf "depth_of %d disagrees with its loop" b
        end
      done;
      (* direct-member counts add up *)
      let counted = Array.make (Array.length larr) 0 in
      for b = 0 to n - 1 do
        let li = Loops.innermost loops b in
        if li >= 0 then counted.(li) <- counted.(li) + 1
      done;
      Array.iteri
        (fun li (l : Loops.loop) ->
          if counted.(li) <> l.Loops.n_blocks then
            QCheck2.Test.fail_reportf "loop %d n_blocks %d, counted %d" li
              l.Loops.n_blocks counted.(li))
        larr;
      (* irreducible witnesses: retreating CFG edges, target not dominating *)
      List.iter
        (fun (u, v) ->
          if not (Block.has_successor (Cfg.block g u) v) then
            QCheck2.Test.fail_reportf "irreducible %d->%d is not an edge" u v;
          if Dom.rpo_number dom v > Dom.rpo_number dom u then
            QCheck2.Test.fail_reportf "irreducible %d->%d is not retreating" u v;
          if Dom.dominates dom v u then
            QCheck2.Test.fail_reportf "irreducible %d->%d is a back edge" u v)
        (Loops.irreducible loops);
      true)

(* the estimator's hard invariant: validate + exact Kirchhoff *)
let check_flow (g : Cfg.t) (p : Profile.proc) =
  let n = Cfg.n_blocks g in
  let inflow = Array.make n 0 in
  Array.iter
    (Array.iter (fun (d, c) -> inflow.(d) <- inflow.(d) + c))
    p.Profile.freqs;
  for b = 0 to n - 1 do
    let out = Profile.out_count p b in
    match (Cfg.block g b).Block.term with
    | Block.Exit -> ()
    | _ when b = g.Cfg.entry ->
        if out < inflow.(b) then
          QCheck2.Test.fail_reportf "entry %d: outflow %d < inflow %d" b out
            inflow.(b)
    | _ ->
        if out <> inflow.(b) then
          QCheck2.Test.fail_reportf "block %d: outflow %d <> inflow %d" b out
            inflow.(b)
  done

let prop_estimate_valid =
  QCheck2.Test.make ~count:300
    ~name:"estimated profiles validate and conserve flow exactly" gen_seed
    (fun seed ->
      let g = cfg_of ~seed ~max_n:60 in
      let profile = Estimate.program [| g |] in
      (match Profile.validate [| g |] profile with
      | Ok () -> ()
      | Error e ->
          QCheck2.Test.fail_reportf "estimate does not validate: %s"
            (Ba_robust.Errors.to_string e));
      check_flow g profile.Profile.procs.(0);
      (* no profile-rule errors, and BA207 must not fire at all *)
      let report =
        Ba_check.Lint.analyze ~profile [| g |]
      in
      List.iter
        (fun (d : Ba_check.Diagnostic.t) ->
          if
            String.length d.code >= 3
            && String.sub d.code 0 3 = "BA2"
            && d.severity = Ba_check.Diagnostic.Error
          then
            QCheck2.Test.fail_reportf "estimate trips %s (%s)" d.code d.rule;
          if d.rule = "prof-flow-conservation" then
            QCheck2.Test.fail_reportf "estimate leaks flow: %s" d.message)
        report.Ba_check.Lint.diags;
      true)

let prop_estimate_deterministic =
  QCheck2.Test.make ~count:100 ~name:"estimation is deterministic" gen_seed
    (fun seed ->
      let g = cfg_of ~seed ~max_n:60 in
      let a = Estimate.proc g and b = Estimate.proc g in
      if a <> b then QCheck2.Test.fail_report "two estimates differ";
      true)

let () =
  Alcotest.run "analysis-prop"
    [
      ( "dominators",
        [ QCheck_alcotest.to_alcotest prop_dom_oracle ] );
      ( "loops",
        [ QCheck_alcotest.to_alcotest prop_loop_forest ] );
      ( "estimate",
        [
          QCheck_alcotest.to_alcotest prop_estimate_valid;
          QCheck_alcotest.to_alcotest prop_estimate_deterministic;
        ] );
    ]
