(* Tests for the experiment harness: runner invariants, the synthetic
   corpus, the appendix study and the table printers. *)

module W = Ba_workloads.Workload
module R = Ba_harness.Runner

(* run once, share across tests: the smallest benchmark keeps this fast *)
let row =
  lazy
    (let w = W.su2 in
     R.run_benchmark w ~test:(snd w.W.datasets))

let test_row_basic_invariants () =
  let r = Lazy.force row in
  Alcotest.(check string) "bench" "su2" r.R.bench;
  Alcotest.(check string) "ds" "sh" r.R.ds;
  Alcotest.(check string) "cross-trains on sibling" "re" r.R.train_ds;
  Alcotest.(check bool) "has blocks" true (r.R.n_blocks > 0);
  Alcotest.(check bool) "touched <= sites" true
    (r.R.branch_sites_touched <= r.R.branch_sites);
  Alcotest.(check bool) "executed branches positive" true (r.R.executed_branches > 0)

let test_row_penalty_ordering () =
  let r = Lazy.force row in
  (* tsp <= greedy <= original, and the bound is below everything *)
  Alcotest.(check bool) "tsp <= greedy" true
    (r.R.tsp_self.R.penalty <= r.R.greedy_self.R.penalty);
  Alcotest.(check bool) "greedy <= original" true
    (r.R.greedy_self.R.penalty <= r.R.original.R.penalty);
  Alcotest.(check bool) "bound <= tsp" true
    (r.R.lower_bound <= r.R.tsp_self.R.penalty);
  Alcotest.(check bool) "bound >= 0" true (r.R.lower_bound >= 0)

let test_row_cross_validation_sane () =
  let r = Lazy.force row in
  (* cross-trained results are well-defined and can't beat the
     self-trained TSP optimum on the same testing profile *)
  Alcotest.(check bool) "tsp self optimal for its own profile" true
    (r.R.tsp_self.R.penalty <= r.R.tsp_cross.R.penalty);
  Alcotest.(check bool) "cross penalties non-negative" true
    (r.R.greedy_cross.R.penalty >= 0 && r.R.tsp_cross.R.penalty >= 0)

let test_row_cycles_sane () =
  let r = Lazy.force row in
  Alcotest.(check bool) "cycles positive" true (r.R.original.R.cycles > 0);
  (* aligned programs never add penalty cycles on the training=testing
     input, and the cycle model is dominated by instruction count, so
     aligned cycles stay within the original's total *)
  Alcotest.(check bool) "tsp cycles <= original cycles" true
    (r.R.tsp_self.R.cycles <= r.R.original.R.cycles)

let test_row_timings_recorded () =
  let r = Lazy.force row in
  let s = r.R.stages in
  Alcotest.(check bool) "compile timed" true (s.Ba_harness.Timing.compile_s >= 0.0);
  Alcotest.(check bool) "solver timed" true (s.Ba_harness.Timing.solve_s >= 0.0);
  Alcotest.(check bool) "profile timed" true (s.Ba_harness.Timing.profile_s > 0.0)

(* ---------------- synthetic corpus ---------------- *)

let test_synthetic_instances_valid () =
  let corpus = Ba_harness.Synthetic.corpus ~sizes:[ 5; 9; 14 ] ~per_size:3 () in
  Alcotest.(check int) "corpus size" 9 (List.length corpus);
  List.iter
    (fun { Ba_harness.Synthetic.name; g; prof } ->
      (match Ba_cfg.Cfg.validate g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" name m);
      match Ba_profile.Profile.validate_proc g prof with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s profile: %s" name m)
    corpus

let test_synthetic_deterministic () =
  let c1 = Ba_harness.Synthetic.corpus ~seed:5 ~sizes:[ 8 ] ~per_size:2 () in
  let c2 = Ba_harness.Synthetic.corpus ~seed:5 ~sizes:[ 8 ] ~per_size:2 () in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "same cfg" true
        (Array.for_all2 Ba_cfg.Block.equal a.Ba_harness.Synthetic.g.Ba_cfg.Cfg.blocks
           b.Ba_harness.Synthetic.g.Ba_cfg.Cfg.blocks))
    c1 c2

let test_workload_instances () =
  let insts = Ba_harness.Synthetic.workload_instances () in
  (* at least one instance per benchmark *)
  Alcotest.(check bool) "enough instances" true (List.length insts >= 6);
  List.iter
    (fun { Ba_harness.Synthetic.name; g; prof } ->
      match Ba_profile.Profile.validate_proc g prof with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" name m)
    insts

(* ---------------- appendix study ---------------- *)

let test_appendix_study () =
  let corpus = Ba_harness.Synthetic.corpus ~sizes:[ 6; 9; 12 ] ~per_size:2 () in
  let s = Ba_harness.Appendix.study corpus in
  Alcotest.(check int) "all instances analyzed" 6
    (List.length s.Ba_harness.Appendix.instances);
  Alcotest.(check bool) "all proven (small sizes)" true
    (s.Ba_harness.Appendix.n_proven = 6);
  List.iter
    (fun (r : Ba_harness.Appendix.per_instance) ->
      Alcotest.(check bool) (r.Ba_harness.Appendix.name ^ " ap <= tour") true
        (r.Ba_harness.Appendix.ap <= r.Ba_harness.Appendix.tour_cost);
      Alcotest.(check bool) (r.Ba_harness.Appendix.name ^ " hk <= tour") true
        (r.Ba_harness.Appendix.hk <= r.Ba_harness.Appendix.tour_cost);
      match r.Ba_harness.Appendix.opt with
      | Some o ->
          Alcotest.(check int)
            (r.Ba_harness.Appendix.name ^ " tour = optimum")
            o r.Ba_harness.Appendix.tour_cost
      | None -> ())
    s.Ba_harness.Appendix.instances

(* ---------------- extension experiments ---------------- *)

let test_dyn_exp_row () =
  let w = W.su2 in
  let r = Ba_harness.Dyn_exp.run_one w ~test:(snd w.W.datasets) in
  let o_s, g_s, t_s = r.Ba_harness.Dyn_exp.static_ in
  let o_d, g_d, t_d = r.Ba_harness.Dyn_exp.dynamic in
  Alcotest.(check bool) "static ordering" true (t_s <= g_s && g_s <= o_s);
  Alcotest.(check bool) "dynamic penalties positive" true
    (o_d > 0 && g_d > 0 && t_d > 0);
  (* the hardware-predicted penalties of aligned layouts stay below the
     original layout's *)
  Alcotest.(check bool) "aligned better under hardware too" true
    (g_d < o_d && t_d < o_d)

let test_interproc_experiment () =
  let r = Ba_harness.Interproc.run ~n_funcs:10 ~iterations:1_500 () in
  Alcotest.(check int) "procedures" 12 r.Ba_harness.Interproc.n_funcs;
  (* 10 workers + pick + main *)
  Alcotest.(check bool) "calls recorded" true (r.Ba_harness.Interproc.calls > 0);
  match r.Ba_harness.Interproc.placements with
  | [ decl; ph; byw; spread ] ->
      Alcotest.(check bool) "all simulated" true
        (decl.Ba_harness.Interproc.cycles > 0
        && ph.Ba_harness.Interproc.cycles > 0
        && byw.Ba_harness.Interproc.cycles > 0
        && spread.Ba_harness.Interproc.cycles > 0);
      (* call-graph-aware placement must not lose to the adversarial one *)
      Alcotest.(check bool) "ph <= spread misses" true
        (ph.Ba_harness.Interproc.icache_misses
        <= spread.Ba_harness.Interproc.icache_misses)
  | _ -> Alcotest.fail "expected four placements"

let test_csv_rendering () =
  let r = Lazy.force row in
  let lines = Ba_harness.Csv.rows_csv [ r ] in
  Alcotest.(check int) "header + one row" 2 (List.length lines);
  let cols s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "row width matches header"
    (cols (List.nth lines 0))
    (cols (List.nth lines 1));
  Alcotest.(check bool) "names first" true
    (String.length (List.nth lines 1) > 6
    && String.sub (List.nth lines 1) 0 4 = "su2,")

(* ---------------- table printers ---------------- *)

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Fmt.with_buffer buf in
  f ppf;
  Fmt.flush ppf ();
  Buffer.contents buf

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_printers () =
  let r = Lazy.force row in
  let rows = [ r ] in
  let t1 = render (fun ppf -> Ba_harness.Tables.table1 ppf rows) in
  Alcotest.(check bool) "table1 lists su2" true (contains ~sub:"su2" t1);
  let t3 =
    render (fun ppf -> Ba_harness.Tables.table3 ppf Ba_machine.Penalties.alpha_21164)
  in
  Alcotest.(check bool) "table3 has mispredict row" true
    (contains ~sub:"mispredict" t3);
  let t4 = render (fun ppf -> Ba_harness.Tables.table4 ppf rows) in
  Alcotest.(check bool) "table4 header" true (contains ~sub:"lower-bound" t4);
  let f2 = render (fun ppf -> Ba_harness.Tables.fig2_penalties ppf rows) in
  Alcotest.(check bool) "fig2 normalized" true (contains ~sub:"MEAN" f2);
  let f3 = render (fun ppf -> Ba_harness.Tables.fig3_times ppf rows) in
  Alcotest.(check bool) "fig3 cross column" true (contains ~sub:"tsp-cross" f3);
  let sum = render (fun ppf -> Ba_harness.Tables.summary ppf rows) in
  Alcotest.(check bool) "summary mentions bound" true (contains ~sub:"bound" sum)

let () =
  Alcotest.run "ba_harness"
    [
      ( "runner",
        [
          Alcotest.test_case "basic invariants" `Slow test_row_basic_invariants;
          Alcotest.test_case "penalty ordering" `Slow test_row_penalty_ordering;
          Alcotest.test_case "cross-validation sane" `Slow
            test_row_cross_validation_sane;
          Alcotest.test_case "cycles sane" `Slow test_row_cycles_sane;
          Alcotest.test_case "timings recorded" `Slow test_row_timings_recorded;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "instances valid" `Quick test_synthetic_instances_valid;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "workload instances" `Slow test_workload_instances;
        ] );
      ("appendix", [ Alcotest.test_case "study" `Slow test_appendix_study ]);
      ( "extensions",
        [
          Alcotest.test_case "dynamic-prediction row" `Slow test_dyn_exp_row;
          Alcotest.test_case "interprocedural experiment" `Slow
            test_interproc_experiment;
          Alcotest.test_case "csv rendering" `Slow test_csv_rendering;
        ] );
      ("tables", [ Alcotest.test_case "printers" `Slow test_table_printers ]);
    ]
