CLI end-to-end tests: the documented exit codes, parallel
bit-identity, and the observability artifacts (--trace / --metrics /
bench --json), validated structurally with check_trace.

  $ export BALIGN=../../bin/balign.exe CT=../tools/check_trace.exe
  $ cat > p.mc <<'EOF'
  > fn main() {
  >   var n = read();
  >   var s = 0;
  >   while (n > 0) {
  >     if (n % 2 == 0) { s = s + n; } else { s = s - 1; }
  >     n = n - 1;
  >   }
  >   print(s);
  > }
  > EOF

A successful alignment is deterministic, so its full output is golden:

  $ $BALIGN align p.mc --input 9
  main: 0 4 6 1 2 5 3
  control penalty: 61 -> 37 cycles (tsp)
  simulated cycles: 295 -> 259 (icache misses 4 -> 4)

Documented failure exit codes (stderr suppressed; the typed messages
are covered by test_robust):

  $ $BALIGN align p.mc --input 1 --input-file p.mc 2>/dev/null
  [2]
  $ printf 'fn main( {' > bad.mc
  $ $BALIGN compile bad.mc 2>/dev/null
  [3]
  $ $BALIGN align p.mc --input 1,two 2>/dev/null
  [4]
  $ $BALIGN align p.mc --deadline-ms 0 --fallback none 2>/dev/null
  [7]
  $ mkdir dir.d && $BALIGN align p.mc --input-file dir.d 2>/dev/null
  [9]

The codes are documented in every subcommand's man page:

  $ $BALIGN align --help=plain 2>/dev/null | grep -c "budget exhausted"
  1

Output is bit-identical at any job count:

  $ $BALIGN align p.mc --input 9 --jobs 1 > j1.out 2>/dev/null
  $ $BALIGN align p.mc --input 9 --jobs max > jmax.out 2>/dev/null
  $ cmp j1.out jmax.out

--model selects the cost model.  The default is the paper's Alpha
21164, so naming it changes nothing; deep-pipeline re-prices the same
machine; ext-tsp:512 swaps the layout objective entirely (the penalty
is still reported in Alpha cycles for comparability).  Names outside
the registry are rejected at the command line:

  $ $BALIGN align p.mc --input 9 --model alpha21164 > flag.out
  $ $BALIGN align p.mc --input 9 > noflag.out
  $ cmp flag.out noflag.out
  $ $BALIGN align p.mc --input 9 --model deep-pipeline
  main: 0 4 6 1 2 5 3
  control penalty: 86 -> 62 cycles (tsp)
  simulated cycles: 320 -> 284 (icache misses 4 -> 4)
  $ $BALIGN align p.mc --input 9 --model ext-tsp:512
  main: 0 5 6 1 2 4 3
  control penalty: 61 -> 40 cycles (tsp)
  simulated cycles: 295 -> 261 (icache misses 4 -> 4)
  $ $BALIGN align p.mc --input 9 --model vliw-9000 2>/dev/null
  [124]

--trace writes a loadable Chrome trace_event file.  align runs the
requested and the original layouts, so two task groups appear:

  $ $BALIGN align p.mc --input 9 --trace t.json > /dev/null
  $ $CT t.json
  trace ok: 2 task groups

--metrics renders the same snapshot as JSON or CSV, picked by
extension:

  $ $BALIGN align p.mc --input 9 --metrics m.json > /dev/null
  $ $CT --metrics m.json
  metrics ok: 28 counters, 7 gauges
  $ $BALIGN align p.mc --input 9 --metrics m.csv > /dev/null
  $ head -1 m.csv
  metric,value
  $ grep -c '^engine.tasks_run,' m.csv
  1

bench --json emits the machine-readable trajectory (stdout tables
carry wall-clock columns, so only the artifact's shape is checked):

  $ $BALIGN bench com --json b.json --jobs 2 > /dev/null 2>&1
  $ $CT --bench b.json
  bench ok: 2 rows

balign analyze reports the structural analysis (dominators, loop
forest, static profile estimate) without running the program:

  $ $BALIGN analyze p.mc
  proc 0 (main): 7 block(s) (7 reachable), 8 edge(s), dom height 3
    loops: 1 (max depth 1), back edge(s) 1, irreducible edge(s) 0
      loop at block 1: depth 1, 5 block(s)
    estimated hotness (10000 invocations, 522856 transfers): 1:135714 2:125714 6:125714 4:62857 5:62857

The JSON rendering (schema balign-analyze-1) is validated
structurally, both for a compiled program and for a synthetic scale
family analyzed straight from the generator:

  $ $BALIGN analyze p.mc --format json > a.json
  $ $CT --analyze a.json
  analyze ok: 1 procs
  $ $BALIGN analyze --scale switch:5000 --format json > as.json
  $ $CT --analyze as.json
  analyze ok: 1 procs

FILE and --scale are exclusive, and one of them is required:

  $ $BALIGN analyze p.mc --scale switch:5000 2>/dev/null
  [2]
  $ $BALIGN analyze 2>/dev/null
  [2]
  $ $BALIGN analyze --scale bogus:10 2>/dev/null
  [2]

--profile static trains layouts on the structural estimate instead of
a collected profile (measurements still use the collected testing
profile); the default invocation's output is untouched:

  $ $BALIGN align p.mc --input 9 --profile static
  training profile: static estimate (no training run)
  main: 0 5 6 1 2 4 3
  control penalty: 61 -> 40 cycles (tsp)
  simulated cycles: 295 -> 261 (icache misses 4 -> 4)
  $ $BALIGN evaluate p.mc --train-input 9 --test-input 27 --profile static
  method                 train=test  cross-trained static-trained
  original                      178            178            181
  greedy                        100            100            103
  calder                        100            100            103
  btfnt                         100            100            103
  tsp                           100            100            103

bench grows two always-measured static-trained rows (tsp_static /
greedy_static in --json, certified like the rest) and, under
--profile static, a human-readable recovery table:

  $ $BALIGN bench com --profile static --jobs 2 2>/dev/null | tail -6
  Static estimation: penalty recovered without a training run (vs original)
  ------------------------------------------------------------------------------
  bench.ds          orig     tsp-self   tsp-static    recovered  greedy-self  g-recovered
  com.in          761451       398240       416378        0.950       481906        1.000
  com.st          796738       315008       346980        0.934       445272        1.000
  MEAN                                                    0.942                     1.000   (means)
