Serve daemon end-to-end over the real CLI: length-prefixed frames on
stdin, certified responses or typed errors on stdout, crash-only exits
(always 0 once serving), warm restart from the persisted cache, and
SIGTERM drain.

  $ export BALIGN=../../bin/balign.exe
  $ frame() { printf '%s\n' "${#1}"; printf '%s\n' "$1"; }
  $ req='{"id":1,"verb":"align","cfg":{"name":"f","entry":0,"blocks":[{"size":4,"term":{"kind":"branch","t":1,"f":2}},{"size":2,"term":{"kind":"goto","to":3}},{"size":7,"term":{"kind":"goto","to":3}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[[1,10],[2,90]],[[3,10]],[[3,90]],[]]}'
  $ shut='{"id":9,"verb":"shutdown"}'

Happy path: a certified layout, then the identical request again — a
cache hit, bit-identical, same certified cost.  Mixed in: an invalid
CFG, an unknown verb, and garbage JSON, each answered with its
documented error class and exit code while the daemon keeps serving.
The stream ends with the shutdown verb and exit 0:

  $ bad='{"id":2,"verb":"align","cfg":{"name":"f","entry":9,"blocks":[{"size":1,"term":{"kind":"exit"}}]},"profile":[[]]}'
  $ verb='{"id":3,"verb":"frobnicate"}'
  $ { frame "$req"; frame "$req"; frame "$bad"; frame "$verb"; frame '@garbage'; frame "$shut"; } | $BALIGN serve
  93
  {"id":1,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":false,"warm":false,"fallbacks":0}
  92
  {"id":1,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":true,"warm":false,"fallbacks":0}
  134
  {"id":2,"status":"error","error":{"class":"invalid-cfg","exit_code":5,"message":"invalid CFG (f): Cfg.make(f): entry 9 out of range"}}
  112
  {"id":3,"status":"error","error":{"class":"usage","exit_code":2,"message":"usage: unknown verb \"frobnicate\""}}
  132
  {"id":null,"status":"error","error":{"class":"parse-error","exit_code":3,"message":"frame-json: at byte 0: unexpected character @"}}
  28
  {"id":9,"status":"shutdown"}

One daemon, several cost models: requests may carry an options.model
field (default: the server's --model).  Each model keys its own cache
slice — the second round of identical requests hits for every model,
and the costs differ because the objectives do (70 Alpha penalty
cycles, 120 under deep-pipeline, a scaled Ext-TSP objective for
ext-tsp:512).  A model name outside the registry is a typed
unknown-model error and the daemon keeps serving:

  $ deep='{"id":2,"verb":"align","options":{"model":"deep-pipeline"},"cfg":{"name":"f","entry":0,"blocks":[{"size":4,"term":{"kind":"branch","t":1,"f":2}},{"size":2,"term":{"kind":"goto","to":3}},{"size":7,"term":{"kind":"goto","to":3}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[[1,10],[2,90]],[[3,10]],[[3,90]],[]]}'
  $ ext='{"id":3,"verb":"align","options":{"model":"ext-tsp:512"},"cfg":{"name":"f","entry":0,"blocks":[{"size":4,"term":{"kind":"branch","t":1,"f":2}},{"size":2,"term":{"kind":"goto","to":3}},{"size":7,"term":{"kind":"goto","to":3}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[[1,10],[2,90]],[[3,10]],[[3,90]],[]]}'
  $ unk='{"id":4,"verb":"align","options":{"model":"vliw-9000"},"cfg":{"name":"f","entry":0,"blocks":[{"size":1,"term":{"kind":"exit"}}]},"profile":[[]]}'
  $ { frame "$req"; frame "$deep"; frame "$ext"; frame "$req"; frame "$deep"; frame "$ext"; frame "$unk"; frame "$shut"; } | $BALIGN serve
  93
  {"id":1,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":false,"warm":false,"fallbacks":0}
  94
  {"id":2,"status":"ok","layout":[0,2,3,1],"cost":120,"cached":false,"warm":false,"fallbacks":0}
  96
  {"id":3,"status":"ok","layout":[0,2,3,1],"cost":20000,"cached":false,"warm":false,"fallbacks":0}
  92
  {"id":1,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":true,"warm":false,"fallbacks":0}
  93
  {"id":2,"status":"ok","layout":[0,2,3,1],"cost":120,"cached":true,"warm":false,"fallbacks":0}
  95
  {"id":3,"status":"ok","layout":[0,2,3,1],"cost":20000,"cached":true,"warm":false,"fallbacks":0}
  185
  {"id":4,"status":"error","error":{"class":"unknown-model","exit_code":2,"message":"unknown model \"vliw-9000\" (known: alpha21164, deep-pipeline, free-fetch, ext-tsp, ext-tsp:WINDOW)"}}
  28
  {"id":9,"status":"shutdown"}

An oversized frame is skipped without buffering it and the stream stays
synchronized — the shutdown frame right behind it is still served:

  $ { frame "$req"; frame "$shut"; } | $BALIGN serve --max-frame-bytes 64
  136
  {"id":null,"status":"error","error":{"class":"parse-error","exit_code":3,"message":"frame: frame of 276 bytes exceeds the limit of 64"}}
  28
  {"id":9,"status":"shutdown"}

Stream corruption (truncated frame, garbage length header) produces one
final typed error and a clean exit 0 — the crash-only contract leaves
restarts to the supervisor:

  $ printf '500\npartial' | $BALIGN serve
  116
  {"id":null,"status":"error","error":{"class":"parse-error","exit_code":3,"message":"frame: stream ended mid-frame"}}
  $ printf 'not-a-length\n' | $BALIGN serve
  128
  {"id":null,"status":"error","error":{"class":"parse-error","exit_code":3,"message":"frame: bad length header \"not-a-length\""}}

A client that hangs up before reading its response must not kill the
daemon: SIGPIPE is ignored, the failed write ends that conversation,
and the exit stays 0.  (The fifo's read end is opened and closed
immediately, so the daemon's response write hits a reader-less pipe.)

  $ mkfifo gone.fifo
  $ { frame "$req"; frame "$req"; } | $BALIGN serve > gone.fifo & gpid=$!
  $ : < gone.fifo
  $ wait $gpid; echo "exit=$?"
  exit=0

Warm restart: a second daemon pointed at the same --cache-file answers
the very first request from the persisted, re-certified cache:

  $ { frame "$req"; frame "$shut"; } | $BALIGN serve --cache-file cache.json > /dev/null
  $ { frame "$req"; frame "$shut"; } | $BALIGN serve --cache-file cache.json | grep -o '"cached":[a-z]*'
  "cached":true

SIGTERM drains: the daemon finishes answering, persists, and exits 0
instead of dying mid-request:

  $ mkfifo in.fifo
  $ $BALIGN serve < in.fifo > drain.out & spid=$!
  $ exec 9> in.fifo
  $ frame "$req" >&9
  $ sleep 1
  $ kill -TERM $spid
  $ wait $spid; echo "exit=$?"
  exit=0
  $ exec 9>&-
  $ grep -c '"status":"ok"' drain.out
  1

Training regimes: an options.profile field picks collected (default)
or static — the Wu-Larus structural estimate replaces the submitted
profile before the cache key is computed, so the two regimes key
separate cache slices (the repeated static request hits, warm from
the collected entry's structural twin) and a bad mode is a typed
error the daemon survives:

  $ stat='{"id":2,"verb":"align","options":{"profile":"static"},"cfg":{"name":"f","entry":0,"blocks":[{"size":4,"term":{"kind":"branch","t":1,"f":2}},{"size":2,"term":{"kind":"goto","to":3}},{"size":7,"term":{"kind":"goto","to":3}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[[1,10],[2,90]],[[3,10]],[[3,90]],[]]}'
  $ badp='{"id":3,"verb":"align","options":{"profile":"psychic"},"cfg":{"name":"f","entry":0,"blocks":[{"size":1,"term":{"kind":"exit"}}]},"profile":[[]]}'
  $ { frame "$req"; frame "$stat"; frame "$stat"; frame "$badp"; frame "$shut"; } | $BALIGN serve
  93
  {"id":1,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":false,"warm":false,"fallbacks":0}
  95
  {"id":2,"status":"ok","layout":[0,1,3,2],"cost":35000,"cached":false,"warm":true,"fallbacks":0}
  95
  {"id":2,"status":"ok","layout":[0,1,3,2],"cost":35000,"cached":true,"warm":false,"fallbacks":0}
  138
  {"id":3,"status":"error","error":{"class":"usage","exit_code":2,"message":"usage: unknown profile mode \"psychic\" (collected | static)"}}
  28
  {"id":9,"status":"shutdown"}

Starting the daemon with --profile static flips the default; an
explicit options.profile always wins:

  $ coll='{"id":2,"verb":"align","options":{"profile":"collected"},"cfg":{"name":"f","entry":0,"blocks":[{"size":4,"term":{"kind":"branch","t":1,"f":2}},{"size":2,"term":{"kind":"goto","to":3}},{"size":7,"term":{"kind":"goto","to":3}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[[1,10],[2,90]],[[3,10]],[[3,90]],[]]}'
  $ { frame "$req"; frame "$coll"; frame "$shut"; } | $BALIGN serve --profile static
  96
  {"id":1,"status":"ok","layout":[0,1,3,2],"cost":35000,"cached":false,"warm":false,"fallbacks":0}
  92
  {"id":2,"status":"ok","layout":[0,2,3,1],"cost":70,"cached":false,"warm":true,"fallbacks":0}
  28
  {"id":9,"status":"shutdown"}
