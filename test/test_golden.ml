(** Golden-file tests for the CSV exports.

    Two layers: (a) the committed [results/*.csv] artifacts must carry
    exactly the headers and row shape the current {!Ba_harness.Csv}
    code emits — catching silent schema drift between code and
    artifacts; (b) a tiny deterministic workload renders through
    [rows_csv]/[timing_csv] and must match committed golden files
    byte-for-byte (run-dependent timing columns masked). *)

module Csv = Ba_harness.Csv
module Runner = Ba_harness.Runner
module Workload = Ba_workloads.Workload

(* ---------------- locating the source tree ---------------- *)

let repo_root () =
  let rec up dir n =
    if n = 0 then Alcotest.fail "repo root not found above cwd"
    else if
      Sys.file_exists (Filename.concat dir "results")
      && Sys.file_exists (Filename.concat dir "dune-project")
    then dir
    else up (Filename.dirname dir) (n - 1)
  in
  up (Sys.getcwd ()) 8

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* ---------------- (a) committed artifacts match the code ---------------- *)

let rows_header = List.hd (Csv.rows_csv [])
let timing_header = List.hd (Csv.timing_csv [])

let appendix_header =
  List.hd
    (Csv.appendix_csv
       {
         Ba_harness.Appendix.instances = [];
         n_ap_exact = 0;
         n_proven = 0;
         median_ap_gap_pct = 0.;
         max_ap_ratio = 0.;
         mean_hk_gap_pct = 0.;
         max_hk_gap_pct = 0.;
         all_runs_found_best = 0;
         mean_patching_excess_pct = 0.;
         patching_wins_or_ties = 0;
       })

let n_fields line =
  List.length (String.split_on_char ',' line)

let check_artifact name ~header =
  let path = Filename.concat (repo_root ()) (Filename.concat "results" name) in
  match read_lines path with
  | [] -> Alcotest.failf "%s is empty" name
  | hd :: rows ->
      Alcotest.(check string) (name ^ " header") header hd;
      Alcotest.(check bool) (name ^ " has rows") true (rows <> []);
      List.iteri
        (fun i row ->
          Alcotest.(check int)
            (Printf.sprintf "%s row %d field count" name (i + 1))
            (n_fields header) (n_fields row))
        rows

let test_artifact_headers () =
  check_artifact "spec92.csv" ~header:rows_header;
  check_artifact "spec95.csv" ~header:rows_header;
  check_artifact "timing92.csv" ~header:timing_header;
  check_artifact "timing95.csv" ~header:timing_header;
  check_artifact "appendix.csv" ~header:appendix_header

(* ---------------- (b) golden render of a tiny workload ---------------- *)

(* Small fixed program: one skewed loop, enough branch sites for every
   aligner to do real work, fast enough for a unit test. *)
let tiny_source =
  "fn weigh(x) {\n\
  \  var acc = 0;\n\
  \  while (x > 0) {\n\
  \    if (x % 3 == 0) { acc = acc + 2; } else { acc = acc - 1; }\n\
  \    if (x % 7 == 0) { acc = acc * 2; }\n\
  \    x = x - 1;\n\
  \  }\n\
  \  return acc;\n\
  }\n\
  fn main() {\n\
  \  var n = read();\n\
  \  var total = 0;\n\
  \  for (var i = 1; i <= n; i = i + 1) { total = total + weigh(i); }\n\
  \  print(total);\n\
  \  return 0;\n\
  }\n"

let tiny_workload =
  {
    Workload.name = "tiny";
    paper_name = "000.tiny";
    description = "golden-test fixture";
    source = tiny_source;
    datasets =
      ( { Workload.ds_name = "a"; input = [| 25 |]; ds_description = "short" },
        { Workload.ds_name = "b"; input = [| 60 |]; ds_description = "long" }
      );
  }

(** Blank out the run-dependent timing columns, keeping the identity
    columns (bench, ds) and the deterministic sample count
    [n_solves]. *)
let mask_timing_row ~header row =
  let cols = String.split_on_char ',' (String.concat "" [ header ]) in
  let keep = [ "bench"; "ds"; "n_solves" ] in
  String.split_on_char ',' row
  |> List.mapi (fun i v ->
         match List.nth_opt cols i with
         | Some c when List.mem c keep -> v
         | _ -> "X")
  |> String.concat ","

let golden_path name =
  Filename.concat (repo_root ()) (Filename.concat "test/golden" name)

(** Compare against the committed golden file; [GOLDEN_UPDATE=1]
    rewrites it instead (run once after an intentional format change,
    then review the diff). *)
let check_golden name actual_lines =
  if Sys.getenv_opt "GOLDEN_UPDATE" = Some "1" then begin
    let oc = open_out (golden_path name) in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        List.iter (fun l -> output_string oc (l ^ "\n")) actual_lines)
  end
  else
    let expect = read_lines (golden_path name) in
    Alcotest.(check (list string)) name expect actual_lines

let tiny_rows =
  lazy (Runner.run_all ~workloads:[ tiny_workload ] ())

let test_golden_rows () =
  check_golden "rows.golden" (Csv.rows_csv (Lazy.force tiny_rows))

let test_golden_timing_masked () =
  match Csv.timing_csv (Lazy.force tiny_rows) with
  | [] -> Alcotest.fail "no timing output"
  | header :: rows ->
      check_golden "timing.golden"
        (header :: List.map (mask_timing_row ~header) rows)

let () =
  Alcotest.run "golden"
    [
      ( "csv",
        [
          Alcotest.test_case "committed artifacts match the code" `Quick
            test_artifact_headers;
          Alcotest.test_case "tiny workload rows golden" `Quick
            test_golden_rows;
          Alcotest.test_case "tiny workload timing shape golden" `Quick
            test_golden_timing_masked;
        ] );
    ]
