(* Cross-cutting property tests and stress tests that span libraries. *)

open Ba_cfg

let p = Ba_machine.Model.alpha21164

(* ---------------- generators ---------------- *)

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let cfg_of_seed ?(min_n = 2) ?(max_n = 14) seed =
  let rng = Random.State.make [| seed |] in
  let n = min_n + Random.State.int rng (max_n - min_n + 1) in
  Ba_testutil.Gen.cfg rng ~n

let random_order rng (g : Cfg.t) =
  let n = Cfg.n_blocks g in
  let o = Array.init n (fun i -> i) in
  for i = n - 1 downto 2 do
    let j = 1 + Random.State.int rng i in
    let t = o.(i) in
    o.(i) <- o.(j);
    o.(j) <- t
  done;
  o

(* ---------------- layout algebra ---------------- *)

let prop_positions_inverse =
  QCheck2.Test.make ~count:100 ~name:"positions inverts order" gen_seed
    (fun seed ->
      let g = cfg_of_seed seed in
      let o = random_order (Random.State.make [| seed + 1 |]) g in
      let pos = Layout.positions o in
      Array.for_all (fun i -> pos.(o.(i)) = i) (Array.init (Array.length o) Fun.id))

let prop_layout_successor_consistent =
  QCheck2.Test.make ~count:100 ~name:"layout successor matches positions"
    gen_seed (fun seed ->
      let g = cfg_of_seed seed in
      let o = random_order (Random.State.make [| seed + 2 |]) g in
      let pos = Layout.positions o and succ = Layout.layout_successor o in
      Array.for_all
        (fun l ->
          match succ.(l) with
          | None -> pos.(l) = Array.length o - 1
          | Some s -> pos.(s) = pos.(l) + 1)
        (Array.init (Array.length o) Fun.id))

(* ---------------- realization semantics ---------------- *)

let prop_realize_preserves_destinations =
  QCheck2.Test.make ~count:100
    ~name:"realized layouts reach exactly the CFG successors" gen_seed
    (fun seed ->
      let g = cfg_of_seed seed in
      let rng = Random.State.make [| seed + 3 |] in
      let prof =
        Ba_testutil.Gen.profile_of ~seed g ~invocations:10 ~max_steps:40
      in
      let pr = Ba_profile.Profile.proc prof 0 in
      let order = random_order rng g in
      let r, _ = Ba_align.Evaluate.realize p g ~order ~train:pr in
      Layout.check_semantics g r = Ok ())

let prop_transfer_penalties_bounded =
  QCheck2.Test.make ~count:100
    ~name:"per-transfer penalties within model bounds" gen_seed (fun seed ->
      let g = cfg_of_seed seed in
      let rng = Random.State.make [| seed + 4 |] in
      let prof = Ba_testutil.Gen.profile_of ~seed g ~invocations:10 ~max_steps:40 in
      let pr = Ba_profile.Profile.proc prof 0 in
      let order = random_order rng g in
      let r, pred = Ba_align.Evaluate.realize p g ~order ~train:pr in
      let pen = p.Ba_machine.Model.penalties in
      let upper = pen.Ba_machine.Penalties.cond_mispredict + pen.Ba_machine.Penalties.uncond_taken in
      let ok = ref true in
      Cfg.iter
        (fun b ->
          let l = b.Block.id in
          List.iter
            (fun dest ->
              match r.Layout.terms.(l) with
              | Layout.R_exit -> ()
              | rt ->
                  let c =
                    Ba_machine.Cost.transfer_penalty p.Ba_machine.Model.penalties rt
                      ~predicted:pred.(l)
                      ~dest
                  in
                  if c < 0 || c > upper then ok := false)
            (Block.distinct_successors b))
        g;
      !ok)

(* ---------------- procedure ordering ---------------- *)

let prop_proc_order_permutation =
  QCheck2.Test.make ~count:100 ~name:"proc orderings are permutations" gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 12 in
      let calls =
        List.init (Random.State.int rng 20) (fun _ ->
            (Random.State.int rng n, Random.State.int rng n, 1 + Random.State.int rng 100))
      in
      let is_perm o =
        Array.length o = n
        &&
        let seen = Array.make n false in
        Array.for_all
          (fun x ->
            x >= 0 && x < n
            &&
            if seen.(x) then false
            else (
              seen.(x) <- true;
              true))
          o
      in
      is_perm (Ba_align.Proc_order.order ~n_procs:n ~entry:0 calls)
      && is_perm (Ba_align.Proc_order.by_weight ~n_procs:n ~entry:0 calls))

(* ---------------- caches and predictors ---------------- *)

let prop_icache_misses_bounded =
  QCheck2.Test.make ~count:60 ~name:"icache misses <= accesses" gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let c = Ba_machine.Icache.create Ba_machine.Icache.alpha_l1 in
      for _ = 1 to 200 do
        ignore
          (Ba_machine.Icache.touch_range c
             ~addr:(Random.State.int rng 10_000)
             ~ninstr:(1 + Random.State.int rng 40))
      done;
      Ba_machine.Icache.misses c <= Ba_machine.Icache.accesses c
      && Ba_machine.Icache.miss_ratio c <= 1.0)

let prop_predictor_consistent =
  QCheck2.Test.make ~count:60 ~name:"predictor predicts what it was trained on"
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let t = Ba_machine.Predictor.create Ba_machine.Predictor.default in
      let addr = Random.State.int rng 100_000 in
      let dir = Random.State.bool rng in
      for _ = 1 to 4 do
        Ba_machine.Predictor.update_cond t ~addr ~taken:dir
      done;
      Ba_machine.Predictor.predict_taken t ~addr = dir)

(* ---------------- bounds bracket everything ---------------- *)

let prop_bounds_bracket_alignment =
  QCheck2.Test.make ~count:25
    ~name:"hk <= exact <= tsp <= {greedy, calder} on random procedures"
    gen_seed (fun seed ->
      let g = cfg_of_seed ~min_n:3 ~max_n:10 seed in
      let prof = Ba_testutil.Gen.profile_of ~seed g ~invocations:15 ~max_steps:50 in
      let pr = Ba_profile.Profile.proc prof 0 in
      let tsp = (Ba_align.Tsp_align.align p g ~profile:pr).Ba_align.Tsp_align.cost in
      let pen o = Ba_align.Evaluate.proc_penalty p g ~order:o ~train:pr ~test:pr in
      let greedy = pen (Ba_align.Greedy.align g ~profile:pr) in
      let calder = pen (Ba_align.Calder.align p g ~profile:pr) in
      let hk = Ba_align.Bounds.held_karp p g ~profile:pr ~upper:tsp in
      hk <= tsp && tsp <= greedy && tsp <= calder)

(* ---------------- solver robustness ---------------- *)

let dtsp_of_seed ?(min_n = 5) ?(max_n = 12) seed =
  let g = cfg_of_seed ~min_n ~max_n seed in
  let prof =
    Ba_profile.Profile.proc
      (Ba_testutil.Gen.profile_of ~seed g ~invocations:12 ~max_steps:60)
      0
  in
  (Ba_align.Reduction.build p g ~profile:prof).Ba_align.Reduction.dtsp

(* A double-bridge kick reorders whole segments; it must never separate
   an in-city from its locked out-city, or the tour stops encoding a
   block order. *)
let prop_double_bridge_preserves_locked_pairs =
  QCheck2.Test.make ~count:60
    ~name:"double_bridge never cuts a locked intra-pair edge" gen_seed
    (fun seed ->
      let d = dtsp_of_seed seed in
      let s = Ba_tsp.Sym.of_dtsp d in
      let nbr = Ba_tsp.Neighbors.of_sym s ~k:8 in
      let n2 = s.Ba_tsp.Sym.nn in
      let st =
        Ba_tsp.Three_opt.init s ~nbr ~tour:(Array.init n2 Fun.id)
      in
      let rng = Random.State.make [| seed + 11 |] in
      let ok = ref true in
      for _ = 1 to 25 do
        ignore (Ba_tsp.Iterated.double_bridge st rng);
        let tour = Ba_tsp.Three_opt.tour st in
        if not (Ba_tsp.Sym.check_alternating s tour) then ok := false;
        (* explicit adjacency: city 2i and 2i+1 are cyclic neighbors *)
        let pos = Array.make n2 0 in
        Array.iteri (fun i c -> pos.(c) <- i) tour;
        for i = 0 to (n2 / 2) - 1 do
          let a = pos.(2 * i) and b = pos.((2 * i) + 1) in
          let dist = (b - a + n2) mod n2 in
          if dist <> 1 && dist <> n2 - 1 then ok := false
        done
      done;
      !ok)

(* Whatever the budget — zero deadline, a handful of moves, unlimited —
   the solver must hand back a valid Hamiltonian walk whose cost is the
   tour's true directed cost and at least the Held–Karp bound. *)
let prop_budgeted_solve_valid =
  QCheck2.Test.make ~count:40
    ~name:"solve under any budget: valid tour, cost >= HK bound" gen_seed
    (fun seed ->
      let d = dtsp_of_seed seed in
      let budgets =
        [
          Some (Ba_robust.Budget.create ~deadline_ms:0 ());
          Some (Ba_robust.Budget.create ~max_moves:(seed mod 4) ());
          None (* config default: unlimited *);
        ]
      in
      let light =
        { Ba_tsp.Held_karp.iterations = 400; lambda0 = 2.0; patience = 40 }
      in
      List.for_all
        (fun budget ->
          let tour, stats = Ba_tsp.Iterated.solve ?budget d in
          Ba_tsp.Dtsp.is_tour d tour
          && stats.Ba_tsp.Iterated.best_cost = Ba_tsp.Dtsp.tour_cost d tour
          &&
          let hk =
            Ba_tsp.Held_karp.directed_bound ~config:light d
              ~upper_bound:stats.Ba_tsp.Iterated.best_cost
          in
          hk <= stats.Ba_tsp.Iterated.best_cost)
        budgets)

(* ---------------- stress: large instance ---------------- *)

let test_stress_large_procedure () =
  (* a 150-block synthetic procedure: the heuristic must return a valid
     layout in bounded work and stay near the (lightly converged) bound *)
  let rng = Random.State.make [| 4242 |] in
  let g = Ba_harness.Synthetic.cfg rng ~n:150 in
  let prof = Ba_harness.Synthetic.profile rng g ~invocations:120 ~max_steps:400 in
  let config =
    { Ba_align.Tsp_align.default with Ba_align.Tsp_align.exact_below = 0 }
  in
  let r = Ba_align.Tsp_align.align ~config p g ~profile:prof in
  Alcotest.(check bool) "valid layout" true (Layout.is_valid g r.Ba_align.Tsp_align.order);
  let light = { Ba_tsp.Held_karp.iterations = 2_000; lambda0 = 2.0; patience = 60 } in
  let inst = Ba_align.Reduction.build p g ~profile:prof in
  let hk =
    Ba_tsp.Held_karp.directed_bound ~config:light inst.Ba_align.Reduction.dtsp
      ~upper_bound:r.Ba_align.Tsp_align.cost
  in
  Alcotest.(check bool)
    (Printf.sprintf "bound %d <= tour %d" hk r.Ba_align.Tsp_align.cost)
    true
    (hk <= r.Ba_align.Tsp_align.cost);
  (* the greedy baseline should not beat the TSP aligner even here *)
  let greedy =
    Ba_align.Evaluate.proc_penalty p g
      ~order:(Ba_align.Greedy.align g ~profile:prof)
      ~train:prof ~test:prof
  in
  Alcotest.(check bool)
    (Printf.sprintf "tsp %d <= greedy %d at n=150" r.Ba_align.Tsp_align.cost greedy)
    true
    (r.Ba_align.Tsp_align.cost <= greedy)

let () =
  Alcotest.run "properties"
    [
      ( "layout",
        [
          QCheck_alcotest.to_alcotest prop_positions_inverse;
          QCheck_alcotest.to_alcotest prop_layout_successor_consistent;
        ] );
      ( "realization",
        [
          QCheck_alcotest.to_alcotest prop_realize_preserves_destinations;
          QCheck_alcotest.to_alcotest prop_transfer_penalties_bounded;
        ] );
      ( "proc-order",
        [ QCheck_alcotest.to_alcotest prop_proc_order_permutation ] );
      ( "machine",
        [
          QCheck_alcotest.to_alcotest prop_icache_misses_bounded;
          QCheck_alcotest.to_alcotest prop_predictor_consistent;
        ] );
      ("bounds", [ QCheck_alcotest.to_alcotest prop_bounds_bracket_alignment ]);
      ( "solver",
        [
          QCheck_alcotest.to_alcotest prop_double_bridge_preserves_locked_pairs;
          QCheck_alcotest.to_alcotest prop_budgeted_solve_valid;
        ] );
      ( "stress",
        [ Alcotest.test_case "150-block procedure" `Slow test_stress_large_procedure ] );
    ]
