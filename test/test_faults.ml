(** Fault-injection suite: every catalogued fault, over many seeds, must
    yield a typed error or a valid (possibly degraded) alignment — never
    an uncaught exception. *)

open Ba_align
module Profile = Ba_profile.Profile
module Faults = Ba_harness.Faults
module Synthetic = Ba_harness.Synthetic
module Errors = Ba_robust.Errors

let penalties = Ba_machine.Model.alpha21164

(** A small random multi-procedure program with a matching profile. *)
let scenario ~seed : Faults.scenario =
  let rng = Random.State.make [| 0xFA17; seed |] in
  let n_procs = 1 + Random.State.int rng 3 in
  let cfgs =
    Array.init n_procs (fun _ ->
        Synthetic.cfg rng ~n:(2 + Random.State.int rng 10))
  in
  let procs =
    Array.map
      (fun g -> Synthetic.profile rng g ~invocations:20 ~max_steps:200)
      cfgs
  in
  { Faults.cfgs; profile = { Profile.procs; calls = [] } }

let tsp = Driver.Tsp Tsp_align.default

let run_scenario (s : Faults.scenario) =
  Driver.align_checked tsp penalties s.Faults.cfgs ~train:s.Faults.profile

(* Every fault kind on every seed: the pipeline must match the kind's
   declared expectation, and successful alignments must be semantically
   faithful.  An escaping exception fails the test with the fault
   identity in the message. *)
let test_fault_catalogue () =
  let seeds = List.init 8 (fun i -> i) in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let tag = Printf.sprintf "%s/seed=%d" (Faults.name kind) seed in
          let s = Faults.inject ~seed kind (scenario ~seed) in
          let outcome =
            try Ok (run_scenario s)
            with e ->
              Error (Printf.sprintf "%s: escaped exception %s" tag
                       (Printexc.to_string e))
          in
          match outcome with
          | Error msg -> Alcotest.fail msg
          | Ok result -> (
              (match result with
              | Ok report -> (
                  match Driver.check report.Driver.aligned with
                  | Ok () -> ()
                  | Error m ->
                      Alcotest.failf "%s: unfaithful layout: %s" tag m)
              | Error _ -> ());
              match (Faults.expectation kind, result) with
              | `Must_error, Ok _ ->
                  Alcotest.failf "%s: fault was not detected" tag
              | `Must_succeed, Error e ->
                  Alcotest.failf "%s: valid scenario rejected: %s" tag
                    (Errors.to_string e)
              | _ -> ()))
        seeds)
    Faults.all

(* The unfaulted scenarios themselves must align cleanly, so a failure
   above is attributable to the injected fault. *)
let test_baseline_scenarios_align () =
  for seed = 0 to 7 do
    let s = scenario ~seed in
    match run_scenario s with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "seed=%d: clean scenario rejected: %s" seed
          (Errors.to_string e)
  done

(* Fault determinism: the same (seed, kind) must produce the same
   corrupted scenario, so failures reproduce. *)
let test_faults_deterministic () =
  List.iter
    (fun kind ->
      let a = Faults.inject ~seed:3 kind (scenario ~seed:3) in
      let b = Faults.inject ~seed:3 kind (scenario ~seed:3) in
      Alcotest.(check bool)
        (Faults.name kind ^ " deterministic")
        true
        (a.Faults.profile = b.Faults.profile
        && a.Faults.cfgs = b.Faults.cfgs))
    Faults.all

(* Source-level faults: the minic front end must answer with Ok or a
   typed Parse_error, never an exception. *)
let test_source_faults () =
  let base =
    "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } \
     fn main() { var i = 0; while (i < 8) { print(fib(i)); i = i + 1; } }"
  in
  List.iter
    (fun kind ->
      for seed = 0 to 19 do
        let tag =
          Printf.sprintf "%s/seed=%d" (Faults.source_name kind) seed
        in
        let src = Faults.inject_source ~seed kind base in
        match Ba_minic.Compile.compile src with
        | Ok _ -> ()
        | Error (Errors.Parse_error _) -> ()
        | Error e ->
            Alcotest.failf "%s: unexpected error class: %s" tag
              (Errors.to_string e)
        | exception e ->
            Alcotest.failf "%s: escaped exception %s" tag
              (Printexc.to_string e)
      done)
    Faults.all_source

(* The catalogue itself is part of the robustness contract. *)
let test_catalogue_size () =
  Alcotest.(check bool)
    "at least 10 distinct fault kinds" true
    (List.length Faults.all >= 10);
  let names = List.map Faults.name Faults.all in
  Alcotest.(check int)
    "fault names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "faults"
    [
      ( "fault-injection",
        [
          Alcotest.test_case "catalogue has >= 10 unique kinds" `Quick
            test_catalogue_size;
          Alcotest.test_case "baseline scenarios align" `Quick
            test_baseline_scenarios_align;
          Alcotest.test_case "faults are deterministic" `Quick
            test_faults_deterministic;
          Alcotest.test_case "every fault: typed error or valid layout"
            `Slow test_fault_catalogue;
          Alcotest.test_case "source faults: Ok or Parse_error" `Quick
            test_source_faults;
        ] );
    ]
