(** Differential oracle: for every bundled example program and every
    alignment method, the analytic control penalty
    ({!Ba_align.Driver.analytic_penalty}) computed from the profile
    must equal the penalty counted by the trace-driven machine
    simulation ({!Ba_align.Driver.simulate}) when training and testing
    input coincide — the two implementations share nothing but the
    penalty model, so agreement pins both.  A seeded-fault negative
    case proves the oracle actually detects discrepancies. *)

module Driver = Ba_align.Driver
module Compile = Ba_minic.Compile

let penalties = Ba_machine.Model.alpha21164

(** Find the repo's [examples/programs] directory by walking up from
    the test's working directory (works from the source tree and from
    [_build/default/test]). *)
let programs_dir () =
  let rec up dir n =
    if n = 0 then None
    else
      let cand = Filename.concat dir "examples/programs" in
      if Sys.file_exists cand && Sys.is_directory cand then Some cand
      else up (Filename.dirname dir) (n - 1)
  in
  match up (Sys.getcwd ()) 8 with
  | Some d -> d
  | None -> Alcotest.fail "examples/programs not found above cwd"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** Each example with a meaningful [read()] input. *)
let cases =
  [
    ("collatz.mc", [| 40 |]);
    (* opcode stream: add 5, sub 2, abs/double, print, unknown, halt *)
    ("dispatch.mc", [| 1; 5; 2; 2; 3; 4; 9; 0 |]);
    ("scanner.mc", [| 7; 97; 98; 32; 49; 92; 10; 55 |]);
  ]

let methods =
  [
    Driver.Original;
    Driver.Greedy;
    Driver.Calder;
    Driver.Tsp Ba_align.Tsp_align.default;
  ]

let check_program name input =
  let src = read_file (Filename.concat (programs_dir ()) name) in
  let c =
    match Compile.compile src with
    | Ok c -> c
    | Error e -> Alcotest.failf "%s does not compile: %a" name Ba_robust.Errors.pp e
  in
  let prof = Compile.profile c ~input in
  let run sink = ignore (Compile.run c ~input ~sink) in
  List.iter
    (fun m ->
      let aligned =
        Driver.align m penalties c.Compile.cfgs ~train:prof
      in
      let analytic = Driver.analytic_penalty penalties aligned ~test:prof in
      let sim = Driver.simulate penalties aligned ~run in
      Alcotest.(check int)
        (Printf.sprintf "%s/%s" name (Driver.method_name m))
        analytic sim.Ba_machine.Cycles.penalty_cycles)
    methods

let test_examples () =
  List.iter (fun (name, input) -> check_program name input) cases

(** Negative control: simulate under a perturbed penalty model — every
    mispredict one cycle dearer — and require the oracle to flag the
    difference.  If this passes with equal counts the oracle is blind. *)
let test_seeded_fault_detected () =
  let src = read_file (Filename.concat (programs_dir ()) "collatz.mc") in
  let c = Compile.compile_exn src in
  let input = [| 40 |] in
  let prof = Compile.profile c ~input in
  let run sink = ignore (Compile.run c ~input ~sink) in
  let aligned =
    Driver.align (Driver.Tsp Ba_align.Tsp_align.default) penalties
      c.Compile.cfgs ~train:prof
  in
  let analytic = Driver.analytic_penalty penalties aligned ~test:prof in
  let faulty =
    {
      penalties with
      Ba_machine.Model.penalties =
        {
          penalties.Ba_machine.Model.penalties with
          Ba_machine.Penalties.cond_mispredict =
            penalties.Ba_machine.Model.penalties
              .Ba_machine.Penalties.cond_mispredict + 1;
        };
    }
  in
  let sim = Driver.simulate faulty aligned ~run in
  Alcotest.(check bool)
    "perturbed model must disagree with the analytic penalty" true
    (sim.Ba_machine.Cycles.penalty_cycles <> analytic)

(** The harness-level oracle ({!Ba_harness.Runner.measure} inside
    [run_benchmark]) runs the same identity on every built-in
    benchmark row; exercise one cheap workload end-to-end so the wired
    path stays covered too. *)
let test_runner_oracle_holds () =
  let w = List.hd Ba_workloads.Workload.all in
  let ds = fst w.Ba_workloads.Workload.datasets in
  (* run_benchmark raises Invalid_argument on any analytic/simulated
     penalty mismatch; surviving it is the assertion *)
  let row = Ba_harness.Runner.run_benchmark w ~test:ds in
  Alcotest.(check bool) "produced a row" true
    (row.Ba_harness.Runner.bench = w.Ba_workloads.Workload.name)

let () =
  Alcotest.run "differential"
    [
      ( "oracle",
        [
          Alcotest.test_case "examples: analytic = simulated" `Quick
            test_examples;
          Alcotest.test_case "seeded fault is detected" `Quick
            test_seeded_fault_detected;
          Alcotest.test_case "harness oracle holds" `Slow
            test_runner_oracle_holds;
        ] );
    ]
