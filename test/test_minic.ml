(* Tests for the minic front end: lexer, parser, checks, lowering shapes,
   and interpreter semantics. *)

open Ba_minic

let compile_ok src =
  match Compile.compile src with
  | Ok c -> c
  | Error e ->
      Alcotest.failf "compilation failed: %s" (Ba_robust.Errors.to_string e)

let compile_err src =
  match Compile.compile src with
  | Ok _ -> Alcotest.failf "compilation unexpectedly succeeded"
  | Error e -> Ba_robust.Errors.to_string e

let run_output ?(input = [||]) src =
  let c = compile_ok src in
  (Compile.run c ~input ~sink:Ba_cfg.Trace.null).Interp.output

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ---------------- lexer ---------------- *)

let test_lexer_tokens () =
  let toks = (Lexer.tokenize "fn f(x) { return x <= 42; } // comment").Lexer.toks in
  let kinds = Array.map fst toks in
  Alcotest.(check bool) "starts with fn" true (kinds.(0) = Lexer.KW "fn");
  Alcotest.(check bool) "le operator" true
    (Array.exists (( = ) (Lexer.PUNCT "<=")) kinds);
  Alcotest.(check bool) "int literal" true
    (Array.exists (( = ) (Lexer.INT 42)) kinds);
  Alcotest.(check bool) "comment dropped" true
    (not (Array.exists (function Lexer.IDENT "comment" -> true | _ -> false) kinds));
  Alcotest.(check bool) "eof last" true (kinds.(Array.length kinds - 1) = Lexer.EOF)

let test_lexer_rejects_garbage () =
  Alcotest.(check bool) "bad character" true
    (try
       ignore (Lexer.tokenize "fn main() { @ }");
       false
     with Lexer.Error _ -> true)

let test_lexer_line_numbers () =
  let toks = (Lexer.tokenize "fn\nmain\n(").Lexer.toks in
  Alcotest.(check int) "third token on line 3" 3 (snd toks.(2))

(* ---------------- parser ---------------- *)

let test_parser_precedence () =
  (* 2 + 3 * 4 == 14 must parse as (2 + (3*4)) == 14 *)
  let out = run_output "fn main() { print(2 + 3 * 4 == 14); }" in
  Alcotest.(check (list int)) "precedence" [ 1 ] out

let test_parser_associativity () =
  let out = run_output "fn main() { print(20 - 5 - 3); print(100 / 5 / 2); }" in
  Alcotest.(check (list int)) "left assoc" [ 12; 10 ] out

let test_parser_unary () =
  let out = run_output "fn main() { print(-3 + 5); print(!0); print(!7); }" in
  Alcotest.(check (list int)) "unary" [ 2; 1; 0 ] out

let test_parser_else_if () =
  let src =
    "fn classify(x) { if (x < 0) { return 0; } else if (x == 0) { return 1; } \
     else { return 2; } } fn main() { print(classify(-5)); print(classify(0)); \
     print(classify(9)); }"
  in
  Alcotest.(check (list int)) "else-if chain" [ 0; 1; 2 ] (run_output src)

let test_parser_rejects_malformed () =
  Alcotest.(check bool) "missing paren" true
    (contains ~sub:"parser" (compile_err "fn main( { }"));
  Alcotest.(check bool) "missing semicolon" true
    (contains ~sub:"parser" (compile_err "fn main() { var x = 1 }"));
  Alcotest.(check bool) "bad statement" true
    (contains ~sub:"parser" (compile_err "fn main() { 42; }"))

let test_parser_negative_case_values () =
  let src =
    "fn main() { var x = 0 - 1; switch (x) { case -1: { print(10); } default: \
     { print(20); } } }"
  in
  Alcotest.(check (list int)) "negative case" [ 10 ] (run_output src)

(* ---------------- checks ---------------- *)

let test_check_errors () =
  let cases =
    [
      ("fn f() { }", "no main");
      ("fn main(x) { }", "main() must take no parameters");
      ("fn main() { x = 1; }", "undeclared");
      ("fn main() { var x = 1; var x = 2; }", "duplicate declaration");
      ("fn main() { f(1); }", "unknown function");
      ("fn f(a, b) { } fn main() { f(1); }", "expects 2 arguments");
      ("fn main() { break; }", "break/continue outside");
      ("fn main() { read(1); }", "read() takes no arguments");
      ("fn f(a, a) { } fn main() { }", "duplicate parameter");
      ("fn read() { } fn main() { }", "shadows a builtin");
      ( "fn main() { switch (1) { case 1: { } case 1: { } default: { } } }",
        "duplicate case" );
    ]
  in
  List.iter
    (fun (src, want) ->
      let msg = compile_err src in
      Alcotest.(check bool)
        (Printf.sprintf "%S mentions %S (got %S)" src want msg)
        true (contains ~sub:want msg))
    cases

(* ---------------- lowering shapes ---------------- *)

let cfg_of src name =
  let c = compile_ok src in
  let rec find i =
    if i >= Array.length c.Compile.names then Alcotest.failf "no function %s" name
    else if c.Compile.names.(i) = name then c.Compile.cfgs.(i)
    else find (i + 1)
  in
  find 0

let count_term pred g =
  let n = ref 0 in
  Ba_cfg.Cfg.iter (fun b -> if pred b.Ba_cfg.Block.term then incr n) g;
  !n

let test_lower_if_makes_branch () =
  let g = cfg_of "fn main() { var x = read(); if (x) { print(1); } else { print(2); } }" "main" in
  Alcotest.(check int) "one conditional" 1
    (count_term (function Ba_cfg.Block.Branch _ -> true | _ -> false) g)

let test_lower_while_makes_loop () =
  let g = cfg_of "fn main() { var i = 0; while (i < 10) { i = i + 1; } }" "main" in
  Alcotest.(check int) "one conditional head" 1
    (count_term (function Ba_cfg.Block.Branch _ -> true | _ -> false) g);
  (* there must be a back edge: some block jumps to a lower-numbered one *)
  let back = ref false in
  Ba_cfg.Cfg.iter
    (fun b ->
      List.iter
        (fun s -> if s <= b.Ba_cfg.Block.id then back := true)
        (Ba_cfg.Block.successors b))
    g;
  Alcotest.(check bool) "has back edge" true !back

let test_lower_switch_makes_multiway () =
  let g =
    cfg_of
      "fn main() { var x = read(); switch (x) { case 0: { print(0); } case 1: \
       { print(1); } default: { print(9); } } }"
      "main"
  in
  Alcotest.(check int) "one multiway" 1
    (count_term (function Ba_cfg.Block.Multiway _ -> true | _ -> false) g)

let test_lower_short_circuit_adds_branches () =
  let plain = cfg_of "fn main() { var x = read(); if (x) { print(1); } }" "main" in
  let sc =
    cfg_of
      "fn main() { var x = read(); if (x > 0 && x < 10 || x == 42) { print(1); } }"
      "main"
  in
  let branches g =
    count_term (function Ba_cfg.Block.Branch _ -> true | _ -> false) g
  in
  Alcotest.(check int) "plain has 1 branch" 1 (branches plain);
  Alcotest.(check int) "short-circuit has 3 branches" 3 (branches sc)

let test_lower_dead_code_dropped () =
  let g = cfg_of "fn main() { return; print(1); print(2); }" "main" in
  (* unreachable prints are dropped: entry block returns immediately *)
  Alcotest.(check int) "single exit, no prints" 0 (Ba_cfg.Cfg.total_size g)

(* ---------------- interpreter semantics ---------------- *)

let test_interp_fib () =
  let src =
    "fn fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } fn \
     main() { print(fib(10)); }"
  in
  Alcotest.(check (list int)) "fib(10)" [ 55 ] (run_output src)

let test_interp_gcd_loop () =
  let src =
    "fn gcd(a, b) { while (b != 0) { var t = b; b = a % b; a = t; } return a; \
     } fn main() { print(gcd(252, 105)); }"
  in
  Alcotest.(check (list int)) "gcd" [ 21 ] (run_output src)

let test_interp_arrays_sort () =
  let src =
    String.concat "\n"
      [
        "fn main() {";
        "  var n = read();";
        "  var a = array(n);";
        "  var i = 0;";
        "  while (i < n) { a[i] = read(); i = i + 1; }";
        "  i = 0;";
        "  while (i < n) {";
        "    var j = i + 1;";
        "    while (j < n) {";
        "      if (a[j] < a[i]) { var t = a[i]; a[i] = a[j]; a[j] = t; }";
        "      j = j + 1;";
        "    }";
        "    i = i + 1;";
        "  }";
        "  i = 0;";
        "  while (i < n) { print(a[i]); i = i + 1; }";
        "}";
      ]
  in
  Alcotest.(check (list int)) "selection sort" [ 1; 2; 5; 8; 9 ]
    (run_output ~input:[| 5; 8; 2; 9; 1; 5 |] src)

let test_interp_read_exhausted () =
  Alcotest.(check (list int)) "read past end yields -1" [ 7; -1 ]
    (run_output ~input:[| 7 |] "fn main() { print(read()); print(read()); }")

let test_interp_switch_dispatch () =
  let src =
    "fn main() { var i = 0; while (i < 4) { switch (read()) { case 1: { \
     print(100); } case 2: { print(200); } default: { print(999); } } i = i + \
     1; } }"
  in
  Alcotest.(check (list int)) "dispatch" [ 100; 999; 200; 999 ]
    (run_output ~input:[| 1; 5; 2; 3 |] src)

let test_interp_for_loop () =
  let out =
    run_output "fn main() { for (var i = 0; i < 5; i = i + 1) { print(i * i); } }"
  in
  Alcotest.(check (list int)) "for squares" [ 0; 1; 4; 9; 16 ] out

let test_interp_for_continue_runs_step () =
  (* the crucial C semantics: continue must still execute the step *)
  let out =
    run_output
      "fn main() { for (var i = 0; i < 6; i = i + 1) { if (i % 2 == 0) { \
       continue; } print(i); } }"
  in
  Alcotest.(check (list int)) "odd values only, no infinite loop" [ 1; 3; 5 ] out

let test_interp_for_break_and_nesting () =
  let out =
    run_output
      "fn main() { var total = 0; for (var i = 0; i < 10; i = i + 1) { for \
       (var j = 0; j < 10; j = j + 1) { if (j > i) { break; } total = total + \
       1; } } print(total); }"
  in
  (* inner loop runs i+1 times: sum 1..10 = 55 *)
  Alcotest.(check (list int)) "nested for with break" [ 55 ] out

let test_for_loop_shape () =
  (* the for loop lowers to a loop head + separate step block: continue
     must not create a second conditional *)
  let g =
    cfg_of "fn main() { for (var i = 0; i < 3; i = i + 1) { print(i); } }" "main"
  in
  Alcotest.(check int) "single conditional head" 1
    (count_term (function Ba_cfg.Block.Branch _ -> true | _ -> false) g)

let test_for_header_errors () =
  Alcotest.(check bool) "missing step" true
    (contains ~sub:"loop header"
       (compile_err "fn main() { for (var i = 0; i < 3; 42) { } }"))

let test_interp_break_continue () =
  let src =
    "fn main() { var i = 0; while (1) { i = i + 1; if (i == 3) { continue; } \
     if (i > 5) { break; } print(i); } }"
  in
  Alcotest.(check (list int)) "break/continue" [ 1; 2; 4; 5 ] (run_output src)

let test_interp_value_position_logic () =
  (* && and || in value position are strict 0/1 *)
  let out = run_output "fn main() { print(2 && 3); print(0 || 7); print(0 && 1); }" in
  Alcotest.(check (list int)) "strict logic" [ 1; 1; 0 ] out

let test_interp_shifts_and_bits () =
  let out =
    run_output
      "fn main() { print(1 << 10); print(1024 >> 3); print(12 & 10); print(12 \
       | 10); print(12 ^ 10); }"
  in
  Alcotest.(check (list int)) "bit ops" [ 1024; 128; 8; 14; 6 ] out

let test_interp_runtime_errors () =
  let check_error src input want =
    let c = compile_ok src in
    match Compile.run c ~input ~sink:Ba_cfg.Trace.null with
    | (_ : Interp.result) -> Alcotest.failf "expected runtime error %s" want
    | exception Interp.Runtime_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "%S in %S" want m)
          true (contains ~sub:want m)
  in
  check_error "fn main() { print(1 / read()); }" [| 0 |] "division by zero";
  check_error "fn main() { var a = array(2); print(a[5]); }" [||] "out of bounds";
  check_error "fn main() { var a = array(2); a[0-1] = 3; }" [||] "out of bounds";
  check_error "fn main() { print(array(3)); }" [||] "expected an integer";
  check_error "fn main() { var x = 1; print(x[0]); }" [||] "expected an array";
  check_error "fn main() { print(1 << 70); }" [||] "out of range"

let test_interp_recursion_depth_limit () =
  (* runaway recursion must fail fast with a clean error, not wedge the
     host process (OCaml 5 stacks grow, so no Stack_overflow arrives) *)
  let c = compile_ok "fn f(x) { return f(x + 1); } fn main() { print(f(0)); }" in
  match Compile.run c ~input:[||] ~sink:Ba_cfg.Trace.null with
  | (_ : Interp.result) -> Alcotest.fail "expected depth-limit error"
  | exception Interp.Runtime_error m ->
      Alcotest.(check bool) "mentions call depth" true
        (contains ~sub:"call depth" m)

let test_interp_deep_but_legal_recursion () =
  (* legitimate deep recursion below the limit still works *)
  let c =
    compile_ok
      "fn down(n) { if (n == 0) { return 0; } return down(n - 1) + 1; } fn \
       main() { print(down(50000)); }"
  in
  let r = Compile.run c ~input:[||] ~sink:Ba_cfg.Trace.null in
  Alcotest.(check (list int)) "50000 frames fine" [ 50000 ] r.Interp.output

let test_interp_step_limit () =
  let c = compile_ok "fn main() { while (1) { } }" in
  match Compile.run ~limit:1000 c ~input:[||] ~sink:Ba_cfg.Trace.null with
  | (_ : Interp.result) -> Alcotest.fail "expected limit error"
  | exception Interp.Runtime_error m ->
      Alcotest.(check bool) "mentions limit" true (contains ~sub:"limit" m)

let test_interp_return_value_and_counts () =
  let c = compile_ok "fn main() { var i = 0; while (i < 7) { i = i + 1; } return i; }" in
  let r = Compile.run c ~input:[| 1; 2 |] ~sink:Ba_cfg.Trace.null in
  Alcotest.(check int) "return value" 7 r.Interp.return_value;
  Alcotest.(check int) "no input consumed" 0 r.Interp.inputs_consumed;
  Alcotest.(check bool) "ran several blocks" true (r.Interp.blocks_executed > 7)

(* ---------------- profiling integration ---------------- *)

let test_profile_of_loop () =
  let c =
    compile_ok "fn main() { var i = 0; while (i < 10) { i = i + 1; } }"
  in
  let prof = Compile.profile c ~input:[||] in
  let p = Ba_profile.Profile.proc prof 0 in
  (* the loop head must have been entered 11 times: 10 into the body, 1 out *)
  let head =
    (* find the conditional block *)
    let g = c.Compile.cfgs.(0) in
    let found = ref (-1) in
    Ba_cfg.Cfg.iter
      (fun b ->
        match b.Ba_cfg.Block.term with
        | Ba_cfg.Block.Branch _ -> found := b.Ba_cfg.Block.id
        | _ -> ())
      g;
    !found
  in
  Alcotest.(check bool) "found loop head" true (head >= 0);
  Alcotest.(check int) "head out-transfers" 11 (Ba_profile.Profile.out_count p head)

let test_trace_call_structure () =
  let c =
    compile_ok
      "fn helper(x) { return x * 2; } fn main() { print(helper(21)); }"
  in
  let events = ref [] in
  let r = Compile.run c ~input:[||] ~sink:(fun e -> events := e :: !events) in
  Alcotest.(check (list int)) "output" [ 42 ] r.Interp.output;
  let enters =
    List.filter (function Ba_cfg.Trace.Enter _ -> true | _ -> false) !events
  in
  Alcotest.(check int) "two invocations" 2 (List.length enters)

let () =
  Alcotest.run "ba_minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "rejects garbage" `Quick test_lexer_rejects_garbage;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "associativity" `Quick test_parser_associativity;
          Alcotest.test_case "unary" `Quick test_parser_unary;
          Alcotest.test_case "else-if" `Quick test_parser_else_if;
          Alcotest.test_case "rejects malformed" `Quick test_parser_rejects_malformed;
          Alcotest.test_case "negative case values" `Quick
            test_parser_negative_case_values;
        ] );
      ("check", [ Alcotest.test_case "error classes" `Quick test_check_errors ]);
      ( "lower",
        [
          Alcotest.test_case "if -> branch" `Quick test_lower_if_makes_branch;
          Alcotest.test_case "while -> loop" `Quick test_lower_while_makes_loop;
          Alcotest.test_case "switch -> multiway" `Quick
            test_lower_switch_makes_multiway;
          Alcotest.test_case "short-circuit branches" `Quick
            test_lower_short_circuit_adds_branches;
          Alcotest.test_case "dead code dropped" `Quick test_lower_dead_code_dropped;
        ] );
      ( "interp",
        [
          Alcotest.test_case "fib recursion" `Quick test_interp_fib;
          Alcotest.test_case "gcd loop" `Quick test_interp_gcd_loop;
          Alcotest.test_case "arrays + sort" `Quick test_interp_arrays_sort;
          Alcotest.test_case "read exhaustion" `Quick test_interp_read_exhausted;
          Alcotest.test_case "switch dispatch" `Quick test_interp_switch_dispatch;
          Alcotest.test_case "break/continue" `Quick test_interp_break_continue;
          Alcotest.test_case "for loop" `Quick test_interp_for_loop;
          Alcotest.test_case "for continue runs step" `Quick
            test_interp_for_continue_runs_step;
          Alcotest.test_case "for break and nesting" `Quick
            test_interp_for_break_and_nesting;
          Alcotest.test_case "for loop shape" `Quick test_for_loop_shape;
          Alcotest.test_case "for header errors" `Quick test_for_header_errors;
          Alcotest.test_case "value-position logic" `Quick
            test_interp_value_position_logic;
          Alcotest.test_case "shifts and bits" `Quick test_interp_shifts_and_bits;
          Alcotest.test_case "runtime errors" `Quick test_interp_runtime_errors;
          Alcotest.test_case "step limit" `Quick test_interp_step_limit;
          Alcotest.test_case "recursion depth limit" `Quick
            test_interp_recursion_depth_limit;
          Alcotest.test_case "deep legal recursion" `Quick
            test_interp_deep_but_legal_recursion;
          Alcotest.test_case "return value and counters" `Quick
            test_interp_return_value_and_counts;
        ] );
      ( "integration",
        [
          Alcotest.test_case "loop profile" `Quick test_profile_of_loop;
          Alcotest.test_case "call structure" `Quick test_trace_call_structure;
        ] );
    ]
