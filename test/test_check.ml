(** ba_check static-analyzer suite.

    The centrepiece closes the fault-injection loop: every applicable
    fault kind of {!Ba_harness.Faults} is mapped, table-driven, to the
    lint rule id that must fire on the corrupted scenario.  Around it:
    unit tests for the hygiene rules the faults can't reach
    (unreachable code, goto cycles, flow conservation, overflow risk,
    cold coverage), the typed-error gate, strict promotion, the JSON
    rendering, and the DOT annotation hooks. *)

open Ba_cfg
open Ba_check
module Profile = Ba_profile.Profile
module Faults = Ba_harness.Faults
module Synthetic = Ba_harness.Synthetic
module Errors = Ba_robust.Errors
module Json = Ba_obs.Json

(** The fault suite's scenario generator (same recipe as test_faults). *)
let scenario ~seed : Faults.scenario =
  let rng = Random.State.make [| 0xFA17; seed |] in
  let n_procs = 1 + Random.State.int rng 3 in
  let cfgs =
    Array.init n_procs (fun _ ->
        Synthetic.cfg rng ~n:(2 + Random.State.int rng 10))
  in
  let procs =
    Array.map
      (fun g -> Synthetic.profile rng g ~invocations:20 ~max_steps:200)
      cfgs
  in
  { Faults.cfgs; profile = { Profile.procs; calls = [] } }

let lint (s : Faults.scenario) =
  Lint.analyze ~profile:s.Faults.profile s.Faults.cfgs

let rules_of ?severity (r : Lint.report) =
  List.filter_map
    (fun d ->
      match severity with
      | Some sev when d.Diagnostic.severity <> sev -> None
      | _ -> Some d.Diagnostic.rule)
    r.Lint.diags

(* ------------------------------------------------------------------ *)
(* fault kind -> expected lint rule                                    *)

(** Which Error rule must fire for each [`Must_error] fault kind.
    [Non_edge] lists two: its injector dangles instead when the CFG is
    complete.  [Drop_profile_edge] and [Permute_rows] are absent — the
    former must stay clean, the latter is seed-dependent by contract. *)
let expected_rule : (Faults.kind * string list) list =
  [
    (Faults.Zero_count, [ "prof-count-positive" ]);
    (Faults.Negative_count, [ "prof-count-positive" ]);
    (Faults.Dangling_label, [ "prof-dangling-dst" ]);
    (Faults.Non_edge, [ "prof-non-edge"; "prof-dangling-dst" ]);
    (Faults.Truncate_procs, [ "prof-proc-count" ]);
    (Faults.Extra_proc, [ "prof-proc-count" ]);
    (Faults.Truncate_blocks, [ "prof-block-count" ]);
    (Faults.Corrupt_call_graph, [ "prof-call-graph" ]);
    (Faults.Cfg_bad_successor, [ "cfg-successor-range" ]);
    (Faults.Cfg_bad_entry, [ "cfg-entry-range" ]);
    (Faults.Cfg_degenerate_branch, [ "cfg-degenerate-branch" ]);
    (Faults.Cfg_scrambled_ids, [ "cfg-block-id" ]);
  ]

let test_fault_rule_mapping () =
  (* the table must cover exactly the `Must_error catalogue *)
  List.iter
    (fun kind ->
      let mapped = List.mem_assoc kind expected_rule in
      match Faults.expectation kind with
      | `Must_error ->
          if not mapped then
            Alcotest.failf "no expected rule for fault %s" (Faults.name kind)
      | `Must_succeed | `Either ->
          if mapped then
            Alcotest.failf "fault %s is not `Must_error but is in the table"
              (Faults.name kind))
    Faults.all;
  List.iter
    (fun (kind, rules) ->
      for seed = 0 to 7 do
        let s = Faults.inject ~seed kind (scenario ~seed) in
        let fired = rules_of ~severity:Diagnostic.Error (lint s) in
        if not (List.exists (fun r -> List.mem r fired) rules) then
          Alcotest.failf "%s/seed=%d: expected one of [%s], got errors [%s]"
            (Faults.name kind) seed (String.concat " " rules)
            (String.concat " " (List.sort_uniq compare fired))
      done)
    expected_rule

(* A `Must_succeed fault must not produce Error findings (warnings and
   infos are fine), and the clean scenarios must lint error-free, so
   the mapping test above is attributable to the injected fault. *)
let test_clean_scenarios_have_no_errors () =
  for seed = 0 to 7 do
    let check tag s =
      let r = lint s in
      if r.Lint.errors > 0 then
        Alcotest.failf "%s/seed=%d: unexpected errors: %s" tag seed
          (String.concat "; "
             (List.filter_map
                (fun d ->
                  if d.Diagnostic.severity = Diagnostic.Error then
                    Some (Diagnostic.to_string d)
                  else None)
                r.Lint.diags))
    in
    check "clean" (scenario ~seed);
    check "drop-profile-edge"
      (Faults.inject ~seed Faults.Drop_profile_edge (scenario ~seed))
  done

(* The lint gate must agree with the driver: both reject exactly when
   the other does, with the same typed-error class. *)
let test_gate_matches_driver () =
  let class_of = function
    | Errors.Invalid_cfg _ -> "invalid-cfg"
    | Errors.Invalid_profile _ -> "invalid-profile"
    | Errors.Profile_mismatch _ -> "profile-mismatch"
    | e -> Errors.to_string e
  in
  List.iter
    (fun kind ->
      for seed = 0 to 3 do
        let s = Faults.inject ~seed kind (scenario ~seed) in
        let gate = Lint.gate ~profile:s.Faults.profile s.Faults.cfgs in
        let driver =
          Ba_align.Driver.align_checked Ba_align.Driver.Greedy
            Ba_machine.Model.alpha21164 s.Faults.cfgs
            ~train:s.Faults.profile
        in
        match (gate, driver) with
        | Ok (), Ok _ -> ()
        | Error a, Error b ->
            Alcotest.(check string)
              (Printf.sprintf "%s/seed=%d same error class" (Faults.name kind)
                 seed)
              (class_of a) (class_of b)
        | Ok (), Error e ->
            Alcotest.failf "%s/seed=%d: gate passed but driver failed: %s"
              (Faults.name kind) seed (Errors.to_string e)
        | Error e, Ok _ ->
            Alcotest.failf "%s/seed=%d: gate failed but driver passed: %s"
              (Faults.name kind) seed (Errors.to_string e)
      done)
    Faults.all

(* ------------------------------------------------------------------ *)
(* hygiene rules the fault catalogue cannot reach                      *)

let block id size term = Block.make ~id ~size term
let goto t = Block.Goto t
let branch t f = Block.Branch { t; f }

(** 0 -> 1 -> 2(exit), block 3 unreachable. *)
let cfg_with_unreachable () =
  Cfg.make ~name:"u" ~entry:0
    [|
      block 0 2 (goto 1);
      block 1 2 (goto 2);
      block 2 1 Block.Exit;
      block 3 4 (goto 2);
    |]

let test_unreachable_warns () =
  let r = Lint.analyze [| cfg_with_unreachable () |] in
  Alcotest.(check bool)
    "cfg-unreachable fires" true
    (List.mem "cfg-unreachable" (rules_of r));
  Alcotest.(check int) "it is a warning, not an error" 0 r.Lint.errors

let test_self_loop_warns () =
  let g =
    Cfg.make ~name:"s" ~entry:0
      [| block 0 1 (branch 1 2); block 1 3 (goto 1); block 2 1 Block.Exit |]
  in
  let r = Lint.analyze [| g |] in
  Alcotest.(check bool)
    "cfg-self-loop fires" true
    (List.mem "cfg-self-loop" (rules_of r))

let test_goto_cycle_warns () =
  let g =
    Cfg.make ~name:"c" ~entry:0
      [|
        block 0 1 (branch 1 3);
        block 1 2 (goto 2);
        block 2 2 (goto 1);
        block 3 1 Block.Exit;
      |]
  in
  let r = Lint.analyze [| g |] in
  Alcotest.(check bool)
    "cfg-goto-cycle fires" true
    (List.mem "cfg-goto-cycle" (rules_of r));
  (* a loop with a conditional exit is not a goto cycle *)
  let ok =
    Cfg.make ~name:"ok" ~entry:0
      [|
        block 0 1 (goto 1);
        block 1 2 (branch 1 2);
        block 2 1 Block.Exit;
      |]
  in
  Alcotest.(check bool)
    "escapable loop does not fire" false
    (List.mem "cfg-goto-cycle" (rules_of (Lint.analyze [| ok |])))

let chain_cfg () =
  Cfg.make ~name:"f" ~entry:0
    [| block 0 2 (goto 1); block 1 2 (goto 2); block 2 1 Block.Exit |]

let profile_of rows = { Profile.procs = [| { Profile.freqs = rows } |]; calls = [] }

let test_flow_conservation_warns () =
  (* block 1 receives 5 transfers but emits 3 *)
  let leaky = profile_of [| [| (1, 5) |]; [| (2, 3) |]; [||] |] in
  let r = Lint.analyze ~profile:leaky [| chain_cfg () |] in
  Alcotest.(check bool)
    "prof-flow-conservation fires" true
    (List.mem "prof-flow-conservation" (rules_of r));
  Alcotest.(check int) "as a warning" 0 r.Lint.errors;
  (* balanced flow is clean *)
  let tight = profile_of [| [| (1, 5) |]; [| (2, 5) |]; [||] |] in
  Alcotest.(check bool)
    "balanced flow does not fire" false
    (List.mem "prof-flow-conservation"
       (rules_of (Lint.analyze ~profile:tight [| chain_cfg () |])))

let test_overflow_risk_warns () =
  let huge = (max_int / 65536) + 1 in
  let p = profile_of [| [| (1, huge) |]; [| (2, huge) |]; [||] |] in
  let r = Lint.analyze ~profile:p [| chain_cfg () |] in
  Alcotest.(check bool)
    "prof-overflow-risk fires" true
    (List.mem "prof-overflow-risk" (rules_of r))

(** Entry branches; the taken arm (blocks 1, 3, 4, 6 — a majority of
    the 7 reachable blocks) never executes. *)
let cold_cfg () =
  Cfg.make ~name:"cold" ~entry:0
    [|
      block 0 1 (branch 1 2);
      block 1 2 (branch 3 4);
      block 2 1 (goto 5);
      block 3 1 (goto 6);
      block 4 1 (goto 6);
      block 5 1 Block.Exit;
      block 6 1 (goto 5);
    |]

let cold_profile () =
  profile_of [| [| (2, 9) |]; [||]; [| (5, 9) |]; [||]; [||]; [||]; [||] |]

let test_cold_coverage_infos () =
  let r = Lint.analyze ~profile:(cold_profile ()) [| cold_cfg () |] in
  let rules = rules_of r in
  Alcotest.(check bool)
    "prof-cold-branch fires" true
    (List.mem "prof-cold-branch" rules);
  Alcotest.(check bool)
    "prof-cold-ratio fires" true
    (List.mem "prof-cold-ratio" rules);
  Alcotest.(check int) "infos only" 0 (r.Lint.errors + r.Lint.warnings)

(* ------------------------------------------------------------------ *)
(* gate semantics, rendering, annotations                              *)

let test_strict_promotes_warnings () =
  let leaky = profile_of [| [| (1, 5) |]; [| (2, 3) |]; [||] |] in
  let cfgs = [| chain_cfg () |] in
  (match Lint.gate ~profile:leaky cfgs with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "default gate must pass on warnings: %s"
        (Errors.to_string e));
  match Lint.gate ~strict:true ~profile:leaky cfgs with
  | Error (Errors.Invalid_profile _) -> ()
  | Error e ->
      Alcotest.failf "strict gate: wrong class %s" (Errors.to_string e)
  | Ok () -> Alcotest.fail "strict gate must reject warnings"

let test_infos_never_gate () =
  match Lint.gate ~strict:true ~profile:(cold_profile ()) [| cold_cfg () |] with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "infos must not gate even under strict: %s"
        (Errors.to_string e)

let test_report_json_parses () =
  let s = Faults.inject ~seed:1 Faults.Negative_count (scenario ~seed:1) in
  let doc = Lint.report_json (lint s) in
  match Json.parse (Json.to_string doc) with
  | Error m -> Alcotest.failf "report JSON does not re-parse: %s" m
  | Ok v ->
      Alcotest.(check (option string))
        "schema" (Some "balign-lint-1")
        (Option.bind (Json.member "schema" v) Json.to_str);
      let findings =
        Option.bind (Json.member "findings" v) Json.to_list
        |> Option.value ~default:[]
      in
      Alcotest.(check bool) "has findings" true (findings <> []);
      List.iter
        (fun f ->
          if Option.bind (Json.member "rule" f) Json.to_str = None then
            Alcotest.fail "finding without rule id")
        findings

let test_dot_annotations () =
  let g = cfg_with_unreachable () in
  let r = Lint.analyze [| g |] in
  let block_attr, edge_attr = Lint.dot_annotations ~proc:0 r.Lint.diags in
  (match block_attr 3 with
  | Some attr ->
      Alcotest.(check bool)
        "offending block is filled" true
        (String.length attr > 0
        && String.length attr > String.length "style=filled"
        && String.sub attr 0 12 = "style=filled")
  | None -> Alcotest.fail "unreachable block 3 has no annotation");
  Alcotest.(check (option string)) "clean block untouched" None (block_attr 0);
  Alcotest.(check (option string)) "clean edge untouched" None (edge_attr 0 1);
  let dot = Dot.to_string ~block_attr ~edge_attr g in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "annotations reach the DOT output" true
    (contains dot "fillcolor")

(* ------------------------------------------------------------------ *)
(* catalogue integrity                                                 *)

let test_catalogue_integrity () =
  let ids = List.map (fun r -> r.Rules.id) Rules.all in
  let codes = List.map (fun r -> r.Rules.code) Rules.all in
  Alcotest.(check bool)
    "at least 12 rules" true
    (List.length Rules.all >= 12);
  Alcotest.(check int) "rule ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  Alcotest.(check int) "rule codes unique" (List.length codes)
    (List.length (List.sort_uniq compare codes));
  List.iter
    (fun r ->
      let family = String.sub r.Rules.code 0 3 in
      let prefix = String.sub r.Rules.id 0 4 in
      let consistent =
        (prefix = "cfg-" && family = "BA1")
        || (prefix = "prof" && family = "BA2")
        || (prefix = "ana-" && family = "BA3")
      in
      if not consistent then
        Alcotest.failf "rule %s has inconsistent code %s" r.Rules.id
          r.Rules.code;
      if r.Rules.doc = "" then Alcotest.failf "rule %s undocumented" r.Rules.id)
    Rules.all;
  Alcotest.(check bool)
    "by_id finds rules" true
    (Rules.by_id "cfg-unreachable" <> None && Rules.by_id "nope" = None)

(* ------------------------------------------------------------------ *)
(* doc drift: the ANALYSIS.md rule table mirrors Rules.all             *)

(** docs/ANALYSIS.md (a declared dep of this test) carries the rule
    catalogue as a markdown table whose rows look like
    [| `BA101` | cfg-empty | error | ... |].  Extract the (code, id)
    pairs from every such row. *)
let documented_rules path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> (
            match String.split_on_char '|' line with
            | _ :: code :: id :: _ -> (
                let code = String.trim code and id = String.trim id in
                match String.length code with
                | 7 when code.[0] = '`' && code.[6] = '`' ->
                    go ((String.sub code 1 5, id) :: acc)
                | _ -> go acc)
            | _ -> go acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(** Both directions must hold: every rule in {!Rules.all} has a doc
    row with the same code/id pairing, and every doc row names a live
    rule.  A new rule without documentation — or a stale row for a
    renamed rule — fails here instead of drifting silently. *)
let test_doc_catalogue_in_sync () =
  (* under `dune runtest` the binary runs in _build/default/test and
     the declared dep materializes the doc one level up; `dune exec`
     from the repo root sees the source tree directly *)
  let path =
    List.find Sys.file_exists [ "../docs/ANALYSIS.md"; "docs/ANALYSIS.md" ]
  in
  let documented = documented_rules path in
  let in_code =
    List.sort compare
      (List.map (fun r -> (r.Rules.code, r.Rules.id)) Rules.all)
  in
  Alcotest.(check bool)
    "doc table non-empty" true
    (List.length documented > 0);
  Alcotest.(check (list (pair string string)))
    "ANALYSIS.md rule table = Rules.all" in_code
    (List.sort compare documented)

let () =
  Alcotest.run "check"
    [
      ( "fault-mapping",
        [
          Alcotest.test_case "every `Must_error fault fires its rule" `Quick
            test_fault_rule_mapping;
          Alcotest.test_case "clean scenarios lint error-free" `Quick
            test_clean_scenarios_have_no_errors;
          Alcotest.test_case "lint gate agrees with the driver" `Slow
            test_gate_matches_driver;
        ] );
      ( "rules",
        [
          Alcotest.test_case "unreachable block warns" `Quick
            test_unreachable_warns;
          Alcotest.test_case "self-loop warns" `Quick test_self_loop_warns;
          Alcotest.test_case "goto cycle warns" `Quick test_goto_cycle_warns;
          Alcotest.test_case "flow conservation warns" `Quick
            test_flow_conservation_warns;
          Alcotest.test_case "overflow risk warns" `Quick
            test_overflow_risk_warns;
          Alcotest.test_case "cold coverage informs" `Quick
            test_cold_coverage_infos;
        ] );
      ( "gate-and-render",
        [
          Alcotest.test_case "--strict promotes warnings" `Quick
            test_strict_promotes_warnings;
          Alcotest.test_case "infos never gate" `Quick test_infos_never_gate;
          Alcotest.test_case "report JSON re-parses" `Quick
            test_report_json_parses;
          Alcotest.test_case "DOT annotations" `Quick test_dot_annotations;
          Alcotest.test_case "catalogue integrity" `Quick
            test_catalogue_integrity;
          Alcotest.test_case "ANALYSIS.md catalogue in sync" `Quick
            test_doc_catalogue_in_sync;
        ] );
    ]
