(** Robustness pipeline tests: typed validation errors, solver budgets,
    and the deterministic degradation chain. *)

open Ba_align
module Profile = Ba_profile.Profile
module Synthetic = Ba_harness.Synthetic
module Errors = Ba_robust.Errors
module Budget = Ba_robust.Budget

let penalties = Ba_machine.Model.alpha21164
let tsp = Driver.Tsp Tsp_align.default

let program ~seed ~n_procs =
  let rng = Random.State.make [| 0x0b0e; seed |] in
  let cfgs =
    Array.init n_procs (fun _ ->
        Synthetic.cfg rng ~n:(4 + Random.State.int rng 12))
  in
  let procs =
    Array.map
      (fun g -> Synthetic.profile rng g ~invocations:25 ~max_steps:300)
      cfgs
  in
  (cfgs, { Profile.procs; calls = [] })

(* A profile collected from a different program must be rejected with a
   typed error, not a crash or a silent garbage layout. *)
let test_wrong_program_profile () =
  let cfgs, _ = program ~seed:1 ~n_procs:3 in
  let _, other = program ~seed:2 ~n_procs:4 in
  (match Driver.align_checked tsp penalties cfgs ~train:other with
  | Ok _ -> Alcotest.fail "foreign profile accepted"
  | Error (Errors.Profile_mismatch _) -> ()
  | Error e ->
      Alcotest.failf "expected Profile_mismatch, got %s" (Errors.to_string e));
  (* same procedure count but wrong shapes *)
  let _, same_count = program ~seed:3 ~n_procs:3 in
  match Driver.align_checked tsp penalties cfgs ~train:same_count with
  | Ok _ -> Alcotest.fail "shape-mismatched profile accepted"
  | Error (Errors.Profile_mismatch _) | Error (Errors.Invalid_profile _) -> ()
  | Error e ->
      Alcotest.failf "expected profile error, got %s" (Errors.to_string e)

(* Corrupting a single count must surface as Invalid_profile naming the
   edge, before any solver runs. *)
let test_corrupted_profile () =
  let cfgs, train = program ~seed:4 ~n_procs:2 in
  let fid = ref None in
  Array.iteri
    (fun f p ->
      Array.iteri
        (fun src row ->
          if !fid = None && Array.length row > 0 then (
            let d, n = row.(0) in
            row.(0) <- (d, -n);
            fid := Some (f, src)))
        p.Profile.freqs)
    train.Profile.procs;
  Alcotest.(check bool) "found an edge to corrupt" true (!fid <> None);
  match Driver.align_checked tsp penalties cfgs ~train with
  | Ok _ -> Alcotest.fail "negative count accepted"
  | Error (Errors.Invalid_profile _) -> ()
  | Error e ->
      Alcotest.failf "expected Invalid_profile, got %s" (Errors.to_string e)

(* The contract of the degradation chain: with a zero deadline the TSP
   and Calder stages must refuse to start and every procedure must come
   out bit-for-bit identical to the Greedy safety net, with the timeout
   recorded as the fallback reason. *)
let test_deadline_zero_is_greedy () =
  let cfgs, train = program ~seed:5 ~n_procs:3 in
  match Driver.align_checked ~deadline_ms:0 tsp penalties cfgs ~train with
  | Error e -> Alcotest.failf "deadline 0 failed: %s" (Errors.to_string e)
  | Ok report ->
      Array.iteri
        (fun fid cfg ->
          let greedy =
            Greedy.align cfg ~profile:(Profile.proc train fid)
          in
          Alcotest.(check (array int))
            (Printf.sprintf "proc %d order = greedy" fid)
            greedy
            report.Driver.aligned.Driver.orders.(fid))
        cfgs;
      Alcotest.(check int)
        "every procedure degraded"
        (Array.length cfgs)
        (List.length report.Driver.fallbacks);
      List.iter
        (fun f ->
          Alcotest.(check string)
            "degraded to greedy" "greedy"
            (Driver.method_name f.Driver.used);
          match f.Driver.reason with
          | Errors.Solver_timeout _ -> ()
          | e ->
              Alcotest.failf "expected Solver_timeout reason, got %s"
                (Errors.to_string e))
        report.Driver.fallbacks

(* With fallback disabled, the same timeout is a hard typed error. *)
let test_deadline_zero_no_fallback () =
  let cfgs, train = program ~seed:5 ~n_procs:2 in
  match
    Driver.align_checked ~deadline_ms:0 ~fallback:false tsp penalties cfgs
      ~train
  with
  | Ok _ -> Alcotest.fail "zero budget succeeded without fallback"
  | Error (Errors.Solver_timeout _) -> ()
  | Error e ->
      Alcotest.failf "expected Solver_timeout, got %s" (Errors.to_string e)

(* A generous deadline must not degrade anything, and the result must
   agree with the unchecked driver. *)
let test_generous_deadline_no_fallback () =
  let cfgs, train = program ~seed:6 ~n_procs:2 in
  match
    Driver.align_checked ~deadline_ms:60_000 (Driver.Calder) penalties cfgs
      ~train
  with
  | Error e -> Alcotest.failf "rejected: %s" (Errors.to_string e)
  | Ok report ->
      Alcotest.(check int) "no fallbacks" 0 (List.length report.Driver.fallbacks);
      let plain = Driver.align Driver.Calder penalties cfgs ~train in
      Array.iteri
        (fun fid o ->
          Alcotest.(check (array int))
            (Printf.sprintf "proc %d agrees with unchecked driver" fid)
            plain.Driver.orders.(fid) o)
        report.Driver.aligned.Driver.orders

(* Budget unit semantics. *)
let test_budget_semantics () =
  let b = Budget.create ~deadline_ms:0 () in
  Alcotest.(check bool) "deadline 0 exhausted at once" true (Budget.exhausted b);
  let u = Budget.unlimited () in
  Alcotest.(check bool) "unlimited not exhausted" false (Budget.exhausted u);
  let m = Budget.create ~max_moves:2 () in
  Budget.spend m;
  Alcotest.(check bool) "one move left" false (Budget.exhausted m);
  Budget.spend m;
  Alcotest.(check bool) "moves exhausted" true (Budget.exhausted m);
  match Budget.timeout_error ~proc:7 b with
  | Errors.Solver_timeout { proc = Some 7; deadline_ms = Some 0; _ } -> ()
  | e -> Alcotest.failf "bad timeout error: %s" (Errors.to_string e)

(* Per-request budget isolation: the serve daemon creates one budget per
   request, so budgets must never share state — one request's exhausted
   deadline must not bleed into another in flight. *)
let test_budget_per_request () =
  let tight = Budget.create ~deadline_ms:0 () in
  let roomy = Budget.create ~deadline_ms:60_000 () in
  Alcotest.(check bool) "tight exhausted" true (Budget.exhausted tight);
  Alcotest.(check bool) "roomy unaffected" false (Budget.exhausted roomy);
  Budget.spend tight;
  Budget.spend tight;
  Alcotest.(check int) "move counters independent" 0 (Budget.moves roomy);
  (match Budget.remaining_ms (Budget.unlimited ()) with
  | None -> ()
  | Some _ -> Alcotest.fail "unlimited budget reported a remaining time");
  (match Budget.remaining_ms tight with
  | Some r -> Alcotest.(check bool) "tight has none left" true (r <= 0.)
  | None -> Alcotest.fail "deadline budget lost its deadline");
  match Budget.remaining_ms roomy with
  | Some r ->
      Alcotest.(check bool) "roomy has most of its time" true
        (0. < r && r <= 60_000.)
  | None -> Alcotest.fail "deadline budget lost its deadline"

(* The daemon-side deadline policy helper. *)
let test_clamp_deadline () =
  let check what got want = Alcotest.(check bool) what true (got = want) in
  check "no request, no cap" (Budget.clamp_deadline None) None;
  check "request passes uncapped" (Budget.clamp_deadline (Some 50)) (Some 50);
  check "cap fills in a default" (Budget.clamp_deadline ~cap:100 None) (Some 100);
  check "under the cap untouched"
    (Budget.clamp_deadline ~cap:100 (Some 50))
    (Some 50);
  check "over the cap clamped"
    (Budget.clamp_deadline ~cap:100 (Some 500))
    (Some 100);
  check "negative request is an instant deadline"
    (Budget.clamp_deadline (Some (-5)))
    (Some 0)

(* The move counter is atomic: two domains spending into the same budget
   lose no increments, and budgets spent concurrently stay separate. *)
let test_budget_atomic_moves () =
  let shared = Budget.create ~max_moves:max_int () in
  let mine = Budget.create ~max_moves:max_int () in
  let spend_n b n = fun () -> for _ = 1 to n do Budget.spend b done in
  let d1 = Domain.spawn (spend_n shared 50_000) in
  let d2 = Domain.spawn (spend_n shared 50_000) in
  (spend_n mine 7_000) ();
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no lost increments" 100_000 (Budget.moves shared);
  Alcotest.(check int) "concurrent budgets independent" 7_000
    (Budget.moves mine)

(* Exit codes are distinct and stable: they are part of the CLI contract
   documented in docs/ROBUSTNESS.md. *)
let test_exit_codes_distinct () =
  let samples =
    [
      Errors.Usage "x";
      Errors.Parse_error { stage = "parser"; message = "x" };
      Errors.Invalid_input { tokens = [ (0, "x") ] };
      Errors.Invalid_cfg { proc = None; name = None; reason = "x" };
      Errors.Invalid_profile { proc = None; src = None; dst = None; reason = "x" };
      Errors.Profile_mismatch { proc = None; expected = 1; got = 2; what = "x" };
      Errors.Solver_timeout
        { proc = None; elapsed_ms = 0.; deadline_ms = Some 0; moves = 0 };
      Errors.Invalid_layout { proc = None; name = None; reason = "x" };
      Errors.Io_error { path = "x"; reason = "x" };
      Errors.Internal { where = "x"; reason = "x" };
    ]
  in
  let codes = List.map Errors.exit_code samples in
  (* both profile error classes share code 6; all other codes are
     pairwise distinct *)
  Alcotest.(check int)
    "distinct code classes"
    (List.length codes - 1)
    (List.length (List.sort_uniq compare codes));
  Alcotest.(check int) "profile classes share a code"
    (Errors.exit_code
       (Errors.Invalid_profile
          { proc = None; src = None; dst = None; reason = "x" }))
    (Errors.exit_code
       (Errors.Profile_mismatch { proc = None; expected = 1; got = 2; what = "x" }));
  List.iter
    (fun c ->
      Alcotest.(check bool) "code in 2..10" true (c >= 2 && c <= 10))
    codes

(* The chain is deterministic and always ends in Original. *)
let test_chain_shape () =
  let check_chain m expect =
    Alcotest.(check (list string))
      (Driver.method_name m ^ " chain")
      expect
      (List.map Driver.method_name (Driver.chain m))
  in
  check_chain tsp [ "tsp"; "calder"; "greedy"; "original" ];
  check_chain Driver.Calder_exhaustive
    [ "calder-exhaustive"; "calder"; "greedy"; "original" ];
  check_chain Driver.Calder [ "calder"; "greedy"; "original" ];
  check_chain Driver.Greedy [ "greedy"; "original" ];
  check_chain Driver.Original [ "original" ]

let () =
  Alcotest.run "robust"
    [
      ( "validation",
        [
          Alcotest.test_case "wrong-program profile rejected" `Quick
            test_wrong_program_profile;
          Alcotest.test_case "corrupted profile rejected" `Quick
            test_corrupted_profile;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "deadline 0 degrades to greedy bit-for-bit"
            `Quick test_deadline_zero_is_greedy;
          Alcotest.test_case "deadline 0 without fallback errors" `Quick
            test_deadline_zero_no_fallback;
          Alcotest.test_case "generous deadline never degrades" `Quick
            test_generous_deadline_no_fallback;
          Alcotest.test_case "budget unit semantics" `Quick
            test_budget_semantics;
          Alcotest.test_case "per-request budgets isolated" `Quick
            test_budget_per_request;
          Alcotest.test_case "deadline clamping" `Quick test_clamp_deadline;
          Alcotest.test_case "move counter atomic across domains" `Quick
            test_budget_atomic_moves;
        ] );
      ( "contract",
        [
          Alcotest.test_case "exit codes distinct and documented" `Quick
            test_exit_codes_distinct;
          Alcotest.test_case "degradation chains" `Quick test_chain_shape;
        ] );
    ]
