Static analyzer and certificate CLI, end to end: `balign lint` text
and JSON renderings, the documented exit codes, `align --certify`
certificates, and the DOT lint annotations — the machine-readable
artifacts validated structurally with check_lint.

  $ export BALIGN=../../bin/balign.exe CL=../tools/check_lint.exe
  $ cat > p.mc <<'EOF'
  > fn main() {
  >   var n = read();
  >   var s = 0;
  >   while (n > 0) {
  >     if (n % 2 == 0) { s = s + n; } else { s = s - 1; }
  >     n = n - 1;
  >   }
  >   print(s);
  > }
  > EOF

A healthy program is clean, with or without a training profile:

  $ $BALIGN lint p.mc
  lint: 0 error(s), 0 warning(s), 0 info(s)
  $ $BALIGN lint p.mc --input 9 --strict
  lint: 0 error(s), 0 warning(s), 0 info(s)

Training on an input that misses a path yields deterministic coverage
findings — which are informational, so even --strict keeps exit 0:

  $ cat > cold.mc <<'EOF'
  > fn main() {
  >   var n = read();
  >   if (n > 100) {
  >     if (n > 200) { print(1); } else { print(2); }
  >   } else {
  >     print(3);
  >   }
  >   print(n);
  > }
  > EOF
  $ $BALIGN lint cold.mc --input 5 --strict
  BA209 info    prof-cold-branch [proc 0 (main), block 1]: conditional block 1 never executed on the training input (hint: train on an input that exercises this path)
  BA210 info    prof-cold-ratio [proc 0 (main)]: 4 of 7 reachable block(s) never executed on the training input (hint: train on a more representative input)
  lint: 0 error(s), 0 warning(s), 2 info(s)

The JSON rendering carries the same findings; check_lint re-validates
every rule id, code and severity against the live catalogue and
recounts the tallies:

  $ $BALIGN lint cold.mc --input 5 --format json > l.json
  $ $CL l.json
  lint ok: 2 finding(s), 0 error(s)

lint shares the pipeline's documented exit codes (compile and input
errors):

  $ printf 'fn main( {' > bad.mc
  $ $BALIGN lint bad.mc 2>/dev/null
  [3]
  $ $BALIGN lint p.mc --input 1,two 2>/dev/null
  [4]

align --certify re-verifies the produced layouts from first principles
and writes a machine-readable certificate; check_lint --cert checks
the arithmetic (total = sum of per-procedure costs, bound <= cost):

  $ $BALIGN align p.mc --input 9 --certify c.json
  main: 0 4 6 1 2 5 3
  control penalty: 61 -> 37 cycles (tsp)
  simulated cycles: 295 -> 259 (icache misses 4 -> 4)
  certificate: 1 procedure(s), total cost 37 cycles
  $ $CL --cert c.json
  cert ok: 1 procedure(s), total cost 37 cycles
  $ cat c.json
  {"schema":"balign-cert-1","total_cost":37,"procs":[{"proc":0,"name":"main","n_blocks":7,"cost":37,"hk_bound":37,"sym_checked":true}]}

dot --lint colors offending blocks and attaches rule ids as tooltips:

  $ $BALIGN dot cold.mc --lint --input 5 | grep -c 'tooltip="BA209 prof-cold-branch"'
  1

lint --list prints the whole catalogue (one line per rule, in gating
order); the BA3xx structural family rides at the end and is entirely
non-gating (warnings and infos only):

  $ $BALIGN lint --list | wc -l
  24
  $ $BALIGN lint --list | sed -n '1p;11p'
  BA101  cfg-empty                  error    a procedure must have at least one basic block
  BA201  prof-proc-count            error    the profile must describe exactly the program's procedures
  $ $BALIGN lint --list | grep -c '^BA3.*\(warning\|info\)'
  4

Without --list a FILE is required:

  $ $BALIGN lint 2>/dev/null
  [2]

--format sarif renders the same findings as a SARIF 2.1.0 log: the
driver carries the full rule catalogue, and each result points at its
procedure, block, or edge through logicalLocations:

  $ $BALIGN lint cold.mc --input 5 --format sarif > l.sarif
  $ grep -o '"[$]schema":"[^"]*"' l.sarif
  "$schema":"https://json.schemastore.org/sarif-2.1.0.json"
  $ grep -o '"version":"2.1.0"' l.sarif
  "version":"2.1.0"
  $ grep -o '"name":"balign-lint"' l.sarif
  "name":"balign-lint"
  $ grep -o '"id":"[a-z-]*"' l.sarif | wc -l
  24
  $ grep -o '"ruleId":"[a-z-]*"' l.sarif
  "ruleId":"prof-cold-branch"
  "ruleId":"prof-cold-ratio"
  $ grep -o '"fullyQualifiedName":"[^"]*"' l.sarif
  "fullyQualifiedName":"procedure main"
  "fullyQualifiedName":"block 1"
  "fullyQualifiedName":"procedure main"
