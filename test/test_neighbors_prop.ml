(* Differential wall for the k-NN candidate-list construction
   ({!Ba_tsp.Neighbors}).  Two independent oracles pin both algorithms:

   - [Exact] must equal the legacy dense full-sort scan byte for byte,
     including its heapsort tie order — the anchor that keeps every
     committed small-instance trajectory bit-identical.
   - [Select] (the heap-select merge over sparse CSR rows) must equal
     the canonical oracle: all partners sorted by (cost, partner id),
     truncated to k.  That order is a strict total order, so the
     expected list is unique and any correct implementation matches it.

   Both must agree on the selected cost multiset, exclude the locked
   partner, clamp k into [0, n−1], and be bit-identical at any executor
   job count. *)

open Ba_tsp
module Executor = Ba_engine.Executor

let gen_seed = QCheck2.Gen.int_bound 1_000_000

(* ---------------- oracles ---------------- *)

(* the legacy dense symmetrization matrix *)
let dense_sym (d : Dtsp.t) =
  let n = d.Dtsp.n in
  let cmax = Dtsp.max_cost d in
  let m = (2 * cmax) + 2 in
  let inf = 8 * (cmax + m + 1) in
  let nn = 2 * n in
  let cost = Array.make_matrix nn nn inf in
  for i = 0 to n - 1 do
    cost.(2 * i).((2 * i) + 1) <- -m;
    cost.((2 * i) + 1).(2 * i) <- -m;
    for j = 0 to n - 1 do
      if i <> j then begin
        cost.((2 * i) + 1).(2 * j) <- Dtsp.cost d i j;
        cost.(2 * j).((2 * i) + 1) <- Dtsp.cost d i j
      end
    done
  done;
  cost

(* the legacy dense neighbor-list construction, byte for byte: ascending
   prepend scan, Array.sort on matrix lookups, truncate to k *)
let legacy_oracle (s : Sym.t) sym_matrix ~k =
  let nn = s.Sym.nn in
  Array.init nn (fun a ->
      let cand = ref [] in
      for b = 0 to nn - 1 do
        if
          b <> a
          && (not (Sym.is_locked s a b))
          && sym_matrix.(a).(b) < s.Sym.inf
        then cand := b :: !cand
      done;
      let arr = Array.of_list !cand in
      Array.sort
        (fun x y -> compare sym_matrix.(a).(x) sym_matrix.(a).(y))
        arr;
      if Array.length arr <= k then arr else Array.sub arr 0 k)

(* the canonical oracle: every finite non-locked partner keyed by
   (cost, partner id), full sort, truncate — the unique answer under
   the strict total order [Select] promises *)
let canonical_oracle (s : Sym.t) ~k =
  let nn = s.Sym.nn in
  let k = max 0 k in
  Array.init nn (fun a ->
      let cand = ref [] in
      for b = nn - 1 downto 0 do
        if b <> a && not (Sym.is_locked s a b) then begin
          let c = Sym.cost s a b in
          if c < s.Sym.inf then cand := (c, b) :: !cand
        end
      done;
      let arr = Array.of_list !cand in
      Array.sort compare arr;
      Array.map snd (if Array.length arr <= k then arr else Array.sub arr 0 k))

(* ---------------- generators ---------------- *)

(* dense matrix with clustered values so per-row defaults and ties
   actually occur *)
let random_matrix rng n =
  let palette = [| 0; 3; 3; 7; 50; Random.State.int rng 1000 |] in
  Array.init n (fun _ ->
      Array.init n (fun _ ->
          palette.(Random.State.int rng (Array.length palette))))

(* all off-diagonal costs equal: exercises the uniform-row shortcuts *)
let uniform_matrix rng n =
  let v = Random.State.int rng 100 in
  Array.init n (fun i -> Array.init n (fun j -> if i = j then 0 else v))

(* direct sparse construction: per-row defaults + few explicit
   deviations, never materializing a matrix *)
let random_sparse rng n =
  let palette = [| 1; 4; 4; 9; 77 |] in
  let default =
    Array.init n (fun _ ->
        palette.(Random.State.int rng (Array.length palette)))
  in
  let rows =
    Array.init n (fun _ ->
        let deg = Random.State.int rng (min n 6) in
        let cols = Array.init n Fun.id in
        (* partial Fisher-Yates: first [deg] entries are distinct *)
        for i = 0 to deg - 1 do
          let j = i + Random.State.int rng (n - i) in
          let t = cols.(i) in
          cols.(i) <- cols.(j);
          cols.(j) <- t
        done;
        List.init deg (fun i -> (cols.(i), Random.State.int rng 200))
        |> List.sort compare)
  in
  Dtsp.of_rows ~n ~default rows

(* mixed: uniform rows interleaved with clustered ones *)
let mixed_matrix rng n =
  let v = 5 in
  Array.init n (fun i ->
      if i land 1 = 0 then Array.init n (fun j -> if i = j then 0 else v)
      else Array.init n (fun _ -> Random.State.int rng 30))

let instance_of_seed seed =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 30 in
  match Random.State.int rng 4 with
  | 0 -> Dtsp.make (random_matrix rng n)
  | 1 -> Dtsp.make (uniform_matrix rng n)
  | 2 -> Dtsp.make (mixed_matrix rng n)
  | _ -> random_sparse rng n

let ks_for n = [ -2; 0; 1; 3; 8; n - 1; n + 5 ]

let pp_list arr =
  String.concat "," (Array.to_list (Array.map string_of_int arr))

let check_lists ~what ~k got want =
  Array.iteri
    (fun a w ->
      if got.(a) <> w then
        QCheck2.Test.fail_reportf
          "%s: city %d differs at k=%d (got %s, want %s)" what a k
          (pp_list got.(a)) (pp_list w))
    want;
  true

(* ---------------- properties ---------------- *)

let prop_select_canonical =
  QCheck2.Test.make ~count:300
    ~name:"Select = canonical (cost, partner) oracle" gen_seed (fun seed ->
      let d = instance_of_seed seed in
      let s = Sym.of_dtsp d in
      List.for_all
        (fun k ->
          check_lists ~what:"select" ~k
            (Neighbors.of_sym ~mode:Neighbors.Select s ~k)
            (canonical_oracle s ~k))
        (ks_for d.Dtsp.n))

let prop_exact_legacy =
  QCheck2.Test.make ~count:300
    ~name:"Exact = legacy dense full-sort scan (tie order included)"
    gen_seed (fun seed ->
      let d = instance_of_seed seed in
      let s = Sym.of_dtsp d in
      let dense = dense_sym d in
      List.for_all
        (fun k ->
          if k < 0 then true (* the legacy scan predates negative k *)
          else
            check_lists ~what:"exact" ~k
              (Neighbors.of_sym ~mode:Neighbors.Exact s ~k)
              (legacy_oracle s dense ~k))
        (ks_for d.Dtsp.n))

let prop_modes_agree_on_costs =
  QCheck2.Test.make ~count:300
    ~name:"Exact and Select pick identical cost sequences" gen_seed
    (fun seed ->
      let d = instance_of_seed seed in
      let s = Sym.of_dtsp d in
      List.for_all
        (fun k ->
          let costs lists =
            Array.mapi (fun a l -> Array.map (Sym.cost s a) l) lists
          in
          let e = costs (Neighbors.of_sym ~mode:Neighbors.Exact s ~k) in
          let c = costs (Neighbors.of_sym ~mode:Neighbors.Select s ~k) in
          if e <> c then
            QCheck2.Test.fail_reportf "cost sequences differ at k=%d" k;
          true)
        (ks_for d.Dtsp.n))

let prop_locked_excluded =
  QCheck2.Test.make ~count:300
    ~name:"no list contains self, the locked partner, or same parity"
    gen_seed (fun seed ->
      let d = instance_of_seed seed in
      let s = Sym.of_dtsp d in
      List.iter
        (fun mode ->
          let nbr = Neighbors.of_sym ~mode s ~k:8 in
          Array.iteri
            (fun a l ->
              Array.iter
                (fun b ->
                  if b = a then
                    QCheck2.Test.fail_reportf "city %d lists itself" a;
                  if Sym.is_locked s a b then
                    QCheck2.Test.fail_reportf
                      "city %d lists locked partner %d" a b;
                  if a land 1 = b land 1 then
                    QCheck2.Test.fail_reportf
                      "city %d lists same-parity %d" a b)
                l)
            nbr)
        [ Neighbors.Exact; Neighbors.Select ];
      true)

let prop_executor_identity =
  QCheck2.Test.make ~count:60
    ~name:"pooled construction bit-identical to sequential" gen_seed
    (fun seed ->
      let d = instance_of_seed seed in
      let s = Sym.of_dtsp d in
      List.iter
        (fun mode ->
          List.iter
            (fun jobs ->
              let seq = Neighbors.of_sym ~mode s ~k:8 in
              let par =
                Neighbors.of_sym ~mode ~exec:(Executor.Pool jobs) s ~k:8
              in
              if seq <> par then
                QCheck2.Test.fail_reportf "jobs=%d differs from Seq" jobs)
            [ 2; 3 ])
        [ Neighbors.Exact; Neighbors.Select ];
      true)

(* ---------------- unit regressions ---------------- *)

(* the latent edge case: k beyond the partner count (and below zero)
   must clamp identically on every path — the dense scan truncated
   naturally, the uniform shortcut used to trust k blindly *)
let test_k_clamping () =
  let rng = Random.State.make [| 42 |] in
  List.iter
    (fun d ->
      let s = Sym.of_dtsp d in
      let n = d.Dtsp.n in
      List.iter
        (fun mode ->
          let full = Neighbors.of_sym ~mode s ~k:(n - 1) in
          List.iter
            (fun k ->
              let got = Neighbors.of_sym ~mode s ~k in
              Array.iteri
                (fun a l ->
                  Alcotest.(check int)
                    (Printf.sprintf "city %d length at k=%d" a k)
                    (max 0 (min k (n - 1)))
                    (Array.length l);
                  (* oversized and negative k degrade to the full /
                     empty list, never crash, never pad *)
                  if k >= n - 1 then
                    Alcotest.(check (array int))
                      (Printf.sprintf "city %d full list at k=%d" a k)
                      full.(a) l)
                got)
            [ -3; 0; 1; n - 1; n; n + 17 ])
        [ Neighbors.Exact; Neighbors.Select ])
    [
      Dtsp.make [| [| 0; 5 |]; [| 2; 0 |] |];
      (* n = 2: a single partner *)
      Dtsp.make (uniform_matrix rng 7);
      random_sparse rng 9;
    ]

let test_auto_gating () =
  (* below the threshold Auto is Exact; above it Auto is Select *)
  let rng = Random.State.make [| 7 |] in
  let small = Sym.of_dtsp (Dtsp.make (random_matrix rng 20)) in
  Alcotest.(check bool) "auto = exact below threshold" true
    (Neighbors.of_sym small ~k:8
    = Neighbors.of_sym ~mode:Neighbors.Exact small ~k:8);
  let n = Neighbors.exact_threshold + 40 in
  let big = Sym.of_dtsp (random_sparse rng n) in
  Alcotest.(check bool) "auto = select above threshold" true
    (Neighbors.of_sym big ~k:8
    = Neighbors.of_sym ~mode:Neighbors.Select big ~k:8);
  (* and the big Select list must still match the canonical oracle *)
  Alcotest.(check bool) "big select = canonical oracle" true
    (Neighbors.of_sym big ~k:8 = canonical_oracle big ~k:8)

let () =
  Alcotest.run "neighbors-prop"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_select_canonical;
          QCheck_alcotest.to_alcotest prop_exact_legacy;
          QCheck_alcotest.to_alcotest prop_modes_agree_on_costs;
          QCheck_alcotest.to_alcotest prop_locked_excluded;
        ] );
      ("executor", [ QCheck_alcotest.to_alcotest prop_executor_identity ]);
      ( "regression",
        [
          Alcotest.test_case "k clamping" `Quick test_k_clamping;
          Alcotest.test_case "auto gating" `Slow test_auto_gating;
        ] );
    ]
