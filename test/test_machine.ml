(* Tests for the machine model: the cost function (Table 3 semantics),
   realization, the pipeline simulator, the I-cache and the cycle model. *)

open Ba_cfg
open Ba_machine

let p = Penalties.alpha_21164

(* ---------------- transfer penalties (Table 3) ---------------- *)

let test_fall_is_free () =
  let k, c = Cost.transfer p (Layout.R_fall 1) ~predicted:None ~dest:1 in
  Alcotest.(check int) "no cycles" 0 c;
  Alcotest.(check string) "kind" "fall" (Cost.kind_to_string k)

let test_uncond_costs_two () =
  let _, c = Cost.transfer p (Layout.R_jump 3) ~predicted:None ~dest:3 in
  Alcotest.(check int) "uncond" 2 c

let test_cond_cases () =
  let rt = Layout.R_cond { taken = 2; fall = 1; via_fixup = false } in
  (* predicted fall, goes fall: free *)
  Alcotest.(check int) "fall correct" 0
    (Cost.transfer_penalty p rt ~predicted:(Some 1) ~dest:1);
  (* predicted fall, goes taken: mispredict *)
  Alcotest.(check int) "taken mispredict" 5
    (Cost.transfer_penalty p rt ~predicted:(Some 1) ~dest:2);
  (* predicted taken, goes taken: misfetch only *)
  Alcotest.(check int) "taken correct" 1
    (Cost.transfer_penalty p rt ~predicted:(Some 2) ~dest:2);
  (* predicted taken, falls through: mispredict *)
  Alcotest.(check int) "fall mispredict" 5
    (Cost.transfer_penalty p rt ~predicted:(Some 2) ~dest:1)

let test_cond_fixup_adds_jump () =
  let rt = Layout.R_cond { taken = 2; fall = 1; via_fixup = true } in
  Alcotest.(check int) "fall correct + fixup jump" 2
    (Cost.transfer_penalty p rt ~predicted:(Some 1) ~dest:1);
  Alcotest.(check int) "fall mispredict + fixup jump" 7
    (Cost.transfer_penalty p rt ~predicted:(Some 2) ~dest:1);
  Alcotest.(check int) "taken arm unaffected by fixup" 1
    (Cost.transfer_penalty p rt ~predicted:(Some 2) ~dest:2)

let test_cond_default_prediction_is_fall () =
  let rt = Layout.R_cond { taken = 2; fall = 1; via_fixup = false } in
  Alcotest.(check int) "no training data: fall predicted" 0
    (Cost.transfer_penalty p rt ~predicted:None ~dest:1);
  Alcotest.(check int) "no training data: taken mispredicts" 5
    (Cost.transfer_penalty p rt ~predicted:None ~dest:2)

let test_multiway_cases () =
  let rt = Layout.R_multi { targets = [| 4; 5; 6 |] } in
  Alcotest.(check int) "predicted target" 1
    (Cost.transfer_penalty p rt ~predicted:(Some 5) ~dest:5);
  Alcotest.(check int) "other target" 3
    (Cost.transfer_penalty p rt ~predicted:(Some 5) ~dest:6);
  Alcotest.(check int) "default predicts first entry" 1
    (Cost.transfer_penalty p rt ~predicted:None ~dest:4)

let test_transfer_rejects_bad_dest () =
  Alcotest.(check bool) "jump to wrong block" true
    (try
       ignore (Cost.transfer p (Layout.R_jump 3) ~predicted:None ~dest:4);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "exit transfer" true
    (try
       ignore (Cost.transfer p Layout.R_exit ~predicted:None ~dest:0);
       false
     with Invalid_argument _ -> true)

(* ---------------- realization ---------------- *)

let freqs l = Array.of_list l

let test_realize_goto () =
  (match Cost.realize_term p (Block.Goto 2) ~succ:(Some 2) ~predicted:None ~freqs:[||] with
  | Layout.R_fall 2 -> ()
  | _ -> Alcotest.fail "goto to layout successor must fall");
  match Cost.realize_term p (Block.Goto 2) ~succ:(Some 7) ~predicted:None ~freqs:[||] with
  | Layout.R_jump 2 -> ()
  | _ -> Alcotest.fail "goto elsewhere must jump"

let test_realize_branch_inversion () =
  let term = Block.Branch { t = 1; f = 2 } in
  (match Cost.realize_term p term ~succ:(Some 1) ~predicted:(Some 1) ~freqs:[||] with
  | Layout.R_cond { taken = 2; fall = 1; via_fixup = false } -> ()
  | _ -> Alcotest.fail "laying out the taken arm inverts the branch");
  match Cost.realize_term p term ~succ:(Some 2) ~predicted:(Some 1) ~freqs:[||] with
  | Layout.R_cond { taken = 1; fall = 2; via_fixup = false } -> ()
  | _ -> Alcotest.fail "laying out the fall arm keeps polarity"

let test_realize_fixup_picks_cheaper_arrangement () =
  let term = Block.Branch { t = 1; f = 2 } in
  (* arm 1 hot: route arm 1 through the taken slot (cost f1·1 + f2·7),
     not through the fixup (cost f1·2 + f2·5) — hot arm taken wins when
     f1 > 2·f2 *)
  let fr = freqs [ (1, 100); (2, 10) ] in
  (match Cost.realize_term p term ~succ:(Some 9) ~predicted:(Some 1) ~freqs:fr with
  | Layout.R_cond { taken = 1; fall = 2; via_fixup = true } -> ()
  | _ -> Alcotest.fail "hot arm should use the taken slot");
  (* nearly balanced: f1·1 + f2·7 = 1·60+7·50=410 vs 2·60+5·50=370:
     routing the hot arm through the fixup is cheaper *)
  let fr = freqs [ (1, 60); (2, 50) ] in
  match Cost.realize_term p term ~succ:(Some 9) ~predicted:(Some 1) ~freqs:fr with
  | Layout.R_cond { taken = 2; fall = 1; via_fixup = true } -> ()
  | _ -> Alcotest.fail "balanced arms should route hot arm via fixup"

let test_edge_cost_formula () =
  (* block with conditional, P=1 (freq 90), O=2 (freq 10), prediction P *)
  let term = Block.Branch { t = 1; f = 2 } in
  let fr = freqs [ (1, 90); (2, 10) ] in
  let cost succ = Cost.edge_cost p term ~succ ~predicted:(Some 1) ~freqs:fr in
  (* X = P: P falls (free), O taken mispredict: 10·5 *)
  Alcotest.(check int) "succ = predicted arm" 50 (cost (Some 1));
  (* X = O: P taken correct 90·1, O falls mispredicted 10·5 *)
  Alcotest.(check int) "succ = other arm" 140 (cost (Some 2));
  (* X elsewhere: min(90·1 + 10·(5+2), 90·(0+2) + 10·5) = min(160,230) *)
  Alcotest.(check int) "succ elsewhere" 160 (cost (Some 7));
  Alcotest.(check int) "end of layout" 160 (cost None)

let test_edge_cost_goto () =
  let term = Block.Goto 3 in
  let fr = freqs [ (3, 1000) ] in
  Alcotest.(check int) "fall free" 0
    (Cost.edge_cost p term ~succ:(Some 3) ~predicted:(Some 3) ~freqs:fr);
  Alcotest.(check int) "jump costs 2/transfer" 2000
    (Cost.edge_cost p term ~succ:(Some 1) ~predicted:(Some 3) ~freqs:fr)

let test_edge_cost_multiway_layout_independent () =
  let term = Block.Multiway [| 1; 2; 3 |] in
  let fr = freqs [ (1, 10); (2, 80); (3, 10) ] in
  let c1 = Cost.edge_cost p term ~succ:(Some 1) ~predicted:(Some 2) ~freqs:fr in
  let c2 = Cost.edge_cost p term ~succ:(Some 2) ~predicted:(Some 2) ~freqs:fr in
  let c3 = Cost.edge_cost p term ~succ:None ~predicted:(Some 2) ~freqs:fr in
  Alcotest.(check int) "same everywhere (1 vs 2)" c1 c2;
  Alcotest.(check int) "same everywhere (2 vs none)" c2 c3;
  Alcotest.(check int) "value: 80·1 + 20·3" 140 c1

(* ---------------- realization of full layouts ---------------- *)

let diamond () =
  Cfg.make ~name:"diamond" ~entry:0
    [|
      Block.make ~id:0 ~size:4 (Block.Branch { t = 1; f = 2 });
      Block.make ~id:1 ~size:2 (Block.Goto 3);
      Block.make ~id:2 ~size:7 (Block.Goto 3);
      Block.make ~id:3 ~size:1 (Block.Branch { t = 0; f = 4 });
      Block.make ~id:4 ~size:3 Block.Exit;
    |]

let diamond_profile_freqs =
  (* loop taken 9 times, then exits; branch 0 goes 1 eight times, 2 twice *)
  [|
    [| (1, 8); (2, 2) |];
    [| (3, 8) |];
    [| (3, 2) |];
    [| (0, 9); (4, 1) |];
    [||];
  |]

let realize_diamond order =
  let g = diamond () in
  let predicted =
    Array.map
      (fun row ->
        Array.fold_left
          (fun acc (d, n) ->
            match acc with Some (_, bn) when bn >= n -> acc | _ -> Some (d, n))
          None row
        |> Option.map fst)
      diamond_profile_freqs
  in
  ( g,
    Cost.realize p g ~order ~predicted ~freqs:(fun l -> diamond_profile_freqs.(l)) )

let test_realize_respects_semantics () =
  let g, r = realize_diamond [| 0; 1; 3; 2; 4 |] in
  (match Layout.check_semantics g r with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let g2, r2 = realize_diamond [| 0; 4; 3; 2; 1 |] in
  match Layout.check_semantics g2 r2 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

let test_realize_identity_diamond () =
  let _, r = realize_diamond [| 0; 1; 2; 3; 4 |] in
  (* block 0: succ=1 which is arm t: invert so taken=2, fall=1 *)
  (match r.Layout.terms.(0) with
  | Layout.R_cond { taken = 2; fall = 1; via_fixup = false } -> ()
  | _ -> Alcotest.fail "block 0 realization");
  (* block 1: goto 3, succ=2: jump *)
  (match r.Layout.terms.(1) with
  | Layout.R_jump 3 -> ()
  | _ -> Alcotest.fail "block 1 must jump");
  (* block 2: goto 3, succ=3: fall *)
  (match r.Layout.terms.(2) with
  | Layout.R_fall 3 -> ()
  | _ -> Alcotest.fail "block 2 must fall");
  (* block 3: succ=4 = arm f: taken=0, fall=4, no fixup *)
  match r.Layout.terms.(3) with
  | Layout.R_cond { taken = 0; fall = 4; via_fixup = false } -> ()
  | _ -> Alcotest.fail "block 3 realization"

(* ---------------- pipeline simulator ---------------- *)

let test_pipeline_counts_by_hand () =
  let g, r = realize_diamond [| 0; 1; 2; 3; 4 |] in
  let predicted =
    [| Some 1; Some 3; Some 3; Some 0; None |]
  in
  let ctx = Pipeline.ctx_of_realized r ~predicted in
  let counters, sink = Pipeline.make_sink p [| ctx |] in
  (* one iteration: 0 -> 1 -> 3 -> 0 -> 2 -> 3 -> 4 *)
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Block 3;
      Trace.Block 0;
      Trace.Block 2;
      Trace.Block 3;
      Trace.Block 4;
      Trace.Leave;
    ];
  ignore g;
  (* hand count:
     0->1 : cond taken=2,fall=1, predicted 1, dest 1: fall correct    = 0
     1->3 : jump                                                      = 2
     3->0 : cond taken=0,fall=4, predicted 0, dest 0: taken correct   = 1
     0->2 : predicted 1, dest 2 = taken arm, mispredict               = 5
     2->3 : fall                                                      = 0
     3->4 : predicted 0, dest 4 = fall arm, mispredict                = 5
     total = 13 over 6 transfers *)
  Alcotest.(check int) "transfers" 6 counters.Pipeline.transfers;
  Alcotest.(check int) "penalty cycles" 13 counters.Pipeline.penalty_cycles;
  Alcotest.(check int) "per-proc" 13 counters.Pipeline.per_proc_cycles.(0)

(* ---------------- icache ---------------- *)

let test_icache_basics () =
  let c = Icache.create Icache.alpha_l1 in
  (* 8 instructions starting at 0 span exactly one 32B line *)
  Alcotest.(check int) "first touch misses" 1 (Icache.touch_range c ~addr:0 ~ninstr:8);
  Alcotest.(check int) "second touch hits" 0 (Icache.touch_range c ~addr:0 ~ninstr:8);
  (* crossing a line boundary touches two lines *)
  Alcotest.(check int) "straddle" 1 (Icache.touch_range c ~addr:6 ~ninstr:4);
  Alcotest.(check int) "empty range" 0 (Icache.touch_range c ~addr:0 ~ninstr:0)

let test_icache_conflict () =
  let c = Icache.create Icache.alpha_l1 in
  (* 8KB direct-mapped: addresses 0 and 8192 bytes (2048 instrs) conflict *)
  ignore (Icache.touch_range c ~addr:0 ~ninstr:1);
  ignore (Icache.touch_range c ~addr:2048 ~ninstr:1);
  Alcotest.(check int) "conflict evicts" 1 (Icache.touch_range c ~addr:0 ~ninstr:1);
  Alcotest.(check int) "three misses total" 3 (Icache.misses c)

let test_icache_reset () =
  let c = Icache.create Icache.alpha_l1 in
  ignore (Icache.touch_range c ~addr:0 ~ninstr:100);
  Icache.reset c;
  Alcotest.(check int) "counters cleared" 0 (Icache.misses c);
  Alcotest.(check int) "cold again" 1 (Icache.touch_range c ~addr:0 ~ninstr:1)

let test_icache_rejects_bad_geometry () =
  Alcotest.(check bool) "bad geometry" true
    (try
       ignore (Icache.create { Icache.alpha_l1 with size_bytes = 100 });
       false
     with Invalid_argument _ -> true)

(* ---------------- addresses ---------------- *)

let test_addr_layout () =
  let g, r = realize_diamond [| 0; 1; 2; 3; 4 |] in
  let addr = Addr.build [| (g, r) |] in
  let pa = addr.Addr.procs.(0) in
  (* block 0: size 4 + cond(1) = 5 instrs at 0 *)
  Alcotest.(check int) "b0 at 0" 0 pa.Addr.block_addr.(0);
  Alcotest.(check int) "b0 len" 5 pa.Addr.block_len.(0);
  (* block 1: size 2 + jump(1) = 3 at 5 *)
  Alcotest.(check int) "b1 at 5" 5 pa.Addr.block_addr.(1);
  (* block 2: size 7 + fall(0) = 7 at 8 *)
  Alcotest.(check int) "b2 len excludes fall" 7 pa.Addr.block_len.(2);
  Alcotest.(check int) "total" addr.Addr.total_instrs pa.Addr.code_end

let test_addr_fixup_gets_slot () =
  (* layout [0;4;...]: block 3's arms 0 and 4 … pick a layout where block 0
     needs a fixup: place 0 first, then 3, so block 0's succ is 3 (not an
     arm) *)
  let g, r = realize_diamond [| 0; 3; 1; 2; 4 |] in
  let addr = Addr.build [| (g, r) |] in
  let pa = addr.Addr.procs.(0) in
  match pa.Addr.fixup_addr.(0) with
  | Some a -> Alcotest.(check int) "fixup right after block 0" 5 a
  | None -> Alcotest.fail "block 0 should have a fixup jump"

(* ---------------- cycles ---------------- *)

let test_cycles_end_to_end () =
  let g, r = realize_diamond [| 0; 1; 2; 3; 4 |] in
  let predicted = [| Some 1; Some 3; Some 3; Some 0; None |] in
  let ctx = Pipeline.ctx_of_realized r ~predicted in
  let addr = Addr.build [| (g, r) |] in
  let sink, result =
    Cycles.make_sink Model.alpha21164 ~cfgs:[| g |] ~ctxs:[| ctx |] ~addr
  in
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Block 3;
      Trace.Block 0;
      Trace.Block 2;
      Trace.Block 3;
      Trace.Block 4;
      Trace.Leave;
    ];
  let res = result () in
  (* instrs: b0(5)+b1(3)+b3(2)+b0(5)+b2(7)+b3(2)+b4(4) = 28, no fixups *)
  Alcotest.(check int) "instrs" 28 res.Cycles.instrs;
  Alcotest.(check int) "penalties as pipeline" 13 res.Cycles.penalty_cycles;
  Alcotest.(check int) "one call" 1 res.Cycles.calls;
  (* whole procedure fits in one or two lines: at most 4 misses *)
  Alcotest.(check bool) "few misses" true (res.Cycles.icache_misses <= 4);
  Alcotest.(check int) "cycles add up"
    (28 + 13 + (res.Cycles.icache_misses * 10) + 3)
    res.Cycles.cycles

(* ---------------- dynamic prediction hardware ---------------- *)

let test_bht_hysteresis () =
  let t = Ba_machine.Predictor.create Ba_machine.Predictor.default in
  let open Ba_machine.Predictor in
  (* initial state: weakly not-taken *)
  Alcotest.(check bool) "cold predicts not-taken" false (predict_taken t ~addr:100);
  update_cond t ~addr:100 ~taken:true;
  Alcotest.(check bool) "one taken flips weakly" true (predict_taken t ~addr:100);
  update_cond t ~addr:100 ~taken:true;
  update_cond t ~addr:100 ~taken:true;
  (* now strongly taken: a single not-taken must not flip it *)
  update_cond t ~addr:100 ~taken:false;
  Alcotest.(check bool) "hysteresis" true (predict_taken t ~addr:100);
  update_cond t ~addr:100 ~taken:false;
  update_cond t ~addr:100 ~taken:false;
  Alcotest.(check bool) "retrained" false (predict_taken t ~addr:100)

let test_bht_aliasing () =
  let t =
    Ba_machine.Predictor.create
      { Ba_machine.Predictor.default with Ba_machine.Predictor.bht_entries = 64 }
  in
  let open Ba_machine.Predictor in
  (* addresses 3 and 67 share a counter in a 64-entry table *)
  update_cond t ~addr:3 ~taken:true;
  update_cond t ~addr:3 ~taken:true;
  Alcotest.(check bool) "alias sees the trained counter" true
    (predict_taken t ~addr:67)

let test_gshare_history () =
  let t = Ba_machine.Predictor.create Ba_machine.Predictor.gshare in
  let open Ba_machine.Predictor in
  (* alternate taken/not-taken at one address: bimodal would stay ~50%,
     gshare can learn the alternation perfectly after warmup *)
  for _ = 1 to 50 do
    let p1 = predict_taken t ~addr:5 in
    update_cond t ~addr:5 ~taken:true;
    ignore p1;
    let p2 = predict_taken t ~addr:5 in
    update_cond t ~addr:5 ~taken:false;
    ignore p2
  done;
  let correct = ref 0 in
  for _ = 1 to 20 do
    if predict_taken t ~addr:5 then incr correct;
    update_cond t ~addr:5 ~taken:true;
    if not (predict_taken t ~addr:5) then incr correct;
    update_cond t ~addr:5 ~taken:false
  done;
  Alcotest.(check bool)
    (Printf.sprintf "gshare learns alternation (%d/40)" !correct)
    true (!correct >= 36)

let test_btb () =
  let t = Ba_machine.Predictor.create Ba_machine.Predictor.default in
  let open Ba_machine.Predictor in
  Alcotest.(check (option int)) "cold miss" None (btb_lookup t ~addr:40);
  btb_update t ~addr:40 ~target:777;
  Alcotest.(check (option int)) "hit" (Some 777) (btb_lookup t ~addr:40);
  (* conflicting address evicts (direct-mapped, 256 entries) *)
  btb_update t ~addr:(40 + 256) ~target:888;
  Alcotest.(check (option int)) "evicted" None (btb_lookup t ~addr:40)

let test_dynamic_sim_hand_counted () =
  let g, r = realize_diamond [| 0; 1; 2; 3; 4 |] in
  let addr = Addr.build [| (g, r) |] in
  let counters, sink =
    Dynamic.make_sink p ~realized:[| r |] ~addr
  in
  (* 0 -> 1 -> 3 -> 0 -> 2 -> 3 -> 4, cold predictor:
     block 0 realized cond taken=2 fall=1:
       0->1 fall, cold BHT predicts not-taken: correct, 0
       0->2 taken, counter still <2 after one not-taken: mispredict, 5
     block 1: jump: 2.  block 2: fall: 0.
     block 3 cond taken=0 fall=4:
       3->0 taken, cold: predicts not-taken: mispredict, 5
       3->4 fall: counter went 1->2 after taken... 2 = taken: mispredict, 5 *)
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Block 3;
      Trace.Block 0;
      Trace.Block 2;
      Trace.Block 3;
      Trace.Block 4;
      Trace.Leave;
    ];
  Alcotest.(check int) "transfers" 6 counters.Dynamic.transfers;
  Alcotest.(check int) "penalties" 17 counters.Dynamic.penalty_cycles;
  Alcotest.(check int) "mispredicts" 3 counters.Dynamic.cond_mispredicts

let test_dynamic_biased_branch_settles () =
  (* a hot loop: after warmup the dynamic penalty per iteration matches
     the static well-predicted cost *)
  let g =
    Cfg.make ~name:"loop" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Branch { t = 0; f = 1 });
        Block.make ~id:1 ~size:1 Block.Exit;
      |]
  in
  let order = [| 0; 1 |] in
  let freqs = [| [| (0, 1000); (1, 1) |]; [||] |] in
  let predicted = [| Some 0; None |] in
  let r =
    Cost.realize p g ~order ~predicted ~freqs:(fun l -> freqs.(l))
  in
  let addr = Addr.build [| (g, r) |] in
  let counters, sink = Dynamic.make_sink p ~realized:[| r |] ~addr in
  sink (Trace.Enter 0);
  for _ = 1 to 1001 do
    sink (Trace.Block 0)
  done;
  sink (Trace.Block 1);
  sink Trace.Leave;
  (* 1000 self-loop taken transfers + 1 exit fall-through; after the
     2-bit counter saturates every taken transfer costs just the misfetch *)
  Alcotest.(check bool)
    (Printf.sprintf "penalties %d close to 1000 misfetches"
       counters.Dynamic.penalty_cycles)
    true
    (counters.Dynamic.penalty_cycles < 1030);
  Alcotest.(check bool) "few mispredicts" true
    (counters.Dynamic.cond_mispredicts <= 3)

let () =
  Alcotest.run "ba_machine"
    [
      ( "transfer",
        [
          Alcotest.test_case "fall is free" `Quick test_fall_is_free;
          Alcotest.test_case "uncond costs 2" `Quick test_uncond_costs_two;
          Alcotest.test_case "conditional cases" `Quick test_cond_cases;
          Alcotest.test_case "fixup adds jump cost" `Quick test_cond_fixup_adds_jump;
          Alcotest.test_case "default prediction" `Quick
            test_cond_default_prediction_is_fall;
          Alcotest.test_case "multiway cases" `Quick test_multiway_cases;
          Alcotest.test_case "rejects bad destinations" `Quick
            test_transfer_rejects_bad_dest;
        ] );
      ( "realize",
        [
          Alcotest.test_case "goto" `Quick test_realize_goto;
          Alcotest.test_case "branch inversion" `Quick test_realize_branch_inversion;
          Alcotest.test_case "fixup arrangement choice" `Quick
            test_realize_fixup_picks_cheaper_arrangement;
          Alcotest.test_case "edge cost formula" `Quick test_edge_cost_formula;
          Alcotest.test_case "edge cost goto" `Quick test_edge_cost_goto;
          Alcotest.test_case "multiway layout independent" `Quick
            test_edge_cost_multiway_layout_independent;
          Alcotest.test_case "semantics preserved" `Quick
            test_realize_respects_semantics;
          Alcotest.test_case "identity diamond" `Quick test_realize_identity_diamond;
        ] );
      ( "pipeline",
        [ Alcotest.test_case "hand-counted trace" `Quick test_pipeline_counts_by_hand ] );
      ( "icache",
        [
          Alcotest.test_case "basics" `Quick test_icache_basics;
          Alcotest.test_case "conflict misses" `Quick test_icache_conflict;
          Alcotest.test_case "reset" `Quick test_icache_reset;
          Alcotest.test_case "bad geometry" `Quick test_icache_rejects_bad_geometry;
        ] );
      ( "addr",
        [
          Alcotest.test_case "layout addresses" `Quick test_addr_layout;
          Alcotest.test_case "fixup slots" `Quick test_addr_fixup_gets_slot;
        ] );
      ("cycles", [ Alcotest.test_case "end to end" `Quick test_cycles_end_to_end ]);
      ( "predictor",
        [
          Alcotest.test_case "2-bit hysteresis" `Quick test_bht_hysteresis;
          Alcotest.test_case "aliasing" `Quick test_bht_aliasing;
          Alcotest.test_case "gshare history" `Quick test_gshare_history;
          Alcotest.test_case "btb" `Quick test_btb;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "hand-counted trace" `Quick
            test_dynamic_sim_hand_counted;
          Alcotest.test_case "biased branch settles" `Quick
            test_dynamic_biased_branch_settles;
        ] );
    ]
