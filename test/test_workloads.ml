(* Tests for the benchmark workloads: compilation, golden outputs
   (everything is seeded and deterministic), VM assembler behaviour and
   known ground truths (queens counts, integer square roots). *)

module W = Ba_workloads.Workload

let run_workload w ds =
  let c = W.compile w in
  Ba_minic.Compile.run c ~input:ds.W.input ~sink:Ba_cfg.Trace.null

let output w ds = (run_workload w ds).Ba_minic.Interp.output

let ds_of w name =
  List.find (fun d -> d.W.ds_name = name) (W.dataset_list w)

(* ---------------- compilation ---------------- *)

let test_all_compile () =
  List.iter
    (fun w ->
      let c = W.compile w in
      Alcotest.(check bool)
        (w.W.name ^ " has functions")
        true
        (Array.length c.Ba_minic.Compile.cfgs > 0);
      (* every CFG is fully reachable and structurally valid *)
      Array.iter
        (fun g ->
          match Ba_cfg.Cfg.validate g with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s" w.W.name m)
        c.Ba_minic.Compile.cfgs)
    W.all

let test_registry () =
  Alcotest.(check int) "six benchmarks" 6 (List.length W.all);
  Alcotest.(check bool) "find com" true (W.find "com" <> None);
  Alcotest.(check bool) "find nothing" true (W.find "zzz" = None);
  let w = W.com in
  let a, b = w.W.datasets in
  Alcotest.(check string) "sibling of in" b.W.ds_name (W.sibling w a).W.ds_name;
  Alcotest.(check string) "sibling of st" a.W.ds_name (W.sibling w b).W.ds_name

(* ---------------- golden outputs (deterministic LCG inputs) -------- *)

let golden =
  [
    ("com", "in", [ 13740; 2472; 67729 ]);
    ("com", "st", [ 22677; 3727; 246032 ]);
    ("dod", "re", [ 696898; 65536 ]);
    ("dod", "sm", [ 552367; 736143 ]);
    ("eqn", "fx", [ 1800; 349396 ]);
    ("eqn", "ip", [ 742; 1045036 ]);
    ("esp", "ti", [ 2; 368; 969971; 14 ]);
    ("esp", "tl", [ 2; 259; 962969; 12 ]);
    ("su2", "re", [ -564; 552 ]);
    ("su2", "sh", [ 246; 236 ]);
  ]

let test_golden_outputs () =
  List.iter
    (fun (bench, ds_name, want) ->
      let w = Option.get (W.find bench) in
      let ds = ds_of w ds_name in
      Alcotest.(check (list int))
        (Printf.sprintf "%s.%s output" bench ds_name)
        want (output w ds))
    golden

let test_outputs_differ_across_datasets () =
  (* the two data sets of each benchmark must genuinely exercise the
     program differently *)
  List.iter
    (fun w ->
      let a, b = w.W.datasets in
      Alcotest.(check bool)
        (w.W.name ^ " datasets distinguishable")
        true
        (output w a <> output w b))
    W.all

let test_runs_are_reasonably_sized () =
  List.iter
    (fun w ->
      List.iter
        (fun ds ->
          let r = run_workload w ds in
          let n = r.Ba_minic.Interp.blocks_executed in
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s executes %d blocks" w.W.name ds.W.ds_name n)
            true
            (n > 1_000 && n < 20_000_000))
        (W.dataset_list w))
    W.all

let test_ne_is_much_shorter_than_q7 () =
  (* the paper's xli.ne pathology: a very short training run *)
  let w = W.xli in
  let ne = (run_workload w (ds_of w "ne")).Ba_minic.Interp.blocks_executed in
  let q7 = (run_workload w (ds_of w "q7")).Ba_minic.Interp.blocks_executed in
  Alcotest.(check bool)
    (Printf.sprintf "ne=%d much shorter than q7=%d" ne q7)
    true
    (ne * 50 < q7)

(* ---------------- ground truths ---------------- *)

let test_newton_square_roots () =
  let w = W.xli in
  match output w (ds_of w "ne") with
  | a :: b :: c :: _ ->
      Alcotest.(check int) "isqrt 1234567" 1111 a;
      Alcotest.(check int) "isqrt 99980001" 9999 b;
      Alcotest.(check int) "isqrt 42" 6 c
  | out -> Alcotest.failf "unexpected output length %d" (List.length out)

let queens_count n =
  let w = W.xli in
  let input =
    Ba_workloads.Vm_asm.dataset ~n_globals:20 (Ba_workloads.Vm_asm.queens_program ~n)
  in
  let c = W.compile w in
  match (Ba_minic.Compile.run c ~input ~sink:Ba_cfg.Trace.null).Ba_minic.Interp.output with
  | count :: _ -> count
  | [] -> Alcotest.fail "no output"

let test_queens_counts () =
  (* OEIS A000170 *)
  Alcotest.(check int) "4-queens" 2 (queens_count 4);
  Alcotest.(check int) "5-queens" 10 (queens_count 5);
  Alcotest.(check int) "6-queens" 4 (queens_count 6);
  Alcotest.(check int) "7-queens" 40 (queens_count 7);
  Alcotest.(check int) "8-queens" 92 (queens_count 8)

(* ---------------- VM assembler ---------------- *)

let test_asm_label_resolution () =
  let open Ba_workloads.Vm_asm in
  let code = assemble [ Push 1; Jnz "end"; Push 99; Print; Label "end"; Halt ] in
  (* words: PUSH(0,1) JNZ(2,3) PUSH(4,5) PRINT(6) [end] HALT(7) *)
  Alcotest.(check (array int)) "encoding" [| 1; 1; 17; 7; 1; 99; 21; 0 |] code

let test_asm_duplicate_label () =
  let open Ba_workloads.Vm_asm in
  Alcotest.check_raises "duplicate" (Error "duplicate label x") (fun () ->
      ignore (assemble [ Label "x"; Label "x"; Halt ]))

let test_asm_undefined_label () =
  let open Ba_workloads.Vm_asm in
  Alcotest.check_raises "undefined" (Error "undefined label nowhere") (fun () ->
      ignore (assemble [ Jmp "nowhere"; Halt ]))

let test_vm_arith_program () =
  (* compute (3+4)*5 % 6 on the VM: 35 mod 6 = 5 *)
  let open Ba_workloads.Vm_asm in
  let code =
    assemble [ Push 3; Push 4; Add; Push 5; Mul; Push 6; Mod; Print; Halt ]
  in
  let c = W.compile W.xli in
  let input = dataset ~n_globals:1 code in
  match (Ba_minic.Compile.run c ~input ~sink:Ba_cfg.Trace.null).Ba_minic.Interp.output with
  | v :: _ -> Alcotest.(check int) "vm arithmetic" 5 v
  | [] -> Alcotest.fail "no output"

let test_vm_stack_ops () =
  let open Ba_workloads.Vm_asm in
  (* DUP/SWAP/POP/NEG: push 7, dup -> 7 7, push 3, swap -> 7 3 7?, ...
     keep it simple: 7 dup add = 14; 5 neg = -5 *)
  let code = assemble [ Push 7; Dup; Add; Print; Push 5; Neg; Print;
                        Push 1; Push 2; Swap; Pop; Print; Halt ] in
  let c = W.compile W.xli in
  let input = dataset ~n_globals:1 code in
  match (Ba_minic.Compile.run c ~input ~sink:Ba_cfg.Trace.null).Ba_minic.Interp.output with
  | a :: b :: c' :: _ ->
      Alcotest.(check int) "dup+add" 14 a;
      Alcotest.(check int) "neg" (-5) b;
      Alcotest.(check int) "swap+pop keeps 2" 2 c'
  | _ -> Alcotest.fail "bad output"

(* ---------------- SPEC95 extension suite ---------------- *)

module W95 = Ba_workloads.Workload95

let test_spec95_compile () =
  List.iter
    (fun w ->
      let c = W.compile w in
      Array.iter
        (fun g ->
          match Ba_cfg.Cfg.validate g with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: %s" w.W.name m)
        c.Ba_minic.Compile.cfgs)
    W95.all;
  Alcotest.(check int) "five benchmarks" 5 (List.length W95.all);
  Alcotest.(check int) "combined suite" 11 (List.length W95.everything)

let golden95 =
  [
    ("m88", "srt", [ 152728; 19991; 0 ]);
    ("m88", "clz", [ 14167; 105945; 0 ]);
    ("ijp", "sm", [ 277; 397; 625971 ]);
    ("ijp", "nz", [ 2465; 2466; 55856 ]);
    ("prl", "hi", [ 141; 6919; 12634; 777514 ]);
    ("prl", "lo", [ 0; 6969; 12668; 0 ]);
    ("vor", "rd", [ 12755; 7252; 4; 2136; 425576 ]);
    ("vor", "wr", [ 4816; 12475; 4; 1822; 835594 ]);
    ("go", "a", [ 223; 142; 3777; 561331 ]);
    ("go", "b", [ 407; 326; 3593; 890748 ]);
  ]

let ds95 w name = List.find (fun d -> d.W.ds_name = name) (W.dataset_list w)

let test_spec95_golden () =
  List.iter
    (fun (bench, ds_name, want) ->
      let w = Option.get (W95.find bench) in
      Alcotest.(check (list int))
        (Printf.sprintf "%s.%s output" bench ds_name)
        want
        (output w (ds95 w ds_name)))
    golden95

let test_spec95_semantics () =
  (* cross-domain sanity: noisy images have denser spectra than smooth
     ones; planted patterns are found; zero faults in the guest code *)
  let first w ds = List.hd (output w (ds95 w ds)) in
  Alcotest.(check bool) "noisy spectra denser" true
    (first W95.ijp "nz" > 5 * first W95.ijp "sm");
  Alcotest.(check bool) "planted pattern found" true (first W95.prl "hi" > 50);
  Alcotest.(check int) "no false matches" 0 (first W95.prl "lo");
  let m88_faults w ds =
    match output w (ds95 w ds) with [ _; _; f ] -> f | _ -> -1
  in
  Alcotest.(check int) "sort guest fault-free" 0 (m88_faults W95.m88 "srt");
  Alcotest.(check int) "collatz guest fault-free" 0 (m88_faults W95.m88 "clz")

let test_risc_asm_errors () =
  let open Ba_workloads.Risc_asm in
  Alcotest.check_raises "duplicate label" (Error "duplicate label l") (fun () ->
      ignore (assemble [ Label "l"; Label "l"; Halt ]));
  Alcotest.check_raises "undefined label" (Error "undefined label x") (fun () ->
      ignore (assemble [ Jmp "x" ]))

let test_risc_guest_sorts () =
  (* independent check of the bubble-sort guest: the checksum equals
     sum i·sorted[i] of the initial memory image *)
  let init = List.init 64 (fun i -> (i, (i * 37 mod 101) + ((i * i) mod 17))) in
  let sorted = List.map snd init |> List.sort compare |> Array.of_list in
  let expect = Array.to_list (Array.mapi (fun i v -> i * v) sorted)
               |> List.fold_left ( + ) 0 in
  let w = W95.m88 in
  match output w (ds95 w "srt") with
  | checksum :: _ -> Alcotest.(check int) "guest sorted correctly" expect checksum
  | [] -> Alcotest.fail "no output"

(* ---------------- application workloads ---------------- *)

module Apps = Ba_workloads.Workload_apps

let test_exc_differential () =
  (* the minic expression compiler must agree exactly with the OCaml
     reference evaluator on both generated data sets *)
  let w = Apps.exc in
  let deep_ref, flat_ref = Apps.exc_reference_outputs in
  let c = W.compile w in
  List.iter2
    (fun ds expected ->
      let r =
        Ba_minic.Compile.run c ~input:ds.W.input ~sink:Ba_cfg.Trace.null
      in
      Alcotest.(check (list int))
        (Printf.sprintf "exc.%s matches reference" ds.W.ds_name)
        expected r.Ba_minic.Interp.output;
      (* no parse errors on well-formed streams *)
      match r.Ba_minic.Interp.output with
      | [ _; _; errors ] -> Alcotest.(check int) "no parse errors" 0 errors
      | _ -> Alcotest.fail "unexpected output arity")
    (W.dataset_list w) [ deep_ref; flat_ref ]

let test_exc_fresh_seeds_differential () =
  (* regenerate with fresh seeds at test time: the differential property
     must hold for any seed, not just the pinned data sets *)
  let c = W.compile Apps.exc in
  List.iter
    (fun seed ->
      let input, expected = Ba_workloads.Src_exc.dataset ~n_exprs:60 ~depth:6 ~seed in
      let r = Ba_minic.Compile.run c ~input ~sink:Ba_cfg.Trace.null in
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d" seed)
        expected r.Ba_minic.Interp.output)
    [ 7; 19; 1234; 987654 ]

let test_exc_has_many_procedures () =
  let c = W.compile Apps.exc in
  Alcotest.(check int) "nine procedures" 9 (Array.length c.Ba_minic.Compile.cfgs);
  (* recursion means the call graph profile is rich *)
  let ds = fst Apps.exc.W.datasets in
  let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
  Alcotest.(check bool) "thousands of calls" true
    (Ba_profile.Profile.total_calls prof > 1000)

(* ---------------- whole-program-scale synthetic CFGs ---------------- *)

module Scale = Ba_workloads.Scale
module Cfg = Ba_cfg.Cfg

let scale_sizes = [ 8; 9; 40; 68; 200; 1000 ]

let scale_cases f =
  List.iter
    (fun fam -> List.iter (fun n -> f fam n) scale_sizes)
    Scale.all

let test_scale_counts_and_validity () =
  scale_cases (fun fam n ->
      let what = Printf.sprintf "%s n=%d" (Scale.name fam) n in
      let g, p = Scale.instance fam ~n ~invocations:512 in
      Alcotest.(check int) (what ^ ": blocks") n (Cfg.n_blocks g);
      Alcotest.(check int)
        (what ^ ": edges")
        (Scale.expected_edges fam ~n)
        (Cfg.n_edges g);
      (* strict: every block reachable from the entry *)
      (match Cfg.validate ~strict:true g with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s: %s" what m);
      (match Ba_profile.Profile.validate_proc g p with
      | Ok () -> ()
      | Error m -> Alcotest.failf "%s profile: %s" what m);
      match
        Ba_check.Lint.gate
          ~profile:{ Ba_profile.Profile.procs = [| p |]; calls = [] }
          [| g |]
      with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "%s lint: %s" what (Ba_robust.Errors.to_string e))

let test_scale_edge_formulas () =
  (* closed forms re-derived by hand, independent of expected_edges:
     loop-nest = n + depth − 1; interp = n + arms − 1; switch counts
     head fan-out + arm fall-throughs *)
  let independent =
    [
      (Scale.Loop_nest, 8, 8 + 2 - 1);
      (Scale.Loop_nest, 40, 40 + 16 - 1);
      (Scale.Interp, 40, 40 + ((40 - 3) / 4) - 1);
      (Scale.Interp, 1000, 1000 + ((1000 - 3) / 4) - 1);
      (* n=40: one 64-arm table holds all 37 middle arms *)
      (Scale.Switch, 40, 1 + (2 * 37));
      (* n=68: a full 64-arm section plus an armless head → exit *)
      (Scale.Switch, 68, 1 + (2 * 64) + 1);
    ]
  in
  List.iter
    (fun (fam, n, want) ->
      Alcotest.(check int)
        (Printf.sprintf "%s n=%d edges" (Scale.name fam) n)
        want
        (Cfg.n_edges (Scale.cfg fam ~n)))
    independent

let test_scale_deterministic () =
  scale_cases (fun fam n ->
      let what = Printf.sprintf "%s n=%d" (Scale.name fam) n in
      let g1, p1 = Scale.instance fam ~n ~invocations:512 in
      let g2, p2 = Scale.instance fam ~n ~invocations:512 in
      Alcotest.(check int64)
        (what ^ ": structural hash stable")
        (Cfg.structural_hash g1) (Cfg.structural_hash g2);
      Alcotest.(check bool) (what ^ ": profile stable") true (p1 = p2));
  (* the three families at one size are structurally distinct *)
  let hashes =
    List.map (fun fam -> Cfg.structural_hash (Scale.cfg fam ~n:200)) Scale.all
  in
  Alcotest.(check int) "family hashes distinct" 3
    (List.length (List.sort_uniq compare hashes))

let test_scale_shapes () =
  (* the families deliver what their names promise *)
  let count pred g = Cfg.fold (fun acc b -> if pred b then acc + 1 else acc) 0 g in
  let g = Scale.cfg Loop_nest ~n:200 in
  Alcotest.(check int) "loop-nest: 16 conditionals" 16
    (count Ba_cfg.Block.is_conditional g);
  let g = Scale.cfg Interp ~n:200 in
  Alcotest.(check int) "interp: one dispatch" 1
    (count Ba_cfg.Block.is_multiway g);
  (match (Cfg.block g 1).Ba_cfg.Block.term with
  | Ba_cfg.Block.Multiway arms ->
      Alcotest.(check int) "interp: dispatch width" (((200 - 3) / 4) + 1)
        (Array.length arms)
  | _ -> Alcotest.fail "interp block 1 is not a dispatch");
  (* heads sit every switch_width+1 blocks: ⌈(200−2)/65⌉ = 4 tables *)
  let g = Scale.cfg Switch ~n:200 in
  Alcotest.(check int) "switch: four tables" 4
    (count Ba_cfg.Block.is_multiway g)

let test_scale_rejects_bad_parameters () =
  Alcotest.check_raises "tiny n"
    (Invalid_argument "Scale.interp: n = 4 below minimum 8") (fun () ->
      ignore (Scale.cfg Scale.Interp ~n:4));
  Alcotest.check_raises "zero invocations"
    (Invalid_argument "Scale.instance: invocations < 1") (fun () ->
      ignore (Scale.instance Scale.Switch ~n:40 ~invocations:0))

let test_scale_certify_smoke () =
  (* end-to-end at a size where the full pipeline is instant: reduce,
     solve, extract the layout, certify independently *)
  let model = Ba_machine.Model.alpha21164 in
  List.iter
    (fun fam ->
      let what = Scale.name fam in
      let g, p = Scale.instance fam ~n:60 ~invocations:256 in
      let inst = Ba_align.Reduction.build model g ~profile:p in
      let config = { Ba_tsp.Iterated.default with runs = 2; max_kicks = 40 } in
      let tour, stats = Ba_tsp.Iterated.solve ~config inst.Ba_align.Reduction.dtsp in
      let order = Ba_align.Reduction.order_of_tour inst tour in
      match
        Ba_check.Certify.proc_cert ~proc:0 model g ~profile:p ~order
          ~claimed:(Ba_align.Reduction.layout_cost inst order)
      with
      | Ok cert ->
          Alcotest.(check int) (what ^ ": certified blocks") 60
            cert.Ba_check.Certify.n_blocks;
          Alcotest.(check bool) (what ^ ": sym round-trip ran") true
            cert.Ba_check.Certify.sym_checked;
          Alcotest.(check bool) (what ^ ": solver found a tour") true
            (stats.Ba_tsp.Iterated.best_cost = cert.Ba_check.Certify.cost)
      | Error e ->
          Alcotest.failf "%s: %s" what (Ba_check.Certify.error_to_string e))
    Scale.all

let test_certify_sparse_instance_equivalence () =
  (* the sparse certifier instance must be the same logical matrix as
     the dense independent build, on scale instances and random CFGs *)
  let model = Ba_machine.Model.alpha21164 in
  let check what g p =
    let dd, dummy_d = Ba_check.Certify.dtsp_of model g ~profile:p in
    let ds, dummy_s = Ba_check.Certify.dtsp_of_sparse model g ~profile:p in
    Alcotest.(check int) (what ^ ": dummy") dummy_d dummy_s;
    let n = dd.Ba_tsp.Dtsp.n in
    Alcotest.(check int) (what ^ ": n") n ds.Ba_tsp.Dtsp.n;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if Ba_tsp.Dtsp.cost dd i j <> Ba_tsp.Dtsp.cost ds i j then
          Alcotest.failf "%s: cost(%d,%d) dense %d sparse %d" what i j
            (Ba_tsp.Dtsp.cost dd i j) (Ba_tsp.Dtsp.cost ds i j)
      done
    done;
    Alcotest.(check int) (what ^ ": max_cost") (Ba_tsp.Dtsp.max_cost dd)
      (Ba_tsp.Dtsp.max_cost ds)
  in
  List.iter
    (fun model ->
      List.iter
        (fun fam ->
          let g, p = Scale.instance fam ~n:40 ~invocations:256 in
          check
            (Ba_machine.Model.to_string model ^ " " ^ Scale.name fam)
            g p)
        Scale.all)
    [ model; Ba_machine.Model.ext_tsp () ];
  List.iter
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 24 in
      let g = Ba_testutil.Gen.cfg rng ~n in
      let prof =
        Ba_testutil.Gen.profile_of ~seed:(seed + 1) g ~invocations:20
          ~max_steps:100
      in
      check
        (Printf.sprintf "random cfg seed=%d" seed)
        g
        (Ba_profile.Profile.proc prof 0))
    [ 3; 17; 99; 1234 ]

(* ---------------- table 1 statistics ---------------- *)

let test_profiles_touch_sites () =
  List.iter
    (fun w ->
      let c = W.compile w in
      List.iter
        (fun ds ->
          let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
          let touched = ref 0 and executed = ref 0 in
          Array.iteri
            (fun fid g ->
              let p = Ba_profile.Profile.proc prof fid in
              (match Ba_profile.Profile.validate_proc g p with
              | Ok () -> ()
              | Error m -> Alcotest.failf "%s: %s" w.W.name m);
              touched := !touched + Ba_profile.Profile.branch_sites_touched g p;
              executed := !executed + Ba_profile.Profile.executed_branches g p)
            c.Ba_minic.Compile.cfgs;
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s touches sites" w.W.name ds.W.ds_name)
            true (!touched > 5);
          Alcotest.(check bool)
            (Printf.sprintf "%s.%s executes branches" w.W.name ds.W.ds_name)
            true
            (!executed > 1000))
        (W.dataset_list w))
    W.all

let () =
  Alcotest.run "ba_workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "all compile" `Quick test_all_compile;
          Alcotest.test_case "registry" `Quick test_registry;
        ] );
      ( "golden",
        [
          Alcotest.test_case "golden outputs" `Quick test_golden_outputs;
          Alcotest.test_case "datasets differ" `Quick test_outputs_differ_across_datasets;
          Alcotest.test_case "run sizes" `Quick test_runs_are_reasonably_sized;
          Alcotest.test_case "ne much shorter than q7" `Quick
            test_ne_is_much_shorter_than_q7;
        ] );
      ( "ground-truth",
        [
          Alcotest.test_case "newton square roots" `Quick test_newton_square_roots;
          Alcotest.test_case "queens counts" `Slow test_queens_counts;
        ] );
      ( "vm",
        [
          Alcotest.test_case "label resolution" `Quick test_asm_label_resolution;
          Alcotest.test_case "duplicate label" `Quick test_asm_duplicate_label;
          Alcotest.test_case "undefined label" `Quick test_asm_undefined_label;
          Alcotest.test_case "arithmetic" `Quick test_vm_arith_program;
          Alcotest.test_case "stack ops" `Quick test_vm_stack_ops;
        ] );
      ( "spec95",
        [
          Alcotest.test_case "all compile" `Quick test_spec95_compile;
          Alcotest.test_case "golden outputs" `Quick test_spec95_golden;
          Alcotest.test_case "semantics" `Quick test_spec95_semantics;
          Alcotest.test_case "risc asm errors" `Quick test_risc_asm_errors;
          Alcotest.test_case "risc guest sorts" `Quick test_risc_guest_sorts;
        ] );
      ( "apps",
        [
          Alcotest.test_case "exc differential" `Quick test_exc_differential;
          Alcotest.test_case "exc fresh-seed differential" `Quick
            test_exc_fresh_seeds_differential;
          Alcotest.test_case "exc procedure structure" `Quick
            test_exc_has_many_procedures;
        ] );
      ( "scale",
        [
          Alcotest.test_case "counts and validity" `Quick
            test_scale_counts_and_validity;
          Alcotest.test_case "independent edge formulas" `Quick
            test_scale_edge_formulas;
          Alcotest.test_case "deterministic" `Quick test_scale_deterministic;
          Alcotest.test_case "family shapes" `Quick test_scale_shapes;
          Alcotest.test_case "parameter validation" `Quick
            test_scale_rejects_bad_parameters;
          Alcotest.test_case "certify smoke" `Quick test_scale_certify_smoke;
          Alcotest.test_case "sparse certifier instance = dense" `Quick
            test_certify_sparse_instance_equivalence;
        ] );
      ( "profiles",
        [ Alcotest.test_case "touch sites" `Quick test_profiles_touch_sites ] );
    ]
