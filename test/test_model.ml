(* Tests for the pluggable machine-model layer ({!Ba_machine.Model}):
   the registry must round-trip every accepted spelling and reject the
   rest; the default model's DTSP edge cost must be bit-identical to the
   raw {!Ba_machine.Cost} it subsumes; and the Ext-TSP objective must
   agree with an independent brute-force reference — addresses
   recomputed from the item list, transfers classified from scratch —
   on small random CFGs and layouts. *)

open Ba_cfg
module Model = Ba_machine.Model
module Cost = Ba_machine.Cost
module Penalties = Ba_machine.Penalties
module Addr = Ba_machine.Addr
module Profile = Ba_profile.Profile
module Evaluate = Ba_align.Evaluate
module Driver = Ba_align.Driver

let gen_seed = QCheck2.Gen.int_bound 1_000_000

(* ---------------- registry ---------------- *)

let test_registry_roundtrip () =
  List.iter
    (fun m ->
      match Model.find (Model.to_string m) with
      | Some m' ->
          Alcotest.(check string)
            (Model.to_string m ^ ": round-trips")
            (Model.to_string m) (Model.to_string m')
      | None ->
          Alcotest.failf "find rejects its own spelling %S" (Model.to_string m))
    [
      Model.alpha21164;
      Model.deep_pipeline;
      Model.free_fetch;
      Model.ext_tsp ();
      Model.ext_tsp ~window:512 ();
    ]

let test_registry_spellings () =
  let name s =
    match Model.find s with
    | Some m -> Model.to_string m
    | None -> Alcotest.failf "find rejects %S" s
  in
  Alcotest.(check string) "alpha21164" "alpha21164" (name "alpha21164");
  Alcotest.(check string) "deep-pipeline" "deep-pipeline" (name "deep-pipeline");
  Alcotest.(check string) "free-fetch" "free-fetch" (name "free-fetch");
  (* the bare spelling is canonicalized to its default window *)
  Alcotest.(check string) "ext-tsp" "ext-tsp:1024" (name "ext-tsp");
  Alcotest.(check string) "ext-tsp:512" "ext-tsp:512" (name "ext-tsp:512");
  (match Model.find "ext-tsp:512" with
  | Some { Model.objective = Model.Ext_tsp e; _ } ->
      Alcotest.(check int) "window parsed" 512 e.Model.forward_window
  | _ -> Alcotest.fail "ext-tsp:512 is not an Ext_tsp objective");
  Alcotest.(check string)
    "default is the paper's machine" "alpha21164"
    (Model.to_string Model.default)

let test_registry_rejects () =
  List.iter
    (fun s ->
      match Model.find s with
      | None -> ()
      | Some m ->
          Alcotest.failf "find %S unexpectedly gave %S" s (Model.to_string m))
    [
      ""; "vliw-9000"; "alpha"; "ALPHA21164"; " alpha21164"; "ext-tsp:";
      "ext-tsp:0"; "ext-tsp:-64"; "ext-tsp:abc"; "ext-tsp:1024:1024";
      "deep_pipeline";
    ]

let test_model_penalties () =
  Alcotest.(check bool)
    "deep-pipeline carries its penalty record" true
    (Model.deep_pipeline.Model.penalties = Penalties.deep_pipeline);
  Alcotest.(check bool)
    "free-fetch carries its penalty record" true
    (Model.free_fetch.Model.penalties = Penalties.free_fetch);
  (* Ext-TSP only swaps the objective: realization stays on the Alpha *)
  Alcotest.(check bool)
    "ext-tsp realizes on the Alpha" true
    ((Model.ext_tsp ()).Model.penalties = Penalties.alpha_21164)

(* ---------------- generators ---------------- *)

let random_cfg_profile seed =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 12 in
  let g = Ba_testutil.Gen.cfg rng ~n in
  let prof =
    Ba_testutil.Gen.profile_of ~seed:(seed + 1) g
      ~invocations:(1 + Random.State.int rng 40)
      ~max_steps:80
  in
  (rng, g, prof)

(* a uniformly random valid layout: entry first, rest shuffled *)
let random_order rng (g : Cfg.t) =
  let n = Cfg.n_blocks g in
  let rest = Array.init (n - 1) (fun i -> i + 1) in
  for i = Array.length rest - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = rest.(i) in
    rest.(i) <- rest.(j);
    rest.(j) <- t
  done;
  Array.append [| g.Cfg.entry |] rest

(* ---------------- default-model bit-identity ---------------- *)

(* Under every Control_penalty model the DTSP edge weight must be the
   raw Cost.edge_cost of that model's penalties, on every (block, succ)
   pair including the no-successor row default. *)
let prop_control_penalty_identity =
  QCheck2.Test.make ~count:200
    ~name:"Control_penalty edge_cost = Cost.edge_cost (all models)" gen_seed
    (fun seed ->
      let _, g, prof = random_cfg_profile seed in
      let p = Profile.proc prof 0 in
      let n = Cfg.n_blocks g in
      let predicted = Profile.predictions p ~n_blocks:n in
      List.iter
        (fun m ->
          for i = 0 to n - 1 do
            let check succ =
              let term = (Cfg.block g i).Block.term in
              let freqs = Profile.block_freqs p i in
              let got =
                Model.edge_cost m term ~succ ~predicted:predicted.(i) ~freqs
              in
              let want =
                Cost.edge_cost m.Model.penalties term ~succ
                  ~predicted:predicted.(i) ~freqs
              in
              if got <> want then
                QCheck2.Test.fail_reportf
                  "%s: edge_cost(%d, %s) = %d, want %d" (Model.to_string m) i
                  (match succ with None -> "-" | Some j -> string_of_int j)
                  got want
            in
            check None;
            for j = 0 to n - 1 do
              if j <> i then check (Some j)
            done
          done)
        [ Model.alpha21164; Model.deep_pipeline; Model.free_fetch ];
      true)

(* ---------------- Ext-TSP brute force ---------------- *)

(* Independent reference, written from the spec in model.mli.  Addresses
   are recomputed from the realized item list (never read from
   Addr.build), and every dynamic transfer is classified and weighted
   from scratch. *)

let ref_addrs (g : Cfg.t) (r : Layout.realized) =
  let n = Cfg.n_blocks g in
  let block_addr = Array.make n (-1) and fixup_addr = Array.make n None in
  let pc = ref 0 in
  Array.iter
    (function
      | Layout.I_block l ->
          block_addr.(l) <- !pc;
          pc :=
            !pc
            + (Cfg.block g l).Block.size
            + Layout.rterm_instrs r.Layout.terms.(l)
      | Layout.I_fixup { src; target = _ } ->
          fixup_addr.(src) <- Some !pc;
          incr pc)
    r.Layout.items;
  (block_addr, fixup_addr)

let ref_weight (e : Model.ext_tsp) ~src ~dst =
  let src_b = src * e.Model.instr_bytes and dst_b = dst * e.Model.instr_bytes in
  if dst_b > src_b then
    let d = dst_b - src_b in
    if d <= e.Model.forward_window then
      e.Model.forward_weight * (e.Model.forward_window - d)
      / e.Model.forward_window
    else 0
  else
    let d = src_b - dst_b in
    if d <= e.Model.backward_window then
      e.Model.backward_weight * (e.Model.backward_window - d)
      / e.Model.backward_window
    else 0

let ref_score (e : Model.ext_tsp) (g : Cfg.t) (r : Layout.realized) ~freqs =
  let block_addr, fixup_addr = ref_addrs g r in
  let n = Cfg.n_blocks g in
  let score = ref 0 in
  for l = 0 to n - 1 do
    (* the transferring instruction is the block's last one *)
    let last =
      block_addr.(l)
      + (Cfg.block g l).Block.size
      + Layout.rterm_instrs r.Layout.terms.(l)
      - 1
    in
    Array.iter
      (fun (dst, count) ->
        if count > 0 then
          let w =
            match r.Layout.terms.(l) with
            | Layout.R_exit | Layout.R_multi _ -> 0
            | Layout.R_fall _ -> e.Model.fallthrough_weight
            | Layout.R_jump _ -> ref_weight e ~src:last ~dst:block_addr.(dst)
            | Layout.R_cond { taken; fall = _; via_fixup } ->
                if dst = taken then
                  ref_weight e ~src:last ~dst:block_addr.(dst)
                else if via_fixup then
                  match fixup_addr.(l) with
                  | Some a -> ref_weight e ~src:a ~dst:block_addr.(dst)
                  | None -> 0
                else e.Model.fallthrough_weight
          in
          score := !score + (count * w))
      (freqs l)
  done;
  !score

let ext_params = Model.ext_tsp_params (Model.ext_tsp ())

let prop_score_matches_reference =
  QCheck2.Test.make ~count:300
    ~name:"score_proc = brute-force reference on random layouts" gen_seed
    (fun seed ->
      let rng, g, prof = random_cfg_profile seed in
      let p = Profile.proc prof 0 in
      let order = random_order rng g in
      (* realize under the Ext-TSP model itself: same penalties, so the
         realization is the Alpha's, but this exercises the full path *)
      let realized, _ = Evaluate.realize (Model.ext_tsp ()) g ~order ~train:p in
      let proc = (Addr.build [| (g, realized) |]).Addr.procs.(0) in
      let freqs l = Profile.block_freqs p l in
      let got = Model.score_proc ext_params ~proc ~realized ~freqs in
      let want = ref_score ext_params g realized ~freqs in
      if got <> want then
        QCheck2.Test.fail_reportf "score_proc %d, reference %d" got want;
      true)

(* Narrow windows force the distance terms to actually vary: with an
   8-byte window most jumps score 0 and near jumps decay steeply. *)
let prop_score_matches_reference_narrow =
  QCheck2.Test.make ~count:200
    ~name:"score_proc = reference under narrow windows" gen_seed (fun seed ->
      let rng, g, prof = random_cfg_profile seed in
      let p = Profile.proc prof 0 in
      let order = random_order rng g in
      let e =
        {
          Model.default_ext_tsp with
          Model.forward_window = 8;
          Model.backward_window = 8;
        }
      in
      let realized, _ = Evaluate.realize Model.alpha21164 g ~order ~train:p in
      let proc = (Addr.build [| (g, realized) |]).Addr.procs.(0) in
      let freqs l = Profile.block_freqs p l in
      let got = Model.score_proc e ~proc ~realized ~freqs in
      let want = ref_score e g realized ~freqs in
      if got <> want then
        QCheck2.Test.fail_reportf "score_proc %d, reference %d" got want;
      true)

(* The reduction's pairwise Ext-TSP cost, brute-forced over EVERY valid
   layout of a tiny CFG: the walk cost of each layout must equal
   fallthrough_weight × (total transfers − adjacency fall-throughs),
   both sides computed independently. *)
let prop_reduction_cost_exhaustive =
  QCheck2.Test.make ~count:120
    ~name:"Ext_tsp edge_cost sums to w×(T − fallthroughs), all layouts"
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 2 + Random.State.int rng 4 in
      let g = Ba_testutil.Gen.cfg rng ~n in
      let prof =
        Ba_testutil.Gen.profile_of ~seed:(seed + 1) g ~invocations:20
          ~max_steps:60
      in
      let p = Profile.proc prof 0 in
      let m = Model.ext_tsp () in
      let e = Model.ext_tsp_params m in
      let predicted = Profile.predictions p ~n_blocks:n in
      let total =
        let t = ref 0 in
        for i = 0 to n - 1 do
          Array.iter
            (fun (_, c) -> t := !t + c)
            (Profile.block_freqs p i)
        done;
        !t
      in
      (* naive per-adjacency fall-through count, straight off the CFG *)
      let fallthroughs order =
        let f = ref 0 in
        Array.iteri
          (fun pos l ->
            if pos + 1 < n then
              let next = order.(pos + 1) in
              let freq_to d =
                Array.fold_left
                  (fun acc (d', c) -> if d' = d then acc + c else acc)
                  0
                  (Profile.block_freqs p l)
              in
              match (Cfg.block g l).Block.term with
              | Block.Goto d when d = next -> f := !f + freq_to d
              | Block.Branch { t; f = fl } when next = t || next = fl ->
                  f := !f + freq_to next
              | _ -> ())
          order;
        !f
      in
      let walk_cost order =
        let c = ref 0 in
        Array.iteri
          (fun pos l ->
            let succ = if pos + 1 < n then Some order.(pos + 1) else None in
            c :=
              !c
              + Model.edge_cost m (Cfg.block g l).Block.term ~succ
                  ~predicted:predicted.(l)
                  ~freqs:(Profile.block_freqs p l))
          order;
        !c
      in
      (* enumerate every permutation of the non-entry blocks *)
      let rec perms = function
        | [] -> [ [] ]
        | l ->
            List.concat_map
              (fun x ->
                List.map
                  (fun r -> x :: r)
                  (perms (List.filter (( <> ) x) l)))
              l
      in
      let rest = List.init (n - 1) (fun i -> i + 1) in
      List.iter
        (fun tail ->
          let order = Array.of_list (g.Cfg.entry :: tail) in
          let got = walk_cost order in
          let want = e.Model.fallthrough_weight * (total - fallthroughs order) in
          if got <> want then
            QCheck2.Test.fail_reportf "layout [%s]: walk cost %d, want %d"
              (String.concat ";"
                 (List.map string_of_int (Array.to_list order)))
              got want)
        (perms rest);
      true)

(* the Driver-level sum must agree with per-procedure scoring *)
let prop_driver_score =
  QCheck2.Test.make ~count:80
    ~name:"Driver.ext_tsp_score = per-proc score_proc" gen_seed (fun seed ->
      let _, g, prof = random_cfg_profile seed in
      let aligned = Driver.align Driver.Original Model.alpha21164 [| g |] ~train:prof in
      let p = Profile.proc prof 0 in
      let got = Driver.ext_tsp_score ~params:ext_params aligned ~test:prof in
      let want =
        Model.score_proc ext_params ~proc:aligned.Driver.addr.Addr.procs.(0)
          ~realized:aligned.Driver.realized.(0)
          ~freqs:(fun l -> Profile.block_freqs p l)
      in
      if got <> want then
        QCheck2.Test.fail_reportf "driver %d, per-proc %d" got want;
      true)

let () =
  Alcotest.run "model"
    [
      ( "registry",
        [
          Alcotest.test_case "round-trip" `Quick test_registry_roundtrip;
          Alcotest.test_case "spellings" `Quick test_registry_spellings;
          Alcotest.test_case "rejects" `Quick test_registry_rejects;
          Alcotest.test_case "penalties" `Quick test_model_penalties;
        ] );
      ( "bit-identity",
        [ QCheck_alcotest.to_alcotest prop_control_penalty_identity ] );
      ( "ext-tsp",
        [
          QCheck_alcotest.to_alcotest prop_score_matches_reference;
          QCheck_alcotest.to_alcotest prop_score_matches_reference_narrow;
          QCheck_alcotest.to_alcotest prop_reduction_cost_exhaustive;
          QCheck_alcotest.to_alcotest prop_driver_score;
        ] );
    ]
