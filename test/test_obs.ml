(** Unit suite for the observability layer (lib/obs): JSON
    emit/parse roundtrips, span buffers, the metrics registry, sinks,
    and the Chrome trace export — including the contract that span
    structure is identical under [Seq] and [Pool] executors. *)

module Json = Ba_obs.Json
module Span = Ba_obs.Span
module Metrics = Ba_obs.Metrics
module Trace = Ba_obs.Trace
module Sink = Ba_obs.Sink
module Executor = Ba_engine.Executor
module Task = Ba_engine.Task

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("yes", Json.Bool true);
      ("n", Json.Int (-42));
      ("f", Json.Float 1.5);
      ("s", Json.String "a \"quoted\"\nline\twith \\ and \x01");
      ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
    ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample) with
  | Ok v ->
      Alcotest.(check string)
        "roundtrip" (Json.to_string sample) (Json.to_string v)
  | Error m -> Alcotest.failf "parse failed: %s" m

let test_json_floats () =
  Alcotest.(check string) "fixed" "[0.500000]"
    (Json.to_string (Json.List [ Json.Float 0.5 ]));
  Alcotest.(check string) "nan is null" "[null,null,null]"
    (Json.to_string
       (Json.List
          [ Json.Float Float.nan; Json.Float Float.infinity;
            Json.Float Float.neg_infinity ]))

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":1,}"; "[1] trailing"; "'single'"; "{1:2}" ]

let test_json_accessors () =
  let v = Json.Obj [ ("rows", Json.List [ Json.Int 3; Json.Float 2.5 ]) ] in
  let rows = Option.get (Json.to_list (Option.get (Json.member "rows" v))) in
  Alcotest.(check (list (float 1e-9)))
    "numbers" [ 3.; 2.5 ]
    (List.filter_map Json.to_number rows);
  Alcotest.(check bool) "missing member" true (Json.member "nope" v = None)

(* ------------------------------------------------------------------ *)
(* Span                                                                *)
(* ------------------------------------------------------------------ *)

let shape buf =
  Array.to_list (Span.spans buf)
  |> List.map (fun s -> (s.Span.id, s.Span.parent, s.Span.name))

let test_span_nesting () =
  let buf = Span.create ~task:7 ~enabled:true in
  Span.with_span buf "root" (fun () ->
      Span.with_span buf "a" (fun () ->
          Span.with_span buf "a1" (fun () -> ()));
      Span.with_span buf "b" (fun () -> ()));
  Alcotest.(check (list (triple int int string)))
    "ids/parents/names"
    [ (0, -1, "root"); (1, 0, "a"); (2, 1, "a1"); (3, 0, "b") ]
    (shape buf);
  Array.iter
    (fun s ->
      Alcotest.(check int) "task id" 7 s.Span.task;
      Alcotest.(check bool) "non-negative duration" true
        (Span.duration_ns s >= 0L))
    (Span.spans buf)

let test_span_disabled_and_null () =
  let buf = Span.create ~task:0 ~enabled:false in
  let r = Span.with_span buf "x" (fun () -> 41 + 1) in
  Alcotest.(check int) "value passes through" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Array.length (Span.spans buf));
  Alcotest.(check int) "null buffer empty" 0
    (Array.length (Span.spans Span.null))

exception Kaboom

let test_span_closes_on_raise () =
  let buf = Span.create ~task:0 ~enabled:true in
  (try
     Span.with_span buf "outer" (fun () ->
         Span.with_span buf "inner" (fun () -> raise Kaboom))
   with Kaboom -> ());
  Alcotest.(check (list (triple int int string)))
    "both spans closed"
    [ (0, -1, "outer"); (1, 0, "inner") ]
    (shape buf)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_counters () =
  Metrics.reset ();
  Metrics.incr Metrics.Kicks;
  Metrics.incr ~n:41 Metrics.Kicks;
  Metrics.incr ~n:0 Metrics.Moves_2opt;
  Alcotest.(check int) "kicks" 42 (Metrics.get Metrics.Kicks);
  Alcotest.(check int) "zero add is free" 0 (Metrics.get Metrics.Moves_2opt);
  Metrics.set_gauge Metrics.Jobs 8;
  Alcotest.(check int) "gauge" 8 (Metrics.get_gauge Metrics.Jobs)

let test_metrics_gap () =
  Metrics.reset ();
  Metrics.observe_hk_gap 0.10;
  Metrics.observe_hk_gap 0.30;
  let g = Metrics.hk_gap () in
  Alcotest.(check int) "count" 2 g.Metrics.count;
  Alcotest.(check (float 1e-4)) "mean" 0.20 g.Metrics.mean;
  Alcotest.(check (float 1e-4)) "max" 0.30 g.Metrics.max

let test_metrics_snapshot_names () =
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check (list string))
    "counter catalogue"
    (List.map snd Metrics.all_counters)
    (List.map fst snap.Metrics.counter_values);
  Alcotest.(check (list string))
    "gauge catalogue"
    (List.map snd Metrics.all_gauges)
    (List.map fst snap.Metrics.gauge_values)

let test_metrics_cross_domain () =
  Metrics.reset ();
  (* concurrent increments from a pool must all land *)
  ignore
    (Executor.init (Executor.Pool 4) 64 (fun _ ->
         for _ = 1 to 100 do Metrics.incr Metrics.Moves_3opt done));
  Alcotest.(check int) "64*100 increments" 6400
    (Metrics.get Metrics.Moves_3opt)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)
(* ------------------------------------------------------------------ *)

let test_sink_of_spec () =
  Alcotest.(check bool) "dash" true (Sink.of_spec "-" = Sink.Stderr);
  Alcotest.(check bool) "stderr" true (Sink.of_spec "stderr" = Sink.Stderr);
  Alcotest.(check bool) "csv" true
    (Sink.of_spec "m.csv" = Sink.Csv_file "m.csv");
  Alcotest.(check bool) "json" true
    (Sink.of_spec "m.json" = Sink.Json_file "m.json")

let test_sink_renders () =
  Metrics.reset ();
  Metrics.incr ~n:3 Metrics.Restarts;
  Metrics.observe_hk_gap 0.5;
  let snap = Metrics.snapshot () in
  (match Json.parse (Json.to_string (Sink.snapshot_json snap)) with
  | Error m -> Alcotest.failf "snapshot json invalid: %s" m
  | Ok v ->
      let counters = Option.get (Json.member "counters" v) in
      Alcotest.(check (option (float 1e-9)))
        "restarts" (Some 3.)
        (Option.bind (Json.member "solver.restarts" counters) Json.to_number));
  let csv = Sink.snapshot_csv snap in
  Alcotest.(check string) "csv header" "metric,value" (List.hd csv);
  Alcotest.(check bool) "csv has restarts row" true
    (List.mem "solver.restarts,3" csv)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

(* The same staged fan-out under any executor; returns the trace's
   structural skeleton (labels + span names/parents per group). *)
let skeleton exec =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    (fun () ->
      let tasks =
        Array.init 6 (fun i ->
            Task.make ~id:i ~label:(Printf.sprintf "t%d" i) (fun ctx ->
                Task.staged ctx Task.Build (fun () -> ());
                Task.staged ctx Task.Solve (fun () ->
                    Span.with_span (Task.spans ctx) "kick" (fun () -> ()));
                i * i))
      in
      ignore (Task.run_all exec tasks);
      List.map
        (fun (g : Trace.group) ->
          ( g.Trace.seq,
            g.Trace.label,
            Array.to_list g.Trace.spans
            |> List.map (fun s -> (s.Span.name, s.Span.parent)) ))
        (Trace.all_groups ()))

let test_trace_structure () =
  let groups = skeleton Executor.Seq in
  Alcotest.(check int) "one group per task" 6 (List.length groups);
  List.iteri
    (fun i (seq, label, spans) ->
      Alcotest.(check int) "seq is task index" i seq;
      Alcotest.(check string) "label" (Printf.sprintf "t%d" i) label;
      Alcotest.(check
        (list (pair string int)))
        "root + stages + nested"
        [ ("task", -1); ("build", 0); ("solve", 0); ("kick", 2) ]
        spans)
    groups

let test_trace_seq_pool_identical () =
  let s = skeleton Executor.Seq in
  List.iter
    (fun jobs ->
      Alcotest.(check bool)
        (Printf.sprintf "pool%d skeleton" jobs)
        true
        (s = skeleton (Executor.Pool jobs)))
    [ 2; 4 ]

let test_trace_chrome_export () =
  Trace.clear ();
  Trace.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Trace.set_enabled false;
      Trace.clear ())
    (fun () ->
      let tasks =
        Array.init 2 (fun i ->
            Task.make ~id:i ~label:"w" (fun ctx ->
                Task.staged ctx Task.Solve (fun () -> ())))
      in
      ignore (Task.run_all Executor.Seq tasks);
      let doc = Trace.to_chrome () in
      (* the export must survive its own emit/parse roundtrip *)
      (match Json.parse (Json.to_string doc) with
      | Error m -> Alcotest.failf "chrome json invalid: %s" m
      | Ok _ -> ());
      let events =
        Option.get (Json.to_list (Option.get (Json.member "traceEvents" doc)))
      in
      let phase e = Option.get (Json.to_str (Option.get (Json.member "ph" e))) in
      let metas = List.filter (fun e -> phase e = "M") events in
      let xs = List.filter (fun e -> phase e = "X") events in
      Alcotest.(check int) "one thread_name per task" 2 (List.length metas);
      (* 2 tasks x (root + solve) *)
      Alcotest.(check int) "complete events" 4 (List.length xs);
      List.iter
        (fun e ->
          let num k =
            Option.bind (Json.member k e) Json.to_number |> Option.get
          in
          Alcotest.(check bool) "ts rebased" true (num "ts" >= 0.);
          Alcotest.(check bool) "dur non-negative" true (num "dur" >= 0.);
          Alcotest.(check bool) "tid is a group" true
            (num "tid" = 0. || num "tid" = 1.))
        xs)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "parse-errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "disabled" `Quick test_span_disabled_and_null;
          Alcotest.test_case "closes-on-raise" `Quick test_span_closes_on_raise;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "hk-gap" `Quick test_metrics_gap;
          Alcotest.test_case "snapshot-names" `Quick test_metrics_snapshot_names;
          Alcotest.test_case "cross-domain" `Quick test_metrics_cross_domain;
        ] );
      ( "sink",
        [
          Alcotest.test_case "of-spec" `Quick test_sink_of_spec;
          Alcotest.test_case "renders" `Quick test_sink_renders;
        ] );
      ( "trace",
        [
          Alcotest.test_case "structure" `Quick test_trace_structure;
          Alcotest.test_case "seq-pool-identical" `Quick
            test_trace_seq_pool_identical;
          Alcotest.test_case "chrome-export" `Quick test_trace_chrome_export;
        ] );
    ]
