(* Fuzz tests for the minic front end: generate random well-formed
   programs, and check
   - the pretty-printer round-trips through the parser structurally;
   - compilation never fails on generated programs;
   - execution is deterministic and either terminates cleanly or raises
     a clean Runtime_error (never an unexpected exception);
   - the trace stream is well-formed (balanced Enter/Leave). *)

open Ba_minic

(* ---------------- AST generator ---------------- *)

(* a small pool of variable names per function; generated programs
   declare all of them up front so any reference is valid *)
let var_names = [| "a"; "b"; "c"; "d"; "e" |]
let arr_names = [| "xs"; "ys" |]

let gen_expr rng ~depth =
  let rec go depth =
    if depth = 0 then
      match Random.State.int rng 3 with
      | 0 -> Ast.Int (Random.State.int rng 100)
      | 1 -> Ast.Var var_names.(Random.State.int rng (Array.length var_names))
      | _ ->
          Ast.Index
            ( arr_names.(Random.State.int rng (Array.length arr_names)),
              (* keep indices in range by masking *)
              Ast.Binary
                ( Ast.Band,
                  Ast.Var var_names.(Random.State.int rng (Array.length var_names)),
                  Ast.Int 7 ) )
    else
      match Random.State.int rng 8 with
      | 0 -> Ast.Unary (Ast.Neg, go (depth - 1))
      | 1 -> Ast.Unary (Ast.Not, go (depth - 1))
      | 2 | 3 ->
          let ops =
            [| Ast.Add; Ast.Sub; Ast.Mul; Ast.Lt; Ast.Le; Ast.Eq; Ast.Ne;
               Ast.Band; Ast.Bor; Ast.Bxor; Ast.And; Ast.Or |]
          in
          Ast.Binary
            (ops.(Random.State.int rng (Array.length ops)), go (depth - 1), go (depth - 1))
      | 4 ->
          (* guarded division: divisor forced non-zero *)
          Ast.Binary
            ( (if Random.State.bool rng then Ast.Div else Ast.Mod),
              go (depth - 1),
              Ast.Binary (Ast.Bor, go (depth - 1), Ast.Int 1) )
      | 5 -> Ast.Call ("read", [])
      | _ -> go (depth - 1)
  in
  go depth

let gen_stmts rng ~depth ~length =
  let var () = var_names.(Random.State.int rng (Array.length var_names)) in
  let arr () = arr_names.(Random.State.int rng (Array.length arr_names)) in
  let rec stmts depth length =
    List.init length (fun _ -> stmt depth)
  and stmt depth =
    match (if depth = 0 then Random.State.int rng 4 else Random.State.int rng 8) with
    | 0 -> Ast.Assign (var (), gen_expr rng ~depth:2)
    | 1 ->
        Ast.Store
          (arr (), Ast.Binary (Ast.Band, gen_expr rng ~depth:1, Ast.Int 7),
           gen_expr rng ~depth:2)
    | 2 -> Ast.Print (gen_expr rng ~depth:2)
    | 3 -> Ast.Assign (var (), gen_expr rng ~depth:1)
    | 4 ->
        Ast.If
          (gen_expr rng ~depth:2, stmts (depth - 1) (1 + Random.State.int rng 3),
           if Random.State.bool rng then []
           else stmts (depth - 1) (1 + Random.State.int rng 2))
    | 5 ->
        (* bounded loop: fresh counter pattern via an existing var *)
        let v = var () in
        Ast.If
          ( Ast.Int 1,
            [
              Ast.Assign (v, Ast.Int 0);
              Ast.While
                ( Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int (1 + Random.State.int rng 8)),
                  stmts (depth - 1) (1 + Random.State.int rng 2)
                  @ [ Ast.Assign (v, Ast.Binary (Ast.Add, Ast.Var v, Ast.Int 1)) ] );
            ],
            [] )
    | 6 ->
        Ast.Switch
          ( gen_expr rng ~depth:1,
            List.init (1 + Random.State.int rng 3) (fun i ->
                (i, stmts (depth - 1) 1)),
            stmts (depth - 1) 1 )
    | _ ->
        let v = var () in
        Ast.For
          ( Ast.Assign (v, Ast.Int 0),
            Ast.Binary (Ast.Lt, Ast.Var v, Ast.Int (1 + Random.State.int rng 6)),
            Ast.Assign (v, Ast.Binary (Ast.Add, Ast.Var v, Ast.Int 1)),
            stmts (depth - 1) (1 + Random.State.int rng 2) )
  in
  stmts depth length

let gen_program rng : Ast.program =
  let decls =
    List.map (fun v -> Ast.Decl (v, Ast.Int 0)) (Array.to_list var_names)
    @ List.map
        (fun a -> Ast.Decl (a, Ast.Call ("array", [ Ast.Int 8 ])))
        (Array.to_list arr_names)
  in
  let body = decls @ gen_stmts rng ~depth:3 ~length:(2 + Random.State.int rng 5) in
  [ { Ast.name = "main"; params = []; body } ]

(* ---------------- properties ---------------- *)

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let prop_pretty_roundtrip =
  QCheck2.Test.make ~count:120 ~name:"parse (pretty p) = p" gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let p = gen_program rng in
      let src = Pretty.program p in
      match Parser.parse src with
      | p' -> p = p'
      | exception _ -> false)

let prop_generated_programs_compile =
  QCheck2.Test.make ~count:120 ~name:"generated programs compile" gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Pretty.program (gen_program rng) in
      match Compile.compile src with Ok _ -> true | Error _ -> false)

let prop_execution_clean_and_deterministic =
  QCheck2.Test.make ~count:80 ~name:"execution clean and deterministic" gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Pretty.program (gen_program rng) in
      match Compile.compile src with
      | Error _ -> false
      | Ok c ->
          let input = Array.init 16 (fun i -> (i * 7) - 20) in
          let run () =
            match Compile.run ~limit:200_000 c ~input ~sink:Ba_cfg.Trace.null with
            | r -> Some r.Interp.output
            | exception Interp.Runtime_error _ -> None
          in
          run () = run ())

let prop_trace_well_formed =
  QCheck2.Test.make ~count:60 ~name:"trace stream balanced" gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Pretty.program (gen_program rng) in
      match Compile.compile src with
      | Error _ -> false
      | Ok c ->
          let depth = ref 0 and ok = ref true and events = ref 0 in
          let sink = function
            | Ba_cfg.Trace.Enter _ -> incr depth; incr events
            | Ba_cfg.Trace.Leave ->
                decr depth;
                if !depth < 0 then ok := false
            | Ba_cfg.Trace.Block _ -> if !depth <= 0 then ok := false
          in
          (match Compile.run ~limit:200_000 c ~input:[| 1; 2; 3 |] ~sink with
          | (_ : Interp.result) -> ()
          | exception Interp.Runtime_error _ -> ());
          !ok && !events > 0)

(* the generated CFGs feed the aligners without error, and the central
   identity holds on fuzzed programs too *)
let prop_fuzzed_programs_align =
  QCheck2.Test.make ~count:40 ~name:"fuzzed programs align + identity" gen_seed
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let src = Pretty.program (gen_program rng) in
      match Compile.compile src with
      | Error _ -> false
      | Ok c -> (
          let input = Array.init 8 (fun i -> i) in
          match
            Ba_profile.Collect.profile_of_run ~n_blocks:(Compile.n_blocks c)
              (fun sink -> ignore (Compile.run ~limit:200_000 c ~input ~sink))
          with
          | exception Interp.Runtime_error _ -> true (* nothing to align *)
          | prof ->
              let p = Ba_machine.Model.alpha21164 in
              Array.for_all
                (fun fid ->
                  let g = c.Compile.cfgs.(fid) in
                  let pr = Ba_profile.Profile.proc prof fid in
                  let inst = Ba_align.Reduction.build p g ~profile:pr in
                  let o = Ba_align.Greedy.align g ~profile:pr in
                  Ba_cfg.Layout.is_valid g o
                  && Ba_align.Reduction.layout_cost inst o
                     = Ba_align.Evaluate.proc_penalty p g ~order:o ~train:pr
                         ~test:pr)
                (Array.init (Array.length c.Compile.cfgs) Fun.id)))

let () =
  Alcotest.run "minic-fuzz"
    [
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_pretty_roundtrip;
          QCheck_alcotest.to_alcotest prop_generated_programs_compile;
          QCheck_alcotest.to_alcotest prop_execution_clean_and_deterministic;
          QCheck_alcotest.to_alcotest prop_trace_well_formed;
          QCheck_alcotest.to_alcotest prop_fuzzed_programs_align;
        ] );
    ]
