(* Tests for the TSP substrate: construction heuristics, symmetrization,
   3-opt, iterated 3-opt, exact DP, and both lower bounds. *)

open Ba_tsp

let rng = Random.State.make [| 42 |]

let random_dtsp ?(max_cost = 100) n =
  Dtsp.make
    (Array.init n (fun i ->
         Array.init n (fun j ->
             if i = j then 0 else Random.State.int rng (max_cost + 1))))

(* ---------------- Dtsp basics ---------------- *)

let test_tour_cost () =
  let d = Dtsp.make [| [| 0; 1; 9 |]; [| 9; 0; 2 |]; [| 3; 9; 0 |] |] in
  Alcotest.(check int) "cycle 0-1-2" 6 (Dtsp.tour_cost d [| 0; 1; 2 |]);
  Alcotest.(check int) "cycle 0-2-1" 27 (Dtsp.tour_cost d [| 0; 2; 1 |])

let test_tour_cost_rejects_non_tour () =
  let d = random_dtsp 4 in
  Alcotest.check_raises "duplicate city" (Invalid_argument "Dtsp.tour_cost: not a tour")
    (fun () -> ignore (Dtsp.tour_cost d [| 0; 1; 1; 3 |]))

let test_rotate () =
  let t = Dtsp.rotate_to [| 3; 1; 0; 2 |] 0 in
  Alcotest.(check (array int)) "rotated" [| 0; 2; 3; 1 |] t

(* ---------------- construction ---------------- *)

let test_nn_is_tour () =
  for n = 2 to 12 do
    let d = random_dtsp n in
    let t = Construct.nearest_neighbor d ~start:0 in
    Alcotest.(check bool) (Printf.sprintf "nn tour n=%d" n) true (Dtsp.is_tour d t)
  done

let test_greedy_is_tour () =
  for n = 2 to 12 do
    let d = random_dtsp n in
    let t = Construct.greedy_edge d in
    Alcotest.(check bool) (Printf.sprintf "greedy tour n=%d" n) true (Dtsp.is_tour d t)
  done

let test_randomized_constructions_are_tours () =
  let d = random_dtsp 15 in
  for _ = 1 to 20 do
    let t1 = Construct.greedy_edge ~rng ~skip_prob:0.3 d in
    let t2 =
      Construct.nearest_neighbor ~rng ~choices:3 d ~start:(Random.State.int rng 15)
    in
    Alcotest.(check bool) "greedy" true (Dtsp.is_tour d t1);
    Alcotest.(check bool) "nn" true (Dtsp.is_tour d t2)
  done

let test_nn_on_easy_instance () =
  (* a directed ring with cheap forward edges: nn from 0 must follow it *)
  let n = 8 in
  let d =
    Dtsp.make
      (Array.init n (fun i ->
           Array.init n (fun j -> if j = (i + 1) mod n then 1 else 50)))
  in
  let t = Construct.nearest_neighbor d ~start:0 in
  Alcotest.(check int) "optimal ring found" n (Dtsp.tour_cost d t)

(* ---------------- symmetrization ---------------- *)

let test_sym_roundtrip () =
  for n = 2 to 10 do
    let d = random_dtsp n in
    let s = Sym.of_dtsp d in
    let dtour = Construct.nearest_neighbor d ~start:0 in
    let stour = Sym.expand s dtour in
    Alcotest.(check bool) "alternating" true (Sym.check_alternating s stour);
    let back = Sym.extract s stour in
    (* the extracted tour is the same cycle, possibly rotated *)
    Alcotest.(check (array int))
      (Printf.sprintf "roundtrip n=%d" n)
      (Dtsp.rotate_to dtour 0) (Dtsp.rotate_to back 0)
  done

let test_sym_cost_offset () =
  for n = 2 to 10 do
    let d = random_dtsp n in
    let s = Sym.of_dtsp d in
    let dtour = Construct.greedy_edge d in
    let stour = Sym.expand s dtour in
    Alcotest.(check int)
      (Printf.sprintf "offset identity n=%d" n)
      (Dtsp.tour_cost d dtour)
      (Sym.tour_cost s stour + s.Sym.offset)
  done

let test_sym_reversed_extract () =
  let d = random_dtsp 6 in
  let s = Sym.of_dtsp d in
  let dtour = [| 0; 3; 1; 5; 2; 4 |] in
  let stour = Sym.expand s dtour in
  let rev = Array.init (Array.length stour) (fun i ->
      stour.(Array.length stour - 1 - i)) in
  let back = Sym.extract s rev in
  (* reversing the symmetric tour must recover the same directed cycle *)
  Alcotest.(check (array int)) "reversed" (Dtsp.rotate_to dtour 0)
    (Dtsp.rotate_to back 0)

(* ---------------- 3-opt ---------------- *)

let three_opt_improves d =
  let s = Sym.of_dtsp d in
  let nbr = Neighbors.of_sym s ~k:8 in
  let start = Construct.identity d.Dtsp.n in
  let st = Three_opt.init s ~nbr ~tour:(Sym.expand s start) in
  Three_opt.activate_all st;
  Three_opt.run st;
  let final = Three_opt.tour st in
  Alcotest.(check bool) "still alternating" true (Sym.check_alternating s final);
  let c0 = Dtsp.tour_cost d start
  and c1 = Sym.tour_cost s final + s.Sym.offset in
  Alcotest.(check bool) "no worse than start" true (c1 <= c0);
  c1

let test_three_opt_preserves_structure () =
  for n = 4 to 12 do
    ignore (three_opt_improves (random_dtsp n))
  done

let test_three_opt_finds_ring () =
  (* cheap directed ring hidden in an expensive matrix; 3-opt from the
     identity should find a tour no worse than greedy construction *)
  let n = 10 in
  let perm = [| 0; 7; 3; 9; 1; 4; 8; 2; 6; 5 |] in
  let m =
    Array.init n (fun i -> Array.init n (fun j -> if j = i then 0 else 100))
  in
  Array.iteri (fun k p -> m.(p).(perm.((k + 1) mod n)) <- 1) perm;
  let d = Dtsp.make m in
  let c = three_opt_improves d in
  Alcotest.(check bool) "close to optimal ring" true (c <= 3 * n)

(* ---------------- exact solver ---------------- *)

let test_exact_small_by_enumeration () =
  (* compare the DP against explicit enumeration of all (n-1)! tours *)
  let rec perms = function
    | [] -> [ [] ]
    | l -> List.concat_map (fun x -> List.map (fun p -> x :: p) (perms (List.filter (( <> ) x) l))) l
  in
  for n = 3 to 6 do
    let d = random_dtsp n in
    let rest = List.init (n - 1) (fun i -> i + 1) in
    let best =
      perms rest
      |> List.map (fun p -> Dtsp.tour_cost d (Array.of_list (0 :: p)))
      |> List.fold_left min max_int
    in
    let tour, cost = Exact.solve d in
    Alcotest.(check bool) "valid" true (Dtsp.is_tour d tour);
    Alcotest.(check int) (Printf.sprintf "dp tour cost n=%d" n) cost
      (Dtsp.tour_cost d tour);
    Alcotest.(check int) (Printf.sprintf "dp optimal n=%d" n) best cost
  done

let test_exact_rejects_large () =
  let d = random_dtsp 19 in
  Alcotest.check_raises "too large"
    (Invalid_argument "Exact.solve: instance too large") (fun () ->
      ignore (Exact.solve d))

(* ---------------- iterated solver vs exact ---------------- *)

let test_iterated_matches_exact () =
  let hits = ref 0 and total = ref 0 in
  for n = 4 to 11 do
    for _ = 1 to 3 do
      incr total;
      let d = random_dtsp n in
      let tour, stats = Iterated.solve d in
      Alcotest.(check bool) "valid tour" true (Dtsp.is_tour d tour);
      Alcotest.(check int) "reported cost is tour cost" stats.Iterated.best_cost
        (Dtsp.tour_cost d tour);
      let opt = Exact.optimal_cost d in
      Alcotest.(check bool) "not below optimum" true (stats.Iterated.best_cost >= opt);
      if stats.Iterated.best_cost = opt then incr hits
    done
  done;
  (* the solver should find the optimum on nearly all tiny instances *)
  Alcotest.(check bool)
    (Printf.sprintf "optimum found on %d/%d" !hits !total)
    true
    (!hits * 10 >= !total * 9)

let test_iterated_deterministic () =
  let d = random_dtsp 9 in
  let _, s1 = Iterated.solve d in
  let _, s2 = Iterated.solve d in
  Alcotest.(check int) "same cost for same seed" s1.Iterated.best_cost
    s2.Iterated.best_cost

(* ---------------- lower bounds ---------------- *)

let test_ap_bound_below_optimum () =
  for n = 4 to 10 do
    let d = random_dtsp n in
    let opt = Exact.optimal_cost d in
    let ap = Hungarian.ap_bound d in
    Alcotest.(check bool) (Printf.sprintf "ap <= opt n=%d" n) true (ap <= opt)
  done

let test_hungarian_known () =
  (* classic 3x3 assignment *)
  let c = [| 4; 1; 3; 2; 0; 5; 3; 2; 2 |] in
  let assignment, total = Hungarian.solve ~n:3 c in
  Alcotest.(check int) "optimal assignment cost" 5 total;
  (* check it is a permutation achieving the cost *)
  let seen = Array.make 3 false in
  Array.iter (fun j -> seen.(j) <- true) assignment;
  Alcotest.(check bool) "permutation" true (Array.for_all Fun.id seen)

let test_hungarian_identity () =
  let n = 5 in
  let c = Array.init (n * n) (fun k -> if k / n = k mod n then 0 else 10) in
  let _, total = Hungarian.solve ~n c in
  Alcotest.(check int) "diagonal optimal" 0 total

let test_hk_bound_brackets_optimum () =
  for n = 4 to 10 do
    let d = random_dtsp n in
    let tour, stats = Iterated.solve d in
    ignore tour;
    let opt = Exact.optimal_cost d in
    let hk = Held_karp.directed_bound d ~upper_bound:stats.Iterated.best_cost in
    Alcotest.(check bool)
      (Printf.sprintf "hk %d <= opt %d (n=%d)" hk opt n)
      true (hk <= opt)
  done

let test_hk_tight_on_ring () =
  (* on a pure directed ring the bound should be very close to n *)
  let n = 12 in
  let d =
    Dtsp.make
      (Array.init n (fun i ->
           Array.init n (fun j -> if j = (i + 1) mod n then 1 else 40)))
  in
  let _, stats = Iterated.solve d in
  Alcotest.(check int) "solver finds ring" n stats.Iterated.best_cost;
  let hk = Held_karp.directed_bound d ~upper_bound:stats.Iterated.best_cost in
  Alcotest.(check bool)
    (Printf.sprintf "hk=%d close to %d" hk n)
    true
    (hk <= n && hk >= n - 2)

(* ---------------- patching heuristic ---------------- *)

let test_patching_is_tour () =
  for n = 2 to 14 do
    let d = random_dtsp n in
    let tour, cost = Patching.solve d in
    Alcotest.(check bool) (Printf.sprintf "tour n=%d" n) true (Dtsp.is_tour d tour);
    Alcotest.(check int) "reported cost" (Dtsp.tour_cost d tour) cost
  done

let test_patching_bracketed () =
  for n = 4 to 10 do
    let d = random_dtsp n in
    let _, cost = Patching.solve d in
    let opt = Exact.optimal_cost d in
    let ap = Hungarian.ap_bound d in
    Alcotest.(check bool)
      (Printf.sprintf "ap %d <= opt %d <= patching %d (n=%d)" ap opt cost n)
      true
      (ap <= opt && opt <= cost)
  done

let test_patching_exact_when_ap_is_single_cycle () =
  (* a directed ring: the AP solution is already one cycle, so patching
     must return the optimum *)
  let n = 9 in
  let d =
    Dtsp.make
      (Array.init n (fun i ->
           Array.init n (fun j -> if j = (i + 1) mod n then 1 else 50)))
  in
  let _, cost = Patching.solve d in
  Alcotest.(check int) "ring solved exactly" n cost

let test_patching_usually_loses_to_3opt () =
  (* on structured (non-random) instances, iterated 3-opt should be at
     least as good as patching overall — the appendix's claim *)
  let total_patch = ref 0 and total_3opt = ref 0 in
  for seed = 0 to 9 do
    let st = Random.State.make [| seed |] in
    (* clustered costs: two groups with cheap intra-group edges *)
    let n = 12 in
    let d =
      Dtsp.make
        (Array.init n (fun i ->
             Array.init n (fun j ->
                 if i = j then 0
                 else if i / 6 = j / 6 then Random.State.int st 10
                 else 50 + Random.State.int st 50)))
    in
    total_patch := !total_patch + snd (Patching.solve d);
    let _, s = Iterated.solve d in
    total_3opt := !total_3opt + s.Iterated.best_cost
  done;
  Alcotest.(check bool)
    (Printf.sprintf "3opt %d <= patching %d" !total_3opt !total_patch)
    true
    (!total_3opt <= !total_patch)

(* ---------------- qcheck properties ---------------- *)

let gen_dtsp =
  QCheck2.Gen.(
    let* n = int_range 4 12 in
    let* seed = int_bound 1_000_000 in
    return (n, seed))

let make_instance (n, seed) =
  let st = Random.State.make [| seed |] in
  Dtsp.make
    (Array.init n (fun i ->
         Array.init n (fun j -> if i = j then 0 else Random.State.int st 1000)))

let prop_solver_bracketed =
  QCheck2.Test.make ~count:30 ~name:"hk <= exact <= iterated on random instances"
    gen_dtsp (fun spec ->
      let d = make_instance spec in
      let _, stats = Iterated.solve d in
      let opt = Exact.optimal_cost d in
      let hk = Held_karp.directed_bound d ~upper_bound:stats.Iterated.best_cost in
      let ap = Hungarian.ap_bound d in
      hk <= opt && ap <= opt && stats.Iterated.best_cost >= opt)

let prop_sym_roundtrip =
  QCheck2.Test.make ~count:50 ~name:"sym expand/extract roundtrip" gen_dtsp
    (fun spec ->
      let d = make_instance spec in
      let s = Sym.of_dtsp d in
      let t = Construct.greedy_edge d in
      let back = Sym.extract s (Sym.expand s t) in
      Dtsp.rotate_to back 0 = Dtsp.rotate_to t 0)

let () =
  Alcotest.run "ba_tsp"
    [
      ( "dtsp",
        [
          Alcotest.test_case "tour cost" `Quick test_tour_cost;
          Alcotest.test_case "rejects non-tour" `Quick test_tour_cost_rejects_non_tour;
          Alcotest.test_case "rotate" `Quick test_rotate;
        ] );
      ( "construct",
        [
          Alcotest.test_case "nearest neighbor is a tour" `Quick test_nn_is_tour;
          Alcotest.test_case "greedy edge is a tour" `Quick test_greedy_is_tour;
          Alcotest.test_case "randomized variants are tours" `Quick
            test_randomized_constructions_are_tours;
          Alcotest.test_case "nn finds easy ring" `Quick test_nn_on_easy_instance;
        ] );
      ( "sym",
        [
          Alcotest.test_case "roundtrip" `Quick test_sym_roundtrip;
          Alcotest.test_case "cost offset" `Quick test_sym_cost_offset;
          Alcotest.test_case "reversed extract" `Quick test_sym_reversed_extract;
        ] );
      ( "three-opt",
        [
          Alcotest.test_case "preserves locked structure" `Quick
            test_three_opt_preserves_structure;
          Alcotest.test_case "finds hidden ring" `Quick test_three_opt_finds_ring;
        ] );
      ( "exact",
        [
          Alcotest.test_case "matches enumeration" `Quick test_exact_small_by_enumeration;
          Alcotest.test_case "rejects large instances" `Quick test_exact_rejects_large;
        ] );
      ( "iterated",
        [
          Alcotest.test_case "matches exact on small instances" `Slow
            test_iterated_matches_exact;
          Alcotest.test_case "deterministic" `Quick test_iterated_deterministic;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "ap below optimum" `Quick test_ap_bound_below_optimum;
          Alcotest.test_case "hungarian known instance" `Quick test_hungarian_known;
          Alcotest.test_case "hungarian identity" `Quick test_hungarian_identity;
          Alcotest.test_case "hk brackets optimum" `Quick test_hk_bound_brackets_optimum;
          Alcotest.test_case "hk tight on ring" `Quick test_hk_tight_on_ring;
        ] );
      ( "patching",
        [
          Alcotest.test_case "produces tours" `Quick test_patching_is_tour;
          Alcotest.test_case "bracketed by ap and opt" `Quick test_patching_bracketed;
          Alcotest.test_case "exact on single-cycle AP" `Quick
            test_patching_exact_when_ap_is_single_cycle;
          Alcotest.test_case "loses to 3-opt on structured instances" `Quick
            test_patching_usually_loses_to_3opt;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_solver_bracketed;
          QCheck_alcotest.to_alcotest prop_sym_roundtrip;
        ] );
    ]
