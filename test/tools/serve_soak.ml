(* serve_soak — replay a long mixed-fault request trace at the serve
   daemon (in-process, over pipes) and assert the crash-only contract:

     - zero crashes: no exception ever escapes the request loop, and
       every segment of the trace ends in a clean stop reason;
     - zero uncertified responses: every [ok] layout is re-certified
       CLIENT-side with Ba_check.Certify against the request's own CFG
       and profile — the suite does not take the server's word for it;
     - every injected protocol fault yields its contracted outcome
       (typed error response, degraded-but-certified layout, or a
       final error followed by a clean end of stream);
     - a repeated identical request is a cache hit with a bit-identical
       layout.

   Stream-ending faults (truncated frame, garbage length header) split
   the trace into segments, each served by a fresh server instance —
   exactly how a crash-only daemon is deployed under a supervisor.

     serve_soak [--requests N] [--out FILE]

   Writes a serve-soak/1 JSON artifact (validated by
   check_trace --serve-soak) and exits 1 on any contract violation. *)

module Wire = Ba_serve.Wire
module Server = Ba_serve.Server
module Driver = Ba_harness.Serve_driver
module Faults = Ba_harness.Faults
module Synthetic = Ba_harness.Synthetic
module Json = Ba_obs.Json

let die fmt =
  Printf.ksprintf
    (fun m ->
      prerr_endline ("serve_soak: " ^ m);
      exit 1)
    fmt

(* soak-wide limits, mirrored into the fault injector so oversized
   frames stay stream-synchronized and huge CFGs land just over the
   edge *)
let max_frame_bytes = 65536
let max_blocks = 64

let config =
  {
    Server.default with
    Server.cache_capacity = 64;
    max_frame_bytes;
    max_blocks;
    default_deadline_ms = Some 200;
    max_deadline_ms = Some 1000;
  }

let penalties = Ba_machine.Model.alpha21164

(* the valid-request pool: a few synthetic procedures, each with a
   couple of profile variants (variant 0 repeats often = cache hits;
   others exercise drift warm starts) *)
type subject = {
  cfg : Ba_cfg.Cfg.t;
  profiles : Ba_profile.Profile.proc array;
}

let subjects rng =
  Array.init 12 (fun i ->
      let n = 6 + ((i * 5) mod 30) in
      let cfg = Synthetic.cfg rng ~n in
      let profiles =
        Array.init 3 (fun _ ->
            Synthetic.profile rng cfg ~invocations:20 ~max_steps:400)
      in
      { cfg; profiles })

type counts = {
  mutable requests : int;  (** frames (valid or faulty) written *)
  mutable ok : int;
  mutable errors : int;
  mutable faults : int;
  mutable segments : int;
  mutable cache_hits : int;
  mutable warm_starts : int;
  mutable uncertified : int;
  mutable crashes : int;
  mutable repeats_identical : int;
}

let counts =
  {
    requests = 0;
    ok = 0;
    errors = 0;
    faults = 0;
    segments = 0;
    cache_hits = 0;
    warm_starts = 0;
    uncertified = 0;
    crashes = 0;
    repeats_identical = 0;
  }

(** Client-side certification of an ok response. *)
let certified cfg profile order =
  match
    Ba_check.Certify.proc_cert ~hk:Ba_check.Certify.Skip ~sym_check:false
      ~proc:0 penalties cfg ~profile ~order
  with
  | Ok _ -> true
  | Error _ -> false

let expect_ok ~what t (s : subject) profile =
  match Driver.recv_response t with
  | Some (Ok (Wire.C_ok { payload; _ })) ->
      counts.ok <- counts.ok + 1;
      if payload.Wire.cached then counts.cache_hits <- counts.cache_hits + 1;
      if payload.Wire.warm then counts.warm_starts <- counts.warm_starts + 1;
      if not (certified s.cfg profile payload.Wire.layout) then begin
        counts.uncertified <- counts.uncertified + 1;
        Printf.eprintf "serve_soak: UNCERTIFIED layout for %s (%s)\n%!"
          s.cfg.Ba_cfg.Cfg.name what
      end;
      Some payload
  | Some (Ok (Wire.C_error { error; _ })) ->
      die "%s: expected ok, got error %s (%s)" what error.Wire.eclass
        error.Wire.emessage
  | Some (Ok _) -> die "%s: expected ok, got a different status" what
  | Some (Error m) -> die "%s: undecodable response: %s" what m
  | None -> die "%s: stream ended instead of a response" what

let expect_error ~what t =
  match Driver.recv_response t with
  | Some (Ok (Wire.C_error { error; _ })) ->
      counts.errors <- counts.errors + 1;
      if error.Wire.eexit < 2 || error.Wire.eexit > 10 then
        die "%s: undocumented exit code %d" what error.Wire.eexit
  | Some (Ok (Wire.C_ok _)) -> die "%s: expected a typed error, got ok" what
  | Some (Ok _) -> die "%s: expected a typed error, got a different status" what
  | Some (Error m) -> die "%s: undecodable response: %s" what m
  | None -> die "%s: stream ended instead of an error response" what

let align_request ~id (s : subject) variant =
  Wire.Align
    {
      id;
      cfg = s.cfg;
      profile = s.profiles.(variant);
      options = Wire.default_options;
    }

(** End the current segment: the server must stop with a clean reason
    and no escaped exception. *)
let finish_segment t ~expected =
  (match Driver.stop t with
  | Ok reason ->
      let names = function
        | Server.Clean_eof -> "eof"
        | Server.Shutdown_verb -> "shutdown"
        | Server.Drained -> "drained"
        | Server.Stream_corrupt -> "corrupt"
        | Server.Client_gone -> "client-gone"
      in
      if not (List.mem reason expected) then
        die "segment stopped with %s" (names reason)
  | Error e ->
      counts.crashes <- counts.crashes + 1;
      Printf.eprintf "serve_soak: CRASH: %s\n%!" (Printexc.to_string e));
  counts.segments <- counts.segments + 1

let () =
  let n_requests = ref 1000 in
  let out = ref "" in
  let rec parse = function
    | [] -> ()
    | "--requests" :: v :: rest ->
        (match int_of_string_opt v with
        | Some n when n > 0 -> n_requests := n
        | _ -> die "--requests wants a positive integer");
        parse rest
    | "--out" :: v :: rest ->
        out := v;
        parse rest
    | a :: _ -> die "unknown argument %s" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  let rng = Random.State.make [| 0x50a4; 7 |] in
  let subjects = subjects rng in
  (* framing-safe faults cycle through this list; stream-ending faults
     are scheduled separately since each one costs a server restart *)
  let safe_faults =
    List.filter
      (fun k -> Faults.protocol_expectation k <> `Ends_stream)
      Faults.all_protocol
  in
  let ending_faults =
    List.filter
      (fun k -> Faults.protocol_expectation k = `Ends_stream)
      Faults.all_protocol
  in
  let t = ref (Driver.start ~config ()) in
  let sent = ref 0 in
  let fault_i = ref 0 and ending_i = ref 0 in
  while !sent < !n_requests do
    let id = !sent in
    incr sent;
    counts.requests <- counts.requests + 1;
    let roll = Random.State.int rng 100 in
    if roll < 55 then begin
      (* valid align on the repeat-heavy variant: cache traffic *)
      let s = subjects.(Random.State.int rng (Array.length subjects)) in
      let req = align_request ~id s 0 in
      Driver.send !t req;
      let first = expect_ok ~what:"align" !t s s.profiles.(0) in
      (* every 6th: repeat the identical request immediately and demand
         a bit-identical cached layout *)
      if id mod 6 = 0 && !sent < !n_requests then begin
        incr sent;
        counts.requests <- counts.requests + 1;
        Driver.send !t req;
        match (first, expect_ok ~what:"repeat" !t s s.profiles.(0)) with
        | Some a, Some b ->
            if not b.Wire.cached then die "repeat of request %d not cached" id;
            if a.Wire.layout <> b.Wire.layout then
              die "repeat of request %d not bit-identical" id
            else counts.repeats_identical <- counts.repeats_identical + 1
        | _ -> ()
      end
    end
    else if roll < 70 then begin
      (* drifted profile on a known CFG: misses that warm-start *)
      let s = subjects.(Random.State.int rng (Array.length subjects)) in
      let v = 1 + Random.State.int rng 2 in
      Driver.send !t (align_request ~id s v);
      ignore (expect_ok ~what:"drift" !t s s.profiles.(v))
    end
    else if roll < 74 then begin
      Driver.send !t (Wire.Stats { id });
      match Driver.recv_response !t with
      | Some (Ok (Wire.C_stats _)) -> ()
      | _ -> die "stats: bad response"
    end
    else if roll < 95 then begin
      (* framing-safe protocol fault *)
      let k = List.nth safe_faults (!fault_i mod List.length safe_faults) in
      incr fault_i;
      counts.faults <- counts.faults + 1;
      let s = subjects.(Random.State.int rng (Array.length subjects)) in
      let payload = Wire.request_to_string (align_request ~id s 0) in
      Driver.send_raw !t
        (Faults.inject_protocol ~max_frame_bytes ~max_blocks ~seed:id k payload);
      match Faults.protocol_expectation k with
      | `Error_response -> expect_error ~what:(Faults.protocol_name k) !t
      | `Ok_response -> ignore (expect_ok ~what:(Faults.protocol_name k) !t s s.profiles.(0))
      | `Ends_stream -> assert false
    end
    else begin
      (* stream-ending fault: final error response, clean stop, fresh
         server for the next segment *)
      let k = List.nth ending_faults (!ending_i mod List.length ending_faults) in
      incr ending_i;
      counts.faults <- counts.faults + 1;
      let s = subjects.(Random.State.int rng (Array.length subjects)) in
      let payload = Wire.request_to_string (align_request ~id s 0) in
      Driver.send_raw !t
        (Faults.inject_protocol ~max_frame_bytes ~max_blocks ~seed:id k payload);
      Driver.close_input !t;
      expect_error ~what:(Faults.protocol_name k) !t;
      (match Driver.recv_response !t with
      | None -> ()
      | Some _ -> die "%s: stream did not end" (Faults.protocol_name k));
      finish_segment !t ~expected:[ Server.Stream_corrupt ];
      if !sent < !n_requests then t := Driver.start ~config ()
    end
  done;
  (* last segment leaves through the shutdown verb *)
  Driver.send !t (Wire.Shutdown { id = !sent });
  (match Driver.recv_response !t with
  | Some (Ok (Wire.C_shutdown _)) -> ()
  | _ -> die "shutdown: bad response");
  finish_segment !t ~expected:[ Server.Shutdown_verb ];
  if counts.cache_hits = 0 then die "soak produced no cache hits";
  if counts.warm_starts = 0 then die "soak produced no warm starts";
  let doc =
    Json.Obj
      [
        ("schema", Json.String "serve-soak/1");
        ("requests", Json.Int counts.requests);
        ("ok", Json.Int counts.ok);
        ("errors", Json.Int counts.errors);
        ("faults_injected", Json.Int counts.faults);
        ("segments", Json.Int counts.segments);
        ("cache_hits", Json.Int counts.cache_hits);
        ("warm_starts", Json.Int counts.warm_starts);
        ("repeats_identical", Json.Int counts.repeats_identical);
        ("uncertified", Json.Int counts.uncertified);
        ("crashes", Json.Int counts.crashes);
      ]
  in
  if !out <> "" then Json.write_file !out doc;
  Printf.printf
    "serve-soak: %d requests, %d ok, %d errors, %d faults, %d segments, %d \
     cache hits, %d warm starts, %d uncertified, %d crashes\n"
    counts.requests counts.ok counts.errors counts.faults counts.segments
    counts.cache_hits counts.warm_starts counts.uncertified counts.crashes;
  if counts.uncertified > 0 || counts.crashes > 0 then exit 1
