(* check_trace — structural validator for balign's observability
   artifacts, used by the CLI cram tests.

     check_trace TRACE.json                validate a Chrome trace_event file
     check_trace --metrics M.json          validate a metrics snapshot
     check_trace --bench B.json            validate a bench trajectory
     check_trace --solver-bench S.json     validate a solver microbenchmark
     check_trace --analyze A.json          validate a balign-analyze-1 report

   Exit 0 with a one-line deterministic summary on stdout, exit 1 with
   the reason on stderr otherwise.  Everything run-dependent (times,
   commit ids) is checked for type/shape only, never echoed. *)

module Json = Ba_obs.Json

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("check_trace: " ^ m); exit 1) fmt

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error m -> die "cannot read %s: %s" path m

let parse path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error m -> die "%s: invalid JSON: %s" path m

let member k v = match Json.member k v with
  | Some x -> x
  | None -> die "missing field %S" k

let str v = match Json.to_str v with Some s -> s | None -> die "expected string"
let num v = match Json.to_number v with Some f -> f | None -> die "expected number"
let list v = match Json.to_list v with Some l -> l | None -> die "expected list"

(* ---------------- chrome trace ---------------- *)

let check_chrome path =
  let doc = parse path in
  if str (member "displayTimeUnit" doc) <> "ms" then die "bad displayTimeUnit";
  let events = list (member "traceEvents" doc) in
  if events = [] then die "empty traceEvents";
  (* bucket X events by tid; remember which tids carry a thread name *)
  let tbl = Hashtbl.create 16 in
  let named = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let tid = int_of_float (num (member "tid" e)) in
      match str (member "ph" e) with
      | "M" ->
          if str (member "name" e) <> "thread_name" then die "unknown metadata";
          ignore (str (member "name" (member "args" e)));
          Hashtbl.replace named tid ()
      | "X" ->
          let ts = num (member "ts" e) and dur = num (member "dur" e) in
          if ts < 0. || dur < 0. then die "negative ts/dur";
          let args = member "args" e in
          let parent = int_of_float (num (member "parent" args)) in
          let span = int_of_float (num (member "span" args)) in
          let name = str (member "name" e) in
          Hashtbl.replace tbl tid
            ((span, parent, name, ts, dur)
            :: (try Hashtbl.find tbl tid with Not_found -> []))
      | ph -> die "unexpected phase %S" ph)
    events;
  let n_groups = Hashtbl.length tbl in
  if n_groups = 0 then die "no span groups";
  Hashtbl.iter
    (fun tid spans ->
      if not (Hashtbl.mem named tid) then die "tid %d has no thread_name" tid;
      let roots =
        List.filter (fun (_, parent, _, _, _) -> parent = -1) spans
      in
      (match roots with
      | [ (_, _, name, _, _) ] ->
          if name <> "task" then die "tid %d root span is %S" tid name
      | l -> die "tid %d has %d root spans" tid (List.length l));
      let (root_id, _, _, rts, rdur) = List.hd roots in
      List.iter
        (fun (span, parent, name, ts, dur) ->
          if span <> root_id then begin
            (* every stage span nests inside the root's interval and
               points at a span that exists in the same group *)
            if not (List.exists (fun (s, _, _, _, _) -> s = parent) spans)
            then die "tid %d span %S has dangling parent" tid name;
            if ts +. 1e-9 < rts || ts +. dur > rts +. rdur +. 1e-6 then
              die "tid %d span %S escapes its task interval" tid name
          end)
        spans)
    tbl;
  Printf.printf "trace ok: %d task groups\n" n_groups

(* ---------------- metrics snapshot ---------------- *)

let check_metrics path =
  let doc = parse path in
  let counters = member "counters" doc in
  List.iter
    (fun (_, name) ->
      match Json.member name counters with
      | Some v -> ignore (num v)
      | None -> die "missing counter %S" name)
    Ba_obs.Metrics.all_counters;
  let gauges = member "gauges" doc in
  List.iter
    (fun (_, name) ->
      if Json.member name gauges = None then die "missing gauge %S" name)
    Ba_obs.Metrics.all_gauges;
  let gap = member "hk_gap" doc in
  List.iter (fun k -> ignore (num (member k gap))) [ "count"; "mean"; "max" ];
  let lat = member "latency_ms" doc in
  List.iter
    (fun k ->
      let v = num (member k lat) in
      if v < 0. then die "negative latency %S" k)
    [ "count"; "mean"; "p50"; "p95"; "max" ];
  Printf.printf "metrics ok: %d counters, %d gauges\n"
    (List.length Ba_obs.Metrics.all_counters)
    (List.length Ba_obs.Metrics.all_gauges)

(* ---------------- bench trajectory ---------------- *)

let check_bench path =
  let doc = parse path in
  if str (member "commit" doc) = "" then die "empty commit";
  let date = str (member "date" doc) in
  if String.length date <> 20 || date.[4] <> '-' || date.[10] <> 'T'
     || date.[19] <> 'Z'
  then die "date %S is not ISO-8601 UTC" date;
  if str (member "model" doc) = "" then die "empty model";
  (* the per-representation solver split, when the document carries one *)
  (match Json.member "solver" doc with
  | None -> ()
  | Some s ->
      List.iter
        (fun repr ->
          let o = member repr s in
          List.iter
            (fun k ->
              if num (member k o) < 0. then
                die "negative solver %s.%s" repr k)
            [ "moves"; "run_s"; "moves_per_s" ])
        [ "array"; "two_level" ];
      List.iter
        (fun k -> if num (member k s) < 0. then die "negative solver %s" k)
        [ "segment_splits"; "segment_rebalances" ]);
  let rows = list (member "rows" doc) in
  if rows = [] then die "no rows";
  List.iter
    (fun r ->
      ignore (str (member "bench" r));
      ignore (str (member "dataset" r));
      List.iter
        (fun k ->
          let v = num (member k r) in
          if v < 0. then die "negative %S" k)
        [ "penalty_cycles"; "hk_gap"; "wall_ms"; "p50_ms"; "p95_ms"; "jobs";
          "certs"; "cert_failures" ];
      (* both objectives, for every aligner of the row *)
      let objectives = member "objectives" r in
      List.iter
        (fun aligner ->
          let o =
            match Json.member aligner objectives with
            | Some o -> o
            | None -> die "missing aligner %S in objectives" aligner
          in
          List.iter
            (fun k ->
              let v = num (member k o) in
              if v < 0. then die "negative %S for aligner %S" k aligner)
            [ "penalty"; "ext_tsp" ])
        [ "tsp"; "calder"; "greedy"; "btfnt"; "tsp_static"; "greedy_static" ];
      (* the TSP penalty is reported twice; the copies must agree *)
      if num (member "penalty" (member "tsp" objectives))
         <> num (member "penalty_cycles" r)
      then die "objectives.tsp.penalty disagrees with penalty_cycles";
      if num (member "certs" r) <= 0. then die "no certificates in row";
      if num (member "cert_failures" r) <> 0. then
        die "row has %g failed certificate(s)" (num (member "cert_failures" r)))
    rows;
  Printf.printf "bench ok: %d rows\n" (List.length rows)

(* ---------------- solver microbenchmark ---------------- *)

let check_solver_bench path =
  let doc = parse path in
  let version =
    match str (member "schema" doc) with
    | "solver-bench/1" -> 1
    | "solver-bench/2" -> 2
    | "solver-bench/3" -> 3
    | _ -> die "bad schema"
  in
  if str (member "commit" doc) = "" then die "empty commit";
  let date = str (member "date" doc) in
  if String.length date <> 20 || date.[4] <> '-' || date.[10] <> 'T'
     || date.[19] <> 'Z'
  then die "date %S is not ISO-8601 UTC" date;
  let variant = str (member "variant" doc) in
  if variant = "" then die "empty variant";
  List.iter (fun k -> ignore (num (member k doc))) [ "seed"; "kicks"; "neighbors" ];
  if version >= 2 then begin
    (* the v2 header records the instance family and construction knobs *)
    if str (member "family" doc) = "" then die "empty family";
    if str (member "mode" doc) = "" then die "empty mode";
    if num (member "jobs" doc) < 1. then die "jobs < 1"
  end;
  (* the v3 header records the requested tour representation *)
  if version >= 3 && str (member "repr" doc) = "" then die "empty repr";
  let entries = list (member "entries" doc) in
  if entries = [] then die "no entries";
  let last_n = ref 0 in
  List.iter
    (fun e ->
      let n = int_of_float (num (member "n_blocks" e)) in
      if n <= !last_n then die "entries not in increasing n_blocks order";
      last_n := n;
      if int_of_float (num (member "n_cities" e)) <> n + 1 then
        die "n_cities is not n_blocks + 1 at n=%d" n;
      List.iter
        (fun k ->
          let v = num (member k e) in
          if v < 0. then die "negative %S at n=%d" k n)
        ([ "build_s"; "build_words"; "sym_s"; "nbr_s"; "instance_words";
           "opt_s"; "moves"; "moves_per_s" ]
        @ (if version >= 2 then [ "scans_skipped" ] else [])
        @
        if version >= 3 then
          [ "move_cost_p50"; "move_cost_p95"; "seg_splits"; "rebalances" ]
        else []);
      if version >= 3 then begin
        (* the representation each entry actually ran on (Auto resolved) *)
        (match str (member "repr" e) with
        | "array" | "two-level" -> ()
        | r -> die "unknown entry repr %S at n=%d" r n);
        if num (member "move_cost_p50" e) > num (member "move_cost_p95" e)
        then die "move-cost p50 above p95 at n=%d" n
      end;
      (* best_cost/tour_hash are deterministic identity anchors; any
         shape will do but they must be present *)
      ignore (num (member "best_cost" e));
      ignore (num (member "tour_hash" e));
      (* a row that carried certification must have passed it *)
      match Json.member "certified" e with
      | None -> ()
      | Some c ->
          if c <> Json.Bool true then die "uncertified layout at n=%d" n;
          if num (member "cert_s" e) < 0. then die "negative cert_s at n=%d" n)
    entries;
  Printf.printf "solver-bench ok: variant %s, %d entries\n" variant
    (List.length entries)

(* ---------------- analyze report ---------------- *)

let check_analyze path =
  let doc = parse path in
  if str (member "schema" doc) <> "balign-analyze-1" then die "bad schema";
  let procs = list (member "procs" doc) in
  if procs = [] then die "no procs";
  List.iter
    (fun p ->
      ignore (str (member "name" p));
      let get k =
        let v = num (member k p) in
        if v < 0. || not (Float.is_integer v) then die "%S is not a count" k;
        int_of_float v
      in
      let n_blocks = get "n_blocks" and n_reachable = get "n_reachable" in
      let n_loops = get "n_loops" and max_depth = get "max_loop_depth" in
      let n_back = get "n_back_edges" in
      ignore (get "proc");
      ignore (get "n_edges");
      ignore (get "dom_height");
      ignore (get "est_scale");
      if n_reachable > n_blocks then die "more reachable blocks than blocks";
      if n_reachable = 0 then die "entry not reachable";
      let loops = list (member "loops" p) in
      if List.length loops <> n_loops then die "loops list disagrees with n_loops";
      let seen_depth = ref 0 in
      List.iter
        (fun l ->
          let d = int_of_float (num (member "depth" l)) in
          if d < 1 || d > max_depth then die "loop depth %d out of range" d;
          if d > !seen_depth then seen_depth := d;
          if num (member "n_blocks" l) < 1. then die "empty loop";
          ignore (num (member "header" l)))
        loops;
      if n_loops > 0 && !seen_depth <> max_depth then
        die "max_loop_depth %d never reached (deepest loop is %d)" max_depth
          !seen_depth;
      if n_loops = 0 && max_depth <> 0 then die "loop-free proc with depth > 0";
      if n_back < n_loops then die "fewer back edges than loops";
      List.iter
        (fun e ->
          ignore (num (member "src" e));
          ignore (num (member "dst" e)))
        (list (member "irreducible" p));
      (* estimated hotness: counts positive, sorted hottest-first *)
      let last = ref max_int in
      List.iter
        (fun h ->
          ignore (num (member "block" h));
          let c = int_of_float (num (member "count" h)) in
          if c <= 0 then die "non-positive hotness count";
          if c > !last then die "hottest list not sorted";
          last := c)
        (list (member "hottest" p));
      let est = get "est_transfers" in
      if n_blocks > 1 && n_reachable > 1 && est = 0 then
        die "no estimated transfers in a multi-block proc")
    procs;
  Printf.printf "analyze ok: %d procs\n" (List.length procs)

(* ---------------- serve soak ---------------- *)

let check_serve_soak path =
  let doc = parse path in
  if str (member "schema" doc) <> "serve-soak/1" then die "bad schema";
  let get k =
    let v = num (member k doc) in
    if v < 0. || not (Float.is_integer v) then die "%S is not a count" k;
    int_of_float v
  in
  let requests = get "requests" in
  let ok = get "ok" and errors = get "errors" in
  let faults = get "faults_injected" and segments = get "segments" in
  let hits = get "cache_hits" and warm = get "warm_starts" in
  let repeats = get "repeats_identical" in
  let uncertified = get "uncertified" and crashes = get "crashes" in
  if requests = 0 then die "empty soak";
  (* the hard acceptance gates: only typed errors or certified
     layouts, and the daemon outlived every segment *)
  if uncertified <> 0 then die "%d uncertified response(s)" uncertified;
  if crashes <> 0 then die "%d crash(es)" crashes;
  if ok + errors > requests then die "more responses than requests";
  if ok = 0 then die "no successful responses";
  if errors = 0 || faults = 0 then die "the fault mix did not run";
  if hits = 0 then die "no cache hits";
  if warm = 0 then die "no warm starts";
  if repeats = 0 then die "no bit-identical repeat was verified";
  if segments = 0 then die "no completed segments";
  Printf.printf
    "serve-soak ok: %d requests over %d segments, 0 uncertified, 0 crashes\n"
    requests segments

let () =
  match Sys.argv with
  | [| _; "--metrics"; path |] -> check_metrics path
  | [| _; "--bench"; path |] -> check_bench path
  | [| _; "--solver-bench"; path |] -> check_solver_bench path
  | [| _; "--serve-soak"; path |] -> check_serve_soak path
  | [| _; "--analyze"; path |] -> check_analyze path
  | [| _; path |] -> check_chrome path
  | _ ->
      die "usage: check_trace \
           [--metrics|--bench|--solver-bench|--serve-soak|--analyze] FILE"
