(* check_lint — structural validator for the ba_check artifacts, used
   by the lint cram tests.

     check_lint LINT.json          validate a `balign lint --format json` report
     check_lint --cert CERT.json   validate a `balign align --certify` certificate

   Exit 0 with a one-line deterministic summary on stdout, exit 1 with
   the reason on stderr otherwise.  Beyond shape, the report's tallies
   must equal a recount of its findings, every rule id must exist in
   the live catalogue with the finding's code and severity, and a
   certificate's total must equal the sum of its per-procedure costs. *)

module Json = Ba_obs.Json
module Rules = Ba_check.Rules
module D = Ba_check.Diagnostic

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("check_lint: " ^ m); exit 1) fmt

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> s
  | exception Sys_error m -> die "cannot read %s: %s" path m

let parse path =
  match Json.parse (read_file path) with
  | Ok v -> v
  | Error m -> die "%s: invalid JSON: %s" path m

let member k v =
  match Json.member k v with Some x -> x | None -> die "missing field %S" k

let str v = match Json.to_str v with Some s -> s | None -> die "expected string"
let int v =
  match Json.to_number v with
  | Some f when Float.is_integer f -> int_of_float f
  | _ -> die "expected integer"
let list v = match Json.to_list v with Some l -> l | None -> die "expected list"

(* ---------------- lint report ---------------- *)

let check_lint path =
  let doc = parse path in
  (match str (member "schema" doc) with
  | "balign-lint-1" -> ()
  | s -> die "unknown schema %S" s);
  let findings = list (member "findings" doc) in
  let tally = Hashtbl.create 4 in
  List.iter
    (fun f ->
      let rule_id = str (member "rule" f) in
      let rule =
        match Rules.by_id rule_id with
        | Some r -> r
        | None -> die "finding names unknown rule %S" rule_id
      in
      if str (member "code" f) <> rule.Rules.code then
        die "rule %S reported with code %S (catalogue says %S)" rule_id
          (str (member "code" f))
          rule.Rules.code;
      let sev = str (member "severity" f) in
      if sev <> D.severity_name rule.Rules.severity then
        die "rule %S reported as %S (catalogue says %S)" rule_id sev
          (D.severity_name rule.Rules.severity);
      Hashtbl.replace tally sev
        (1 + try Hashtbl.find tally sev with Not_found -> 0);
      if str (member "message" f) = "" then die "empty message on %S" rule_id;
      (match Json.member "proc" f with Some p -> ignore (int p) | None -> ());
      match Json.member "edge" f with
      | Some e -> (
          match list e with
          | [ s; d ] -> ignore (int s); ignore (int d)
          | _ -> die "edge of %S is not a pair" rule_id)
      | None -> ())
    findings;
  let count sev = try Hashtbl.find tally sev with Not_found -> 0 in
  List.iter
    (fun sev ->
      let claimed = int (member (sev ^ "s") doc) in
      if claimed <> count sev then
        die "report claims %d %s(s), findings contain %d" claimed sev
          (count sev))
    [ "error"; "warning"; "info" ];
  Printf.printf "lint ok: %d finding(s), %d error(s)\n" (List.length findings)
    (count "error")

(* ---------------- alignment certificate ---------------- *)

let check_cert path =
  let doc = parse path in
  (match str (member "schema" doc) with
  | "balign-cert-1" -> ()
  | s -> die "unknown schema %S" s);
  let procs = list (member "procs" doc) in
  if procs = [] then die "certificate with no procedures";
  let total = ref 0 in
  List.iteri
    (fun i p ->
      if int (member "proc" p) <> i then die "procs out of order at %d" i;
      ignore (str (member "name" p));
      if int (member "n_blocks" p) <= 0 then die "proc %d: no blocks" i;
      let cost = int (member "cost" p) in
      if cost < 0 then die "proc %d: negative cost" i;
      total := !total + cost;
      (match Json.member "claimed" p with
      | Some c ->
          if int c <> cost then
            die "proc %d: claimed %d but recomputed %d" i (int c) cost
      | None -> ());
      (match Json.member "hk_bound" p with
      | Some b ->
          if int b > cost then
            die "proc %d: bound %d exceeds cost %d" i (int b) cost
      | None -> ());
      match Json.member "sym_checked" p with
      | Some (Json.Bool _) | None -> ()
      | Some _ -> die "proc %d: sym_checked is not a bool" i)
    procs;
  let claimed_total = int (member "total_cost" doc) in
  if claimed_total <> !total then
    die "total_cost %d but procedures sum to %d" claimed_total !total;
  Printf.printf "cert ok: %d procedure(s), total cost %d cycles\n"
    (List.length procs) !total

let () =
  match Sys.argv with
  | [| _; "--cert"; path |] -> check_cert path
  | [| _; path |] -> check_lint path
  | _ -> die "usage: check_lint [--cert] FILE"
