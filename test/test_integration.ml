(* End-to-end integration tests over the real workloads: the analytic
   penalty model, the trace-driven simulator and the DTSP reduction must
   all agree on real programs, and every aligner must preserve program
   semantics. *)

module W = Ba_workloads.Workload
open Ba_align

let p = Ba_machine.Model.alpha21164

(* keep the suite fast: the two cheapest benchmarks plus the interpreter *)
let subjects () = [ (W.su2, "sh"); (W.eqn, "ip"); (W.xli, "ne") ]

let ds_of w name = List.find (fun d -> d.W.ds_name = name) (W.dataset_list w)

let methods =
  [
    Driver.Original;
    Driver.Greedy;
    Driver.Calder;
    Driver.Tsp Tsp_align.default;
  ]

let test_analytic_equals_simulated_on_real_programs () =
  List.iter
    (fun (w, ds_name) ->
      let ds = ds_of w ds_name in
      let c = W.compile w in
      let run sink = ignore (Ba_minic.Compile.run c ~input:ds.W.input ~sink) in
      let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
      List.iter
        (fun m ->
          let a = Driver.align m p c.Ba_minic.Compile.cfgs ~train:prof in
          let analytic = Driver.analytic_penalty p a ~test:prof in
          let sim = Driver.simulate p a ~run in
          Alcotest.(check int)
            (Printf.sprintf "%s.%s %s: analytic = simulated" w.W.name ds_name
               (Driver.method_name m))
            analytic sim.Ba_machine.Cycles.penalty_cycles)
        methods)
    (subjects ())

let test_semantics_preserved_by_all_aligners () =
  List.iter
    (fun (w, ds_name) ->
      let ds = ds_of w ds_name in
      let c = W.compile w in
      let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
      List.iter
        (fun m ->
          let a = Driver.align m p c.Ba_minic.Compile.cfgs ~train:prof in
          match Driver.check a with
          | Ok () -> ()
          | Error e ->
              Alcotest.failf "%s %s: %s" w.W.name (Driver.method_name m) e)
        methods)
    (subjects ())

let test_reduction_identity_on_real_procedures () =
  (* DTSP walk cost = analytic penalty, on every real procedure *)
  List.iter
    (fun (w, ds_name) ->
      let ds = ds_of w ds_name in
      let c = W.compile w in
      let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
      Array.iteri
        (fun fid g ->
          let pr = Ba_profile.Profile.proc prof fid in
          let inst = Reduction.build p g ~profile:pr in
          List.iter
            (fun order ->
              Alcotest.(check int)
                (Printf.sprintf "%s/%s identity" w.W.name
                   c.Ba_minic.Compile.names.(fid))
                (Evaluate.proc_penalty p g ~order ~train:pr ~test:pr)
                (Reduction.layout_cost inst order))
            [
              Ba_cfg.Layout.identity g;
              Greedy.align g ~profile:pr;
              (Tsp_align.align p g ~profile:pr).Tsp_align.order;
            ])
        c.Ba_minic.Compile.cfgs)
    (subjects ())

let test_program_output_layout_independent () =
  (* the interpreter's observable behaviour must not depend on the trace
     sink or any alignment decision (alignment only affects the machine
     model) *)
  let w = W.eqn in
  let ds = ds_of w "fx" in
  let c = W.compile w in
  let out_null =
    (Ba_minic.Compile.run c ~input:ds.W.input ~sink:Ba_cfg.Trace.null)
      .Ba_minic.Interp.output
  in
  let count, get = Ba_cfg.Trace.count_blocks () in
  let out_counted =
    (Ba_minic.Compile.run c ~input:ds.W.input ~sink:count).Ba_minic.Interp.output
  in
  Alcotest.(check (list int)) "same output under any sink" out_null out_counted;
  Alcotest.(check bool) "trace observed" true (get () > 0)

let test_tsp_never_worse_than_greedy_on_workloads () =
  List.iter
    (fun (w, ds_name) ->
      let ds = ds_of w ds_name in
      let c = W.compile w in
      let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
      Array.iteri
        (fun fid g ->
          let pr = Ba_profile.Profile.proc prof fid in
          let tsp = (Tsp_align.align p g ~profile:pr).Tsp_align.cost in
          let greedy =
            Evaluate.proc_penalty p g ~order:(Greedy.align g ~profile:pr)
              ~train:pr ~test:pr
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s tsp %d <= greedy %d" w.W.name
               c.Ba_minic.Compile.names.(fid) tsp greedy)
            true (tsp <= greedy))
        c.Ba_minic.Compile.cfgs)
    (subjects ())

let test_fixups_simulated_consistently () =
  (* force layouts with fixup jumps (reverse layout) and check the
     simulator agrees with the analytic model even then *)
  let w = W.dod in
  let ds = ds_of w "sm" in
  let c = W.compile w in
  let run sink = ignore (Ba_minic.Compile.run c ~input:ds.W.input ~sink) in
  let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
  let cfgs = c.Ba_minic.Compile.cfgs in
  (* entry first, everything else reversed: maximally misaligned *)
  let orders =
    Array.map
      (fun g ->
        let n = Ba_cfg.Cfg.n_blocks g in
        Array.init n (fun i -> if i = 0 then 0 else n - i))
      cfgs
  in
  let realized = Array.make (Array.length cfgs) None in
  let predicted =
    Array.mapi
      (fun fid g ->
        let r, pred =
          Evaluate.realize p g ~order:orders.(fid)
            ~train:(Ba_profile.Profile.proc prof fid)
        in
        realized.(fid) <- Some r;
        pred)
      cfgs
  in
  let realized = Array.map Option.get realized in
  let has_fixup =
    Array.exists
      (fun (r : Ba_cfg.Layout.realized) ->
        Array.exists
          (function Ba_cfg.Layout.I_fixup _ -> true | _ -> false)
          r.Ba_cfg.Layout.items)
      realized
  in
  Alcotest.(check bool) "reversed layout creates fixups" true has_fixup;
  let addr = Ba_machine.Addr.build (Array.map2 (fun g r -> (g, r)) cfgs realized) in
  let aligned =
    {
      Driver.cfgs;
      orders;
      realized;
      predicted;
      addr;
      method_ = Driver.Original;
    }
  in
  let analytic = Driver.analytic_penalty p aligned ~test:prof in
  let sim = Driver.simulate p aligned ~run in
  Alcotest.(check int) "fixup-heavy layout: analytic = simulated" analytic
    sim.Ba_machine.Cycles.penalty_cycles

(* ---------------- code replication (tail duplication) ---------------- *)

let test_tail_duplication_preserves_behaviour () =
  (* the transformed program must print exactly the same values on every
     workload data set *)
  List.iter
    (fun (w, ds_name) ->
      let ds = ds_of w ds_name in
      let c = W.compile w in
      let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
      let prog', st =
        Ba_minic.Transform.program c.Ba_minic.Compile.prog ~profile:prof
      in
      let c' = Ba_minic.Compile.of_ir prog' in
      let run cc =
        (Ba_minic.Compile.run cc ~input:ds.W.input ~sink:Ba_cfg.Trace.null)
          .Ba_minic.Interp.output
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s.%s behaviour preserved" w.W.name ds_name)
        (run c) (run c');
      Alcotest.(check bool)
        (Printf.sprintf "%s.%s some clones made" w.W.name ds_name)
        true
        (st.Ba_minic.Transform.clones > 0);
      (* the transformed shapes are still valid CFGs *)
      Array.iter
        (fun g ->
          match Ba_cfg.Cfg.validate g with
          | Ok () -> ()
          | Error m -> Alcotest.fail m)
        c'.Ba_minic.Compile.cfgs)
    (subjects ())

let test_tail_duplication_reduces_join_pressure () =
  (* on a hand-made diamond join, duplication plus alignment removes the
     unavoidable taken branch of one arm *)
  let src =
    "fn main() { var i = 0; var acc = 0; while (i < 1000) { if (i % 4 == 0) \
     { acc = acc + 3; } else { acc = acc - 1; } acc = acc & 65535; i = i + 1; \
     } print(acc); }"
  in
  let c = Ba_minic.Compile.compile_exn src in
  let prof = Ba_minic.Compile.profile c ~input:[||] in
  let prog', st =
    Ba_minic.Transform.program c.Ba_minic.Compile.prog ~profile:prof
  in
  Alcotest.(check bool) "join duplicated" true (st.Ba_minic.Transform.clones > 0);
  let c' = Ba_minic.Compile.of_ir prog' in
  let prof' = Ba_minic.Compile.profile c' ~input:[||] in
  let tsp cc pr =
    Array.to_list
      (Array.mapi
         (fun fid g ->
           (Tsp_align.align p g ~profile:(Ba_profile.Profile.proc pr fid))
             .Tsp_align.cost)
         cc.Ba_minic.Compile.cfgs)
    |> List.fold_left ( + ) 0
  in
  let before = tsp c prof and after = tsp c' prof' in
  Alcotest.(check bool)
    (Printf.sprintf "aligned penalty drops: %d -> %d" before after)
    true (after < before)

let test_tail_duplication_respects_config () =
  let c = W.compile W.eqn in
  let ds = ds_of W.eqn "ip" in
  let prof = Ba_minic.Compile.profile c ~input:ds.W.input in
  (* max_size 0 forbids all cloning *)
  let _, st0 =
    Ba_minic.Transform.program
      ~config:{ Ba_minic.Transform.max_size = -1; min_count = 1 }
      c.Ba_minic.Compile.prog ~profile:prof
  in
  Alcotest.(check int) "no clones at negative size cap" 0 st0.Ba_minic.Transform.clones;
  (* an absurd min_count likewise *)
  let _, st1 =
    Ba_minic.Transform.program
      ~config:{ Ba_minic.Transform.max_size = 100; min_count = max_int }
      c.Ba_minic.Compile.prog ~profile:prof
  in
  Alcotest.(check int) "no clones when nothing is hot" 0
    st1.Ba_minic.Transform.clones

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "analytic = simulated" `Slow
            test_analytic_equals_simulated_on_real_programs;
          Alcotest.test_case "semantics preserved" `Slow
            test_semantics_preserved_by_all_aligners;
          Alcotest.test_case "reduction identity" `Slow
            test_reduction_identity_on_real_procedures;
          Alcotest.test_case "output layout-independent" `Quick
            test_program_output_layout_independent;
          Alcotest.test_case "tsp <= greedy" `Slow
            test_tsp_never_worse_than_greedy_on_workloads;
          Alcotest.test_case "fixup-heavy layouts" `Quick
            test_fixups_simulated_consistently;
        ] );
      ( "replication",
        [
          Alcotest.test_case "behaviour preserved" `Slow
            test_tail_duplication_preserves_behaviour;
          Alcotest.test_case "join pressure reduced" `Quick
            test_tail_duplication_reduces_join_pressure;
          Alcotest.test_case "config respected" `Quick
            test_tail_duplication_respects_config;
        ] );
    ]
