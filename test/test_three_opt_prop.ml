(** Property suite for the 3-Opt search state ({!Ba_tsp.Three_opt}):
    after an arbitrary interleaving of [activate]/[try_city]/[run] the
    state's internal invariants must hold — [pos] and [tour] stay
    inverse permutations, locked in/out pair edges are never cut, and
    the work queue holds no duplicates and agrees with [in_queue]. *)

open Ba_tsp
module Budget = Ba_robust.Budget

let gen_seed = QCheck2.Gen.int_bound 1_000_000

(** Random directed instance: n ∈ [min_n, max_n], costs in [0, 100). *)
let dtsp_of_seed ?(min_n = 4) ?(max_n = 12) seed =
  let rng = Random.State.make [| seed |] in
  let n = min_n + Random.State.int rng (max_n - min_n + 1) in
  Dtsp.make
    (Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 100)))

let random_directed_tour rng n =
  let t = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = t.(i) in
    t.(i) <- t.(j);
    t.(j) <- tmp
  done;
  t

(** Fresh search state over a random tour of a random instance. *)
let state_of_seed seed =
  let d = dtsp_of_seed seed in
  let s = Sym.of_dtsp d in
  let rng = Random.State.make [| seed + 1 |] in
  let nbr = Neighbors.of_sym s ~k:8 in
  let tour = Sym.expand s (random_directed_tour rng d.Dtsp.n) in
  (d, s, Three_opt.init s ~nbr ~tour)

(** Drive the state through a random operation sequence. *)
let churn seed (st : Three_opt.state) =
  let rng = Random.State.make [| seed + 2 |] in
  let nn = st.Three_opt.s.Sym.nn in
  for _ = 1 to 30 do
    match Random.State.int rng 4 with
    | 0 -> Three_opt.activate st (Random.State.int rng nn)
    | 1 -> ignore (Three_opt.try_city st (Random.State.int rng nn))
    | 2 ->
        (* budgeted partial run: may stop mid-optimization *)
        Three_opt.run ~budget:(Budget.create ~max_moves:3 ()) st
    | _ -> Three_opt.activate_all st
  done

(* ---------------- invariants ---------------- *)

let inverse_permutations (st : Three_opt.state) =
  let nn = st.Three_opt.s.Sym.nn in
  let t = Three_opt.tour st in
  Array.length t = nn
  && Array.for_all (fun c -> 0 <= c && c < nn) t
  && Array.for_all
       (fun i ->
         let c = Three_opt.city_at st i in
         t.(i) = c
         && Three_opt.position st c = i
         && Three_opt.succ st c = t.((i + 1) mod nn)
         && Three_opt.pred st c = t.((i + nn - 1) mod nn))
       (Array.init nn Fun.id)

let locked_pairs_intact (st : Three_opt.state) =
  Sym.check_alternating st.Three_opt.s (Three_opt.tour st)

let queue_consistent (st : Three_opt.state) =
  let nn = st.Three_opt.s.Sym.nn in
  let seen = Array.make nn 0 in
  Queue.iter
    (fun c -> if c >= 0 && c < nn then seen.(c) <- seen.(c) + 1)
    st.Three_opt.queue;
  let no_dups = Array.for_all (fun k -> k <= 1) seen in
  let agrees =
    Array.for_all
      (fun c -> st.Three_opt.in_queue.(c) = (seen.(c) = 1))
      (Array.init nn Fun.id)
  in
  no_dups && agrees

let prop name check =
  QCheck2.Test.make ~count:200 ~name gen_seed (fun seed ->
      let _, _, st = state_of_seed seed in
      churn seed st;
      check st)

let prop_inverse = prop "pos and tour stay inverse permutations"
    inverse_permutations

let prop_locked = prop "locked pair edges never cut" locked_pairs_intact
let prop_queue = prop "queue has no duplicates and matches in_queue"
    queue_consistent

(** After a full (unbudgeted) run the tour must still extract to a
    valid directed tour whose directed cost matches the symmetric cost
    plus the transformation offset. *)
let prop_full_run_extracts =
  QCheck2.Test.make ~count:100 ~name:"full run leaves an extractable tour"
    gen_seed (fun seed ->
      let d, s, st = state_of_seed seed in
      Three_opt.activate_all st;
      Three_opt.run st;
      let sym_tour = Three_opt.tour st in
      let directed = Sym.extract s sym_tour in
      Dtsp.is_tour d directed
      && Dtsp.tour_cost d directed
         = Sym.tour_cost s sym_tour + s.Sym.offset)

(** The cached incremental cost never drifts from a from-scratch
    recomputation, whatever the operation interleaving. *)
let prop_cost_consistent =
  QCheck2.Test.make ~count:200 ~name:"incremental cost matches recomputation"
    gen_seed (fun seed ->
      let _, s, st = state_of_seed seed in
      churn seed st;
      Three_opt.cost st = Sym.tour_cost s (Three_opt.tour st))

(* ---------------- don't-look version stamps ---------------- *)

(** A failed-scan stamp may never run ahead of the tour version —
    otherwise a stale stamp could suppress a needed rescan. *)
let stamps_sound (st : Three_opt.state) =
  Array.for_all
    (fun v -> v <= st.Three_opt.version)
    st.Three_opt.last_fail

let prop_stamps_sound =
  prop "failed-scan stamps never exceed the tour version" stamps_sound

(** The tentpole claim: don't-look bits are trajectory-exact.  The same
    operation sequence against bits-on and bits-off states ends in
    identical tours, costs, and move counts — the bits may only elide
    provably futile rescans. *)
let prop_bits_trajectory_exact =
  QCheck2.Test.make ~count:200
    ~name:"bits-on run identical to bits-off (tour, cost, moves)" gen_seed
    (fun seed ->
      let d = dtsp_of_seed seed in
      let s = Sym.of_dtsp d in
      let rng = Random.State.make [| seed + 1 |] in
      let nbr = Neighbors.of_sym s ~k:8 in
      let tour = Sym.expand s (random_directed_tour rng d.Dtsp.n) in
      let on = Three_opt.init ~dont_look:true s ~nbr ~tour in
      let off = Three_opt.init ~dont_look:false s ~nbr ~tour in
      (* same deterministic op sequence on both states *)
      churn seed on;
      churn seed off;
      Three_opt.activate_all on;
      Three_opt.activate_all off;
      Three_opt.run on;
      Three_opt.run off;
      if Three_opt.tour on <> Three_opt.tour off then
        QCheck2.Test.fail_reportf "tours differ";
      if Three_opt.cost on <> Three_opt.cost off then
        QCheck2.Test.fail_reportf "costs differ";
      if
        on.Three_opt.moves_2opt <> off.Three_opt.moves_2opt
        || on.Three_opt.moves_3opt <> off.Three_opt.moves_3opt
      then QCheck2.Test.fail_reportf "move counts differ";
      if off.Three_opt.scans_skipped <> 0 then
        QCheck2.Test.fail_reportf "bits-off state skipped a scan";
      true)

(* run repeated full passes until one applies no move: every city's
   failed scan is then stamped with the final version *)
let rec settle (st : Three_opt.state) =
  let m = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt in
  Three_opt.activate_all st;
  Three_opt.run st;
  if st.Three_opt.moves_2opt + st.Three_opt.moves_3opt > m then settle st

(** Once converged, a full reactivation performs zero scans: every pop
    hits the don't-look stamp. *)
let prop_converged_pass_all_skipped =
  QCheck2.Test.make ~count:150
    ~name:"post-convergence pass skips every scan" gen_seed (fun seed ->
      let _, _, st = state_of_seed seed in
      settle st;
      let nn = st.Three_opt.s.Sym.nn in
      let skipped = st.Three_opt.scans_skipped in
      let moves = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt in
      Three_opt.activate_all st;
      Three_opt.run st;
      if st.Three_opt.moves_2opt + st.Three_opt.moves_3opt <> moves then
        QCheck2.Test.fail_reportf "converged state still moved";
      if st.Three_opt.scans_skipped <> skipped + nn then
        QCheck2.Test.fail_reportf "expected %d skips, got %d" nn
          (st.Three_opt.scans_skipped - skipped);
      true)

(** [set_tour] (the kick path) must invalidate every stamp, so no city
    can be skipped against the new tour it was never scanned on. *)
let prop_set_tour_invalidates =
  QCheck2.Test.make ~count:150
    ~name:"set_tour bumps version past every stamp" gen_seed (fun seed ->
      let _, s, st = state_of_seed seed in
      settle st;
      (* rotating the cyclic tour keeps the cycle (and the locked
         pairs) but changes the array: exactly what a kick does *)
      let t = Three_opt.tour st in
      let nn = Array.length t in
      let rot = Array.init nn (fun i -> t.((i + 2) mod nn)) in
      let v = st.Three_opt.version in
      Iterated.set_tour st rot;
      if st.Three_opt.version <= v then
        QCheck2.Test.fail_reportf "set_tour did not bump the version";
      if
        not
          (Array.for_all
             (fun f -> f < st.Three_opt.version)
             st.Three_opt.last_fail)
      then QCheck2.Test.fail_reportf "a stamp survived set_tour";
      (* and the state still converges cleanly from the new tour *)
      settle st;
      inverse_permutations st
      && locked_pairs_intact st
      && Three_opt.cost st = Sym.tour_cost s (Three_opt.tour st))

let () =
  Alcotest.run "three-opt-prop"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_inverse;
          QCheck_alcotest.to_alcotest prop_locked;
          QCheck_alcotest.to_alcotest prop_queue;
          QCheck_alcotest.to_alcotest prop_cost_consistent;
          QCheck_alcotest.to_alcotest prop_full_run_extracts;
        ] );
      ( "dont-look",
        [
          QCheck_alcotest.to_alcotest prop_stamps_sound;
          QCheck_alcotest.to_alcotest prop_bits_trajectory_exact;
          QCheck_alcotest.to_alcotest prop_converged_pass_all_skipped;
          QCheck_alcotest.to_alcotest prop_set_tour_invalidates;
        ] );
    ]
