(** Property suite for the 3-Opt search state ({!Ba_tsp.Three_opt}):
    after an arbitrary interleaving of [activate]/[try_city]/[run] the
    state's internal invariants must hold — [pos] and [tour] stay
    inverse permutations, locked in/out pair edges are never cut, and
    the work queue holds no duplicates and agrees with [in_queue]. *)

open Ba_tsp
module Budget = Ba_robust.Budget

let gen_seed = QCheck2.Gen.int_bound 1_000_000

(** Random directed instance: n ∈ [min_n, max_n], costs in [0, 100). *)
let dtsp_of_seed ?(min_n = 4) ?(max_n = 12) seed =
  let rng = Random.State.make [| seed |] in
  let n = min_n + Random.State.int rng (max_n - min_n + 1) in
  Dtsp.make
    (Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 100)))

let random_directed_tour rng n =
  let t = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = t.(i) in
    t.(i) <- t.(j);
    t.(j) <- tmp
  done;
  t

(** Fresh search state over a random tour of a random instance. *)
let state_of_seed seed =
  let d = dtsp_of_seed seed in
  let s = Sym.of_dtsp d in
  let rng = Random.State.make [| seed + 1 |] in
  let nbr = Neighbors.of_sym s ~k:8 in
  let tour = Sym.expand s (random_directed_tour rng d.Dtsp.n) in
  (d, s, Three_opt.init s ~nbr ~tour)

(** Drive the state through a random operation sequence. *)
let churn seed (st : Three_opt.state) =
  let rng = Random.State.make [| seed + 2 |] in
  let nn = st.Three_opt.s.Sym.nn in
  for _ = 1 to 30 do
    match Random.State.int rng 4 with
    | 0 -> Three_opt.activate st (Random.State.int rng nn)
    | 1 -> ignore (Three_opt.try_city st (Random.State.int rng nn))
    | 2 ->
        (* budgeted partial run: may stop mid-optimization *)
        Three_opt.run ~budget:(Budget.create ~max_moves:3 ()) st
    | _ -> Three_opt.activate_all st
  done

(* ---------------- invariants ---------------- *)

let inverse_permutations (st : Three_opt.state) =
  let nn = Array.length st.Three_opt.tour in
  Array.length st.Three_opt.pos = nn
  && Array.for_all
       (fun c -> 0 <= c && c < nn && st.Three_opt.pos.(c) >= 0)
       st.Three_opt.tour
  && Array.for_all
       (fun i -> st.Three_opt.pos.(st.Three_opt.tour.(i)) = i)
       (Array.init nn Fun.id)

let locked_pairs_intact (st : Three_opt.state) =
  Sym.check_alternating st.Three_opt.s (Three_opt.tour st)

let queue_consistent (st : Three_opt.state) =
  let nn = Array.length st.Three_opt.tour in
  let seen = Array.make nn 0 in
  Queue.iter
    (fun c -> if c >= 0 && c < nn then seen.(c) <- seen.(c) + 1)
    st.Three_opt.queue;
  let no_dups = Array.for_all (fun k -> k <= 1) seen in
  let agrees =
    Array.for_all
      (fun c -> st.Three_opt.in_queue.(c) = (seen.(c) = 1))
      (Array.init nn Fun.id)
  in
  no_dups && agrees

let prop name check =
  QCheck2.Test.make ~count:200 ~name gen_seed (fun seed ->
      let _, _, st = state_of_seed seed in
      churn seed st;
      check st)

let prop_inverse = prop "pos and tour stay inverse permutations"
    inverse_permutations

let prop_locked = prop "locked pair edges never cut" locked_pairs_intact
let prop_queue = prop "queue has no duplicates and matches in_queue"
    queue_consistent

(** After a full (unbudgeted) run the tour must still extract to a
    valid directed tour whose directed cost matches the symmetric cost
    plus the transformation offset. *)
let prop_full_run_extracts =
  QCheck2.Test.make ~count:100 ~name:"full run leaves an extractable tour"
    gen_seed (fun seed ->
      let d, s, st = state_of_seed seed in
      Three_opt.activate_all st;
      Three_opt.run st;
      let sym_tour = Three_opt.tour st in
      let directed = Sym.extract s sym_tour in
      Dtsp.is_tour d directed
      && Dtsp.tour_cost d directed
         = Sym.tour_cost s sym_tour + s.Sym.offset)

(** The cached incremental cost never drifts from a from-scratch
    recomputation, whatever the operation interleaving. *)
let prop_cost_consistent =
  QCheck2.Test.make ~count:200 ~name:"incremental cost matches recomputation"
    gen_seed (fun seed ->
      let _, s, st = state_of_seed seed in
      churn seed st;
      Three_opt.cost st = Sym.tour_cost s (Three_opt.tour st))

let () =
  Alcotest.run "three-opt-prop"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest prop_inverse;
          QCheck_alcotest.to_alcotest prop_locked;
          QCheck_alcotest.to_alcotest prop_queue;
          QCheck_alcotest.to_alcotest prop_cost_consistent;
          QCheck_alcotest.to_alcotest prop_full_run_extracts;
        ] );
    ]
