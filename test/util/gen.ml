(** Random CFG, trace and profile generators shared by the test suites. *)

open Ba_cfg

(** [cfg rng ~n] builds a random but valid CFG with [n] blocks: block 0 is
    the entry, the last block always exits, interior blocks get a random
    mix of gotos, conditionals and small jump tables biased towards
    nearby blocks so traces terminate reasonably often. *)
let cfg rng ~n =
  if n < 1 then invalid_arg "Gen.cfg: need at least one block";
  let pick_target i =
    (* biased forward to keep walks finite, but allow back edges *)
    if Random.State.int rng 4 = 0 then Random.State.int rng n
    else min (n - 1) (i + 1 + Random.State.int rng (max 1 (n - i)))
  in
  let blocks =
    Array.init n (fun i ->
        let size = 1 + Random.State.int rng 12 in
        let term =
          if i = n - 1 then Block.Exit
          else
            match Random.State.int rng 10 with
            | 0 -> Block.Exit
            | 1 | 2 | 3 -> Block.Goto (pick_target i)
            | 4 | 5 | 6 | 7 | 8 ->
                Block.Branch { t = pick_target i; f = pick_target i }
            | _ ->
                Block.Multiway
                  (Array.init
                     (2 + Random.State.int rng 3)
                     (fun _ -> pick_target i))
        in
        Block.make ~id:i ~size term)
  in
  Cfg.make ~name:(Printf.sprintf "rand%d" n) ~entry:0 blocks

(** [walk rng g ~max_steps sink] emits one random invocation of [g] into
    [sink]: Enter, a random path from the entry (uniform successor
    choice), Leave.  The walk stops at an exit block or after
    [max_steps]. *)
let walk rng (g : Cfg.t) ~max_steps sink =
  sink (Trace.Enter 0);
  let cur = ref g.Cfg.entry and steps = ref 0 and stop = ref false in
  while not !stop do
    sink (Trace.Block !cur);
    incr steps;
    let succs = Cfg.successors g !cur in
    if succs = [] || !steps >= max_steps then stop := true
    else cur := List.nth succs (Random.State.int rng (List.length succs))
  done;
  sink Trace.Leave

(** [trace_runner rng g ~invocations ~max_steps] is a reusable trace
    producer: each call replays the same pseudo-random execution (the
    given rng seeds a fresh generator), so a profile collected from it
    matches a later simulation of it. *)
let trace_runner ~seed (g : Cfg.t) ~invocations ~max_steps =
 fun sink ->
  let rng = Random.State.make [| seed |] in
  for _ = 1 to invocations do
    walk rng g ~max_steps sink
  done

(** [profile_of ~seed g ~invocations ~max_steps] profiles the canned
    execution of {!trace_runner}. *)
let profile_of ~seed (g : Cfg.t) ~invocations ~max_steps =
  Ba_profile.Collect.profile_of_run ~n_blocks:[| Cfg.n_blocks g |]
    (trace_runner ~seed g ~invocations ~max_steps)
