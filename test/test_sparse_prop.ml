(* Differential suite for the sparse cost core: the CSR representation
   ({!Ba_tsp.Dtsp}), the implicit symmetrization ({!Ba_tsp.Sym}) and the
   sparse candidate-list construction ({!Ba_tsp.Neighbors}) must be
   observationally identical to the dense implementations they replaced
   — same cost oracle on every pair, same neighbor lists (including tie
   order), same solver trajectory — on random matrices, random
   CFG-derived instances and the real workload instances. *)

open Ba_tsp
open Ba_cfg
module Profile = Ba_profile.Profile
module Cost = Ba_machine.Cost
module Reduction = Ba_align.Reduction

let penalties = Ba_machine.Model.alpha21164
let gen_seed = QCheck2.Gen.int_bound 1_000_000

(* ---------------- dense references ---------------- *)

(* the legacy dense reduction: O(n²) edge_cost calls into an (n+1)²
   matrix, exactly as lib/align/reduction.ml used to build it *)
let dense_reduction p (cfg : Cfg.t) ~(profile : Profile.proc) =
  let n = Cfg.n_blocks cfg in
  let dummy = n in
  let predicted = Profile.predictions profile ~n_blocks:n in
  let block_cost i succ =
    Ba_machine.Model.edge_cost p (Cfg.block cfg i).Block.term ~succ
      ~predicted:predicted.(i)
      ~freqs:(Profile.block_freqs profile i)
  in
  let worst = ref 1 in
  for i = 0 to n - 1 do
    let w = ref (block_cost i None) in
    for j = 0 to n - 1 do
      if j <> i then w := max !w (block_cost i (Some j))
    done;
    worst := !worst + !w
  done;
  let forbid = !worst in
  let cost =
    Array.init (n + 1) (fun i ->
        Array.init (n + 1) (fun j ->
            if i = j then 0
            else if i = dummy then if j = cfg.Cfg.entry then 0 else forbid
            else if j = dummy then block_cost i None
            else block_cost i (Some j)))
  in
  (cost, forbid)

(* the legacy dense symmetrization matrix *)
let dense_sym (d : Dtsp.t) =
  let n = d.Dtsp.n in
  let cmax = Dtsp.max_cost d in
  let m = (2 * cmax) + 2 in
  let inf = 8 * (cmax + m + 1) in
  let nn = 2 * n in
  let cost = Array.make_matrix nn nn inf in
  for i = 0 to n - 1 do
    cost.(2 * i).((2 * i) + 1) <- -m;
    cost.((2 * i) + 1).(2 * i) <- -m;
    for j = 0 to n - 1 do
      if i <> j then begin
        cost.((2 * i) + 1).(2 * j) <- Dtsp.cost d i j;
        cost.(2 * j).((2 * i) + 1) <- Dtsp.cost d i j
      end
    done
  done;
  cost

(* the legacy dense neighbor-list construction, byte for byte: ascending
   prepend scan, Array.sort on matrix lookups, truncate to k *)
let dense_neighbors (s : Sym.t) sym_matrix ~k =
  let nn = s.Sym.nn in
  Array.init nn (fun a ->
      let cand = ref [] in
      for b = 0 to nn - 1 do
        if
          b <> a
          && (not (Sym.is_locked s a b))
          && sym_matrix.(a).(b) < s.Sym.inf
        then cand := b :: !cand
      done;
      let arr = Array.of_list !cand in
      Array.sort
        (fun x y -> compare sym_matrix.(a).(x) sym_matrix.(a).(y))
        arr;
      if Array.length arr <= k then arr else Array.sub arr 0 k)

let max_offdiag m =
  let n = Array.length m in
  let mx = ref 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && m.(i).(j) > !mx then mx := m.(i).(j)
    done
  done;
  !mx

(* ---------------- generators ---------------- *)

let random_cfg_profile seed =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 24 in
  let g = Ba_testutil.Gen.cfg rng ~n in
  let prof =
    Ba_testutil.Gen.profile_of ~seed:(seed + 1) g
      ~invocations:(1 + Random.State.int rng 40)
      ~max_steps:100
  in
  (g, Profile.proc prof 0)

(* random dense matrix with clustered values so per-row defaults and
   ties actually occur, plus an arbitrary (nonzero) diagonal *)
let random_matrix seed =
  let rng = Random.State.make [| seed |] in
  let n = 2 + Random.State.int rng 14 in
  let palette = [| 0; 3; 3; 7; 50; Random.State.int rng 1000 |] in
  Array.init n (fun _ ->
      Array.init n (fun _ ->
          palette.(Random.State.int rng (Array.length palette))))

(* ---------------- properties ---------------- *)

let check_oracle ~what d dense =
  let n = Array.length dense in
  if d.Dtsp.n <> n then
    QCheck2.Test.fail_reportf "%s: n %d <> %d" what d.Dtsp.n n;
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let got = Dtsp.cost d i j in
      if got <> dense.(i).(j) then
        QCheck2.Test.fail_reportf "%s: cost(%d,%d) = %d, want %d" what i j
          got
          dense.(i).(j)
    done
  done;
  if Dtsp.max_cost d <> max_offdiag dense then
    QCheck2.Test.fail_reportf "%s: max_cost %d, want %d" what
      (Dtsp.max_cost d) (max_offdiag dense);
  true

let prop_make_oracle =
  QCheck2.Test.make ~count:300 ~name:"make reproduces the dense matrix"
    gen_seed (fun seed ->
      let m = random_matrix seed in
      check_oracle ~what:"make" (Dtsp.make m) m)

let prop_reduction_oracle =
  QCheck2.Test.make ~count:200
    ~name:"sparse reduction = dense reduction on every (i,j)" gen_seed
    (fun seed ->
      let g, prof = random_cfg_profile seed in
      let inst = Reduction.build penalties g ~profile:prof in
      let dense, forbid = dense_reduction penalties g ~profile:prof in
      if inst.Reduction.forbid <> forbid then
        QCheck2.Test.fail_reportf "forbid %d, want %d" inst.Reduction.forbid
          forbid;
      check_oracle ~what:"reduction" inst.Reduction.dtsp dense)

let prop_sym_oracle =
  QCheck2.Test.make ~count:200
    ~name:"implicit Sym.cost = dense symmetric matrix" gen_seed (fun seed ->
      let d = Dtsp.make (random_matrix seed) in
      let s = Sym.of_dtsp d in
      let dense = dense_sym d in
      let nn = s.Sym.nn in
      for a = 0 to nn - 1 do
        for b = 0 to nn - 1 do
          if Sym.cost s a b <> dense.(a).(b) then
            QCheck2.Test.fail_reportf "sym cost(%d,%d) = %d, want %d" a b
              (Sym.cost s a b)
              dense.(a).(b)
        done
      done;
      true)

let check_neighbors ~what (d : Dtsp.t) =
  let s = Sym.of_dtsp d in
  let dense = dense_sym d in
  List.for_all
    (fun k ->
      let got = Neighbors.of_sym s ~k in
      let want = dense_neighbors s dense ~k in
      Array.iteri
        (fun a w ->
          if got.(a) <> w then
            QCheck2.Test.fail_reportf
              "%s: neighbor list of city %d differs at k=%d (got %s, want \
               %s)"
              what a k
              (String.concat ","
                 (Array.to_list (Array.map string_of_int got.(a))))
              (String.concat ","
                 (Array.to_list (Array.map string_of_int w))))
        want;
      true)
    [ 3; 8; 12 ]

let prop_neighbors_random =
  QCheck2.Test.make ~count:150
    ~name:"neighbor lists identical to dense scan (random)" gen_seed
    (fun seed -> check_neighbors ~what:"random" (Dtsp.make (random_matrix seed)))

let prop_neighbors_reduction =
  QCheck2.Test.make ~count:150
    ~name:"neighbor lists identical to dense scan (reduction)" gen_seed
    (fun seed ->
      let g, prof = random_cfg_profile seed in
      let inst = Reduction.build penalties g ~profile:prof in
      check_neighbors ~what:"reduction" inst.Reduction.dtsp)

let prop_solve_identical =
  QCheck2.Test.make ~count:60
    ~name:"Iterated.solve tours bit-identical across constructions"
    gen_seed (fun seed ->
      let g, prof = random_cfg_profile seed in
      let inst = Reduction.build penalties g ~profile:prof in
      let dense, _ = dense_reduction penalties g ~profile:prof in
      let t1, s1 = Iterated.solve inst.Reduction.dtsp in
      let t2, s2 = Iterated.solve (Dtsp.make dense) in
      if t1 <> t2 then QCheck2.Test.fail_reportf "tours differ";
      if s1 <> s2 then QCheck2.Test.fail_reportf "solver stats differ";
      true)

(* ---------------- workload instances ---------------- *)

(* the real SPEC92 procedures: oracle + neighbors + trajectory on a
   size-capped sample (the dense reference is O(n²)) *)
let test_workload_instances () =
  let insts =
    Ba_harness.Synthetic.workload_instances ()
    |> List.filter (fun i ->
           Cfg.n_blocks i.Ba_harness.Synthetic.g <= 120)
  in
  Alcotest.(check bool) "have workload instances" true (insts <> []);
  List.iteri
    (fun idx { Ba_harness.Synthetic.name; g; prof } ->
      let inst = Reduction.build penalties g ~profile:prof in
      let dense, forbid = dense_reduction penalties g ~profile:prof in
      Alcotest.(check int) (name ^ ": forbid") forbid inst.Reduction.forbid;
      Alcotest.(check bool)
        (name ^ ": oracle")
        true
        (check_oracle ~what:name inst.Reduction.dtsp dense);
      (* neighbors + full solve identity on a further sample: both are
         quadratic-or-worse in the dense reference *)
      if idx mod 7 = 0 then begin
        Alcotest.(check bool)
          (name ^ ": neighbors")
          true
          (check_neighbors ~what:name inst.Reduction.dtsp);
        let t1, _ = Iterated.solve inst.Reduction.dtsp in
        let t2, _ = Iterated.solve (Dtsp.make dense) in
        Alcotest.(check (array int)) (name ^ ": tour") t2 t1
      end)
    insts

let () =
  Alcotest.run "sparse-prop"
    [
      ( "oracle",
        [
          QCheck_alcotest.to_alcotest prop_make_oracle;
          QCheck_alcotest.to_alcotest prop_reduction_oracle;
          QCheck_alcotest.to_alcotest prop_sym_oracle;
        ] );
      ( "neighbors",
        [
          QCheck_alcotest.to_alcotest prop_neighbors_random;
          QCheck_alcotest.to_alcotest prop_neighbors_reduction;
        ] );
      ( "trajectory",
        [
          QCheck_alcotest.to_alcotest prop_solve_identical;
          Alcotest.test_case "workload instances" `Slow
            test_workload_instances;
        ] );
    ]
