(** Differential suite for the pluggable tour representation
    ({!Ba_tsp.Tour_repr} / {!Ba_tsp.Two_level}).

    The two-level √n-segment structure is only allowed to change
    complexity, never behavior: both representations preserve absolute
    tour positions exactly, so every query and every mutation must
    agree with the flat-array oracle — and, one level up, whole
    {!Ba_tsp.Iterated.solve} trajectories must be move-for-move
    identical whichever representation carries them.  The sparse-aware
    construction heuristics get the same treatment against the dense
    scans they replaced. *)

open Ba_tsp

let gen_seed = QCheck2.Gen.int_bound 1_000_000

(* ------------------------------------------------------------------ *)
(* flat oracle: a plain cyclic int array *)

let oracle_reverse t l r =
  let n = Array.length t in
  let len = ((r - l + n) mod n) + 1 in
  for k = 0 to (len / 2) - 1 do
    let a = (l + k) mod n and b = (r - k + n) mod n in
    let tmp = t.(a) in
    t.(a) <- t.(b);
    t.(b) <- tmp
  done

let random_tour rng n =
  let t = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = t.(i) in
    t.(i) <- t.(j);
    t.(j) <- tmp
  done;
  t

(* ---------------- two-level vs oracle: queries + reverse ----------- *)

let prop_two_level_matches_oracle =
  QCheck2.Test.make ~count:400
    ~name:"two-level reverse/set_tour/queries match the flat oracle"
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = 4 + Random.State.int rng 200 in
      let oracle = random_tour rng n in
      let tl = Two_level.create ~tour:oracle n in
      let check_all () =
        if Two_level.to_array tl <> oracle then
          QCheck2.Test.fail_reportf "to_array diverged (n=%d)" n;
        for _ = 1 to 8 do
          let p = Random.State.int rng n in
          let c = oracle.(p) in
          if Two_level.city_at tl p <> c then
            QCheck2.Test.fail_reportf "city_at %d diverged" p;
          if Two_level.pos tl c <> p then
            QCheck2.Test.fail_reportf "pos %d diverged" c;
          if Two_level.succ tl c <> oracle.((p + 1) mod n) then
            QCheck2.Test.fail_reportf "succ %d diverged" c;
          if Two_level.pred tl c <> oracle.((p + n - 1) mod n) then
            QCheck2.Test.fail_reportf "pred %d diverged" c
        done
      in
      check_all ();
      for _ = 1 to 40 do
        if Random.State.int rng 10 = 0 then begin
          let t' = random_tour rng n in
          Array.blit t' 0 oracle 0 n;
          Two_level.set_tour tl t'
        end
        else begin
          let l = Random.State.int rng n and r = Random.State.int rng n in
          oracle_reverse oracle l r;
          Two_level.reverse tl l r
        end;
        check_all ()
      done;
      true)

(* ---------------- reconnect: optimized flat vs reversal replay ----- *)

(* the reversal sequences the optimized flat windows replaced; applied
   through Tour_repr.reverse they are the semantic reference for all
   four reconnection types *)
let reference_reconnect repr ~pi ~jj ~kk ty =
  let n = Tour_repr.n repr in
  let p o = (pi + o) mod n in
  let p1 = p 1 and pj = p jj and pj1 = p (jj + 1) and pk = p kk in
  match (ty : Tour_repr.reconnection) with
  | T3 ->
      Tour_repr.reverse repr p1 pj;
      Tour_repr.reverse repr pj1 pk
  | T4 ->
      Tour_repr.reverse repr p1 pj;
      Tour_repr.reverse repr pj1 pk;
      Tour_repr.reverse repr p1 pk
  | T5 ->
      Tour_repr.reverse repr pj1 pk;
      Tour_repr.reverse repr p1 pk
  | T6 ->
      Tour_repr.reverse repr p1 pj;
      Tour_repr.reverse repr p1 pk

let prop_reconnect_matches_reference =
  QCheck2.Test.make ~count:400
    ~name:"reconnect (flat scratch + two-level) = reversal-replay reference"
    gen_seed (fun seed ->
      let rng = Random.State.make [| seed + 7 |] in
      let n = 5 + Random.State.int rng 120 in
      let tour = random_tour rng n in
      let flat = Tour_repr.make Tour_repr.Array ~n_cities:n tour in
      let two = Tour_repr.make Tour_repr.Two_level ~n_cities:n tour in
      let refr = Tour_repr.make Tour_repr.Array ~n_cities:n tour in
      for _ = 1 to 25 do
        (* 1 ≤ jj < kk ≤ n−1: two non-empty window segments *)
        let pi = Random.State.int rng n in
        let kk = 2 + Random.State.int rng (n - 2) in
        let jj = 1 + Random.State.int rng (kk - 1) in
        let ty =
          match Random.State.int rng 4 with
          | 0 -> Tour_repr.T3
          | 1 -> Tour_repr.T4
          | 2 -> Tour_repr.T5
          | _ -> Tour_repr.T6
        in
        Tour_repr.reconnect flat ~pi ~jj ~kk ty;
        Tour_repr.reconnect two ~pi ~jj ~kk ty;
        reference_reconnect refr ~pi ~jj ~kk ty;
        let want = Tour_repr.to_array refr in
        if Tour_repr.to_array flat <> want then
          QCheck2.Test.fail_reportf "flat reconnect diverged (n=%d jj=%d kk=%d)"
            n jj kk;
        if Tour_repr.to_array two <> want then
          QCheck2.Test.fail_reportf
            "two-level reconnect diverged (n=%d jj=%d kk=%d)" n jj kk;
        (* positions must track the permutation in both *)
        let c = Random.State.int rng n in
        if Tour_repr.pos flat c <> Tour_repr.pos two c then
          QCheck2.Test.fail_reportf "pos diverged after reconnect"
      done;
      true)

(* ---------------- full-trajectory identity across representations -- *)

let dtsp_of_seed ?(min_n = 4) ?(max_n = 14) seed =
  let rng = Random.State.make [| seed |] in
  let n = min_n + Random.State.int rng (max_n - min_n + 1) in
  Dtsp.make
    (Array.init n (fun _ -> Array.init n (fun _ -> Random.State.int rng 100)))

let run_three_opt ~dont_look ~repr seed =
  let d = dtsp_of_seed seed in
  let s = Sym.of_dtsp d in
  let rng = Random.State.make [| seed + 1 |] in
  let nbr = Neighbors.of_sym s ~k:8 in
  let tour = Sym.expand s (random_tour rng d.Dtsp.n) in
  let st = Three_opt.init ~dont_look ~repr s ~nbr ~tour in
  Three_opt.activate_all st;
  Three_opt.run st;
  ( Three_opt.tour st,
    Three_opt.cost st,
    st.Three_opt.moves_2opt,
    st.Three_opt.moves_3opt )

let prop_three_opt_repr_identical =
  QCheck2.Test.make ~count:300
    ~name:"3-Opt descent identical on Array and Two_level (bits on and off)"
    gen_seed (fun seed ->
      List.iter
        (fun dont_look ->
          let a = run_three_opt ~dont_look ~repr:Tour_repr.Array seed in
          let t = run_three_opt ~dont_look ~repr:Tour_repr.Two_level seed in
          if a <> t then
            QCheck2.Test.fail_reportf
              "trajectories diverged (dont_look=%b)" dont_look)
        [ true; false ];
      true)

let prop_solve_repr_identical =
  QCheck2.Test.make ~count:40
    ~name:"Iterated.solve trajectory identical on Array and Two_level"
    gen_seed (fun seed ->
      let d = dtsp_of_seed ~min_n:4 ~max_n:12 seed in
      let solve repr =
        let config =
          { Iterated.default with runs = 3; max_kicks = 12; seed;
            tour_repr = repr }
        in
        Iterated.solve ~config d
      in
      let ta, sa = solve Tour_repr.Array in
      let tt, st = solve Tour_repr.Two_level in
      if ta <> tt then QCheck2.Test.fail_reportf "best tours differ";
      if sa <> st then
        QCheck2.Test.fail_reportf
          "stats differ: moves %d+%d / %d+%d, kicks %d / %d"
          sa.Iterated.moves_2opt sa.Iterated.moves_3opt st.Iterated.moves_2opt
          st.Iterated.moves_3opt sa.Iterated.kicks st.Iterated.kicks;
      true)

(* ---------------- sparse constructions vs dense oracles ------------ *)

(* random sparse instance built through of_rows: per-row default plus a
   few deviations — the shape the sparse streams are designed for *)
let sparse_dtsp_of_seed ?(min_n = 4) ?(max_n = 40) seed =
  let rng = Random.State.make [| seed + 11 |] in
  let n = min_n + Random.State.int rng (max_n - min_n + 1) in
  let default = Array.init n (fun _ -> 10 + Random.State.int rng 50) in
  let rows =
    Array.init n (fun _ ->
        let k = Random.State.int rng (min n 6) in
        let cols = Array.init k (fun _ -> Random.State.int rng n) in
        Array.sort compare cols;
        let uniq = ref [] in
        Array.iteri
          (fun i c -> if i = 0 || cols.(i - 1) <> c then uniq := c :: !uniq)
          cols;
        List.rev_map (fun c -> (c, Random.State.int rng 100)) !uniq)
  in
  Dtsp.of_rows ~n ~default rows

(* the historical dense nearest-neighbor scan, kept verbatim as oracle *)
let dense_nearest_neighbor ?rng ?(choices = 1) (d : Dtsp.t) ~start =
  let n = d.Dtsp.n in
  let visited = Array.make n false in
  let tour = Array.make n start in
  visited.(start) <- true;
  let cur = ref start in
  let cand = Array.make choices (max_int, -1) in
  for i = 1 to n - 1 do
    let n_cand = ref 0 in
    for j = 0 to n - 1 do
      if not visited.(j) then begin
        let c = Dtsp.cost d !cur j in
        if !n_cand < choices then begin
          cand.(!n_cand) <- (c, j);
          incr n_cand;
          let k = ref (!n_cand - 1) in
          while !k > 0 && fst cand.(!k) < fst cand.(!k - 1) do
            let t = cand.(!k) in
            cand.(!k) <- cand.(!k - 1);
            cand.(!k - 1) <- t;
            decr k
          done
        end
        else if c < fst cand.(choices - 1) then begin
          cand.(choices - 1) <- (c, j);
          let k = ref (choices - 1) in
          while !k > 0 && fst cand.(!k) < fst cand.(!k - 1) do
            let t = cand.(!k) in
            cand.(!k) <- cand.(!k - 1);
            cand.(!k - 1) <- t;
            decr k
          done
        end
      end
    done;
    let pick =
      match rng with
      | None -> 0
      | Some st -> Random.State.int st !n_cand
    in
    let _, next = cand.(pick) in
    tour.(i) <- next;
    visited.(next) <- true;
    cur := next
  done;
  tour

(* the historical dense greedy scan (deterministic form), as oracle *)
let dense_greedy (d : Dtsp.t) =
  let n = d.Dtsp.n in
  let next = Array.make n (-1) and prev = Array.make n (-1) in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      parent.(i) <- find parent.(i);
      parent.(i)
    end
  in
  let accepted = ref 0 in
  let try_edge i j =
    if
      !accepted < n - 1 && i <> j && next.(i) < 0 && prev.(j) < 0
      && find i <> find j
    then begin
      next.(i) <- j;
      prev.(j) <- i;
      parent.(find i) <- find j;
      incr accepted
    end
  in
  let edges = Array.make (n * (n - 1)) (0, 0, 0) in
  let k = ref 0 in
  let row = Array.make n 0 in
  for i = 0 to n - 1 do
    Dtsp.blit_row d i row;
    for j = 0 to n - 1 do
      if i <> j then begin
        edges.(!k) <- (row.(j), i, j);
        incr k
      end
    done
  done;
  Array.sort compare edges;
  Array.iter (fun (_, i, j) -> try_edge i j) edges;
  let head = ref (-1) in
  for j = 0 to n - 1 do
    if prev.(j) < 0 then head := j
  done;
  let tour = Array.make n 0 in
  let cur = ref !head in
  for i = 0 to n - 1 do
    tour.(i) <- !cur;
    cur := next.(!cur)
  done;
  tour

let prop_nn_sparse_equals_dense =
  QCheck2.Test.make ~count:300
    ~name:"sparse nearest-neighbor = dense oracle (incl. RNG stream)"
    gen_seed (fun seed ->
      List.iter
        (fun d ->
          let rng = Random.State.make [| seed + 3 |] in
          let n = d.Dtsp.n in
          let start = Random.State.int rng n in
          let choices = 1 + Random.State.int rng 4 in
          (* deterministic *)
          if
            Construct.nearest_neighbor d ~start
            <> dense_nearest_neighbor d ~start
          then QCheck2.Test.fail_reportf "deterministic NN diverged";
          (* randomized: identical draws → identical tours *)
          let r1 = Random.State.make [| seed + 4 |] in
          let r2 = Random.State.make [| seed + 4 |] in
          let a = Construct.nearest_neighbor ~rng:r1 ~choices d ~start in
          let b = dense_nearest_neighbor ~rng:r2 ~choices d ~start in
          if a <> b then
            QCheck2.Test.fail_reportf "randomized NN diverged (n=%d)" n;
          (* and the RNG streams stayed in lockstep *)
          if Random.State.int r1 1000 <> Random.State.int r2 1000 then
            QCheck2.Test.fail_reportf "NN consumed a different RNG stream")
        [ dtsp_of_seed ~min_n:4 ~max_n:30 seed; sparse_dtsp_of_seed seed ];
      true)

let prop_greedy_sparse_equals_dense =
  QCheck2.Test.make ~count:300
    ~name:"deterministic sparse greedy = dense oracle" gen_seed (fun seed ->
      List.iter
        (fun d ->
          if Construct.greedy_edge d <> dense_greedy d then
            QCheck2.Test.fail_reportf "deterministic greedy diverged (n=%d)"
              d.Dtsp.n)
        [ dtsp_of_seed ~min_n:4 ~max_n:30 seed; sparse_dtsp_of_seed seed ];
      true)

(* randomized greedy below the gate keeps the dense scan: a fixed RNG
   must reproduce the same tour across calls (determinism), and the
   gate itself must be the documented constant *)
let prop_greedy_rng_deterministic =
  QCheck2.Test.make ~count:150
    ~name:"randomized greedy deterministic for a fixed RNG" gen_seed
    (fun seed ->
      let d = sparse_dtsp_of_seed seed in
      let t1 =
        Construct.greedy_edge ~rng:(Random.State.make [| seed |]) d
      in
      let t2 =
        Construct.greedy_edge ~rng:(Random.State.make [| seed |]) d
      in
      if t1 <> t2 then QCheck2.Test.fail_reportf "randomized greedy unstable";
      if not (Dtsp.is_tour d t1) then
        QCheck2.Test.fail_reportf "randomized greedy returned a non-tour";
      true)

let () =
  assert (Construct.greedy_dense_threshold = Neighbors.exact_threshold);
  Alcotest.run "tour-repr-prop"
    [
      ( "two-level",
        [
          QCheck_alcotest.to_alcotest prop_two_level_matches_oracle;
          QCheck_alcotest.to_alcotest prop_reconnect_matches_reference;
        ] );
      ( "trajectory",
        [
          QCheck_alcotest.to_alcotest prop_three_opt_repr_identical;
          QCheck_alcotest.to_alcotest prop_solve_repr_identical;
        ] );
      ( "construct",
        [
          QCheck_alcotest.to_alcotest prop_nn_sparse_equals_dense;
          QCheck_alcotest.to_alcotest prop_greedy_sparse_equals_dense;
          QCheck_alcotest.to_alcotest prop_greedy_rng_deterministic;
        ] );
    ]
