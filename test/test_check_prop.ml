(** Property suite for the certificate validator.

    Two directions: every layout the driver produces certifies cleanly
    (and the validator's from-scratch cost agrees with the reduction's
    walk cost), and every catalogued corruption of a valid layout is
    rejected with the matching certification error.  The corruptions
    are chosen so rejection is guaranteed, not seed-dependent: a block
    swap can yield another valid layout, so we mutate structure the
    walk/locked-pair/cost checks must catch. *)

open Ba_check
module Profile = Ba_profile.Profile
module Synthetic = Ba_harness.Synthetic
module Driver = Ba_align.Driver
module Penalties = Ba_machine.Penalties
module Sym = Ba_tsp.Sym

let penalties = Ba_machine.Model.alpha21164

let scenario ~seed =
  let rng = Random.State.make [| 0xCE57; seed |] in
  let n_procs = 1 + Random.State.int rng 3 in
  let cfgs =
    Array.init n_procs (fun _ ->
        Synthetic.cfg rng ~n:(2 + Random.State.int rng 10))
  in
  let procs =
    Array.map
      (fun g -> Synthetic.profile rng g ~invocations:20 ~max_steps:200)
      cfgs
  in
  (cfgs, { Profile.procs; calls = [] })

(** Procedure 0 of a scenario, with its greedy-aligned order. *)
let aligned_proc ~seed =
  let cfgs, profile = scenario ~seed in
  let row = profile.Profile.procs.(0) in
  let order =
    Driver.align_proc Driver.Greedy penalties cfgs.(0) ~profile:row
  in
  (cfgs.(0), row, order)

let cert ?claimed ?hk ?sym_check ~seed mutate =
  let cfg, row, order = aligned_proc ~seed in
  let order = Array.copy order in
  mutate order;
  Certify.proc_cert ?claimed ?hk ?sym_check ~proc:0 penalties cfg
    ~profile:row ~order

let gen_seed = QCheck2.Gen.int_bound 1_000_000

let prop_align_certifies =
  QCheck2.Test.make ~count:75 ~name:"driver layouts always certify" gen_seed
    (fun seed ->
      let cfgs, profile = scenario ~seed in
      let check tag orders =
        match
          Certify.program penalties cfgs ~train:profile ~orders
        with
        | Ok c ->
            if c.Certify.total_cost < 0 then
              QCheck2.Test.fail_reportf "%s: negative total cost" tag;
            List.length c.Certify.procs = Array.length cfgs
        | Error f ->
            QCheck2.Test.fail_reportf "%s: proc %d (%s) rejected: %s" tag
              f.Certify.fproc f.Certify.fname
              (Certify.error_to_string f.Certify.error)
      in
      let greedy = Driver.align Driver.Greedy penalties cfgs ~train:profile in
      check "greedy" greedy.Driver.orders
      && check "original"
           (Array.map Ba_cfg.Layout.identity cfgs))

let prop_cost_matches_reduction =
  QCheck2.Test.make ~count:75
    ~name:"recomputed cost = reduction walk cost" gen_seed (fun seed ->
      let cfgs, profile = scenario ~seed in
      let aligned = Driver.align Driver.Greedy penalties cfgs ~train:profile in
      Array.for_all
        (fun fid ->
          let cfg = cfgs.(fid) in
          let row = profile.Profile.procs.(fid) in
          let order = aligned.Driver.orders.(fid) in
          let direct =
            Certify.recompute_cost penalties cfg ~profile:row ~order
          in
          let red = Ba_align.Reduction.build penalties cfg ~profile:row in
          let walk = Ba_align.Reduction.layout_cost red order in
          if direct <> walk then
            QCheck2.Test.fail_reportf "proc %d: direct %d <> walk %d" fid
              direct walk
          else true)
        (Array.init (Array.length cfgs) Fun.id))

let expect name pred = function
  | Error e when pred e -> true
  | Error e ->
      QCheck2.Test.fail_reportf "%s: wrong error %s" name
        (Certify.error_to_string e)
  | Ok _ -> QCheck2.Test.fail_reportf "%s: corrupted layout certified" name

let prop_duplicate_rejected =
  QCheck2.Test.make ~count:75 ~name:"duplicated block -> Not_permutation"
    gen_seed (fun seed ->
      cert ~seed (fun o -> o.(Array.length o - 1) <- o.(0))
      |> expect "duplicate" (function
           | Certify.Not_permutation _ -> true
           | _ -> false))

let prop_entry_rejected =
  QCheck2.Test.make ~count:75 ~name:"entry displaced -> Entry_not_first"
    gen_seed (fun seed ->
      cert ~seed (fun o ->
          let t = o.(0) in
          o.(0) <- o.(1);
          o.(1) <- t)
      |> expect "entry" (function
           | Certify.Entry_not_first _ -> true
           | _ -> false))

let prop_claimed_rejected =
  QCheck2.Test.make ~count:75 ~name:"inflated claim -> Cost_mismatch" gen_seed
    (fun seed ->
      let cfg, row, order = aligned_proc ~seed in
      let cost = Certify.recompute_cost penalties cfg ~profile:row ~order in
      cert ~claimed:(cost + 1) ~seed (fun _ -> ())
      |> expect "claimed" (function
           | Certify.Cost_mismatch { claimed; recomputed } ->
               claimed = cost + 1 && recomputed = cost
           | _ -> false))

let prop_bound_rejected =
  QCheck2.Test.make ~count:75
    ~name:"bound above cost -> Bound_exceeds_cost" gen_seed (fun seed ->
      let cfg, row, order = aligned_proc ~seed in
      let cost = Certify.recompute_cost penalties cfg ~profile:row ~order in
      cert ~hk:(Certify.Given (cost + 1)) ~seed (fun _ -> ())
      |> expect "bound" (function
           | Certify.Bound_exceeds_cost { bound; cost = c } ->
               bound = cost + 1 && c = cost
           | _ -> false))

let prop_locked_pair_rejected =
  QCheck2.Test.make ~count:75
    ~name:"broken locked pair -> Locked_pair_broken" gen_seed (fun seed ->
      let cfg, row, order = aligned_proc ~seed in
      let dtsp, dummy = Certify.dtsp_of penalties cfg ~profile:row in
      let sym = Sym.of_dtsp dtsp in
      let dtour = Array.append [| dummy |] order in
      let stour = Sym.expand sym dtour in
      (* [in c0; out c0; in c1; ...] with elements 1,2 swapped separates
         city 0's in/out pair (length >= 6: dummy + >= 2 blocks). *)
      let t = stour.(1) in
      stour.(1) <- stour.(2);
      stour.(2) <- t;
      match Certify.check_sym sym stour with
      | Error (Certify.Locked_pair_broken _) -> true
      | Error e ->
          QCheck2.Test.fail_reportf "wrong error %s"
            (Certify.error_to_string e)
      | Ok _ -> QCheck2.Test.fail_reportf "broken pair accepted")

let prop_sym_roundtrip =
  QCheck2.Test.make ~count:75 ~name:"intact sym tour round-trips" gen_seed
    (fun seed ->
      let cfg, row, order = aligned_proc ~seed in
      let dtsp, dummy = Certify.dtsp_of penalties cfg ~profile:row in
      let sym = Sym.of_dtsp dtsp in
      let dtour = Array.append [| dummy |] order in
      match Certify.check_sym sym (Sym.expand sym dtour) with
      | Ok recovered ->
          Ba_tsp.Dtsp.tour_cost dtsp recovered
          = Ba_tsp.Dtsp.tour_cost dtsp dtour
      | Error e ->
          QCheck2.Test.fail_reportf "intact tour rejected: %s"
            (Certify.error_to_string e))

let () =
  Alcotest.run "check-prop"
    [
      ( "certify",
        [
          QCheck_alcotest.to_alcotest prop_align_certifies;
          QCheck_alcotest.to_alcotest prop_cost_matches_reduction;
          QCheck_alcotest.to_alcotest prop_sym_roundtrip;
        ] );
      ( "adversarial",
        [
          QCheck_alcotest.to_alcotest prop_duplicate_rejected;
          QCheck_alcotest.to_alcotest prop_entry_rejected;
          QCheck_alcotest.to_alcotest prop_claimed_rejected;
          QCheck_alcotest.to_alcotest prop_bound_rejected;
          QCheck_alcotest.to_alcotest prop_locked_pair_rejected;
        ] );
    ]
