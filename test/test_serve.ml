(** Serve-layer tests: wire framing and codecs (including QCheck
    round-trips), the certified layout cache, and the end-to-end daemon
    over the in-process pipe driver. *)

open Ba_cfg
module Wire = Ba_serve.Wire
module Cache = Ba_serve.Cache
module Server = Ba_serve.Server
module Driver = Ba_harness.Serve_driver
module Profile = Ba_profile.Profile
module Synthetic = Ba_harness.Synthetic
module Errors = Ba_robust.Errors

(* ---------------- framing helpers ---------------- *)

(** Feed raw bytes to a reader through a pipe and collect events until
    the stream terminates. *)
let events_of_bytes ?max_frame_bytes bytes =
  let r, w = Unix.pipe ~cloexec:true () in
  let n = String.length bytes in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring w bytes !off (n - !off)
  done;
  Unix.close w;
  let reader = Wire.reader ?max_frame_bytes r in
  let rec collect acc =
    match Wire.read_frame reader with
    | Wire.Frame p -> collect (Wire.Frame p :: acc)
    | Wire.Oversized l -> collect (Wire.Oversized l :: acc)
    | (Wire.Eof | Wire.Truncated | Wire.Bad_header _ | Wire.Drained) as e ->
        List.rev (e :: acc)
  in
  let events = collect [] in
  Unix.close r;
  events

let test_frame_round_trip () =
  let payloads = [ ""; "x"; "{\"id\":1}"; String.make 1000 'p'; "a\nb\nc" ] in
  let bytes = String.concat "" (List.map Wire.encode_frame payloads) in
  let expected = List.map (fun p -> Wire.Frame p) payloads @ [ Wire.Eof ] in
  Alcotest.(check bool) "all frames back" true (events_of_bytes bytes = expected)

let test_frame_faults () =
  (match events_of_bytes "12\ntoo short" with
  | [ Wire.Truncated ] -> ()
  | _ -> Alcotest.fail "truncated not detected");
  (match events_of_bytes "nonsense\nrest" with
  | [ Wire.Bad_header _ ] -> ()
  | _ -> Alcotest.fail "bad header not detected");
  (* a huge declared length must not balloon memory and must leave the
     stream synchronized for the next frame *)
  let big = 5000 in
  let bytes =
    Printf.sprintf "%d\n%s\n" big (String.make big 'x') ^ Wire.encode_frame "ok"
  in
  match events_of_bytes ~max_frame_bytes:1024 bytes with
  | [ Wire.Oversized 5000; Wire.Frame "ok"; Wire.Eof ] -> ()
  | _ -> Alcotest.fail "oversized frame not skipped cleanly"

(* a pipe caps pre-written bytes at its capacity, so the big-frame test
   feeds the reader from a file: reads arrive in fd-sized chunks and the
   internal buffer must grow and compact across many refills *)
let events_of_file ?max_frame_bytes bytes =
  let path = Filename.temp_file "balign-wire" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          let reader = Wire.reader ?max_frame_bytes fd in
          let rec collect acc =
            match Wire.read_frame reader with
            | (Wire.Frame _ | Wire.Oversized _) as e -> collect (e :: acc)
            | (Wire.Eof | Wire.Truncated | Wire.Bad_header _ | Wire.Drained) as e
              ->
                List.rev (e :: acc)
          in
          collect []))

let test_frame_large () =
  (* 1 MiB of bytes, newlines included, split across two frames *)
  let big = String.init 1_000_000 (fun i -> Char.chr (i mod 251)) in
  let bytes =
    Wire.encode_frame big ^ Wire.encode_frame "tail" ^ Wire.encode_frame big
  in
  match events_of_file bytes with
  | [ Wire.Frame a; Wire.Frame "tail"; Wire.Frame b; Wire.Eof ] ->
      Alcotest.(check bool) "first big frame intact" true (a = big);
      Alcotest.(check bool) "second big frame intact" true (b = big)
  | _ -> Alcotest.fail "large frames did not round-trip"

let test_frame_qcheck =
  (* arbitrary bytes, newlines and all: framing must never depend on
     payload content *)
  QCheck2.Test.make ~count:200 ~name:"frame encode/decode round-trips"
    QCheck2.Gen.(small_list (string_size (0 -- 200)))
    (fun payloads ->
      let bytes = String.concat "" (List.map Wire.encode_frame payloads) in
      events_of_bytes bytes
      = List.map (fun p -> Wire.Frame p) payloads @ [ Wire.Eof ])

(* ---------------- request codec ---------------- *)

(** Random already-normalized CFG + profile + options (the round-trip
    anchor: encoding starts from a valid in-memory request). *)
let request_gen =
  QCheck2.Gen.(
    let* seed = int_bound 100_000 in
    let rng = Random.State.make [| 0x3a11; seed |] in
    let n = 2 + Random.State.int rng 11 in
    let cfg = Synthetic.cfg rng ~n in
    let profile = Synthetic.profile rng cfg ~invocations:5 ~max_steps:60 in
    let deadline_ms =
      if Random.State.bool rng then Some (Random.State.int rng 1000) else None
    in
    let method_ =
      match Random.State.int rng 4 with
      | 0 -> Ba_align.Driver.Original
      | 1 -> Ba_align.Driver.Greedy
      | 2 -> Ba_align.Driver.Calder
      | _ -> Ba_align.Driver.Tsp Ba_align.Tsp_align.default
    in
    let model =
      match Random.State.int rng 4 with
      | 0 -> None
      | 1 -> Some Ba_machine.Model.alpha21164
      | 2 -> Some Ba_machine.Model.deep_pipeline
      | _ -> Some (Ba_machine.Model.ext_tsp ~window:512 ())
    in
    let id = Random.State.int rng 1_000_000 in
    let profile_mode =
      match Random.State.int rng 3 with
      | 0 -> None
      | 1 -> Some `Collected
      | _ -> Some `Static
    in
    return
      (Wire.Align
         { id; cfg; profile; options = { deadline_ms; method_; model; profile_mode } }))

let test_request_qcheck =
  QCheck2.Test.make ~count:200 ~name:"request encode/decode round-trips"
    request_gen (fun req ->
      match Wire.request_of_string (Wire.request_to_string req) with
      | Ok req' -> req = req'
      | Error _ -> false)

let test_request_decode_errors () =
  let expect what s pred =
    match Wire.request_of_string s with
    | Ok _ -> Alcotest.failf "%s accepted" what
    | Error e ->
        if not (pred e) then
          Alcotest.failf "%s: wrong error %s" what (Errors.to_string e)
  in
  expect "garbage" "@nope" (function Errors.Parse_error _ -> true | _ -> false);
  expect "missing id" {|{"verb":"stats"}|} (function
    | Errors.Parse_error _ -> true
    | _ -> false);
  expect "unknown verb" {|{"id":1,"verb":"frobnicate"}|} (function
    | Errors.Usage _ -> true
    | _ -> false);
  expect "missing cfg" {|{"id":1,"verb":"align"}|} (function
    | Errors.Parse_error _ -> true
    | _ -> false);
  expect "bad entry"
    {|{"id":1,"verb":"align","cfg":{"name":"f","entry":5,"blocks":[{"size":1,"term":{"kind":"exit"}}]},"profile":[[]]}|}
    (function Errors.Invalid_cfg _ -> true | _ -> false);
  expect "profile shape"
    {|{"id":1,"verb":"align","cfg":{"name":"f","entry":0,"blocks":[{"size":1,"term":{"kind":"exit"}}]},"profile":[[],[]]}|}
    (function Errors.Profile_mismatch _ -> true | _ -> false)

(* the block-count limit fires during decode, before anything big is
   built *)
let test_request_decode_errors_limited () =
  match
    Wire.request_of_string ~max_blocks:4
      {|{"id":1,"verb":"align","cfg":{"name":"f","entry":0,"blocks":[{"size":1,"term":{"kind":"exit"}},{"size":1,"term":{"kind":"exit"}},{"size":1,"term":{"kind":"exit"}},{"size":1,"term":{"kind":"exit"}},{"size":1,"term":{"kind":"exit"}}]},"profile":[[],[],[],[],[]]}|}
  with
  | Error (Errors.Invalid_cfg _) -> ()
  | Ok _ -> Alcotest.fail "oversized CFG accepted"
  | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)

let test_response_round_trip () =
  let payload =
    { Wire.layout = [| 0; 2; 1 |]; cost = 42; cached = true; warm = false;
      fallbacks = 1 }
  in
  (match
     Wire.response_of_string
       (Wire.response_to_string (Wire.Ok_layout { id = 7; payload }))
   with
  | Ok (Wire.C_ok { id = 7; payload = p }) ->
      Alcotest.(check bool) "payload preserved" true (p = payload)
  | _ -> Alcotest.fail "ok response did not round-trip");
  let e = Errors.Invalid_cfg { proc = None; name = Some "f"; reason = "r" } in
  match
    Wire.response_of_string
      (Wire.response_to_string (Wire.Error_response { id = Some 3; error = e }))
  with
  | Ok (Wire.C_error { id = Some 3; error }) ->
      Alcotest.(check string) "class" "invalid-cfg" error.Wire.eclass;
      Alcotest.(check int) "exit code" 5 error.Wire.eexit
  | _ -> Alcotest.fail "error response did not round-trip"

(* ---------------- cache ---------------- *)

let key i =
  {
    Cache.cfg_hash = Int64.of_int i;
    profile_hash = Int64.of_int (i * 7);
    model_hash = Cache.model_sketch Ba_machine.Model.default;
  }

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c (key 1) [| 0; 1 |] 10;
  Cache.add c (key 2) [| 1; 0 |] 20;
  ignore (Cache.find c (key 1));
  (* 2 is now least-recently-used and must be the victim *)
  Cache.add c (key 3) [| 0 |] 30;
  Alcotest.(check int) "capacity kept" 2 (Cache.length c);
  Alcotest.(check bool) "lru evicted" true (Cache.find c (key 2) = None);
  Alcotest.(check bool) "recent kept" true (Cache.find c (key 1) <> None)

let test_cache_copies () =
  let c = Cache.create ~capacity:4 in
  let order = [| 0; 1; 2 |] in
  Cache.add c (key 1) order 5;
  order.(0) <- 99;
  (match Cache.find c (key 1) with
  | Some (o, 5) ->
      Alcotest.(check int) "stored copy" 0 o.(0);
      o.(1) <- 99;
      let o2, _ = Option.get (Cache.find c (key 1)) in
      Alcotest.(check int) "returned copy" 1 o2.(1)
  | _ -> Alcotest.fail "entry lost")

let test_cache_drift_hint () =
  let c = Cache.create ~capacity:4 in
  let mh = Cache.model_sketch Ba_machine.Model.default in
  let k1 = { Cache.cfg_hash = 5L; profile_hash = 1L; model_hash = mh } in
  let k2 = { Cache.cfg_hash = 5L; profile_hash = 2L; model_hash = mh } in
  Cache.add c k1 [| 0; 1 |] 1;
  Cache.add c k2 [| 1; 0 |] 2;
  (match Cache.drift_hint c k2 with
  | Some o -> Alcotest.(check bool) "most recent layout" true (o = [| 1; 0 |])
  | None -> Alcotest.fail "no drift hint");
  Cache.remove c k2;
  (match Cache.drift_hint c k2 with
  | Some o -> Alcotest.(check bool) "repointed to survivor" true (o = [| 0; 1 |])
  | None -> Alcotest.fail "drift hint lost with a survivor present");
  (* a different model never sees this CFG's layouts *)
  let k_other =
    { k1 with Cache.model_hash = Cache.model_sketch Ba_machine.Model.deep_pipeline }
  in
  Alcotest.(check bool) "per-model index" true (Cache.drift_hint c k_other = None);
  Cache.remove c k1;
  Alcotest.(check bool) "empty: no hint" true (Cache.drift_hint c k1 = None)

let test_cache_persistence () =
  let path = Filename.temp_file "balign-cache" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Cache.create ~capacity:8 in
      Cache.add c (key 1) [| 0; 1; 2 |] 11;
      Cache.add c (key 2) [| 2; 1; 0 |] 22;
      (match Cache.save c path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" (Errors.to_string e));
      match Cache.load ~capacity:8 path with
      | Error e -> Alcotest.failf "load failed: %s" (Errors.to_string e)
      | Ok c' ->
          Alcotest.(check int) "entries back" 2 (Cache.length c');
          (match Cache.find c' (key 1) with
          | Some (o, 11) ->
              Alcotest.(check bool) "layout back" true (o = [| 0; 1; 2 |])
          | _ -> Alcotest.fail "entry 1 lost");
          (* malformed snapshots are typed errors, not crashes *)
          let oc = open_out path in
          output_string oc "{\"schema\":\"balign-cache-1\",\"entries\":[{}]}";
          close_out oc;
          (match Cache.load ~capacity:8 path with
          | Error (Errors.Io_error _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
          | Ok _ -> Alcotest.fail "malformed snapshot accepted");
          let oc = open_out path in
          output_string oc "not json";
          close_out oc;
          match Cache.load ~capacity:8 path with
          | Error (Errors.Io_error _) -> ()
          | Error e -> Alcotest.failf "wrong error: %s" (Errors.to_string e)
          | Ok _ -> Alcotest.fail "garbage accepted")

(* ---------------- end to end ---------------- *)

let subject seed =
  let rng = Random.State.make [| 0x5e7e; seed |] in
  let cfg = Synthetic.cfg rng ~n:16 in
  let profile = Synthetic.profile rng cfg ~invocations:10 ~max_steps:200 in
  (cfg, profile)

let align_req ~id cfg profile =
  Wire.Align { id; cfg; profile; options = Wire.default_options }

let recv_ok t what =
  match Driver.recv_response t with
  | Some (Ok (Wire.C_ok { payload; _ })) -> payload
  | Some (Ok (Wire.C_error { error; _ })) ->
      Alcotest.failf "%s: error %s (%s)" what error.Wire.eclass error.Wire.emessage
  | _ -> Alcotest.failf "%s: no ok response" what

let stop_clean t what expected =
  match Driver.stop t with
  | Ok r when List.mem r expected -> ()
  | Ok _ -> Alcotest.failf "%s: unexpected stop reason" what
  | Error e -> Alcotest.failf "%s: server crashed: %s" what (Printexc.to_string e)

let test_server_cache_hit_identical () =
  let cfg, profile = subject 1 in
  let t = Driver.start () in
  Driver.send t (align_req ~id:1 cfg profile);
  let first = recv_ok t "first" in
  Alcotest.(check bool) "first is a miss" false first.Wire.cached;
  Driver.send t (align_req ~id:2 cfg profile);
  let second = recv_ok t "second" in
  Alcotest.(check bool) "second is a hit" true second.Wire.cached;
  Alcotest.(check bool) "bit-identical layout" true
    (first.Wire.layout = second.Wire.layout);
  Alcotest.(check int) "same certified cost" first.Wire.cost second.Wire.cost;
  stop_clean t "eof" [ Server.Clean_eof ]

let test_server_warm_start_on_drift () =
  let cfg, profile = subject 2 in
  let rng = Random.State.make [| 0xd41f7 |] in
  let drifted = Synthetic.profile rng cfg ~invocations:10 ~max_steps:200 in
  let t = Driver.start () in
  Driver.send t (align_req ~id:1 cfg profile);
  ignore (recv_ok t "first");
  Driver.send t (align_req ~id:2 cfg drifted);
  let second = recv_ok t "drift" in
  Alcotest.(check bool) "drift is a miss" false second.Wire.cached;
  Alcotest.(check bool) "drift warm-starts" true second.Wire.warm;
  stop_clean t "eof" [ Server.Clean_eof ]

let test_server_survives_fault_storm () =
  let cfg, profile = subject 3 in
  let t = Driver.start () in
  let payload = Wire.request_to_string (align_req ~id:9 cfg profile) in
  (* every framing-safe fault kind in a row, then a valid request must
     still be served *)
  List.iter
    (fun k ->
      match Ba_harness.Faults.protocol_expectation k with
      | `Ends_stream -> ()
      | `Error_response | `Ok_response -> (
          Driver.send_raw t
            (Ba_harness.Faults.inject_protocol ~max_frame_bytes:(4 * 1024 * 1024)
               ~max_blocks:10_000 ~seed:1 k payload);
          match Driver.recv_response t with
          | Some (Ok (Wire.C_error _)) | Some (Ok (Wire.C_ok _)) -> ()
          | _ -> Alcotest.failf "%s: no response" (Ba_harness.Faults.protocol_name k)))
    Ba_harness.Faults.all_protocol;
  Driver.send t (align_req ~id:10 cfg profile);
  ignore (recv_ok t "after the storm");
  stop_clean t "eof" [ Server.Clean_eof ]

let test_server_shutdown_verb () =
  let t = Driver.start () in
  Driver.send t (Wire.Shutdown { id = 1 });
  (match Driver.recv_response t with
  | Some (Ok (Wire.C_shutdown { id = 1 })) -> ()
  | _ -> Alcotest.fail "no shutdown ack");
  stop_clean t "shutdown" [ Server.Shutdown_verb ]

let test_server_drain () =
  let cfg, profile = subject 4 in
  let t = Driver.start () in
  Driver.send t (align_req ~id:1 cfg profile);
  ignore (recv_ok t "before drain");
  (* flip the drain flag (the in-process stand-in for SIGTERM), then
     offer one more request.  The flag is only polled before blocking
     reads, so depending on the interleaving the server either answers
     the buffered frame first or stops straight away — but it must stop
     with Drained either way, never hang on the pipe and never die
     mid-request (the deterministic SIGTERM path is test/serve.t's) *)
  Driver.drain t;
  Driver.send t (align_req ~id:2 cfg profile);
  (match Driver.recv_response t with
  | Some (Ok (Wire.C_ok _)) | None -> ()
  | Some (Ok _) -> Alcotest.fail "unexpected response during drain"
  | Some (Error m) -> Alcotest.failf "undecodable response: %s" m);
  stop_clean t "drain" [ Server.Drained ]

let test_server_client_gone () =
  (* the client hangs up before reading its response: the write fails
     with EPIPE (SIGPIPE ignored) and must end only this conversation —
     the loop returns Client_gone instead of the process dying *)
  let cfg, profile = subject 6 in
  let t = Driver.start () in
  Driver.close_output t;
  Driver.send t (align_req ~id:1 cfg profile);
  stop_clean t "client gone" [ Server.Client_gone ]

let test_server_poisoned_cache_rejected () =
  let cfg, profile = subject 5 in
  let path = Filename.temp_file "balign-poison" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* persist a poisoned entry under the exact key of the request:
         a "layout" that is not even a permutation *)
      let c = Cache.create ~capacity:8 in
      let k = Cache.key_of cfg profile ~model:Ba_machine.Model.default in
      Cache.add c k (Array.make (Cfg.n_blocks cfg) 0) 1;
      (match Cache.save c path with
      | Ok () -> ()
      | Error e -> Alcotest.failf "save failed: %s" (Errors.to_string e));
      let config = { Server.default with Server.cache_file = Some path } in
      let t = Driver.start ~config ()
      in
      Driver.send t (align_req ~id:1 cfg profile);
      let p = recv_ok t "poisoned" in
      (* the poisoned layout must not be served: certification rejects
         it, the entry is evicted, and a fresh solve answers *)
      Alcotest.(check bool) "not served from cache" false p.Wire.cached;
      Alcotest.(check bool) "layout is a real permutation" true
        (Layout.is_valid cfg p.Wire.layout);
      stop_clean t "eof" [ Server.Clean_eof ])

let () =
  Alcotest.run "serve"
    [
      ( "wire",
        [
          Alcotest.test_case "frame round trip" `Quick test_frame_round_trip;
          Alcotest.test_case "frame faults" `Quick test_frame_faults;
          Alcotest.test_case "large frames across many reads" `Quick
            test_frame_large;
          QCheck_alcotest.to_alcotest test_frame_qcheck;
          QCheck_alcotest.to_alcotest test_request_qcheck;
          Alcotest.test_case "decode errors are typed" `Quick
            test_request_decode_errors;
          Alcotest.test_case "max_blocks limit" `Quick
            test_request_decode_errors_limited;
          Alcotest.test_case "response round trip" `Quick test_response_round_trip;
        ] );
      ( "cache",
        [
          Alcotest.test_case "lru eviction" `Quick test_cache_lru;
          Alcotest.test_case "defensive copies" `Quick test_cache_copies;
          Alcotest.test_case "drift hint" `Quick test_cache_drift_hint;
          Alcotest.test_case "persistence round trip" `Quick
            test_cache_persistence;
        ] );
      ( "server",
        [
          Alcotest.test_case "identical request is a bit-identical hit" `Quick
            test_server_cache_hit_identical;
          Alcotest.test_case "profile drift warm-starts" `Quick
            test_server_warm_start_on_drift;
          Alcotest.test_case "fault storm survived" `Quick
            test_server_survives_fault_storm;
          Alcotest.test_case "shutdown verb" `Quick test_server_shutdown_verb;
          Alcotest.test_case "drain stops cleanly, never mid-request" `Quick
            test_server_drain;
          Alcotest.test_case "client hangs up before reading" `Quick
            test_server_client_gone;
          Alcotest.test_case "poisoned cache entry rejected" `Quick
            test_server_poisoned_cache_rejected;
        ] );
    ]
