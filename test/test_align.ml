(* Tests for the core alignment library: the DTSP reduction, the greedy
   and TSP aligners, evaluation, bounds, and the whole-program driver.

   The central identities checked here:
   - DTSP walk cost of a layout = analytic penalty (train = test);
   - analytic penalty = trace-simulated penalty when evaluated on the
     profiled execution itself;
   - held-karp bound <= exact optimum <= any aligner's penalty. *)

open Ba_cfg
open Ba_align
module Profile = Ba_profile.Profile

let p = Ba_machine.Model.alpha21164
let rng = Random.State.make [| 7 |]

let random_setup ?(n = 8) ?(invocations = 20) ?(seed = 1234) () =
  let g = Ba_testutil.Gen.cfg rng ~n in
  let prof = Ba_testutil.Gen.profile_of ~seed g ~invocations ~max_steps:60 in
  (g, Profile.proc prof 0, prof)

let random_order g st =
  let n = Cfg.n_blocks g in
  let o = Array.init n (fun i -> i) in
  for i = n - 1 downto 2 do
    let j = 1 + Random.State.int st i in
    let t = o.(i) in
    o.(i) <- o.(j);
    o.(j) <- t
  done;
  o

(* ---------------- reduction ---------------- *)

let test_reduction_cost_matches_evaluate () =
  (* THE identity of Section 2.2: walk cost = analytic penalty *)
  for trial = 0 to 19 do
    let g, prof, _ = random_setup ~n:(3 + (trial mod 8)) ~seed:(trial * 7) () in
    let inst = Reduction.build p g ~profile:prof in
    let st = Random.State.make [| trial |] in
    for _ = 1 to 5 do
      let order = random_order g st in
      Alcotest.(check int)
        (Printf.sprintf "walk cost = penalty (trial %d)" trial)
        (Evaluate.proc_penalty p g ~order ~train:prof ~test:prof)
        (Reduction.layout_cost inst order)
    done
  done

let test_reduction_roundtrip () =
  let g, prof, _ = random_setup () in
  let inst = Reduction.build p g ~profile:prof in
  let order = random_order g (Random.State.make [| 3 |]) in
  let back = Reduction.order_of_tour inst (Reduction.tour_of_order inst order) in
  Alcotest.(check (array int)) "order -> tour -> order" order back

let test_reduction_dummy_edges () =
  let g, prof, _ = random_setup () in
  let inst = Reduction.build p g ~profile:prof in
  let d = inst.Reduction.dtsp in
  Alcotest.(check int) "dummy -> entry free" 0
    (Ba_tsp.Dtsp.cost d inst.Reduction.dummy g.Cfg.entry);
  Alcotest.(check bool) "dummy -> others forbidden" true
    (Array.for_all
       (fun j ->
         j = g.Cfg.entry || j = inst.Reduction.dummy
         || Ba_tsp.Dtsp.cost d inst.Reduction.dummy j = inst.Reduction.forbid)
       (Array.init d.Ba_tsp.Dtsp.n (fun i -> i)))

(* ---------------- greedy aligners ---------------- *)

let test_greedy_layout_valid () =
  for trial = 0 to 19 do
    let g, prof, _ = random_setup ~n:(2 + (trial mod 12)) ~seed:trial () in
    let o = Greedy.align g ~profile:prof in
    Alcotest.(check bool)
      (Printf.sprintf "greedy valid (trial %d)" trial)
      true (Layout.is_valid g o)
  done

let test_calder_layout_valid () =
  for trial = 0 to 19 do
    let g, prof, _ = random_setup ~n:(2 + (trial mod 12)) ~seed:(trial + 100) () in
    let o = Calder.align p g ~profile:prof in
    Alcotest.(check bool)
      (Printf.sprintf "calder valid (trial %d)" trial)
      true (Layout.is_valid g o);
    let oe = Calder.align_exhaustive ~top_edges:5 ~max_blocks:5 p g ~profile:prof in
    Alcotest.(check bool)
      (Printf.sprintf "calder-exhaustive valid (trial %d)" trial)
      true (Layout.is_valid g oe)
  done

let test_greedy_chains_hot_path () =
  (* entry 0 branches to 1 (hot) and 2 (cold); 1,2 -> 3 exit.
     greedy must place 1 right after 0 *)
  let g =
    Cfg.make ~name:"hot" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Branch { t = 1; f = 2 });
        Block.make ~id:1 ~size:1 (Block.Goto 3);
        Block.make ~id:2 ~size:1 (Block.Goto 3);
        Block.make ~id:3 ~size:1 Block.Exit;
      |]
  in
  let prof =
    Profile.of_assoc ~n_blocks:4 [ (0, 1, 90); (0, 2, 10); (1, 3, 90); (2, 3, 10) ]
  in
  let o = Greedy.align g ~profile:prof in
  Alcotest.(check int) "hot follower placed next" 1 o.(1);
  Alcotest.(check int) "then its goto target" 3 o.(2)

let test_calder_ignores_multiway_edges () =
  (* a multiway's cost is layout independent: calder must not waste the
     slot after block 0 on its hottest multiway target *)
  let g =
    Cfg.make ~name:"mw" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Multiway [| 1; 2 |]);
        Block.make ~id:1 ~size:1 (Block.Goto 3);
        Block.make ~id:2 ~size:1 (Block.Goto 3);
        Block.make ~id:3 ~size:1 Block.Exit;
      |]
  in
  let prof =
    Profile.of_assoc ~n_blocks:4 [ (0, 1, 99); (0, 2, 1); (1, 3, 99); (2, 3, 1) ]
  in
  Alcotest.(check int) "savings of multiway edge" 0
    (Calder.savings p g ~profile:prof 0 1);
  Alcotest.(check bool) "goto edge has positive savings" true
    (Calder.savings p g ~profile:prof 1 3 > 0)

(* ---------------- tsp aligner ---------------- *)

let test_tsp_align_small_is_exact_optimum () =
  for trial = 0 to 14 do
    let g, prof, _ = random_setup ~n:(3 + (trial mod 9)) ~seed:(trial + 50) () in
    let r = Tsp_align.align p g ~profile:prof in
    Alcotest.(check bool) "layout valid" true (Layout.is_valid g r.Tsp_align.order);
    Alcotest.(check bool) "solved exactly" true r.Tsp_align.exact;
    (match Bounds.exact p g ~profile:prof with
    | Some opt ->
        Alcotest.(check int)
          (Printf.sprintf "tsp = optimum (trial %d)" trial)
          opt r.Tsp_align.cost
    | None -> Alcotest.fail "instance should be small enough");
    (* reported cost is the layout's actual penalty *)
    Alcotest.(check int) "cost consistent"
      (Evaluate.proc_penalty p g ~order:r.Tsp_align.order ~train:prof ~test:prof)
      r.Tsp_align.cost
  done

let test_tsp_align_beats_or_ties_everyone () =
  for trial = 0 to 9 do
    let g, prof, _ = random_setup ~n:10 ~seed:(trial + 500) ~invocations:30 () in
    let tsp = (Tsp_align.align p g ~profile:prof).Tsp_align.cost in
    let penalty o = Evaluate.proc_penalty p g ~order:o ~train:prof ~test:prof in
    let orig = penalty (Layout.identity g) in
    let greedy = penalty (Greedy.align g ~profile:prof) in
    let calder = penalty (Calder.align p g ~profile:prof) in
    Alcotest.(check bool)
      (Printf.sprintf "tsp %d <= greedy %d (trial %d)" tsp greedy trial)
      true (tsp <= greedy);
    Alcotest.(check bool) "tsp <= calder" true (tsp <= calder);
    Alcotest.(check bool) "tsp <= original" true (tsp <= orig)
  done

let test_tsp_align_heuristic_path () =
  (* force the heuristic solver (exact_below = 0) and check validity and
     that it is no worse than greedy *)
  let g, prof, _ = random_setup ~n:14 ~seed:999 ~invocations:40 () in
  let config = { Tsp_align.default with exact_below = 0 } in
  let r = Tsp_align.align ~config p g ~profile:prof in
  Alcotest.(check bool) "valid" true (Layout.is_valid g r.Tsp_align.order);
  Alcotest.(check bool) "heuristic" false r.Tsp_align.exact;
  let greedy =
    Evaluate.proc_penalty p g ~order:(Greedy.align g ~profile:prof) ~train:prof
      ~test:prof
  in
  Alcotest.(check bool)
    (Printf.sprintf "heuristic tsp %d <= greedy %d" r.Tsp_align.cost greedy)
    true
    (r.Tsp_align.cost <= greedy)

(* ---------------- bounds ---------------- *)

let test_bounds_bracket () =
  for trial = 0 to 9 do
    let g, prof, _ = random_setup ~n:(4 + trial) ~seed:(trial + 300) () in
    let tsp = (Tsp_align.align p g ~profile:prof).Tsp_align.cost in
    let hk = Bounds.held_karp p g ~profile:prof ~upper:tsp in
    let ap = Bounds.ap p g ~profile:prof in
    Alcotest.(check bool)
      (Printf.sprintf "hk %d <= tsp %d (trial %d)" hk tsp trial)
      true (hk <= tsp);
    Alcotest.(check bool)
      (Printf.sprintf "ap %d <= tsp %d" ap tsp)
      true (ap <= tsp)
  done

(* ---------------- cross-validation mechanics ---------------- *)

let test_cross_validation_differs () =
  let g = Ba_testutil.Gen.cfg rng ~n:10 in
  let prof_a = Ba_testutil.Gen.profile_of ~seed:1 g ~invocations:30 ~max_steps:60 in
  let prof_b = Ba_testutil.Gen.profile_of ~seed:2 g ~invocations:30 ~max_steps:60 in
  let a = Profile.proc prof_a 0 and b = Profile.proc prof_b 0 in
  let order = Greedy.align g ~profile:a in
  let self = Evaluate.proc_penalty p g ~order ~train:a ~test:a in
  let cross = Evaluate.proc_penalty p g ~order ~train:a ~test:b in
  (* both are well defined; self-trained is measured on its own counts *)
  Alcotest.(check bool) "penalties non-negative" true (self >= 0 && cross >= 0);
  (* training on b and testing on b should beat training on a, testing b
     at least weakly for the TSP aligner (it optimizes exactly that) *)
  let order_b = (Tsp_align.align p g ~profile:b).Tsp_align.order in
  let tuned = Evaluate.proc_penalty p g ~order:order_b ~train:b ~test:b in
  let crossed =
    Evaluate.proc_penalty p g
      ~order:(Tsp_align.align p g ~profile:a).Tsp_align.order
      ~train:a ~test:b
  in
  Alcotest.(check bool)
    (Printf.sprintf "self-tuned %d <= cross-trained %d" tuned crossed)
    true (tuned <= crossed)

(* ---------------- driver: analytic = simulated ---------------- *)

let test_driver_analytic_equals_simulated () =
  List.iter
    (fun m ->
      let g = Ba_testutil.Gen.cfg rng ~n:9 in
      let run = Ba_testutil.Gen.trace_runner ~seed:77 g ~invocations:25 ~max_steps:50 in
      let prof =
        Ba_profile.Collect.profile_of_run ~n_blocks:[| Cfg.n_blocks g |] run
      in
      let a = Driver.align m p [| g |] ~train:prof in
      (match Driver.check a with Ok () -> () | Error e -> Alcotest.fail e);
      let analytic = Driver.analytic_penalty p a ~test:prof in
      let sim = Driver.simulate p a ~run in
      Alcotest.(check int)
        (Printf.sprintf "analytic = simulated (%s)" (Driver.method_name m))
        analytic sim.Ba_machine.Cycles.penalty_cycles)
    [
      Driver.Original;
      Driver.Greedy;
      Driver.Calder;
      Driver.Calder_exhaustive;
      Driver.Tsp Tsp_align.default;
    ]

let test_driver_multiproc () =
  let g1 = Ba_testutil.Gen.cfg rng ~n:6 and g2 = Ba_testutil.Gen.cfg rng ~n:4 in
  let run sink =
    Ba_testutil.Gen.walk (Random.State.make [| 5 |]) g1 ~max_steps:30 sink;
    (* second procedure: relabel events for fid 1 *)
    let relabel = function
      | Trace.Enter 0 -> sink (Trace.Enter 1)
      | e -> sink e
    in
    Ba_testutil.Gen.walk (Random.State.make [| 6 |]) g2 ~max_steps:30 relabel
  in
  let prof =
    Ba_profile.Collect.profile_of_run
      ~n_blocks:[| Cfg.n_blocks g1; Cfg.n_blocks g2 |]
      run
  in
  let a = Driver.align Driver.Greedy p [| g1; g2 |] ~train:prof in
  let analytic = Driver.analytic_penalty p a ~test:prof in
  let sim = Driver.simulate p a ~run in
  Alcotest.(check int) "two procedures" analytic
    sim.Ba_machine.Cycles.penalty_cycles;
  Alcotest.(check int) "two calls" 2 sim.Ba_machine.Cycles.calls

(* ---------------- BTFNT evaluation ---------------- *)

let test_btfnt_loop_back_edge_predicted () =
  (* layout [0; 1]: the self-loop branch at 0 is backward -> predicted
     taken; staying in the loop costs only the misfetch *)
  let g =
    Cfg.make ~name:"loop" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Branch { t = 0; f = 1 });
        Block.make ~id:1 ~size:1 Block.Exit;
      |]
  in
  let prof = Profile.of_assoc ~n_blocks:2 [ (0, 0, 100); (0, 1, 1) ] in
  let r, _ = Evaluate.realize p g ~order:[| 0; 1 |] ~train:prof in
  (* backward taken arm predicted: 100 taken × misfetch(1) + 1 exit
     fall-through mispredicted (predicted taken) × 5 *)
  Alcotest.(check int) "loop penalty" 105
    (Btfnt.proc_penalty p.Ba_machine.Model.penalties g ~realized:r ~test:prof)

let test_btfnt_forward_branch_predicted_not_taken () =
  (* diamond, forward branch: fall arm predicted; taken transfers
     mispredict *)
  let g =
    Cfg.make ~name:"fwd" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Branch { t = 2; f = 1 });
        Block.make ~id:1 ~size:1 (Block.Goto 3);
        Block.make ~id:2 ~size:1 (Block.Goto 3);
        Block.make ~id:3 ~size:1 Block.Exit;
      |]
  in
  let prof =
    Profile.of_assoc ~n_blocks:4 [ (0, 1, 10); (0, 2, 90); (1, 3, 10); (2, 3, 90) ]
  in
  let r, _ = Evaluate.realize p g ~order:[| 0; 1; 2; 3 |] ~train:prof in
  (* realized: block 0 has layout succ 1 (= fall arm in CFG): predicted
     successor from profile is 2, so realize keeps taken=2, fall=1.
     BTFNT: 2 is forward -> predict fall (1).
     transfers: 0->1: fall predicted: 0 ; 0->2: mispredict: 90·5
     block 1: jump to 3 (succ is 2): 10·2 ; block 2: falls to 3: 0 *)
  Alcotest.(check int) "forward penalty" 470
    (Btfnt.proc_penalty p.Ba_machine.Model.penalties g ~realized:r ~test:prof)

let test_btfnt_multiway_always_mispredicts () =
  let g =
    Cfg.make ~name:"mw" ~entry:0
      [|
        Block.make ~id:0 ~size:1 (Block.Multiway [| 1; 2 |]);
        Block.make ~id:1 ~size:1 Block.Exit;
        Block.make ~id:2 ~size:1 Block.Exit;
      |]
  in
  let prof = Profile.of_assoc ~n_blocks:3 [ (0, 1, 7); (0, 2, 3) ] in
  let r, _ = Evaluate.realize p g ~order:[| 0; 1; 2 |] ~train:prof in
  Alcotest.(check int) "all multiway mispredict" 30
    (Btfnt.proc_penalty p.Ba_machine.Model.penalties g ~realized:r ~test:prof)

(* ---------------- procedure ordering ---------------- *)

let test_proc_order_permutation () =
  let calls = [ (0, 1, 100); (0, 2, 10); (1, 3, 50); (2, 4, 5) ] in
  let o = Proc_order.order ~n_procs:6 ~entry:0 calls in
  Alcotest.(check int) "length" 6 (Array.length o);
  let seen = Array.make 6 false in
  Array.iter (fun p -> seen.(p) <- true) o;
  Alcotest.(check bool) "permutation" true (Array.for_all Fun.id seen);
  (* the uncalled procedure 5 lands after the connected component *)
  Alcotest.(check int) "orphan last" 5 o.(5)

let test_proc_order_hot_pair_adjacent () =
  (* 0 and 1 call each other overwhelmingly: they must be neighbours *)
  let calls = [ (0, 1, 1000); (0, 2, 1); (2, 3, 1) ] in
  let o = Proc_order.order ~n_procs:4 ~entry:0 calls in
  let pos = Array.make 4 0 in
  Array.iteri (fun i p -> pos.(p) <- i) o;
  Alcotest.(check int) "hot pair adjacent" 1 (abs (pos.(0) - pos.(1)))

let test_proc_order_by_weight () =
  let calls = [ (0, 1, 5); (0, 2, 100); (0, 3, 20) ] in
  let o = Proc_order.by_weight ~n_procs:4 ~entry:0 calls in
  Alcotest.(check (array int)) "entry then hottest" [| 0; 2; 3; 1 |] o

let test_proc_order_placement_reduces_conflicts () =
  (* three procedures of exactly half the cache each; A and C alternate
     in the trace.  Order A B C puts A and C on the same cache lines
     (conflict on every visit); order A C B keeps them disjoint. *)
  let half = 1024 (* instructions; cache holds 2048 *) in
  let mk name =
    Cfg.make ~name ~entry:0 [| Block.make ~id:0 ~size:(half - 1) Block.Exit |]
  in
  let cfgs = [| mk "A"; mk "B"; mk "C" |] in
  let realize g =
    let r, _ =
      Evaluate.realize p g ~order:[| 0 |]
        ~train:(Ba_profile.Profile.of_assoc ~n_blocks:1 [])
    in
    r
  in
  let realized = Array.map realize cfgs in
  let misses proc_order =
    let addr =
      Ba_machine.Addr.build ?proc_order (Array.map2 (fun g r -> (g, r)) cfgs realized)
    in
    let cache = Ba_machine.Icache.create Ba_machine.Icache.alpha_l1 in
    let m = ref 0 in
    for _ = 1 to 20 do
      m :=
        !m
        + Ba_machine.Icache.touch_range cache
            ~addr:addr.Ba_machine.Addr.procs.(0).Ba_machine.Addr.block_addr.(0)
            ~ninstr:half;
      m :=
        !m
        + Ba_machine.Icache.touch_range cache
            ~addr:addr.Ba_machine.Addr.procs.(2).Ba_machine.Addr.block_addr.(0)
            ~ninstr:half
    done;
    !m
  in
  let abc = misses None in
  let acb = misses (Some [| 0; 2; 1 |]) in
  Alcotest.(check bool)
    (Printf.sprintf "A-C-B (%d misses) beats A-B-C (%d misses)" acb abc)
    true
    (acb * 4 < abc)

(* ---------------- qcheck properties ---------------- *)

let gen_spec =
  QCheck2.Gen.(
    let* n = int_range 2 12 in
    let* seed = int_bound 100_000 in
    return (n, seed))

let setup_of (n, seed) =
  let st = Random.State.make [| seed |] in
  let g = Ba_testutil.Gen.cfg st ~n in
  let prof = Ba_testutil.Gen.profile_of ~seed g ~invocations:15 ~max_steps:40 in
  (g, Profile.proc prof 0)

let prop_walk_cost_identity =
  QCheck2.Test.make ~count:40 ~name:"dtsp walk cost = analytic penalty" gen_spec
    (fun spec ->
      let g, prof = setup_of spec in
      let inst = Reduction.build p g ~profile:prof in
      let o = Greedy.align g ~profile:prof in
      Reduction.layout_cost inst o
      = Evaluate.proc_penalty p g ~order:o ~train:prof ~test:prof)

let prop_aligners_never_invalid =
  QCheck2.Test.make ~count:40 ~name:"all aligners produce valid layouts" gen_spec
    (fun spec ->
      let g, prof = setup_of spec in
      Layout.is_valid g (Greedy.align g ~profile:prof)
      && Layout.is_valid g (Calder.align p g ~profile:prof)
      && Layout.is_valid g (Tsp_align.align p g ~profile:prof).Tsp_align.order)

let prop_tsp_no_worse_than_original =
  QCheck2.Test.make ~count:25 ~name:"tsp penalty <= original penalty" gen_spec
    (fun spec ->
      let g, prof = setup_of spec in
      let tsp = (Tsp_align.align p g ~profile:prof).Tsp_align.cost in
      tsp
      <= Evaluate.proc_penalty p g ~order:(Layout.identity g) ~train:prof
           ~test:prof)

let () =
  Alcotest.run "ba_align"
    [
      ( "reduction",
        [
          Alcotest.test_case "walk cost = analytic penalty" `Quick
            test_reduction_cost_matches_evaluate;
          Alcotest.test_case "order/tour roundtrip" `Quick test_reduction_roundtrip;
          Alcotest.test_case "dummy edges" `Quick test_reduction_dummy_edges;
        ] );
      ( "greedy",
        [
          Alcotest.test_case "layouts valid" `Quick test_greedy_layout_valid;
          Alcotest.test_case "calder layouts valid" `Quick test_calder_layout_valid;
          Alcotest.test_case "chains hot path" `Quick test_greedy_chains_hot_path;
          Alcotest.test_case "calder ignores multiway edges" `Quick
            test_calder_ignores_multiway_edges;
        ] );
      ( "tsp-align",
        [
          Alcotest.test_case "small instances solved optimally" `Quick
            test_tsp_align_small_is_exact_optimum;
          Alcotest.test_case "no worse than greedy/calder/original" `Quick
            test_tsp_align_beats_or_ties_everyone;
          Alcotest.test_case "heuristic path" `Quick test_tsp_align_heuristic_path;
        ] );
      ("bounds", [ Alcotest.test_case "bracket" `Quick test_bounds_bracket ]);
      ( "cross-validation",
        [ Alcotest.test_case "mechanics" `Quick test_cross_validation_differs ] );
      ( "driver",
        [
          Alcotest.test_case "analytic = simulated penalty" `Quick
            test_driver_analytic_equals_simulated;
          Alcotest.test_case "multi-procedure programs" `Quick test_driver_multiproc;
        ] );
      ( "btfnt",
        [
          Alcotest.test_case "back edge predicted taken" `Quick
            test_btfnt_loop_back_edge_predicted;
          Alcotest.test_case "forward predicted not-taken" `Quick
            test_btfnt_forward_branch_predicted_not_taken;
          Alcotest.test_case "multiway mispredicts" `Quick
            test_btfnt_multiway_always_mispredicts;
        ] );
      ( "proc-order",
        [
          Alcotest.test_case "permutation" `Quick test_proc_order_permutation;
          Alcotest.test_case "hot pair adjacent" `Quick
            test_proc_order_hot_pair_adjacent;
          Alcotest.test_case "by weight" `Quick test_proc_order_by_weight;
          Alcotest.test_case "placement reduces conflicts" `Quick
            test_proc_order_placement_reduces_conflicts;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_walk_cost_identity;
          QCheck_alcotest.to_alcotest prop_aligners_never_invalid;
          QCheck_alcotest.to_alcotest prop_tsp_no_worse_than_original;
        ] );
    ]
