(* Tests for the CFG substrate: blocks, graphs, layouts, traces. *)

open Ba_cfg

(* A diamond with a loop:
     0 -> 1 (t) / 2 (f);  1 -> 3;  2 -> 3;  3 -> 0 (t) / 4 (f); 4 exit *)
let diamond () =
  Cfg.make ~name:"diamond" ~entry:0
    [|
      Block.make ~id:0 ~size:4 (Block.Branch { t = 1; f = 2 });
      Block.make ~id:1 ~size:2 (Block.Goto 3);
      Block.make ~id:2 ~size:7 (Block.Goto 3);
      Block.make ~id:3 ~size:1 (Block.Branch { t = 0; f = 4 });
      Block.make ~id:4 ~size:3 Block.Exit;
    |]

(* ---------------- blocks ---------------- *)

let test_block_normalization () =
  let b = Block.make ~id:0 ~size:1 (Block.Branch { t = 2; f = 2 }) in
  Alcotest.(check bool) "degenerate branch becomes goto" true
    (match b.Block.term with Block.Goto 2 -> true | _ -> false);
  let m = Block.make ~id:0 ~size:1 (Block.Multiway [| 5 |]) in
  Alcotest.(check bool) "singleton multiway becomes goto" true
    (match m.Block.term with Block.Goto 5 -> true | _ -> false);
  let e = Block.make ~id:0 ~size:1 (Block.Multiway [||]) in
  Alcotest.(check bool) "empty multiway becomes exit" true
    (match e.Block.term with Block.Exit -> true | _ -> false)

let test_block_negative_size () =
  Alcotest.check_raises "negative size" (Invalid_argument "Block.make: negative size")
    (fun () -> ignore (Block.make ~id:0 ~size:(-1) Block.Exit))

let test_block_successors () =
  let b = Block.make ~id:0 ~size:0 (Block.Multiway [| 3; 1; 3; 2 |]) in
  Alcotest.(check (list int)) "successors keep duplicates" [ 3; 1; 3; 2 ]
    (Block.successors b);
  Alcotest.(check (list int)) "distinct sorted" [ 1; 2; 3 ]
    (Block.distinct_successors b);
  Alcotest.(check bool) "has 3" true (Block.has_successor b 3);
  Alcotest.(check bool) "no 0" false (Block.has_successor b 0)

let test_block_predicates () =
  let exit = Block.make ~id:0 ~size:0 Block.Exit in
  let cond = Block.make ~id:0 ~size:0 (Block.Branch { t = 1; f = 2 }) in
  Alcotest.(check bool) "exit not cti" false (Block.is_cti exit);
  Alcotest.(check bool) "cond is cti" true (Block.is_cti cond);
  Alcotest.(check bool) "cond is conditional" true (Block.is_conditional cond);
  Alcotest.(check bool) "cond not multiway" false (Block.is_multiway cond)

(* ---------------- cfg ---------------- *)

let test_cfg_stats () =
  let g = diamond () in
  Alcotest.(check int) "blocks" 5 (Cfg.n_blocks g);
  Alcotest.(check int) "branch sites" 4 (Cfg.n_branch_sites g);
  Alcotest.(check int) "edges" 6 (Cfg.n_edges g);
  Alcotest.(check int) "total size" 17 (Cfg.total_size g);
  Alcotest.(check int) "reachable" 5 (Cfg.n_reachable g)

let test_cfg_rejects_bad () =
  Alcotest.(check bool) "successor out of range" true
    (try
       ignore
         (Cfg.make ~name:"bad" ~entry:0
            [| Block.make ~id:0 ~size:0 (Block.Goto 7) |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "misnumbered ids" true
    (try
       ignore
         (Cfg.make ~name:"bad" ~entry:0
            [|
              Block.make ~id:1 ~size:0 Block.Exit;
              Block.make ~id:0 ~size:0 Block.Exit;
            |]);
       false
     with Invalid_argument _ -> true)

let test_cfg_unreachable () =
  let g =
    Cfg.make ~name:"island" ~entry:0
      [|
        Block.make ~id:0 ~size:0 Block.Exit;
        Block.make ~id:1 ~size:0 (Block.Goto 0);
      |]
  in
  Alcotest.(check int) "one reachable" 1 (Cfg.n_reachable g)

(* structural_hash is the serve cache key: it must be canonical (names
   and Multiway successor order do not matter) yet sensitive to every
   structural detail (sizes, entry, terminator shapes, branch arms). *)
let test_structural_hash () =
  let blocks () =
    [|
      Block.make ~id:0 ~size:4 (Block.Branch { t = 1; f = 2 });
      Block.make ~id:1 ~size:2 (Block.Goto 3);
      Block.make ~id:2 ~size:7 (Block.Goto 3);
      Block.make ~id:3 ~size:1 (Block.Multiway [| 4; 0; 4 |]);
      Block.make ~id:4 ~size:3 Block.Exit;
    |]
  in
  let h g = Cfg.structural_hash g in
  let base = h (Cfg.make ~name:"a" ~entry:0 (blocks ())) in
  Alcotest.(check bool) "name-independent" true
    (base = h (Cfg.make ~name:"completely-different" ~entry:0 (blocks ())));
  let reordered = blocks () in
  reordered.(3) <- Block.make ~id:3 ~size:1 (Block.Multiway [| 0; 4 |]);
  Alcotest.(check bool) "multiway order and duplicates canonicalized" true
    (base = h (Cfg.make ~name:"a" ~entry:0 reordered));
  let resized = blocks () in
  resized.(2) <- Block.make ~id:2 ~size:8 (Block.Goto 3);
  Alcotest.(check bool) "size-sensitive" false
    (base = h (Cfg.make ~name:"a" ~entry:0 resized));
  let retargeted = blocks () in
  retargeted.(1) <- Block.make ~id:1 ~size:2 (Block.Goto 4);
  Alcotest.(check bool) "edge-sensitive" false
    (base = h (Cfg.make ~name:"a" ~entry:0 retargeted));
  let swapped = blocks () in
  swapped.(0) <- Block.make ~id:0 ~size:4 (Block.Branch { t = 2; f = 1 });
  Alcotest.(check bool) "branch arms are roles, not a set" false
    (base = h (Cfg.make ~name:"a" ~entry:0 swapped));
  (* entry sensitivity needs a CFG where another entry is legal *)
  let ring e =
    Cfg.make ~name:"ring" ~entry:e
      [|
        Block.make ~id:0 ~size:1 (Block.Branch { t = 1; f = 2 });
        Block.make ~id:1 ~size:1 (Block.Branch { t = 2; f = 0 });
        Block.make ~id:2 ~size:1 Block.Exit;
      |]
  in
  Alcotest.(check bool) "entry-sensitive" false
    (h (ring 0) = h (ring 1))

(* ---------------- layout ---------------- *)

let test_layout_identity_valid () =
  let g = diamond () in
  let o = Layout.identity g in
  Alcotest.(check bool) "identity valid" true (Layout.is_valid g o)

let test_layout_validity_checks () =
  let g = diamond () in
  Alcotest.(check bool) "entry must be first" false
    (Layout.is_valid g [| 1; 0; 2; 3; 4 |]);
  Alcotest.(check bool) "must be permutation" false
    (Layout.is_valid g [| 0; 1; 1; 3; 4 |]);
  Alcotest.(check bool) "must be complete" false (Layout.is_valid g [| 0; 1; 2 |]);
  Alcotest.(check bool) "ok" true (Layout.is_valid g [| 0; 2; 1; 3; 4 |])

let test_layout_positions_successor () =
  let o = [| 0; 2; 1; 3; 4 |] in
  let pos = Layout.positions o in
  Alcotest.(check (array int)) "positions" [| 0; 2; 1; 3; 4 |] pos;
  let succ = Layout.layout_successor o in
  Alcotest.(check (option int)) "succ of 0" (Some 2) succ.(0);
  Alcotest.(check (option int)) "succ of 2" (Some 1) succ.(2);
  Alcotest.(check (option int)) "succ of last" None succ.(4)

let test_rterm_destinations () =
  Alcotest.(check (list int)) "cond" [ 1; 2 ]
    (Layout.rterm_destinations
       (Layout.R_cond { taken = 2; fall = 1; via_fixup = true }));
  Alcotest.(check (list int)) "multi dedups" [ 1; 3 ]
    (Layout.rterm_destinations (Layout.R_multi { targets = [| 3; 1; 3 |] }));
  Alcotest.(check (list int)) "exit" [] (Layout.rterm_destinations Layout.R_exit)

let test_build_items () =
  let order = [| 0; 1; 2 |] in
  let terms =
    [|
      Layout.R_cond { taken = 2; fall = 1; via_fixup = false };
      Layout.R_cond { taken = 0; fall = 2; via_fixup = true };
      Layout.R_exit;
    |]
  in
  let items = Layout.build_items order terms in
  Alcotest.(check int) "one fixup inserted" 4 (Array.length items);
  (match items.(2) with
  | Layout.I_fixup { src = 1; target = 2 } -> ()
  | _ -> Alcotest.fail "fixup must follow block 1");
  match items.(3) with
  | Layout.I_block 2 -> ()
  | _ -> Alcotest.fail "block 2 last"

(* ---------------- trace walker ---------------- *)

let test_walker_adjacency () =
  let transfers = ref [] in
  let sink =
    Trace.invocation_walker
      ~on_block:(fun ~fid ~bid ~prev ->
        match prev with
        | Some p -> transfers := (fid, p, bid) :: !transfers
        | None -> ())
      ()
  in
  (* f0: blocks 0,1; calls f1 (blocks 0,2) in the middle of block 1;
     then continues 1 -> 3.  The call must not break 1 -> 3 adjacency. *)
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Enter 1;
      Trace.Block 0;
      Trace.Block 2;
      Trace.Leave;
      Trace.Block 3;
      Trace.Leave;
    ];
  Alcotest.(check (list (triple int int int)))
    "adjacencies per invocation"
    [ (0, 1, 3); (1, 0, 2); (0, 0, 1) ]
    !transfers

let test_walker_rejects_orphan_block () =
  let sink = Trace.invocation_walker ~on_block:(fun ~fid:_ ~bid:_ ~prev:_ -> ()) () in
  Alcotest.check_raises "block without enter"
    (Invalid_argument "Trace: Block event outside any procedure") (fun () ->
      sink (Trace.Block 0))

let test_walker_rejects_orphan_leave () =
  let sink = Trace.invocation_walker ~on_block:(fun ~fid:_ ~bid:_ ~prev:_ -> ()) () in
  Alcotest.check_raises "leave without enter"
    (Invalid_argument "Trace: Leave event without matching Enter") (fun () ->
      sink Trace.Leave)

let test_recursive_invocations () =
  (* recursion: each invocation has its own adjacency state *)
  let transfers = ref 0 in
  let sink =
    Trace.invocation_walker
      ~on_block:(fun ~fid:_ ~bid:_ ~prev -> if prev <> None then incr transfers)
      ()
  in
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Leave;
      Trace.Block 1;
      Trace.Leave;
    ];
  Alcotest.(check int) "two transfers" 2 !transfers

(* ---------------- dot export ---------------- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_dot_output () =
  let g = diamond () in
  let s = Dot.to_string g in
  Alcotest.(check bool) "mentions digraph" true
    (String.length s > 7 && String.sub s 0 7 = "digraph");
  Alcotest.(check bool) "has an edge" true (contains ~sub:"n0 -> n1" s);
  Alcotest.(check bool) "labels frequencies" true
    (contains ~sub:"label=\"9\""
       (Dot.to_string ~freq:(fun _ _ -> 9) g))

let () =
  Alcotest.run "ba_cfg"
    [
      ( "block",
        [
          Alcotest.test_case "normalization" `Quick test_block_normalization;
          Alcotest.test_case "negative size rejected" `Quick test_block_negative_size;
          Alcotest.test_case "successors" `Quick test_block_successors;
          Alcotest.test_case "predicates" `Quick test_block_predicates;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "stats" `Quick test_cfg_stats;
          Alcotest.test_case "rejects malformed" `Quick test_cfg_rejects_bad;
          Alcotest.test_case "unreachable blocks" `Quick test_cfg_unreachable;
          Alcotest.test_case "structural hash canonical and sensitive" `Quick
            test_structural_hash;
        ] );
      ( "layout",
        [
          Alcotest.test_case "identity valid" `Quick test_layout_identity_valid;
          Alcotest.test_case "validity checks" `Quick test_layout_validity_checks;
          Alcotest.test_case "positions and successor" `Quick
            test_layout_positions_successor;
          Alcotest.test_case "rterm destinations" `Quick test_rterm_destinations;
          Alcotest.test_case "build items" `Quick test_build_items;
        ] );
      ( "trace",
        [
          Alcotest.test_case "adjacency across calls" `Quick test_walker_adjacency;
          Alcotest.test_case "orphan block rejected" `Quick
            test_walker_rejects_orphan_block;
          Alcotest.test_case "orphan leave rejected" `Quick
            test_walker_rejects_orphan_leave;
          Alcotest.test_case "recursion" `Quick test_recursive_invocations;
        ] );
      ("dot", [ Alcotest.test_case "emits digraph" `Quick test_dot_output ]);
    ]
