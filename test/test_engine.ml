(** Determinism suite for the task engine: the same work fanned out over
    [Seq], [Pool 2] and [Pool recommended_domain_count] must produce
    bit-identical results — values, merge order, surfaced exception,
    alignment orders, fallback records, and whole harness rows. *)

open Ba_align
module Executor = Ba_engine.Executor
module Task = Ba_engine.Task
module Profile = Ba_profile.Profile
module Synthetic = Ba_harness.Synthetic
module Errors = Ba_robust.Errors

let penalties = Ba_machine.Model.alpha21164

(** The executors every check runs under. *)
let executors () =
  [ ("seq", Executor.Seq);
    ("pool2", Executor.Pool 2);
    ("poolmax", Executor.pool ()) ]

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

(* busy-work so pool jobs genuinely overlap and finish out of order *)
let churn i =
  let acc = ref (i + 1) in
  for _ = 1 to 10_000 * (1 + (i mod 7)) do
    acc := (!acc * 1103515245) + 12345
  done;
  (i, !acc land 0xFFFF)

let test_init_identical () =
  let expect = Array.init 64 churn in
  List.iter
    (fun (name, ex) ->
      Alcotest.(check (array (pair int int)))
        name expect (Executor.init ex 64 churn))
    (executors ())

let test_init_empty_and_tiny () =
  List.iter
    (fun (name, ex) ->
      Alcotest.(check (array int)) (name ^ "/empty") [||]
        (Executor.init ex 0 (fun i -> i));
      Alcotest.(check (array int)) (name ^ "/one") [| 7 |]
        (Executor.init ex 1 (fun _ -> 7)))
    (executors ())

exception Boom of int

let test_lowest_index_exception () =
  List.iter
    (fun (name, ex) ->
      match
        Executor.init ex 64 (fun i ->
            let _ = churn i in
            if i = 9 || i = 41 then raise (Boom i);
            i)
      with
      | _ -> Alcotest.failf "%s: expected Boom" name
      | exception Boom i -> Alcotest.(check int) name 9 i)
    (executors ())

let test_map_list_order () =
  let l = List.init 37 (fun i -> i) in
  List.iter
    (fun (name, ex) ->
      Alcotest.(check (list int))
        name
        (List.map (fun x -> x * x) l)
        (Executor.map_list ex (fun x -> x * x) l))
    (executors ())

(* ------------------------------------------------------------------ *)
(* Task seeding                                                        *)
(* ------------------------------------------------------------------ *)

let draws rng = List.init 16 (fun _ -> Random.State.bits rng)

let test_seed_rng_deterministic () =
  Alcotest.(check (list int))
    "same (seed, id), same stream"
    (draws (Task.seed_rng ~seed:42 ~id:5))
    (draws (Task.seed_rng ~seed:42 ~id:5));
  let a = draws (Task.seed_rng ~seed:42 ~id:0)
  and b = draws (Task.seed_rng ~seed:42 ~id:1) in
  if a = b then Alcotest.fail "adjacent task ids share a stream";
  let c = draws (Task.seed_rng ~seed:43 ~id:0) in
  if a = c then Alcotest.fail "adjacent seeds share a stream"

let test_task_rng_independent_of_executor () =
  let tasks =
    Array.init 24 (fun id ->
        Task.make ~id (fun ctx -> draws (Task.rng ctx)))
  in
  let values ex =
    Task.run_all ~seed:7 ex tasks
    |> Array.map (fun o -> o.Task.value)
  in
  let expect = values Executor.Seq in
  List.iter
    (fun (name, ex) ->
      Alcotest.(check (array (list int))) name expect (values ex))
    (executors ())

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

(** A multi-procedure synthetic program with a matching profile (same
    construction as the fault suite). *)
let scenario ~seed =
  let rng = Random.State.make [| 0xE11E; seed |] in
  let n_procs = 3 + Random.State.int rng 3 in
  let cfgs =
    Array.init n_procs (fun _ ->
        Synthetic.cfg rng ~n:(4 + Random.State.int rng 12))
  in
  let procs =
    Array.map
      (fun g -> Synthetic.profile rng g ~invocations:20 ~max_steps:300)
      cfgs
  in
  (cfgs, { Profile.procs; calls = [] })

let orders_testable =
  Alcotest.(array (array int))

let test_align_identical_across_executors () =
  for seed = 0 to 2 do
    let cfgs, profile = scenario ~seed in
    List.iter
      (fun m ->
        let expect =
          (Driver.align ~executor:Executor.Seq m penalties cfgs ~train:profile)
            .Driver.orders
        in
        List.iter
          (fun (name, ex) ->
            let got =
              (Driver.align ~executor:ex m penalties cfgs ~train:profile)
                .Driver.orders
            in
            Alcotest.(check orders_testable)
              (Printf.sprintf "%s/%s/seed=%d" (Driver.method_name m) name seed)
              expect got)
          (executors ()))
      [ Driver.Greedy; Driver.Tsp Tsp_align.default ]
  done

let fallback_shape (f : Driver.fallback) =
  (f.Driver.proc, Driver.method_name f.Driver.requested,
   Driver.method_name f.Driver.used)

let report_shape = function
  | Error e -> Error (Errors.to_string e)
  | Ok (r : Driver.report) ->
      Ok
        ( Array.to_list r.Driver.aligned.Driver.orders,
          List.map fallback_shape r.Driver.fallbacks )

let test_align_checked_identical () =
  for seed = 0 to 2 do
    let cfgs, profile = scenario ~seed in
    let run ex =
      report_shape
        (Driver.align_checked ~executor:ex (Driver.Tsp Tsp_align.default)
           penalties cfgs ~train:profile)
    in
    let expect = run Executor.Seq in
    (match expect with
    | Ok (_, fallbacks) ->
        Alcotest.(check (list (triple int string string)))
          "clean scenario has no fallbacks" [] fallbacks
    | Error e -> Alcotest.failf "clean scenario rejected: %s" e);
    List.iter
      (fun (name, ex) ->
        Alcotest.(check
                    (result
                       (pair (list (array int)) (list (triple int string string)))
                       string))
          (Printf.sprintf "align_checked/%s/seed=%d" name seed)
          expect (run ex))
      (executors ())
  done

(* An already-exhausted budget (deadline 0) forces every procedure down
   the fallback chain — the degraded result must still be executor
   independent, per-task, and recorded per procedure. *)
let test_align_checked_forced_fallbacks () =
  for seed = 0 to 2 do
    let cfgs, profile = scenario ~seed in
    let run ex =
      match
        Driver.align_checked ~executor:ex ~deadline_ms:0
          (Driver.Tsp Tsp_align.default) penalties cfgs ~train:profile
      with
      | Error e -> Error (Errors.to_string e)
      | Ok r ->
          Ok
            ( Array.to_list r.Driver.aligned.Driver.orders,
              List.map fallback_shape r.Driver.fallbacks )
    in
    let expect = run Executor.Seq in
    (match expect with
    | Ok (_, []) -> Alcotest.fail "deadline 0 produced no fallbacks"
    | Ok (_, fallbacks) ->
        (* per-task degradation: every TSP procedure falls back on its
           own, in procedure order *)
        let procs = List.map (fun (p, _, _) -> p) fallbacks in
        Alcotest.(check (list int))
          "fallbacks are per-procedure, in index order"
          (List.sort compare procs) procs
    | Error e -> Alcotest.failf "fallback chain rejected: %s" e);
    List.iter
      (fun (name, ex) ->
        Alcotest.(check
                    (result
                       (pair (list (array int)) (list (triple int string string)))
                       string))
          (Printf.sprintf "forced-fallback/%s/seed=%d" name seed)
          expect (run ex))
      (executors ())
  done

(* With fallback disabled, the surfaced error must be the lowest
   procedure index's, whatever the executor. *)
let test_align_checked_no_fallback_error () =
  let cfgs, profile = scenario ~seed:1 in
  let proc_of ex =
    match
      Driver.align_checked ~executor:ex ~deadline_ms:0 ~fallback:false
        (Driver.Tsp Tsp_align.default) penalties cfgs ~train:profile
    with
    | Ok _ -> Alcotest.fail "deadline 0 without fallback succeeded"
    | Error (Errors.Solver_timeout { proc; _ }) -> proc
    | Error e -> Alcotest.failf "unexpected error: %s" (Errors.to_string e)
  in
  let expect = proc_of Executor.Seq in
  List.iter
    (fun (name, ex) ->
      Alcotest.(check (option int)) name expect (proc_of ex))
    (executors ())

(* ------------------------------------------------------------------ *)
(* Harness rows                                                        *)
(* ------------------------------------------------------------------ *)

(* One full benchmark x dataset sweep: the deterministic CSV rendering
   (everything but wall-clock) must be byte-identical at any job
   count. *)
let test_run_all_rows_identical () =
  let rows ex =
    String.concat "\n"
      (Ba_harness.Csv.rows_csv
         (Ba_harness.Runner.run_all ~executor:ex
            ~workloads:[ Ba_workloads.Workload.com ] ()))
  in
  let expect = rows Executor.Seq in
  List.iter
    (fun (name, ex) -> Alcotest.(check string) name expect (rows ex))
    (executors ())

let () =
  Alcotest.run "engine"
    [
      ( "executor",
        [
          Alcotest.test_case "init identical across executors" `Quick
            test_init_identical;
          Alcotest.test_case "empty and single-job inputs" `Quick
            test_init_empty_and_tiny;
          Alcotest.test_case "lowest-index exception wins" `Quick
            test_lowest_index_exception;
          Alcotest.test_case "map_list preserves order" `Quick
            test_map_list_order;
        ] );
      ( "task",
        [
          Alcotest.test_case "seed_rng is a function of (seed, id)" `Quick
            test_seed_rng_deterministic;
          Alcotest.test_case "task rng independent of executor" `Quick
            test_task_rng_independent_of_executor;
        ] );
      ( "driver",
        [
          Alcotest.test_case "align identical across executors" `Quick
            test_align_identical_across_executors;
          Alcotest.test_case "align_checked identical across executors" `Quick
            test_align_checked_identical;
          Alcotest.test_case "forced fallbacks identical across executors"
            `Quick test_align_checked_forced_fallbacks;
          Alcotest.test_case "no-fallback error is lowest procedure" `Quick
            test_align_checked_no_fallback_error;
        ] );
      ( "harness",
        [
          Alcotest.test_case "run_all rows identical across job counts"
            `Quick test_run_all_rows_identical;
        ] );
    ]
