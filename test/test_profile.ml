(* Tests for profiles and the online profiler. *)

open Ba_cfg
open Ba_profile

let diamond () =
  Cfg.make ~name:"diamond" ~entry:0
    [|
      Block.make ~id:0 ~size:4 (Block.Branch { t = 1; f = 2 });
      Block.make ~id:1 ~size:2 (Block.Goto 3);
      Block.make ~id:2 ~size:7 (Block.Goto 3);
      Block.make ~id:3 ~size:1 (Block.Branch { t = 0; f = 4 });
      Block.make ~id:4 ~size:3 Block.Exit;
    |]

let run_diamond_trace sink =
  (* two invocations; first loops twice via 1, second goes through 2 *)
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Block 3;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Block 3;
      Trace.Block 4;
      Trace.Leave;
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Block 2;
      Trace.Block 3;
      Trace.Block 4;
      Trace.Leave;
    ]

let collect_diamond () =
  let c = Collect.create ~n_blocks:[| 5 |] in
  run_diamond_trace (Collect.sink c);
  Collect.freeze c

let test_collect_counts () =
  let prof = collect_diamond () in
  let p = Profile.proc prof 0 in
  Alcotest.(check int) "0->1" 2 (Profile.freq p ~src:0 ~dst:1);
  Alcotest.(check int) "0->2" 1 (Profile.freq p ~src:0 ~dst:2);
  Alcotest.(check int) "3->0" 1 (Profile.freq p ~src:3 ~dst:0);
  Alcotest.(check int) "3->4" 2 (Profile.freq p ~src:3 ~dst:4);
  Alcotest.(check int) "no cross-invocation 4->0" 0 (Profile.freq p ~src:4 ~dst:0);
  Alcotest.(check int) "out of 0" 3 (Profile.out_count p 0);
  Alcotest.(check int) "total" 9 (Profile.total_transfers p)

let test_predictions () =
  let prof = collect_diamond () in
  let p = Profile.proc prof 0 in
  Alcotest.(check (option int)) "block 0 predicts 1" (Some 1) (Profile.predicted p 0);
  Alcotest.(check (option int)) "block 3 predicts 4" (Some 4) (Profile.predicted p 3);
  Alcotest.(check (option int)) "block 4 no prediction" None (Profile.predicted p 4);
  let preds = Profile.predictions p ~n_blocks:5 in
  Alcotest.(check (option int)) "tabulated" (Some 3) preds.(1)

let test_prediction_tie_break () =
  let p = Profile.of_assoc ~n_blocks:2 [ (0, 1, 5); (0, 0, 5) ] in
  (* equal counts: smaller label wins *)
  Alcotest.(check (option int)) "tie towards smaller" (Some 0) (Profile.predicted p 0)

let test_validate () =
  let g = diamond () in
  let prof = collect_diamond () in
  (match Profile.validate_proc g (Profile.proc prof 0) with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  let bad = Profile.of_assoc ~n_blocks:5 [ (0, 3, 1) ] in
  match Profile.validate_proc g bad with
  | Ok () -> Alcotest.fail "0->3 is not a CFG edge"
  | Error _ -> ()

let test_of_assoc_merges_duplicates () =
  let p = Profile.of_assoc ~n_blocks:3 [ (0, 1, 2); (0, 1, 3); (1, 2, 1) ] in
  Alcotest.(check int) "summed" 5 (Profile.freq p ~src:0 ~dst:1)

let test_scale_and_merge () =
  let a = Profile.of_assoc ~n_blocks:2 [ (0, 1, 3) ] in
  let b = Profile.of_assoc ~n_blocks:2 [ (0, 1, 4); (1, 0, 2) ] in
  let m = Profile.merge (Profile.scale 2 a) b in
  Alcotest.(check int) "2·3+4" 10 (Profile.freq m ~src:0 ~dst:1);
  Alcotest.(check int) "merged other edge" 2 (Profile.freq m ~src:1 ~dst:0);
  Alcotest.(check bool) "shape mismatch rejected" true
    (try
       ignore (Profile.merge a (Profile.of_assoc ~n_blocks:3 []));
       false
     with Invalid_argument _ -> true)

let test_table1_statistics () =
  let g = diamond () in
  let prof = collect_diamond () in
  let p = Profile.proc prof 0 in
  (* CTI blocks executed: 0, 1, 2, 3 *)
  Alcotest.(check int) "branch sites touched" 4 (Profile.branch_sites_touched g p);
  (* all 9 transfers leave CTI blocks *)
  Alcotest.(check int) "executed branches" 9 (Profile.executed_branches g p)

let test_multi_proc_collect () =
  let c = Collect.create ~n_blocks:[| 2; 2 |] in
  let sink = Collect.sink c in
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Enter 1;
      Trace.Block 0;
      Trace.Block 1;
      Trace.Leave;
      Trace.Block 1;
      Trace.Leave;
    ];
  let prof = Collect.freeze c in
  Alcotest.(check int) "proc 0 edge" 1
    (Profile.freq (Profile.proc prof 0) ~src:0 ~dst:1);
  Alcotest.(check int) "proc 1 edge" 1
    (Profile.freq (Profile.proc prof 1) ~src:0 ~dst:1);
  Alcotest.(check int) "program transfers" 2 (Profile.program_transfers prof)

let test_call_graph_collection () =
  let c = Collect.create ~n_blocks:[| 2; 2; 1 |] in
  let sink = Collect.sink c in
  (* main(0) calls f1 twice; f1 calls f2 once on the first call *)
  List.iter sink
    [
      Trace.Enter 0;
      Trace.Block 0;
      Trace.Enter 1;
      Trace.Block 0;
      Trace.Enter 2;
      Trace.Block 0;
      Trace.Leave;
      Trace.Leave;
      Trace.Enter 1;
      Trace.Block 0;
      Trace.Leave;
      Trace.Block 1;
      Trace.Leave;
    ];
  let prof = Collect.freeze c in
  Alcotest.(check int) "main->f1 twice" 2 (Profile.call_freq prof ~caller:0 ~callee:1);
  Alcotest.(check int) "f1->f2 once" 1 (Profile.call_freq prof ~caller:1 ~callee:2);
  Alcotest.(check int) "no f2->f1" 0 (Profile.call_freq prof ~caller:2 ~callee:1);
  (* the initial main invocation has no caller and is not counted *)
  Alcotest.(check int) "total intra-program calls" 3 (Profile.total_calls prof)

let test_profile_of_run () =
  let prof = Collect.profile_of_run ~n_blocks:[| 5 |] run_diamond_trace in
  Alcotest.(check int) "same as manual collection" 9
    (Profile.total_transfers (Profile.proc prof 0))

let () =
  Alcotest.run "ba_profile"
    [
      ( "collect",
        [
          Alcotest.test_case "edge counts" `Quick test_collect_counts;
          Alcotest.test_case "multi-procedure" `Quick test_multi_proc_collect;
          Alcotest.test_case "call graph" `Quick test_call_graph_collection;
          Alcotest.test_case "profile_of_run" `Quick test_profile_of_run;
        ] );
      ( "profile",
        [
          Alcotest.test_case "predictions" `Quick test_predictions;
          Alcotest.test_case "prediction tie-break" `Quick test_prediction_tie_break;
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "of_assoc merges" `Quick test_of_assoc_merges_duplicates;
          Alcotest.test_case "scale and merge" `Quick test_scale_and_merge;
          Alcotest.test_case "table 1 statistics" `Quick test_table1_statistics;
        ] );
    ]
