# Convenience targets; dune is the real build system.

DUNE ?= dune
BALIGN = $(DUNE) exec --no-print-directory bin/balign.exe --
BENCH = $(DUNE) exec --no-print-directory bench/main.exe --

.PHONY: all build test check check-par smoke lint analyze report \
  bench-json bench-solver serve-soak clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full verification: build, the whole test suite (including the
# fault-injection and robustness suites), a CLI smoke test of the
# documented exit codes, and the static-analysis gate on the
# committed examples.
check: build test smoke lint

# The smoke test drives the built binary through the failure paths that
# docs/ROBUSTNESS.md documents and checks the exit codes line up.
smoke: build
	@tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	printf 'fn main() { print(1); }' > $$tmp/ok.mc; \
	printf 'fn main( {' > $$tmp/bad.mc; \
	set -- \
	  "0:align $$tmp/ok.mc" \
	  "0:align $$tmp/ok.mc --deadline-ms 0" \
	  "3:compile $$tmp/bad.mc" \
	  "4:align $$tmp/ok.mc --input 1,two,3" \
	  "2:align $$tmp/ok.mc --input 1 --input-file $$tmp/ok.mc" \
	  "7:align $$tmp/ok.mc --deadline-ms 0 --fallback none" \
	  "2:bench nosuchbench"; \
	for case in "$$@"; do \
	  want=$${case%%:*}; cmd=$${case#*:}; \
	  $(BALIGN) $$cmd >/dev/null 2>&1; got=$$?; \
	  if [ "$$got" -ne "$$want" ]; then \
	    echo "smoke FAIL: balign $$cmd -> exit $$got (want $$want)"; exit 1; \
	  fi; \
	  echo "smoke ok  : balign $$cmd -> exit $$got"; \
	done

# Parallel determinism gate: the full test suite, then the bench
# summary + CSV export at --jobs 1 vs a real domain pool (at least 4
# domains, so the pool is exercised even on small CI boxes).  Stdout
# and the deterministic CSVs (spec92/spec95/appendix — everything but
# the timing files) must be byte-identical; the wall-clock ratio of the
# two runs is reported as the parallel speedup.
check-par: build test
	@tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	j=$$(nproc 2>/dev/null || echo 4); [ "$$j" -lt 4 ] && j=4; \
	echo "check-par: bench summary+csv at --jobs 1..."; \
	s1=$$(date +%s%N); \
	$(BENCH) summary csv --jobs 1 > $$tmp/out.1 2> $$tmp/err.1; \
	e1=$$(date +%s%N); \
	mkdir -p $$tmp/csv.1 $$tmp/csv.max; \
	cp results/spec92.csv results/spec95.csv results/appendix.csv $$tmp/csv.1/; \
	echo "check-par: bench summary+csv at --jobs $$j..."; \
	s2=$$(date +%s%N); \
	$(BENCH) summary csv --jobs $$j > $$tmp/out.max 2> $$tmp/err.max; \
	e2=$$(date +%s%N); \
	cp results/spec92.csv results/spec95.csv results/appendix.csv $$tmp/csv.max/; \
	diff -u $$tmp/out.1 $$tmp/out.max \
	  || { echo "check-par FAIL: stdout differs across job counts"; exit 1; }; \
	diff -ur $$tmp/csv.1 $$tmp/csv.max \
	  || { echo "check-par FAIL: deterministic CSVs differ across job counts"; exit 1; }; \
	echo "check-par: balign align stdout + bench --json at --jobs 1 vs $$j..."; \
	$(BALIGN) align examples/programs/collatz.mc --input 40 \
	  > $$tmp/align.1 2>/dev/null; \
	$(BALIGN) align examples/programs/collatz.mc --input 40 --jobs $$j \
	  > $$tmp/align.max 2>/dev/null; \
	diff -u $$tmp/align.1 $$tmp/align.max \
	  || { echo "check-par FAIL: balign align differs across job counts"; exit 1; }; \
	BALIGN_COMMIT=checkpar $(BALIGN) bench com --json $$tmp/b1.json --jobs 1 \
	  >/dev/null 2>&1; \
	BALIGN_COMMIT=checkpar $(BALIGN) bench com --json $$tmp/bmax.json --jobs $$j \
	  >/dev/null 2>&1; \
	mask() { sed -E -e 's/"(wall_ms|p50_ms|p95_ms|run_s|moves_per_s)":[0-9.eE+-]+/"\1":X/g' \
	  -e 's/"date":"[^"]*"/"date":X/' -e 's/"jobs":[0-9]+/"jobs":X/g' "$$1"; }; \
	mask $$tmp/b1.json > $$tmp/b1.masked; \
	mask $$tmp/bmax.json > $$tmp/bmax.masked; \
	diff -u $$tmp/b1.masked $$tmp/bmax.masked \
	  || { echo "check-par FAIL: bench --json differs across job counts"; exit 1; }; \
	echo "check-par: solver_bench neighbor lists at --jobs 1 vs $$j..."; \
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --sizes 64,700 --kicks 32 --certify --jobs 1 \
	  --json $$tmp/sb1.json 2>/dev/null; \
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --sizes 64,700 --kicks 32 --certify --jobs $$j \
	  --json $$tmp/sbmax.json 2>/dev/null; \
	smask() { sed -E \
	  -e 's/"(build_s|build_words|sym_s|nbr_s|opt_s|cert_s|moves_per_s|move_cost_p50|move_cost_p95)":[0-9.eE+-]+/"\1":X/g' \
	  -e 's/"date":"[^"]*"/"date":X/' -e 's/"jobs":[0-9]+/"jobs":X/' "$$1"; }; \
	smask $$tmp/sb1.json > $$tmp/sb1.masked; \
	smask $$tmp/sbmax.json > $$tmp/sbmax.masked; \
	diff -u $$tmp/sb1.masked $$tmp/sbmax.masked \
	  || { echo "check-par FAIL: pooled neighbor lists differ from sequential"; exit 1; }; \
	echo "check-par: solver_bench --repr two-level at --jobs 1 vs $$j..."; \
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --sizes 64,700 --kicks 32 --certify --repr two-level --jobs 1 \
	  --json $$tmp/tl1.json 2>/dev/null; \
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --sizes 64,700 --kicks 32 --certify --repr two-level --jobs $$j \
	  --json $$tmp/tlmax.json 2>/dev/null; \
	smask $$tmp/tl1.json > $$tmp/tl1.masked; \
	smask $$tmp/tlmax.json > $$tmp/tlmax.masked; \
	diff -u $$tmp/tl1.masked $$tmp/tlmax.masked \
	  || { echo "check-par FAIL: pooled two-level trajectory differs from sequential"; exit 1; }; \
	rmask() { sed -E -e 's/"repr":"[^"]*"/"repr":X/g' \
	  -e 's/"(seg_splits|rebalances)":[0-9]+/"\1":X/g' "$$1"; }; \
	rmask $$tmp/sb1.masked > $$tmp/sb1.rmasked; \
	rmask $$tmp/tl1.masked > $$tmp/tl1.rmasked; \
	diff -u $$tmp/sb1.rmasked $$tmp/tl1.rmasked \
	  || { echo "check-par FAIL: two-level trajectory differs from the flat arrays"; exit 1; }; \
	sed -n 's/^/  /p' $$tmp/err.1 $$tmp/err.max | grep wall-clock || true; \
	awk -v a=$$((e1-s1)) -v b=$$((e2-s2)) 'BEGIN { \
	  printf "check-par ok: output identical; wall-clock %.1fs -> %.1fs (speedup x%.2f)\n", \
	    a/1e9, b/1e9, a/b }'

# Static-analysis gate: every committed example must lint clean under
# --strict — structurally and trained on its documented input — and a
# certified alignment must pass independent re-verification
# (docs/ANALYSIS.md).
lint: build
	@tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; set -e; \
	for p in collatz scanner dispatch; do \
	  echo "lint --strict: examples/programs/$$p.mc"; \
	  $(BALIGN) lint examples/programs/$$p.mc --strict > /dev/null; \
	done; \
	echo "lint --strict: collatz.mc trained on --input 200"; \
	$(BALIGN) lint examples/programs/collatz.mc --input 200 --strict \
	  > /dev/null; \
	echo "lint --strict: scanner.mc trained on its documented stream"; \
	$(BALIGN) lint examples/programs/scanner.mc \
	  --input "6, 97, 98, 32, 49, 92, 10" --strict > /dev/null; \
	echo "lint --strict: dispatch.mc trained on an opcode stream"; \
	$(BALIGN) lint examples/programs/dispatch.mc \
	  --input "1 2 3 4 5 0" --strict > /dev/null; \
	echo "certify: collatz.mc alignment re-verified"; \
	$(BALIGN) align examples/programs/collatz.mc --input 200 \
	  --certify $$tmp/cert.json > /dev/null; \
	$(DUNE) exec --no-print-directory test/tools/check_lint.exe -- \
	  --cert $$tmp/cert.json; \
	echo "lint ok: examples are clean and the certificate verifies"

# Structural-analysis gate (docs/ANALYSIS.md): `balign analyze` JSON
# on every committed example and on a 10^5-block synthetic family,
# each validated structurally, plus a --profile static alignment
# smoke (layouts trained on the Wu-Larus estimate, no training run).
analyze: build
	@tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; set -e; \
	for p in collatz scanner dispatch; do \
	  echo "analyze: examples/programs/$$p.mc"; \
	  $(BALIGN) analyze examples/programs/$$p.mc --format json \
	    > $$tmp/$$p.json; \
	  $(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	    --analyze $$tmp/$$p.json; \
	done; \
	echo "analyze: --scale switch:100000 (10^5 blocks)"; \
	$(BALIGN) analyze --scale switch:100000 --format json \
	  > $$tmp/scale.json; \
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	  --analyze $$tmp/scale.json; \
	echo "analyze: --profile static alignment smoke"; \
	$(BALIGN) align examples/programs/collatz.mc --input 40 \
	  --profile static > /dev/null; \
	echo "analyze ok: reports validate and static training aligns"

# Machine-readable bench trajectory for CI: one small workload, JSON
# artifact validated structurally before it is uploaded.
bench-json: build
	$(BALIGN) bench com --json BENCH.json --jobs 2 > /dev/null
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- --bench BENCH.json
	@echo "bench-json ok: BENCH.json written"

# Solver-core throughput microbenchmark (docs/PERFORMANCE.md): instance
# build, symmetrization, neighbor lists and 3-Opt moves/sec across
# sizes, written as a machine-readable JSON document and validated
# structurally.  Every layout is re-verified by the independent
# certifier (--certify), and a second document covers one 10⁵-block
# synthetic jump-table workload end to end.  The committed trajectory
# (dense baseline → sparse core → heap-select, plus the scale-* rows)
# lives in results/solver_bench.json.
bench-solver: build
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --certify --json SOLVER_BENCH.json
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	  --solver-bench SOLVER_BENCH.json
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --repr two-level --certify --json SOLVER_BENCH_TWOLEVEL.json
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	  --solver-bench SOLVER_BENCH_TWOLEVEL.json
	@# hard gate: the two representations must walk the same trajectory
	@jq '.entries | map({n_blocks, moves, scans_skipped, best_cost, tour_hash})' \
	  SOLVER_BENCH.json > /tmp/sb_traj_array.json
	@jq '.entries | map({n_blocks, moves, scans_skipped, best_cost, tour_hash})' \
	  SOLVER_BENCH_TWOLEVEL.json > /tmp/sb_traj_twolevel.json
	@diff -u /tmp/sb_traj_array.json /tmp/sb_traj_twolevel.json \
	  && echo "bench-solver ok: array and two-level trajectories identical"
	$(DUNE) exec --no-print-directory bench/solver_bench.exe -- \
	  --family switch --sizes 100000 --kicks 8 --certify \
	  --variant scale-switch --json SOLVER_BENCH_SCALE.json
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	  --solver-bench SOLVER_BENCH_SCALE.json
	@echo "bench-solver ok: SOLVER_BENCH.json + SOLVER_BENCH_TWOLEVEL.json + SOLVER_BENCH_SCALE.json written"

# Daemon robustness gate (docs/SERVING.md): replay 1000 mixed
# good/faulty requests at an in-process `balign serve` loop, re-certify
# every ok layout client-side, and demand zero uncertified responses
# and zero crashes.  The serve-soak/1 JSON artifact is validated
# structurally before CI uploads it.
serve-soak: build
	$(DUNE) exec --no-print-directory test/tools/serve_soak.exe -- \
	  --requests 1000 --out SERVE_SOAK.json
	$(DUNE) exec --no-print-directory test/tools/check_trace.exe -- \
	  --serve-soak SERVE_SOAK.json
	@echo "serve-soak ok: SERVE_SOAK.json written"

report:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
