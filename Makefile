# Convenience targets; dune is the real build system.

DUNE ?= dune
BALIGN = $(DUNE) exec --no-print-directory bin/balign.exe --

.PHONY: all build test check smoke report clean

all: build

build:
	$(DUNE) build

test:
	$(DUNE) runtest

# Full verification: build, the whole test suite (including the
# fault-injection and robustness suites), and a CLI smoke test of the
# documented exit codes.
check: build test smoke

# The smoke test drives the built binary through the failure paths that
# docs/ROBUSTNESS.md documents and checks the exit codes line up.
smoke: build
	@tmp=$$(mktemp -d); trap 'rm -rf '"$$tmp" EXIT; \
	printf 'fn main() { print(1); }' > $$tmp/ok.mc; \
	printf 'fn main( {' > $$tmp/bad.mc; \
	set -- \
	  "0:align $$tmp/ok.mc" \
	  "0:align $$tmp/ok.mc --deadline-ms 0" \
	  "3:compile $$tmp/bad.mc" \
	  "4:align $$tmp/ok.mc --input 1,two,3" \
	  "2:align $$tmp/ok.mc --input 1 --input-file $$tmp/ok.mc" \
	  "7:align $$tmp/ok.mc --deadline-ms 0 --fallback none" \
	  "2:bench nosuchbench"; \
	for case in "$$@"; do \
	  want=$${case%%:*}; cmd=$${case#*:}; \
	  $(BALIGN) $$cmd >/dev/null 2>&1; got=$$?; \
	  if [ "$$got" -ne "$$want" ]; then \
	    echo "smoke FAIL: balign $$cmd -> exit $$got (want $$want)"; exit 1; \
	  fi; \
	  echo "smoke ok  : balign $$cmd -> exit $$got"; \
	done

report:
	$(DUNE) exec bench/main.exe

clean:
	$(DUNE) clean
