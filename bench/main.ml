(* Benchmark harness: regenerates every table and figure of the paper
   (Tables 1-4, Figures 2-3, the appendix statistics and a headline
   summary), then runs Bechamel micro-benchmarks of the algorithmic
   stages — one per table/figure target.

   Usage:
     dune exec bench/main.exe                       # everything
     dune exec bench/main.exe -- table1 fig2        # selected sections
     dune exec bench/main.exe -- --jobs 4 summary   # 4-domain pool
     dune exec bench/main.exe -- --jobs max csv     # recommended_domain_count
   Sections: table1 table2 table3 table4 fig2 fig3 appendix summary
             spec95 dynamic procorder btfnt replication ablation micro csv

   Tables and CSV measurements go to stdout / results/ and are
   bit-identical at any --jobs value; progress and wall-clock chatter
   (inherently run-dependent) go to stderr. *)

module Executor = Ba_engine.Executor

let jobs, sections =
  let jobs_of s =
    if s = "max" then Executor.default_jobs ()
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ ->
          Fmt.epr "bench: bad --jobs value %S (want a positive int or max)@." s;
          exit 2
  in
  let rec parse jobs acc = function
    | [] -> (jobs, List.rev acc)
    | "--jobs" :: v :: rest -> parse (jobs_of v) acc rest
    | [ "--jobs" ] ->
        Fmt.epr "bench: --jobs needs a value@.";
        exit 2
    | arg :: rest when String.starts_with ~prefix:"--jobs=" arg ->
        parse
          (jobs_of (String.sub arg 7 (String.length arg - 7)))
          acc rest
    | arg :: rest -> parse jobs (arg :: acc) rest
  in
  parse 1 [] (List.tl (Array.to_list Sys.argv))

let executor = Executor.of_jobs jobs
let wanted name = sections = [] || List.mem name sections
let ppf = Fmt.stdout

(* progress and timing chatter: run-dependent, so stderr only *)
let eppf = Fmt.stderr

(* ------------------------------------------------------------------ *)
(* Experiment sections                                                  *)
(* ------------------------------------------------------------------ *)

let need_rows =
  List.exists wanted
    [ "table1"; "table2"; "table4"; "fig2"; "fig3"; "summary" ]

let rows =
  if need_rows then begin
    Fmt.pf eppf "running the full experiment suite (6 benchmarks x 2 data sets, jobs=%d)...@." jobs;
    let rows, t =
      Ba_harness.Timing.time (fun () -> Ba_harness.Runner.run_all ~executor ())
    in
    (* the wall-clock line BENCH_*.json tracks for the parallel win *)
    Fmt.pf eppf "suite wall-clock: %.2fs at jobs=%d@." t jobs;
    rows
  end
  else []

let () = if wanted "table1" then Ba_harness.Tables.table1 ppf rows
let () = if wanted "table2" then Ba_harness.Tables.table2 ppf rows

let () =
  if wanted "table3" then
    Ba_harness.Tables.table3 ppf Ba_machine.Penalties.alpha_21164

let () = if wanted "table4" then Ba_harness.Tables.table4 ppf rows

let () =
  if wanted "fig2" then begin
    Ba_harness.Tables.fig2_penalties ppf rows;
    Ba_harness.Tables.fig2_times ppf rows
  end

let () =
  if wanted "fig3" then begin
    Ba_harness.Tables.fig3_penalties ppf rows;
    Ba_harness.Tables.fig3_times ppf rows
  end

let () =
  if wanted "appendix" then begin
    Fmt.pf ppf "@.running the appendix bound study...@.";
    let corpus =
      Ba_harness.Synthetic.workload_instances ()
      @ Ba_harness.Synthetic.corpus ~sizes:[ 6; 8; 10; 12; 14; 17; 24; 40 ]
          ~per_size:3 ()
    in
    let stats = Ba_harness.Appendix.study corpus in
    Ba_harness.Tables.appendix ppf stats
  end

let () = if wanted "summary" then Ba_harness.Tables.summary ppf rows

let () =
  if wanted "dynamic" then begin
    Fmt.pf ppf "@.running the dynamic-prediction extension...@.";
    Ba_harness.Dyn_exp.print ppf (Ba_harness.Dyn_exp.run_all ());
    (* aliasing ablation: a tiny BHT makes layout-dependent aliasing
       visible (paper footnote 6) *)
    let tiny =
      { Ba_machine.Predictor.default with Ba_machine.Predictor.bht_entries = 64 }
    in
    Fmt.pf ppf "@.same, with a tiny 64-entry BHT (aliasing regime):@.";
    Ba_harness.Dyn_exp.print ppf
      (Ba_harness.Dyn_exp.run_all ~config:tiny ())
  end

let () =
  if wanted "btfnt" then begin
    Fmt.pf ppf "@.%s@." (String.make 78 '-');
    Fmt.pf ppf
      "Extension: the same layouts on a BTFNT machine (paper footnote 3)@.";
    Fmt.pf ppf "%s@." (String.make 78 '-');
    Fmt.pf ppf "%-9s %12s %8s %8s   (penalties normalized to BTFNT-original)@."
      "bench.ds" "orig-btfnt" "greedy" "tsp";
    let p = Ba_machine.Model.alpha21164 in
    let gs = ref [] and ts = ref [] in
    List.iter
      (fun w ->
        List.iter
          (fun ds ->
            let compiled = Ba_workloads.Workload.compile w in
            let cfgs = compiled.Ba_minic.Compile.cfgs in
            let prof =
              Ba_minic.Compile.profile compiled
                ~input:ds.Ba_workloads.Workload.input
            in
            let eval m =
              let a = Ba_align.Driver.align m p cfgs ~train:prof in
              Ba_align.Btfnt.program_penalty p.Ba_machine.Model.penalties cfgs
                ~realized:a.Ba_align.Driver.realized ~test:prof
            in
            let o = eval Ba_align.Driver.Original in
            let g = eval Ba_align.Driver.Greedy in
            let t = eval (Ba_align.Driver.Tsp Ba_align.Tsp_align.default) in
            let norm v = if o = 0 then 1.0 else float_of_int v /. float_of_int o in
            gs := norm g :: !gs;
            ts := norm t :: !ts;
            Fmt.pf ppf "%-9s %12d %8.3f %8.3f@."
              (w.Ba_workloads.Workload.name ^ "." ^ ds.Ba_workloads.Workload.ds_name)
              o (norm g) (norm t))
          (Ba_workloads.Workload.dataset_list w))
      Ba_workloads.Workload.all;
    let mean l =
      match l with
      | [] -> 0.0
      | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
    in
    Fmt.pf ppf "%-9s %12s %8.3f %8.3f@." "MEAN" "" (mean !gs) (mean !ts);
    Fmt.pf ppf
      "reading: both aligners still help on average, but the TSP layout is@.";
    Fmt.pf ppf
      "tuned to the profile-prediction model and can backfire on hardware@.";
    Fmt.pf ppf
      "that predicts by direction (see xli) — footnote 3's warning made@.";
    Fmt.pf ppf
      "concrete: the reduction is only as good as its machine model.@."
  end

let () =
  if wanted "spec95" then begin
    Fmt.pf eppf
      "running the SPEC95-style extension suite (5 benchmarks x 2 data sets, \
       jobs=%d)...@."
      jobs;
    let rows95, t95 =
      Ba_harness.Timing.time (fun () ->
          Ba_harness.Runner.run_all ~executor
            ~workloads:Ba_workloads.Workload95.all ())
    in
    Fmt.pf eppf "spec95 wall-clock: %.2fs at jobs=%d@." t95 jobs;
    Fmt.pf ppf "@.";
    Ba_harness.Tables.table1 ppf rows95;
    Ba_harness.Tables.table4 ppf rows95;
    Ba_harness.Tables.fig2_penalties ppf rows95;
    Ba_harness.Tables.fig2_times ppf rows95;
    Ba_harness.Tables.fig3_penalties ppf rows95;
    Ba_harness.Tables.fig3_times ppf rows95;
    Ba_harness.Tables.summary ppf rows95
  end

let () =
  if wanted "procorder" then begin
    Fmt.pf ppf "@.running the interprocedural-placement extension...@.";
    Ba_harness.Interproc.print ppf (Ba_harness.Interproc.run ())
  end

let () =
  if wanted "replication" then begin
    Fmt.pf ppf "@.running the code-replication extension...@.";
    Ba_harness.Replication.print ppf (Ba_harness.Replication.run_all ())
  end

let () =
  if wanted "csv" then begin
    Fmt.pf eppf "exporting CSV results (jobs=%d)...@." jobs;
    Fmt.pf ppf "@.";
    let rows =
      if rows <> [] then rows else Ba_harness.Runner.run_all ~executor ()
    in
    let rows95 =
      Ba_harness.Runner.run_all ~executor
        ~workloads:Ba_workloads.Workload95.all ()
    in
    let appendix =
      Ba_harness.Appendix.study
        (Ba_harness.Synthetic.workload_instances ()
        @ Ba_harness.Synthetic.corpus ~sizes:[ 6; 10; 14; 24 ] ~per_size:3 ())
    in
    let paths =
      Ba_harness.Csv.export ~dir:"results" ~rows ~rows95
        ~appendix:(Some appendix)
    in
    List.iter (fun p -> Fmt.pf ppf "wrote %s@." p) paths;
    (* run-dependent timing CSVs: paths to stderr so stdout stays
       byte-identical across job counts *)
    let tpaths = Ba_harness.Csv.export_timings ~dir:"results" ~rows ~rows95 in
    List.iter (fun p -> Fmt.pf eppf "wrote %s@." p) tpaths
  end

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §6)                                             *)
(* ------------------------------------------------------------------ *)

let () =
  if wanted "ablation" then begin
    Fmt.pf ppf "@.";
    Fmt.pf ppf "%s@." (String.make 78 '-');
    Fmt.pf ppf "Ablations: solver parameters on the synthetic corpus@.";
    Fmt.pf ppf "%s@." (String.make 78 '-');
    let corpus =
      Ba_harness.Synthetic.corpus ~sizes:[ 16; 32; 48 ] ~per_size:4 ()
    in
    let p = Ba_machine.Model.alpha21164 in
    let instances =
      List.map
        (fun { Ba_harness.Synthetic.g; prof; name } ->
          (name, Ba_align.Reduction.build p g ~profile:prof))
        corpus
    in
    let total config =
      let cost = ref 0 in
      let _, t =
        Ba_harness.Timing.time (fun () ->
            List.iter
              (fun (_, inst) ->
                let r = Ba_align.Tsp_align.solve_instance ~config inst in
                cost := !cost + r.Ba_align.Tsp_align.cost)
              instances)
      in
      (!cost, t)
    in
    let base = { Ba_align.Tsp_align.default with exact_below = 0 } in
    let variants =
      [
        ("paper default (10 runs, 2n kicks, k=12)", base);
        ( "1 run",
          { base with solver = { base.solver with Ba_tsp.Iterated.runs = 1 } } );
        ( "3 runs",
          { base with solver = { base.solver with Ba_tsp.Iterated.runs = 3 } } );
        ( "no kicks",
          { base with solver = { base.solver with Ba_tsp.Iterated.kick_factor = 0 } } );
        ( "k=4 neighbors",
          { base with solver = { base.solver with Ba_tsp.Iterated.neighbors = 4 } } );
        ( "k=24 neighbors",
          { base with solver = { base.solver with Ba_tsp.Iterated.neighbors = 24 } } );
      ]
    in
    Fmt.pf ppf "%-40s %14s %10s@." "variant" "total penalty" "time (s)";
    List.iter
      (fun (name, config) ->
        let cost, t = total config in
        Fmt.pf ppf "%-40s %14d %10.2f@." name cost t)
      variants;
    (* greedy priority ablation: frequency vs cost-model savings *)
    Fmt.pf ppf "@.greedy edge-priority ablation (same corpus):@.";
    let eval_method f =
      List.fold_left
        (fun acc { Ba_harness.Synthetic.g; prof; _ } ->
          let order = f g prof in
          acc
          + Ba_align.Evaluate.proc_penalty p g ~order ~train:prof ~test:prof)
        0 corpus
    in
    Fmt.pf ppf "%-40s %14d@." "pettis-hansen (frequency)"
      (eval_method (fun g prof -> Ba_align.Greedy.align g ~profile:prof));
    Fmt.pf ppf "%-40s %14d@." "calder-grunwald (cost model)"
      (eval_method (fun g prof -> Ba_align.Calder.align p g ~profile:prof));
    Fmt.pf ppf "%-40s %14d@." "calder-grunwald + exhaustive prefix"
      (eval_method (fun g prof ->
           Ba_align.Calder.align_exhaustive p g ~profile:prof))
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)
(* ------------------------------------------------------------------ *)

let () =
  if wanted "micro" then begin
    Fmt.pf ppf "@.";
    Fmt.pf ppf "%s@." (String.make 78 '-');
    Fmt.pf ppf "Bechamel micro-benchmarks (ns/run of each pipeline stage)@.";
    Fmt.pf ppf "%s@." (String.make 78 '-');
    let open Bechamel in
    let p = Ba_machine.Model.alpha21164 in
    (* a mid-sized fixed instance for stage benchmarks *)
    let inst =
      List.nth (Ba_harness.Synthetic.corpus ~sizes:[ 32 ] ~per_size:1 ()) 0
    in
    let g = inst.Ba_harness.Synthetic.g and prof = inst.Ba_harness.Synthetic.prof in
    let red = Ba_align.Reduction.build p g ~profile:prof in
    let dtsp = red.Ba_align.Reduction.dtsp in
    let quick =
      { Ba_tsp.Iterated.default with Ba_tsp.Iterated.runs = 2; kick_factor = 1 }
    in
    let com = Ba_workloads.Workload.com in
    let compiled = Ba_workloads.Workload.compile com in
    let small_input = Ba_workloads.Src_com.dataset_text ~n:2_000 ~seed:3 in
    let tests =
      [
        (* table 2 stages *)
        Test.make ~name:"t2-compile-com"
          (Staged.stage (fun () -> Ba_workloads.Workload.compile com));
        Test.make ~name:"t2-profile-com-2k"
          (Staged.stage (fun () ->
               Ba_minic.Compile.profile compiled ~input:small_input));
        Test.make ~name:"t2-greedy-align"
          (Staged.stage (fun () -> Ba_align.Greedy.align g ~profile:prof));
        Test.make ~name:"t2-tsp-matrix"
          (Staged.stage (fun () -> Ba_align.Reduction.build p g ~profile:prof));
        Test.make ~name:"t2-tsp-solve"
          (Staged.stage (fun () -> Ba_tsp.Iterated.solve ~config:quick dtsp));
        (* table 4 / fig 2 machinery *)
        Test.make ~name:"t4-hk-bound"
          (Staged.stage (fun () ->
               Ba_tsp.Held_karp.directed_bound dtsp
                 ~upper_bound:
                   (Ba_tsp.Dtsp.tour_cost dtsp
                      (Ba_tsp.Construct.identity dtsp.Ba_tsp.Dtsp.n))));
        Test.make ~name:"appendix-ap-bound"
          (Staged.stage (fun () -> Ba_tsp.Hungarian.ap_bound dtsp));
        Test.make ~name:"appendix-patching"
          (Staged.stage (fun () -> Ba_tsp.Patching.solve dtsp));
        Test.make ~name:"fig2-evaluate-layout"
          (Staged.stage (fun () ->
               Ba_align.Evaluate.proc_penalty p g
                 ~order:(Ba_cfg.Layout.identity g) ~train:prof ~test:prof));
      ]
    in
    let benchmark test =
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg =
        Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false
          ~compaction:false ()
      in
      Benchmark.all cfg instances test
    in
    let analyze raw =
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      Analyze.all ols Toolkit.Instance.monotonic_clock raw
    in
    let grouped = Test.make_grouped ~name:"stages" ~fmt:"%s %s" tests in
    let results = analyze (benchmark grouped) in
    Hashtbl.iter
      (fun name ols ->
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> Fmt.pf ppf "%-32s %14.0f ns/run@." name est
        | _ -> Fmt.pf ppf "%-32s (no estimate)@." name)
      results
  end

let () = Fmt.pf ppf "@.done.@."
