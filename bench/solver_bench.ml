(* solver_bench — microbenchmark of the DTSP cost core.

   Measures, over synthetic procedures of realistic CFG sparsity
   (Ba_harness.Synthetic), the costs that dominate large-procedure
   alignment: building the solver instance from the cost model
   (Reduction.build), symmetrizing it (Sym.of_dtsp), constructing the
   candidate lists (Neighbors.of_sym), and sustained 3-Opt throughput
   (moves/sec over a deterministic kick-and-reoptimize loop).

     dune exec bench/solver_bench.exe -- \
       [--sizes 64,256,1024,4096] [--kicks 256] [--seed 7] \
       [--variant NAME] [--json FILE]

   Output is a single JSON document (stdout, or FILE with --json); the
   committed trajectory lives in results/solver_bench.json with one
   entry list per variant ("dense-baseline" = the pre-sparse core,
   "sparse" = the current one).  Everything except wall times and
   allocation figures is deterministic for a fixed seed, so best_cost /
   tour_hash double as a cross-representation identity check. *)

module Dtsp = Ba_tsp.Dtsp
module Sym = Ba_tsp.Sym
module Neighbors = Ba_tsp.Neighbors
module Three_opt = Ba_tsp.Three_opt
module Iterated = Ba_tsp.Iterated
module Reduction = Ba_align.Reduction
module Synthetic = Ba_harness.Synthetic
module Json = Ba_obs.Json

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* words allocated (minor + major, i.e. everything the phase consed)
   and wall time of one phase *)
let measured f =
  let a0 = Gc.allocated_bytes () in
  let r, s = time f in
  let words =
    (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8)
  in
  (r, s, words)

type entry = {
  n_blocks : int;
  n_cities : int;
  build_s : float;
  build_words : float;  (** words allocated by Reduction.build *)
  sym_s : float;
  nbr_s : float;
  instance_words : int;  (** live words reachable from (dtsp, sym) *)
  opt_s : float;  (** initial 3-Opt descent + kick loop *)
  moves : int;
  moves_per_s : float;
  best_cost : int;  (** symmetric tour cost after the kick loop *)
  tour_hash : int;
}

let run_size ~seed ~kicks ~k n =
  let rng = Random.State.make [| seed; n |] in
  let g = Synthetic.cfg rng ~n in
  let prof = Synthetic.profile rng g ~invocations:100 ~max_steps:(8 * n) in
  let p = Ba_machine.Model.alpha21164 in
  let inst, build_s, build_words =
    measured (fun () -> Reduction.build p g ~profile:prof)
  in
  let d = inst.Reduction.dtsp in
  let s, sym_s, _ = measured (fun () -> Sym.of_dtsp d) in
  let nbr, nbr_s, _ = measured (fun () -> Neighbors.of_sym s ~k) in
  let instance_words = Obj.reachable_words (Obj.repr (d, s)) in
  (* throughput: identity start, descent to local optimality, then a
     fixed number of double-bridge kicks each re-optimized; kicks are
     taken from a deterministic rng and never undone, so the trajectory
     is a pure function of the instance *)
  let nn = s.Sym.nn in
  let st = Three_opt.init s ~nbr ~tour:(Array.init nn Fun.id) in
  let krng = Random.State.make [| seed; n; kicks |] in
  let (), opt_s =
    time (fun () ->
        Three_opt.activate_all st;
        Three_opt.run st;
        for _ = 1 to kicks do
          let touched = Iterated.double_bridge st krng in
          List.iter (Three_opt.activate st) touched;
          Three_opt.run st
        done)
  in
  let moves = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt in
  {
    n_blocks = n;
    n_cities = Dtsp.(d.n);
    build_s;
    build_words;
    sym_s;
    nbr_s;
    instance_words;
    opt_s;
    moves;
    moves_per_s = (if opt_s > 0. then float_of_int moves /. opt_s else 0.);
    best_cost = Three_opt.cost st;
    tour_hash = Hashtbl.hash (Three_opt.tour st);
  }

let entry_json e =
  Json.Obj
    [
      ("n_blocks", Json.Int e.n_blocks);
      ("n_cities", Json.Int e.n_cities);
      ("build_s", Json.Float e.build_s);
      ("build_words", Json.Float e.build_words);
      ("sym_s", Json.Float e.sym_s);
      ("nbr_s", Json.Float e.nbr_s);
      ("instance_words", Json.Int e.instance_words);
      ("opt_s", Json.Float e.opt_s);
      ("moves", Json.Int e.moves);
      ("moves_per_s", Json.Float e.moves_per_s);
      ("best_cost", Json.Int e.best_cost);
      ("tour_hash", Json.Int e.tour_hash);
    ]

let doc ~variant ~seed ~kicks ~k entries =
  Json.Obj
    [
      ("schema", Json.String "solver-bench/1");
      ("commit", Json.String (Ba_harness.Bench_json.current_commit ()));
      ("date", Json.String (Ba_harness.Bench_json.now_utc ()));
      ("variant", Json.String variant);
      ("seed", Json.Int seed);
      ("kicks", Json.Int kicks);
      ("neighbors", Json.Int k);
      ("entries", Json.List (List.map entry_json entries));
    ]

let () =
  let sizes = ref [ 64; 256; 1024; 4096 ]
  and kicks = ref 256
  and seed = ref 7
  and k = ref 12
  and variant = ref "sparse"
  and out = ref None in
  let rec parse = function
    | [] -> ()
    | "--sizes" :: v :: rest ->
        sizes := List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--kicks" :: v :: rest -> kicks := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--neighbors" :: v :: rest -> k := int_of_string v; parse rest
    | "--variant" :: v :: rest -> variant := v; parse rest
    | "--json" :: v :: rest -> out := Some v; parse rest
    | a :: _ ->
        prerr_endline ("solver_bench: unknown argument " ^ a);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries =
    List.map
      (fun n ->
        let e = run_size ~seed:!seed ~kicks:!kicks ~k:!k n in
        Printf.eprintf
          "n=%-5d build %.4fs  sym %.4fs  nbr %.4fs  opt %.3fs  %9.0f moves/s  \
           %9d live words  cost %d\n%!"
          n e.build_s e.sym_s e.nbr_s e.opt_s e.moves_per_s e.instance_words
          e.best_cost;
        e)
      !sizes
  in
  let j = doc ~variant:!variant ~seed:!seed ~kicks:!kicks ~k:!k entries in
  match !out with
  | Some path -> Json.write_file path j
  | None -> print_endline (Json.to_string j)
