(* solver_bench — microbenchmark of the DTSP cost core.

   Measures, over synthetic procedures of realistic CFG sparsity
   (Ba_harness.Synthetic) or the deterministic whole-program-scale
   families (Ba_workloads.Scale), the costs that dominate
   large-procedure alignment: building the solver instance from the
   cost model (Reduction.build), symmetrizing it (Sym.of_dtsp),
   constructing the candidate lists (Neighbors.of_sym), and sustained
   3-Opt throughput (moves/sec over a deterministic kick-and-reoptimize
   loop).  With --certify every final layout is re-verified by the
   independent certifier and the verdict lands in the JSON row.

     dune exec bench/solver_bench.exe -- \
       [--sizes 64,256,1024,4096] [--kicks 256] [--seed 7] \
       [--family syn|loop-nest|switch|interp] [--jobs N] \
       [--mode auto|exact|select] [--repr auto|array|two-level] \
       [--certify] [--variant NAME] [--json FILE]

   Output is a single JSON document (stdout, or FILE with --json); the
   committed trajectory lives in results/solver_bench.json with one
   entry list per variant ("dense-baseline" = the pre-sparse core,
   "sparse" = the dense-scan neighbor era, "heap-select" = the current
   one, "scale-*" = the 10⁵-block family rows).  Everything except wall
   times and allocation figures is deterministic for a fixed seed, so
   best_cost / tour_hash double as a cross-representation identity
   check. *)

module Dtsp = Ba_tsp.Dtsp
module Sym = Ba_tsp.Sym
module Neighbors = Ba_tsp.Neighbors
module Three_opt = Ba_tsp.Three_opt
module Iterated = Ba_tsp.Iterated
module Reduction = Ba_align.Reduction
module Certify = Ba_check.Certify
module Synthetic = Ba_harness.Synthetic
module Scale = Ba_workloads.Scale
module Executor = Ba_engine.Executor
module Json = Ba_obs.Json

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* words allocated (minor + major, i.e. everything the phase consed)
   and wall time of one phase *)
let measured f =
  let a0 = Gc.allocated_bytes () in
  let r, s = time f in
  let words =
    (Gc.allocated_bytes () -. a0) /. float_of_int (Sys.word_size / 8)
  in
  (r, s, words)

type entry = {
  n_blocks : int;
  n_cities : int;
  repr : string;  (** representation actually used (Auto resolved) *)
  build_s : float;
  build_words : float;  (** words allocated by Reduction.build *)
  sym_s : float;
  nbr_s : float;
  instance_words : int;  (** live words reachable from (dtsp, sym) *)
  opt_s : float;  (** initial 3-Opt descent + kick loop *)
  moves : int;
  moves_per_s : float;
  move_cost_p50 : float;  (** seconds/move percentiles over run calls *)
  move_cost_p95 : float;
  seg_splits : int;  (** two-level segment splits (0 on flat) *)
  rebalances : int;  (** two-level full rebuilds (0 on flat) *)
  scans_skipped : int;  (** don't-look-bit elisions during opt *)
  best_cost : int;  (** symmetric tour cost after the kick loop *)
  tour_hash : int;
  cert : (bool * float) option;  (** --certify verdict and wall time *)
}

(* nearest-rank percentile of an unsorted sample array *)
let percentile p samples =
  match samples with
  | [] -> 0.
  | _ ->
      let a = Array.of_list samples in
      Array.sort compare a;
      let len = Array.length a in
      a.(min (len - 1) (int_of_float (p *. float_of_int len)))

let run_size ~family ~seed ~kicks ~k ~mode ~repr ~exec ~certify n =
  let g, prof =
    match family with
    | None ->
        let rng = Random.State.make [| seed; n |] in
        let g = Synthetic.cfg rng ~n in
        (g, Synthetic.profile rng g ~invocations:100 ~max_steps:(8 * n))
    | Some fam -> Scale.instance fam ~n ~invocations:1024
  in
  let p = Ba_machine.Model.alpha21164 in
  let inst, build_s, build_words =
    measured (fun () -> Reduction.build p g ~profile:prof)
  in
  let d = inst.Reduction.dtsp in
  let s, sym_s, _ = measured (fun () -> Sym.of_dtsp d) in
  let nbr, nbr_s, _ = measured (fun () -> Neighbors.of_sym ~mode ~exec s ~k) in
  let instance_words = Obj.reachable_words (Obj.repr (d, s)) in
  (* throughput: identity start, descent to local optimality, then a
     fixed number of double-bridge kicks each re-optimized; kicks are
     taken from a deterministic rng and never undone, so the trajectory
     is a pure function of the instance *)
  let nn = s.Sym.nn in
  let st = Three_opt.init ~repr s ~nbr ~tour:(Array.init nn Fun.id) in
  let krng = Random.State.make [| seed; n; kicks |] in
  (* per-run-call seconds/move samples: the descent and every kick
     re-optimization contribute one sample each (when they moved) *)
  let samples = ref [] in
  let timed_run () =
    let m0 = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt in
    let (), secs = time (fun () -> Three_opt.run st) in
    let dm = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt - m0 in
    if dm > 0 then samples := (secs /. float_of_int dm) :: !samples
  in
  let (), opt_s =
    time (fun () ->
        Three_opt.activate_all st;
        timed_run ();
        for _ = 1 to kicks do
          let touched = Iterated.double_bridge st krng in
          List.iter (Three_opt.activate st) touched;
          timed_run ()
        done)
  in
  let moves = st.Three_opt.moves_2opt + st.Three_opt.moves_3opt in
  let cert =
    if not certify then None
    else begin
      let directed = Sym.extract s (Three_opt.tour st) in
      let order = Reduction.order_of_tour inst directed in
      let claimed = Reduction.layout_cost inst order in
      let verdict, cert_s =
        time (fun () ->
            Certify.proc_cert ~claimed ~hk:Certify.Skip
              ~sym_check:(n <= Certify.dense_instance_threshold)
              ~proc:0 p g ~profile:prof ~order)
      in
      (match verdict with
      | Ok _ -> ()
      | Error e ->
          Printf.eprintf "solver_bench: certification FAILED at n=%d: %s\n%!"
            n (Certify.error_to_string e));
      Some ((match verdict with Ok _ -> true | Error _ -> false), cert_s)
    end
  in
  {
    n_blocks = n;
    n_cities = Dtsp.(d.n);
    repr = Ba_tsp.Tour_repr.kind_name (Three_opt.repr_kind st);
    build_s;
    build_words;
    sym_s;
    nbr_s;
    instance_words;
    opt_s;
    moves;
    moves_per_s = (if opt_s > 0. then float_of_int moves /. opt_s else 0.);
    move_cost_p50 = percentile 0.50 !samples;
    move_cost_p95 = percentile 0.95 !samples;
    seg_splits = Three_opt.seg_splits st;
    rebalances = Three_opt.rebalances st;
    scans_skipped = st.Three_opt.scans_skipped;
    best_cost = Three_opt.cost st;
    tour_hash = Hashtbl.hash (Three_opt.tour st);
    cert;
  }

let entry_json e =
  Json.Obj
    ([
       ("n_blocks", Json.Int e.n_blocks);
       ("n_cities", Json.Int e.n_cities);
       ("repr", Json.String e.repr);
       ("build_s", Json.Float e.build_s);
       ("build_words", Json.Float e.build_words);
       ("sym_s", Json.Float e.sym_s);
       ("nbr_s", Json.Float e.nbr_s);
       ("instance_words", Json.Int e.instance_words);
       ("opt_s", Json.Float e.opt_s);
       ("moves", Json.Int e.moves);
       ("moves_per_s", Json.Float e.moves_per_s);
       ("move_cost_p50", Json.Float e.move_cost_p50);
       ("move_cost_p95", Json.Float e.move_cost_p95);
       ("seg_splits", Json.Int e.seg_splits);
       ("rebalances", Json.Int e.rebalances);
       ("scans_skipped", Json.Int e.scans_skipped);
       ("best_cost", Json.Int e.best_cost);
       ("tour_hash", Json.Int e.tour_hash);
     ]
    @
    match e.cert with
    | None -> []
    | Some (ok, cert_s) ->
        [ ("certified", Json.Bool ok); ("cert_s", Json.Float cert_s) ])

let doc ~variant ~family ~seed ~kicks ~k ~jobs ~mode ~repr entries =
  Json.Obj
    [
      ("schema", Json.String "solver-bench/3");
      ("commit", Json.String (Ba_harness.Bench_json.current_commit ()));
      ("date", Json.String (Ba_harness.Bench_json.now_utc ()));
      ("variant", Json.String variant);
      ("family", Json.String family);
      ("seed", Json.Int seed);
      ("kicks", Json.Int kicks);
      ("neighbors", Json.Int k);
      ("jobs", Json.Int jobs);
      ("mode", Json.String mode);
      ("repr", Json.String repr);
      ("entries", Json.List (List.map entry_json entries));
    ]

let () =
  let sizes = ref [ 64; 256; 1024; 4096 ]
  and kicks = ref 256
  and seed = ref 7
  and k = ref 12
  and family = ref None
  and jobs = ref 1
  and mode = ref Neighbors.Auto
  and repr = ref Ba_tsp.Tour_repr.Auto
  and certify = ref false
  and variant = ref "heap-select"
  and out = ref None in
  let rec parse = function
    | [] -> ()
    | "--sizes" :: v :: rest ->
        sizes := List.map int_of_string (String.split_on_char ',' v);
        parse rest
    | "--kicks" :: v :: rest -> kicks := int_of_string v; parse rest
    | "--seed" :: v :: rest -> seed := int_of_string v; parse rest
    | "--neighbors" :: v :: rest -> k := int_of_string v; parse rest
    | "--family" :: "syn" :: rest -> family := None; parse rest
    | "--family" :: v :: rest -> (
        match Scale.find v with
        | Some f -> family := Some f; parse rest
        | None ->
            prerr_endline ("solver_bench: unknown family " ^ v);
            exit 2)
    | "--jobs" :: v :: rest -> jobs := int_of_string v; parse rest
    | "--mode" :: v :: rest ->
        (mode :=
           match v with
           | "auto" -> Neighbors.Auto
           | "exact" -> Neighbors.Exact
           | "select" -> Neighbors.Select
           | _ ->
               prerr_endline ("solver_bench: unknown mode " ^ v);
               exit 2);
        parse rest
    | "--repr" :: v :: rest -> (
        match Ba_tsp.Tour_repr.kind_of_string v with
        | Some r -> repr := r; parse rest
        | None ->
            prerr_endline ("solver_bench: unknown repr " ^ v);
            exit 2)
    | "--certify" :: rest -> certify := true; parse rest
    | "--variant" :: v :: rest -> variant := v; parse rest
    | "--json" :: v :: rest -> out := Some v; parse rest
    | a :: _ ->
        prerr_endline ("solver_bench: unknown argument " ^ a);
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let exec = if !jobs <= 1 then Executor.Seq else Executor.Pool !jobs in
  let entries =
    List.map
      (fun n ->
        let e =
          run_size ~family:!family ~seed:!seed ~kicks:!kicks ~k:!k
            ~mode:!mode ~repr:!repr ~exec ~certify:!certify n
        in
        Printf.eprintf
          "n=%-6d %-9s build %.4fs  sym %.4fs  nbr %.4fs  opt %.3fs  %9.0f \
           moves/s  %9d live words  cost %d%s\n%!"
          n e.repr e.build_s e.sym_s e.nbr_s e.opt_s e.moves_per_s
          e.instance_words e.best_cost
          (match e.cert with
          | None -> ""
          | Some (true, cs) -> Printf.sprintf "  certified (%.3fs)" cs
          | Some (false, _) -> "  CERT FAILED");
        e)
      !sizes
  in
  let family_name =
    match !family with None -> "syn" | Some f -> Scale.name f
  in
  let mode_name =
    match !mode with
    | Neighbors.Auto -> "auto"
    | Neighbors.Exact -> "exact"
    | Neighbors.Select -> "select"
  in
  let j =
    doc ~variant:!variant ~family:family_name ~seed:!seed ~kicks:!kicks
      ~k:!k ~jobs:!jobs ~mode:mode_name
      ~repr:(Ba_tsp.Tour_repr.kind_name !repr) entries
  in
  let failed =
    List.exists (fun e -> match e.cert with Some (false, _) -> true | _ -> false)
      entries
  in
  (match !out with
  | Some path -> Json.write_file path j
  | None -> print_endline (Json.to_string j));
  if failed then exit 1
