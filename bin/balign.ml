(* balign — branch alignment driver.

   Subcommands:
     compile   parse + lower a minic program, print CFG statistics
     dot       dump the CFGs in Graphviz format (--lint colors findings)
     lint      static analysis of CFGs and profiles (ba_check rules)
     analyze   structural analysis: dominators, loops, static estimate
     profile   run a program and print its edge-frequency profile
     align     lay out a program with a chosen method, report penalties
               (--certify emits an independent alignment certificate)
     serve     crash-only alignment daemon: framed JSON requests in,
               certified layouts or typed errors out (docs/SERVING.md)
     evaluate  cross-validate training vs testing inputs
     bounds    per-procedure lower bounds vs the TSP aligner
     bench     run the paper's experiment for one built-in benchmark
     report    print the paper's tables/figures (same as bench/main.exe)

   Every failure is a typed Ba_robust.Errors.t mapped to a documented
   exit code (see docs/ROBUSTNESS.md); commands never exit from the
   middle of their logic. *)

open Cmdliner
module Errors = Ba_robust.Errors
module Executor = Ba_engine.Executor

let ( let* ) r f = Result.bind r f

(* ---------------- shared helpers ---------------- *)

(** Training-profile source shared by align/evaluate/bench/serve:
    [`Collected] runs the program, [`Static] estimates frequencies from
    CFG structure alone ({!Ba_analysis.Estimate}). *)
let profile_mode_opt =
  Arg.(value
       & opt (enum [ ("collected", `Collected); ("static", `Static) ]) `Collected
       & info [ "profile" ] ~docv:"MODE"
           ~doc:"train layouts on the collected edge profile \
                 ($(b,collected), default) or on the structural estimate \
                 ($(b,static): Wu-Larus branch heuristics propagated \
                 through the loop forest — no training run at all). \
                 Measurements always use the collected testing profile.")

(** Evaluate one command body: print the typed error and turn it into
    its documented exit code.  Escaped exceptions (interpreter runtime
    errors, I/O, stack overflow) are converted, never re-raised. *)
let run_term (f : unit -> (unit, Errors.t) result) : int =
  let result =
    try f () with
    | Ba_minic.Interp.Runtime_error m ->
        Error (Errors.Internal { where = "minic runtime"; reason = m })
    | Sys_error m -> Error (Errors.Io_error { path = "?"; reason = m })
    | Stack_overflow ->
        Error (Errors.Internal { where = "balign"; reason = "stack overflow" })
    | e -> Error (Errors.of_exn ~where:"balign" e)
  in
  match result with
  | Ok () -> 0
  | Error e ->
      Fmt.epr "balign: error: %a@." Errors.pp e;
      Errors.exit_code e

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> Ok s
  | exception Sys_error m -> Error (Errors.Io_error { path; reason = m })

(** Parse a read() input string, reporting {e every} bad token with its
    byte offset rather than dying on the first one. *)
let parse_input (s : string) : (int array, Errors.t) result =
  let is_sep = function ' ' | ',' | '\t' | '\n' | '\r' -> true | _ -> false in
  let n = String.length s in
  let vals = ref [] and bad = ref [] and i = ref 0 in
  while !i < n do
    while !i < n && is_sep s.[!i] do incr i done;
    if !i < n then begin
      let start = !i in
      while !i < n && not (is_sep s.[!i]) do incr i done;
      let tok = String.sub s start (!i - start) in
      match int_of_string_opt tok with
      | Some v -> vals := v :: !vals
      | None -> bad := (start, tok) :: !bad
    end
  done;
  if !bad = [] then Ok (Array.of_list (List.rev !vals))
  else Error (Errors.Invalid_input { tokens = List.rev !bad })

let load_program path =
  let* src = read_file path in
  Ba_minic.Compile.compile src

let load_input ~input ~input_file =
  match (input, input_file) with
  | Some s, None -> parse_input s
  | None, Some f ->
      let* s = read_file f in
      parse_input s
  | None, None -> Ok [||]
  | Some _, Some _ -> Error (Errors.Usage "give --input or --input-file, not both")

(** Collect a training profile only when an input was actually given:
    lint without an input stays purely structural (running an
    interactive program with no input could spin). *)
let load_profile_opt c ~input ~input_file =
  match (input, input_file) with
  | None, None -> Ok None
  | _ ->
      let* inp = load_input ~input ~input_file in
      Ok (Some (Ba_minic.Compile.profile c ~input:inp))

(* ---------------- common options ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"minic source file")

let input_opt =
  Arg.(value & opt (some string) None & info [ "input" ] ~docv:"INTS"
         ~doc:"comma/space separated integers fed to read()")

let input_file_opt =
  Arg.(value & opt (some file) None & info [ "input-file" ] ~docv:"FILE"
         ~doc:"file of integers fed to read()")

let deadline_opt =
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS"
         ~doc:"wall-clock solver budget in milliseconds; 0 degrades \
               immediately to the greedy fallback")

let jobs_conv : int Arg.conv =
  let parse = function
    | "max" -> Ok (Executor.default_jobs ())
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 1 -> Ok n
        | _ -> Error (`Msg "JOBS must be a positive integer or 'max'"))
  in
  Arg.conv (parse, Fmt.int)

let jobs_opt =
  Arg.(value & opt jobs_conv 1
       & info [ "j"; "jobs" ] ~docv:"JOBS"
           ~doc:"run per-procedure work on $(docv) domains (a positive \
                 integer, or $(b,max) for the recommended domain count). \
                 Output is bit-identical at any value.")

let trace_opt =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"write a Chrome trace_event JSON of per-task spans to $(docv) \
                 (load it in chrome://tracing or Perfetto)")

let metrics_opt =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"write a solver-metrics snapshot to $(docv): $(b,*.csv) as \
                 CSV, $(b,-) or $(b,stderr) as a stderr summary, anything \
                 else as JSON")

(** Run a command body with the requested observability outputs.
    Tracing is enabled before the body runs; the trace/metrics files
    are written afterwards even when the body failed (a trace of a
    failing run is the one worth keeping).  Write errors escape as
    [Sys_error] and map to the documented I/O exit code. *)
let with_obs ~trace ~metrics (f : unit -> (unit, Errors.t) result) :
    (unit, Errors.t) result =
  if trace <> None then Ba_obs.Trace.set_enabled true;
  let result = f () in
  Option.iter Ba_obs.Trace.write_chrome trace;
  Option.iter (fun spec -> Ba_obs.Sink.emit (Ba_obs.Sink.of_spec spec)) metrics;
  result

let model_conv : Ba_machine.Model.t Arg.conv =
  let parse s =
    match Ba_machine.Model.find s with
    | Some m -> Ok m
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %s (known: %s)" s
               (String.concat ", " Ba_machine.Model.known)))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Ba_machine.Model.to_string m))

let model_opt =
  Arg.(value & opt model_conv Ba_machine.Model.default
       & info [ "model" ] ~docv:"MODEL"
           ~doc:"cost model the whole pipeline runs under: \
                 $(b,alpha21164) (the paper's Alpha 21164 penalties, \
                 default), $(b,deep-pipeline) (10-cycle mispredicts), \
                 $(b,free-fetch) (fetch-bandwidth-free front end), or \
                 $(b,ext-tsp)[:$(i,WINDOW)] (the Ext-TSP code-locality \
                 objective with a forward jump window of $(i,WINDOW) \
                 bytes, default 1024)")

let fallback_opt =
  Arg.(value
       & opt (enum [ ("chain", true); ("none", false) ]) true
       & info [ "fallback" ] ~docv:"MODE"
           ~doc:"on a solver timeout or layout failure, degrade along the \
                 deterministic chain ($(b,chain), default) or fail with a \
                 typed error ($(b,none))")

(** The documented exit codes (docs/ROBUSTNESS.md), one per error
    class, attached to every subcommand's man page. *)
let exits =
  Cmd.Exit.defaults
  @ [
      Cmd.Exit.info 2 ~doc:"usage error (bad flag combination or argument)";
      Cmd.Exit.info 3 ~doc:"source parse/check error";
      Cmd.Exit.info 4 ~doc:"malformed input tokens";
      Cmd.Exit.info 5 ~doc:"invalid control-flow graph";
      Cmd.Exit.info 6 ~doc:"invalid or mismatched profile";
      Cmd.Exit.info 7 ~doc:"solver budget exhausted (and --fallback none)";
      Cmd.Exit.info 8 ~doc:"semantically unfaithful layout";
      Cmd.Exit.info 9 ~doc:"I/O error";
      Cmd.Exit.info 10 ~doc:"internal error";
    ]

let cmd name ?man ~doc term = Cmd.v (Cmd.info name ?man ~doc ~exits) term

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run file =
    let* c = load_program file in
    Fmt.pr "%d function(s)@." (Array.length c.Ba_minic.Compile.cfgs);
    Array.iteri
      (fun fid g ->
        Fmt.pr "  [%d] %-16s %3d blocks, %3d CFG edges, %3d branch sites, %4d instrs@."
          fid c.Ba_minic.Compile.names.(fid) (Ba_cfg.Cfg.n_blocks g)
          (Ba_cfg.Cfg.n_edges g) (Ba_cfg.Cfg.n_branch_sites g)
          (Ba_cfg.Cfg.total_size g))
      c.Ba_minic.Compile.cfgs;
    Ok ()
  in
  cmd "compile" ~doc:"compile a minic program and print CFG statistics"
    Term.(const (fun file -> run_term (fun () -> run file)) $ file_arg)

(* ---------------- dot ---------------- *)

let dot_cmd =
  let run file func lint input input_file =
    let* c = load_program file in
    let* diags =
      if not lint then Ok []
      else
        let* profile = load_profile_opt c ~input ~input_file in
        let r = Ba_check.Lint.analyze ?profile c.Ba_minic.Compile.cfgs in
        Ok r.Ba_check.Lint.diags
    in
    Array.iteri
      (fun fid g ->
        if func = None || func = Some c.Ba_minic.Compile.names.(fid) then
          if lint then begin
            let block_attr, edge_attr =
              Ba_check.Lint.dot_annotations ~proc:fid diags
            in
            print_string (Ba_cfg.Dot.to_string ~block_attr ~edge_attr g)
          end
          else print_string (Ba_cfg.Dot.to_string g))
      c.Ba_minic.Compile.cfgs;
    Ok ()
  in
  let func =
    Arg.(value & opt (some string) None & info [ "function" ] ~docv:"NAME"
           ~doc:"only this function")
  in
  let lint_flag =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"run the ba_check rules and color offending blocks/edges \
                   (rule ids in the tooltip); give --input to include the \
                   profile rules")
  in
  cmd "dot" ~doc:"dump CFGs in Graphviz DOT format"
    Term.(const (fun file func lint i inf ->
              run_term (fun () -> run file func lint i inf))
          $ file_arg $ func $ lint_flag $ input_opt $ input_file_opt)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let list_rules () =
    List.iter
      (fun (r : Ba_check.Rules.rule) ->
        Fmt.pr "%-6s %-26s %-8s %s@." r.Ba_check.Rules.code
          r.Ba_check.Rules.id
          (Ba_check.Diagnostic.severity_name r.Ba_check.Rules.severity)
          r.Ba_check.Rules.doc)
      Ba_check.Rules.all;
    Ok ()
  in
  let run file input input_file format strict list =
    if list then list_rules ()
    else
      let* file =
        match file with
        | Some f -> Ok f
        | None -> Error (Errors.Usage "give a FILE to lint (or --list)")
      in
      let* c = load_program file in
      let* profile = load_profile_opt c ~input ~input_file in
      let report = Ba_check.Lint.analyze ?profile c.Ba_minic.Compile.cfgs in
      (match format with
      | `Text -> Fmt.pr "%a" Ba_check.Lint.pp_report report
      | `Json ->
          print_endline
            (Ba_obs.Json.to_string (Ba_check.Lint.report_json report))
      | `Sarif ->
          print_endline
            (Ba_obs.Json.to_string (Ba_check.Lint.sarif_json report)));
      match Ba_check.Lint.first_gating ~strict report with
      | None -> Ok ()
      | Some d -> Error (Ba_check.Lint.to_error d)
  in
  let opt_file_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"minic source file (omit with --list)")
  in
  let format_opt =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json); ("sarif", `Sarif) ])
             `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"findings as one line each ($(b,text), default), as a \
                   $(b,balign-lint-1) JSON document ($(b,json)), or as a \
                   SARIF 2.1.0 log with the rule catalogue as tool \
                   metadata ($(b,sarif))")
  in
  let strict_opt =
    Arg.(value & flag
         & info [ "strict" ]
             ~doc:"warnings gate too (infos never do); the exit code is the \
                   documented code of the first gating finding's error class")
  in
  let list_opt =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"print the rule catalogue (code, id, severity, rationale) \
                   and exit; no FILE needed")
  in
  cmd "lint"
    ~doc:"static analysis: check CFGs (and, with --input, the profile) \
          against the ba_check rule catalogue"
    Term.(const (fun file i f fmt s l ->
              run_term (fun () -> run file i f fmt s l))
          $ opt_file_arg $ input_opt $ input_file_opt $ format_opt $ strict_opt
          $ list_opt)

(* ---------------- analyze ---------------- *)

let analyze_cmd =
  let parse_scale spec =
    match String.index_opt spec ':' with
    | None ->
        Error
          (Errors.Usage
             (Printf.sprintf "bad --scale %S (expected FAMILY:N)" spec))
    | Some i -> (
        let fam = String.sub spec 0 i in
        let n = String.sub spec (i + 1) (String.length spec - i - 1) in
        match (Ba_workloads.Scale.find fam, int_of_string_opt n) with
        | None, _ ->
            Error
              (Errors.Usage
                 (Printf.sprintf "unknown scale family %S (have: %s)" fam
                    (String.concat ", "
                       (List.map Ba_workloads.Scale.name Ba_workloads.Scale.all))))
        | _, None ->
            Error (Errors.Usage (Printf.sprintf "bad block count %S" n))
        | Some fam, Some n ->
            if n < Ba_workloads.Scale.min_blocks then
              Error
                (Errors.Usage
                   (Printf.sprintf "N must be at least %d"
                      Ba_workloads.Scale.min_blocks))
            else Ok (fam, n))
  in
  let run file scale format top invocations =
    let* reports =
      match (file, scale) with
      | Some _, Some _ ->
          Error (Errors.Usage "give FILE or --scale FAMILY:N, not both")
      | None, None -> Error (Errors.Usage "give a FILE or --scale FAMILY:N")
      | Some f, None ->
          let* c = load_program f in
          Ok
            (Array.to_list
               (Array.mapi
                  (fun fid g ->
                    Ba_analysis.Report.analyze ~top ?invocations ~fid g)
                  c.Ba_minic.Compile.cfgs))
      | None, Some spec ->
          let* fam, n = parse_scale spec in
          let g = Ba_workloads.Scale.cfg fam ~n in
          Ok [ Ba_analysis.Report.analyze ~top ?invocations ~fid:0 g ]
    in
    (match format with
    | `Text -> List.iter (Fmt.pr "%a" Ba_analysis.Report.pp) reports
    | `Json ->
        print_endline
          (Ba_obs.Json.to_string (Ba_analysis.Report.program_json reports)));
    Ok ()
  in
  let opt_file_arg =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"minic source file (or use --scale)")
  in
  let scale_opt =
    Arg.(value & opt (some string) None
         & info [ "scale" ] ~docv:"FAMILY:N"
             ~doc:"analyze a synthetic whole-program-scale CFG instead of a \
                   source file: $(b,loop-nest), $(b,switch) or $(b,interp) \
                   with $(i,N) blocks (e.g. $(b,switch:100000))")
  in
  let format_opt =
    Arg.(value
         & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"human-readable summaries ($(b,text), default) or a \
                   $(b,balign-analyze-1) JSON document ($(b,json))")
  in
  let top_opt =
    Arg.(value & opt int 5
         & info [ "top" ] ~docv:"N"
             ~doc:"number of hottest blocks to report per procedure")
  in
  let invocations_opt =
    Arg.(value & opt (some int) None
         & info [ "invocations" ] ~docv:"N"
             ~doc:"requested invocation scale of the estimated counts \
                   (default 10000; clamped so no count can overflow)")
  in
  let man =
    [
      `S Manpage.s_examples;
      `P "Structure and estimated hotness of a source program:";
      `Pre "  balign analyze prog.mc";
      `P "A 100k-block synthetic jump-table cascade, as JSON:";
      `Pre "  balign analyze --scale switch:100000 --format json";
    ]
  in
  cmd "analyze" ~man
    ~doc:"structural analysis: dominators, loop forest, irreducibility and \
          the static profile estimate, without running the program"
    Term.(const (fun file sc fmt top inv ->
              run_term (fun () -> run file sc fmt top inv))
          $ opt_file_arg $ scale_opt $ format_opt $ top_opt $ invocations_opt)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run file input input_file =
    let* c = load_program file in
    let* inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    Array.iteri
      (fun fid g ->
        let p = Ba_profile.Profile.proc prof fid in
        Fmt.pr "function %s: %d transfers, %d/%d branch sites touched@."
          c.Ba_minic.Compile.names.(fid)
          (Ba_profile.Profile.total_transfers p)
          (Ba_profile.Profile.branch_sites_touched g p)
          (Ba_cfg.Cfg.n_branch_sites g);
        Fmt.pr "%a" Ba_profile.Profile.pp_proc p)
      c.Ba_minic.Compile.cfgs;
    Ok ()
  in
  cmd "profile" ~doc:"run a program and print its edge profile"
    Term.(const (fun file i f -> run_term (fun () -> run file i f))
          $ file_arg $ input_opt $ input_file_opt)

(* ---------------- align ---------------- *)

let method_conv : Ba_align.Driver.method_ Arg.conv =
  let parse = function
    | "original" -> Ok Ba_align.Driver.Original
    | "greedy" -> Ok Ba_align.Driver.Greedy
    | "calder" -> Ok Ba_align.Driver.Calder
    | "calder-exhaustive" -> Ok Ba_align.Driver.Calder_exhaustive
    | "btfnt" -> Ok Ba_align.Driver.Btfnt
    | "tsp" -> Ok (Ba_align.Driver.Tsp Ba_align.Tsp_align.default)
    | s -> Error (`Msg (Printf.sprintf "unknown method %s" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Ba_align.Driver.method_name m))

let method_opt =
  Arg.(value & opt method_conv (Ba_align.Driver.Tsp Ba_align.Tsp_align.default)
       & info [ "method" ] ~docv:"METHOD"
           ~doc:"original | greedy | calder | calder-exhaustive | btfnt | tsp")

let tour_repr_conv : Ba_tsp.Tour_repr.kind Arg.conv =
  let parse s =
    match Ba_tsp.Tour_repr.kind_of_string s with
    | Some k -> Ok k
    | None ->
        Error (`Msg (Printf.sprintf "unknown tour representation %s" s))
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf (Ba_tsp.Tour_repr.kind_name k))

let tour_repr_opt =
  Arg.(value & opt tour_repr_conv Ba_tsp.Tour_repr.Auto
       & info [ "tour-repr" ] ~docv:"REPR"
           ~doc:"tour representation of the 3-Opt solver: $(b,array) (flat \
                 arrays, O(n) moves), $(b,two-level) (√n-segment lists, \
                 O(√n) moves), or $(b,auto) (default: flat up to the \
                 documented threshold, two-level above).  The trajectory is \
                 identical either way; only the time to walk it changes.")

(** Rewire the solver config of a TSP method (no-op on the others). *)
let method_with_tour_repr m tour_repr =
  match m with
  | Ba_align.Driver.Tsp cfg ->
      Ba_align.Driver.Tsp
        {
          cfg with
          Ba_align.Tsp_align.solver =
            { cfg.Ba_align.Tsp_align.solver with Ba_tsp.Iterated.tour_repr };
        }
  | m -> m

let align_cmd =
  let run file input input_file m model deadline_ms fallback jobs certify
      profile_mode tour_repr =
    let m = method_with_tour_repr m tour_repr in
    let executor = Executor.of_jobs jobs in
    let* c = load_program file in
    let* inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    let cfgs = c.Ba_minic.Compile.cfgs in
    (* the training profile drives the layout; penalties and cycles are
       always measured against the collected profile of this input *)
    let train =
      match profile_mode with
      | `Collected -> prof
      | `Static ->
          Fmt.pr "training profile: static estimate (no training run)@.";
          Ba_analysis.Estimate.program cfgs
    in
    let* report =
      Ba_align.Driver.align_checked ~executor ?deadline_ms ~fallback m
        model cfgs ~train
    in
    let aligned = report.Ba_align.Driver.aligned in
    List.iter
      (fun f -> Fmt.pr "fallback: %a@." Ba_align.Driver.pp_fallback f)
      report.Ba_align.Driver.fallbacks;
    let* orig =
      Ba_align.Driver.align_checked ~executor Ba_align.Driver.Original
        model cfgs ~train:prof
    in
    let orig = orig.Ba_align.Driver.aligned in
    let before = Ba_align.Driver.analytic_penalty model orig ~test:prof in
    let after = Ba_align.Driver.analytic_penalty model aligned ~test:prof in
    Array.iteri
      (fun fid order ->
        Fmt.pr "%s: %a@." c.Ba_minic.Compile.names.(fid)
          Fmt.(array ~sep:(any " ") int)
          order)
      aligned.Ba_align.Driver.orders;
    Fmt.pr "control penalty: %d -> %d cycles (%s)@." before after
      (Ba_align.Driver.method_name m);
    let run_prog sink = ignore (Ba_minic.Compile.run c ~input:inp ~sink) in
    let sim_o = Ba_align.Driver.simulate model orig ~run:run_prog in
    let sim_a = Ba_align.Driver.simulate model aligned ~run:run_prog in
    Fmt.pr "simulated cycles: %d -> %d (icache misses %d -> %d)@."
      sim_o.Ba_machine.Cycles.cycles sim_a.Ba_machine.Cycles.cycles
      sim_o.Ba_machine.Cycles.icache_misses sim_a.Ba_machine.Cycles.icache_misses;
    match certify with
    | None -> Ok ()
    | Some path -> (
        (* re-verify the produced layouts from first principles and emit
           the machine-readable certificate *)
        match
          Ba_check.Certify.program
            ~hk:(fun _ -> Ba_check.Certify.Compute Ba_tsp.Held_karp.default)
            model cfgs ~train
            ~orders:aligned.Ba_align.Driver.orders
        with
        | Error f ->
            Error
              (Errors.Invalid_layout
                 {
                   proc = Some f.Ba_check.Certify.fproc;
                   name = Some f.Ba_check.Certify.fname;
                   reason =
                     Ba_check.Certify.error_to_string f.Ba_check.Certify.error;
                 })
        | Ok cert ->
            let doc = Ba_check.Certify.to_json cert in
            if path = "-" then print_endline (Ba_obs.Json.to_string doc)
            else Ba_obs.Json.write_file path doc;
            Fmt.pr "certificate: %d procedure(s), total cost %d cycles@."
              (List.length cert.Ba_check.Certify.procs)
              cert.Ba_check.Certify.total_cost;
            Ok ())
  in
  let certify_opt =
    Arg.(value & opt (some string) None
         & info [ "certify" ] ~docv:"FILE"
             ~doc:"independently re-verify every produced layout \
                   (Hamiltonian walk, locked pairs, recomputed cost, \
                   Held-Karp bound) and write the $(b,balign-cert-1) JSON \
                   certificate to $(docv) ($(b,-) for stdout)")
  in
  let man =
    [
      `S Manpage.s_examples;
      `P "Align under the default Alpha 21164 penalties:";
      `Pre "  balign align prog.mc --input 40";
      `P "The same layout problem under a 10-cycle-mispredict pipeline:";
      `Pre "  balign align prog.mc --input 40 --model deep-pipeline";
      `P "Optimize code locality instead of branch penalties (Ext-TSP \
          with a 512-byte forward window):";
      `Pre "  balign align prog.mc --input 40 --model ext-tsp:512";
    ]
  in
  cmd "align" ~man ~doc:"align a program and report penalty and cycle changes"
    Term.(const (fun file i f m mo d fb j cert pm repr trace metrics ->
              run_term (fun () ->
                  with_obs ~trace ~metrics (fun () ->
                      run file i f m mo d fb j cert pm repr)))
          $ file_arg $ input_opt $ input_file_opt $ method_opt $ model_opt
          $ deadline_opt $ fallback_opt $ jobs_opt $ certify_opt
          $ profile_mode_opt $ tour_repr_opt $ trace_opt $ metrics_opt)

(* ---------------- evaluate (cross-validation) ---------------- *)

let evaluate_cmd =
  let run file train_input test_input model profile_mode =
    let* c = load_program file in
    let* train_inp = parse_input train_input in
    let* test_inp = parse_input test_input in
    let cfgs = c.Ba_minic.Compile.cfgs in
    let train = Ba_minic.Compile.profile c ~input:train_inp in
    let test = Ba_minic.Compile.profile c ~input:test_inp in
    (* --profile static adds a third regime: layouts trained on the
       structural estimate, measured (like the others) on the testing
       profile *)
    let static =
      match profile_mode with
      | `Collected -> None
      | `Static -> Some (Ba_analysis.Estimate.program cfgs)
    in
    (match static with
    | None -> Fmt.pr "%-18s %14s %14s@." "method" "train=test" "cross-trained"
    | Some _ ->
        Fmt.pr "%-18s %14s %14s %14s@." "method" "train=test" "cross-trained"
          "static-trained");
    List.iter
      (fun m ->
        let self_ = Ba_align.Driver.align m model cfgs ~train:test in
        let cross = Ba_align.Driver.align m model cfgs ~train in
        let p aligned = Ba_align.Driver.analytic_penalty model aligned ~test in
        match static with
        | None ->
            Fmt.pr "%-18s %14d %14d@."
              (Ba_align.Driver.method_name m)
              (p self_) (p cross)
        | Some est ->
            let static_ = Ba_align.Driver.align m model cfgs ~train:est in
            Fmt.pr "%-18s %14d %14d %14d@."
              (Ba_align.Driver.method_name m)
              (p self_) (p cross) (p static_))
      [
        Ba_align.Driver.Original;
        Ba_align.Driver.Greedy;
        Ba_align.Driver.Calder;
        Ba_align.Driver.Btfnt;
        Ba_align.Driver.Tsp Ba_align.Tsp_align.default;
      ];
    Ok ()
  in
  let train_arg =
    Arg.(required & opt (some string) None & info [ "train-input" ] ~docv:"INTS"
           ~doc:"training input (integers fed to read())")
  in
  let test_arg =
    Arg.(required & opt (some string) None & info [ "test-input" ] ~docv:"INTS"
           ~doc:"testing input (integers fed to read())")
  in
  cmd "evaluate"
    ~doc:"cross-validate: penalties when training and testing inputs differ"
    Term.(const (fun file tr te mo pm ->
              run_term (fun () -> run file tr te mo pm))
          $ file_arg $ train_arg $ test_arg $ model_opt $ profile_mode_opt)

(* ---------------- bounds ---------------- *)

let bounds_cmd =
  let run file input input_file model =
    let* c = load_program file in
    let* inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    Fmt.pr "%-16s %8s %12s %12s %12s %12s@." "function" "blocks" "tsp" "hk-bound"
      "ap-bound" "exact";
    Array.iteri
      (fun fid g ->
        let p = Ba_profile.Profile.proc prof fid in
        let r = Ba_align.Tsp_align.align model g ~profile:p in
        let hk =
          Ba_align.Bounds.held_karp model g ~profile:p
            ~upper:r.Ba_align.Tsp_align.cost
        in
        let ap = Ba_align.Bounds.ap model g ~profile:p in
        let ex =
          match Ba_align.Bounds.exact model g ~profile:p with
          | Some v -> string_of_int v
          | None -> "-"
        in
        Fmt.pr "%-16s %8d %12d %12d %12d %12s@." c.Ba_minic.Compile.names.(fid)
          (Ba_cfg.Cfg.n_blocks g) r.Ba_align.Tsp_align.cost hk ap ex)
      c.Ba_minic.Compile.cfgs;
    Ok ()
  in
  cmd "bounds" ~doc:"per-procedure lower bounds vs the TSP aligner"
    Term.(const (fun file i f mo -> run_term (fun () -> run file i f mo))
          $ file_arg $ input_opt $ input_file_opt $ model_opt)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let run name model deadline_ms fallback jobs json profile_mode tour_repr =
    let find name =
      List.find_opt
        (fun w -> w.Ba_workloads.Workload.name = name)
        Ba_workloads.Workload_apps.everything
    in
    match find name with
    | None ->
        Error
          (Errors.Usage
             (Printf.sprintf "unknown benchmark %s (have: %s)" name
                (String.concat ", "
                   (List.map (fun w -> w.Ba_workloads.Workload.name)
                      Ba_workloads.Workload_apps.everything))))
    | Some w ->
        let base = Ba_harness.Runner.default in
        let config =
          {
            base with
            Ba_harness.Runner.model;
            tsp =
              {
                base.Ba_harness.Runner.tsp with
                Ba_align.Tsp_align.solver =
                  {
                    base.Ba_harness.Runner.tsp.Ba_align.Tsp_align.solver with
                    Ba_tsp.Iterated.deadline_ms;
                    tour_repr;
                  };
              };
          }
        in
        let outcomes =
          Ba_harness.Runner.run_all_outcomes ~config
            ~executor:(Executor.of_jobs jobs) ~workloads:[ w ] ()
        in
        let rows =
          List.map (fun o -> o.Ba_engine.Task.value) outcomes
        in
        Option.iter
          (fun path -> Ba_harness.Bench_json.write ~model path ~jobs outcomes)
          json;
        let timeouts =
          List.fold_left
            (fun acc r -> acc + r.Ba_harness.Runner.tsp_timeouts)
            0 rows
        in
        let* () =
          if timeouts = 0 then Ok ()
          else if fallback then begin
            Fmt.pr "note: %d TSP solve(s) hit the budget; degraded layouts used@."
              timeouts;
            Ok ()
          end
          else
            Error
              (Errors.Solver_timeout
                 {
                   proc = None;
                   elapsed_ms =
                     (match deadline_ms with Some d -> float_of_int d | None -> 0.);
                   deadline_ms;
                   moves = 0;
                 })
        in
        Ba_harness.Tables.table1 Fmt.stdout rows;
        Ba_harness.Tables.table4 Fmt.stdout rows;
        Ba_harness.Tables.fig2_penalties Fmt.stdout rows;
        Ba_harness.Tables.fig2_times Fmt.stdout rows;
        Ba_harness.Tables.fig3_penalties Fmt.stdout rows;
        Ba_harness.Tables.fig3_times Fmt.stdout rows;
        (* the static rows are always measured (and always in --json);
           the table is opt-in so the default stdout stays byte-stable *)
        (match profile_mode with
        | `Collected -> ()
        | `Static -> Ba_harness.Tables.static_recovery Fmt.stdout rows);
        Ok ()
  in
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
           ~doc:"benchmark short name (spec92: com dod eqn esp su2 xli; spec95: m88 ijp prl vor go)")
  in
  let json_opt =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"write the machine-readable bench trajectory \
                   ($(b,{commit, date, rows})) to $(docv)")
  in
  let man =
    [
      `S Manpage.s_examples;
      `P "The paper's experiment, with the machine-readable trajectory:";
      `Pre "  balign bench com --json out.json";
      `P "The same rows measured under the Ext-TSP locality objective:";
      `Pre "  balign bench com --model ext-tsp --json out.json";
    ]
  in
  cmd "bench" ~man
    ~doc:"run the paper's experiment for one built-in benchmark"
    Term.(const (fun n mo d fb j json pm repr trace metrics ->
              run_term (fun () ->
                  with_obs ~trace ~metrics (fun () ->
                      run n mo d fb j json pm repr)))
          $ bench_name $ model_opt $ deadline_opt $ fallback_opt $ jobs_opt
          $ json_opt $ profile_mode_opt $ tour_repr_opt $ trace_opt
          $ metrics_opt)

(* ---------------- serve ---------------- *)

let serve_cmd =
  let run socket model jobs cache_size cache_file max_frame_bytes max_blocks
      default_deadline_ms max_deadline_ms profile_mode =
    let config =
      {
        Ba_serve.Server.executor = Executor.of_jobs jobs;
        model;
        cache_capacity = cache_size;
        cache_file;
        max_frame_bytes;
        max_blocks;
        default_deadline_ms;
        max_deadline_ms;
        static_profile = (profile_mode = `Static);
      }
    in
    let code =
      match socket with
      | None -> Ba_serve.Server.serve_stdin config
      | Some path -> Ba_serve.Server.serve_socket config ~path
    in
    if code = 0 then Ok ()
    else
      (* serve_socket already printed the typed error; just carry the
         documented code out *)
      exit code
  in
  let socket_opt =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"listen on a Unix-domain socket instead of stdin/stdout \
                   (connections served sequentially)")
  in
  let cache_size_opt =
    Arg.(value & opt int 256
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"layout-cache capacity in entries (LRU eviction)")
  in
  let cache_file_opt =
    Arg.(value & opt (some string) None
         & info [ "cache-file" ] ~docv:"FILE"
             ~doc:"persist the layout cache to $(docv) on exit and load it \
                   at start (warm restart); entries are re-certified on \
                   every hit, so a stale or tampered file degrades to cold \
                   misses, never to wrong answers")
  in
  let max_frame_opt =
    Arg.(value & opt int (4 * 1024 * 1024)
         & info [ "max-frame-bytes" ] ~docv:"BYTES"
             ~doc:"reject (and skip) request frames larger than $(docv)")
  in
  let max_blocks_opt =
    Arg.(value & opt int 10_000
         & info [ "max-blocks" ] ~docv:"N"
             ~doc:"reject CFGs with more than $(docv) blocks")
  in
  let default_deadline_opt =
    Arg.(value & opt (some int) None
         & info [ "default-deadline-ms" ] ~docv:"MS"
             ~doc:"solver budget applied to requests that specify none")
  in
  let max_deadline_opt =
    Arg.(value & opt (some int) None
         & info [ "max-deadline-ms" ] ~docv:"MS"
             ~doc:"clamp client-requested deadlines to at most $(docv)")
  in
  cmd "serve"
    ~doc:"long-running alignment daemon: length-prefixed JSON align \
          requests on stdin (or --socket), certified layouts or typed \
          errors out; crash-only — requests can never take the server down \
          (see docs/SERVING.md)"
    Term.(const (fun s mo j cs cf mf mb dd md pm ->
              run_term (fun () -> run s mo j cs cf mf mb dd md pm))
          $ socket_opt $ model_opt $ jobs_opt $ cache_size_opt $ cache_file_opt
          $ max_frame_opt $ max_blocks_opt $ default_deadline_opt
          $ max_deadline_opt $ profile_mode_opt)

(* ---------------- report ---------------- *)

let report_cmd =
  let known =
    [ "table1"; "table2"; "table3"; "table4"; "fig2"; "fig3"; "summary" ]
  in
  let run sections jobs model =
    let* () =
      match List.filter (fun s -> not (List.mem s known)) sections with
      | [] -> Ok ()
      | bad ->
          Error
            (Errors.Usage
               (Printf.sprintf "unknown section(s) %s (have: %s)"
                  (String.concat ", " bad)
                  (String.concat ", " known)))
    in
    let rows =
      Ba_harness.Runner.run_all
        ~config:{ Ba_harness.Runner.default with Ba_harness.Runner.model }
        ~executor:(Executor.of_jobs jobs) ()
    in
    let want s = sections = [] || List.mem s sections in
    if want "table1" then Ba_harness.Tables.table1 Fmt.stdout rows;
    if want "table2" then Ba_harness.Tables.table2 Fmt.stdout rows;
    if want "table3" then
      Ba_harness.Tables.table3 Fmt.stdout model.Ba_machine.Model.penalties;
    if want "table4" then Ba_harness.Tables.table4 Fmt.stdout rows;
    if want "fig2" then begin
      Ba_harness.Tables.fig2_penalties Fmt.stdout rows;
      Ba_harness.Tables.fig2_times Fmt.stdout rows
    end;
    if want "fig3" then begin
      Ba_harness.Tables.fig3_penalties Fmt.stdout rows;
      Ba_harness.Tables.fig3_times Fmt.stdout rows
    end;
    if want "summary" then Ba_harness.Tables.summary Fmt.stdout rows;
    Ok ()
  in
  let sections =
    Arg.(value & pos_all string [] & info [] ~docv:"SECTION"
           ~doc:"table1 table2 table3 table4 fig2 fig3 summary (default: all)")
  in
  cmd "report" ~doc:"print the paper's tables and figures"
    Term.(const (fun s j mo trace metrics ->
              run_term (fun () ->
                  with_obs ~trace ~metrics (fun () -> run s j mo)))
          $ sections $ jobs_opt $ model_opt $ trace_opt $ metrics_opt)

(* ---------------- main ---------------- *)

let () =
  let doc = "near-optimal intraprocedural branch alignment (PLDI 1997)" in
  let info = Cmd.info "balign" ~version:"1.0.0" ~doc ~exits in
  let group =
    Cmd.group info
      [
        compile_cmd; dot_cmd; lint_cmd; analyze_cmd; profile_cmd; align_cmd;
        evaluate_cmd; bounds_cmd; bench_cmd; serve_cmd; report_cmd;
      ]
  in
  exit (Cmd.eval' group)
