(* balign — branch alignment driver.

   Subcommands:
     compile   parse + lower a minic program, print CFG statistics
     dot       dump the CFGs in Graphviz format
     profile   run a program and print its edge-frequency profile
     align     lay out a program with a chosen method, report penalties
     bounds    per-procedure lower bounds vs the TSP aligner
     bench     run the paper's experiment for one built-in benchmark
     report    print the paper's tables/figures (same as bench/main.exe) *)

open Cmdliner

let penalties = Ba_machine.Penalties.alpha_21164

(* ---------------- shared helpers ---------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_input (s : string) : int array =
  s
  |> String.split_on_char ','
  |> List.concat_map (String.split_on_char ' ')
  |> List.filter_map (fun tok ->
         let tok = String.trim tok in
         if tok = "" then None
         else
           match int_of_string_opt tok with
           | Some v -> Some v
           | None ->
               Fmt.epr "error: input token %S is not an integer@." tok;
               exit 1)
  |> Array.of_list

let load_program path =
  match Ba_minic.Compile.compile (read_file path) with
  | Ok c -> c
  | Error m ->
      Fmt.epr "error: %s@." m;
      exit 1

let load_input ~input ~input_file =
  match (input, input_file) with
  | Some s, None -> parse_input s
  | None, Some f -> parse_input (read_file f)
  | None, None -> [||]
  | Some _, Some _ ->
      Fmt.epr "error: give --input or --input-file, not both@.";
      exit 1

(* ---------------- common options ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"minic source file")

let input_opt =
  Arg.(value & opt (some string) None & info [ "input" ] ~docv:"INTS"
         ~doc:"comma/space separated integers fed to read()")

let input_file_opt =
  Arg.(value & opt (some file) None & info [ "input-file" ] ~docv:"FILE"
         ~doc:"file of integers fed to read()")

(* ---------------- compile ---------------- *)

let compile_cmd =
  let run file =
    let c = load_program file in
    Fmt.pr "%d function(s)@." (Array.length c.Ba_minic.Compile.cfgs);
    Array.iteri
      (fun fid g ->
        Fmt.pr "  [%d] %-16s %3d blocks, %3d CFG edges, %3d branch sites, %4d instrs@."
          fid c.Ba_minic.Compile.names.(fid) (Ba_cfg.Cfg.n_blocks g)
          (Ba_cfg.Cfg.n_edges g) (Ba_cfg.Cfg.n_branch_sites g)
          (Ba_cfg.Cfg.total_size g))
      c.Ba_minic.Compile.cfgs
  in
  Cmd.v (Cmd.info "compile" ~doc:"compile a minic program and print CFG statistics")
    Term.(const run $ file_arg)

(* ---------------- dot ---------------- *)

let dot_cmd =
  let run file func =
    let c = load_program file in
    Array.iteri
      (fun fid g ->
        if func = None || func = Some c.Ba_minic.Compile.names.(fid) then
          print_string (Ba_cfg.Dot.to_string g))
      c.Ba_minic.Compile.cfgs
  in
  let func =
    Arg.(value & opt (some string) None & info [ "function" ] ~docv:"NAME"
           ~doc:"only this function")
  in
  Cmd.v (Cmd.info "dot" ~doc:"dump CFGs in Graphviz DOT format")
    Term.(const run $ file_arg $ func)

(* ---------------- profile ---------------- *)

let profile_cmd =
  let run file input input_file =
    let c = load_program file in
    let inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    Array.iteri
      (fun fid g ->
        let p = Ba_profile.Profile.proc prof fid in
        Fmt.pr "function %s: %d transfers, %d/%d branch sites touched@."
          c.Ba_minic.Compile.names.(fid)
          (Ba_profile.Profile.total_transfers p)
          (Ba_profile.Profile.branch_sites_touched g p)
          (Ba_cfg.Cfg.n_branch_sites g);
        Fmt.pr "%a" Ba_profile.Profile.pp_proc p)
      c.Ba_minic.Compile.cfgs
  in
  Cmd.v (Cmd.info "profile" ~doc:"run a program and print its edge profile")
    Term.(const run $ file_arg $ input_opt $ input_file_opt)

(* ---------------- align ---------------- *)

let method_conv : Ba_align.Driver.method_ Arg.conv =
  let parse = function
    | "original" -> Ok Ba_align.Driver.Original
    | "greedy" -> Ok Ba_align.Driver.Greedy
    | "calder" -> Ok Ba_align.Driver.Calder
    | "calder-exhaustive" -> Ok Ba_align.Driver.Calder_exhaustive
    | "tsp" -> Ok (Ba_align.Driver.Tsp Ba_align.Tsp_align.default)
    | s -> Error (`Msg (Printf.sprintf "unknown method %s" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Ba_align.Driver.method_name m))

let method_opt =
  Arg.(value & opt method_conv (Ba_align.Driver.Tsp Ba_align.Tsp_align.default)
       & info [ "method" ] ~docv:"METHOD"
           ~doc:"original | greedy | calder | calder-exhaustive | tsp")

let align_cmd =
  let run file input input_file m =
    let c = load_program file in
    let inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    let cfgs = c.Ba_minic.Compile.cfgs in
    let aligned = Ba_align.Driver.align m penalties cfgs ~train:prof in
    let orig =
      Ba_align.Driver.align Ba_align.Driver.Original penalties cfgs ~train:prof
    in
    let before = Ba_align.Driver.analytic_penalty penalties orig ~test:prof in
    let after = Ba_align.Driver.analytic_penalty penalties aligned ~test:prof in
    Array.iteri
      (fun fid order ->
        Fmt.pr "%s: %a@." c.Ba_minic.Compile.names.(fid)
          Fmt.(array ~sep:(any " ") int)
          order)
      aligned.Ba_align.Driver.orders;
    Fmt.pr "control penalty: %d -> %d cycles (%s)@." before after
      (Ba_align.Driver.method_name m);
    let run_prog sink = ignore (Ba_minic.Compile.run c ~input:inp ~sink) in
    let sim_o = Ba_align.Driver.simulate penalties orig ~run:run_prog in
    let sim_a = Ba_align.Driver.simulate penalties aligned ~run:run_prog in
    Fmt.pr "simulated cycles: %d -> %d (icache misses %d -> %d)@."
      sim_o.Ba_machine.Cycles.cycles sim_a.Ba_machine.Cycles.cycles
      sim_o.Ba_machine.Cycles.icache_misses sim_a.Ba_machine.Cycles.icache_misses
  in
  Cmd.v
    (Cmd.info "align" ~doc:"align a program and report penalty and cycle changes")
    Term.(const run $ file_arg $ input_opt $ input_file_opt $ method_opt)

(* ---------------- evaluate (cross-validation) ---------------- *)

let evaluate_cmd =
  let run file train_input test_input =
    let c = load_program file in
    let cfgs = c.Ba_minic.Compile.cfgs in
    let train = Ba_minic.Compile.profile c ~input:(parse_input train_input) in
    let test = Ba_minic.Compile.profile c ~input:(parse_input test_input) in
    Fmt.pr "%-18s %14s %14s@." "method" "train=test" "cross-trained";
    List.iter
      (fun m ->
        let self_ = Ba_align.Driver.align m penalties cfgs ~train:test in
        let cross = Ba_align.Driver.align m penalties cfgs ~train in
        Fmt.pr "%-18s %14d %14d@."
          (Ba_align.Driver.method_name m)
          (Ba_align.Driver.analytic_penalty penalties self_ ~test)
          (Ba_align.Driver.analytic_penalty penalties cross ~test))
      [
        Ba_align.Driver.Original;
        Ba_align.Driver.Greedy;
        Ba_align.Driver.Calder;
        Ba_align.Driver.Tsp Ba_align.Tsp_align.default;
      ]
  in
  let train_arg =
    Arg.(required & opt (some string) None & info [ "train-input" ] ~docv:"INTS"
           ~doc:"training input (integers fed to read())")
  in
  let test_arg =
    Arg.(required & opt (some string) None & info [ "test-input" ] ~docv:"INTS"
           ~doc:"testing input (integers fed to read())")
  in
  Cmd.v
    (Cmd.info "evaluate"
       ~doc:"cross-validate: penalties when training and testing inputs differ")
    Term.(const run $ file_arg $ train_arg $ test_arg)

(* ---------------- bounds ---------------- *)

let bounds_cmd =
  let run file input input_file =
    let c = load_program file in
    let inp = load_input ~input ~input_file in
    let prof = Ba_minic.Compile.profile c ~input:inp in
    Fmt.pr "%-16s %8s %12s %12s %12s %12s@." "function" "blocks" "tsp" "hk-bound"
      "ap-bound" "exact";
    Array.iteri
      (fun fid g ->
        let p = Ba_profile.Profile.proc prof fid in
        let r = Ba_align.Tsp_align.align penalties g ~profile:p in
        let hk =
          Ba_align.Bounds.held_karp penalties g ~profile:p
            ~upper:r.Ba_align.Tsp_align.cost
        in
        let ap = Ba_align.Bounds.ap penalties g ~profile:p in
        let ex =
          match Ba_align.Bounds.exact penalties g ~profile:p with
          | Some v -> string_of_int v
          | None -> "-"
        in
        Fmt.pr "%-16s %8d %12d %12d %12d %12s@." c.Ba_minic.Compile.names.(fid)
          (Ba_cfg.Cfg.n_blocks g) r.Ba_align.Tsp_align.cost hk ap ex)
      c.Ba_minic.Compile.cfgs
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"per-procedure lower bounds vs the TSP aligner")
    Term.(const run $ file_arg $ input_opt $ input_file_opt)

(* ---------------- bench ---------------- *)

let bench_cmd =
  let run name =
    let find name =
      List.find_opt
        (fun w -> w.Ba_workloads.Workload.name = name)
        Ba_workloads.Workload_apps.everything
    in
    match find name with
    | None ->
        Fmt.epr "unknown benchmark %s (have: %s)@." name
          (String.concat ", "
             (List.map (fun w -> w.Ba_workloads.Workload.name)
                Ba_workloads.Workload_apps.everything));
        exit 1
    | Some w ->
        let rows =
          List.map
            (fun ds -> Ba_harness.Runner.run_benchmark w ~test:ds)
            (Ba_workloads.Workload.dataset_list w)
        in
        Ba_harness.Tables.table1 Fmt.stdout rows;
        Ba_harness.Tables.table4 Fmt.stdout rows;
        Ba_harness.Tables.fig2_penalties Fmt.stdout rows;
        Ba_harness.Tables.fig2_times Fmt.stdout rows;
        Ba_harness.Tables.fig3_penalties Fmt.stdout rows;
        Ba_harness.Tables.fig3_times Fmt.stdout rows
  in
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH"
           ~doc:"benchmark short name (spec92: com dod eqn esp su2 xli; spec95: m88 ijp prl vor go)")
  in
  Cmd.v
    (Cmd.info "bench" ~doc:"run the paper's experiment for one built-in benchmark")
    Term.(const run $ bench_name)

(* ---------------- report ---------------- *)

let report_cmd =
  let run sections =
    let rows = Ba_harness.Runner.run_all () in
    let want s = sections = [] || List.mem s sections in
    if want "table1" then Ba_harness.Tables.table1 Fmt.stdout rows;
    if want "table2" then Ba_harness.Tables.table2 Fmt.stdout rows;
    if want "table3" then Ba_harness.Tables.table3 Fmt.stdout penalties;
    if want "table4" then Ba_harness.Tables.table4 Fmt.stdout rows;
    if want "fig2" then begin
      Ba_harness.Tables.fig2_penalties Fmt.stdout rows;
      Ba_harness.Tables.fig2_times Fmt.stdout rows
    end;
    if want "fig3" then begin
      Ba_harness.Tables.fig3_penalties Fmt.stdout rows;
      Ba_harness.Tables.fig3_times Fmt.stdout rows
    end;
    if want "summary" then Ba_harness.Tables.summary Fmt.stdout rows
  in
  let sections =
    Arg.(value & pos_all string [] & info [] ~docv:"SECTION"
           ~doc:"table1 table2 table3 table4 fig2 fig3 summary (default: all)")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"print the paper's tables and figures")
    Term.(const run $ sections)

(* ---------------- main ---------------- *)

let () =
  let doc = "near-optimal intraprocedural branch alignment (PLDI 1997)" in
  let info = Cmd.info "balign" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        compile_cmd; dot_cmd; profile_cmd; align_cmd; evaluate_cmd; bounds_cmd;
        bench_cmd; report_cmd;
      ]
  in
  exit
    (try Cmd.eval ~catch:false group with
    | Ba_minic.Interp.Runtime_error m ->
        Fmt.epr "error: runtime: %s@." m;
        1
    | Sys_error m ->
        Fmt.epr "error: %s@." m;
        1
    | Stack_overflow ->
        Fmt.epr "error: stack overflow@.";
        1)
