(* Quickstart: align one hand-built control-flow graph.

   Run with:  dune exec examples/quickstart.exe

   The procedure is the paper's motivating shape: a loop whose body
   branches to a hot path and a cold error path.  The original layout
   interleaves them badly; branch alignment straightens the hot path. *)

open Ba_cfg
open Ba_align

let () =
  (* 1. Describe the procedure: 6 basic blocks.
        0: entry, falls into the loop head
        1: loop head, conditional — stay in loop (2) or exit (5)
        2: loop body, conditional — common case (4) or error path (3)
        3: error handling, rejoins the loop head
        4: common case, rejoins the loop head
        5: exit *)
  let g =
    Cfg.make ~name:"hot_loop" ~entry:0
      [|
        Block.make ~id:0 ~size:3 (Block.Goto 1);
        Block.make ~id:1 ~size:2 (Block.Branch { t = 2; f = 5 });
        Block.make ~id:2 ~size:6 (Block.Branch { t = 3; f = 4 });
        Block.make ~id:3 ~size:9 (Block.Goto 1);
        Block.make ~id:4 ~size:4 (Block.Goto 1);
        Block.make ~id:5 ~size:2 Block.Exit;
      |]
  in
  (* 2. An edge-frequency profile, as a training run would produce it:
        1000 iterations, 1% of them take the error path. *)
  let profile =
    Ba_profile.Profile.of_assoc ~n_blocks:6
      [
        (0, 1, 1);
        (1, 2, 1000);
        (1, 5, 1);
        (2, 3, 10);
        (2, 4, 990);
        (3, 1, 10);
        (4, 1, 990);
      ]
  in
  let p = Ba_machine.Model.alpha21164 in
  let penalty order =
    Evaluate.proc_penalty p g ~order ~train:profile ~test:profile
  in
  (* 3. Align: original vs greedy vs the paper's TSP reduction. *)
  let original = Layout.identity g in
  let greedy = Greedy.align g ~profile in
  let tsp = Tsp_align.align p g ~profile in
  let bound =
    Bounds.held_karp p g ~profile ~upper:tsp.Tsp_align.cost
  in
  Fmt.pr "layouts (block order):@.";
  Fmt.pr "  original: %a  -> %5d penalty cycles@." Fmt.(array ~sep:(any " ") int)
    original (penalty original);
  Fmt.pr "  greedy:   %a  -> %5d penalty cycles@." Fmt.(array ~sep:(any " ") int)
    greedy (penalty greedy);
  Fmt.pr "  tsp:      %a  -> %5d penalty cycles%s@." Fmt.(array ~sep:(any " ") int)
    tsp.Tsp_align.order tsp.Tsp_align.cost
    (if tsp.Tsp_align.exact then " (proven optimal)" else "");
  Fmt.pr "  lower bound:                 %5d penalty cycles@." bound;
  (* 4. The DTSP view (Section 2.2 of the paper): the layout's penalty is
        literally the cost of a directed tour. *)
  let inst = Reduction.build p g ~profile in
  Fmt.pr "@.DTSP check: walk cost of the tsp layout = %d (same as above)@."
    (Reduction.layout_cost inst tsp.Tsp_align.order);
  assert (Reduction.layout_cost inst tsp.Tsp_align.order = tsp.Tsp_align.cost)
