(* Dynamic prediction: does branch alignment still matter when the
   hardware predicts branches itself?

   Run with:  dune exec examples/dynamic_prediction.exe

   The paper's cost model assumes per-branch static prediction; its
   conclusions sketch a trace-driven simulation of real prediction
   hardware as future work (footnote 6), noting that such a simulation
   would capture address-aliasing effects that change with the layout.
   This example runs exactly that simulation on one benchmark: the same
   three layouts under (a) the static model, (b) a 2K-entry bimodal BHT +
   BTB, (c) a deliberately tiny 64-entry BHT where aliasing bites, and
   (d) a gshare predictor. *)

module W = Ba_workloads.Workload
module Driver = Ba_align.Driver

let () =
  let p = Ba_machine.Model.alpha21164 in
  let w = W.eqn in
  let ds = fst w.W.datasets in
  let compiled = W.compile w in
  let cfgs = compiled.Ba_minic.Compile.cfgs in
  let prof = Ba_minic.Compile.profile compiled ~input:ds.W.input in
  let run sink = ignore (Ba_minic.Compile.run compiled ~input:ds.W.input ~sink) in
  let methods =
    [
      ("original", Driver.Original);
      ("greedy", Driver.Greedy);
      ("tsp", Driver.Tsp Ba_align.Tsp_align.default);
    ]
  in
  let predictors =
    [
      ("bimodal 2K + BTB", Ba_machine.Predictor.default);
      ( "tiny bimodal 64",
        { Ba_machine.Predictor.default with Ba_machine.Predictor.bht_entries = 64 } );
      ("gshare 2K/8", Ba_machine.Predictor.gshare);
    ]
  in
  Fmt.pr "benchmark %s.%s — control penalties per layout and predictor:@.@."
    w.W.name ds.W.ds_name;
  Fmt.pr "%-10s %14s" "layout" "static model";
  List.iter (fun (n, _) -> Fmt.pr " %18s" n) predictors;
  Fmt.pr "@.";
  List.iter
    (fun (name, m) ->
      let a = Driver.align m p cfgs ~train:prof in
      let static_ = Driver.analytic_penalty p a ~test:prof in
      Fmt.pr "%-10s %14d" name static_;
      List.iter
        (fun (_, config) ->
          let counters, sink =
            Ba_machine.Dynamic.make_sink ~config p.Ba_machine.Model.penalties
              ~realized:a.Driver.realized
              ~addr:a.Driver.addr
          in
          run sink;
          Fmt.pr " %11d (%5d)" counters.Ba_machine.Dynamic.penalty_cycles
            counters.Ba_machine.Dynamic.cond_mispredicts)
        predictors;
      Fmt.pr "@.")
    methods;
  Fmt.pr
    "@.cells are penalty cycles (conditional mispredicts in parentheses).@.";
  Fmt.pr
    "alignment keeps paying under hardware prediction — fall-throughs avoid@.";
  Fmt.pr
    "fetch redirects no predictor can hide — and with the tiny table the@.";
  Fmt.pr "mispredict counts shift between layouts: address aliasing at work.@."
