(* Compiler pipeline: source program -> profile -> alignment -> speedup.

   Run with:  dune exec examples/compiler_pipeline.exe

   This walks the whole reproduction stack exactly the way the paper's
   toolchain does: compile a (minic) program, instrument-and-profile it
   on a training input, branch-align every procedure, and then measure
   the realigned program on the machine model — penalties, I-cache
   misses and total cycles. *)

let source =
  String.concat "\n"
    [
      "// token scanner: classify a stream into numbers / words / spaces,";
      "// with a rare escape sequence — a classic skewed-branch workload.";
      "fn classify(c) {";
      "  if (c >= 48 && c <= 57) { return 1; }   // digit";
      "  if (c >= 97 && c <= 122) { return 2; }  // letter";
      "  if (c == 32 || c == 10) { return 3; }   // whitespace";
      "  if (c == 92) { return 4; }              // escape (rare)";
      "  return 0;";
      "}";
      "fn main() {";
      "  var n = read();";
      "  var i = 0;";
      "  var numbers = 0;";
      "  var words = 0;";
      "  var escapes = 0;";
      "  var in_word = 0;";
      "  while (i < n) {";
      "    var c = read();";
      "    var k = classify(c);";
      "    switch (k) {";
      "      case 1: { numbers = numbers + 1; in_word = 0; }";
      "      case 2: { if (in_word == 0) { words = words + 1; in_word = 1; } }";
      "      case 3: { in_word = 0; }";
      "      case 4: { escapes = escapes + 1; }";
      "      default: { in_word = 0; }";
      "    }";
      "    i = i + 1;";
      "  }";
      "  print(numbers); print(words); print(escapes);";
      "}";
    ]

let make_input ~n ~seed =
  let g = Ba_workloads.Lcg.create seed in
  Array.init (n + 1) (fun i ->
      if i = 0 then n else Ba_workloads.Lcg.text_byte g)

let () =
  let p = Ba_machine.Model.alpha21164 in
  (* 1. compile *)
  let compiled = Ba_minic.Compile.compile_exn source in
  Fmt.pr "compiled %d functions:@." (Array.length compiled.Ba_minic.Compile.cfgs);
  Array.iteri
    (fun fid g ->
      Fmt.pr "  %-10s %2d blocks, %2d branch sites@."
        compiled.Ba_minic.Compile.names.(fid) (Ba_cfg.Cfg.n_blocks g)
        (Ba_cfg.Cfg.n_branch_sites g))
    compiled.Ba_minic.Compile.cfgs;
  (* 2. profile on a training input *)
  let train_input = make_input ~n:20_000 ~seed:5 in
  let profile = Ba_minic.Compile.profile compiled ~input:train_input in
  Fmt.pr "@.profiled %d control transfers@."
    (Ba_profile.Profile.program_transfers profile);
  (* 3. align with each method and simulate on the same input *)
  let run sink = ignore (Ba_minic.Compile.run compiled ~input:train_input ~sink) in
  let evaluate m =
    let aligned =
      Ba_align.Driver.align m p compiled.Ba_minic.Compile.cfgs ~train:profile
    in
    (match Ba_align.Driver.check aligned with
    | Ok () -> ()
    | Error e -> failwith e);
    let sim = Ba_align.Driver.simulate p aligned ~run in
    (Ba_align.Driver.method_name m, sim)
  in
  let results =
    List.map evaluate
      [
        Ba_align.Driver.Original;
        Ba_align.Driver.Greedy;
        Ba_align.Driver.Calder;
        Ba_align.Driver.Tsp Ba_align.Tsp_align.default;
      ]
  in
  let base =
    match results with (_, s) :: _ -> float_of_int s.Ba_machine.Cycles.cycles | [] -> 1.0
  in
  Fmt.pr "@.%-10s %12s %12s %10s %10s@." "method" "penalties" "cycles" "misses"
    "speedup";
  List.iter
    (fun (name, (s : Ba_machine.Cycles.result)) ->
      Fmt.pr "%-10s %12d %12d %10d %9.2f%%@." name s.Ba_machine.Cycles.penalty_cycles
        s.Ba_machine.Cycles.cycles s.Ba_machine.Cycles.icache_misses
        (100.0 *. (1.0 -. (float_of_int s.Ba_machine.Cycles.cycles /. base))))
    results
