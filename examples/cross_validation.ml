(* Cross-validation: how much does the training input matter?

   Run with:  dune exec examples/cross_validation.exe

   Reproduces the paper's Section 4.2 finding on its most training-
   sensitive benchmark: the xli interpreter.  Training the alignment on
   the tiny Newton run ("ne") and testing on 7-queens ("q7") loses part
   of the benefit; the reverse direction holds up much better — exactly
   the "xli.ne is a poor training set, the reverse is not true"
   observation. *)

module W = Ba_workloads.Workload

let () =
  let p = Ba_machine.Model.alpha21164 in
  let w = W.xli in
  let compiled = W.compile w in
  let ne, q7 = w.W.datasets in
  let profile_of ds = Ba_minic.Compile.profile compiled ~input:ds.W.input in
  let prof_ne = profile_of ne and prof_q7 = profile_of q7 in
  let penalty ~train ~test =
    let aligned =
      Ba_align.Driver.align (Ba_align.Driver.Tsp Ba_align.Tsp_align.default) p
        compiled.Ba_minic.Compile.cfgs ~train
    in
    Ba_align.Driver.analytic_penalty p aligned ~test
  in
  let orig ~test =
    let aligned =
      Ba_align.Driver.align Ba_align.Driver.Original p
        compiled.Ba_minic.Compile.cfgs ~train:test
    in
    Ba_align.Driver.analytic_penalty p aligned ~test
  in
  Fmt.pr "xli (stack-VM interpreter), TSP alignment, normalized penalties:@.@.";
  Fmt.pr "%-28s %14s %14s@." "" "test on ne" "test on q7";
  let norm v test = float_of_int v /. float_of_int (orig ~test) in
  Fmt.pr "%-28s %14.3f %14.3f@." "train on ne (newton, tiny)"
    (norm (penalty ~train:prof_ne ~test:prof_ne) prof_ne)
    (norm (penalty ~train:prof_ne ~test:prof_q7) prof_q7);
  Fmt.pr "%-28s %14.3f %14.3f@." "train on q7 (7-queens)"
    (norm (penalty ~train:prof_q7 ~test:prof_ne) prof_ne)
    (norm (penalty ~train:prof_q7 ~test:prof_q7) prof_q7);
  Fmt.pr
    "@.reading: the diagonal entries are the ideal same-input results;@.";
  Fmt.pr
    "training on the tiny newton run generalizes worse than training on q7.@."
