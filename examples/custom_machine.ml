(* Custom machine models: the same program aligned for different
   pipelines.

   Run with:  dune exec examples/custom_machine.exe

   The reduction takes the penalty model as a parameter (the paper's
   "future work: other machine models").  A deeper pipeline raises the
   mispredict cost, which changes which layout is optimal; a machine
   with free taken branches cares only about inserted jumps. *)

open Ba_align
module Penalties = Ba_machine.Penalties

let () =
  let w = Ba_workloads.Workload.com in
  let compiled = Ba_workloads.Workload.compile w in
  let ds = fst w.Ba_workloads.Workload.datasets in
  let profile = Ba_minic.Compile.profile compiled ~input:ds.Ba_workloads.Workload.input in
  let g = compiled.Ba_minic.Compile.cfgs.(1) (* main *) in
  let prof = Ba_profile.Profile.proc profile 1 in
  let machines =
    [
      ("alpha 21164 (paper)", Ba_machine.Model.alpha21164);
      ("deep pipeline (2x mispredict)", Ba_machine.Model.deep_pipeline);
      ("free fetch (jumps only)", Ba_machine.Model.free_fetch);
    ]
  in
  Fmt.pr "aligning %s/main (%d blocks) for three machine models:@.@."
    w.Ba_workloads.Workload.name (Ba_cfg.Cfg.n_blocks g);
  Fmt.pr "%-32s %12s %12s %12s@." "machine" "original" "tsp" "removed";
  let tsp_orders =
    List.map
      (fun (name, p) ->
        let r = Tsp_align.align p g ~profile:prof in
        let orig =
          Evaluate.proc_penalty p g ~order:(Ba_cfg.Layout.identity g)
            ~train:prof ~test:prof
        in
        Fmt.pr "%-32s %12d %12d %11.1f%%@." name orig r.Tsp_align.cost
          (100.0 *. (1.0 -. (float_of_int r.Tsp_align.cost /. float_of_int (max 1 orig))));
        (name, r.Tsp_align.order))
      machines
  in
  (* show that the optimal layouts actually differ across machines *)
  Fmt.pr "@.layout chosen per machine (first 12 blocks):@.";
  List.iter
    (fun (name, order) ->
      let prefix = Array.sub order 0 (min 12 (Array.length order)) in
      Fmt.pr "  %-30s %a ...@." name Fmt.(array ~sep:(any " ") int) prefix)
    tsp_orders;
  (* cross-machine cost: how much does an alpha-optimal layout lose on
     the deep pipeline? *)
  let alpha_order = List.assoc "alpha 21164 (paper)" tsp_orders in
  let deep = Ba_machine.Model.deep_pipeline in
  let deep_cost order =
    Evaluate.proc_penalty deep g ~order ~train:prof ~test:prof
  in
  let deep_order = List.assoc "deep pipeline (2x mispredict)" tsp_orders in
  Fmt.pr
    "@.alpha-optimal layout costs %d on the deep machine; deep-optimal costs %d.@."
    (deep_cost alpha_order) (deep_cost deep_order)
