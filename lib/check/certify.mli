(** Independent certification of alignment results: re-verifies a
    produced layout from first principles (walk property, semantic
    faithfulness, from-scratch cost recomputation, DTSP → STSP
    locked-pair round-trip, Held–Karp bound ≤ cost), sharing no code
    with the solver path.  Counters flow into [check.certs_checked] /
    [check.certs_failed]. *)

open Ba_cfg

(** Why a layout fails certification. *)
type error =
  | Not_permutation of string
  | Entry_not_first of { entry : int; first : int }
  | Locked_pair_broken of { city : int }
  | Cost_mismatch of { claimed : int; recomputed : int }
  | Bound_exceeds_cost of { bound : int; cost : int }
  | Unfaithful of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** Source of the Held–Karp bound for the bound ≤ cost check. *)
type hk_mode = Skip | Given of int | Compute of Ba_tsp.Held_karp.config

(** Per-procedure certificate; every number recomputed here. *)
type proc_cert = {
  proc : int;
  name : string;
  n_blocks : int;
  cost : int;  (** independently recomputed control penalty, cycles *)
  claimed : int option;
  hk_bound : int option;
  sym_checked : bool;
}

type failure = { fproc : int; fname : string; error : error }

(** Whole-program certificate. *)
type t = { procs : proc_cert list; total_cost : int }

(** {1 The independent checks (exposed for adversarial tests)} *)

(** Hamiltonian-walk property: permutation of the blocks, entry first. *)
val check_walk : Cfg.t -> Layout.order -> (unit, error) result

(** Penalty of the layout recomputed from scratch against the machine
    cost model. *)
val recompute_cost :
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Ba_profile.Profile.proc ->
  order:Layout.order ->
  int

(** Rebuild the reduction's DTSP instance (with its dummy city index)
    directly from {!Ba_machine.Cost.edge_cost}. *)
val dtsp_of :
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Ba_profile.Profile.proc ->
  Ba_tsp.Dtsp.t * int

(** Largest procedure certified against the dense independently built
    matrix; above it the certifier switches to {!dtsp_of_sparse}. *)
val dense_instance_threshold : int

(** The same logical instance as {!dtsp_of}, built sparsely in O(n + E):
    a non-successor layout successor costs exactly like [None] under
    every objective, so rows deviate from that default only at the CFG
    successors.  Certifies 10⁵-block procedures without an O(n²)
    matrix; equivalence with {!dtsp_of} is asserted in the tests. *)
val dtsp_of_sparse :
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Ba_profile.Profile.proc ->
  Ba_tsp.Dtsp.t * int

(** Locked-pair integrity of an arbitrary symmetric tour; on success
    returns the recovered directed tour. *)
val check_sym : Ba_tsp.Sym.t -> int array -> (int array, error) result

(** {1 Certification} *)

(** Certify one procedure's layout.  [claimed] cross-checks the
    solver-reported cost; [sym_check] (default on) exercises the
    DTSP → STSP round-trip (O(n²) matrix build). *)
val proc_cert :
  ?claimed:int ->
  ?hk:hk_mode ->
  ?sym_check:bool ->
  proc:int ->
  Ba_machine.Model.t ->
  Cfg.t ->
  profile:Ba_profile.Profile.proc ->
  order:Layout.order ->
  (proc_cert, error) result

(** Certify a whole aligned program in procedure order; first failure
    wins.  [claimed i] / [hk i] give per-procedure inputs. *)
val program :
  ?claimed:(int -> int option) ->
  ?hk:(int -> hk_mode) ->
  ?sym_check:bool ->
  Ba_machine.Model.t ->
  Cfg.t array ->
  train:Ba_profile.Profile.t ->
  orders:Layout.order array ->
  (t, failure) result

(** {1 Rendering} *)

val proc_cert_json : proc_cert -> Ba_obs.Json.t

(** Certificate document for [balign align --certify] (schema
    ["balign-cert-1"]). *)
val to_json : t -> Ba_obs.Json.t

val pp_proc_cert : Format.formatter -> proc_cert -> unit
