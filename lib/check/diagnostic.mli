(** Typed lint findings: rule id, severity, location, message, fix
    hint, and a machine-readable payload.  Produced by {!Rules},
    collected by {!Lint}, rendered as text or JSON. *)

(** [Error] findings break an invariant the pipeline depends on and
    gate alignment through the typed-error pipeline; [Warning] findings
    are suspicious but legal ([--strict] promotes them); [Info]
    findings are observations. *)
type severity = Error | Warning | Info

val severity_name : severity -> string

(** [severity_geq a b] is true iff [a] is at least as severe as [b]
    ([Error > Warning > Info]). *)
val severity_geq : severity -> severity -> bool

(** Location of a finding; every field optional. *)
type location = {
  proc : int option;
  proc_name : string option;
  block : Ba_cfg.Block.label option;
  edge : (Ba_cfg.Block.label * Ba_cfg.Block.label) option;
}

(** The empty location (program-shape findings). *)
val nowhere : location

(** [in_proc ?block ?edge fid name] locates a finding inside one
    procedure. *)
val in_proc :
  ?block:Ba_cfg.Block.label ->
  ?edge:Ba_cfg.Block.label * Ba_cfg.Block.label ->
  int ->
  string ->
  location

type t = {
  rule : string;  (** stable rule id, e.g. ["cfg-successor-range"] *)
  code : string;  (** stable short code, e.g. ["BA105"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option;
  data : (string * int) list;  (** machine-readable payload *)
}

val make :
  rule:string ->
  code:string ->
  severity:severity ->
  ?loc:location ->
  ?hint:string ->
  ?data:(string * int) list ->
  string ->
  t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val to_json : t -> Ba_obs.Json.t

(** [(errors, warnings, infos)] tallies of a finding list. *)
val count : t list -> int * int * int
