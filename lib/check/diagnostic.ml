(** Typed lint findings.

    Every rule of the static analyzer reports violations as values of
    {!t}: a stable rule id and code, a severity, a location inside the
    program (procedure / block / edge), a human-readable message, an
    optional fix hint, and a small machine-readable payload for callers
    that need the offending numbers without re-parsing the message (the
    typed-error gate uses it to build {!Ba_robust.Errors.t} values).
    The rendering is deterministic so CLI output can be golden-tested. *)

(** Severity of a finding.  [Error] findings break an invariant the
    pipeline depends on and gate {!Ba_align} via the typed-error
    pipeline; [Warning] findings are suspicious but legal ([--strict]
    promotes them); [Info] findings are observations only. *)
type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(** [severity_geq a b] orders severities: [Error > Warning > Info]. *)
let severity_rank = function Error -> 2 | Warning -> 1 | Info -> 0
let severity_geq a b = severity_rank a >= severity_rank b

(** Location of a finding.  All fields optional: a program-shape
    finding has no procedure, a procedure-wide finding no block. *)
type location = {
  proc : int option;  (** procedure index *)
  proc_name : string option;
  block : Ba_cfg.Block.label option;
  edge : (Ba_cfg.Block.label * Ba_cfg.Block.label) option;
}

let nowhere = { proc = None; proc_name = None; block = None; edge = None }

let in_proc ?block ?edge fid name =
  { proc = Some fid; proc_name = Some name; block; edge }

type t = {
  rule : string;  (** stable rule id, e.g. ["cfg-successor-range"] *)
  code : string;  (** stable short code, e.g. ["BA105"] *)
  severity : severity;
  loc : location;
  message : string;
  hint : string option;  (** how to fix or silence the finding *)
  data : (string * int) list;
      (** machine-readable payload, e.g. [("expected", 4); ("got", 3)] *)
}

let make ~rule ~code ~severity ?(loc = nowhere) ?hint ?(data = []) message =
  { rule; code; severity; loc; message; hint; data }

let pp_location ppf (l : location) =
  let parts =
    List.filter_map Fun.id
      [
        Option.map
          (fun p ->
            match l.proc_name with
            | Some n -> Printf.sprintf "proc %d (%s)" p n
            | None -> Printf.sprintf "proc %d" p)
          l.proc;
        Option.map (Printf.sprintf "block %d") l.block;
        Option.map (fun (s, d) -> Printf.sprintf "edge %d->%d" s d) l.edge;
      ]
  in
  if parts <> [] then Fmt.pf ppf " [%s]" (String.concat ", " parts)

(** One finding per line:
    [CODE severity rule-id [proc 0 (main), block 3]: message (hint)]. *)
let pp ppf (d : t) =
  Fmt.pf ppf "%s %-7s %s%a: %s%a" d.code (severity_name d.severity) d.rule
    pp_location d.loc d.message
    Fmt.(option (fun ppf h -> Fmt.pf ppf " (hint: %s)" h))
    d.hint

let to_string d = Fmt.str "%a" pp d

(** JSON rendering for [--format json] and the cram validators. *)
let to_json (d : t) : Ba_obs.Json.t =
  let open Ba_obs.Json in
  let opt k f v tl = match v with None -> tl | Some x -> (k, f x) :: tl in
  Obj
    (("rule", String d.rule)
    :: ("code", String d.code)
    :: ("severity", String (severity_name d.severity))
    :: opt "proc" (fun p -> Int p) d.loc.proc
         (opt "proc_name"
            (fun n -> String n)
            d.loc.proc_name
            (opt "block"
               (fun b -> Int b)
               d.loc.block
               (opt "edge"
                  (fun (s, dd) -> List [ Int s; Int dd ])
                  d.loc.edge
                  (("message", String d.message)
                  :: opt "hint"
                       (fun h -> String h)
                       d.hint
                       (if d.data = [] then []
                        else
                          [
                            ( "data",
                              Obj
                                (List.map (fun (k, v) -> (k, Int v)) d.data) );
                          ]))))))

(** Severity tallies of a finding list, in one pass. *)
let count (ds : t list) =
  List.fold_left
    (fun (e, w, i) d ->
      match d.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) ds
