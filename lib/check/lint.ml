(** The rule runner: evaluates the {!Rules} catalogue over a program,
    tallies findings into the {!Ba_obs.Metrics} registry, and exposes
    the three consumers of a lint report:

    - {!gate}: the typed-error bridge used by the alignment driver — the
      first Error finding (in catalogue order) becomes the matching
      {!Ba_robust.Errors.t} so lint failures flow through the same exit
      codes and rendering as the rest of the pipeline;
    - {!report_json} / {!pp_report}: the [balign lint] output formats;
    - {!dot_annotations}: colors findings onto {!Ba_cfg.Dot} exports. *)

module Profile = Ba_profile.Profile
module Errors = Ba_robust.Errors
module Metrics = Ba_obs.Metrics
module Json = Ba_obs.Json
module D = Diagnostic

type report = {
  diags : D.t list;  (** every finding, in catalogue order *)
  errors : int;
  warnings : int;
  infos : int;
}

(** Run [rules] (default: the whole catalogue) over the program and
    tally findings into the lint.* metrics counters. *)
let run ?(rules = Rules.all) (ctx : Rules.ctx) : report =
  let diags = List.concat_map (fun r -> r.Rules.run ctx) rules in
  let errors, warnings, infos = D.count diags in
  Metrics.incr ~n:errors Metrics.Lint_errors;
  Metrics.incr ~n:warnings Metrics.Lint_warnings;
  Metrics.incr ~n:infos Metrics.Lint_infos;
  { diags; errors; warnings; infos }

let analyze ?rules ?profile cfgs = run ?rules { Rules.cfgs; profile }

(* ------------------------------------------------------------------ *)
(* typed-error bridge                                                  *)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** Map one finding to the typed error the legacy validators raised for
    the same violation, so downstream matching (tests, exit codes,
    fault expectations) is unchanged. *)
let to_error (d : D.t) : Errors.t =
  let datum k = Option.value ~default:0 (List.assoc_opt k d.D.data) in
  match d.D.rule with
  | "prof-proc-count" ->
      Errors.Profile_mismatch
        {
          proc = None;
          expected = datum "expected";
          got = datum "got";
          what = "procedures";
        }
  | "prof-block-count" ->
      Errors.Profile_mismatch
        {
          proc = d.D.loc.D.proc;
          expected = datum "expected";
          got = datum "got";
          what = "blocks";
        }
  | r when starts_with ~prefix:"cfg-" r || starts_with ~prefix:"ana-" r ->
      Errors.Invalid_cfg
        {
          proc = d.D.loc.D.proc;
          name = d.D.loc.D.proc_name;
          reason = d.D.message;
        }
  | _ ->
      let src, dst =
        match d.D.loc.D.edge with
        | Some (s, t) -> (Some s, Some t)
        | None -> (None, None)
      in
      Errors.Invalid_profile
        { proc = d.D.loc.D.proc; src; dst; reason = d.D.message }

(** First finding that gates: the first Error, or with [strict] the
    first Error-or-Warning, in catalogue order. *)
let first_gating ?(strict = false) (r : report) =
  let floor = if strict then D.Warning else D.Error in
  List.find_opt (fun d -> D.severity_geq d.D.severity floor) r.diags

(** [gate ?strict ?profile cfgs] is the driver's validation front door:
    [Ok ()] when no finding gates, otherwise the first gating finding
    converted by {!to_error}. *)
let gate ?strict ?profile cfgs =
  let r = analyze ?profile cfgs in
  match first_gating ?strict r with
  | None -> Ok ()
  | Some d -> Error (to_error d)

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)

(** One line per finding plus a tally line; empty reports render a
    single "clean" line so cram output is stable. *)
let pp_report ppf (r : report) =
  List.iter (fun d -> Fmt.pf ppf "%a@." D.pp d) r.diags;
  Fmt.pf ppf "lint: %d error(s), %d warning(s), %d info(s)@." r.errors
    r.warnings r.infos

(** JSON document for [balign lint --format json]; schema documented in
    docs/ANALYSIS.md and validated by [test/tools/check_lint.exe]. *)
let report_json (r : report) : Json.t =
  Json.Obj
    [
      ("schema", Json.String "balign-lint-1");
      ("errors", Json.Int r.errors);
      ("warnings", Json.Int r.warnings);
      ("infos", Json.Int r.infos);
      ("findings", Json.List (List.map D.to_json r.diags));
    ]

(** SARIF 2.1.0 log for [balign lint --format sarif].  One run, the
    whole rule catalogue as the tool's rule metadata, one result per
    finding.  Severities map Error/Warning/Info -> error/warning/note;
    locations are logical (procedure/block), since minic programs have
    no stable physical coordinates. *)
let sarif_level = function
  | D.Error -> "error"
  | D.Warning -> "warning"
  | D.Info -> "note"

let sarif_rule (r : Rules.rule) =
  Json.Obj
    [
      ("id", Json.String r.Rules.id);
      ( "shortDescription",
        Json.Obj [ ("text", Json.String r.Rules.code) ] );
      ( "fullDescription",
        Json.Obj [ ("text", Json.String r.Rules.doc) ] );
      ( "defaultConfiguration",
        Json.Obj [ ("level", Json.String (sarif_level r.Rules.severity)) ] );
    ]

let sarif_result (d : D.t) =
  let logical =
    let name what = function
      | None -> []
      | Some v -> [ (what, Printf.sprintf "%s %s" what v) ]
    in
    name "procedure" d.D.loc.D.proc_name
    @ name "block" (Option.map string_of_int d.D.loc.D.block)
    @ name "edge"
        (Option.map
           (fun (s, t) -> Printf.sprintf "%d->%d" s t)
           d.D.loc.D.edge)
  in
  let message =
    match d.D.hint with
    | None -> d.D.message
    | Some h -> d.D.message ^ " (hint: " ^ h ^ ")"
  in
  Json.Obj
    ([
       ("ruleId", Json.String d.D.rule);
       ("level", Json.String (sarif_level d.D.severity));
       ("message", Json.Obj [ ("text", Json.String message) ]);
     ]
    @
    if logical = [] then []
    else
      [
        ( "locations",
          Json.List
            [
              Json.Obj
                [
                  ( "logicalLocations",
                    Json.List
                      (List.map
                         (fun (kind, fqn) ->
                           Json.Obj
                             [
                               ("kind", Json.String kind);
                               ("fullyQualifiedName", Json.String fqn);
                             ])
                         logical) );
                ];
            ] );
      ])

let sarif_json (r : report) : Json.t =
  Json.Obj
    [
      ( "$schema",
        Json.String
          "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", Json.String "2.1.0");
      ( "runs",
        Json.List
          [
            Json.Obj
              [
                ( "tool",
                  Json.Obj
                    [
                      ( "driver",
                        Json.Obj
                          [
                            ("name", Json.String "balign-lint");
                            ( "rules",
                              Json.List (List.map sarif_rule Rules.all) );
                          ] );
                    ] );
                ("results", Json.List (List.map sarif_result r.diags));
              ];
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* DOT annotations                                                     *)

let severity_colors = function
  | D.Error -> ("#b22222", "#f8d7d7")
  | D.Warning -> ("#b8860b", "#fdf0ce")
  | D.Info -> ("#4169aa", "#dfe8f6")

let worst = List.fold_left (fun acc d -> if D.severity_geq d.D.severity acc then d.D.severity else acc)

let rule_tooltip ds =
  List.map (fun d -> d.D.code ^ " " ^ d.D.rule) ds
  |> List.sort_uniq compare |> String.concat ", "

(** [dot_annotations ~proc diags] are [(block_attr, edge_attr)] hooks
    for {!Ba_cfg.Dot.emit}: blocks and edges with findings in procedure
    [proc] are filled/colored by worst severity and carry the rule ids
    as a tooltip. *)
let dot_annotations ~proc (diags : D.t list) =
  let here = List.filter (fun d -> d.D.loc.D.proc = Some proc) diags in
  let block_attr l =
    match
      List.filter
        (fun d -> d.D.loc.D.block = Some l && d.D.loc.D.edge = None)
        here
    with
    | [] -> None
    | ds ->
        let border, fill = severity_colors (worst D.Info ds) in
        Some
          (Printf.sprintf
             "style=filled fillcolor=\"%s\" color=\"%s\" tooltip=\"%s\"" fill
             border (rule_tooltip ds))
  in
  let edge_attr src dst =
    match
      List.filter (fun d -> d.D.loc.D.edge = Some (src, dst)) here
    with
    | [] -> None
    | ds ->
        let border, _ = severity_colors (worst D.Info ds) in
        Some
          (Printf.sprintf "color=\"%s\" penwidth=2.0 tooltip=\"%s\"" border
             (rule_tooltip ds))
  in
  (block_attr, edge_attr)
