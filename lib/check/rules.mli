(** The lint rule catalogue: ~20 rules over CFGs and profiles, each
    total (never raises, even on forged inputs) and independent.  See
    docs/ANALYSIS.md for the rendered catalogue. *)

(** What the rules look at.  CFG-only lint (no profile collected)
    skips the profile rules. *)
type ctx = { cfgs : Ba_cfg.Cfg.t array; profile : Ba_profile.Profile.t option }

type rule = {
  id : string;  (** stable kebab-case rule id, e.g. ["cfg-unreachable"] *)
  code : string;  (** stable short code ("BA1xx" CFG, "BA2xx" profile) *)
  severity : Diagnostic.severity;
  doc : string;  (** one-line rationale *)
  run : ctx -> Diagnostic.t list;
}

(** The catalogue in gating order: CFG shape errors, CFG hygiene
    warnings, profile shape errors, profile hygiene warnings and
    coverage infos.  {!Lint.gate} reports the first Error in this
    order. *)
val all : rule list

val by_id : string -> rule option
