(** The lint rule catalogue.

    Each rule inspects a whole program — an array of CFGs plus,
    optionally, the whole-program profile — and reports every violation
    it can find as a {!Diagnostic.t}.  Rules are independent and total:
    they never raise, even on forged CFG records (out-of-range entries,
    scrambled ids) or shape-mismatched profiles, because rejecting
    exactly those inputs with a useful finding is their job.

    The catalogue is ordered: the first Error in catalogue order is the
    one {!Lint.gate} routes into the typed-error pipeline, so shape
    errors (which make later rules meaningless) come first within each
    family, and CFG rules come before profile rules, mirroring the
    validation order of {!Ba_align.Driver.align_checked}.

    Severity contract (see docs/ANALYSIS.md for the full catalogue):
    - [Error]: the alignment pipeline cannot be trusted on this input;
      {!Lint.gate} converts the finding to a {!Ba_robust.Errors.t}.
    - [Warning]: legal but suspicious (unreachable code, flow leaks,
      overflow risk); [--strict] promotes these to errors.
    - [Info]: observations (cold branches, cold-code ratio). *)

open Ba_cfg
module Profile = Ba_profile.Profile
module D = Diagnostic

(** What the rules look at: the program's CFGs and, when available, the
    training profile.  CFG-only lint (no profile collected yet) simply
    skips the profile rules. *)
type ctx = { cfgs : Cfg.t array; profile : Profile.t option }

type rule = {
  id : string;  (** stable kebab-case rule id *)
  code : string;  (** stable short code ("BA1xx" CFG, "BA2xx" profile) *)
  severity : D.severity;
  doc : string;  (** one-line rationale, rendered in docs/ANALYSIS.md *)
  run : ctx -> D.t list;
}

(* ------------------------------------------------------------------ *)
(* helpers                                                             *)

(** Emit one diagnostic of rule [r]. *)
let diag r ?loc ?hint ?data message =
  D.make ~rule:r.id ~code:r.code ~severity:r.severity ?loc ?hint ?data message

(** Fold [f] over procedures, collecting diagnostics in procedure
    order. *)
let per_cfg (ctx : ctx) f =
  List.concat (List.mapi f (Array.to_list ctx.cfgs))

(** Structurally sound CFG: safe to traverse (reachability, profile
    cross-checks).  The structural rules below report the fine-grained
    reasons; this predicate only guards the rules that must walk the
    graph. *)
let sound (g : Cfg.t) = Cfg.validate g = Ok ()

(** Blocks reachable from the entry, [None] when the CFG cannot be
    safely traversed. *)
let reachable_opt g = if sound g then Some (Cfg.reachable g) else None

(** Per-proc profile row safe to aggregate: shapes match and every
    recorded edge is a real CFG edge with a positive count (the Error
    rules report the violations; aggregate rules skip such procs). *)
let proc_rows_sound (g : Cfg.t) (p : Profile.proc) =
  sound g
  && Array.length p.Profile.freqs = Cfg.n_blocks g
  &&
  try
    Array.iteri
      (fun src row ->
        Array.iter
          (fun (dst, n) ->
            if
              n <= 0
              || dst < 0
              || dst >= Cfg.n_blocks g
              || not (Block.has_successor (Cfg.block g src) dst)
            then raise Exit)
          row)
      p.Profile.freqs;
    true
  with Exit -> false

(** Procedures shared by the program and the profile, as
    [(fid, cfg, proc_profile)] — empty when there is no profile. *)
let shared_procs (ctx : ctx) =
  match ctx.profile with
  | None -> []
  | Some t ->
      let n = min (Array.length ctx.cfgs) (Array.length t.Profile.procs) in
      List.init n (fun fid -> (fid, ctx.cfgs.(fid), t.Profile.procs.(fid)))

(** Total recorded transfers into each block of one procedure (bounds
    respected even on malformed rows). *)
let inflows (g : Cfg.t) (p : Profile.proc) =
  let inflow = Array.make (Cfg.n_blocks g) 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun (dst, n) ->
          if dst >= 0 && dst < Array.length inflow then
            inflow.(dst) <- inflow.(dst) + n)
        row)
    p.Profile.freqs;
  inflow

(** Counts whose product with a per-transfer penalty (tens of cycles)
    approaches [max_int] make the analytic cost model overflow; flag
    anything within a factor of 2^16 of it. *)
let overflow_guard = max_int / 65536

(* ------------------------------------------------------------------ *)
(* CFG rules (BA1xx)                                                   *)

let rec cfg_empty =
  {
    id = "cfg-empty";
    code = "BA101";
    severity = D.Error;
    doc = "a procedure must have at least one basic block";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            if Array.length g.Cfg.blocks = 0 then
              [
                diag cfg_empty
                  ~loc:(D.in_proc fid g.Cfg.name)
                  ~hint:"emit at least an entry block that exits"
                  "procedure has no basic blocks";
              ]
            else []));
  }

and cfg_entry_range =
  {
    id = "cfg-entry-range";
    code = "BA102";
    severity = D.Error;
    doc = "the entry label must name a block of the procedure";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            let n = Array.length g.Cfg.blocks in
            if n > 0 && (g.Cfg.entry < 0 || g.Cfg.entry >= n) then
              [
                diag cfg_entry_range
                  ~loc:(D.in_proc fid g.Cfg.name)
                  ~data:[ ("entry", g.Cfg.entry); ("blocks", n) ]
                  ~hint:"point the entry at an existing block label"
                  (Printf.sprintf "entry label %d out of range (%d blocks)"
                     g.Cfg.entry n);
              ]
            else []));
  }

and cfg_block_id =
  {
    id = "cfg-block-id";
    code = "BA103";
    severity = D.Error;
    doc = "the block array must be indexed by block id (dense labels)";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            Array.to_list g.Cfg.blocks
            |> List.mapi (fun i b ->
                   if b.Block.id <> i then
                     [
                       diag cfg_block_id
                         ~loc:(D.in_proc ~block:i fid g.Cfg.name)
                         ~data:[ ("index", i); ("id", b.Block.id) ]
                         ~hint:"re-sort the block array by label"
                         (Printf.sprintf "block at index %d has id %d" i
                            b.Block.id);
                     ]
                   else [])
            |> List.concat));
  }

and cfg_negative_size =
  {
    id = "cfg-negative-size";
    code = "BA104";
    severity = D.Error;
    doc = "block sizes are instruction counts and cannot be negative";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            Array.to_list g.Cfg.blocks
            |> List.filter_map (fun b ->
                   if b.Block.size < 0 then
                     Some
                       (diag cfg_negative_size
                          ~loc:(D.in_proc ~block:b.Block.id fid g.Cfg.name)
                          ~data:[ ("size", b.Block.size) ]
                          (Printf.sprintf "block %d has negative size %d"
                             b.Block.id b.Block.size))
                   else None)));
  }

and cfg_successor_range =
  {
    id = "cfg-successor-range";
    code = "BA105";
    severity = D.Error;
    doc = "every terminator target must stay inside the procedure";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            let n = Array.length g.Cfg.blocks in
            Array.to_list g.Cfg.blocks
            |> List.concat_map (fun b ->
                   Block.successors b
                   |> List.filter (fun s -> s < 0 || s >= n)
                   |> List.sort_uniq compare
                   |> List.map (fun s ->
                          diag cfg_successor_range
                            ~loc:
                              (D.in_proc ~block:b.Block.id
                                 ~edge:(b.Block.id, s) fid g.Cfg.name)
                            ~data:[ ("target", s); ("blocks", n) ]
                            ~hint:
                              "interprocedural transfers are calls, not \
                               branches"
                            (Printf.sprintf
                               "block %d targets label %d outside the \
                                procedure"
                               b.Block.id s)))));
  }

and cfg_degenerate_branch =
  {
    id = "cfg-degenerate-branch";
    code = "BA106";
    severity = D.Error;
    doc =
      "a two-way conditional with identical arms is a forged record \
       (Block.make normalizes it to a goto)";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            Array.to_list g.Cfg.blocks
            |> List.filter_map (fun b ->
                   match b.Block.term with
                   | Block.Branch { t; f } when t = f ->
                       Some
                         (diag cfg_degenerate_branch
                            ~loc:
                              (D.in_proc ~block:b.Block.id ~edge:(b.Block.id, t)
                                 fid g.Cfg.name)
                            ~hint:"rebuild the block with Block.make"
                            (Printf.sprintf
                               "block %d: conditional with equal arms (%d)"
                               b.Block.id t))
                   | _ -> None)));
  }

and cfg_multiway_arity =
  {
    id = "cfg-multiway-arity";
    code = "BA107";
    severity = D.Error;
    doc =
      "an indirect branch with fewer than two targets is a forged record \
       (Block.make normalizes it away)";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            Array.to_list g.Cfg.blocks
            |> List.filter_map (fun b ->
                   match b.Block.term with
                   | Block.Multiway ts when Array.length ts < 2 ->
                       Some
                         (diag cfg_multiway_arity
                            ~loc:(D.in_proc ~block:b.Block.id fid g.Cfg.name)
                            ~data:[ ("targets", Array.length ts) ]
                            ~hint:"rebuild the block with Block.make"
                            (Printf.sprintf
                               "block %d: indirect branch with %d target(s)"
                               b.Block.id (Array.length ts)))
                   | _ -> None)));
  }

and cfg_unreachable =
  {
    id = "cfg-unreachable";
    code = "BA108";
    severity = D.Warning;
    doc =
      "blocks unreachable from the entry dilute the I-cache and cannot \
       be profiled; front ends legally emit them, so this only warns";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            match reachable_opt g with
            | None -> []
            | Some seen ->
                Array.to_list g.Cfg.blocks
                |> List.filter_map (fun b ->
                       if not seen.(b.Block.id) then
                         Some
                           (diag cfg_unreachable
                              ~loc:(D.in_proc ~block:b.Block.id fid g.Cfg.name)
                              ~hint:"drop dead blocks before aligning"
                              (Printf.sprintf
                                 "block %d is unreachable from the entry"
                                 b.Block.id))
                       else None)));
  }

and cfg_self_loop =
  {
    id = "cfg-self-loop";
    code = "BA109";
    severity = D.Warning;
    doc =
      "a block whose only successor is itself can never leave once \
       entered — usually a lowering bug";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            Array.to_list g.Cfg.blocks
            |> List.filter_map (fun b ->
                   if Block.distinct_successors b = [ b.Block.id ] then
                     Some
                       (diag cfg_self_loop
                          ~loc:
                            (D.in_proc ~block:b.Block.id
                               ~edge:(b.Block.id, b.Block.id) fid g.Cfg.name)
                          ~hint:"intentional spin loops should carry an exit"
                          (Printf.sprintf
                             "block %d loops only to itself" b.Block.id))
                   else None)));
  }

and cfg_goto_cycle =
  {
    id = "cfg-goto-cycle";
    code = "BA110";
    severity = D.Warning;
    doc =
      "a cycle of unconditional jumps is a fall-through chain control \
       can never escape — a malformed chain, since no real program \
       returns from it";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            if not (sound g) then []
            else begin
              let n = Cfg.n_blocks g in
              (* the Goto-only subgraph is functional: at most one
                 outgoing edge per block, so cycle detection is a
                 colored walk *)
              let next l =
                match (Cfg.block g l).Block.term with
                | Block.Goto t when t <> l -> Some t
                | _ -> None
              in
              let color = Array.make n 0 (* 0 white, 1 gray, 2 black *) in
              let cycles = ref [] in
              for start = 0 to n - 1 do
                if color.(start) = 0 then begin
                  let path = ref [] in
                  let cur = ref (Some start) in
                  let continue = ref true in
                  while !continue do
                    match !cur with
                    | None ->
                        List.iter (fun l -> color.(l) <- 2) !path;
                        continue := false
                    | Some l when color.(l) = 2 ->
                        List.iter (fun v -> color.(v) <- 2) !path;
                        continue := false
                    | Some l when color.(l) = 1 ->
                        (* found a new cycle: the path suffix from l *)
                        let rec suffix acc = function
                          | [] -> acc
                          | x :: _ when x = l -> l :: acc
                          | x :: tl -> suffix (x :: acc) tl
                        in
                        cycles := suffix [] !path :: !cycles;
                        List.iter (fun v -> color.(v) <- 2) !path;
                        continue := false
                    | Some l ->
                        color.(l) <- 1;
                        path := l :: !path;
                        cur := next l
                  done
                end
              done;
              List.rev !cycles
              |> List.filter (fun c -> List.length c >= 2)
              |> List.map (fun cycle ->
                     let head = List.fold_left min max_int cycle in
                     diag cfg_goto_cycle
                       ~loc:(D.in_proc ~block:head fid g.Cfg.name)
                       ~data:[ ("length", List.length cycle) ]
                       ~hint:"break the chain with a conditional or exit"
                       (Printf.sprintf
                          "blocks %s form an inescapable unconditional-jump \
                           cycle"
                          (String.concat " -> "
                             (List.map string_of_int cycle))))
            end));
  }

(* ------------------------------------------------------------------ *)
(* Profile rules (BA2xx)                                               *)

and prof_proc_count =
  {
    id = "prof-proc-count";
    code = "BA201";
    severity = D.Error;
    doc = "the profile must describe exactly the program's procedures";
    run =
      (fun ctx ->
        match ctx.profile with
        | None -> []
        | Some t ->
            let expected = Array.length ctx.cfgs
            and got = Array.length t.Profile.procs in
            if expected <> got then
              [
                diag prof_proc_count
                  ~data:[ ("expected", expected); ("got", got) ]
                  ~hint:"re-collect the profile from this program"
                  (Printf.sprintf "profile describes %d procedure(s), program \
                                   has %d" got expected);
              ]
            else []);
  }

and prof_block_count =
  {
    id = "prof-block-count";
    code = "BA202";
    severity = D.Error;
    doc = "per-procedure rows must cover exactly the procedure's blocks";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.filter_map (fun (fid, g, p) ->
               let expected = Cfg.n_blocks g
               and got = Array.length p.Profile.freqs in
               if expected <> got then
                 Some
                   (diag prof_block_count
                      ~loc:(D.in_proc fid g.Cfg.name)
                      ~data:[ ("expected", expected); ("got", got) ]
                      ~hint:"re-collect the profile from this program"
                      (Printf.sprintf
                         "profile has %d block row(s), procedure has %d" got
                         expected))
               else None));
  }

and prof_count_positive =
  {
    id = "prof-count-positive";
    code = "BA203";
    severity = D.Error;
    doc = "recorded transfer counts are positive by construction";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               Array.to_list p.Profile.freqs
               |> List.mapi (fun src row ->
                      Array.to_list row
                      |> List.filter_map (fun (dst, n) ->
                             if n <= 0 then
                               Some
                                 (diag prof_count_positive
                                    ~loc:
                                      (D.in_proc ~block:src ~edge:(src, dst)
                                         fid g.Cfg.name)
                                    ~data:[ ("count", n) ]
                                    ~hint:
                                      "drop zero rows; negative counts mean \
                                       a corrupted profile"
                                    (Printf.sprintf
                                       "edge %d->%d has non-positive count %d"
                                       src dst n))
                             else None))
               |> List.concat));
  }

and prof_dangling_dst =
  {
    id = "prof-dangling-dst";
    code = "BA204";
    severity = D.Error;
    doc = "every destination label must name a block of the procedure";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               let nb = Cfg.n_blocks g in
               Array.to_list p.Profile.freqs
               |> List.mapi (fun src row ->
                      Array.to_list row
                      |> List.filter_map (fun (dst, _) ->
                             if dst < 0 || dst >= nb then
                               Some
                                 (diag prof_dangling_dst
                                    ~loc:
                                      (D.in_proc ~block:src ~edge:(src, dst)
                                         fid g.Cfg.name)
                                    ~data:[ ("dst", dst); ("blocks", nb) ]
                                    ~hint:"re-collect the profile"
                                    (Printf.sprintf
                                       "edge %d->%d dangles outside the \
                                        procedure (%d blocks)"
                                       src dst nb))
                             else None))
               |> List.concat));
  }

and prof_non_edge =
  {
    id = "prof-non-edge";
    code = "BA205";
    severity = D.Error;
    doc =
      "a recorded transfer must follow a CFG edge of its source block; \
       anything else is a profile from a different program";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               let nb = Cfg.n_blocks g in
               if Array.length p.Profile.freqs <> nb then []
               else
                 Array.to_list p.Profile.freqs
                 |> List.mapi (fun src row ->
                        Array.to_list row
                        |> List.filter_map (fun (dst, _) ->
                               if
                                 dst >= 0 && dst < nb
                                 && not
                                      (Block.has_successor (Cfg.block g src)
                                         dst)
                               then
                                 Some
                                   (diag prof_non_edge
                                      ~loc:
                                        (D.in_proc ~block:src ~edge:(src, dst)
                                           fid g.Cfg.name)
                                      ~hint:
                                        "the profile was probably collected \
                                         from another build of the program"
                                      (Printf.sprintf
                                         "recorded transfer %d->%d is not a \
                                          CFG edge"
                                         src dst))
                               else None))
                 |> List.concat));
  }

and prof_call_graph =
  {
    id = "prof-call-graph";
    code = "BA206";
    severity = D.Error;
    doc = "dynamic calls must name existing procedures with positive counts";
    run =
      (fun ctx ->
        match ctx.profile with
        | None -> []
        | Some t ->
            let n = Array.length ctx.cfgs in
            List.filter_map
              (fun (caller, callee, cnt) ->
                if caller < 0 || caller >= n || callee < 0 || callee >= n then
                  Some
                    (diag prof_call_graph
                       ~loc:{ D.nowhere with D.proc = Some caller }
                       ~data:[ ("caller", caller); ("callee", callee) ]
                       ~hint:"re-collect the profile from this program"
                       (Printf.sprintf
                          "dynamic call %d->%d names a missing procedure"
                          caller callee))
                else if cnt <= 0 then
                  Some
                    (diag prof_call_graph
                       ~loc:{ D.nowhere with D.proc = Some caller }
                       ~data:[ ("caller", caller); ("callee", callee);
                               ("count", cnt) ]
                       (Printf.sprintf
                          "dynamic call %d->%d has non-positive count %d"
                          caller callee cnt))
                else None)
              t.Profile.calls);
  }

and prof_flow_conservation =
  {
    id = "prof-flow-conservation";
    code = "BA207";
    severity = D.Warning;
    doc =
      "Kirchhoff's law per block: transfers in must equal transfers out \
       for interior blocks (entries absorb invocations, exits absorb \
       returns); a leak means a truncated or merged profile";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               if not (proc_rows_sound g p) then []
               else begin
                 let inflow = inflows g p in
                 Array.to_list g.Cfg.blocks
                 |> List.filter_map (fun b ->
                        let l = b.Block.id in
                        let outflow = Profile.out_count p l in
                        let violated =
                          match b.Block.term with
                          | Block.Exit -> false (* returns absorb flow *)
                          | _ when l = g.Cfg.entry ->
                              (* outflow = inflow + invocations *)
                              outflow < inflow.(l)
                          | _ -> outflow <> inflow.(l)
                        in
                        if violated then
                          Some
                            (diag prof_flow_conservation
                               ~loc:(D.in_proc ~block:l fid g.Cfg.name)
                               ~data:
                                 [ ("inflow", inflow.(l));
                                   ("outflow", outflow) ]
                               ~hint:
                                 "profiles from truncated runs leak flow; \
                                  re-collect from a complete run"
                               (Printf.sprintf
                                  "block %d receives %d transfer(s) but \
                                   emits %d"
                                  l inflow.(l) outflow))
                        else None)
               end));
  }

and prof_overflow_risk =
  {
    id = "prof-overflow-risk";
    code = "BA208";
    severity = D.Warning;
    doc =
      "counts within 2^16 of max_int overflow the analytic cost model \
       once multiplied by per-transfer penalty cycles";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               Array.to_list p.Profile.freqs
               |> List.mapi (fun src row ->
                      Array.to_list row
                      |> List.filter_map (fun (dst, n) ->
                             if n > overflow_guard then
                               Some
                                 (diag prof_overflow_risk
                                    ~loc:
                                      (D.in_proc ~block:src ~edge:(src, dst)
                                         fid g.Cfg.name)
                                    ~data:[ ("count", n) ]
                                    ~hint:
                                      "scale the profile down with \
                                       Profile.scale before aligning"
                                    (Printf.sprintf
                                       "edge %d->%d count %d risks int \
                                        overflow under the cost model"
                                       src dst n))
                             else None))
               |> List.concat));
  }

and prof_cold_branch =
  {
    id = "prof-cold-branch";
    code = "BA209";
    severity = D.Info;
    doc =
      "a reachable conditional that never executed while its procedure \
       did gets an arbitrary layout — the training input misses a path";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.concat_map (fun (fid, g, p) ->
               if
                 (not (proc_rows_sound g p))
                 || Profile.total_transfers p = 0
               then []
               else
                 match reachable_opt g with
                 | None -> []
                 | Some seen ->
                     Array.to_list g.Cfg.blocks
                     |> List.filter_map (fun b ->
                            let l = b.Block.id in
                            if
                              seen.(l)
                              && Block.is_conditional b
                              && Profile.out_count p l = 0
                            then
                              Some
                                (diag prof_cold_branch
                                   ~loc:(D.in_proc ~block:l fid g.Cfg.name)
                                   ~hint:
                                     "train on an input that exercises this \
                                      path"
                                   (Printf.sprintf
                                      "conditional block %d never executed \
                                       on the training input"
                                      l))
                            else None)));
  }

and prof_cold_ratio =
  {
    id = "prof-cold-ratio";
    code = "BA210";
    severity = D.Info;
    doc =
      "when most reachable blocks never execute, the training input \
       covers too little of the procedure for the layout to transfer";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.filter_map (fun (fid, g, p) ->
               if
                 (not (proc_rows_sound g p))
                 || Profile.total_transfers p = 0
               then None
               else
                 match reachable_opt g with
                 | None -> None
                 | Some seen ->
                     let inflow = inflows g p in
                     let reachable = ref 0 and cold = ref 0 in
                     Array.iteri
                       (fun l r ->
                         if r then begin
                           incr reachable;
                           let executed =
                             l = g.Cfg.entry
                             || inflow.(l) > 0
                             || Profile.out_count p l > 0
                           in
                           if not executed then incr cold
                         end)
                       seen;
                     if !reachable >= 4 && 2 * !cold > !reachable then
                       Some
                         (diag prof_cold_ratio
                            ~loc:(D.in_proc fid g.Cfg.name)
                            ~data:
                              [ ("cold", !cold); ("reachable", !reachable) ]
                            ~hint:"train on a more representative input"
                            (Printf.sprintf
                               "%d of %d reachable block(s) never executed \
                                on the training input"
                               !cold !reachable))
                     else None));
  }

(* ------------------------------------------------------------------ *)
(* structural-analysis rules (BA3xx)                                   *)

and ana_irreducible =
  {
    id = "ana-irreducible-loop";
    code = "BA301";
    severity = D.Warning;
    doc =
      "a retreating edge whose target does not dominate its tail is a \
       cycle with multiple entries — no natural loop, so loop-driven \
       heuristics and the static profile estimator treat its flow \
       conservatively";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            if not (sound g) then []
            else
              let dom = Ba_analysis.Dom.compute g in
              let loops = Ba_analysis.Loops.compute dom in
              Ba_analysis.Loops.irreducible loops
              |> List.map (fun (u, v) ->
                     diag ana_irreducible
                       ~loc:(D.in_proc ~block:u ~edge:(u, v) fid g.Cfg.name)
                       ~hint:
                         "node splitting (duplicating the shared blocks) \
                          restores reducibility"
                       (Printf.sprintf
                          "retreating edge %d->%d re-enters a cycle whose \
                           header does not dominate it (irreducible control \
                           flow)"
                          u v))));
  }

and ana_unreachable_loop =
  {
    id = "ana-unreachable-loop-body";
    code = "BA302";
    severity = D.Warning;
    doc =
      "a cycle lying entirely in unreachable code is a loop no \
       execution can ever enter — stronger evidence of a lowering bug \
       than plain unreachable straight-line code";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            match reachable_opt g with
            | None -> []
            | Some seen ->
                let n = Cfg.n_blocks g in
                (* cycle detection restricted to the unreachable induced
                   subgraph: iterative DFS, gray-edge witnesses *)
                let color = Array.make n 0 in
                let witness = Array.make n false in
                for root = 0 to n - 1 do
                  if (not seen.(root)) && color.(root) = 0 then begin
                    let stack =
                      ref [ (root, ref (Cfg.successors g root)) ]
                    in
                    color.(root) <- 1;
                    while !stack <> [] do
                      match !stack with
                      | [] -> ()
                      | (l, rest) :: tl -> (
                          match !rest with
                          | [] ->
                              color.(l) <- 2;
                              stack := tl
                          | v :: more ->
                              rest := more;
                              if not seen.(v) then
                                if color.(v) = 0 then begin
                                  color.(v) <- 1;
                                  stack :=
                                    (v, ref (Cfg.successors g v)) :: !stack
                                end
                                else if color.(v) = 1 then
                                  witness.(v) <- true)
                    done
                  end
                done;
                let out = ref [] in
                for l = n - 1 downto 0 do
                  if witness.(l) then
                    out :=
                      diag ana_unreachable_loop
                        ~loc:(D.in_proc ~block:l fid g.Cfg.name)
                        ~hint:
                          "dead loops cannot be profiled or laid out; \
                           delete them or reconnect them to reachable code"
                        (Printf.sprintf
                           "block %d heads a cycle that lies entirely in \
                            unreachable code"
                           l)
                      :: !out
                done;
                !out));
  }

and ana_estimate_divergence =
  {
    id = "ana-estimate-divergence";
    code = "BA303";
    severity = D.Info;
    doc =
      "when the static estimator's predicted successors disagree with \
       the collected profile on most executed branch sites, structure \
       is a poor stand-in for this procedure's behavior — prefer the \
       collected profile";
    run =
      (fun ctx ->
        shared_procs ctx
        |> List.filter_map (fun (fid, g, p) ->
               if
                 (not (proc_rows_sound g p)) || Profile.total_transfers p = 0
               then None
               else begin
                 let est = Ba_analysis.Estimate.proc g in
                 let sites = ref 0 and agree = ref 0 in
                 Cfg.iter
                   (fun b ->
                     let l = b.Block.id in
                     if Block.is_conditional b && Profile.out_count p l > 0
                     then begin
                       incr sites;
                       if Profile.predicted p l = Profile.predicted est l
                       then incr agree
                     end)
                   g;
                 if !sites >= 8 && 2 * !agree < !sites then
                   Some
                     (diag ana_estimate_divergence
                        ~loc:(D.in_proc fid g.Cfg.name)
                        ~data:[ ("agree", !agree); ("sites", !sites) ]
                        ~hint:
                          "keep training this procedure on collected \
                           profiles; --profile static would misplace its \
                           hot paths"
                        (Printf.sprintf
                           "static estimate agrees with the collected \
                            profile on only %d of %d executed branch \
                            site(s)"
                           !agree !sites))
                 else None
               end));
  }

and ana_loop_depth =
  {
    id = "ana-loop-depth";
    code = "BA304";
    severity = D.Warning;
    doc =
      "loop nests deeper than 32 overflow any sensible iteration-count \
       model (multipliers compound per level) — almost always a \
       generator or lowering artifact, not real control flow";
    run =
      (fun ctx ->
        per_cfg ctx (fun fid g ->
            if not (sound g) then []
            else
              let dom = Ba_analysis.Dom.compute g in
              let loops = Ba_analysis.Loops.compute dom in
              let d = Ba_analysis.Loops.max_depth loops in
              if d <= 32 then []
              else
                (* locate the first deepest loop for the report *)
                let header = ref g.Cfg.entry in
                Array.iter
                  (fun (l : Ba_analysis.Loops.loop) ->
                    if l.Ba_analysis.Loops.depth = d && !header = g.Cfg.entry
                    then header := l.Ba_analysis.Loops.header)
                  (Ba_analysis.Loops.loops loops);
                [
                  diag ana_loop_depth
                    ~loc:(D.in_proc ~block:!header fid g.Cfg.name)
                    ~data:[ ("depth", d) ]
                    ~hint:
                      "check the front end: nests this deep usually come \
                       from unrolled or duplicated control flow"
                    (Printf.sprintf
                       "loop nest reaches depth %d (header of the deepest \
                        loop: block %d)"
                       d !header);
                ]));
  }

(** The catalogue, in gating order: CFG shape errors, CFG hygiene
    warnings, profile shape errors, profile hygiene warnings and
    coverage infos, then the structural-analysis family (all
    non-gating by default: warnings and infos only). *)
let all : rule list =
  [
    cfg_empty;
    cfg_entry_range;
    cfg_block_id;
    cfg_negative_size;
    cfg_successor_range;
    cfg_degenerate_branch;
    cfg_multiway_arity;
    cfg_unreachable;
    cfg_self_loop;
    cfg_goto_cycle;
    prof_proc_count;
    prof_block_count;
    prof_count_positive;
    prof_dangling_dst;
    prof_non_edge;
    prof_call_graph;
    prof_flow_conservation;
    prof_overflow_risk;
    prof_cold_branch;
    prof_cold_ratio;
    ana_irreducible;
    ana_unreachable_loop;
    ana_estimate_divergence;
    ana_loop_depth;
  ]

let by_id id = List.find_opt (fun r -> r.id = id) all
