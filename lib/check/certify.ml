(** Independent certification of alignment results.

    [certify] re-verifies a produced layout from first principles,
    deliberately sharing no code with the solver path in {!Ba_align}:
    it rebuilds the DTSP edge weights directly from
    {!Ba_machine.Model.edge_cost} — materializing its own dense matrix
    through the {!Ba_tsp.Dtsp.make} fallback rather than reusing
    {!Ba_align.Reduction}'s sparse emission, so every certificate also
    cross-checks the sparse cost core against an independently built
    instance — and re-derives every property the paper's reduction
    promises.  A certificate attests that:

    - the layout is a permutation of the procedure's blocks with the
      entry first (a Hamiltonian walk of the reduction's cities);
    - the realized layout is semantically faithful to the CFG;
    - the control penalty recomputed from scratch against the machine
      cost model equals the cost the solver reported (when a claimed
      cost is given);
    - the DTSP → symmetric 2-city transformation round-trips: the
      expanded symmetric tour keeps every locked in/out pair adjacent,
      extraction recovers the directed tour, and the symmetric cost
      plus the transformation offset equals the directed cost;
    - the Held–Karp lower bound does not exceed the certified cost.

    Validation counters ([check.certs_checked] / [check.certs_failed])
    flow into the {!Ba_obs.Metrics} registry. *)

open Ba_cfg
open Ba_machine
module Profile = Ba_profile.Profile
module Metrics = Ba_obs.Metrics
module Json = Ba_obs.Json
module Dtsp = Ba_tsp.Dtsp
module Sym = Ba_tsp.Sym
module Held_karp = Ba_tsp.Held_karp

(** Why a layout fails certification. *)
type error =
  | Not_permutation of string
      (** the order does not visit each block exactly once *)
  | Entry_not_first of { entry : int; first : int }
  | Locked_pair_broken of { city : int }
      (** the symmetric tour separates city's in/out pair *)
  | Cost_mismatch of { claimed : int; recomputed : int }
  | Bound_exceeds_cost of { bound : int; cost : int }
  | Unfaithful of string
      (** the realized layout changes the program's transfers *)

let pp_error ppf = function
  | Not_permutation m -> Fmt.pf ppf "not a permutation of the blocks: %s" m
  | Entry_not_first { entry; first } ->
      Fmt.pf ppf "entry block %d not first (layout starts at %d)" entry first
  | Locked_pair_broken { city } ->
      Fmt.pf ppf "locked in/out pair of city %d not adjacent" city
  | Cost_mismatch { claimed; recomputed } ->
      Fmt.pf ppf "claimed cost %d, independent recomputation gives %d" claimed
        recomputed
  | Bound_exceeds_cost { bound; cost } ->
      Fmt.pf ppf "Held-Karp lower bound %d exceeds certified cost %d" bound
        cost
  | Unfaithful m -> Fmt.pf ppf "layout not semantically faithful: %s" m

let error_to_string e = Fmt.str "%a" pp_error e

(** How to obtain the Held–Karp bound for the bound ≤ cost check:
    [Skip] it, trust a [Given] bound computed elsewhere (the bench
    harness already has one per procedure), or [Compute] it here. *)
type hk_mode = Skip | Given of int | Compute of Held_karp.config

(** A per-procedure certificate: every recorded number was recomputed
    here, not copied from the solver. *)
type proc_cert = {
  proc : int;
  name : string;
  n_blocks : int;
  cost : int;  (** independently recomputed control penalty, cycles *)
  claimed : int option;  (** solver-reported cost, when provided *)
  hk_bound : int option;  (** lower bound used for the bound check *)
  sym_checked : bool;  (** locked-pair round-trip was exercised *)
}

type failure = { fproc : int; fname : string; error : error }

(** A whole-program certificate. *)
type t = { procs : proc_cert list; total_cost : int }

(* ------------------------------------------------------------------ *)
(* the independent checks (exposed for adversarial tests)              *)

(** Hamiltonian-walk property: [order] visits each of the [n] blocks
    exactly once, entry first. *)
let check_walk (cfg : Cfg.t) (order : Layout.order) : (unit, error) result =
  let n = Cfg.n_blocks cfg in
  if Array.length order <> n then
    Error
      (Not_permutation
         (Printf.sprintf "%d position(s) for %d block(s)" (Array.length order)
            n))
  else begin
    let seen = Array.make n false in
    let dup = ref None in
    Array.iter
      (fun l ->
        if l < 0 || l >= n then
          (if !dup = None then
             dup := Some (Printf.sprintf "label %d out of range" l))
        else if seen.(l) then (
          if !dup = None then
            dup := Some (Printf.sprintf "label %d placed twice" l))
        else seen.(l) <- true)
      order;
    match !dup with
    | Some m -> Error (Not_permutation m)
    | None ->
        if order.(0) <> cfg.Cfg.entry then
          Error (Entry_not_first { entry = cfg.Cfg.entry; first = order.(0) })
        else Ok ()
  end

(** Control penalty of the layout recomputed from scratch: the sum of
    {!Ba_machine.Model.edge_cost} over consecutive layout positions (the
    walk's edges), last block falling off the end. *)
let recompute_cost (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc)
    ~(order : Layout.order) : int =
  let n = Cfg.n_blocks cfg in
  let predicted = Profile.predictions profile ~n_blocks:n in
  let total = ref 0 in
  Array.iteri
    (fun i l ->
      let succ = if i + 1 < n then Some order.(i + 1) else None in
      total :=
        !total
        + Model.edge_cost m (Cfg.block cfg l).Block.term ~succ
            ~predicted:predicted.(l)
            ~freqs:(Profile.block_freqs profile l))
    order;
  !total

(** Rebuild the reduction's DTSP instance directly from the cost model
    (cities 0..n−1 = blocks, city n = dummy; dummy → entry free, other
    dummy edges prohibitive).  Mirrors the paper's construction without
    calling into [Ba_align]. *)
let dtsp_of (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) :
    Dtsp.t * int =
  let n = Cfg.n_blocks cfg in
  let dummy = n in
  let predicted = Profile.predictions profile ~n_blocks:n in
  let block_cost i succ =
    Model.edge_cost m (Cfg.block cfg i).Block.term ~succ
      ~predicted:predicted.(i)
      ~freqs:(Profile.block_freqs profile i)
  in
  let worst = ref 1 in
  for i = 0 to n - 1 do
    let w = ref (block_cost i None) in
    for j = 0 to n - 1 do
      if j <> i then w := max !w (block_cost i (Some j))
    done;
    worst := !worst + !w
  done;
  let forbid = !worst in
  let cost =
    Array.init (n + 1) (fun i ->
        Array.init (n + 1) (fun j ->
            if i = j then 0
            else if i = dummy then if j = cfg.Cfg.entry then 0 else forbid
            else if j = dummy then block_cost i None
            else block_cost i (Some j)))
  in
  (Dtsp.make cost, dummy)

(** Largest procedure still certified against the dense independently
    built matrix; above it {!dtsp_of_sparse} takes over. *)
let dense_instance_threshold = 512

(** The same logical instance as {!dtsp_of}, built sparsely in O(n + E)
    instead of O(n²).  Sound because {!Ba_machine.Model.edge_cost}
    scores a layout successor that is not a CFG successor exactly like
    falling off the end ([succ = None]) under both objectives, so a
    block's row deviates from [block_cost i None] only at its own
    distinct CFG successors (and the free diagonal). *)
let dtsp_of_sparse (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc) :
    Dtsp.t * int =
  let n = Cfg.n_blocks cfg in
  let dummy = n in
  let predicted = Profile.predictions profile ~n_blocks:n in
  let block_cost i succ =
    Model.edge_cost m (Cfg.block cfg i).Block.term ~succ
      ~predicted:predicted.(i)
      ~freqs:(Profile.block_freqs profile i)
  in
  let defaults = Array.init n (fun i -> block_cost i None) in
  let succs =
    Array.init n (fun i ->
        match (Cfg.block cfg i).Block.term with
        | Block.Exit | Block.Multiway _ ->
            (* successor-independent terminators: every column equals
               the row default, so there are no deviations to emit — and
               a wide jump table stays O(arms), not O(arms²) *)
            []
        | Block.Goto _ | Block.Branch _ ->
            List.filter (fun j -> j <> i)
              (Block.distinct_successors (Cfg.block cfg i)))
  in
  (* the dense scan's worst-row sum: non-successor columns all equal the
     row default, so the maximum needs only the explicit successors *)
  let worst = ref 1 in
  for i = 0 to n - 1 do
    let w = ref defaults.(i) in
    List.iter (fun j -> w := max !w (block_cost i (Some j))) succs.(i);
    worst := !worst + !w
  done;
  let forbid = !worst in
  let default =
    Array.init (n + 1) (fun i -> if i = dummy then forbid else defaults.(i))
  in
  let rows =
    Array.init (n + 1) (fun i ->
        if i = dummy then [ (cfg.Cfg.entry, 0); (dummy, 0) ]
        else
          (* diagonal is 0 in the dense build; the dummy column equals
             the row default and is dropped by [of_rows] *)
          List.sort compare
            ((i, 0)
            :: List.map (fun j -> (j, block_cost i (Some j))) succs.(i)))
  in
  (Dtsp.of_rows ~n:(n + 1) ~default rows, dummy)

(** Locked-pair integrity of an arbitrary symmetric tour: every in/out
    city pair must be adjacent; on success the directed tour is
    recovered and returned. *)
let check_sym (sym : Sym.t) (stour : int array) : (int array, error) result =
  if not (Sym.check_alternating sym stour) then begin
    (* name the first city whose pair was separated *)
    let nn = Array.length stour in
    let pos = Array.make sym.Sym.nn (-1) in
    Array.iteri (fun i c -> if c >= 0 && c < sym.Sym.nn then pos.(c) <- i) stour;
    let broken = ref 0 in
    (try
       for c = 0 to sym.Sym.n_cities - 1 do
         let pi = pos.(Sym.in_city c) and po = pos.(Sym.out_city c) in
         let adjacent =
           pi >= 0 && po >= 0
           && (abs (pi - po) = 1 || abs (pi - po) = nn - 1)
         in
         if not adjacent then begin
           broken := c;
           raise Exit
         end
       done
     with Exit -> ());
    Error (Locked_pair_broken { city = !broken })
  end
  else
    match Sym.extract sym stour with
    | tour -> Ok tour
    | exception Invalid_argument _ -> Error (Locked_pair_broken { city = -1 })

(* ------------------------------------------------------------------ *)
(* certification                                                       *)

(** Certify one procedure's layout.  [claimed] is the solver-reported
    cost to cross-check; [hk] selects the lower-bound source;
    [sym_check] (default on) exercises the DTSP → STSP round-trip,
    which costs an O(n²) matrix build. *)
let proc_cert ?claimed ?(hk = Skip) ?(sym_check = true) ~proc
    (m : Model.t) (cfg : Cfg.t) ~(profile : Profile.proc)
    ~(order : Layout.order) : (proc_cert, error) result =
  Metrics.incr Metrics.Certs_checked;
  let fail e =
    Metrics.incr Metrics.Certs_failed;
    Error e
  in
  let n = Cfg.n_blocks cfg in
  if Array.length profile.Profile.freqs <> n then
    fail
      (Unfaithful
         (Printf.sprintf "profile has %d row(s) for %d block(s)"
            (Array.length profile.Profile.freqs)
            n))
  else
    match check_walk cfg order with
    | Error e -> fail e
    | Ok () -> (
        let cost = recompute_cost m cfg ~profile ~order in
        (* semantic faithfulness, re-realized here *)
        let predicted = Profile.predictions profile ~n_blocks:n in
        let realized =
          Cost.realize m.Model.penalties cfg ~order ~predicted
            ~freqs:(Profile.block_freqs profile)
        in
        match Layout.check_semantics cfg realized with
        | Error m -> fail (Unfaithful m)
        | Ok () -> (
            match claimed with
            | Some c when c <> cost ->
                fail (Cost_mismatch { claimed = c; recomputed = cost })
            | _ -> (
                (* small procedures keep the dense independent build
                   (its own cross-check of the sparse core); at
                   whole-program scale the O(n²) matrix is unpayable
                   and the sparse construction of the same logical
                   instance takes over *)
                let dtsp =
                  lazy
                    (if n <= dense_instance_threshold then
                       dtsp_of m cfg ~profile
                     else dtsp_of_sparse m cfg ~profile)
                in
                let sym_result =
                  if not sym_check then Ok false
                  else begin
                    let d, dummy = Lazy.force dtsp in
                    let tour = Array.append [| dummy |] order in
                    let dcost = Dtsp.tour_cost d tour in
                    if dcost <> cost then
                      Error
                        (Cost_mismatch { claimed = dcost; recomputed = cost })
                    else begin
                      let sym = Sym.of_dtsp d in
                      let stour = Sym.expand sym tour in
                      match check_sym sym stour with
                      | Error e -> Error e
                      | Ok back ->
                          let scost =
                            Sym.tour_cost sym stour + sym.Sym.offset
                          in
                          if scost <> dcost then
                            Error
                              (Cost_mismatch
                                 { claimed = scost; recomputed = dcost })
                          else if Dtsp.tour_cost d back <> dcost then
                            Error
                              (Cost_mismatch
                                 {
                                   claimed = Dtsp.tour_cost d back;
                                   recomputed = dcost;
                                 })
                          else Ok true
                    end
                  end
                in
                match sym_result with
                | Error e -> fail e
                | Ok sym_checked -> (
                    let hk_bound =
                      match hk with
                      | Skip -> None
                      | Given b -> Some b
                      | Compute config ->
                          let d, _ = Lazy.force dtsp in
                          Some
                            (Held_karp.directed_bound ~config d
                               ~upper_bound:cost)
                    in
                    match hk_bound with
                    | Some b when b > cost ->
                        fail (Bound_exceeds_cost { bound = b; cost })
                    | _ ->
                        Ok
                          {
                            proc;
                            name = cfg.Cfg.name;
                            n_blocks = n;
                            cost;
                            claimed;
                            hk_bound;
                            sym_checked;
                          }))))

(** Certify a whole aligned program, procedure by procedure in index
    order; the first failing procedure is reported.  [claimed i] and
    [hk i] supply the per-procedure claimed cost and bound source. *)
let program ?(claimed = fun _ -> None) ?(hk = fun _ -> Skip)
    ?sym_check (m : Model.t) (cfgs : Cfg.t array)
    ~(train : Profile.t) ~(orders : Layout.order array) : (t, failure) result
    =
  let n = Array.length cfgs in
  if Array.length orders <> n || Array.length train.Profile.procs <> n then
    Error
      {
        fproc = -1;
        fname = "<program>";
        error =
          Unfaithful
            (Printf.sprintf
               "shape mismatch: %d cfg(s), %d order(s), %d profile proc(s)" n
               (Array.length orders)
               (Array.length train.Profile.procs));
      }
  else begin
    let rec go i acc total =
      if i = n then Ok { procs = List.rev acc; total_cost = total }
      else
        match
          proc_cert ?claimed:(claimed i) ~hk:(hk i) ?sym_check ~proc:i m
            cfgs.(i)
            ~profile:train.Profile.procs.(i)
            ~order:orders.(i)
        with
        | Error error ->
            Error { fproc = i; fname = cfgs.(i).Cfg.name; error }
        | Ok cert -> go (i + 1) (cert :: acc) (total + cert.cost)
    in
    go 0 [] 0
  end

(* ------------------------------------------------------------------ *)
(* rendering                                                           *)


let proc_cert_json (c : proc_cert) : Json.t =
  let opt k f v tl = match v with None -> tl | Some x -> (k, f x) :: tl in
  Json.Obj
    (("proc", Json.Int c.proc)
    :: ("name", Json.String c.name)
    :: ("n_blocks", Json.Int c.n_blocks)
    :: ("cost", Json.Int c.cost)
    :: opt "claimed"
         (fun v -> Json.Int v)
         c.claimed
         (opt "hk_bound"
            (fun v -> Json.Int v)
            c.hk_bound
            [ ("sym_checked", Json.Bool c.sym_checked) ]))

(** Machine-readable certificate emitted by [balign align --certify]
    (schema ["balign-cert-1"], see docs/ANALYSIS.md). *)
let to_json (t : t) : Json.t =
  Json.Obj
    [
      ("schema", Json.String "balign-cert-1");
      ("total_cost", Json.Int t.total_cost);
      ("procs", Json.List (List.map proc_cert_json t.procs));
    ]

let pp_proc_cert ppf (c : proc_cert) =
  Fmt.pf ppf "proc %d (%s): cost %d%a%a%s" c.proc c.name c.cost
    Fmt.(option (fun ppf b -> Fmt.pf ppf ", bound %d" b))
    c.hk_bound
    Fmt.(option (fun ppf v -> Fmt.pf ppf ", claimed %d" v))
    c.claimed
    (if c.sym_checked then "" else " (sym skipped)")
