(** The rule runner and its three consumers: the driver's typed-error
    gate, the [balign lint] renderers, and DOT annotations. *)

type report = {
  diags : Diagnostic.t list;  (** every finding, in catalogue order *)
  errors : int;
  warnings : int;
  infos : int;
}

(** Run [rules] (default: {!Rules.all}) and tally findings into the
    [lint.*] metrics counters. *)
val run : ?rules:Rules.rule list -> Rules.ctx -> report

(** [analyze ?rules ?profile cfgs] is {!run} on a context. *)
val analyze :
  ?rules:Rules.rule list -> ?profile:Ba_profile.Profile.t ->
  Ba_cfg.Cfg.t array -> report

(** Map one finding to the typed error the legacy validators raised for
    the same violation (rule families map to
    [Invalid_cfg] / [Invalid_profile] / [Profile_mismatch]). *)
val to_error : Diagnostic.t -> Ba_robust.Errors.t

(** First finding that gates: the first Error — with [strict], the
    first Error-or-Warning — in catalogue order. *)
val first_gating : ?strict:bool -> report -> Diagnostic.t option

(** [gate ?strict ?profile cfgs] is [Ok ()] when no finding gates,
    otherwise the first gating finding via {!to_error}. *)
val gate :
  ?strict:bool -> ?profile:Ba_profile.Profile.t -> Ba_cfg.Cfg.t array ->
  (unit, Ba_robust.Errors.t) result

(** One line per finding plus a tally line. *)
val pp_report : Format.formatter -> report -> unit

(** JSON document for [balign lint --format json] (schema
    ["balign-lint-1"], see docs/ANALYSIS.md). *)
val report_json : report -> Ba_obs.Json.t

(** SARIF 2.1.0 log for [balign lint --format sarif]: one run, the full
    rule catalogue as tool metadata, one result per finding with
    logical (procedure/block/edge) locations. *)
val sarif_json : report -> Ba_obs.Json.t

(** [(block_attr, edge_attr)] hooks for {!Ba_cfg.Dot.emit}: blocks and
    edges with findings in procedure [proc] are colored by worst
    severity, rule ids in the tooltip. *)
val dot_annotations :
  proc:int ->
  Diagnostic.t list ->
  (Ba_cfg.Block.label -> string option)
  * (Ba_cfg.Block.label -> Ba_cfg.Block.label -> string option)
