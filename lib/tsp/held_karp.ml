(** Held–Karp lower bound via 1-tree Lagrangian relaxation [6, 7].

    For node potentials π, the minimum 1-tree under modified weights
    w(u,v) = c(u,v) + π(u) + π(v), minus 2·Σπ, lower-bounds every tour;
    maximizing over π by subgradient ascent gives the Held–Karp bound,
    empirically within a fraction of a percent of the optimum on a wide
    range of instance classes [12] — including, as the paper shows, the
    symmetrized branch-alignment instances.

    We use the Polyak step rule t = λ·(UB − L)/‖deg − 2‖², halving λ when
    the bound stagnates, which is scale-free and therefore robust to the
    large locked-edge weights of {!Sym} instances. *)

type config = {
  iterations : int;  (** max subgradient iterations *)
  lambda0 : float;  (** initial step multiplier *)
  patience : int;  (** iterations without improvement before halving λ *)
}

let default = { iterations = 20_000; lambda0 = 2.0; patience = 100 }

(** [one_tree ~n cost pi] computes a minimum 1-tree under π-modified
    weights: a minimum spanning tree over cities 1..n−1 (Prim, O(n²))
    plus the two cheapest edges incident to city 0.  [cost] is a flat
    row-major n×n matrix.  Returns the modified weight and the degree of
    every node. *)
let one_tree ~n (cost : int array) (pi : float array) =
  let w u v = float_of_int cost.((u * n) + v) +. pi.(u) +. pi.(v) in
  let deg = Array.make n 0 in
  let in_tree = Array.make n false in
  let best = Array.make n infinity and parent = Array.make n (-1) in
  (* Prim over 1..n-1, rooted at 1 *)
  in_tree.(1) <- true;
  for v = 2 to n - 1 do
    best.(v) <- w 1 v;
    parent.(v) <- 1
  done;
  let weight = ref 0.0 in
  for _ = 2 to n - 1 do
    let u = ref (-1) in
    for v = 2 to n - 1 do
      if (not in_tree.(v)) && (!u < 0 || best.(v) < best.(!u)) then u := v
    done;
    let u = !u in
    in_tree.(u) <- true;
    weight := !weight +. best.(u);
    deg.(u) <- deg.(u) + 1;
    deg.(parent.(u)) <- deg.(parent.(u)) + 1;
    for v = 2 to n - 1 do
      if (not in_tree.(v)) && w u v < best.(v) then begin
        best.(v) <- w u v;
        parent.(v) <- u
      end
    done
  done;
  (* two cheapest edges from city 0 *)
  let e1 = ref (-1) and e2 = ref (-1) in
  for v = 1 to n - 1 do
    if !e1 < 0 || w 0 v < w 0 !e1 then begin
      e2 := !e1;
      e1 := v
    end
    else if !e2 < 0 || w 0 v < w 0 !e2 then e2 := v
  done;
  weight := !weight +. w 0 !e1 +. w 0 !e2;
  deg.(0) <- 2;
  deg.(!e1) <- deg.(!e1) + 1;
  deg.(!e2) <- deg.(!e2) + 1;
  (!weight, deg)

(** [bound ?config cost ~upper_bound] is the Held–Karp lower bound for the
    symmetric instance [cost], as a float.  [upper_bound] is the cost of
    any known tour (used only to scale subgradient steps; a loose value
    merely slows convergence).  For [n < 3] the bound is the exact forced
    tour cost. *)
let bound ?(config = default) ~n (cost : int array) ~upper_bound : float =
  if n < 2 then invalid_arg "Held_karp.bound: need at least 2 cities";
  if Array.length cost <> n * n then invalid_arg "Held_karp.bound: not n×n";
  if n = 2 then float_of_int (2 * cost.(1))
  else if n = 3 then
    float_of_int (cost.(1) + cost.(n + 2) + cost.(2 * n))
  else begin
    let pi = Array.make n 0.0 in
    let prev_grad = Array.make n 0.0 in
    let best = ref neg_infinity in
    let lambda = ref config.lambda0 in
    let since_improve = ref 0 in
    let iter = ref 0 in
    let continue = ref true in
    while !continue && !iter < config.iterations do
      incr iter;
      let weight, deg = one_tree ~n cost pi in
      let sum_pi = Array.fold_left ( +. ) 0.0 pi in
      let l = weight -. (2.0 *. sum_pi) in
      if l > !best then begin
        best := l;
        since_improve := 0;
        (* the bound can never exceed the optimum: once it reaches the
           known upper bound it has certified that tour optimal *)
        if l >= float_of_int upper_bound -. 1e-9 then continue := false
      end
      else begin
        incr since_improve;
        if !since_improve >= config.patience then begin
          lambda := !lambda /. 2.0;
          since_improve := 0
        end
      end;
      let norm2 = ref 0.0 in
      for v = 0 to n - 1 do
        let g = float_of_int (deg.(v) - 2) in
        norm2 := !norm2 +. (g *. g)
      done;
      if !norm2 = 0.0 then continue := false (* the 1-tree is a tour: optimal *)
      else if !lambda < 1e-6 then continue := false
      else begin
        let gap = float_of_int upper_bound -. l in
        let gap = if gap <= 0.0 then 1.0 else gap in
        let t = !lambda *. gap /. !norm2 in
        for v = 0 to n - 1 do
          (* momentum 0.7/0.3 smooths the zig-zag of pure subgradients *)
          let g =
            (0.7 *. float_of_int (deg.(v) - 2)) +. (0.3 *. prev_grad.(v))
          in
          prev_grad.(v) <- g;
          pi.(v) <- pi.(v) +. (t *. g)
        done
      end
    done;
    !best
  end

(** [directed_bound ?config d ~upper_bound] is an integer Held–Karp lower
    bound on the optimal directed tour of [d]: the bound of the
    symmetrized instance shifted back by the locked-edge offset, rounded
    up (tour costs are integral).  [upper_bound] is any known directed
    tour cost. *)
let directed_bound ?config (d : Dtsp.t) ~upper_bound : int =
  let s = Sym.of_dtsp d in
  let b =
    bound ?config ~n:s.Sym.nn (Sym.to_flat s)
      ~upper_bound:(upper_bound - s.Sym.offset)
  in
  let shifted = b +. float_of_int s.Sym.offset in
  int_of_float (Float.ceil (shifted -. 1e-6))
