(** Pluggable tour representation for the 3-Opt engine.

    Two implementations answer the same position-based contract:

    - [Array] — the historical flat pair of arrays ([tour] position →
      city, [pos] city → position).  Queries are O(1); a range
      reversal is O(range).  This is the identity anchor: every
      committed small-instance trajectory was produced by it.
    - [Two_level] — the √n-segment structure of {!Two_level}: queries
      O(1), reversals O(√n) amortized, which is what makes 10⁵–10⁶-city
      descents tractable (ROADMAP item 1).

    Both preserve {e exact absolute positions}, and the 3-Opt search
    bases every decision on positions, so the two representations are
    move-for-move identical — the differential property suite pins
    this.  [Auto] (the default everywhere) keeps [Array] for instances
    up to {!two_level_threshold} directed cities — covering every
    committed golden trajectory — and switches to [Two_level] above,
    where the flat reversal cost would dominate; because the
    trajectory is representation-independent the threshold is purely a
    performance choice (DESIGN.md §6).

    The four pure-3-opt reconnections are a composite operation
    ([reconnect]) rather than raw reversal sequences so each
    representation can realize them optimally.  The flat code writes
    the final segment arrangement directly through a scratch buffer
    sized by the {e shorter} segment — the same shorter-side length
    check the 2-opt path already had, fixing the latent O(n) triple
    reversal — and is byte-identical to the reversal sequences it
    replaces (the final window contents are determined by the
    reconnection type alone). *)

type kind = Auto | Array | Two_level

(** Largest directed-instance size (cities, dummy included) [Auto]
    still serves with the flat arrays. *)
let two_level_threshold = 8192

let kind_name = function
  | Auto -> "auto"
  | Array -> "array"
  | Two_level -> "two-level"

let kind_of_string = function
  | "auto" -> Some Auto
  | "array" | "flat" -> Some Array
  | "two-level" | "two_level" -> Some Two_level
  | _ -> None

type flat = {
  ftour : int array;  (** position → city *)
  fpos : int array;  (** city → position *)
  mutable scratch : int array;  (** reconnection buffer, grown on demand *)
}

type t = F of flat | T of Two_level.t

(** [make ?spans kind ~n_cities tour] picks the representation
    ([n_cities] is the {e directed} city count gating [Auto]) and
    loads the tour (copied).  [spans] feeds {!Two_level}'s rebalance
    spans. *)
let make ?spans kind ~n_cities tour =
  let use_two_level =
    match kind with
    | Array -> false
    | Two_level -> true
    | Auto -> n_cities > two_level_threshold
  in
  if use_two_level then
    T (Two_level.create ?spans ~tour (Stdlib.Array.length tour))
  else begin
    let n = Stdlib.Array.length tour in
    let fpos = Stdlib.Array.make n (-1) in
    Stdlib.Array.iteri (fun i c -> fpos.(c) <- i) tour;
    F { ftour = Stdlib.Array.copy tour; fpos; scratch = [||] }
  end

let kind_of = function F _ -> Array | T _ -> Two_level

let n = function
  | F f -> Stdlib.Array.length f.ftour
  | T t -> Two_level.n t

let city_at r p = match r with F f -> f.ftour.(p) | T t -> Two_level.city_at t p
let pos r c = match r with F f -> f.fpos.(c) | T t -> Two_level.pos t c

let succ r c =
  match r with
  | F f ->
      let p = f.fpos.(c) + 1 in
      f.ftour.(if p = Stdlib.Array.length f.ftour then 0 else p)
  | T t -> Two_level.succ t c

let pred r c =
  match r with
  | F f ->
      let p = f.fpos.(c) - 1 in
      f.ftour.(if p < 0 then Stdlib.Array.length f.ftour - 1 else p)
  | T t -> Two_level.pred t c

let set_tour r tour =
  match r with
  | F f ->
      Stdlib.Array.blit tour 0 f.ftour 0 (Stdlib.Array.length f.ftour);
      Stdlib.Array.iteri (fun i c -> f.fpos.(c) <- i) f.ftour
  | T t -> Two_level.set_tour t tour

let to_array = function
  | F f -> Stdlib.Array.copy f.ftour
  | T t -> Two_level.to_array t

(* structure statistics: the flat arrays are one trivial segment *)
let segments = function F _ -> 1 | T t -> Two_level.segments t
let splits = function F _ -> 0 | T t -> Two_level.splits t
let rebalances = function F _ -> 0 | T t -> Two_level.rebalances t

(* ------------------------------------------------------------------ *)
(* flat kernels                                                        *)

(** Reverse the cyclic position segment [l..r] (inclusive). *)
let flat_reverse f l r =
  let n = Stdlib.Array.length f.ftour in
  let len = ((r - l + n) mod n) + 1 in
  let i = ref l and j = ref r in
  for _ = 1 to len / 2 do
    let ci = f.ftour.(!i) and cj = f.ftour.(!j) in
    f.ftour.(!i) <- cj;
    f.ftour.(!j) <- ci;
    f.fpos.(cj) <- !i;
    f.fpos.(ci) <- !j;
    i := (!i + 1) mod n;
    j := (!j - 1 + n) mod n
  done

let reverse r l r' =
  match r with F f -> flat_reverse f l r' | T t -> Two_level.reverse t l r'

type reconnection = T3 | T4 | T5 | T6

let flat_scratch f len =
  if Stdlib.Array.length f.scratch < len then
    f.scratch <- Stdlib.Array.make len 0;
  f.scratch

(** Apply a pure 3-opt reconnection with cuts after positions [pi],
    [pi+jj], [pi+kk] on the flat arrays.  With segment 1 = offsets
    [1..jj] and segment 2 = offsets [jj+1..kk] from [pi], the final
    window contents are T3 = [rev s1, rev s2], T4 = [s2, s1], T5 =
    [s2, rev s1], T6 = [rev s2, s1]; they are written directly,
    buffering only the shorter segment, instead of composing up to
    three O(window) reversals — byte-identical, up to ~3× fewer
    writes. *)
let flat_reconnect f ~pi ~jj ~kk ty =
  let n = Stdlib.Array.length f.ftour in
  let cell off = (pi + off) mod n in
  let get off = f.ftour.(cell off) in
  let set off c =
    let p = cell off in
    f.ftour.(p) <- c;
    f.fpos.(c) <- p
  in
  let l1 = jj and l2 = kk - jj in
  let p1 = (pi + 1) mod n in
  let pj = (pi + jj) mod n in
  let pj1 = (pj + 1) mod n in
  let pk = (pi + kk) mod n in
  match ty with
  | T3 ->
      (* both reversals are in place and minimal already *)
      flat_reverse f p1 pj;
      flat_reverse f pj1 pk
  | T4 ->
      if l1 <= l2 then begin
        let buf = flat_scratch f l1 in
        for u = 0 to l1 - 1 do
          buf.(u) <- get (1 + u)
        done;
        for u = 0 to l2 - 1 do
          set (1 + u) (get (jj + 1 + u))
        done;
        for u = 0 to l1 - 1 do
          set (l2 + 1 + u) buf.(u)
        done
      end
      else begin
        let buf = flat_scratch f l2 in
        for u = 0 to l2 - 1 do
          buf.(u) <- get (jj + 1 + u)
        done;
        for u = l1 - 1 downto 0 do
          set (l2 + 1 + u) (get (1 + u))
        done;
        for u = 0 to l2 - 1 do
          set (1 + u) buf.(u)
        done
      end
  | T5 ->
      if l1 <= l2 then begin
        let buf = flat_scratch f l1 in
        for u = 0 to l1 - 1 do
          buf.(u) <- get (1 + u)
        done;
        for u = 0 to l2 - 1 do
          set (1 + u) (get (jj + 1 + u))
        done;
        for u = 0 to l1 - 1 do
          set (l2 + 1 + u) buf.(l1 - 1 - u)
        done
      end
      else begin
        (* s2 shorter: the historical two-reversal path already moves
           only kk + l2 cells, which beats buffering s1 *)
        flat_reverse f pj1 pk;
        flat_reverse f p1 pk
      end
  | T6 ->
      if l2 < l1 then begin
        let buf = flat_scratch f l2 in
        for u = 0 to l2 - 1 do
          buf.(u) <- get (jj + 1 + u)
        done;
        for u = l1 - 1 downto 0 do
          set (l2 + 1 + u) (get (1 + u))
        done;
        for u = 0 to l2 - 1 do
          set (1 + u) buf.(l2 - 1 - u)
        done
      end
      else begin
        flat_reverse f p1 pj;
        flat_reverse f p1 pk
      end

(** Apply a pure 3-opt reconnection with cuts after positions [pi],
    [pi+jj], [pi+kk] (see DESIGN.md §6 for the segment algebra). *)
let reconnect r ~pi ~jj ~kk ty =
  match r with
  | F f -> flat_reconnect f ~pi ~jj ~kk ty
  | T t ->
      let n = Two_level.n t in
      let pj = (pi + jj) mod n and pk = (pi + kk) mod n in
      let p1 = (pi + 1) mod n and pj1 = (pj + 1) mod n in
      (* the reversal sequences act on positions alone, so replaying
         them reproduces the flat window contents exactly *)
      (match ty with
      | T3 ->
          Two_level.reverse t p1 pj;
          Two_level.reverse t pj1 pk
      | T4 ->
          Two_level.reverse t p1 pj;
          Two_level.reverse t pj1 pk;
          Two_level.reverse t p1 pk
      | T5 ->
          Two_level.reverse t pj1 pk;
          Two_level.reverse t p1 pk
      | T6 ->
          Two_level.reverse t p1 pj;
          Two_level.reverse t p1 pk)
