(** Directed (asymmetric) TSP instances, stored sparsely: per row, a
    sorted array of explicit (column, cost) deviations plus a default
    cost for every other column.  The logical cost matrix is total
    (diagonal included); we seek a minimum-cost directed Hamiltonian
    cycle.  See docs/PERFORMANCE.md for the representation design. *)

type t = {
  n : int;  (** number of cities, ≥ 2 *)
  row_cols : int array array;  (** per row, strictly increasing columns *)
  row_costs : int array array;  (** costs of the explicit columns *)
  row_default : int array;  (** cost of every column not listed *)
  max_cost : int;  (** cached largest off-diagonal cost *)
}

(** Compress a square matrix (dense fallback constructor; reproduces the
    logical matrix exactly, diagonal included).
    @raise Invalid_argument if smaller than 2×2 or ragged. *)
val make : int array array -> t

(** [of_rows ~n ~default rows] builds an instance from per-row explicit
    (column, cost) deviations from [default.(i)] without materializing a
    dense matrix.  Entries equal to the row default are dropped.
    @raise Invalid_argument on out-of-range or duplicate columns. *)
val of_rows : n:int -> default:int array -> (int * int) list array -> t

(** Cost of travelling i → j (explicit entry or row default). *)
val cost : t -> int -> int -> int

(** Largest off-diagonal cost (cached at construction). *)
val max_cost : t -> int

(** Number of explicit deviations stored (the instance is O(n + nnz)). *)
val nnz : t -> int

(** [blit_row t i dst] fills [dst.(0..n-1)] with the logical row [i].
    @raise Invalid_argument if [dst] is shorter than [n]. *)
val blit_row : t -> int -> int array -> unit

(** Dense row-major copy ([i*n + j]) for the genuinely dense kernels. *)
val to_flat : t -> int array

(** Is the array a permutation of the cities? *)
val is_tour : t -> int array -> bool

(** Cost of the directed cycle visiting the cities in order (closing
    edge included).  @raise Invalid_argument if not a tour. *)
val tour_cost : t -> int array -> int

(** Rotate a cyclic tour so the given city comes first (stops at the
    first match).  @raise Not_found if absent. *)
val rotate_to : int array -> int -> int array

val pp : Format.formatter -> t -> unit
