(** Directed (asymmetric) TSP instances: a complete directed graph given
    by a full cost matrix; we seek a minimum-cost directed Hamiltonian
    cycle. *)

type t = {
  n : int;  (** number of cities, ≥ 2 *)
  cost : int array array;  (** [n × n]; diagonal ignored *)
}

(** Wrap a square matrix.
    @raise Invalid_argument if smaller than 2×2 or ragged. *)
val make : int array array -> t

(** Largest off-diagonal cost. *)
val max_cost : t -> int

(** Is the array a permutation of the cities? *)
val is_tour : t -> int array -> bool

(** Cost of the directed cycle visiting the cities in order (closing
    edge included).  @raise Invalid_argument if not a tour. *)
val tour_cost : t -> int array -> int

(** Rotate a cyclic tour so the given city comes first.
    @raise Not_found if absent. *)
val rotate_to : int array -> int -> int array

val pp : Format.formatter -> t -> unit
