(** Assignment-problem solver (Hungarian algorithm, shortest augmenting
    path formulation, O(n³)).

    The AP relaxation of the DTSP — a minimum-cost collection of disjoint
    directed cycles covering all cities — is the classic lower bound that
    patching-based DTSP codes exploit [14, 34].  The paper's appendix
    shows that on branch-alignment instances the AP bound is often far
    from the optimum (median gap 30% on the instances where it is not
    exact), which is why the Held–Karp bound is used instead.  We
    implement it to reproduce that appendix experiment. *)

(** [solve ~n cost] returns [(assignment, total)] where [assignment.(i)]
    is the column matched to row [i] and [total] the minimum total cost
    of a perfect matching.  [cost] is a flat row-major n×n matrix
    ([cost.(i*n + j)]), [n ≥ 1].  Forbid an entry by making it much
    larger than any desired solution. *)
let solve ~n (cost : int array) : int array * int =
  if n = 0 then invalid_arg "Hungarian.solve: empty matrix";
  if Array.length cost <> n * n then invalid_arg "Hungarian.solve: not n×n";
  let inf = max_int / 4 in
  (* potentials and matching over 1-based internal arrays *)
  let u = Array.make (n + 1) 0 and v = Array.make (n + 1) 0 in
  let p = Array.make (n + 1) 0 (* p.(j) = row matched to column j *)
  and way = Array.make (n + 1) 0 in
  for i = 1 to n do
    p.(0) <- i;
    let j0 = ref 0 in
    let minv = Array.make (n + 1) inf in
    let used = Array.make (n + 1) false in
    let continue = ref true in
    while !continue do
      used.(!j0) <- true;
      let i0 = p.(!j0) in
      let row = (i0 - 1) * n in
      let delta = ref inf and j1 = ref (-1) in
      for j = 1 to n do
        if not used.(j) then begin
          let cur = cost.(row + j - 1) - u.(i0) - v.(j) in
          if cur < minv.(j) then begin
            minv.(j) <- cur;
            way.(j) <- !j0
          end;
          if minv.(j) < !delta then begin
            delta := minv.(j);
            j1 := j
          end
        end
      done;
      for j = 0 to n do
        if used.(j) then begin
          u.(p.(j)) <- u.(p.(j)) + !delta;
          v.(j) <- v.(j) - !delta
        end
        else minv.(j) <- minv.(j) - !delta
      done;
      j0 := !j1;
      if p.(!j0) = 0 then continue := false
    done;
    (* augment along the alternating path *)
    let j = ref !j0 in
    while !j <> 0 do
      let j1 = way.(!j) in
      p.(!j) <- p.(j1);
      j := j1
    done
  done;
  let assignment = Array.make n (-1) in
  for j = 1 to n do
    if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
  done;
  let total = ref 0 in
  Array.iteri (fun i j -> total := !total + cost.((i * n) + j)) assignment;
  (assignment, !total)

(** [ap_bound d] is the assignment-problem lower bound on the optimal
    directed tour of [d]: solve the AP with self-assignment forbidden.
    The bound equals the optimum exactly when the optimal cycle cover is a
    single cycle. *)
let ap_bound (d : Dtsp.t) : int =
  let n = d.Dtsp.n in
  let forbid = 1 + (n * (Dtsp.max_cost d + 1)) in
  let c = Dtsp.to_flat d in
  for i = 0 to n - 1 do
    c.((i * n) + i) <- forbid
  done;
  snd (solve ~n c)
