(** Directed (asymmetric) TSP instances.

    An instance is a complete directed graph on [n] cities given by a full
    cost matrix; [cost.(i).(j)] is the cost of travelling i → j.  Costs
    are arbitrary non-negative integers (the branch-alignment reduction
    also uses a large-but-finite cost to forbid edges, see
    [Ba_align.Reduction]).  We look for a minimum-cost directed
    Hamiltonian {e cycle}; the alignment reduction closes its layout walk
    into a cycle with a dummy city. *)

type t = {
  n : int;  (** number of cities, [>= 2] *)
  cost : int array array;  (** [n × n]; the diagonal is ignored *)
}

(** [make cost] wraps a square matrix.
    @raise Invalid_argument if the matrix is smaller than 2×2 or ragged. *)
let make cost =
  let n = Array.length cost in
  if n < 2 then invalid_arg "Dtsp.make: need at least 2 cities";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Dtsp.make: ragged matrix")
    cost;
  { n; cost }

(** Largest off-diagonal cost in the instance (0 for an all-zero one). *)
let max_cost t =
  let m = ref 0 in
  for i = 0 to t.n - 1 do
    for j = 0 to t.n - 1 do
      if i <> j && t.cost.(i).(j) > !m then m := t.cost.(i).(j)
    done
  done;
  !m

(** [is_tour t tour] checks that [tour] is a permutation of [0..n-1]. *)
let is_tour t tour =
  Array.length tour = t.n
  &&
  let seen = Array.make t.n false in
  Array.for_all
    (fun c ->
      if c < 0 || c >= t.n || seen.(c) then false
      else begin
        seen.(c) <- true;
        true
      end)
    tour

(** Cost of the directed cycle visiting cities in [tour] order (including
    the closing edge back to [tour.(0)]).
    @raise Invalid_argument if [tour] is not a permutation. *)
let tour_cost t tour =
  if not (is_tour t tour) then invalid_arg "Dtsp.tour_cost: not a tour";
  let n = t.n in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + t.cost.(tour.(i)).(tour.((i + 1) mod n))
  done;
  !total

(** [rotate_to tour city] is the same cyclic tour rotated so that [city]
    comes first.  @raise Not_found if [city] is absent. *)
let rotate_to tour city =
  let n = Array.length tour in
  let i = ref (-1) in
  Array.iteri (fun k c -> if c = city then i := k) tour;
  if !i < 0 then raise Not_found;
  Array.init n (fun k -> tour.((k + !i) mod n))

let pp ppf t =
  Fmt.pf ppf "@[<v>dtsp n=%d@,%a@]" t.n
    Fmt.(array ~sep:cut (array ~sep:sp int))
    t.cost
