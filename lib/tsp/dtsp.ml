(** Directed (asymmetric) TSP instances, stored sparsely.

    An instance is a complete directed graph on [n] cities.  The
    branch-alignment reduction produces inherently sparse instances: a
    row has one interesting cost per CFG successor of the block and a
    single shared default everywhere else (the terminator's penalty when
    the layout successor is not a CFG successor is independent of which
    city follows — see [Ba_align.Reduction]).  We therefore keep a
    CSR-style representation: per row, a sorted array of explicit
    (column, cost) deviations plus the row's default cost.  The logical
    matrix is total — [cost t i j] is defined for every pair, including
    the diagonal (which solvers ignore but oracles may read).

    [make] is the dense fallback constructor (tests, exact solvers,
    independent validators): it compresses a full matrix by choosing the
    most frequent off-diagonal value of each row as that row's default.
    [of_rows] builds an instance directly from per-row deviations
    without ever materializing the dense matrix.

    [max_cost] — the largest off-diagonal cost, which seeds the
    symmetrization weights and the solver's RNG — is computed once at
    construction time and cached. *)

type t = {
  n : int;  (** number of cities, [>= 2] *)
  row_cols : int array array;  (** per row, strictly increasing columns *)
  row_costs : int array array;  (** costs of the explicit columns *)
  row_default : int array;  (** cost of every column not listed *)
  max_cost : int;  (** cached largest off-diagonal cost *)
}

(* largest off-diagonal cost of a CSR triple (0 for an all-zero
   instance): explicit off-diagonal entries, plus each row's default
   whenever the row has at least one implicit off-diagonal column *)
let compute_max ~n ~row_cols ~row_costs ~row_default =
  let m = ref 0 in
  for i = 0 to n - 1 do
    let cols = row_cols.(i) and costs = row_costs.(i) in
    let explicit_offdiag = ref 0 in
    Array.iteri
      (fun k c ->
        if c <> i then begin
          incr explicit_offdiag;
          if costs.(k) > !m then m := costs.(k)
        end)
      cols;
    if !explicit_offdiag < n - 1 && row_default.(i) > !m then
      m := row_default.(i)
  done;
  !m

let build ~n ~row_cols ~row_costs ~row_default =
  {
    n;
    row_cols;
    row_costs;
    row_default;
    max_cost = compute_max ~n ~row_cols ~row_costs ~row_default;
  }

(** [of_rows ~n ~default rows] builds an instance from per-row explicit
    deviations; [rows.(i)] lists (column, cost) pairs whose cost differs
    from [default.(i)] (entries equal to the row default are dropped,
    the rest sorted by column).
    @raise Invalid_argument on out-of-range or duplicate columns. *)
let of_rows ~n ~default rows =
  if n < 2 then invalid_arg "Dtsp.of_rows: need at least 2 cities";
  if Array.length default <> n || Array.length rows <> n then
    invalid_arg "Dtsp.of_rows: wrong row count";
  let row_cols = Array.make n [||] and row_costs = Array.make n [||] in
  for i = 0 to n - 1 do
    let entries =
      List.filter (fun (_, v) -> v <> default.(i)) rows.(i)
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let len = List.length entries in
    let cols = Array.make len 0 and costs = Array.make len 0 in
    List.iteri
      (fun k (c, v) ->
        if c < 0 || c >= n then invalid_arg "Dtsp.of_rows: column out of range";
        if k > 0 && cols.(k - 1) >= c then
          invalid_arg "Dtsp.of_rows: duplicate column";
        cols.(k) <- c;
        costs.(k) <- v)
      entries;
    row_cols.(i) <- cols;
    row_costs.(i) <- costs
  done;
  build ~n ~row_cols ~row_costs ~row_default:(Array.copy default)

(** [make cost] compresses a square matrix (dense fallback: tests, the
    independent certificate validator, exact solvers).  The logical
    matrix is reproduced exactly, diagonal included.
    @raise Invalid_argument if the matrix is smaller than 2×2 or ragged. *)
let make cost =
  let n = Array.length cost in
  if n < 2 then invalid_arg "Dtsp.make: need at least 2 cities";
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Dtsp.make: ragged matrix")
    cost;
  let row_cols = Array.make n [||]
  and row_costs = Array.make n [||]
  and row_default = Array.make n 0 in
  for i = 0 to n - 1 do
    let row = cost.(i) in
    (* default = most frequent off-diagonal value (ties: smallest) *)
    let counts = Hashtbl.create 16 in
    for j = 0 to n - 1 do
      if j <> i then
        Hashtbl.replace counts row.(j)
          (1 + try Hashtbl.find counts row.(j) with Not_found -> 0)
    done;
    let default =
      Hashtbl.fold
        (fun v c best ->
          match best with
          | Some (bv, bc) when bc > c || (bc = c && bv < v) -> best
          | _ -> Some (v, c))
        counts None
      |> function Some (v, _) -> v | None -> row.(i)
    in
    let nex = ref 0 in
    for j = 0 to n - 1 do
      if row.(j) <> default then incr nex
    done;
    let cols = Array.make !nex 0 and costs = Array.make !nex 0 in
    let k = ref 0 in
    for j = 0 to n - 1 do
      if row.(j) <> default then begin
        cols.(!k) <- j;
        costs.(!k) <- row.(j);
        incr k
      end
    done;
    row_default.(i) <- default;
    row_cols.(i) <- cols;
    row_costs.(i) <- costs
  done;
  build ~n ~row_cols ~row_costs ~row_default

(** [cost t i j] is the cost of travelling i → j (explicit entry or row
    default).  Rows from the reduction have out-degree-many entries, so
    short rows take a linear scan; long rows (dense fallback instances)
    a binary search. *)
let cost t i j =
  let cols = t.row_cols.(i) in
  let len = Array.length cols in
  if len <= 8 then begin
    let k = ref 0 in
    while !k < len && Array.unsafe_get cols !k < j do
      incr k
    done;
    if !k < len && Array.unsafe_get cols !k = j then
      Array.unsafe_get (Array.unsafe_get t.row_costs i) !k
    else Array.unsafe_get t.row_default i
  end
  else begin
    let lo = ref 0 and hi = ref len in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if Array.unsafe_get cols mid < j then lo := mid + 1 else hi := mid
    done;
    if !lo < len && Array.unsafe_get cols !lo = j then
      Array.unsafe_get (Array.unsafe_get t.row_costs i) !lo
    else Array.unsafe_get t.row_default i
  end

(** Largest off-diagonal cost in the instance (cached at build time). *)
let max_cost t = t.max_cost

(** Number of explicit (column, cost) deviations stored. *)
let nnz t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.row_cols

(** [blit_row t i dst] fills [dst.(0..n-1)] with the logical row [i]. *)
let blit_row t i dst =
  if Array.length dst < t.n then invalid_arg "Dtsp.blit_row: dst too short";
  Array.fill dst 0 t.n t.row_default.(i);
  let cols = t.row_cols.(i) and costs = t.row_costs.(i) in
  for k = 0 to Array.length cols - 1 do
    dst.(cols.(k)) <- costs.(k)
  done

(** Dense row-major copy ([i*n + j]) for the genuinely dense kernels
    (Hungarian, Held–Karp, exact DP, patching). *)
let to_flat t =
  let n = t.n in
  let flat = Array.make (n * n) 0 in
  for i = 0 to n - 1 do
    Array.fill flat (i * n) n t.row_default.(i);
    let cols = t.row_cols.(i) and costs = t.row_costs.(i) in
    for k = 0 to Array.length cols - 1 do
      flat.((i * n) + cols.(k)) <- costs.(k)
    done
  done;
  flat

(** [is_tour t tour] checks that [tour] is a permutation of [0..n-1]. *)
let is_tour t tour =
  Array.length tour = t.n
  &&
  let seen = Array.make t.n false in
  Array.for_all
    (fun c ->
      if c < 0 || c >= t.n || seen.(c) then false
      else begin
        seen.(c) <- true;
        true
      end)
    tour

(** Cost of the directed cycle visiting cities in [tour] order (including
    the closing edge back to [tour.(0)]).
    @raise Invalid_argument if [tour] is not a permutation. *)
let tour_cost t tour =
  if not (is_tour t tour) then invalid_arg "Dtsp.tour_cost: not a tour";
  let n = t.n in
  let total = ref 0 in
  for i = 0 to n - 1 do
    total := !total + cost t tour.(i) tour.((i + 1) mod n)
  done;
  !total

(** [rotate_to tour city] is the same cyclic tour rotated so that [city]
    comes first (tours are permutations, so the first match is the only
    one).  @raise Not_found if [city] is absent. *)
let rotate_to tour city =
  let n = Array.length tour in
  let rec find k =
    if k >= n then raise Not_found
    else if tour.(k) = city then k
    else find (k + 1)
  in
  let i = find 0 in
  Array.init n (fun k -> tour.((k + i) mod n))

let pp ppf t =
  Fmt.pf ppf "@[<v>dtsp n=%d nnz=%d" t.n (nnz t);
  for i = 0 to t.n - 1 do
    Fmt.pf ppf "@,%d: default %d" i t.row_default.(i);
    Array.iteri
      (fun k c -> Fmt.pf ppf " %d:%d" c t.row_costs.(i).(k))
      t.row_cols.(i)
  done;
  Fmt.pf ppf "@]"
