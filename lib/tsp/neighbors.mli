(** k-nearest-neighbor candidate lists (finite, non-locked partners
    only), sorted by increasing cost so searches can stop early. *)

val of_sym : Sym.t -> k:int -> int array array
