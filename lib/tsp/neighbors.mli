(** k-nearest-neighbor candidate lists (finite, non-locked partners
    only), sorted by increasing cost so searches can stop early. *)

(** Selection algorithm.  [Exact] reproduces the historical dense
    scan's exact tie order (full per-city sort, O(n² log n) — the
    identity anchor for small-instance trajectories); [Select] is the
    partial heap-select merge over the sparse CSR rows, returning the
    unique k-cheapest list under the canonical order (cost, partner id)
    in O(n log n + n·k + E); [Auto] (default) gates on
    {!exact_threshold}. *)
type mode = Auto | Exact | Select

(** Largest directed-instance size (cities, dummy included) that [Auto]
    still serves with the bit-exact dense tie order.  Every committed
    golden trajectory lives far below this. *)
val exact_threshold : int

(** [of_sym s ~k] builds, for every symmetric city, its up-to-[k]
    cheapest candidate partners (finite cost, not the locked partner).
    [k] is clamped to [0..n−1], so both algorithms return the same short
    list when [k] exceeds the partner count.  [exec] fans row
    construction out over the engine's domain pool (chunked, merged in
    index order) — the result is bit-identical at any job count. *)
val of_sym :
  ?mode:mode ->
  ?exec:Ba_engine.Executor.t ->
  Sym.t ->
  k:int ->
  int array array
