(** Tour-construction heuristics for directed instances; both are
    randomized the way the paper's solver uses them (pick among the best
    few / randomly skip edges), and both are sparse-aware: they drive
    the CSR rows of {!Dtsp} instead of scanning the O(n²) logical
    matrix, which is what makes multi-start solves viable at 10⁵–10⁶
    blocks. *)

(** The identity tour 0,1,…,n−1. *)
val identity : int -> int array

(** Grow a tour from [start], moving to one of the [choices] nearest
    unvisited cities (uniformly among them; [choices = 1] is
    deterministic).  O(choices + deg) per step via a merge of the
    current row's sorted explicit deviations with an unvisited-list
    walk at the default cost; bit-identical to the dense O(n)-per-step
    scan at every size, including the RNG stream (one draw per step). *)
val nearest_neighbor :
  ?rng:Random.State.t -> ?choices:int -> Dtsp.t -> start:int -> int array

(** Largest instance the randomized greedy still serves with the dense
    all-edges scan (and hence the historical RNG stream); mirrors the
    {!Neighbors.exact_threshold} gate. *)
val greedy_dense_threshold : int

(** Scan the edges in increasing (cost, i, j) order, linking chain
    tails to chain heads; with [rng], acceptable edges are skipped with
    probability [skip_prob] and leftover fragments stitched
    cheapest-first.  Deterministic calls always use a sparse merge of
    the explicit-deviation stream with a per-row default stream —
    identical result to the dense scan without materializing the n(n−1)
    edges.  Randomized calls keep the dense scan (exact historical RNG
    stream) up to {!greedy_dense_threshold} cities and switch to the
    sparse enumeration (one draw per emitted edge, deterministic for a
    fixed RNG) above it. *)
val greedy_edge : ?rng:Random.State.t -> ?skip_prob:float -> Dtsp.t -> int array
