(** Tour-construction heuristics for directed instances; both are
    randomized the way the paper's solver uses them (pick among the best
    few / randomly skip edges). *)

(** The identity tour 0,1,…,n−1. *)
val identity : int -> int array

(** Grow a tour from [start], moving to one of the [choices] nearest
    unvisited cities (uniformly among them; [choices = 1] is
    deterministic). *)
val nearest_neighbor :
  ?rng:Random.State.t -> ?choices:int -> Dtsp.t -> start:int -> int array

(** Scan all edges in increasing cost order, linking chain tails to
    chain heads; with [rng], acceptable edges are skipped with
    probability [skip_prob] and leftover fragments stitched
    cheapest-first. *)
val greedy_edge : ?rng:Random.State.t -> ?skip_prob:float -> Dtsp.t -> int array
