(** DTSP → symmetric TSP transformation.

    The standard 2-city NP-completeness transformation, which the paper's
    appendix reports works surprisingly well in practice [11]: each
    directed city [i] becomes an {e in}-city [2i] and an {e out}-city
    [2i+1].  The in/out pair is joined by a {e locked} edge of large
    negative weight [-m], directed edge i → j becomes the symmetric edge
    (out i, in j) of the original cost, and all other pairs get a large
    positive weight [inf] so that improving local-search moves can neither
    drop a locked edge nor introduce a non-edge (the paper's iterated
    3-Opt code supports locked edges natively; the −m encoding achieves
    the same invariant, which the solver asserts after the fact).

    The symmetric matrix is never materialized: its structure is fully
    determined by city parity, so [cost] computes any entry in O(1) from
    the sparse directed instance — a locked pair iff [a lxor b = 1],
    forbidden iff [a] and [b] have the same parity, a directed lookup
    otherwise.  This keeps the instance O(n + E) in memory where the old
    dense form was O(n²) (see docs/PERFORMANCE.md). *)

type t = {
  n_cities : int;  (** number of directed cities *)
  nn : int;  (** number of symmetric cities = 2 × n_cities *)
  dir : Dtsp.t;  (** the sparse directed instance; never copied *)
  m : int;  (** magnitude of the locked-edge weight *)
  inf : int;  (** weight of forbidden pairs *)
  real_max : int;  (** largest directed cost; bounds improving-move gains *)
  nonneg : bool;  (** every directed cost is ≥ 0 (true for all registered
                      objectives); licenses the locked-edge scan skips *)
  offset : int;  (** directed tour cost = symmetric cost + offset = sym + n·m *)
}

let in_city i = 2 * i
let out_city i = (2 * i) + 1

(** [of_dtsp d] wraps the directed instance — O(1), no matrix.  The
    locked weight is [m = 2·max_cost + 2] (strictly more than any single
    improving swap can recover, see DESIGN.md §6) and the forbidden
    weight is [8·(max_cost + m + 1)]. *)
let of_dtsp (d : Dtsp.t) : t =
  let n = d.Dtsp.n in
  let cmax = Dtsp.max_cost d in
  let m = (2 * cmax) + 2 in
  let inf = 8 * (cmax + m + 1) in
  (* O(n + E) sign sweep: every registered objective emits nonnegative
     costs, and recording that here lets the 3-Opt scan prove locked
     edges unprofitable to remove without evaluating the gain *)
  let nonneg = ref true in
  for i = 0 to n - 1 do
    if d.Dtsp.row_default.(i) < 0 then nonneg := false;
    Array.iter (fun c -> if c < 0 then nonneg := false) d.Dtsp.row_costs.(i)
  done;
  {
    n_cities = n;
    nn = 2 * n;
    dir = d;
    m;
    inf;
    real_max = cmax;
    nonneg = !nonneg;
    offset = n * m;
  }

(** [cost s a b] is the symmetric weight of the pair (a, b): [−m] on the
    locked in/out pair of one city, [inf] on same-parity pairs (and the
    diagonal), the directed cost otherwise.  This sits in the 3-Opt
    inner loop, so the directed lookup is done inline rather than
    through [Dtsp.cost]. *)
let cost (s : t) a b =
  let x = a lxor b in
  if x = 1 then -s.m
  else if x land 1 = 0 then s.inf
  else begin
    let i, j = if a land 1 = 1 then (a asr 1, b asr 1) else (b asr 1, a asr 1) in
    let d = s.dir in
    let cols = d.Dtsp.row_cols.(i) in
    let len = Array.length cols in
    if len <= 8 then begin
      let k = ref 0 in
      while !k < len && Array.unsafe_get cols !k < j do
        incr k
      done;
      if !k < len && Array.unsafe_get cols !k = j then
        Array.unsafe_get (Array.unsafe_get d.Dtsp.row_costs i) !k
      else Array.unsafe_get d.Dtsp.row_default i
    end
    else Dtsp.cost d i j
  end

(** [is_locked s a b] is true iff (a,b) is an in/out pair edge. *)
let is_locked _s a b = a lxor b = 1

(** Dense row-major copy ([a*nn + b]) of the symmetric matrix for the
    genuinely dense kernels (Held–Karp bounding). *)
let to_flat (s : t) =
  let nn = s.nn and n = s.n_cities in
  let flat = Array.make (nn * nn) s.inf in
  let row = Array.make n 0 in
  for i = 0 to n - 1 do
    (* row of out-city 2i+1: directed row i at the in-cities *)
    Dtsp.blit_row s.dir i row;
    let base = ((2 * i) + 1) * nn in
    for j = 0 to n - 1 do
      if j <> i then begin
        flat.(base + (2 * j)) <- row.(j);
        flat.(((2 * j) * nn) + (2 * i) + 1) <- row.(j)
      end
    done;
    flat.(((2 * i) * nn) + (2 * i) + 1) <- -s.m;
    flat.(base + (2 * i)) <- -s.m
  done;
  flat

(** [expand s dtour] turns a directed tour into the corresponding
    symmetric tour [in t0; out t0; in t1; out t1; …]. *)
let expand (s : t) (dtour : int array) =
  if Array.length dtour <> s.n_cities then invalid_arg "Sym.expand: wrong size";
  Array.init s.nn (fun k ->
      let c = dtour.(k / 2) in
      if k land 1 = 0 then in_city c else out_city c)

(** Cost of a symmetric tour (cycle). *)
let tour_cost (s : t) (tour : int array) =
  let nn = s.nn in
  let total = ref 0 in
  for i = 0 to nn - 1 do
    total := !total + cost s tour.(i) tour.((i + 1) mod nn)
  done;
  !total

(** [check_alternating s tour] verifies that every in/out pair is adjacent
    in the tour (i.e. all locked edges survived local search). *)
let check_alternating (s : t) (tour : int array) =
  let pos = Array.make s.nn (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) tour;
  let ok = ref true in
  for i = 0 to s.n_cities - 1 do
    let pi = pos.(in_city i) and po = pos.(out_city i) in
    let dist = (po - pi + s.nn) mod s.nn in
    if dist <> 1 && dist <> s.nn - 1 then ok := false
  done;
  !ok

(** [extract s tour] recovers the directed tour from a symmetric tour in
    which all locked edges are intact; the orientation is normalized so
    that every directed edge reads out(i) → in(j).
    @raise Invalid_argument if a locked edge is missing. *)
let extract (s : t) (tour : int array) : int array =
  if not (check_alternating s tour) then
    invalid_arg "Sym.extract: a locked edge was dropped by local search";
  let pos = Array.make s.nn (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) tour;
  (* orientation: +1 if in(c) is immediately followed by out(c) *)
  let p0 = pos.(in_city 0) in
  let dir = if tour.((p0 + 1) mod s.nn) = out_city 0 then 1 else -1 in
  Array.init s.n_cities (fun k ->
      let p = (p0 + (dir * 2 * k) + (2 * s.nn)) mod s.nn in
      let c = tour.(p) in
      (* with dir = +1 we sample in-cities; with −1 we walk backwards and
         still land on in-cities *)
      if c land 1 <> 0 then invalid_arg "Sym.extract: tour does not alternate";
      c / 2)
