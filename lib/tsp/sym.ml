(** DTSP → symmetric TSP transformation.

    The standard 2-city NP-completeness transformation, which the paper's
    appendix reports works surprisingly well in practice [11]: each
    directed city [i] becomes an {e in}-city [2i] and an {e out}-city
    [2i+1].  The in/out pair is joined by a {e locked} edge of large
    negative weight [-m], directed edge i → j becomes the symmetric edge
    (out i, in j) of the original cost, and all other pairs get a large
    positive weight [inf] so that improving local-search moves can neither
    drop a locked edge nor introduce a non-edge (the paper's iterated
    3-Opt code supports locked edges natively; the −m encoding achieves
    the same invariant, which the solver asserts after the fact). *)

type t = {
  n_cities : int;  (** number of directed cities *)
  nn : int;  (** number of symmetric cities = 2 × n_cities *)
  cost : int array array;  (** symmetric [nn × nn] matrix *)
  m : int;  (** magnitude of the locked-edge weight *)
  inf : int;  (** weight of forbidden pairs *)
  real_max : int;  (** largest directed cost; bounds improving-move gains *)
  offset : int;  (** directed tour cost = symmetric cost + offset = sym + n·m *)
}

let in_city i = 2 * i
let out_city i = (2 * i) + 1

(** [of_dtsp d] builds the symmetric instance.  The locked weight is
    [m = 2·max_cost + 2] (strictly more than any single improving swap can
    recover, see DESIGN.md §6) and the forbidden weight is
    [8·(max_cost + m + 1)]. *)
let of_dtsp (d : Dtsp.t) : t =
  let n = d.Dtsp.n in
  let cmax = Dtsp.max_cost d in
  let m = (2 * cmax) + 2 in
  let inf = 8 * (cmax + m + 1) in
  let nn = 2 * n in
  let cost = Array.make_matrix nn nn inf in
  for i = 0 to n - 1 do
    cost.(in_city i).(out_city i) <- -m;
    cost.(out_city i).(in_city i) <- -m;
    for j = 0 to n - 1 do
      if i <> j then begin
        cost.(out_city i).(in_city j) <- d.Dtsp.cost.(i).(j);
        cost.(in_city j).(out_city i) <- d.Dtsp.cost.(i).(j)
      end
    done
  done;
  { n_cities = n; nn; cost; m; inf; real_max = cmax; offset = n * m }

(** [is_locked s a b] is true iff (a,b) is an in/out pair edge. *)
let is_locked _s a b = a lxor b = 1

(** [expand s dtour] turns a directed tour into the corresponding
    symmetric tour [in t0; out t0; in t1; out t1; …]. *)
let expand (s : t) (dtour : int array) =
  if Array.length dtour <> s.n_cities then invalid_arg "Sym.expand: wrong size";
  Array.init s.nn (fun k ->
      let c = dtour.(k / 2) in
      if k land 1 = 0 then in_city c else out_city c)

(** Cost of a symmetric tour (cycle). *)
let tour_cost (s : t) (tour : int array) =
  let nn = s.nn in
  let total = ref 0 in
  for i = 0 to nn - 1 do
    total := !total + s.cost.(tour.(i)).(tour.((i + 1) mod nn))
  done;
  !total

(** [check_alternating s tour] verifies that every in/out pair is adjacent
    in the tour (i.e. all locked edges survived local search). *)
let check_alternating (s : t) (tour : int array) =
  let pos = Array.make s.nn (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) tour;
  let ok = ref true in
  for i = 0 to s.n_cities - 1 do
    let pi = pos.(in_city i) and po = pos.(out_city i) in
    let dist = (po - pi + s.nn) mod s.nn in
    if dist <> 1 && dist <> s.nn - 1 then ok := false
  done;
  !ok

(** [extract s tour] recovers the directed tour from a symmetric tour in
    which all locked edges are intact; the orientation is normalized so
    that every directed edge reads out(i) → in(j).
    @raise Invalid_argument if a locked edge is missing. *)
let extract (s : t) (tour : int array) : int array =
  if not (check_alternating s tour) then
    invalid_arg "Sym.extract: a locked edge was dropped by local search";
  let pos = Array.make s.nn (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) tour;
  (* orientation: +1 if in(c) is immediately followed by out(c) *)
  let p0 = pos.(in_city 0) in
  let dir = if tour.((p0 + 1) mod s.nn) = out_city 0 then 1 else -1 in
  Array.init s.n_cities (fun k ->
      let p = (p0 + (dir * 2 * k) + (2 * s.nn)) mod s.nn in
      let c = tour.(p) in
      (* with dir = +1 we sample in-cities; with −1 we walk backwards and
         still land on in-cities *)
      if c land 1 <> 0 then invalid_arg "Sym.extract: tour does not alternate";
      c / 2)
