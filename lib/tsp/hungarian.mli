(** Assignment-problem solver (Hungarian algorithm, shortest augmenting
    paths, O(n³)) and the AP lower bound on directed tours — the bound
    the paper's appendix shows is too weak on branch-alignment
    instances. *)

(** [solve ~n cost] is [(assignment, total)]: [assignment.(i)] is the
    column matched to row [i], minimizing the total.  [cost] is a flat
    row-major n×n matrix ([cost.(i*n + j)]); forbid entries by making
    them very large.
    @raise Invalid_argument on empty or wrongly-sized input. *)
val solve : n:int -> int array -> int array * int

(** AP lower bound on the optimal directed tour (self-assignment
    forbidden); exact when the optimal cycle cover is a single cycle. *)
val ap_bound : Dtsp.t -> int
