(** Iterated 3-Opt for the directed TSP (via symmetrization), following
    the paper's appendix: randomized Greedy / Nearest-Neighbor / identity
    starts, 3-Opt to exhaustion, then double-bridge kicks with
    re-optimization, worsening kicks undone; best tour over all runs. *)

type config = {
  runs : int;  (** independent restarts (paper: 10) *)
  kick_factor : int;  (** iterations per run = kick_factor × n (paper: 2) *)
  max_kicks : int;  (** hard cap on iterations per run *)
  neighbors : int;  (** candidate-list width *)
  nn_choices : int;  (** randomization width of NN starts *)
  greedy_skip : float;  (** skip probability of greedy starts *)
  seed : int;
  deadline_ms : int option;  (** wall-clock budget per solve *)
  max_moves : int option;  (** improving-move budget per solve *)
  tour_repr : Tour_repr.kind;
      (** tour representation for the 3-Opt states (trajectory-neutral;
          [Auto] gates on instance size) *)
}

val default : config

type stats = {
  best_cost : int;  (** directed cost of the best tour *)
  runs_with_best : int;  (** how many runs ended at the best cost *)
  kicks : int;
  moves_2opt : int;
  moves_3opt : int;
  timed_out : bool;  (** the budget ran out before the search finished *)
}

(** Overwrite a search state's tour (positions recomputed, don't-look
    version bumped; alias of {!Three_opt.set_tour}). *)
val set_tour : Three_opt.state -> int array -> unit

(** Random double-bridge kick that never cuts a locked pair edge;
    returns the boundary cities to re-activate (empty if the kick
    degenerated and was skipped). *)
val double_bridge : Three_opt.state -> Random.State.t -> int list

(** [solve ?config ?rng ?budget d] returns the best directed tour found
    and solver statistics.  Deterministic for a fixed seed and unlimited
    budget; re-entrant — all randomness comes from [rng] (default: a
    state derived from [config.seed] and the instance) and no shared
    state is touched, so concurrent solves cannot interfere.  Instances
    with n ≤ 3 are enumerated exactly.  The budget (built from the
    config's [deadline_ms]/[max_moves] when not passed explicitly) is
    polled between moves, kicks and restarts; on exhaustion the best
    tour so far is returned with [timed_out] set — a valid tour comes
    back even under a zero budget.

    [initial], when given and of the right length, replaces the
    identity start of run 0 with a caller-supplied directed tour (must
    be a permutation of the cities) — the warm-start hook used by
    incremental re-alignment: re-optimizing a previous solution after a
    small profile drift converges in a few moves instead of a full
    search.  The warm tour is re-optimized by the same budgeted 3-Opt,
    so a warm solve is never weaker than its seed tour.

    [nbr_exec] (default sequential) parallelizes neighbor-list
    construction on the engine's domain pool; the lists — and hence the
    whole trajectory — are bit-identical at any job count. *)
val solve :
  ?config:config ->
  ?rng:Random.State.t ->
  ?budget:Ba_robust.Budget.t ->
  ?initial:int array ->
  ?nbr_exec:Ba_engine.Executor.t ->
  Dtsp.t ->
  int array * stats
