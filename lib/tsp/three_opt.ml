(** 3-Opt local search with neighbor lists and don't-look bits
    (Johnson–McGeoch [10]).

    Works on a symmetric instance produced by {!Sym.of_dtsp}.  A move
    removes up to three tour edges and reconnects the segments; the four
    pure-3-opt reconnection types plus classic 2-opt are searched
    first-improvement, with candidate added edges restricted to the
    k-nearest-neighbor lists.  Locked pair edges (weight −m) are never
    profitable to remove and forbidden pairs (weight inf) never profitable
    to add, so the alternating in/out structure of the symmetrized tour is
    preserved by construction (and re-checked by the caller).

    The tour lives behind {!Tour_repr}: flat position/city arrays
    (O(n) reversals) or the two-level √n-segment structure (O(√n)
    moves) — every search decision is made from absolute positions,
    which both representations report identically, so the trajectory
    is representation-independent (pinned by the differential
    property suite).

    Don't-look bits are version stamps rather than booleans: [version]
    counts tour mutations (every applied move, every [set_tour]) and
    [last_fail.(c)] records the version at which city [c]'s full
    candidate scan last came up empty.  [run] skips a popped city's
    scan exactly when [last_fail.(c) = version] — the tour has not
    changed since the scan failed, and [try_city] is side-effect-free
    on failure, so the skip is provably unobservable.  Bits-on and
    bits-off runs therefore produce identical tours, costs, and move
    counts; only [scans_skipped] differs. *)

type state = {
  s : Sym.t;
  nbr : int array array;  (** candidate lists, sorted by cost *)
  repr : Tour_repr.t;  (** the tour (flat arrays or two-level segments) *)
  in_queue : bool array;
  queue : int Queue.t;
  mutable moves_2opt : int;
  mutable moves_3opt : int;
  mutable version : int;  (** tour mutation counter *)
  last_fail : int array;  (** per city: version at last failed scan, −1 never *)
  mutable scans_skipped : int;  (** scans elided by the don't-look stamps *)
  dont_look : bool;
  (* y-side scratch of the 3-opt candidate scan: for each candidate y
     of the removed edge's head b, the quantities that do not depend on
     the other candidate x — computed once per scan instead of once per
     (x, y) pair; grown on demand to the neighbor-list width *)
  mutable scr_dby : int array;
  mutable scr_ry : int array;  (** position of y relative to the base cut *)
  mutable scr_ry1 : int array;  (** same minus one, cyclically *)
  mutable scr_sy : int array;  (** tour successor of y *)
  mutable scr_pry : int array;  (** tour predecessor of y *)
}

let nn st = st.s.Sym.nn
let d st a b = Sym.cost st.s a b
let city_at st p = Tour_repr.city_at st.repr p
let position st c = Tour_repr.pos st.repr c
let succ st c = Tour_repr.succ st.repr c
let pred st c = Tour_repr.pred st.repr c
let repr_kind st = Tour_repr.kind_of st.repr
let segments st = Tour_repr.segments st.repr
let rebalances st = Tour_repr.rebalances st.repr
let seg_splits st = Tour_repr.splits st.repr

(** [init s ~nbr ~tour] starts a search state from a tour (copied).
    [dont_look] (default on) enables the version-stamp scan skips —
    trajectory-neutral either way.  [repr] (default [Auto]) picks the
    tour representation — trajectory-neutral too, by the position
    contract of {!Tour_repr}.  [spans] feeds the two-level structure's
    rebalance spans. *)
let init ?(dont_look = true) ?(repr = Tour_repr.Auto) ?spans (s : Sym.t) ~nbr
    ~tour =
  let n = s.Sym.nn in
  if Array.length tour <> n then invalid_arg "Three_opt.init: wrong tour size";
  let seen = Array.make n false in
  Array.iter
    (fun c ->
      if c < 0 || c >= n || seen.(c) then
        invalid_arg "Three_opt.init: not a permutation"
      else seen.(c) <- true)
    tour;
  let repr = Tour_repr.make ?spans repr ~n_cities:s.Sym.n_cities tour in
  Ba_obs.Metrics.set_gauge Ba_obs.Metrics.Tsp_repr
    (match Tour_repr.kind_of repr with Tour_repr.Two_level -> 1 | _ -> 0);
  {
    s;
    nbr;
    repr;
    in_queue = Array.make n false;
    queue = Queue.create ();
    moves_2opt = 0;
    moves_3opt = 0;
    version = 0;
    last_fail = Array.make n (-1);
    scans_skipped = 0;
    dont_look;
    scr_dby = [||];
    scr_ry = [||];
    scr_ry1 = [||];
    scr_sy = [||];
    scr_pry = [||];
  }

let ensure_scratch st len =
  if Array.length st.scr_dby < len then begin
    st.scr_dby <- Array.make len 0;
    st.scr_ry <- Array.make len 0;
    st.scr_ry1 <- Array.make len 0;
    st.scr_sy <- Array.make len 0;
    st.scr_pry <- Array.make len 0
  end

(** Replace the tour wholesale (same cities, new order), e.g. for a
    perturbation restart.  Bumps [version] so stale failed-scan stamps
    can never suppress a needed rescan. *)
let set_tour st tour =
  let n = nn st in
  if Array.length tour <> n then
    invalid_arg "Three_opt.set_tour: wrong tour size";
  Tour_repr.set_tour st.repr tour;
  st.version <- st.version + 1

(** Mark a city to be re-examined. *)
let activate st c =
  if not st.in_queue.(c) then begin
    st.in_queue.(c) <- true;
    Queue.add c st.queue
  end

let activate_all st =
  for c = 0 to nn st - 1 do
    activate st c
  done

(** Reverse the cheaper side for a 2-opt move cutting after positions
    [pa] and [px] (removing edges (t[pa],t[pa+1]) and (t[px],t[px+1])).
    The side choice counts tour cells, so it is representation-
    independent. *)
let apply_2opt st ~pa ~px =
  let n = nn st in
  let len_fwd = (px - pa + n) mod n in
  (* reversing positions pa+1..px, or equivalently px+1..pa *)
  if len_fwd <= n - len_fwd then Tour_repr.reverse st.repr ((pa + 1) mod n) px
  else Tour_repr.reverse st.repr ((px + 1) mod n) pa;
  st.moves_2opt <- st.moves_2opt + 1;
  st.version <- st.version + 1

type reconnection = Tour_repr.reconnection = T3 | T4 | T5 | T6

(** Apply a pure 3-opt reconnection with cuts after positions [pi],
    [pi+jj], [pi+kk] (see DESIGN.md §6 for the segment algebra). *)
let apply_3opt st ~pi ~jj ~kk ty =
  Tour_repr.reconnect st.repr ~pi ~jj ~kk ty;
  st.moves_3opt <- st.moves_3opt + 1;
  st.version <- st.version + 1

(** Search one improving move around city [a]; apply it and return [true],
    or return [false] if none exists in the candidate neighborhood. *)
let try_city st a =
  let n = nn st in
  let found = ref false in
  let di = ref 0 in
  while (not !found) && !di < 2 do
    let forward = !di = 0 in
    incr di;
    (* the removed base edge, read as (a, b) with b following a in the
       chosen direction; in position terms the cut is after position pa *)
    let b = if forward then succ st a else pred st a in
    if not (Sym.is_locked st.s a b) then begin
      let dab = d st a b in
      (* ---- 2-opt scan: added edge (a, x) ---- *)
      let na = st.nbr.(a) in
      let i = ref 0 in
      while (not !found) && !i < Array.length na do
        let x = na.(!i) in
        incr i;
        let dax = d st a x in
        if dax >= dab then i := Array.length na (* sorted: no gain further on *)
        else if x <> b then begin
          let y = if forward then succ st x else pred st x in
          if y <> a then begin
            let gain = dab + d st x y - dax - d st b y in
            if gain > 0 then begin
              (* in forward reading, cuts are after a and after x;
                 in backward reading, after b' = pred a and after y *)
              (if forward then apply_2opt st ~pa:(position st a) ~px:(position st x)
               else apply_2opt st ~pa:(position st y) ~px:(position st b));
              activate st a;
              activate st b;
              activate st x;
              activate st y;
              found := true
            end
          end
        end
      done;
      (* ---- pure 3-opt scan (forward orientation only; every move is
              found from one of its removed edges read forward).

              Every non-base city a reconnection touches sits at
              position px±1 or py±1, i.e. it is the tour successor or
              predecessor of a candidate — so the scan never needs
              [city_at] (a binary search under the two-level
              representation), only the O(1) succ/pred links whose
              cache lines the [position] calls just pulled in. *)
      if (not !found) && forward then begin
        let pi = position st a in
        let limit = dab + (2 * st.s.Sym.real_max) in
        let na = st.nbr.(a) and nb = st.nbr.(b) in
        (* Hoist the y-side of the pair scan: dby, position and tour
           neighbors of each candidate y depend only on (b, pi), not on
           x, so compute them once per scan instead of once per pair.
           The prefix ends at the first dby ≥ limit, exactly where the
           inner loop used to break (nb is sorted). *)
        let nbl = Array.length nb in
        ensure_scratch st nbl;
        let dby_s = st.scr_dby
        and ry_s = st.scr_ry
        and ry1_s = st.scr_ry1
        and sy_s = st.scr_sy
        and pry_s = st.scr_pry in
        let ny = ref 0 in
        let stop = ref false in
        while (not !stop) && !ny < nbl do
          let y = nb.(!ny) in
          let dby = d st b y in
          if dby >= limit then stop := true
          else begin
            dby_s.(!ny) <- dby;
            let py = position st y in
            (* positions live in [0, n): conditional adds replace mods *)
            let ry = let r = py - pi in if r < 0 then r + n else r in
            ry_s.(!ny) <- ry;
            ry1_s.(!ny) <- (if ry = 0 then n - 1 else ry - 1);
            sy_s.(!ny) <- succ st y;
            pry_s.(!ny) <- pred st y;
            incr ny
          end
        done;
        let ny = !ny in
        (* Locked-edge pruning (sound, trajectory-identical): when every
           directed cost is ≥ 0, a reconnection whose removed edges are
           all locked-or-real (at least one locked) and whose added
           edges are all non-locked has gain = removed − added
           ≤ (dab + real_max − m) − 0 = dab − real_max − 2 < 0 whenever
           the base edge is real — so its evaluation can be skipped
           without ever computing the costs.  Every test is a parity
           check on cities the scan already loaded (locked ⇔ xor = 1,
           forbidden ⇔ even xor), so this holds on any tour, including
           the transiently non-alternating tours a double-bridge kick
           leaves behind (where re-adding a split locked pair IS
           profitable — those evaluations are kept).  On an intact
           alternating tour exactly one of T3–T6 survives per (x, y)
           parity combination, which is what makes the 144-pair scan
           cheap. *)
        let skip_locked = st.s.Sym.nonneg && dab <= st.s.Sym.real_max in
        let xi = ref 0 in
        while (not !found) && !xi < Array.length na do
          let x = na.(!xi) in
          incr xi;
          let dax = d st a x in
          if dax >= limit then xi := Array.length na
          else begin
            let px = position st x in
            let sx = succ st x and prx = pred st x in
            (* removed-edge flags for the x-side cuts: locked, and
               locked-or-real (odd xor = not forbidden) *)
            let cut_xs = Sym.is_locked st.s x sx in
            let cut_px = Sym.is_locked st.s prx x in
            let rok_xs = (x lxor sx) land 1 = 1 in
            let rok_px = (prx lxor x) land 1 = 1 in
            (* every reconnection adds (a, x): never skippable when
               that pair is locked (it may re-join a kicked-apart
               pair) *)
            let add_ax = Sym.is_locked st.s a x in
            let rx = let r = px - pi in if r < 0 then r + n else r in
            let rx1 = if rx = 0 then n - 1 else rx - 1 in
            let yi = ref 0 in
            while (not !found) && !yi < ny do
              let yk = !yi in
              incr yi;
              let y = nb.(yk) in
              let dby = dby_s.(yk) in
              begin
                let ry = ry_s.(yk) and ry1 = ry1_s.(yk) in
                let sy = sy_s.(yk) and pry = pry_s.(yk) in
                let cut_ys = Sym.is_locked st.s y sy in
                let cut_py = Sym.is_locked st.s pry y in
                let rok_ys = (y lxor sy) land 1 = 1 in
                let rok_py = (pry lxor y) land 1 = 1 in
                (* (b, y) is added by every reconnection *)
                let add_by = Sym.is_locked st.s b y in
                let addable = (not add_ax) && not add_by in
                (* T3: x = c at cut j, y = e at cut k.
                   added (a,c) (b,e) (d,f); d = succ x, f = succ y;
                   removed (x, succ x) and (y, succ y) *)
                (let jj = rx and kk = ry in
                 if
                   (not !found) && jj >= 1 && kk > jj && kk <= n - 1
                   && not
                        (skip_locked && (cut_xs || cut_ys)
                        && rok_xs && rok_ys && addable
                        && not (Sym.is_locked st.s sx sy))
                 then begin
                   let dd = sx and f = sy in
                   let gain =
                     dab + d st x dd + d st y f - dax - dby - d st dd f
                   in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T3;
                     List.iter (activate st) [ a; b; x; y; dd; f ];
                     found := true
                   end
                 end);
                (* T4: x = d (so cut j is just before x), y = e at cut k.
                   added (a,d) (e,b) (c,f); c = pred x, f = succ y;
                   removed (pred x, x) and (y, succ y) *)
                (let jj = rx1 and kk = ry in
                 if
                   (not !found) && jj >= 1 && kk > jj && kk <= n - 1
                   && not
                        (skip_locked && (cut_px || cut_ys)
                        && rok_px && rok_ys && addable
                        && not (Sym.is_locked st.s prx sy))
                 then begin
                   let c = prx and f = sy in
                   let gain = dab + d st c x + d st y f - dax - dby - d st c f in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T4;
                     List.iter (activate st) [ a; b; x; y; c; f ];
                     found := true
                   end
                 end);
                (* T5: x = d (cut j before x), y = f (cut k before y).
                   added (a,d) (e,c) (b,f); c = pred x, e = pred y;
                   removed (pred x, x) and (pred y, y) *)
                (let jj = rx1 and kk = ry1 in
                 if
                   (not !found) && jj >= 1 && kk > jj && kk <= n - 1
                   && not
                        (skip_locked && (cut_px || cut_py)
                        && rok_px && rok_py && addable
                        && not (Sym.is_locked st.s pry prx))
                 then begin
                   let c = prx and e = pry in
                   let gain = dab + d st c x + d st e y - dax - dby - d st e c in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T5;
                     List.iter (activate st) [ a; b; x; y; c; e ];
                     found := true
                   end
                 end);
                (* T6: x = e at cut k, y = d (cut j before y).
                   added (a,e) (d,b) (c,f); c = pred y, f = succ x;
                   removed (pred y, y) and (x, succ x) *)
                (let jj = ry1 and kk = rx in
                 if
                   (not !found) && jj >= 1 && kk > jj && kk <= n - 1
                   && not
                        (skip_locked && (cut_py || cut_xs)
                        && rok_py && rok_xs && addable
                        && not (Sym.is_locked st.s pry sx))
                 then begin
                   let c = pry and f = sx in
                   let gain = dab + d st c y + d st x f - dax - dby - d st c f in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T6;
                     List.iter (activate st) [ a; b; x; y; c; f ];
                     found := true
                   end
                 end)
              end
            done
          end
        done
      end
    end
  done;
  !found

(** Run to local optimality: process the active queue, repeatedly
    improving around each active city until its neighborhood is
    exhausted.  When a [budget] is given, every improving move spends one
    unit and the search stops at the first poll that reports exhaustion —
    the tour is then merely locally unconverged, never invalid. *)
let run ?budget st =
  let exhausted () =
    match budget with Some b -> Ba_robust.Budget.exhausted b | None -> false
  in
  let spend () =
    match budget with Some b -> Ba_robust.Budget.spend b | None -> ()
  in
  let m2_before = st.moves_2opt and m3_before = st.moves_3opt in
  let splits_before = seg_splits st and rebal_before = rebalances st in
  let t0 = Ba_obs.Mono.now_ns () in
  (try
     while not (Queue.is_empty st.queue) do
       if exhausted () then raise_notrace Exit;
       let a = Queue.pop st.queue in
       st.in_queue.(a) <- false;
       if st.dont_look && st.last_fail.(a) = st.version then
         (* a's scan already failed against this exact tour; rescanning
            could not find a move or mutate anything — skip it *)
         st.scans_skipped <- st.scans_skipped + 1
       else begin
         while try_city st a do
           spend ();
           if exhausted () then raise_notrace Exit
         done;
         (* reached only when the scan returned false (a budget stop
            raises out of the loop), so the stamp is sound *)
         st.last_fail.(a) <- st.version
       end
     done
   with Exit -> ());
  (* observability: a handful of atomic adds per run call, never per
     move; the per-representation pair feeds the moves_per_s split in
     bench --json *)
  let dt_ns = Int64.to_int (Int64.sub (Ba_obs.Mono.now_ns ()) t0) in
  let dmoves = st.moves_2opt - m2_before + (st.moves_3opt - m3_before) in
  Ba_obs.Metrics.(
    incr ~n:(st.moves_2opt - m2_before) Moves_2opt;
    incr ~n:(st.moves_3opt - m3_before) Moves_3opt;
    match Tour_repr.kind_of st.repr with
    | Tour_repr.Two_level ->
        incr ~n:dmoves Moves_two_level_repr;
        incr ~n:dt_ns Run_ns_two_level_repr;
        incr ~n:(seg_splits st - splits_before) Segment_splits;
        incr ~n:(rebalances st - rebal_before) Segment_rebalances;
        set_gauge Tsp_segments (segments st)
    | _ ->
        incr ~n:dmoves Moves_array_repr;
        incr ~n:dt_ns Run_ns_array_repr)

(** Current tour (copied). *)
let tour st = Tour_repr.to_array st.repr

(** Current symmetric tour cost. *)
let cost st = Sym.tour_cost st.s (tour st)
