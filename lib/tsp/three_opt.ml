(** 3-Opt local search with neighbor lists and don't-look bits
    (Johnson–McGeoch [10]).

    Works on a symmetric instance produced by {!Sym.of_dtsp}.  A move
    removes up to three tour edges and reconnects the segments; the four
    pure-3-opt reconnection types plus classic 2-opt are searched
    first-improvement, with candidate added edges restricted to the
    k-nearest-neighbor lists.  Locked pair edges (weight −m) are never
    profitable to remove and forbidden pairs (weight inf) never profitable
    to add, so the alternating in/out structure of the symmetrized tour is
    preserved by construction (and re-checked by the caller).

    Tour representation: [tour] maps position → city, [pos] city →
    position; segment reversals keep both in sync.

    Don't-look bits are version stamps rather than booleans: [version]
    counts tour mutations (every applied move, every [set_tour]) and
    [last_fail.(c)] records the version at which city [c]'s full
    candidate scan last came up empty.  [run] skips a popped city's
    scan exactly when [last_fail.(c) = version] — the tour has not
    changed since the scan failed, and [try_city] is side-effect-free
    on failure, so the skip is provably unobservable.  Bits-on and
    bits-off runs therefore produce identical tours, costs, and move
    counts; only [scans_skipped] differs. *)

type state = {
  s : Sym.t;
  nbr : int array array;  (** candidate lists, sorted by cost *)
  tour : int array;
  pos : int array;
  in_queue : bool array;
  queue : int Queue.t;
  mutable moves_2opt : int;
  mutable moves_3opt : int;
  mutable version : int;  (** tour mutation counter *)
  last_fail : int array;  (** per city: version at last failed scan, −1 never *)
  mutable scans_skipped : int;  (** scans elided by the don't-look stamps *)
  dont_look : bool;
}

let nn st = st.s.Sym.nn
let d st a b = Sym.cost st.s a b
let city_at st p = st.tour.(p)
let succ st c = st.tour.((st.pos.(c) + 1) mod nn st)
let pred st c = st.tour.((st.pos.(c) - 1 + nn st) mod nn st)

(** [init s ~nbr ~tour] starts a search state from a tour (copied).
    [dont_look] (default on) enables the version-stamp scan skips —
    trajectory-neutral either way. *)
let init ?(dont_look = true) (s : Sym.t) ~nbr ~tour =
  let n = s.Sym.nn in
  if Array.length tour <> n then invalid_arg "Three_opt.init: wrong tour size";
  let pos = Array.make n (-1) in
  Array.iteri (fun i c -> pos.(c) <- i) tour;
  Array.iter (fun p -> if p < 0 then invalid_arg "Three_opt.init: not a permutation") pos;
  {
    s;
    nbr;
    tour = Array.copy tour;
    pos;
    in_queue = Array.make n false;
    queue = Queue.create ();
    moves_2opt = 0;
    moves_3opt = 0;
    version = 0;
    last_fail = Array.make n (-1);
    scans_skipped = 0;
    dont_look;
  }

(** Replace the tour wholesale (same cities, new order), e.g. for a
    perturbation restart.  Bumps [version] so stale failed-scan stamps
    can never suppress a needed rescan. *)
let set_tour st tour =
  let n = nn st in
  if Array.length tour <> n then
    invalid_arg "Three_opt.set_tour: wrong tour size";
  Array.blit tour 0 st.tour 0 n;
  Array.iteri (fun i c -> st.pos.(c) <- i) st.tour;
  st.version <- st.version + 1

(** Mark a city to be re-examined. *)
let activate st c =
  if not st.in_queue.(c) then begin
    st.in_queue.(c) <- true;
    Queue.add c st.queue
  end

let activate_all st =
  for c = 0 to nn st - 1 do
    activate st c
  done

(** Reverse the cyclic position segment [l..r] (inclusive). *)
let reverse_seg st l r =
  let n = nn st in
  let len = ((r - l + n) mod n) + 1 in
  let i = ref l and j = ref r in
  for _ = 1 to len / 2 do
    let ci = st.tour.(!i) and cj = st.tour.(!j) in
    st.tour.(!i) <- cj;
    st.tour.(!j) <- ci;
    st.pos.(cj) <- !i;
    st.pos.(ci) <- !j;
    i := (!i + 1) mod n;
    j := (!j - 1 + n) mod n
  done

(** Reverse the cheaper side for a 2-opt move cutting after positions
    [pa] and [px] (removing edges (t[pa],t[pa+1]) and (t[px],t[px+1])). *)
let apply_2opt st ~pa ~px =
  let n = nn st in
  let len_fwd = (px - pa + n) mod n in
  (* reversing positions pa+1..px, or equivalently px+1..pa *)
  if len_fwd <= n - len_fwd then reverse_seg st ((pa + 1) mod n) px
  else reverse_seg st ((px + 1) mod n) pa;
  st.moves_2opt <- st.moves_2opt + 1;
  st.version <- st.version + 1

type reconnection = T3 | T4 | T5 | T6

(** Apply a pure 3-opt reconnection with cuts after positions [pi],
    [pi+jj], [pi+kk] (see DESIGN.md §6 for the segment algebra). *)
let apply_3opt st ~pi ~jj ~kk ty =
  let n = nn st in
  let pj = (pi + jj) mod n and pk = (pi + kk) mod n in
  let p1 = (pi + 1) mod n and pj1 = (pj + 1) mod n in
  (match ty with
  | T3 ->
      reverse_seg st p1 pj;
      reverse_seg st pj1 pk
  | T4 ->
      reverse_seg st p1 pj;
      reverse_seg st pj1 pk;
      reverse_seg st p1 pk
  | T5 ->
      reverse_seg st pj1 pk;
      reverse_seg st p1 pk
  | T6 ->
      reverse_seg st p1 pj;
      reverse_seg st p1 pk);
  st.moves_3opt <- st.moves_3opt + 1;
  st.version <- st.version + 1

(** Search one improving move around city [a]; apply it and return [true],
    or return [false] if none exists in the candidate neighborhood. *)
let try_city st a =
  let n = nn st in
  let found = ref false in
  let dirs = [| true; false |] in
  let di = ref 0 in
  while (not !found) && !di < 2 do
    let forward = dirs.(!di) in
    incr di;
    (* the removed base edge, read as (a, b) with b following a in the
       chosen direction; in position terms the cut is after position pa *)
    let b = if forward then succ st a else pred st a in
    if not (Sym.is_locked st.s a b) then begin
      let dab = d st a b in
      (* ---- 2-opt scan: added edge (a, x) ---- *)
      let na = st.nbr.(a) in
      let i = ref 0 in
      while (not !found) && !i < Array.length na do
        let x = na.(!i) in
        incr i;
        let dax = d st a x in
        if dax >= dab then i := Array.length na (* sorted: no gain further on *)
        else if x <> b then begin
          let y = if forward then succ st x else pred st x in
          if y <> a then begin
            let gain = dab + d st x y - dax - d st b y in
            if gain > 0 then begin
              (* in forward reading, cuts are after a and after x;
                 in backward reading, after b' = pred a and after y *)
              (if forward then apply_2opt st ~pa:st.pos.(a) ~px:st.pos.(x)
               else apply_2opt st ~pa:st.pos.(y) ~px:st.pos.(b));
              activate st a;
              activate st b;
              activate st x;
              activate st y;
              found := true
            end
          end
        end
      done;
      (* ---- pure 3-opt scan (forward orientation only; every move is
              found from one of its removed edges read forward) ---- *)
      if (not !found) && forward then begin
        let pi = st.pos.(a) in
        let limit = dab + (2 * st.s.Sym.real_max) in
        let na = st.nbr.(a) and nb = st.nbr.(b) in
        let xi = ref 0 in
        while (not !found) && !xi < Array.length na do
          let x = na.(!xi) in
          incr xi;
          let dax = d st a x in
          if dax >= limit then xi := Array.length na
          else begin
            let px = st.pos.(x) in
            let yi = ref 0 in
            while (not !found) && !yi < Array.length nb do
              let y = nb.(!yi) in
              incr yi;
              let dby = d st b y in
              if dby >= limit then yi := Array.length nb
              else begin
                let py = st.pos.(y) in
                (* helper: relative position from pi *)
                let rel p = (p - pi + n) mod n in
                let at p = city_at st (p mod n) in
                (* T3: x = c at cut j, y = e at cut k.
                   added (a,c) (b,e) (d,f) *)
                (let jj = rel px and kk = rel py in
                 if (not !found) && jj >= 1 && kk > jj && kk <= n - 1 then begin
                   let dd = at (pi + jj + 1) and f = at (pi + kk + 1) in
                   let gain =
                     dab + d st x dd + d st y f - dax - dby - d st dd f
                   in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T3;
                     List.iter (activate st) [ a; b; x; y; dd; f ];
                     found := true
                   end
                 end);
                (* T4: x = d (so cut j is just before x), y = e at cut k.
                   added (a,d) (e,b) (c,f) *)
                (let jj = (rel px - 1 + n) mod n and kk = rel py in
                 if (not !found) && jj >= 1 && kk > jj && kk <= n - 1 then begin
                   let c = at (pi + jj) and f = at (pi + kk + 1) in
                   let gain = dab + d st c x + d st y f - dax - dby - d st c f in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T4;
                     List.iter (activate st) [ a; b; x; y; c; f ];
                     found := true
                   end
                 end);
                (* T5: x = d (cut j before x), y = f (cut k before y).
                   added (a,d) (e,c) (b,f) *)
                (let jj = (rel px - 1 + n) mod n and kk = (rel py - 1 + n) mod n in
                 if (not !found) && jj >= 1 && kk > jj && kk <= n - 1 then begin
                   let c = at (pi + jj) and e = at (pi + kk) in
                   let gain = dab + d st c x + d st e y - dax - dby - d st e c in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T5;
                     List.iter (activate st) [ a; b; x; y; c; e ];
                     found := true
                   end
                 end);
                (* T6: x = e at cut k, y = d (cut j before y).
                   added (a,e) (d,b) (c,f) *)
                (let jj = (rel py - 1 + n) mod n and kk = rel px in
                 if (not !found) && jj >= 1 && kk > jj && kk <= n - 1 then begin
                   let c = at (pi + jj) and f = at (pi + kk + 1) in
                   let gain = dab + d st c y + d st x f - dax - dby - d st c f in
                   if gain > 0 then begin
                     apply_3opt st ~pi ~jj ~kk T6;
                     List.iter (activate st) [ a; b; x; y; c; f ];
                     found := true
                   end
                 end)
              end
            done
          end
        done
      end
    end
  done;
  !found

(** Run to local optimality: process the active queue, repeatedly
    improving around each active city until its neighborhood is
    exhausted.  When a [budget] is given, every improving move spends one
    unit and the search stops at the first poll that reports exhaustion —
    the tour is then merely locally unconverged, never invalid. *)
let run ?budget st =
  let exhausted () =
    match budget with Some b -> Ba_robust.Budget.exhausted b | None -> false
  in
  let spend () =
    match budget with Some b -> Ba_robust.Budget.spend b | None -> ()
  in
  let m2_before = st.moves_2opt and m3_before = st.moves_3opt in
  (try
     while not (Queue.is_empty st.queue) do
       if exhausted () then raise_notrace Exit;
       let a = Queue.pop st.queue in
       st.in_queue.(a) <- false;
       if st.dont_look && st.last_fail.(a) = st.version then
         (* a's scan already failed against this exact tour; rescanning
            could not find a move or mutate anything — skip it *)
         st.scans_skipped <- st.scans_skipped + 1
       else begin
         while try_city st a do
           spend ();
           if exhausted () then raise_notrace Exit
         done;
         (* reached only when the scan returned false (a budget stop
            raises out of the loop), so the stamp is sound *)
         st.last_fail.(a) <- st.version
       end
     done
   with Exit -> ());
  (* observability: one atomic add per run call, never per move *)
  Ba_obs.Metrics.incr ~n:(st.moves_2opt - m2_before) Ba_obs.Metrics.Moves_2opt;
  Ba_obs.Metrics.incr ~n:(st.moves_3opt - m3_before) Ba_obs.Metrics.Moves_3opt

(** Current tour (copied). *)
let tour st = Array.copy st.tour

(** Current symmetric tour cost. *)
let cost st = Sym.tour_cost st.s st.tour
