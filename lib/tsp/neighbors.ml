(** k-nearest-neighbor candidate lists for local search.

    Only finite, non-locked edges are useful candidates: locked pair edges
    are always in the tour already and forbidden pairs can never improve a
    tour.  Lists are sorted by increasing cost so searches can stop
    early. *)

(** [of_sym s ~k] builds, for every symmetric city, its up-to-[k]
    cheapest candidate partners (finite cost, not the locked partner). *)
let of_sym (s : Sym.t) ~k =
  let nn = s.Sym.nn in
  Array.init nn (fun a ->
      let cand = ref [] in
      for b = 0 to nn - 1 do
        if b <> a && (not (Sym.is_locked s a b)) && s.Sym.cost.(a).(b) < s.Sym.inf
        then cand := b :: !cand
      done;
      let arr = Array.of_list !cand in
      Array.sort (fun x y -> compare s.Sym.cost.(a).(x) s.Sym.cost.(a).(y)) arr;
      if Array.length arr <= k then arr else Array.sub arr 0 k)
