(** k-nearest-neighbor candidate lists for local search.

    Only finite, non-locked edges are useful candidates: locked pair edges
    are always in the tour already and forbidden pairs can never improve a
    tour.  Lists are sorted by increasing cost so searches can stop
    early.

    The candidate set is known from the symmetrization structure alone —
    an out-city's partners are exactly the other cities' in-cities and
    vice versa — so the lists are built from the sparse directed
    instance without scanning a materialized 2n×2n matrix.  Two
    selection algorithms coexist (docs/PERFORMANCE.md):

    - [Exact] reproduces the historical dense scan bit-for-bit,
      including its heapsort tie order, with one O(n) scratch row and an
      O(n log n) full sort per city — O(n² log n) total.  It is the
      identity anchor for every committed small-instance trajectory.
    - [Select] merges each city's sorted explicit deviations with its
      default-cost tail directly, emitting the k cheapest partners under
      the canonical order (cost, partner id) — O(n log n + n·k + E)
      total, independent of n per row once the shared streams are
      built.  The result is the {e unique} canonical k-NN list, so it is
      checkable against any correct oracle, but its tie order differs
      from the dense scan's.

    [Auto] (the default) keeps [Exact] for instances up to
    {!exact_threshold} directed cities — every committed golden
    trajectory lives far below it — and switches to [Select] above,
    where bit-identity with the dense era is explicitly relaxed
    (results/solver_bench.json carries the re-baselined trajectory).

    Row construction is embarrassingly parallel: [exec] fans the cities
    out over contiguous chunks on the engine's domain pool and merges
    the slices in index order, so the lists are bit-identical at any job
    count. *)

module Executor = Ba_engine.Executor

type mode = Auto | Exact | Select

(** Largest directed-instance size (cities, dummy included) the [Auto]
    mode still serves with the bit-exact dense tie order. *)
let exact_threshold = 512

(* deterministic chunked fan-out: compute [lo, hi) slices of the result
   on the executor, merge in index order — bit-identical at any job
   count because each city's list is a pure function of the instance *)
let chunked exec nn compute =
  match exec with
  | Executor.Seq -> compute 0 nn
  | _ ->
      let chunks = min nn (max 1 (Executor.jobs exec * 4)) in
      let size = (nn + chunks - 1) / chunks in
      let slices =
        Executor.init exec chunks (fun c ->
            let lo = c * size in
            let hi = min nn (lo + size) in
            if lo >= hi then [||] else compute lo hi)
      in
      Array.concat (Array.to_list slices)

(* ------------------------------------------------------------------ *)
(* Exact: the dense scan's algorithm (and tie order) on sparse rows     *)

let exact (s : Sym.t) ~k ~exec =
  let d = s.Sym.dir in
  let n = s.Sym.n_cities in
  let nn = s.Sym.nn in
  (* partner count is n−1; a k beyond it (or below 0) clamps, so both
     the uniform shortcut and the sort path return the same short list *)
  let k = max 0 (min k (n - 1)) in
  (* transpose of the explicit entries, for O(deg) column fills *)
  let tcols = Array.make n [] in
  for i = n - 1 downto 0 do
    Array.iteri
      (fun kk c -> tcols.(c) <- (i, d.Dtsp.row_costs.(i).(kk)) :: tcols.(c))
      d.Dtsp.row_cols.(i)
  done;
  (* [Array.sort]'s heapsort consults nothing but comparator results, so
     on a row whose candidates all share one cost (every comparison
     returns 0) it applies a permutation that depends only on the array
     length.  Compute that permutation once and read uniform rows'
     lists off it in O(k) instead of sorting each. *)
  let tmpl = Array.init (n - 1) Fun.id in
  Array.sort (fun _ _ -> 0) tmpl;
  (* an in-city's candidate costs are the OTHER rows' defaults, so an
     explicit-free column is only uniform when all defaults agree *)
  let shared_default =
    Array.for_all (fun v -> v = d.Dtsp.row_default.(0)) d.Dtsp.row_default
  in
  let compute lo hi =
    let row = Array.make n 0 in
    Array.init (hi - lo) (fun off ->
        let a = lo + off in
        let i = a asr 1 in
        let uniform =
          if a land 1 = 1 then
            (* out-city: partners are in-cities, costs = directed row i *)
            match d.Dtsp.row_cols.(i) with
            | [||] -> true
            | [| c |] when c = i -> true
            | _ ->
                Dtsp.blit_row d i row;
                false
          else begin
            (* in-city: partners are out-cities, costs = directed column i *)
            match tcols.(i) with
            | [] when shared_default -> true
            | [ (r, _) ] when shared_default && r = i -> true
            | deviations ->
                Array.blit d.Dtsp.row_default 0 row 0 n;
                List.iter (fun (r, v) -> row.(r) <- v) deviations;
                false
          end
        in
        (* partners in descending city order — the order the dense 0..nn-1
           prepend scan produced — so sort tie-breaking is unchanged *)
        let arr = Array.make (n - 1) 0 in
        let idx = ref 0 in
        let tag = 1 - (a land 1) in
        for c = n - 1 downto 0 do
          if c <> i then begin
            arr.(!idx) <- (2 * c) + tag;
            incr idx
          end
        done;
        if uniform then Array.init k (fun p -> arr.(tmpl.(p)))
        else begin
          Array.sort (fun x y -> compare row.(x asr 1) row.(y asr 1)) arr;
          if Array.length arr <= k then arr else Array.sub arr 0 k
        end)
  in
  chunked exec nn compute

(* ------------------------------------------------------------------ *)
(* Select: canonical k-cheapest by merging sorted deviation streams     *)
(* with the default-cost tail — O(k + deg) per city after shared        *)
(* O(n log n + E log deg) stream preparation                            *)

let select (s : Sym.t) ~k ~exec =
  let d = s.Sym.dir in
  let n = s.Sym.n_cities in
  let nn = s.Sym.nn in
  let k = max 0 (min k (n - 1)) in
  if k = 0 then Array.make nn [||]
  else begin
    (* out-city streams: per row, the explicit off-diagonal (cost, col)
       deviations sorted by (cost, col) *)
    let out_dev =
      Array.init n (fun i ->
          let cols = d.Dtsp.row_cols.(i) and costs = d.Dtsp.row_costs.(i) in
          let keep = ref [] in
          for kk = Array.length cols - 1 downto 0 do
            if cols.(kk) <> i then keep := (costs.(kk), cols.(kk)) :: !keep
          done;
          let a = Array.of_list !keep in
          Array.sort compare a;
          a)
    in
    (* in-city streams: per column, the explicit off-diagonal (cost, row)
       entries sorted by (cost, row) *)
    let tmp = Array.make n [] in
    for i = n - 1 downto 0 do
      Array.iteri
        (fun kk c ->
          if c <> i then
            tmp.(c) <- (d.Dtsp.row_costs.(i).(kk), i) :: tmp.(c))
        d.Dtsp.row_cols.(i)
    done;
    let in_dev =
      Array.init n (fun c ->
          let a = Array.of_list tmp.(c) in
          Array.sort compare a;
          a)
    in
    (* an in-city's default tail is the other rows' defaults: pre-sort
       the rows once by (default, row) — ascending row is ascending
       partner id, so this IS the canonical tail order *)
    let ord = Array.init n Fun.id in
    Array.sort
      (fun r r' ->
        compare (d.Dtsp.row_default.(r), r) (d.Dtsp.row_default.(r'), r'))
      ord;
    let compute lo hi =
      (* per-chunk scratch: marks are stamped with the city id, so the
         array never needs clearing between cities *)
      let mark = Array.make n (-1) in
      Array.init (hi - lo) (fun off ->
          let a = lo + off in
          let i = a asr 1 in
          let res = Array.make k 0 in
          if a land 1 = 1 then begin
            (* out-city: row i; tail = implicit columns, ascending *)
            let dev = out_dev.(i) in
            let cols = d.Dtsp.row_cols.(i) in
            let ncols = Array.length cols in
            let default = d.Dtsp.row_default.(i) in
            let nd = Array.length dev in
            let ei = ref 0 and ci = ref 0 and pi = ref 0 in
            let advance () =
              let stop = ref false in
              while not !stop do
                if !ci >= n then stop := true
                else if !ci = i then incr ci
                else begin
                  while !pi < ncols && cols.(!pi) < !ci do
                    incr pi
                  done;
                  if !pi < ncols && cols.(!pi) = !ci then incr ci
                  else stop := true
                end
              done
            in
            advance ();
            for f = 0 to k - 1 do
              let explicit =
                !ei < nd
                && (!ci >= n
                   ||
                   let c, col = dev.(!ei) in
                   c < default || (c = default && col < !ci))
              in
              if explicit then begin
                res.(f) <- 2 * snd dev.(!ei);
                incr ei
              end
              else begin
                res.(f) <- 2 * !ci;
                incr ci;
                advance ()
              end
            done
          end
          else begin
            (* in-city: column i; tail = other rows in [ord] order *)
            let dev = in_dev.(i) in
            let nd = Array.length dev in
            let stamp = a in
            Array.iter (fun (_, r) -> mark.(r) <- stamp) dev;
            mark.(i) <- stamp;
            let ei = ref 0 and oi = ref 0 in
            let advance () =
              while !oi < n && mark.(ord.(!oi)) = stamp do
                incr oi
              done
            in
            advance ();
            for f = 0 to k - 1 do
              let explicit =
                !ei < nd
                && (!oi >= n
                   ||
                   let c, r = dev.(!ei) in
                   let r' = ord.(!oi) in
                   let c' = d.Dtsp.row_default.(r') in
                   c < c' || (c = c' && r < r'))
              in
              if explicit then begin
                res.(f) <- (2 * snd dev.(!ei)) + 1;
                incr ei
              end
              else begin
                res.(f) <- (2 * ord.(!oi)) + 1;
                incr oi;
                advance ()
              end
            done
          end;
          res)
    in
    chunked exec nn compute
  end

(* ------------------------------------------------------------------ *)

(** [of_sym s ~k] builds, for every symmetric city, its up-to-[k]
    cheapest candidate partners (finite cost, not the locked partner).
    [mode] picks the selection algorithm ([Auto]: [Exact] up to
    {!exact_threshold} directed cities, [Select] above); [exec]
    parallelizes row construction (default sequential) — the result
    never depends on the job count. *)
let of_sym ?(mode = Auto) ?(exec = Executor.Seq) (s : Sym.t) ~k =
  let use_select =
    match mode with
    | Exact -> false
    | Select -> true
    | Auto -> s.Sym.n_cities > exact_threshold
  in
  if use_select then select s ~k ~exec else exact s ~k ~exec
