(** k-nearest-neighbor candidate lists for local search.

    Only finite, non-locked edges are useful candidates: locked pair edges
    are always in the tour already and forbidden pairs can never improve a
    tour.  Lists are sorted by increasing cost so searches can stop
    early.

    The candidate set is known from the symmetrization structure alone —
    an out-city's partners are exactly the other cities' in-cities and
    vice versa — so the lists are built from the sparse directed
    instance with one O(n) scratch row per city instead of scanning a
    materialized 2n×2n matrix.  Bit-identity caveat: most candidates of
    a row share the row's default cost, so the k cheapest are only
    defined up to tie order; we therefore enumerate partners in exactly
    the order the dense scan produced (descending city index) and use
    the same [Array.sort] comparator, which makes the resulting lists —
    and hence the whole search trajectory — identical to the dense
    implementation's (docs/PERFORMANCE.md). *)

(** [of_sym s ~k] builds, for every symmetric city, its up-to-[k]
    cheapest candidate partners (finite cost, not the locked partner). *)
let of_sym (s : Sym.t) ~k =
  let d = s.Sym.dir in
  let n = s.Sym.n_cities in
  let nn = s.Sym.nn in
  (* transpose of the explicit entries, for O(deg) column fills *)
  let tcols = Array.make n [] in
  for i = n - 1 downto 0 do
    Array.iteri
      (fun kk c -> tcols.(c) <- (i, d.Dtsp.row_costs.(i).(kk)) :: tcols.(c))
      d.Dtsp.row_cols.(i)
  done;
  let row = Array.make n 0 in
  (* [Array.sort]'s heapsort consults nothing but comparator results, so
     on a row whose candidates all share one cost (every comparison
     returns 0) it applies a permutation that depends only on the array
     length.  Compute that permutation once and read uniform rows'
     lists off it in O(k) instead of sorting each. *)
  let tmpl = Array.init (n - 1) Fun.id in
  Array.sort (fun _ _ -> 0) tmpl;
  (* an in-city's candidate costs are the OTHER rows' defaults, so an
     explicit-free column is only uniform when all defaults agree *)
  let shared_default =
    Array.for_all (fun v -> v = d.Dtsp.row_default.(0)) d.Dtsp.row_default
  in
  let result = Array.make nn [||] in
  for a = 0 to nn - 1 do
    let i = a asr 1 in
    let uniform =
      if a land 1 = 1 then
        (* out-city: partners are in-cities, costs = directed row i *)
        match d.Dtsp.row_cols.(i) with
        | [||] -> true
        | [| c |] when c = i -> true
        | _ ->
            Dtsp.blit_row d i row;
            false
      else begin
        (* in-city: partners are out-cities, costs = directed column i *)
        match tcols.(i) with
        | [] when shared_default -> true
        | [ (r, _) ] when shared_default && r = i -> true
        | deviations ->
            Array.blit d.Dtsp.row_default 0 row 0 n;
            List.iter (fun (r, v) -> row.(r) <- v) deviations;
            false
      end
    in
    (* partners in descending city order — the order the dense 0..nn-1
       prepend scan produced — so sort tie-breaking is unchanged *)
    let arr = Array.make (n - 1) 0 in
    let idx = ref 0 in
    let tag = 1 - (a land 1) in
    for c = n - 1 downto 0 do
      if c <> i then begin
        arr.(!idx) <- (2 * c) + tag;
        incr idx
      end
    done;
    result.(a) <-
      (if uniform then
         Array.init (min k (n - 1)) (fun p -> arr.(tmpl.(p)))
       else begin
         Array.sort (fun x y -> compare row.(x asr 1) row.(y asr 1)) arr;
         if Array.length arr <= k then arr else Array.sub arr 0 k
       end)
  done;
  result
