(** Two-level doubly-linked tour: ~√n segments with orientation bits, a
    segment-order array and per-city (segment, offset) handles, so
    [pos]/[succ]/[pred] are O(1) and a cyclic range reversal is O(√n)
    amortized (splits at the range boundaries, run reversal by order
    flip + orientation-bit toggles, periodic rebuilds).  See DESIGN.md
    §6.

    Absolute tour positions are preserved {e exactly} — after any
    sequence of [reverse] calls, [pos]/[city_at] agree with the flat
    [tour]/[pos] arrays replaying the same calls — which is what keeps
    the 3-Opt trajectory move-for-move identical across
    representations. *)

type t

(** [create ?spans ~tour n] builds a balanced structure from a tour
    (position → city; copied).  [spans] (default disabled) receives one
    [two_level.rebalance] span per rebuild.
    @raise Invalid_argument on a wrong-length tour. *)
val create : ?spans:Ba_obs.Span.buf -> tour:int array -> int -> t

val n : t -> int

(** Current segment count (grows with splits, shrinks on rebuilds). *)
val segments : t -> int

(** Total boundary splits performed. *)
val splits : t -> int

(** Total O(n) rebuilds performed. *)
val rebalances : t -> int

(** Position of a city; O(1). *)
val pos : t -> int -> int

(** City at a position; O(log √n). *)
val city_at : t -> int -> int

(** Tour successor / predecessor of a city; O(1). *)
val succ : t -> int -> int

val pred : t -> int -> int

(** [reverse t l r] reverses the cyclic absolute position range [l..r]
    (inclusive); O(√n) amortized. *)
val reverse : t -> int -> int -> unit

(** Replace the tour wholesale (O(n) rebuild). *)
val set_tour : t -> int array -> unit

(** Extract the tour as a position → city array; O(n). *)
val to_array : t -> int array
