(** DTSP → symmetric TSP via the standard 2-city transformation: city
    [i] becomes in-city [2i] and out-city [2i+1] joined by a locked edge
    of weight [−m]; directed edge i → j becomes (out i, in j); all other
    pairs are forbidden ([inf]).  Improving local-search moves can
    neither drop a locked edge nor add a forbidden one.

    The symmetric matrix is implicit: [cost] computes any entry in O(1)
    from city parity plus the sparse directed lookup, so the instance
    stays O(n + E) in memory. *)

type t = {
  n_cities : int;  (** directed cities *)
  nn : int;  (** symmetric cities = 2 × n_cities *)
  dir : Dtsp.t;  (** the sparse directed instance (shared, not copied) *)
  m : int;  (** locked-edge weight magnitude *)
  inf : int;  (** forbidden-pair weight *)
  real_max : int;  (** largest directed cost; bounds improving gains *)
  nonneg : bool;  (** every directed cost is ≥ 0 (true for all registered
                      objectives); licenses the locked-edge scan skips *)
  offset : int;  (** directed cost = symmetric cost + offset (= n·m) *)
}

val in_city : int -> int
val out_city : int -> int

(** Build the symmetric instance — O(1), no matrix is materialized. *)
val of_dtsp : Dtsp.t -> t

(** Symmetric weight of a pair: [−m] if locked, [inf] if same parity
    (incl. the diagonal), the directed cost otherwise. *)
val cost : t -> int -> int -> int

(** Is (a, b) an in/out pair edge? *)
val is_locked : t -> int -> int -> bool

(** Dense row-major copy ([a*nn + b]) for dense kernels (Held–Karp). *)
val to_flat : t -> int array

(** Directed tour → symmetric tour [in t0; out t0; in t1; …]. *)
val expand : t -> int array -> int array

(** Cost of a symmetric cycle. *)
val tour_cost : t -> int array -> int

(** Are all in/out pairs adjacent (all locked edges intact)? *)
val check_alternating : t -> int array -> bool

(** Recover the directed tour from a symmetric tour with intact locked
    edges, orientation normalized.
    @raise Invalid_argument if a locked edge was dropped. *)
val extract : t -> int array -> int array
