(** Held–Karp lower bound via 1-tree Lagrangian relaxation with Polyak
    subgradient steps — the paper's source of provable near-optimality
    certificates. *)

type config = {
  iterations : int;  (** max subgradient iterations *)
  lambda0 : float;  (** initial step multiplier *)
  patience : int;  (** iterations without improvement before halving λ *)
}

val default : config

(** Minimum 1-tree under π-modified weights: MST over cities 1..n−1 plus
    the two cheapest edges at city 0; the cost matrix is flat row-major
    n×n.  Returns (modified weight, degrees). *)
val one_tree : n:int -> int array -> float array -> float * int array

(** Held–Karp bound for a symmetric instance given as a flat row-major
    n×n matrix, as a float.  [upper_bound] is any known tour cost
    (scales the steps; reaching it certifies optimality and stops
    early).  @raise Invalid_argument if [n < 2] or the size is wrong. *)
val bound : ?config:config -> n:int -> int array -> upper_bound:int -> float

(** Integer Held–Karp lower bound on the optimal directed tour: bound of
    the symmetrized instance, shifted back and rounded up. *)
val directed_bound : ?config:config -> Dtsp.t -> upper_bound:int -> int
