(** Exact directed TSP by Held–Karp dynamic programming, O(n²·2ⁿ).

    Practical up to n ≈ 16–18 cities.  Used by the test suite to certify
    that the heuristic solver and the lower bounds bracket the true
    optimum, and by the appendix experiment to measure AP-bound gaps on
    small procedures. *)

(** Largest instance [solve] accepts. *)
let max_n = 18

(** [solve d] returns an optimal directed tour (starting at city 0) and
    its cost.  @raise Invalid_argument if [d.n > max_n]. *)
let solve (d : Dtsp.t) : int array * int =
  let n = d.Dtsp.n in
  if n > max_n then invalid_arg "Exact.solve: instance too large";
  if n = 2 then begin
    let t = [| 0; 1 |] in
    (t, Dtsp.tour_cost d t)
  end
  else begin
    (* flat row-major copy: n ≤ 18, the DP is dense anyway *)
    let c = Dtsp.to_flat d in
    (* dp over subsets of cities 1..n-1; bit (j-1) set means j visited.
       dp.(mask).(j-1) = min cost of a path 0 → j visiting exactly the
       cities of mask. *)
    let nsets = 1 lsl (n - 1) in
    let inf = max_int / 4 in
    let dp = Array.make_matrix nsets (n - 1) inf in
    let par = Array.make_matrix nsets (n - 1) (-1) in
    for j = 1 to n - 1 do
      dp.(1 lsl (j - 1)).(j - 1) <- c.(j)
    done;
    for mask = 1 to nsets - 1 do
      for j = 1 to n - 1 do
        let bj = 1 lsl (j - 1) in
        if mask land bj <> 0 && dp.(mask).(j - 1) < inf then begin
          let base = dp.(mask).(j - 1) in
          for k = 1 to n - 1 do
            let bk = 1 lsl (k - 1) in
            if mask land bk = 0 then begin
              let m' = mask lor bk in
              let v = base + c.((j * n) + k) in
              if v < dp.(m').(k - 1) then begin
                dp.(m').(k - 1) <- v;
                par.(m').(k - 1) <- j
              end
            end
          done
        end
      done
    done;
    let full = nsets - 1 in
    let best = ref inf and last = ref (-1) in
    for j = 1 to n - 1 do
      let v = dp.(full).(j - 1) + c.(j * n) in
      if v < !best then begin
        best := v;
        last := j
      end
    done;
    (* reconstruct *)
    let tour = Array.make n 0 in
    let mask = ref full and j = ref !last in
    for i = n - 1 downto 1 do
      tour.(i) <- !j;
      let p = par.(!mask).(!j - 1) in
      mask := !mask land lnot (1 lsl (!j - 1));
      j := if p < 0 then 0 else p
    done;
    (tour, !best)
  end

(** [optimal_cost d] is just the cost part of {!solve}. *)
let optimal_cost d = snd (solve d)
