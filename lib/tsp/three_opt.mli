(** 3-Opt local search with neighbor lists and don't-look bits
    (Johnson–McGeoch), on instances produced by {!Sym.of_dtsp}.  The
    locked/forbidden weight structure guarantees improving moves preserve
    the alternating in/out tour shape. *)

type state = {
  s : Sym.t;
  nbr : int array array;
  tour : int array;  (** position → city *)
  pos : int array;  (** city → position *)
  in_queue : bool array;
  queue : int Queue.t;
  mutable moves_2opt : int;
  mutable moves_3opt : int;
}

(** Start a search state from a tour (copied).
    @raise Invalid_argument on malformed tours. *)
val init : Sym.t -> nbr:int array array -> tour:int array -> state

(** Mark a city for (re-)examination. *)
val activate : state -> int -> unit

val activate_all : state -> unit

(** Search one improving move around a city; apply it and return [true],
    or [false] if its candidate neighborhood is exhausted. *)
val try_city : state -> int -> bool

(** Run to local optimality over the active queue.  With a [budget],
    each improving move spends one unit and the search stops early (tour
    still valid) once the budget is exhausted. *)
val run : ?budget:Ba_robust.Budget.t -> state -> unit

(** Current tour (copied). *)
val tour : state -> int array

(** Current symmetric tour cost. *)
val cost : state -> int
