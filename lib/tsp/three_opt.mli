(** 3-Opt local search with neighbor lists and don't-look bits
    (Johnson–McGeoch), on instances produced by {!Sym.of_dtsp}.  The
    locked/forbidden weight structure guarantees improving moves preserve
    the alternating in/out tour shape.

    Don't-look bits are trajectory-exact version stamps: a popped
    city's scan is skipped only when the tour is bit-identical to the
    one its last scan failed against ([last_fail.(c) = version]), so
    bits-on and bits-off runs produce identical tours, costs, and move
    counts — only [scans_skipped] differs. *)

type state = {
  s : Sym.t;
  nbr : int array array;
  tour : int array;  (** position → city *)
  pos : int array;  (** city → position *)
  in_queue : bool array;
  queue : int Queue.t;
  mutable moves_2opt : int;
  mutable moves_3opt : int;
  mutable version : int;  (** tour mutation counter (moves + set_tour) *)
  last_fail : int array;  (** per city: version at last failed scan, −1 never *)
  mutable scans_skipped : int;  (** scans elided by the don't-look stamps *)
  dont_look : bool;
}

(** Start a search state from a tour (copied).  [dont_look] (default
    [true]) enables the version-stamp scan skips — trajectory-neutral
    either way.
    @raise Invalid_argument on malformed tours. *)
val init :
  ?dont_look:bool -> Sym.t -> nbr:int array array -> tour:int array -> state

(** Replace the tour wholesale (same cities, new order), bumping
    [version] so stale stamps never suppress a needed rescan.
    @raise Invalid_argument on a wrong-length tour. *)
val set_tour : state -> int array -> unit

(** Mark a city for (re-)examination. *)
val activate : state -> int -> unit

val activate_all : state -> unit

(** Search one improving move around a city; apply it and return [true],
    or [false] if its candidate neighborhood is exhausted. *)
val try_city : state -> int -> bool

(** Run to local optimality over the active queue.  With a [budget],
    each improving move spends one unit and the search stops early (tour
    still valid) once the budget is exhausted. *)
val run : ?budget:Ba_robust.Budget.t -> state -> unit

(** Current tour (copied). *)
val tour : state -> int array

(** Current symmetric tour cost. *)
val cost : state -> int
