(** 3-Opt local search with neighbor lists and don't-look bits
    (Johnson–McGeoch), on instances produced by {!Sym.of_dtsp}.  The
    locked/forbidden weight structure guarantees improving moves preserve
    the alternating in/out tour shape.

    The tour lives behind {!Tour_repr} (flat arrays or the two-level
    √n-segment structure); every search decision is position-based and
    both representations preserve absolute positions exactly, so the
    trajectory is representation-independent.

    Don't-look bits are trajectory-exact version stamps: a popped
    city's scan is skipped only when the tour is bit-identical to the
    one its last scan failed against ([last_fail.(c) = version]), so
    bits-on and bits-off runs produce identical tours, costs, and move
    counts — only [scans_skipped] differs. *)

type state = {
  s : Sym.t;
  nbr : int array array;
  repr : Tour_repr.t;  (** the tour representation *)
  in_queue : bool array;
  queue : int Queue.t;
  mutable moves_2opt : int;
  mutable moves_3opt : int;
  mutable version : int;  (** tour mutation counter (moves + set_tour) *)
  last_fail : int array;  (** per city: version at last failed scan, −1 never *)
  mutable scans_skipped : int;  (** scans elided by the don't-look stamps *)
  dont_look : bool;
  mutable scr_dby : int array;  (** y-side scan scratch (see the .ml) *)
  mutable scr_ry : int array;
  mutable scr_ry1 : int array;
  mutable scr_sy : int array;
  mutable scr_pry : int array;
}

(** Start a search state from a tour (copied).  [dont_look] (default
    [true]) enables the version-stamp scan skips; [repr] (default
    [Auto]) picks the tour representation; both are
    trajectory-neutral.  [spans] (default disabled) receives the
    two-level structure's [two_level.rebalance] spans.
    @raise Invalid_argument on malformed tours. *)
val init :
  ?dont_look:bool ->
  ?repr:Tour_repr.kind ->
  ?spans:Ba_obs.Span.buf ->
  Sym.t ->
  nbr:int array array ->
  tour:int array ->
  state

(** Replace the tour wholesale (same cities, new order), bumping
    [version] so stale stamps never suppress a needed rescan.
    @raise Invalid_argument on a wrong-length tour. *)
val set_tour : state -> int array -> unit

(** Mark a city for (re-)examination. *)
val activate : state -> int -> unit

val activate_all : state -> unit

(** Search one improving move around a city; apply it and return [true],
    or [false] if its candidate neighborhood is exhausted. *)
val try_city : state -> int -> bool

(** Run to local optimality over the active queue.  With a [budget],
    each improving move spends one unit and the search stops early (tour
    still valid) once the budget is exhausted. *)
val run : ?budget:Ba_robust.Budget.t -> state -> unit

(** Current tour (copied). *)
val tour : state -> int array

(** City at a tour position. *)
val city_at : state -> int -> int

(** Tour position of a city. *)
val position : state -> int -> int

(** Tour successor / predecessor of a city. *)
val succ : state -> int -> int

val pred : state -> int -> int

(** The representation actually in use ([Array] or [Two_level]). *)
val repr_kind : state -> Tour_repr.kind

(** Two-level structure statistics (1 / 0 / 0 on the flat arrays). *)
val segments : state -> int

val seg_splits : state -> int
val rebalances : state -> int

(** Current symmetric tour cost. *)
val cost : state -> int
