(** Two-level doubly-linked tour (the classic LKH / Or-tools
    structure; see DESIGN.md §6).

    The tour is cut into ~√n {e segments}, each holding a contiguous
    run of cities with an {e orientation bit} ([rev]): a reversed
    segment serves its cities back to front without touching them.  A
    segment-order array lists the segments along the tour, and every
    city keeps a (segment, physical index) handle, so [pos], [succ] and
    [pred] are O(1).  A cyclic range reversal splits at the two range
    boundaries (O(√n) copying), then reverses the {e run of segments}
    between them — reversing the slice of the order array and toggling
    each orientation bit — without touching a single city, so a 2-opt
    or 3-opt move costs O(√n) instead of the flat representation's
    O(n).

    {b Exact position semantics.}  Unlike the textbook structure, this
    one preserves {e absolute} tour positions: [pos t c] after any
    sequence of [reverse] calls equals the position the flat
    [tour]/[pos] arrays of {!Tour_repr} would report after the same
    calls.  3-Opt's first-improvement scan makes its decisions from
    positions, so preserving them exactly is what makes the two
    representations move-for-move identical (the acceptance bar of the
    differential suite).  Positions are virtualized through a global
    rotation offset [rot] (absolute = internal + [rot] mod n): a range
    that wraps the internal origin is made linear by {e re-rotating}
    the segment order (O(√n)), never by moving cities.

    {b Rebalancing.}  Splits grow the segment count; when it exceeds
    [max_segs] (≈ 2√n) the structure is rebuilt into ~√n equal
    segments — O(n), but amortized O(√n) per move because at most
    three splits happen per reversal.  Rebuilds are counted
    ([rebalances]) and traced as a [two_level.rebalance] span when the
    state was created with an enabled span buffer. *)

type seg = {
  mutable cities : int array;  (** physical storage, exactly [len] wide *)
  mutable len : int;
  mutable rev : bool;  (** serve [cities] back to front *)
  mutable start : int;  (** internal position of the logical first city *)
  mutable idx : int;  (** index in the order array *)
}

type t = {
  n : int;
  order : seg array;  (** [order.(0 .. nsegs-1)], by internal start *)
  mutable nsegs : int;
  mutable rot : int;  (** absolute position = (internal + rot) mod n *)
  seg_of : seg array;  (** city → its segment *)
  pidx : int array;  (** city → physical index in its segment *)
  group : int;  (** target segment length (≈ √n) *)
  max_segs : int;  (** rebuild once [nsegs] exceeds this *)
  mutable splits : int;
  mutable rebalances : int;
  spans : Ba_obs.Span.buf;
}

let n t = t.n
let segments t = t.nsegs
let splits t = t.splits
let rebalances t = t.rebalances

(* ------------------------------------------------------------------ *)
(* construction                                                        *)

(** Fill the structure from [tour] (position → city), resetting the
    rotation; O(n). *)
let rebuild t (tour : int array) =
  let n = t.n in
  let nsegs = (n + t.group - 1) / t.group in
  t.nsegs <- nsegs;
  t.rot <- 0;
  for k = 0 to nsegs - 1 do
    let lo = k * t.group in
    let hi = min n (lo + t.group) in
    let s =
      { cities = Array.sub tour lo (hi - lo); len = hi - lo; rev = false;
        start = lo; idx = k }
    in
    t.order.(k) <- s;
    for p = 0 to s.len - 1 do
      let c = s.cities.(p) in
      t.seg_of.(c) <- s;
      t.pidx.(c) <- p
    done
  done

(** [create ?spans ~tour n] builds a balanced two-level tour over the
    [n]-city tour (copied).  [spans] (default disabled) receives one
    [two_level.rebalance] span per rebuild. *)
let create ?(spans = Ba_obs.Span.null) ~tour n =
  if Array.length tour <> n then invalid_arg "Two_level.create: wrong size";
  let group = max 1 (int_of_float (ceil (sqrt (float_of_int n)))) in
  let base = (n + group - 1) / group in
  let max_segs = (2 * base) + 8 in
  let dummy = { cities = [||]; len = 0; rev = false; start = 0; idx = 0 } in
  let t =
    {
      n;
      order = Array.make (max_segs + 4) dummy;
      nsegs = 0;
      rot = 0;
      seg_of = Array.make n dummy;
      pidx = Array.make n 0;
      group;
      max_segs;
      splits = 0;
      rebalances = 0;
      spans;
    }
  in
  rebuild t tour;
  t

(* ------------------------------------------------------------------ *)
(* O(1) queries                                                        *)

let pos t c =
  let s = t.seg_of.(c) in
  let off = if s.rev then s.len - 1 - t.pidx.(c) else t.pidx.(c) in
  let p = s.start + off + t.rot in
  if p >= t.n then p - t.n else p

(* logical first/last city of a segment *)
let seg_first s = if s.rev then s.cities.(s.len - 1) else s.cities.(0)
let seg_last s = if s.rev then s.cities.(0) else s.cities.(s.len - 1)

(* neighbors in the order array, cyclically ([idx] is in [0, nsegs)) *)
let next_seg t (s : seg) =
  let k = s.idx + 1 in
  t.order.(if k = t.nsegs then 0 else k)

let prev_seg t (s : seg) =
  let k = s.idx - 1 in
  t.order.(if k < 0 then t.nsegs - 1 else k)

let succ t c =
  let s = t.seg_of.(c) in
  let p = t.pidx.(c) in
  if s.rev then
    if p > 0 then s.cities.(p - 1) else seg_first (next_seg t s)
  else if p + 1 < s.len then s.cities.(p + 1)
  else seg_first (next_seg t s)

let pred t c =
  let s = t.seg_of.(c) in
  let p = t.pidx.(c) in
  if s.rev then
    if p + 1 < s.len then s.cities.(p + 1) else seg_last (prev_seg t s)
  else if p > 0 then s.cities.(p - 1)
  else seg_last (prev_seg t s)

(* largest k with order.(k).start <= internal position p *)
let find_seg t p =
  let lo = ref 0 and hi = ref (t.nsegs - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.order.(mid).start <= p then lo := mid else hi := mid - 1
  done;
  !lo

let city_at t p =
  let p = p - t.rot in
  let p = if p < 0 then p + t.n else p in
  let s = t.order.(find_seg t p) in
  let off = p - s.start in
  s.cities.(if s.rev then s.len - 1 - off else off)

let to_array t =
  let out = Array.make t.n 0 in
  for k = 0 to t.nsegs - 1 do
    let s = t.order.(k) in
    let base = s.start + t.rot in
    for off = 0 to s.len - 1 do
      let p = base + off in
      let p = if p >= t.n then p - t.n else p in
      out.(p) <- s.cities.(if s.rev then s.len - 1 - off else off)
    done
  done;
  out

(* ------------------------------------------------------------------ *)
(* segment surgery                                                     *)

(** Cut a physical sub-run of [s] out into a fresh segment sharing
    [s]'s orientation; handles of the copied cities are repointed. *)
let carve t (s : seg) ~phys_lo ~phys_len =
  let cities = Array.sub s.cities phys_lo phys_len in
  let piece = { cities; len = phys_len; rev = s.rev; start = 0; idx = 0 } in
  for p = 0 to phys_len - 1 do
    let c = cities.(p) in
    t.seg_of.(c) <- piece;
    t.pidx.(c) <- p
  done;
  piece

(** Ensure a segment boundary at internal position [p] (0 ≤ p ≤ n):
    the segment containing [p] is split so [p] starts a segment.
    No-op when [p] already sits on a boundary (including 0 and n). *)
let split_at t p =
  if p > 0 && p < t.n then begin
    let k = find_seg t p in
    let s = t.order.(k) in
    let q = p - s.start in
    if q > 0 then begin
      (* logical halves [0..q-1] and [q..len-1]; physically the first
         half is the tail of a reversed segment, the head otherwise *)
      let first, second =
        if s.rev then
          (carve t s ~phys_lo:(s.len - q) ~phys_len:q,
           carve t s ~phys_lo:0 ~phys_len:(s.len - q))
        else
          (carve t s ~phys_lo:0 ~phys_len:q,
           carve t s ~phys_lo:q ~phys_len:(s.len - q))
      in
      first.start <- s.start;
      second.start <- p;
      for i = t.nsegs downto k + 2 do
        let m = t.order.(i - 1) in
        m.idx <- i;
        t.order.(i) <- m
      done;
      first.idx <- k;
      second.idx <- k + 1;
      t.order.(k) <- first;
      t.order.(k + 1) <- second;
      t.nsegs <- t.nsegs + 1;
      t.splits <- t.splits + 1
    end
  end

(** Re-rotate so internal position [p] becomes internal 0 (absolute
    positions are unchanged: [rot] absorbs the shift).  O(√n). *)
let rotate_to t p =
  if p > 0 && p < t.n then begin
    split_at t p;
    let k = find_seg t p in
    let tmp = Array.sub t.order 0 t.nsegs in
    let at = ref 0 in
    for i = k to t.nsegs - 1 do
      t.order.(!at) <- tmp.(i);
      incr at
    done;
    for i = 0 to k - 1 do
      t.order.(!at) <- tmp.(i);
      incr at
    done;
    let start = ref 0 in
    for i = 0 to t.nsegs - 1 do
      let s = t.order.(i) in
      s.idx <- i;
      s.start <- !start;
      start := !start + s.len
    done;
    t.rot <- (t.rot + p) mod t.n
  end

let rebalance t =
  Ba_obs.Span.with_span t.spans "two_level.rebalance" (fun () ->
      let tour = to_array t in
      rebuild t tour;
      t.rebalances <- t.rebalances + 1)

(** [reverse t l r] reverses the cyclic {e absolute} position range
    [l..r] (inclusive), exactly like the flat representation's
    [reverse_seg]; O(√n) amortized. *)
let reverse t l r =
  let n = t.n in
  let len = ((r - l + n) mod n) + 1 in
  if len > 1 then
    if len = n then begin
      (* degenerate whole-tour reversal (never issued by the solver):
         realize it directly and rebuild *)
      let a = to_array t in
      let out = Array.make n 0 in
      for off = 0 to n - 1 do
        out.((l + off) mod n) <- a.((((r - off) mod n) + n) mod n)
      done;
      rebuild t out
    end
    else begin
      let li = ((l - t.rot) mod n + n) mod n in
      let ri = ((r - t.rot) mod n + n) mod n in
      if li > ri then rotate_to t li;
      let li = ((l - t.rot) mod n + n) mod n in
      let ri = ((r - t.rot) mod n + n) mod n in
      split_at t li;
      split_at t (ri + 1);
      let k1 = find_seg t li and k2 = find_seg t ri in
      (* reverse the segment run: flip the slice of the order array and
         toggle orientation bits; no city moves *)
      let a = ref k1 and b = ref k2 in
      while !a < !b do
        let sa = t.order.(!a) and sb = t.order.(!b) in
        t.order.(!a) <- sb;
        t.order.(!b) <- sa;
        incr a;
        decr b
      done;
      let start = ref li in
      for i = k1 to k2 do
        let s = t.order.(i) in
        s.rev <- not s.rev;
        s.idx <- i;
        s.start <- !start;
        start := !start + s.len
      done;
      if t.nsegs > t.max_segs then rebalance t
    end

(** Replace the tour wholesale (rebuilds; O(n)). *)
let set_tour t tour =
  if Array.length tour <> t.n then invalid_arg "Two_level.set_tour: wrong size";
  rebuild t tour
