(** Tour-construction heuristics for directed instances.

    The iterated 3-Opt solver of the paper uses "5 randomized Greedy
    starts, 4 randomized Nearest Neighbor starts, and once the original
    ordering given by the compiler" (Appendix).  Both heuristics here are
    randomized in the classic way: instead of always taking the cheapest
    feasible choice, pick uniformly among the best few. *)

(** The identity tour 0,1,…,n−1. *)
let identity n = Array.init n (fun i -> i)

(** [nearest_neighbor ?rng ?choices d ~start] grows a tour from [start],
    repeatedly moving to one of the [choices] nearest unvisited cities
    (uniformly at random among them; [choices = 1] is the deterministic
    heuristic). *)
let nearest_neighbor ?rng ?(choices = 1) (d : Dtsp.t) ~start =
  if start < 0 || start >= d.Dtsp.n then invalid_arg "nearest_neighbor: bad start";
  let n = d.Dtsp.n in
  let visited = Array.make n false in
  let tour = Array.make n start in
  visited.(start) <- true;
  let cur = ref start in
  (* scratch: candidate (cost, city) pairs of the current step *)
  let cand = Array.make choices (max_int, -1) in
  for i = 1 to n - 1 do
    let n_cand = ref 0 in
    for j = 0 to n - 1 do
      if not visited.(j) then begin
        let c = Dtsp.cost d !cur j in
        (* insert (c, j) into the best-[choices] candidate buffer *)
        if !n_cand < choices then begin
          cand.(!n_cand) <- (c, j);
          incr n_cand;
          (* keep the buffer sorted, worst last *)
          let k = ref (!n_cand - 1) in
          while !k > 0 && fst cand.(!k) < fst cand.(!k - 1) do
            let t = cand.(!k) in
            cand.(!k) <- cand.(!k - 1);
            cand.(!k - 1) <- t;
            decr k
          done
        end
        else if c < fst cand.(choices - 1) then begin
          cand.(choices - 1) <- (c, j);
          let k = ref (choices - 1) in
          while !k > 0 && fst cand.(!k) < fst cand.(!k - 1) do
            let t = cand.(!k) in
            cand.(!k) <- cand.(!k - 1);
            cand.(!k - 1) <- t;
            decr k
          done
        end
      end
    done;
    let pick =
      match rng with
      | None -> 0
      | Some st -> Random.State.int st !n_cand
    in
    let _, next = cand.(pick) in
    tour.(i) <- next;
    visited.(next) <- true;
    cur := next
  done;
  tour

(** [greedy_edge ?rng ?skip_prob d] builds a tour by scanning all directed
    edges in increasing cost order and accepting an edge when its source
    still lacks a layout successor, its destination lacks a predecessor,
    and it does not close a subtour early.  With [rng], each acceptable
    edge is randomly skipped with probability [skip_prob], which
    randomizes the construction; leftover path fragments are then stitched
    cheapest-first.  This mirrors the greedy matching heuristic the
    greedy branch aligners use, applied to the full cost matrix. *)
let greedy_edge ?rng ?(skip_prob = 0.1) (d : Dtsp.t) =
  let n = d.Dtsp.n in
  if n = 2 then [| 0; 1 |]
  else begin
    let next = Array.make n (-1) and prev = Array.make n (-1) in
    (* union-find over path fragments to detect early cycles *)
    let parent = Array.init n (fun i -> i) in
    let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); find parent.(i)) in
    let accepted = ref 0 in
    let try_edge i j =
      if
        !accepted < n - 1 && i <> j && next.(i) < 0 && prev.(j) < 0
        && find i <> find j
      then begin
        next.(i) <- j;
        prev.(j) <- i;
        parent.(find i) <- find j;
        incr accepted
      end
    in
    let edges = Array.make (n * (n - 1)) (0, 0, 0) in
    let k = ref 0 in
    let row = Array.make n 0 in
    for i = 0 to n - 1 do
      Dtsp.blit_row d i row;
      for j = 0 to n - 1 do
        if i <> j then begin
          edges.(!k) <- (row.(j), i, j);
          incr k
        end
      done
    done;
    Array.sort compare edges;
    Array.iter
      (fun (_, i, j) ->
        let skip =
          match rng with
          | Some st -> Random.State.float st 1.0 < skip_prob
          | None -> false
        in
        if not skip then try_edge i j)
      edges;
    (* stitch any remaining fragments: connect each open tail to the
       cheapest open head of another fragment *)
    while !accepted < n - 1 do
      let best = ref (max_int, -1, -1) in
      for i = 0 to n - 1 do
        if next.(i) < 0 then
          for j = 0 to n - 1 do
            if prev.(j) < 0 && i <> j && find i <> find j then begin
              let c = Dtsp.cost d i j in
              let bc, _, _ = !best in
              if c < bc then best := (c, i, j)
            end
          done
      done;
      let _, i, j = !best in
      if i < 0 then invalid_arg "greedy_edge: cannot complete tour";
      try_edge i j
    done;
    (* close the single remaining path into a cycle *)
    let head = ref (-1) in
    for j = 0 to n - 1 do
      if prev.(j) < 0 then head := j
    done;
    let tour = Array.make n 0 in
    let cur = ref !head in
    for i = 0 to n - 1 do
      tour.(i) <- !cur;
      cur := next.(!cur)
    done;
    tour
  end
