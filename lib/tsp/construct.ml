(** Tour-construction heuristics for directed instances.

    The iterated 3-Opt solver of the paper uses "5 randomized Greedy
    starts, 4 randomized Nearest Neighbor starts, and once the original
    ordering given by the compiler" (Appendix).  Both heuristics here are
    randomized in the classic way: instead of always taking the cheapest
    feasible choice, pick uniformly among the best few.

    Both are {e sparse-aware}: they drive the CSR rows of {!Dtsp}
    (explicit deviations + per-row default) instead of scanning the
    O(n²) logical matrix, which is what makes multi-start solves viable
    at 10⁵–10⁶ blocks.  Nearest-neighbor is {e bit-identical} to the
    historical dense scan at every size, randomized or not (it consumes
    the same single RNG draw per step over the same candidate buffer).
    The randomized greedy draws one RNG float {e per edge over all
    n(n−1) edges} in the dense formulation, which no sub-quadratic
    enumeration can reproduce, so it is gated like
    {!Neighbors.exact_threshold}: the dense scan (and its exact RNG
    stream) below {!greedy_dense_threshold}, the sparse merge above —
    deterministic for a fixed RNG either way, and identical to the
    dense result whenever no RNG is supplied. *)

(** The identity tour 0,1,…,n−1. *)
let identity n = Array.init n (fun i -> i)

(* ------------------------------------------------------------------ *)
(* nearest neighbor                                                    *)

(** [nearest_neighbor ?rng ?choices d ~start] grows a tour from [start],
    repeatedly moving to one of the [choices] nearest unvisited cities
    (uniformly at random among them; [choices = 1] is the deterministic
    heuristic).

    Per step, the candidate buffer — the [choices] lexicographically
    smallest (cost, city) pairs over the unvisited cities, exactly what
    the dense scan's insertion sort kept — is built by merging the
    current row's explicit deviations (pre-sorted by (cost, column))
    with the default-cost tail, an ascending walk of an unvisited
    doubly-linked list that skips the explicit columns.  O(choices +
    deg) per step instead of O(n), and bit-identical to the dense scan
    including the RNG stream (one draw per step). *)
let nearest_neighbor ?rng ?(choices = 1) (d : Dtsp.t) ~start =
  if start < 0 || start >= d.Dtsp.n then invalid_arg "nearest_neighbor: bad start";
  let n = d.Dtsp.n in
  let visited = Array.make n false in
  let tour = Array.make n start in
  visited.(start) <- true;
  (* unvisited doubly-linked list over city ids, ascending; sentinel n *)
  let nxt = Array.make (n + 1) 0 and prv = Array.make (n + 1) 0 in
  for i = 0 to n do
    nxt.(i) <- (if i = n then 0 else i + 1);
    prv.(i) <- (if i = 0 then n else i - 1)
  done;
  let remove j =
    nxt.(prv.(j)) <- nxt.(j);
    prv.(nxt.(j)) <- prv.(j)
  in
  remove start;
  (* scratch: candidate (cost, city) pairs of the current step, and a
     per-step stamp marking the current row's explicit columns *)
  let cand = Array.make choices (max_int, -1) in
  let mark = Array.make n (-1) in
  let dev = Array.make n (0, 0) in
  let cur = ref start in
  for i = 1 to n - 1 do
    let row_cols = d.Dtsp.row_cols.(!cur)
    and row_costs = d.Dtsp.row_costs.(!cur) in
    let default = d.Dtsp.row_default.(!cur) in
    (* explicit stream: the row's off-diagonal deviations by (cost, col) *)
    let nd = ref 0 in
    Array.iteri
      (fun k c ->
        if c <> !cur then begin
          dev.(!nd) <- (row_costs.(k), c);
          incr nd;
          mark.(c) <- i
        end)
      row_cols;
    let nd = !nd in
    let sub = Array.sub dev 0 nd in
    Array.sort compare sub;
    Array.blit sub 0 dev 0 nd;
    (* merge with the default tail (unvisited ∧ unmarked, ascending id)
       into the k smallest (cost, city) pairs, ascending — exactly the
       dense insertion buffer *)
    let ei = ref 0 and dj = ref nxt.(n) in
    let adv_explicit () =
      while !ei < nd && visited.(snd dev.(!ei)) do
        incr ei
      done
    in
    let adv_default () =
      while !dj < n && mark.(!dj) = i do
        dj := nxt.(!dj)
      done
    in
    adv_explicit ();
    adv_default ();
    let n_cand = ref 0 in
    while !n_cand < choices && (!ei < nd || !dj < n) do
      let explicit =
        !ei < nd
        && (!dj >= n
           ||
           let c, j = dev.(!ei) in
           c < default || (c = default && j < !dj))
      in
      if explicit then begin
        cand.(!n_cand) <- dev.(!ei);
        incr ei;
        adv_explicit ()
      end
      else begin
        cand.(!n_cand) <- (default, !dj);
        dj := nxt.(!dj);
        adv_default ()
      end;
      incr n_cand
    done;
    let pick =
      match rng with
      | None -> 0
      | Some st -> Random.State.int st !n_cand
    in
    let _, next = cand.(pick) in
    tour.(i) <- next;
    visited.(next) <- true;
    remove next;
    cur := next
  done;
  tour

(* ------------------------------------------------------------------ *)
(* greedy edge matching                                                *)

(** Largest instance the randomized greedy still serves with the dense
    all-edges scan (and hence the historical RNG stream); mirrors the
    {!Neighbors.exact_threshold} gate, and every committed trajectory
    that consumes randomized greedy starts lives below it. *)
let greedy_dense_threshold = Neighbors.exact_threshold

(* shared fragment bookkeeping: next/prev successor arrays, union-find
   over path fragments to refuse early cycles *)
type frag = {
  fnext : int array;
  fprev : int array;
  parent : int array;
  mutable accepted : int;
}

let frag_make n =
  { fnext = Array.make n (-1); fprev = Array.make n (-1);
    parent = Array.init n Fun.id; accepted = 0 }

let frag_find f i =
  let root = ref i in
  while f.parent.(!root) <> !root do
    root := f.parent.(!root)
  done;
  let cur = ref i in
  while !cur <> !root do
    let p = f.parent.(!cur) in
    f.parent.(!cur) <- !root;
    cur := p
  done;
  !root

let frag_try_edge f n i j =
  if
    f.accepted < n - 1 && i <> j && f.fnext.(i) < 0 && f.fprev.(j) < 0
    && frag_find f i <> frag_find f j
  then begin
    f.fnext.(i) <- j;
    f.fprev.(j) <- i;
    f.parent.(frag_find f i) <- frag_find f j;
    f.accepted <- f.accepted + 1;
    true
  end
  else false

(* stitch remaining fragments cheapest-first and close the path *)
let frag_finish (d : Dtsp.t) f =
  let n = d.Dtsp.n in
  while f.accepted < n - 1 do
    let best = ref (max_int, -1, -1) in
    for i = 0 to n - 1 do
      if f.fnext.(i) < 0 then
        for j = 0 to n - 1 do
          if f.fprev.(j) < 0 && i <> j && frag_find f i <> frag_find f j then begin
            let c = Dtsp.cost d i j in
            let bc, _, _ = !best in
            if c < bc then best := (c, i, j)
          end
        done
    done;
    let _, i, j = !best in
    if i < 0 then invalid_arg "greedy_edge: cannot complete tour";
    ignore (frag_try_edge f n i j)
  done;
  let head = ref (-1) in
  for j = 0 to n - 1 do
    if f.fprev.(j) < 0 then head := j
  done;
  let tour = Array.make n 0 in
  let cur = ref !head in
  for i = 0 to n - 1 do
    tour.(i) <- !cur;
    cur := f.fnext.(!cur)
  done;
  tour

(* the historical dense scan: materialize and sort all n(n−1) directed
   edges, then consider every one in (cost, i, j) order, drawing one
   RNG float per edge when randomized *)
let greedy_dense ?rng ~skip_prob (d : Dtsp.t) =
  let n = d.Dtsp.n in
  let f = frag_make n in
  let edges = Array.make (n * (n - 1)) (0, 0, 0) in
  let k = ref 0 in
  let row = Array.make n 0 in
  for i = 0 to n - 1 do
    Dtsp.blit_row d i row;
    for j = 0 to n - 1 do
      if i <> j then begin
        edges.(!k) <- (row.(j), i, j);
        incr k
      end
    done
  done;
  Array.sort compare edges;
  Array.iter
    (fun (_, i, j) ->
      let skip =
        match rng with
        | Some st -> Random.State.float st 1.0 < skip_prob
        | None -> false
      in
      if not skip then ignore (frag_try_edge f n i j))
    edges;
  frag_finish d f

(* Sparse merge scan: enumerate the acceptable edges in the same
   (cost, i, j) order without materializing the matrix.  The explicit
   stream is the sorted array of all explicit off-diagonal deviations;
   the default stream walks the rows in (default, row) order, each row
   emitting its implicit columns ascending, restricted to cities that
   still lack a predecessor (a path-compressed first-open-≥ skip array
   makes the restriction near-O(1)).  Edges that the dense scan would
   consider but that can no longer be accepted (source already linked,
   destination already linked, explicit column) are exactly the ones
   the filters drop, so without an RNG the result is identical to the
   dense scan; with an RNG, one float is drawn per emitted edge and
   enumeration stops once the path set is complete, which is a
   different (but deterministic) stream from the dense all-edges
   draw — the reason the dense path is kept below the gate. *)
let greedy_sparse ?rng ~skip_prob (d : Dtsp.t) =
  let n = d.Dtsp.n in
  let f = frag_make n in
  (* explicit stream *)
  let nnz = Dtsp.nnz d in
  let ex = Array.make (max 1 nnz) (0, 0, 0) in
  let nex = ref 0 in
  for i = 0 to n - 1 do
    let cols = d.Dtsp.row_cols.(i) and costs = d.Dtsp.row_costs.(i) in
    Array.iteri
      (fun k c ->
        if c <> i then begin
          ex.(!nex) <- (costs.(k), i, c);
          incr nex
        end)
      cols
  done;
  let nex = !nex in
  let ex = Array.sub ex 0 nex in
  Array.sort compare ex;
  (* default stream: rows by (default, row) *)
  let ord = Array.init n Fun.id in
  Array.sort
    (fun r r' ->
      compare (d.Dtsp.row_default.(r), r) (d.Dtsp.row_default.(r'), r'))
    ord;
  let lb = Array.make n 0 in
  (* first-open-≥: skip.(j) = j while j may still take a predecessor *)
  let skip = Array.init (n + 1) Fun.id in
  let first_open j0 =
    let j = ref j0 in
    while !j < n && skip.(!j) <> !j do
      j := skip.(!j)
    done;
    let r = if !j > n then n else !j in
    let cur = ref j0 in
    while !cur < n && skip.(!cur) <> !cur && skip.(!cur) <> r do
      let next = skip.(!cur) in
      skip.(!cur) <- r;
      cur := next
    done;
    r
  in
  let close j = skip.(j) <- j + 1 in
  let try_edge i j =
    if frag_try_edge f n i j then begin
      close j;
      true
    end
    else false
  in
  let is_explicit_col i j =
    let cols = d.Dtsp.row_cols.(i) in
    let lo = ref 0 and hi = ref (Array.length cols - 1) in
    let found = ref false in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let c = cols.(mid) in
      if c = j then begin
        found := true;
        lo := !hi + 1
      end
      else if c < j then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  in
  let ei = ref 0 and ri = ref 0 in
  (* peek the next emittable default edge, advancing past closed rows
     and exhausted columns; None when the stream is dry *)
  let default_head () =
    let res = ref None and scanning = ref true in
    while !scanning do
      if !ri >= n then scanning := false
      else begin
        let i = ord.(!ri) in
        if f.fnext.(i) >= 0 then incr ri
        else begin
          (* next emittable column ≥ lb.(i): open, off-diagonal, implicit *)
          let j = ref (first_open lb.(i)) in
          while !j < n && (!j = i || is_explicit_col i !j) do
            j := first_open (!j + 1)
          done;
          if !j >= n then incr ri
          else begin
            lb.(i) <- !j;
            res := Some (d.Dtsp.row_default.(i), i, !j);
            scanning := false
          end
        end
      end
    done;
    !res
  in
  let consider (_, i, j) =
    let skip_edge =
      match rng with
      | Some st -> Random.State.float st 1.0 < skip_prob
      | None -> false
    in
    if not skip_edge then ignore (try_edge i j)
  in
  let exhausted = ref false in
  while f.accepted < n - 1 && not !exhausted do
    let eh = if !ei < nex then Some ex.(!ei) else None in
    let dh = default_head () in
    match (eh, dh) with
    | None, None -> exhausted := true
    | Some e, None ->
        incr ei;
        consider e
    | None, Some ((_, i, j) as e) ->
        lb.(i) <- j + 1;
        consider e
    | Some e, Some ((_, i, j) as e') ->
        if e <= e' then begin
          incr ei;
          consider e
        end
        else begin
          lb.(i) <- j + 1;
          consider e'
        end
  done;
  frag_finish d f

(** [greedy_edge ?rng ?skip_prob d] builds a tour by scanning the
    directed edges in increasing (cost, i, j) order and accepting an
    edge when its source still lacks a layout successor, its
    destination lacks a predecessor, and it does not close a subtour
    early.  With [rng], each acceptable edge is randomly skipped with
    probability [skip_prob], which randomizes the construction;
    leftover path fragments are then stitched cheapest-first.  This
    mirrors the greedy matching heuristic the greedy branch aligners
    use, applied to the full cost matrix.

    Deterministic calls always take the sparse merge scan (identical
    result to the dense scan, O((n + E) log) instead of O(n² log n));
    randomized calls keep the dense scan — and its exact historical
    RNG stream — up to {!greedy_dense_threshold} cities and use the
    sparse enumeration above it. *)
let greedy_edge ?rng ?(skip_prob = 0.1) (d : Dtsp.t) =
  let n = d.Dtsp.n in
  if n = 2 then [| 0; 1 |]
  else
    match rng with
    | Some _ when n <= greedy_dense_threshold ->
        greedy_dense ?rng ~skip_prob d
    | _ -> greedy_sparse ?rng ~skip_prob d
