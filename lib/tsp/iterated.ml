(** Iterated 3-Opt for the directed TSP (via symmetrization).

    Following the paper's appendix: each {e run} starts from a
    construction tour (the original ordering once, randomized greedy and
    randomized nearest-neighbor for the rest), optimizes it with 3-Opt to
    exhaustion, then performs a number of {e iterations}, each consisting
    of a random double-bridge 4-Opt kick [20] followed by 3-Opt
    re-optimization; a worsening iteration is undone.  The best tour over
    all runs is returned.  The paper uses 10 runs of 2·N iterations. *)

type config = {
  runs : int;  (** independent restarts (paper: 10) *)
  kick_factor : int;  (** iterations per run = kick_factor × n (paper: 2) *)
  max_kicks : int;  (** hard cap on iterations per run *)
  neighbors : int;  (** candidate-list width for 3-Opt *)
  nn_choices : int;  (** randomization width of nearest-neighbor starts *)
  greedy_skip : float;  (** skip probability of randomized greedy starts *)
  seed : int;
  deadline_ms : int option;  (** wall-clock budget per solve; [None] = none *)
  max_moves : int option;  (** improving-move budget per solve *)
  tour_repr : Tour_repr.kind;
      (** tour representation for the 3-Opt states (trajectory-neutral;
          [Auto] gates on instance size) *)
}

let default =
  {
    runs = 10;
    kick_factor = 2;
    max_kicks = 2000;
    neighbors = 12;
    nn_choices = 3;
    greedy_skip = 0.1;
    seed = 0x5eed;
    deadline_ms = None;
    max_moves = None;
    tour_repr = Tour_repr.Auto;
  }

type stats = {
  best_cost : int;  (** directed cost of the best tour *)
  runs_with_best : int;  (** how many runs ended at the best cost *)
  kicks : int;  (** total kicks over all runs *)
  moves_2opt : int;
  moves_3opt : int;
  timed_out : bool;  (** the budget ran out before the search finished *)
}

(* ------------------------------------------------------------------ *)

(** Overwrite the search state's tour (bumps the don't-look version). *)
let set_tour = Three_opt.set_tour

(** Random double-bridge kick that never cuts a locked pair edge.
    Returns the boundary cities whose don't-look bits must be cleared. *)
let double_bridge (st : Three_opt.state) rng =
  let s = st.Three_opt.s in
  let n = s.Sym.nn in
  let t = Three_opt.tour st in
  (* make sure the wrap-around edge (t[n-1], t[0]) is not locked; the
     rotation does not change the cycle *)
  if Sym.is_locked s t.(n - 1) t.(0) then begin
    let first = t.(0) in
    Array.blit t 1 t 0 (n - 1);
    t.(n - 1) <- first
  end;
  let ok p = not (Sym.is_locked s t.(p - 1) t.(p)) in
  let rand_cut () =
    let p = ref (1 + Random.State.int rng (n - 1)) in
    while not (ok !p) do
      p := 1 + ((!p + 1 - 1) mod (n - 1))
    done;
    !p
  in
  let p1 = ref (rand_cut ()) and p2 = ref (rand_cut ()) and p3 = ref (rand_cut ()) in
  (* need three distinct sorted cut positions *)
  let attempts = ref 0 in
  while (!p1 = !p2 || !p2 = !p3 || !p1 = !p3) && !attempts < 64 do
    incr attempts;
    p2 := rand_cut ();
    p3 := rand_cut ()
  done;
  if !p1 = !p2 || !p2 = !p3 || !p1 = !p3 then [] (* degenerate: skip kick *)
  else begin
    let a = min !p1 (min !p2 !p3) and c = max !p1 (max !p2 !p3) in
    let b = !p1 + !p2 + !p3 - a - c in
    (* A = t[0..a-1], B = t[a..b-1], C = t[b..c-1], D = t[c..n-1];
       double bridge: A C B D *)
    let t' = Array.make n 0 in
    let k = ref 0 in
    let push lo hi =
      for i = lo to hi do
        t'.(!k) <- t.(i);
        incr k
      done
    in
    push 0 (a - 1);
    push b (c - 1);
    push a (b - 1);
    push c (n - 1);
    let touched =
      [
        t.(0); t.(n - 1);
        t.(a - 1); t.(a);
        t.(b - 1); t.(b);
        t.(c - 1); t.(c);
      ]
    in
    set_tour st t';
    touched
  end

(* ------------------------------------------------------------------ *)

let brute_force (d : Dtsp.t) =
  (* for n <= 3 every cyclic order is exhausted trivially *)
  match d.Dtsp.n with
  | 2 ->
      let t = [| 0; 1 |] in
      (t, Dtsp.tour_cost d t)
  | 3 ->
      let t1 = [| 0; 1; 2 |] and t2 = [| 0; 2; 1 |] in
      let c1 = Dtsp.tour_cost d t1 and c2 = Dtsp.tour_cost d t2 in
      if c1 <= c2 then (t1, c1) else (t2, c2)
  | _ -> invalid_arg "Iterated.brute_force: n > 3"

(** [solve ?config ?rng ?budget d] returns the best directed tour found
    and solver statistics.  Deterministic for a fixed [config.seed] and
    unlimited budget; all randomness comes from [rng] (default: a state
    derived from [config.seed] and the instance), so the solve is
    re-entrant — no global or otherwise shared state is touched, and
    concurrent solves of different instances cannot interfere.  [budget]
    (defaulting to one built from the config's [deadline_ms]/[max_moves])
    is polled between improving moves, kicks and restarts; on exhaustion
    the best tour found so far is returned with [timed_out] set — the
    first (identity-start) construction always completes, so a valid
    tour is returned even for a zero budget. *)
let solve ?(config = default) ?rng ?budget ?initial
    ?(nbr_exec = Ba_engine.Executor.Seq) (d : Dtsp.t) : int array * stats =
  let budget =
    match budget with
    | Some b -> b
    | None ->
        Ba_robust.Budget.create ?deadline_ms:config.deadline_ms
          ?max_moves:config.max_moves ()
  in
  let n = d.Dtsp.n in
  if n <= 3 then begin
    let tour, c = brute_force d in
    Ba_obs.Metrics.incr Ba_obs.Metrics.Exact_solves;
    ( tour,
      { best_cost = c; runs_with_best = config.runs; kicks = 0; moves_2opt = 0;
        moves_3opt = 0; timed_out = false } )
  end
  else begin
    let rng =
      match rng with
      | Some r -> r
      | None -> Random.State.make [| config.seed; n; Dtsp.max_cost d |]
    in
    let s = Sym.of_dtsp d in
    let nbr = Neighbors.of_sym ~exec:nbr_exec s ~k:config.neighbors in
    let kicks_per_run = min config.max_kicks (config.kick_factor * n) in
    let best_tour = ref None and best_cost = ref max_int in
    let runs_with_best = ref 0 in
    let total_kicks = ref 0 and m2 = ref 0 and m3 = ref 0 in
    let run = ref 0 in
    (* run 0 (the identity start) always executes so that an exhausted
       budget still yields a valid tour; later runs are skipped once the
       budget runs out *)
    while !run = 0 || (!run < config.runs && not (Ba_robust.Budget.exhausted budget)) do
      let start_directed =
        if !run = 0 then
          (* run 0 always completes even on an exhausted budget; with a
             warm start (incremental re-alignment: the serve cache's
             previous tour) it re-optimizes that tour instead of the
             identity, so small profile drifts converge in a few moves *)
          match initial with
          | Some t when Array.length t = n -> Array.copy t
          | _ -> Construct.identity n
        else if !run land 1 = 1 then
          Construct.greedy_edge ~rng ~skip_prob:config.greedy_skip d
        else
          Construct.nearest_neighbor ~rng ~choices:config.nn_choices d
            ~start:(Random.State.int rng n)
      in
      let st =
        Three_opt.init ~repr:config.tour_repr s ~nbr
          ~tour:(Sym.expand s start_directed)
      in
      Three_opt.activate_all st;
      Three_opt.run ~budget st;
      let run_best = ref (Three_opt.tour st) in
      let run_best_cost = ref (Three_opt.cost st) in
      let kick = ref 0 in
      while !kick < kicks_per_run && not (Ba_robust.Budget.exhausted budget) do
        incr kick;
        incr total_kicks;
        let touched = double_bridge st rng in
        List.iter (Three_opt.activate st) touched;
        Three_opt.run ~budget st;
        let c = Three_opt.cost st in
        if c < !run_best_cost then begin
          run_best_cost := c;
          run_best := Three_opt.tour st
        end
        else set_tour st !run_best
      done;
      m2 := !m2 + st.Three_opt.moves_2opt;
      m3 := !m3 + st.Three_opt.moves_3opt;
      let directed_cost = !run_best_cost + s.Sym.offset in
      if directed_cost < !best_cost then begin
        best_cost := directed_cost;
        best_tour := Some (Sym.extract s !run_best);
        runs_with_best := 1
      end
      else if directed_cost = !best_cost then incr runs_with_best;
      incr run
    done;
    let tour = Option.get !best_tour in
    assert (Dtsp.tour_cost d tour = !best_cost);
    let timed_out = Ba_robust.Budget.exhausted budget in
    (* observability: per-solve totals (move counters are fed by
       Three_opt.run itself) *)
    Ba_obs.Metrics.(
      incr Heuristic_solves;
      incr ~n:!total_kicks Kicks;
      incr ~n:!run Restarts;
      set_gauge Neighbor_width config.neighbors;
      if timed_out then incr Budget_exhaustions);
    ( tour,
      {
        best_cost = !best_cost;
        runs_with_best = !runs_with_best;
        kicks = !total_kicks;
        moves_2opt = !m2;
        moves_3opt = !m3;
        timed_out;
      } )
  end
