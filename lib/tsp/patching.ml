(** Karp's patching algorithm for the directed TSP [14, 34].

    The classic AP-based heuristic the paper's appendix contrasts with
    iterated 3-Opt: solve the assignment problem (a minimum cycle cover),
    then repeatedly patch the two largest cycles together using the
    cheapest 2-exchange between them, until a single Hamiltonian cycle
    remains.  Excellent when the AP bound is near the optimum (e.g.
    random matrices), much weaker on branch-alignment instances — which
    is exactly the point the appendix makes, and which the appendix
    experiment here measures. *)

(** [solve d] returns a tour and its cost. *)
let solve (d : Dtsp.t) : int array * int =
  let n = d.Dtsp.n in
  if n = 2 then begin
    let t = [| 0; 1 |] in
    (t, Dtsp.tour_cost d t)
  end
  else begin
    let forbid = 1 + (n * (Dtsp.max_cost d + 1)) in
    (* flat row-major copy with the diagonal forbidden; the patching
       deltas below only ever read off-diagonal entries, which equal the
       directed costs *)
    let cost = Dtsp.to_flat d in
    for i = 0 to n - 1 do
      cost.((i * n) + i) <- forbid
    done;
    let succ, _ = Hungarian.solve ~n cost in
    (* identify cycles *)
    let cycle_of = Array.make n (-1) in
    let cycle_sizes = ref [] in
    let n_cycles = ref 0 in
    for v = 0 to n - 1 do
      if cycle_of.(v) < 0 then begin
        let id = !n_cycles in
        incr n_cycles;
        let size = ref 0 and cur = ref v in
        while cycle_of.(!cur) < 0 do
          cycle_of.(!cur) <- id;
          incr size;
          cur := succ.(!cur)
        done;
        cycle_sizes := (id, !size) :: !cycle_sizes
      end
    done;
    let sizes = Hashtbl.create 8 in
    List.iter (fun (id, s) -> Hashtbl.replace sizes id s) !cycle_sizes;
    (* repeatedly patch the two largest cycles *)
    while Hashtbl.length sizes > 1 do
      (* find ids of the two largest cycles *)
      let best1 = ref (-1, -1) and best2 = ref (-1, -1) in
      Hashtbl.iter
        (fun id s ->
          if s > snd !best1 then begin
            best2 := !best1;
            best1 := (id, s)
          end
          else if s > snd !best2 then best2 := (id, s))
        sizes;
      let c1 = fst !best1 and c2 = fst !best2 in
      (* cheapest patch: delete (i, succ i) from c1 and (j, succ j) from
         c2; add (i, succ j) and (j, succ i) *)
      let best = ref (max_int, -1, -1) in
      for i = 0 to n - 1 do
        if cycle_of.(i) = c1 then
          for j = 0 to n - 1 do
            if cycle_of.(j) = c2 then begin
              let delta =
                cost.((i * n) + succ.(j)) + cost.((j * n) + succ.(i))
                - cost.((i * n) + succ.(i))
                - cost.((j * n) + succ.(j))
              in
              let bc, _, _ = !best in
              if delta < bc then best := (delta, i, j)
            end
          done
      done;
      let _, i, j = !best in
      let si = succ.(i) and sj = succ.(j) in
      succ.(i) <- sj;
      succ.(j) <- si;
      (* cycle c2 is absorbed into c1 *)
      let s1 = Hashtbl.find sizes c1 and s2 = Hashtbl.find sizes c2 in
      Hashtbl.remove sizes c2;
      Hashtbl.replace sizes c1 (s1 + s2);
      for v = 0 to n - 1 do
        if cycle_of.(v) = c2 then cycle_of.(v) <- c1
      done
    done;
    (* read off the tour *)
    let tour = Array.make n 0 in
    let cur = ref 0 in
    for k = 0 to n - 1 do
      tour.(k) <- !cur;
      cur := succ.(!cur)
    done;
    (tour, Dtsp.tour_cost d tour)
  end
