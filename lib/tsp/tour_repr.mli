(** Pluggable tour representation for the 3-Opt engine: the historical
    flat position/city arrays ([Array], O(n) reversals — the identity
    anchor for every committed small-instance trajectory) or the
    two-level √n-segment structure ([Two_level], O(√n) moves —
    {!Two_level}).  Both preserve absolute tour positions exactly, so
    the 3-Opt trajectory is representation-independent; [Auto] (the
    default) keeps the flat arrays up to {!two_level_threshold}
    directed cities and switches above, a purely performance-motivated
    gate (DESIGN.md §6). *)

type kind = Auto | Array | Two_level

(** Largest directed-instance size (cities, dummy included) [Auto]
    still serves with the flat arrays. *)
val two_level_threshold : int

val kind_name : kind -> string

(** Parse a CLI spelling ([auto] / [array] / [two-level]). *)
val kind_of_string : string -> kind option

type t

(** [make ?spans kind ~n_cities tour] picks the representation
    ([n_cities] is the directed city count gating [Auto]; [tour] is
    position → city, copied).  [spans] (default disabled) feeds the
    two-level structure's rebalance spans. *)
val make : ?spans:Ba_obs.Span.buf -> kind -> n_cities:int -> int array -> t

(** The representation actually chosen ([Array] or [Two_level]). *)
val kind_of : t -> kind

val n : t -> int

(** City at a position / position of a city; O(1) (the two-level
    [city_at] is O(log √n)). *)
val city_at : t -> int -> int

val pos : t -> int -> int

(** Tour successor / predecessor of a city; O(1). *)
val succ : t -> int -> int

val pred : t -> int -> int

(** Replace the tour wholesale (same length). *)
val set_tour : t -> int array -> unit

(** Extract the tour as a position → city array (copied). *)
val to_array : t -> int array

(** [reverse t l r] reverses the cyclic position range [l..r]
    (inclusive): O(range) flat, O(√n) amortized two-level. *)
val reverse : t -> int -> int -> unit

(** The four pure-3-opt reconnection types (DESIGN.md §6): with cuts
    after positions [pi], [pi+jj], [pi+kk], segment 1 = offsets
    [1..jj] from [pi] and segment 2 = offsets [jj+1..kk], the window
    becomes T3 = [rev s1, rev s2], T4 = [s2, s1], T5 = [s2, rev s1],
    T6 = [rev s2, s1]. *)
type reconnection = T3 | T4 | T5 | T6

(** [reconnect t ~pi ~jj ~kk ty] applies a reconnection.  The flat
    code buffers only the shorter segment (the 2-opt shorter-side
    check applied to the 3-opt cases) and is byte-identical to the
    reversal sequences it replaces; the two-level code replays the
    reversal sequences at O(√n) each. *)
val reconnect : t -> pi:int -> jj:int -> kk:int -> reconnection -> unit

(** Structure statistics (1 / 0 / 0 on the flat arrays). *)
val segments : t -> int

val splits : t -> int
val rebalances : t -> int
