(** Karp's patching algorithm for the directed TSP: solve the assignment
    problem, then repeatedly patch the two largest cycles with the
    cheapest 2-exchange.  The AP-based rival method the paper's appendix
    argues against on branch-alignment instances. *)

(** A tour and its cost. *)
val solve : Dtsp.t -> int array * int
