(** Exact directed TSP by Held–Karp dynamic programming, O(n²·2ⁿ) —
    certifies optima on small instances. *)

(** Largest instance {!solve} accepts (18). *)
val max_n : int

(** Optimal directed tour (starting at city 0) and its cost.
    @raise Invalid_argument if [n > max_n]. *)
val solve : Dtsp.t -> int array * int

(** Just the cost part of {!solve}. *)
val optimal_cost : Dtsp.t -> int
