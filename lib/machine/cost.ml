(** The block-cost function: the single source of truth shared by the
    DTSP reduction, the analytic penalty evaluator, and the pipeline
    simulator.

    Section 2.2 of the paper defines the cost of laying block [X]
    immediately after block [B] as

    {v cost(B,X) = C_BX·p_NN + I_BX·p_TN + Σ_{B'≠X} (C_BB'·p_TT + I_BB'·p_NT) v}

    where [C]/[I] are the correctly/incorrectly predicted transfer counts.
    Under per-branch static prediction (always predict the most common CFG
    successor observed during training) this specializes to the per-kind
    penalties of {!Penalties}.  Fixup unconditional jumps — inserted when
    neither arm of a conditional is the layout successor — count as extra
    [uncond_taken] cycles on the arm routed through them, and the cheaper
    of the two possible routings is chosen (DESIGN.md §6). *)

open Ba_cfg

(** Classification of a single dynamic control transfer, for counter
    breakdowns. *)
type kind =
  | K_fall  (** straight-line execution, no CTI *)
  | K_uncond  (** unconditional jump (including fixup jumps) *)
  | K_cond_fall  (** conditional falls through, correctly predicted *)
  | K_cond_taken  (** conditional taken, correctly predicted: misfetch *)
  | K_cond_mispredict  (** conditional mispredict *)
  | K_multi_correct  (** indirect branch to predicted target *)
  | K_multi_mispredict  (** indirect branch elsewhere *)

let kind_to_string = function
  | K_fall -> "fall"
  | K_uncond -> "uncond"
  | K_cond_fall -> "cond-fall"
  | K_cond_taken -> "cond-taken"
  | K_cond_mispredict -> "cond-mispredict"
  | K_multi_correct -> "multi-correct"
  | K_multi_mispredict -> "multi-mispredict"

(** [effective_prediction rt ~predicted] resolves the statically predicted
    destination for a realized conditional or indirect branch.  A missing
    or stale prediction (block never executed during training) defaults to
    the fall-through arm for conditionals and to the first table entry for
    indirect branches — the classic forward-not-taken static default. *)
let effective_prediction (rt : Layout.rterm) ~(predicted : int option) =
  match rt with
  | Layout.R_cond { taken; fall; _ } -> (
      match predicted with
      | Some x when x = taken || x = fall -> x
      | _ -> fall)
  | Layout.R_multi { targets } -> (
      match predicted with
      | Some x when Array.exists (Int.equal x) targets -> x
      | _ -> targets.(0))
  | _ -> invalid_arg "Cost.effective_prediction: not a predicted branch"

(** [transfer p rt ~predicted ~dest] is the kind and the penalty in cycles
    of one dynamic transfer to [dest] through realized terminator [rt],
    given the statically predicted successor [predicted].

    For a fixup-routed conditional fall arm, the penalty includes the
    inserted jump's [uncond_taken] cycles; the mispredict/fall-correct
    classification refers to the conditional itself.

    @raise Invalid_argument if [dest] is not a destination of [rt], or if
    [rt] is [R_exit]. *)
let transfer (p : Penalties.t) (rt : Layout.rterm) ~(predicted : int option)
    ~(dest : int) : kind * int =
  match rt with
  | Layout.R_fall l ->
      if dest <> l then invalid_arg "Cost.transfer: fall to wrong block";
      (K_fall, 0)
  | Layout.R_jump l ->
      if dest <> l then invalid_arg "Cost.transfer: jump to wrong block";
      (K_uncond, p.uncond_taken)
  | Layout.R_exit -> invalid_arg "Cost.transfer: transfer out of exit block"
  | Layout.R_cond { taken; fall; via_fixup } ->
      let pred = effective_prediction rt ~predicted in
      if dest = taken then
        if pred = taken then (K_cond_taken, p.cond_taken_correct)
        else (K_cond_mispredict, p.cond_mispredict)
      else if dest = fall then
        let fixup_extra = if via_fixup then p.uncond_taken else 0 in
        if pred = fall then (K_cond_fall, p.cond_fall_correct + fixup_extra)
        else (K_cond_mispredict, p.cond_mispredict + fixup_extra)
      else invalid_arg "Cost.transfer: conditional to non-successor"
  | Layout.R_multi { targets } ->
      if not (Array.exists (Int.equal dest) targets) then
        invalid_arg "Cost.transfer: multiway to non-successor";
      let pred = effective_prediction rt ~predicted in
      if dest = pred then (K_multi_correct, p.multi_correct)
      else (K_multi_mispredict, p.multi_mispredict)

(** [transfer_penalty] is [snd (transfer ...)]. *)
let transfer_penalty p rt ~predicted ~dest = snd (transfer p rt ~predicted ~dest)

(** [rterm_cost p rt ~predicted ~freqs] is the total penalty in cycles of
    executing realized terminator [rt] with the given per-destination
    transfer counts: [Σ freq(d) × transfer_penalty d].  Destinations with
    zero frequency contribute nothing.  [freqs] may aggregate duplicate
    multiway targets; keys must be CFG successors. *)
let rterm_cost p (rt : Layout.rterm) ~(predicted : int option)
    ~(freqs : (int * int) array) : int =
  match rt with
  | Layout.R_exit -> 0
  | Layout.R_multi { targets } when Array.length targets > 8 ->
      (* wide jump tables: same result and the same non-successor
         validation as the generic path below, but O(targets + freqs)
         instead of an O(targets) membership scan per entry — a
         25 000-arm dispatch block would otherwise cost O(targets²) *)
      let pred = effective_prediction rt ~predicted in
      let member = Hashtbl.create (Array.length targets) in
      Array.iter (fun t -> Hashtbl.replace member t ()) targets;
      Array.fold_left
        (fun acc (dest, n) ->
          if n = 0 then acc
          else if not (Hashtbl.mem member dest) then
            invalid_arg "Cost.transfer: multiway to non-successor"
          else
            acc
            + n
              * (if dest = pred then p.Penalties.multi_correct
                 else p.Penalties.multi_mispredict))
        0 freqs
  | _ ->
      Array.fold_left
        (fun acc (dest, n) ->
          if n = 0 then acc
          else acc + (n * transfer_penalty p rt ~predicted ~dest))
        0 freqs

(** [realize_term p term ~succ ~predicted ~freqs] decides how to implement
    [term] when its layout successor is [succ] ([None] at the end of the
    layout), using the {e training} profile ([predicted], [freqs]) to pick
    the cheaper fixup arrangement when neither conditional arm is the
    layout successor.  The resulting realized terminator can then be
    costed against a different (testing) profile for cross-validation. *)
let realize_term p (term : Block.terminator) ~(succ : int option)
    ~(predicted : int option) ~(freqs : (int * int) array) : Layout.rterm =
  match term with
  | Block.Exit -> Layout.R_exit
  | Block.Goto l -> (
      match succ with
      | Some s when s = l -> Layout.R_fall l
      | _ -> Layout.R_jump l)
  | Block.Branch { t; f } -> (
      match succ with
      | Some s when s = t -> Layout.R_cond { taken = f; fall = t; via_fixup = false }
      | Some s when s = f -> Layout.R_cond { taken = t; fall = f; via_fixup = false }
      | _ ->
          (* Neither arm follows in the layout: one arm takes the branch
             directly, the other goes through an inserted jump.  Choose
             the arrangement that is cheaper under the training profile. *)
          let a = Layout.R_cond { taken = t; fall = f; via_fixup = true } in
          let b = Layout.R_cond { taken = f; fall = t; via_fixup = true } in
          if rterm_cost p a ~predicted ~freqs <= rterm_cost p b ~predicted ~freqs
          then a
          else b)
  | Block.Multiway ts -> Layout.R_multi { targets = ts }

(** [edge_cost p term ~succ ~predicted ~freqs] is the same-profile cost of
    giving the block layout successor [succ]: realize with the profile,
    then cost with the same profile.  This is exactly the DTSP edge weight
    of Section 2.2. *)
let edge_cost p term ~succ ~predicted ~freqs =
  let rt = realize_term p term ~succ ~predicted ~freqs in
  rterm_cost p rt ~predicted ~freqs

(** [realize p g ~order ~predicted ~freqs] realizes a whole layout:
    chooses each block's realized terminator given its layout successor
    and the training profile, and materializes the item sequence
    (including fixup jumps).  [predicted.(l)] and [freqs l] give the
    training prediction and transfer counts of block [l]. *)
let realize p (g : Cfg.t) ~(order : Layout.order)
    ~(predicted : int option array) ~(freqs : int -> (int * int) array) :
    Layout.realized =
  let lsucc = Layout.layout_successor order in
  let terms =
    Array.init (Cfg.n_blocks g) (fun l ->
        realize_term p (Cfg.block g l).Block.term ~succ:lsucc.(l)
          ~predicted:predicted.(l) ~freqs:(freqs l))
  in
  { Layout.order; terms; items = Layout.build_items order terms }
