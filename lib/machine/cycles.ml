(** End-to-end execution-time model.

    The simulated running time of a program under a given layout is

    {v cycles = instructions issued
             + control penalty cycles        (pipeline simulator)
             + I-cache misses × miss penalty (I-cache simulator)
             + calls × call overhead v}

    with a base throughput of one instruction per cycle.  This is the
    stand-in for the paper's AlphaStation wall-clock measurements: the
    penalty term reproduces the analytic model, and the I-cache term
    reproduces the "unmodeled caching benefits" the paper discovered with
    IPROBE (Section 4.1). *)

open Ba_cfg

type config = {
  icache : Icache.config;
  call_overhead : int;  (** cycles per procedure call+return pair *)
}

let default = { icache = Icache.alpha_l1; call_overhead = 3 }

type result = {
  instrs : int;  (** instructions issued, fixup jumps included *)
  penalty_cycles : int;
  icache_misses : int;
  icache_accesses : int;
  calls : int;
  cycles : int;  (** total modelled cycles *)
  counters : Pipeline.counters;  (** full penalty breakdown *)
}

(** [make_sink ?config m ~cfgs ~ctxs ~addr] builds a trace sink that
    simulates the whole machine: penalties, I-cache and issue slots.
    [cfgs.(fid)], [ctxs.(fid)] and [addr.procs.(fid)] describe procedure
    [fid].  Returns the sink and a [result] accessor to call after the
    trace has been fed.  Simulation always runs on the model's physical
    penalty record, whatever its layout objective. *)
let make_sink ?(config = default) (m : Model.t) ~(cfgs : Cfg.t array)
    ~(ctxs : Pipeline.proc_ctx array) ~(addr : Addr.t) :
    Trace.sink * (unit -> result) =
  let p = m.Model.penalties in
  let n_procs = Array.length cfgs in
  if Array.length ctxs <> n_procs || Array.length addr.Addr.procs <> n_procs
  then invalid_arg "Cycles.make_sink: inconsistent program description";
  let counters = Pipeline.create_counters ~n_procs in
  let cache = Icache.create config.icache in
  let instrs = ref 0 in
  let calls = ref 0 in
  let sink =
    Trace.invocation_walker
      ~on_enter:(fun _ -> incr calls)
      ~on_block:(fun ~fid ~bid ~prev ->
        let pa = addr.Addr.procs.(fid) in
        (* issue + fetch the block itself *)
        instrs := !instrs + pa.Addr.block_len.(bid);
        ignore
          (Icache.touch_range cache ~addr:pa.Addr.block_addr.(bid)
             ~ninstr:pa.Addr.block_len.(bid));
        match prev with
        | None -> ()
        | Some src ->
            Pipeline.record counters p ctxs ~fid ~src ~dst:bid;
            (* a fixup-routed transfer also executes the inserted jump *)
            (match ctxs.(fid).Pipeline.terms.(src) with
            | Layout.R_cond { fall; via_fixup = true; _ } when fall = bid -> (
                incr instrs;
                match pa.Addr.fixup_addr.(src) with
                | Some a -> ignore (Icache.touch_range cache ~addr:a ~ninstr:1)
                | None -> invalid_arg "Cycles: fixup transfer without fixup address")
            | _ -> ()))
      ()
  in
  let result () =
    let misses = Icache.misses cache in
    {
      instrs = !instrs;
      penalty_cycles = counters.Pipeline.penalty_cycles;
      icache_misses = misses;
      icache_accesses = Icache.accesses cache;
      calls = !calls;
      cycles =
        !instrs + counters.Pipeline.penalty_cycles
        + (misses * config.icache.Icache.miss_penalty)
        + (!calls * config.call_overhead);
      counters;
    }
  in
  (sink, result)

let pp_result ppf r =
  Fmt.pf ppf
    "instrs %d + penalties %d + icache %d misses (%d accesses) + %d calls = %d cycles"
    r.instrs r.penalty_cycles r.icache_misses r.icache_accesses r.calls r.cycles
