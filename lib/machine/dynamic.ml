(** Trace-driven penalty simulation under {e dynamic} branch prediction.

    The static model ({!Pipeline}) charges penalties against per-branch
    static predictions derived from the training profile; this simulator
    instead runs the realized program through {!Predictor} hardware.
    Branch identities are their instruction addresses under the layout's
    {!Addr} map, so two alignments of the same program can differ not
    only in taken/fall-through mix but also in BHT/BTB aliasing — the
    effect the paper's footnote 6 anticipates.

    Penalty mapping (same {!Penalties} cycles as the static model):
    - conditional predicted correctly: fall-through free, taken pays the
      misfetch;
    - conditional mispredicted: full mispredict cost, either direction;
    - fixup-routed fall arms additionally pay the inserted jump;
    - indirect branch: BTB hit with the right target pays
      [multi_correct], anything else [multi_mispredict];
    - unconditional jumps always pay [uncond_taken]. *)

open Ba_cfg

type counters = {
  mutable transfers : int;
  mutable penalty_cycles : int;
  mutable cond_mispredicts : int;
  mutable cond_correct : int;
  mutable btb_misses : int;
  mutable btb_hits : int;
}

let create_counters () =
  {
    transfers = 0;
    penalty_cycles = 0;
    cond_mispredicts = 0;
    cond_correct = 0;
    btb_misses = 0;
    btb_hits = 0;
  }

(** [branch_addr pa ~bid] is the address of the CTI ending block [bid]:
    its last instruction slot. *)
let branch_addr (pa : Addr.proc) ~bid =
  pa.Addr.block_addr.(bid) + (max 0 (pa.Addr.block_len.(bid) - 1))

(** [record c p pred ~pa ~terms ~src ~dst] accounts one transfer under
    dynamic prediction. *)
let record (c : counters) (p : Penalties.t) (pred : Predictor.t)
    ~(pa : Addr.proc) ~(terms : Layout.rterm array) ~src ~dst =
  c.transfers <- c.transfers + 1;
  let cycles =
    match terms.(src) with
    | Layout.R_fall l ->
        if dst <> l then invalid_arg "Dynamic: fall to wrong block";
        0
    | Layout.R_jump l ->
        if dst <> l then invalid_arg "Dynamic: jump to wrong block";
        p.Penalties.uncond_taken
    | Layout.R_exit -> invalid_arg "Dynamic: transfer out of exit"
    | Layout.R_cond { taken; fall; via_fixup } ->
        let addr = branch_addr pa ~bid:src in
        let actual_taken = dst = taken in
        if (not actual_taken) && dst <> fall then
          invalid_arg "Dynamic: conditional to non-successor";
        let predicted_taken = Predictor.predict_taken pred ~addr in
        Predictor.update_cond pred ~addr ~taken:actual_taken;
        let fixup_extra =
          if (not actual_taken) && via_fixup then p.Penalties.uncond_taken else 0
        in
        if predicted_taken = actual_taken then begin
          c.cond_correct <- c.cond_correct + 1;
          (if actual_taken then p.Penalties.cond_taken_correct
           else p.Penalties.cond_fall_correct)
          + fixup_extra
        end
        else begin
          c.cond_mispredicts <- c.cond_mispredicts + 1;
          p.Penalties.cond_mispredict + fixup_extra
        end
    | Layout.R_multi { targets } ->
        if not (Array.exists (Int.equal dst) targets) then
          invalid_arg "Dynamic: multiway to non-successor";
        let addr = branch_addr pa ~bid:src in
        let target_addr = pa.Addr.block_addr.(dst) in
        let hit =
          match Predictor.btb_lookup pred ~addr with
          | Some t -> t = target_addr
          | None -> false
        in
        Predictor.btb_update pred ~addr ~target:target_addr;
        if hit then begin
          c.btb_hits <- c.btb_hits + 1;
          p.Penalties.multi_correct
        end
        else begin
          c.btb_misses <- c.btb_misses + 1;
          p.Penalties.multi_mispredict
        end
  in
  c.penalty_cycles <- c.penalty_cycles + cycles

(** [make_sink ?config p ~realized ~addr] builds a trace sink simulating
    dynamic prediction over the whole program (one predictor shared by
    all procedures, like real hardware).  Returns live counters and the
    sink. *)
let make_sink ?(config = Predictor.default) (p : Penalties.t)
    ~(realized : Layout.realized array) ~(addr : Addr.t) :
    counters * Trace.sink =
  let c = create_counters () in
  let pred = Predictor.create config in
  let sink =
    Trace.invocation_walker
      ~on_block:(fun ~fid ~bid ~prev ->
        match prev with
        | None -> ()
        | Some src ->
            record c p pred ~pa:addr.Addr.procs.(fid)
              ~terms:realized.(fid).Layout.terms ~src ~dst:bid)
      ()
  in
  (c, sink)
