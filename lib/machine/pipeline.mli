(** Trace-driven pipeline penalty simulator under static prediction —
    event-by-event counting with the same {!Cost.transfer} function as
    the analytic model, so on matching training/testing data the
    simulated total equals the analytic total. *)

open Ba_cfg

(** Per-procedure context: realized terminators + static predictions. *)
type proc_ctx = {
  terms : Layout.rterm array;
  predicted : int option array;
}

val ctx_of_realized : Layout.realized -> predicted:int option array -> proc_ctx

val n_kinds : int
val kind_index : Cost.kind -> int
val all_kinds : Cost.kind list

type counters = {
  mutable transfers : int;
  mutable penalty_cycles : int;
  by_kind_count : int array;
  by_kind_cycles : int array;
  per_proc_cycles : int array;
  mutable fixup_transfers : int;
}

val create_counters : n_procs:int -> counters

(** Account one intraprocedural transfer. *)
val record :
  counters -> Penalties.t -> proc_ctx array -> fid:int -> src:int -> dst:int -> unit

(** [make_sink p ctxs] builds a trace sink accumulating penalty counters
    for a program whose procedure [fid] runs under [ctxs.(fid)]. *)
val make_sink : Penalties.t -> proc_ctx array -> counters * Trace.sink

val pp_counters : Format.formatter -> counters -> unit
