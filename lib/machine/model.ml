open Ba_cfg

type ext_tsp = {
  forward_window : int;
  backward_window : int;
  fallthrough_weight : int;
  forward_weight : int;
  backward_weight : int;
  scale : int;
  instr_bytes : int;
}

(* Windows and relative weights follow Newell–Pupyrev (forward 1024 B,
   backward 640 B, jump weight 0.1× a fall-through); weights are stored
   ×[scale] so every score stays an exact integer. *)
let default_ext_tsp =
  {
    forward_window = 1024;
    backward_window = 640;
    fallthrough_weight = 1000;
    forward_weight = 100;
    backward_weight = 100;
    scale = 1000;
    instr_bytes = Icache.alpha_l1.Icache.instr_bytes;
  }

type objective = Control_penalty | Ext_tsp of ext_tsp

type t = { name : string; penalties : Penalties.t; objective : objective }

let alpha21164 =
  {
    name = "alpha21164";
    penalties = Penalties.alpha_21164;
    objective = Control_penalty;
  }

let deep_pipeline =
  {
    name = "deep-pipeline";
    penalties = Penalties.deep_pipeline;
    objective = Control_penalty;
  }

let free_fetch =
  {
    name = "free-fetch";
    penalties = Penalties.free_fetch;
    objective = Control_penalty;
  }

(* Ext-TSP only changes the layout objective; realization and the
   simulated machine stay the Alpha so its layouts remain comparable
   cycle-for-cycle with the paper's. *)
let ext_tsp ?(window = default_ext_tsp.forward_window) () =
  {
    name = Printf.sprintf "ext-tsp:%d" window;
    penalties = Penalties.alpha_21164;
    objective = Ext_tsp { default_ext_tsp with forward_window = window };
  }

let default = alpha21164
let to_string m = m.name

let known =
  [ "alpha21164"; "deep-pipeline"; "free-fetch"; "ext-tsp"; "ext-tsp:WINDOW" ]

let find s =
  match s with
  | "alpha21164" -> Some alpha21164
  | "deep-pipeline" -> Some deep_pipeline
  | "free-fetch" -> Some free_fetch
  | "ext-tsp" -> Some (ext_tsp ())
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "ext-tsp" -> (
          let arg = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt arg with
          | Some w when w > 0 -> Some (ext_tsp ~window:w ())
          | _ -> None)
      | _ -> None)

let ext_tsp_params m =
  match m.objective with Ext_tsp e -> e | Control_penalty -> default_ext_tsp

(* --- objective cost ------------------------------------------------- *)

let total_freq freqs = Array.fold_left (fun acc (_, n) -> acc + n) 0 freqs

let freq_of freqs l =
  Array.fold_left (fun acc (d, n) -> if d = l then acc + n else acc) 0 freqs

(* Transfers out of [term] that a layout successor [succ] realizes as a
   fall-through.  Indirect branches never fall through. *)
let fallthrough_freq term ~succ ~freqs =
  match (term, succ) with
  | Block.Goto l, Some s when s = l -> freq_of freqs l
  | Block.Branch { t; f }, Some s when s = t || s = f -> freq_of freqs s
  | _ -> 0

let edge_cost m term ~succ ~predicted ~freqs =
  match m.objective with
  | Control_penalty -> Cost.edge_cost m.penalties term ~succ ~predicted ~freqs
  | Ext_tsp e ->
      (* Minimization form of the Ext-TSP fall-through gain: pay the
         fall-through weight for every dynamic transfer the adjacency
         does NOT realize as a fall-through.  The jump-window terms are
         address-dependent and thus not pairwise; they are scored
         post-hoc by {!score_proc}.  A non-successor [succ] scores
         exactly like [None], preserving the sparse row-default
         invariant of the reduction. *)
      e.fallthrough_weight * (total_freq freqs - fallthrough_freq term ~succ ~freqs)

(* --- post-hoc Ext-TSP score over realized addresses ------------------ *)

let jump_weight e ~src ~dst =
  let src_b = src * e.instr_bytes and dst_b = dst * e.instr_bytes in
  if dst_b > src_b then
    let d = dst_b - src_b in
    if d <= e.forward_window then
      e.forward_weight * (e.forward_window - d) / e.forward_window
    else 0
  else
    let d = src_b - dst_b in
    if d <= e.backward_window then
      e.backward_weight * (e.backward_window - d) / e.backward_window
    else 0

let score_proc e ~(proc : Addr.proc) ~(realized : Layout.realized) ~freqs =
  let n = Array.length realized.Layout.terms in
  (* address of the branch instruction ending block [l] (its last
     instruction — R_fall blocks have no CTI and never reach here) *)
  let branch_addr l = proc.Addr.block_addr.(l) + proc.Addr.block_len.(l) - 1 in
  let score = ref 0 in
  for l = 0 to n - 1 do
    let rt = realized.Layout.terms.(l) in
    Array.iter
      (fun (dst, count) ->
        if count > 0 then
          let w =
            match rt with
            | Layout.R_exit | Layout.R_multi _ -> 0
            | Layout.R_fall _ -> e.fallthrough_weight
            | Layout.R_jump _ ->
                jump_weight e ~src:(branch_addr l)
                  ~dst:proc.Addr.block_addr.(dst)
            | Layout.R_cond { taken; fall = _; via_fixup } ->
                if dst = taken then
                  jump_weight e ~src:(branch_addr l)
                    ~dst:proc.Addr.block_addr.(dst)
                else if via_fixup then
                  match proc.Addr.fixup_addr.(l) with
                  | Some a ->
                      jump_weight e ~src:a ~dst:proc.Addr.block_addr.(dst)
                  | None -> 0
                else e.fallthrough_weight
          in
          score := !score + (count * w))
      (freqs l)
  done;
  !score
