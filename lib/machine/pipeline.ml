(** Trace-driven pipeline penalty simulator.

    Replays an execution trace against a realized layout and counts the
    control-penalty cycles event by event, using exactly the same
    {!Cost.transfer} function as the analytic model.  On matching
    training/testing data the simulated total equals the analytic total
    (a property the test suite asserts); its value is that it validates
    the analytic model and supplies per-kind breakdowns. *)

open Ba_cfg

(** Per-procedure context: how each block's terminator was realized and
    which successor the static predictor favours. *)
type proc_ctx = {
  terms : Layout.rterm array;
  predicted : int option array;
}

(** [ctx_of_realized r ~predicted] packages a realized layout. *)
let ctx_of_realized (r : Layout.realized) ~predicted =
  { terms = r.Layout.terms; predicted }

let n_kinds = 7

let kind_index : Cost.kind -> int = function
  | Cost.K_fall -> 0
  | Cost.K_uncond -> 1
  | Cost.K_cond_fall -> 2
  | Cost.K_cond_taken -> 3
  | Cost.K_cond_mispredict -> 4
  | Cost.K_multi_correct -> 5
  | Cost.K_multi_mispredict -> 6

let all_kinds =
  Cost.
    [
      K_fall;
      K_uncond;
      K_cond_fall;
      K_cond_taken;
      K_cond_mispredict;
      K_multi_correct;
      K_multi_mispredict;
    ]

type counters = {
  mutable transfers : int;  (** intra-invocation control transfers seen *)
  mutable penalty_cycles : int;  (** total penalty cycles *)
  by_kind_count : int array;  (** transfer count per {!Cost.kind} *)
  by_kind_cycles : int array;  (** penalty cycles per {!Cost.kind} *)
  per_proc_cycles : int array;  (** penalty cycles per procedure *)
  mutable fixup_transfers : int;
      (** transfers that ran through an inserted fixup jump *)
}

let create_counters ~n_procs =
  {
    transfers = 0;
    penalty_cycles = 0;
    by_kind_count = Array.make n_kinds 0;
    by_kind_cycles = Array.make n_kinds 0;
    per_proc_cycles = Array.make n_procs 0;
    fixup_transfers = 0;
  }

(** [record c p ctxs ~fid ~src ~dst] accounts one intraprocedural transfer
    from block [src] to block [dst] of procedure [fid]. *)
let record (c : counters) (p : Penalties.t) (ctxs : proc_ctx array) ~fid ~src
    ~dst =
  let ctx = ctxs.(fid) in
  let rt = ctx.terms.(src) in
  let kind, cycles = Cost.transfer p rt ~predicted:ctx.predicted.(src) ~dest:dst in
  let ki = kind_index kind in
  c.transfers <- c.transfers + 1;
  c.penalty_cycles <- c.penalty_cycles + cycles;
  c.by_kind_count.(ki) <- c.by_kind_count.(ki) + 1;
  c.by_kind_cycles.(ki) <- c.by_kind_cycles.(ki) + cycles;
  c.per_proc_cycles.(fid) <- c.per_proc_cycles.(fid) + cycles;
  match rt with
  | Layout.R_cond { fall; via_fixup = true; _ } when dst = fall ->
      c.fixup_transfers <- c.fixup_transfers + 1
  | _ -> ()

(** [make_sink p ctxs] builds a trace sink that accumulates penalty
    counters for a program whose procedure [fid] runs under
    [ctxs.(fid)].  Returns the (live) counters and the sink. *)
let make_sink (p : Penalties.t) (ctxs : proc_ctx array) :
    counters * Trace.sink =
  let c = create_counters ~n_procs:(Array.length ctxs) in
  let sink =
    Trace.invocation_walker
      ~on_block:(fun ~fid ~bid ~prev ->
        match prev with
        | None -> ()
        | Some src -> record c p ctxs ~fid ~src ~dst:bid)
      ()
  in
  (c, sink)

let pp_counters ppf c =
  Fmt.pf ppf "@[<v>transfers: %d, penalty cycles: %d, via fixup: %d@,"
    c.transfers c.penalty_cycles c.fixup_transfers;
  List.iter
    (fun k ->
      let i = kind_index k in
      if c.by_kind_count.(i) > 0 then
        Fmt.pf ppf "%-18s %10d transfers %10d cycles@," (Cost.kind_to_string k)
          c.by_kind_count.(i) c.by_kind_cycles.(i))
    all_kinds;
  Fmt.pf ppf "@]"
