(** Dynamic branch-prediction hardware: 2-bit saturating-counter branch
    history table (bimodal or gshare) and a direct-mapped branch target
    buffer.  Tables are indexed by instruction address, so realigning a
    program changes which branches alias — the paper's footnote 6. *)

type config = {
  bht_entries : int;  (** power of two *)
  history_bits : int;  (** 0 = bimodal; n > 0 = gshare *)
  btb_entries : int;  (** power of two *)
}

(** 2K-entry bimodal BHT, 256-entry BTB. *)
val default : config

(** gshare variant with 8 history bits. *)
val gshare : config

type t

(** @raise Invalid_argument unless table sizes are powers of two. *)
val create : config -> t

val reset : t -> unit

(** Direction prediction for the conditional branch at [addr]. *)
val predict_taken : t -> addr:int -> bool

(** Train the BHT (and shift global history) after the branch resolves. *)
val update_cond : t -> addr:int -> taken:bool -> unit

(** Predicted target of the indirect branch at [addr], if cached. *)
val btb_lookup : t -> addr:int -> int option

(** Record the observed target (direct-mapped, always replaces). *)
val btb_update : t -> addr:int -> target:int -> unit
