(** Direct-mapped instruction-cache simulator.

    The paper observes (Section 4.1) that good branch alignments also
    improve I-cache behaviour — an effect their analytic penalty model
    does not capture but their hardware measurements do.  This simulator
    supplies that term: the default configuration is the Alpha 21164's
    first-level I-cache, 8 KB direct-mapped with 32-byte lines. *)

type config = {
  size_bytes : int;  (** total capacity *)
  line_bytes : int;  (** line size *)
  instr_bytes : int;  (** bytes per instruction (4 on Alpha) *)
  miss_penalty : int;  (** cycles per miss (L2 hit latency) *)
}

(** Alpha 21164 L1 I-cache: 8 KB, direct-mapped, 32-byte lines. *)
let alpha_l1 =
  { size_bytes = 8192; line_bytes = 32; instr_bytes = 4; miss_penalty = 10 }

type t = {
  config : config;
  n_lines : int;
  tags : int array;  (** tag per line; -1 = invalid *)
  mutable accesses : int;
  mutable misses : int;
}

(** [create config] builds an empty cache.
    @raise Invalid_argument if the geometry is not positive and
    power-of-two aligned. *)
let create config =
  let { size_bytes; line_bytes; instr_bytes; _ } = config in
  if size_bytes <= 0 || line_bytes <= 0 || instr_bytes <= 0 then
    invalid_arg "Icache.create: non-positive geometry";
  if size_bytes mod line_bytes <> 0 then
    invalid_arg "Icache.create: size not a multiple of line size";
  {
    config;
    n_lines = size_bytes / line_bytes;
    tags = Array.make (size_bytes / line_bytes) (-1);
    accesses = 0;
    misses = 0;
  }

(** Reset contents and counters. *)
let reset c =
  Array.fill c.tags 0 c.n_lines (-1);
  c.accesses <- 0;
  c.misses <- 0

(** [touch_line c ~line] accesses one cache line (line number, not byte
    address) and returns [true] on a miss. *)
let touch_line c ~line =
  let idx = line mod c.n_lines in
  let tag = line / c.n_lines in
  c.accesses <- c.accesses + 1;
  if c.tags.(idx) = tag then false
  else begin
    c.tags.(idx) <- tag;
    c.misses <- c.misses + 1;
    true
  end

(** [touch_range c ~addr ~ninstr] fetches [ninstr] instructions starting
    at instruction address [addr] (in instruction units) and returns the
    number of line misses.  A zero-length range touches nothing. *)
let touch_range c ~addr ~ninstr =
  if ninstr <= 0 then 0
  else begin
    let ipl = c.config.line_bytes / c.config.instr_bytes in
    let first = addr / ipl and last = (addr + ninstr - 1) / ipl in
    let misses = ref 0 in
    for line = first to last do
      if touch_line c ~line then incr misses
    done;
    !misses
  end

let accesses c = c.accesses
let misses c = c.misses

(** Miss ratio over all accesses so far (0 if nothing was accessed). *)
let miss_ratio c =
  if c.accesses = 0 then 0.0 else float_of_int c.misses /. float_of_int c.accesses
