(** Dynamic branch-prediction hardware: a branch history table of 2-bit
    saturating counters (bimodal, or gshare when [history_bits] > 0)
    [25] and a direct-mapped branch target buffer [16].

    The paper's conclusions sketch exactly this as future work: "we could
    perform a trace-driven simulation of the branch prediction hardware
    in the target machine to derive more accurate frequencies of correct
    and incorrect predictions", noting that such a simulation captures
    aliasing effects [32] that change with the layout.  Tables here are
    indexed by instruction address, so realigning the program really does
    change which branches alias — the effect their footnote 6 predicts
    falls out of the model. *)

type config = {
  bht_entries : int;  (** power of two *)
  history_bits : int;  (** 0 = bimodal; n>0 = gshare with n history bits *)
  btb_entries : int;  (** power of two *)
}

(** A 2K-entry bimodal BHT with a 256-entry BTB, roughly the flavour of
    mid-90s hardware. *)
let default = { bht_entries = 2048; history_bits = 0; btb_entries = 256 }

(** A gshare variant for the ablation benches. *)
let gshare = { default with history_bits = 8 }

type t = {
  config : config;
  counters : int array;  (** 2-bit saturating: 0,1 = not taken; 2,3 = taken *)
  mutable history : int;  (** global branch history (gshare) *)
  btb_tag : int array;  (** -1 = invalid *)
  btb_target : int array;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create config =
  if not (is_pow2 config.bht_entries && is_pow2 config.btb_entries) then
    invalid_arg "Predictor.create: table sizes must be powers of two";
  if config.history_bits < 0 || config.history_bits > 24 then
    invalid_arg "Predictor.create: bad history width";
  {
    config;
    counters = Array.make config.bht_entries 1 (* weakly not-taken *);
    history = 0;
    btb_tag = Array.make config.btb_entries (-1);
    btb_target = Array.make config.btb_entries 0;
  }

let reset t =
  Array.fill t.counters 0 (Array.length t.counters) 1;
  t.history <- 0;
  Array.fill t.btb_tag 0 (Array.length t.btb_tag) (-1)

let bht_index t ~addr =
  let h = t.history land ((1 lsl t.config.history_bits) - 1) in
  (addr lxor h) land (t.config.bht_entries - 1)

(** [predict_taken t ~addr] reads the direction prediction for the
    conditional branch at instruction address [addr]. *)
let predict_taken t ~addr = t.counters.(bht_index t ~addr) >= 2

(** [update_cond t ~addr ~taken] trains the BHT (and shifts the global
    history) after the branch resolves. *)
let update_cond t ~addr ~taken =
  let i = bht_index t ~addr in
  let c = t.counters.(i) in
  t.counters.(i) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
  if t.config.history_bits > 0 then
    t.history <- (t.history lsl 1) lor (if taken then 1 else 0)

let btb_index t ~addr = addr land (t.config.btb_entries - 1)

(** [btb_lookup t ~addr] is the predicted target of the indirect branch
    at [addr], if the BTB holds an entry for it. *)
let btb_lookup t ~addr =
  let i = btb_index t ~addr in
  if t.btb_tag.(i) = addr then Some t.btb_target.(i) else None

(** [btb_update t ~addr ~target] records the observed target
    (direct-mapped, always replaces). *)
let btb_update t ~addr ~target =
  let i = btb_index t ~addr in
  t.btb_tag.(i) <- addr;
  t.btb_target.(i) <- target
