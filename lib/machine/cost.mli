(** The block-cost function: the single source of truth shared by the
    DTSP reduction, the analytic penalty evaluator and the pipeline
    simulator (Section 2.2 of the paper; fixup jumps included, with the
    cheaper of the two possible fixup routings chosen). *)

open Ba_cfg

(** Classification of a single dynamic control transfer. *)
type kind =
  | K_fall
  | K_uncond
  | K_cond_fall
  | K_cond_taken
  | K_cond_mispredict
  | K_multi_correct
  | K_multi_mispredict

val kind_to_string : kind -> string

(** Resolve the statically predicted destination of a realized
    conditional or indirect branch; a missing/stale prediction defaults
    to the fall arm (conditionals) or the first table entry (indirect).
    @raise Invalid_argument on other terminators. *)
val effective_prediction : Layout.rterm -> predicted:int option -> int

(** [transfer p rt ~predicted ~dest] is the kind and penalty cycles of
    one dynamic transfer to [dest] through [rt] given the static
    prediction.  Fixup-routed fall arms include the inserted jump's
    cost.
    @raise Invalid_argument if [dest] is not a destination of [rt]. *)
val transfer :
  Penalties.t -> Layout.rterm -> predicted:int option -> dest:int -> kind * int

(** [snd (transfer ...)]. *)
val transfer_penalty :
  Penalties.t -> Layout.rterm -> predicted:int option -> dest:int -> int

(** Total penalty of a realized terminator against per-destination
    transfer counts: [Σ freq(d) × transfer_penalty d]. *)
val rterm_cost :
  Penalties.t ->
  Layout.rterm ->
  predicted:int option ->
  freqs:(int * int) array ->
  int

(** [realize_term p term ~succ ~predicted ~freqs] decides how to
    implement [term] given layout successor [succ] ([None] at the end of
    the layout), choosing the cheaper fixup arrangement under the
    training profile. *)
val realize_term :
  Penalties.t ->
  Block.terminator ->
  succ:int option ->
  predicted:int option ->
  freqs:(int * int) array ->
  Layout.rterm

(** Same-profile cost of giving the block layout successor [succ] — the
    DTSP edge weight of Section 2.2. *)
val edge_cost :
  Penalties.t ->
  Block.terminator ->
  succ:int option ->
  predicted:int option ->
  freqs:(int * int) array ->
  int

(** Realize a whole layout against a training profile ([predicted.(l)]
    and [freqs l] give block [l]'s prediction and transfer counts). *)
val realize :
  Penalties.t ->
  Cfg.t ->
  order:Layout.order ->
  predicted:int option array ->
  freqs:(int -> (int * int) array) ->
  Layout.realized
