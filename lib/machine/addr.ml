(** Address assignment for realized layouts.

    Procedures are placed one after another in procedure-id order
    (intraprocedural alignment does not reorder procedures; the paper
    leaves interprocedural placement to future work).  Within a
    procedure, blocks and fixup jumps are placed in item order.  All
    addresses are in instruction units; multiply by
    [Icache.config.instr_bytes] for byte addresses. *)

open Ba_cfg

type proc = {
  block_addr : int array;  (** start address of each block, by label *)
  block_len : int array;
      (** instructions occupied by the block: body + realized terminator *)
  fixup_addr : int option array;
      (** address of the fixup jump inserted after block [l], if any *)
  code_end : int;  (** first address after this procedure *)
}

type t = {
  procs : proc array;
  total_instrs : int;  (** total code size of the program in instructions *)
}

(** [build ?proc_order layouts] assigns addresses to every block and
    fixup jump.  [layouts.(fid)] pairs each procedure's CFG with its
    realized layout.  Procedures are placed in [proc_order] (a
    permutation of the ids; defaults to id order — see
    [Ba_align.Proc_order] for the Pettis–Hansen ordering). *)
let build ?proc_order (layouts : (Cfg.t * Layout.realized) array) : t =
  let n = Array.length layouts in
  let proc_order =
    match proc_order with
    | None -> Array.init n (fun i -> i)
    | Some o ->
        if Array.length o <> n then invalid_arg "Addr.build: bad proc order";
        o
  in
  let cursor = ref 0 in
  let assign ((g : Cfg.t), (r : Layout.realized)) =
        let n = Cfg.n_blocks g in
        let block_addr = Array.make n (-1) in
        let block_len = Array.make n 0 in
        let fixup_addr = Array.make n None in
        Array.iter
          (fun item ->
            match item with
            | Layout.I_block l ->
                let len =
                  (Cfg.block g l).Block.size + Layout.rterm_instrs r.Layout.terms.(l)
                in
                block_addr.(l) <- !cursor;
                block_len.(l) <- len;
                cursor := !cursor + len
            | Layout.I_fixup { src; _ } ->
                fixup_addr.(src) <- Some !cursor;
                cursor := !cursor + 1)
          r.Layout.items;
        { block_addr; block_len; fixup_addr; code_end = !cursor }
  in
  (* assign in placement order, but keep the result indexed by fid *)
  let procs = Array.make n None in
  Array.iter
    (fun fid -> procs.(fid) <- Some (assign layouts.(fid)))
    proc_order;
  { procs = Array.map Option.get procs; total_instrs = !cursor }
