(** Direct-mapped instruction-cache simulator — supplies the "unmodeled
    caching benefits" term the paper measured with IPROBE (Section 4.1).
    The default geometry is the Alpha 21164 L1 I-cache. *)

type config = {
  size_bytes : int;
  line_bytes : int;
  instr_bytes : int;  (** bytes per instruction (4 on Alpha) *)
  miss_penalty : int;  (** cycles per miss *)
}

(** 8 KB, direct-mapped, 32-byte lines, 10-cycle miss. *)
val alpha_l1 : config

type t

(** @raise Invalid_argument on non-positive or misaligned geometry. *)
val create : config -> t

(** Clear contents and counters. *)
val reset : t -> unit

(** [touch_line c ~line] accesses one line; [true] on a miss. *)
val touch_line : t -> line:int -> bool

(** [touch_range c ~addr ~ninstr] fetches [ninstr] instructions starting
    at instruction address [addr]; returns the number of line misses. *)
val touch_range : t -> addr:int -> ninstr:int -> int

val accesses : t -> int
val misses : t -> int

(** Miss ratio over all accesses so far (0 when idle). *)
val miss_ratio : t -> float
