(** Address assignment for realized layouts.  Addresses are in
    instruction units; multiply by [Icache.config.instr_bytes] for
    bytes. *)

open Ba_cfg

type proc = {
  block_addr : int array;  (** start address of each block, by label *)
  block_len : int array;  (** body + realized terminator instructions *)
  fixup_addr : int option array;
      (** address of the fixup jump inserted after block [l], if any *)
  code_end : int;  (** first address after this procedure *)
}

type t = {
  procs : proc array;  (** indexed by procedure id *)
  total_instrs : int;  (** total program code size in instructions *)
}

(** [build ?proc_order layouts] assigns addresses to every block and
    fixup jump; [layouts.(fid)] pairs each procedure's CFG with its
    realized layout.  Procedures are placed in [proc_order] (defaults to
    id order; see [Ba_align.Proc_order]).
    @raise Invalid_argument if [proc_order] has the wrong length. *)
val build : ?proc_order:int array -> (Cfg.t * Layout.realized) array -> t
