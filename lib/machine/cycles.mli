(** End-to-end execution-time model: issue slots + control penalties +
    I-cache misses + call overhead — the stand-in for the paper's
    AlphaStation wall-clock measurements. *)

open Ba_cfg

type config = {
  icache : Icache.config;
  call_overhead : int;  (** cycles per call/return pair *)
}

val default : config

type result = {
  instrs : int;  (** instructions issued, fixup jumps included *)
  penalty_cycles : int;
  icache_misses : int;
  icache_accesses : int;
  calls : int;
  cycles : int;  (** total modelled cycles *)
  counters : Pipeline.counters;  (** full penalty breakdown *)
}

(** [make_sink ?config m ~cfgs ~ctxs ~addr] simulates the whole machine
    on the model's physical penalties; feed the trace into the sink,
    then call the accessor.
    @raise Invalid_argument on inconsistent program descriptions. *)
val make_sink :
  ?config:config ->
  Model.t ->
  cfgs:Cfg.t array ->
  ctxs:Pipeline.proc_ctx array ->
  addr:Addr.t ->
  Trace.sink * (unit -> result)

val pp_result : Format.formatter -> result -> unit
