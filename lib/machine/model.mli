(** Pluggable machine model: a named objective the whole stack is
    parametric over.

    A model bundles the physical penalty record used for realization and
    simulation ({!Penalties.t}) with the {e layout objective} the DTSP
    reduction minimizes.  The default [alpha21164] model reproduces the
    paper bit-for-bit; [ext-tsp] swaps the objective for the
    Mestre–Pupyrev–Umboh Ext-TSP score while keeping the Alpha machine
    for realization, so layouts from both eras are comparable on
    identical profiles.  See docs/MODELS.md. *)

open Ba_cfg

(** Ext-TSP parameters.  Distances are in bytes; weights are fixed-point
    integers ×[scale] so scores are exact and deterministic. *)
type ext_tsp = {
  forward_window : int;  (** max rewarded forward-jump distance, bytes *)
  backward_window : int;  (** max rewarded backward-jump distance, bytes *)
  fallthrough_weight : int;  (** weight of a fall-through transfer *)
  forward_weight : int;  (** peak weight of a zero-length forward jump *)
  backward_weight : int;  (** peak weight of a zero-length backward jump *)
  scale : int;  (** fixed-point denominator of the weights *)
  instr_bytes : int;  (** bytes per instruction for address→byte *)
}

(** Newell–Pupyrev defaults: 1024 B / 640 B windows, jumps worth 0.1× a
    fall-through, 4-byte instructions, scale 1000. *)
val default_ext_tsp : ext_tsp

type objective =
  | Control_penalty
      (** the paper's objective: penalty cycles at each terminator *)
  | Ext_tsp of ext_tsp
      (** maximize weighted fall-throughs + short jumps (encoded as a
          minimization; see {!edge_cost}) *)

type t = {
  name : string;  (** canonical CLI/wire spelling, e.g. ["ext-tsp:1024"] *)
  penalties : Penalties.t;  (** physical machine for realize/simulate *)
  objective : objective;
}

(** The Alpha 21164 control-penalty model — the default everywhere; all
    output under it is bit-identical to the pre-model code. *)
val alpha21164 : t

(** {!Penalties.deep_pipeline} as a registered model (ablation). *)
val deep_pipeline : t

(** {!Penalties.free_fetch} as a registered model (ablation). *)
val free_fetch : t

(** [ext_tsp ?window ()] is the Ext-TSP objective with the given forward
    window in bytes (default 1024).  Realization still uses the Alpha
    penalties. *)
val ext_tsp : ?window:int -> unit -> t

(** [alpha21164]. *)
val default : t

(** Canonical name, accepted back by {!find}. *)
val to_string : t -> string

(** The spellings {!find} accepts, for error messages. *)
val known : string list

(** Parse a model name: ["alpha21164"], ["deep-pipeline"],
    ["free-fetch"], ["ext-tsp"] or ["ext-tsp:<window>"] with a positive
    byte window. *)
val find : string -> t option

(** The model's Ext-TSP parameters if its objective is [Ext_tsp],
    otherwise {!default_ext_tsp} (used to report the Ext-TSP score of
    layouts produced under any model). *)
val ext_tsp_params : t -> ext_tsp

(** The DTSP edge weight under this model: for [Control_penalty] exactly
    {!Cost.edge_cost} of the model's penalties; for [Ext_tsp] the
    fall-through weight of every dynamic transfer the adjacency does not
    realize as a fall-through (the pairwise part of the Ext-TSP gain —
    window terms are address-dependent and scored by {!score_proc}).
    Both preserve the reduction's invariant that a non-successor [succ]
    costs the same as [succ:None]. *)
val edge_cost :
  t ->
  Block.terminator ->
  succ:int option ->
  predicted:int option ->
  freqs:(int * int) array ->
  int

(** [score_proc e ~proc ~realized ~freqs] is the scaled Ext-TSP score of
    one realized procedure: over every dynamic transfer, a fall-through
    earns [fallthrough_weight], a direct jump within the window earns
    the linearly decayed jump weight (measured from the branch — or
    inserted fixup — instruction to the target's first byte), and exits
    and indirect branches earn 0.  Higher is better. *)
val score_proc :
  ext_tsp ->
  proc:Addr.proc ->
  realized:Layout.realized ->
  freqs:(int -> (int * int) array) ->
  int
