(** Control-penalty machine model (the paper's Table 3).

    Penalties are in cycles per dynamic control transfer, parameterized by
    the kind of CTI at the end of the block and by whether the statically
    predicted direction was right.  The default instance models the Alpha
    21164 of the paper: a 1-cycle misfetch on every correctly predicted
    taken branch, a 5-cycle conditional-branch mispredict, a 2-cycle
    unconditional jump (issue slot + misfetch), and a 3-cycle penalty for
    an indirect branch that goes somewhere other than its predicted
    target (the target register resolves earlier than a condition).

    The scanned paper's Table 3 is partially OCR-garbled around the
    register-branch rows; DESIGN.md §2 records the interpretation adopted
    here.  All values are plain record fields, so alternative
    microarchitectures are a record literal away. *)

type t = {
  uncond_taken : int;
      (** p_TT for an unconditional jump (always taken, always predicted):
          jump issue + misfetch. *)
  cond_fall_correct : int;
      (** p_NN: conditional falls through, predicted not-taken. *)
  cond_taken_correct : int;
      (** p_TT: conditional taken, predicted taken — the misfetch. *)
  cond_mispredict : int;
      (** p_NT = p_TN: conditional mispredict, any layout. *)
  multi_correct : int;
      (** indirect branch to its predicted (most common) target. *)
  multi_mispredict : int;
      (** indirect branch to any other CFG successor. *)
}

(** The Alpha 21164 model used throughout the paper's evaluation. *)
let alpha_21164 =
  {
    uncond_taken = 2;
    cond_fall_correct = 0;
    cond_taken_correct = 1;
    cond_mispredict = 5;
    multi_correct = 1;
    multi_mispredict = 3;
  }

(** A deeper-pipeline variant (used by ablation benches): double the
    mispredict cost, same misfetch. *)
let deep_pipeline =
  {
    uncond_taken = 2;
    cond_fall_correct = 0;
    cond_taken_correct = 1;
    cond_mispredict = 10;
    multi_correct = 1;
    multi_mispredict = 6;
  }

(** A machine with free taken branches — alignment should then only fight
    mispredicts and inserted jumps.  Used in tests and ablations. *)
let free_fetch =
  {
    uncond_taken = 1;
    cond_fall_correct = 0;
    cond_taken_correct = 0;
    cond_mispredict = 5;
    multi_correct = 0;
    multi_mispredict = 3;
  }

(** Rows of the paper's Table 3 for this model:
    (block-ending control event, penalty cycles, formulaic term). *)
let table_rows p =
  [
    ("no branch (fall through)", 0, "p_NN");
    ("unconditional branch", p.uncond_taken, "p_TT");
    ("conditional: fall through to (common) following block", p.cond_fall_correct, "p_NN");
    ("conditional: branch to (common) following block", p.cond_taken_correct, "p_TT");
    ("conditional: branch mispredict (any layout)", p.cond_mispredict, "p_NT / p_TN");
    ("register branch to (common) following block", p.multi_correct, "p_TT");
    ("register branch to any other CFG successor", p.multi_mispredict, "p_NT / p_TN");
  ]

let pp ppf p =
  Fmt.pf ppf
    "{uncond=%d; cond_fall=%d; cond_taken=%d; mispredict=%d; multi=%d/%d}"
    p.uncond_taken p.cond_fall_correct p.cond_taken_correct p.cond_mispredict
    p.multi_correct p.multi_mispredict
