(** Control-penalty machine model (the paper's Table 3).

    Penalties in cycles per dynamic control transfer, by CTI kind and
    prediction outcome.  The default models the paper's Alpha 21164:
    1-cycle misfetch on correctly predicted taken branches, 5-cycle
    conditional mispredict, 2-cycle unconditional jump, 1/3 cycles for
    indirect branches (predicted / other target). *)

type t = {
  uncond_taken : int;  (** unconditional jump: issue + misfetch *)
  cond_fall_correct : int;  (** p_NN: falls through, predicted not-taken *)
  cond_taken_correct : int;  (** p_TT: taken, predicted taken (misfetch) *)
  cond_mispredict : int;  (** p_NT = p_TN, any layout *)
  multi_correct : int;  (** indirect branch to its predicted target *)
  multi_mispredict : int;  (** indirect branch to any other successor *)
}

(** The Alpha 21164 model used throughout the paper's evaluation. *)
val alpha_21164 : t

(** Deeper-pipeline variant (double mispredict cost), for ablations. *)
val deep_pipeline : t

(** Free taken branches: alignment then only fights mispredicts and
    inserted jumps.  For tests and ablations. *)
val free_fetch : t

(** Rows of the paper's Table 3:
    (block-ending control event, penalty cycles, formulaic term). *)
val table_rows : t -> (string * int * string) list

val pp : Format.formatter -> t -> unit
