(** Trace-driven penalty simulation under {e dynamic} branch prediction
    (BHT + BTB), with branch identities taken from the layout's address
    map — so alignment also changes predictor aliasing (the paper's
    footnote 6). *)

open Ba_cfg

type counters = {
  mutable transfers : int;
  mutable penalty_cycles : int;
  mutable cond_mispredicts : int;
  mutable cond_correct : int;
  mutable btb_misses : int;
  mutable btb_hits : int;
}

val create_counters : unit -> counters

(** Address of the CTI ending block [bid]: its last instruction slot. *)
val branch_addr : Addr.proc -> bid:int -> int

(** Account one transfer under dynamic prediction.
    @raise Invalid_argument on impossible transfers. *)
val record :
  counters ->
  Penalties.t ->
  Predictor.t ->
  pa:Addr.proc ->
  terms:Layout.rterm array ->
  src:int ->
  dst:int ->
  unit

(** [make_sink ?config p ~realized ~addr] simulates dynamic prediction
    over the whole program (one predictor shared by all procedures). *)
val make_sink :
  ?config:Predictor.config ->
  Penalties.t ->
  realized:Layout.realized array ->
  addr:Addr.t ->
  counters * Trace.sink
