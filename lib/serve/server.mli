(** The crash-only alignment daemon behind [balign serve].

    One request loop over a {!Wire.reader}: align requests are
    scheduled as {!Ba_engine} tasks on the configured executor and
    answered with a layout that passed {!Ba_check.Certify} — or with a
    typed {!Ba_robust.Errors.t}.  There is no third outcome: a request
    can never crash the server (per-request exception barrier,
    size-limited decoding, deadline clamping onto the anytime budget
    with the deterministic fallback chain), and an uncertified layout
    is never written to the wire.

    Exit discipline (crash-only): the daemon exits 0 on clean EOF, on
    the [shutdown] verb, and on a SIGTERM drain (buffered complete
    frames are answered, then the cache is persisted and the process
    leaves).  Stream corruption (truncated frame, garbage length
    header) terminates the conversation with one final error response
    and a clean exit — restart is the recovery path, and the persisted
    cache makes restarts warm.  See docs/SERVING.md. *)

type config = {
  executor : Ba_engine.Executor.t;  (** pool the align tasks run on *)
  model : Ba_machine.Model.t;
      (** default cost model for requests that carry no [model] field *)
  cache_capacity : int;  (** LRU entries (≥ 1) *)
  cache_file : string option;
      (** load at start (missing file = cold start), save on exit *)
  max_frame_bytes : int;  (** frames above this are skipped, typed error *)
  max_blocks : int;  (** CFGs above this are rejected, typed error *)
  default_deadline_ms : int option;  (** per-request budget when unspecified *)
  max_deadline_ms : int option;  (** clamp on client-requested budgets *)
  static_profile : bool;
      (** train every request on the {!Ba_analysis.Estimate} structural
          estimate instead of its submitted profile (a request can
          still opt out with ["profile": "collected"]) *)
}

val default : config

(** Why the request loop stopped (all of them exit 0). *)
type stop_reason =
  | Clean_eof  (** input closed at a frame boundary *)
  | Shutdown_verb  (** a client asked for [shutdown] *)
  | Drained  (** SIGTERM: buffered requests answered, then quit *)
  | Stream_corrupt  (** unrecoverable framing; error response sent *)
  | Client_gone
      (** a response write failed (EPIPE / closed fd): the client hung
          up before reading.  Ends this conversation only — in socket
          mode the daemon accepts the next connection *)

(** [serve config ~drain ~in_fd ~out_fd] runs the loop until a stop
    condition; never raises.  [drain], when flipped to [true] (e.g. by
    a signal handler), stops the loop after the already-buffered
    frames are answered. *)
val serve :
  config ->
  drain:bool Atomic.t ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  stop_reason

(** [serve_stdin config] installs a SIGTERM drain handler, ignores
    SIGPIPE (a reader that hangs up must not kill the daemon), and
    serves stdin → stdout; returns the process exit code (0). *)
val serve_stdin : config -> int

(** [serve_socket config ~path] binds a Unix-domain socket and serves
    accepted connections sequentially until a [shutdown] verb or
    SIGTERM; returns the exit code (0, or 9 when the socket cannot be
    bound).  SIGPIPE is ignored for the daemon's lifetime: a client
    that disconnects mid-conversation costs its own connection
    ({!Client_gone}), never the accept loop. *)
val serve_socket : config -> path:string -> int
