(** The request loop: decode → schedule → certify → respond.

    Invariants enforced here (and asserted by the soak suite):
    - every frame gets exactly one response (except after stream
      corruption, where one final unaddressed error is sent);
    - an [ok] response carries a layout that passed an independent
      {!Ba_check.Certify} run {e in this process, against this
      request} — cache hits and warm restarts included;
    - no request input can raise out of the loop. *)

open Ba_cfg
module Profile = Ba_profile.Profile
module Errors = Ba_robust.Errors
module Budget = Ba_robust.Budget
module Executor = Ba_engine.Executor
module Metrics = Ba_obs.Metrics
module Json = Ba_obs.Json

let ( let* ) = Result.bind

type config = {
  executor : Executor.t;
  model : Ba_machine.Model.t;
      (** default cost model for requests without a [model] field *)
  cache_capacity : int;
  cache_file : string option;
  max_frame_bytes : int;
  max_blocks : int;
  default_deadline_ms : int option;
  max_deadline_ms : int option;
  static_profile : bool;
      (** train every request on the structural estimate unless its
          options say ["profile": "collected"] *)
}

let default =
  {
    executor = Executor.Seq;
    model = Ba_machine.Model.default;
    cache_capacity = 256;
    cache_file = None;
    max_frame_bytes = 4 * 1024 * 1024;
    max_blocks = 10_000;
    default_deadline_ms = None;
    max_deadline_ms = None;
    static_profile = false;
  }

type stop_reason =
  | Clean_eof
  | Shutdown_verb
  | Drained
  | Stream_corrupt
  | Client_gone

(* ---------------- stats ---------------- *)

let stats_json cache =
  let c k = Json.Int (Metrics.get k) in
  let lat = Metrics.latency () in
  Json.Obj
    [
      ("requests", c Metrics.Serve_requests);
      ("ok", c Metrics.Serve_ok);
      ("errors", c Metrics.Serve_errors);
      ("protocol_errors", c Metrics.Serve_protocol_errors);
      ( "cache",
        Json.Obj
          [
            ("hits", c Metrics.Serve_cache_hits);
            ("misses", c Metrics.Serve_cache_misses);
            ("poisoned", c Metrics.Serve_cache_poisoned);
            ("warm_starts", c Metrics.Serve_warm_starts);
            ("entries", Json.Int (Cache.length cache));
          ] );
      ( "latency_ms",
        Json.Obj
          [
            ("count", Json.Int lat.Metrics.l_count);
            ("mean", Json.Float lat.Metrics.mean_ms);
            ("p50", Json.Float lat.Metrics.p50_ms);
            ("p95", Json.Float lat.Metrics.p95_ms);
            ("max", Json.Float lat.Metrics.max_ms);
          ] );
    ]

(* ---------------- one align request ---------------- *)

(** Independent re-verification of a layout against {e this} request's
    CFG and profile.  This is the certification gate every [ok]
    response passes, and the mechanism that rejects poisoned cache
    entries and 64-bit key collisions: a layout for a different CFG
    cannot survive the walk/faithfulness checks, and a corrupted cost
    fails the from-scratch recomputation. *)
let certify ~model cfg profile order =
  Ba_check.Certify.proc_cert ~hk:Ba_check.Certify.Skip ~sym_check:false ~proc:0
    model cfg ~profile ~order

(** The model one request runs under: its own, or the server's
    default. *)
let request_model config (options : Wire.align_options) =
  Option.value options.Wire.model ~default:config.model

let solve config cache ~key ~warm cfg profile (options : Wire.align_options) :
    (Wire.ok_payload, Errors.t) result =
  let model = request_model config options in
  let requested =
    match options.Wire.deadline_ms with
    | Some _ as d -> d
    | None -> config.default_deadline_ms
  in
  let deadline_ms = Budget.clamp_deadline ?cap:config.max_deadline_ms requested in
  let train = { Profile.procs = [| profile |]; calls = [] } in
  match
    Ba_align.Driver.align_checked ~executor:config.executor ?deadline_ms
      ~fallback:true
      ~warm_start:(fun _ -> warm)
      options.Wire.method_ model [| cfg |] ~train
  with
  | Error e -> Error e
  | Ok report -> (
      let order = report.Ba_align.Driver.aligned.Ba_align.Driver.orders.(0) in
      (* never respond with an uncertified layout — not even one the
         checked driver just produced *)
      match certify ~model cfg profile order with
      | Error e ->
          Error
            (Errors.Invalid_layout
               {
                 proc = Some 0;
                 name = Some cfg.Cfg.name;
                 reason = Ba_check.Certify.error_to_string e;
               })
      | Ok cert ->
          Cache.add cache key order cert.Ba_check.Certify.cost;
          Metrics.set_gauge Metrics.Serve_cache_entries (Cache.length cache);
          Ok
            {
              Wire.layout = order;
              cost = cert.Ba_check.Certify.cost;
              cached = false;
              warm = warm <> None;
              fallbacks = List.length report.Ba_align.Driver.fallbacks;
            })

(** Whether one request trains on the structural estimate: its own
    option wins, the server default otherwise. *)
let wants_static config (options : Wire.align_options) =
  match options.Wire.profile_mode with
  | Some `Static -> true
  | Some `Collected -> false
  | None -> config.static_profile

let handle_align config cache cfg profile options :
    (Wire.ok_payload, Errors.t) result =
  let model = request_model config options in
  (* static mode replaces the profile BEFORE the cache key is computed,
     so cached layouts are keyed (and hit-time re-certified) against
     the very profile they were trained on.  The estimator needs a
     traversable CFG; an unsound one gets the typed error the lint
     gate would have raised. *)
  let* profile =
    if not (wants_static config options) then Ok profile
    else
      match Cfg.validate cfg with
      | Ok () -> Ok (Ba_analysis.Estimate.proc cfg)
      | Error reason ->
          Error
            (Errors.Invalid_cfg
               { proc = Some 0; name = Some cfg.Cfg.name; reason })
  in
  let key = Cache.key_of cfg profile ~model in
  match Cache.find cache key with
  | Some (order, cost) -> (
      (* hit-time re-certification: the cache (and any persisted
         snapshot it was loaded from) is untrusted *)
      match certify ~model cfg profile order with
      | Ok cert ->
          Metrics.incr Metrics.Serve_cache_hits;
          ignore cost;
          Ok
            {
              Wire.layout = order;
              cost = cert.Ba_check.Certify.cost;
              cached = true;
              warm = false;
              fallbacks = 0;
            }
      | Error _ ->
          (* poisoned (or a key collision): evict and solve fresh *)
          Metrics.incr Metrics.Serve_cache_poisoned;
          Cache.remove cache key;
          Metrics.incr Metrics.Serve_cache_misses;
          let warm = None in
          solve config cache ~key ~warm cfg profile options)
  | None ->
      Metrics.incr Metrics.Serve_cache_misses;
      (* same CFG seen under another profile? seed the solver with its
         layout: incremental re-alignment after profile drift *)
      let warm = Cache.drift_hint cache key in
      if warm <> None then Metrics.incr Metrics.Serve_warm_starts;
      solve config cache ~key ~warm cfg profile options

(* ---------------- the loop ---------------- *)

(* [Error _] means the client went away before reading (EPIPE — the
   entry points ignore SIGPIPE — or a closed fd): that ends this
   conversation, never the server, and no further write is attempted
   on the dead descriptor. *)
let respond out_fd response =
  Wire.write_frame out_fd (Wire.response_to_string response)

let persist config cache =
  match config.cache_file with
  | None -> ()
  | Some path -> (
      match Cache.save cache path with
      | Ok () -> ()
      | Error e -> Fmt.epr "balign serve: cache not saved: %a@." Errors.pp e)

let serve config ~drain ~in_fd ~out_fd : stop_reason =
  let cache =
    match config.cache_file with
    | Some path when Sys.file_exists path -> (
        match Cache.load ~capacity:config.cache_capacity path with
        | Ok c -> c
        | Error e ->
            Fmt.epr "balign serve: cold start, cache not loaded: %a@." Errors.pp e;
            Cache.create ~capacity:config.cache_capacity)
    | _ -> Cache.create ~capacity:config.cache_capacity
  in
  Metrics.set_gauge Metrics.Serve_cache_entries (Cache.length cache);
  let reader = Wire.reader ~max_frame_bytes:config.max_frame_bytes in_fd in
  let stop () = Atomic.get drain in
  let protocol_error ?id e =
    Metrics.incr Metrics.Serve_protocol_errors;
    respond out_fd (Wire.Error_response { id; error = e })
  in
  (* a payload that fails request decoding may still carry a usable id;
     echo it so the client can correlate the error *)
  let salvage_id payload =
    match Json.parse payload with
    | Ok doc -> (
        match Json.member "id" doc with Some (Json.Int i) -> Some i | _ -> None)
    | Error _ -> None
  in
  (* answer, or end the conversation if the client is gone *)
  let send response next =
    match respond out_fd response with Ok () -> next | Error _ -> `Client_gone
  in
  let handle_frame payload : [ `Continue | `Shutdown | `Client_gone ] =
    Metrics.set_gauge Metrics.Serve_in_flight 1;
    Metrics.incr Metrics.Serve_requests;
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        (* observed on every path, including the ones that end the
           conversation — the gauge must never stick at 1 *)
        Metrics.observe_latency_ms ((Unix.gettimeofday () -. t0) *. 1000.);
        Metrics.set_gauge Metrics.Serve_in_flight 0)
      (fun () ->
        (* the per-request exception barrier: whatever a request does —
           decode, solve, certify — it answers with a frame, never with
           a crash *)
        match Wire.request_of_string ~max_blocks:config.max_blocks payload with
        | Error e ->
            Metrics.incr Metrics.Serve_protocol_errors;
            Metrics.incr Metrics.Serve_errors;
            send
              (Wire.Error_response { id = salvage_id payload; error = e })
              `Continue
        | Ok (Wire.Stats { id }) ->
            send (Wire.Stats_response { id; stats = stats_json cache }) `Continue
        | Ok (Wire.Shutdown { id }) ->
            (* shut down whether or not the client stayed for the ack *)
            let (_ : (unit, string) result) =
              respond out_fd (Wire.Shutdown_ack { id })
            in
            `Shutdown
        | Ok (Wire.Align { id; cfg; profile; options }) -> (
            match
              match
                Errors.catch ~where:"serve" (fun () ->
                    handle_align config cache cfg profile options)
              with
              | Ok r -> r
              | Error e -> Error e
            with
            | Ok payload ->
                Metrics.incr Metrics.Serve_ok;
                send (Wire.Ok_layout { id; payload }) `Continue
            | Error e ->
                Metrics.incr Metrics.Serve_errors;
                send (Wire.Error_response { id = Some id; error = e }) `Continue))
  in
  let rec loop () =
    Metrics.set_gauge Metrics.Serve_queue_depth (Wire.buffered_frames reader);
    match Wire.read_frame ~stop reader with
    | Wire.Frame payload -> (
        match handle_frame payload with
        | `Continue -> loop ()
        | `Shutdown -> Shutdown_verb
        | `Client_gone -> Client_gone)
    | Wire.Eof -> Clean_eof
    | Wire.Drained -> Drained
    | Wire.Oversized len -> (
        match
          protocol_error
            (Errors.Parse_error
               {
                 stage = "frame";
                 message =
                   Printf.sprintf "frame of %d bytes exceeds the limit of %d"
                     len config.max_frame_bytes;
               })
        with
        | Ok () -> loop ()
        | Error _ -> Client_gone)
    | Wire.Truncated ->
        let (_ : (unit, string) result) =
          protocol_error
            (Errors.Parse_error
               { stage = "frame"; message = "stream ended mid-frame" })
        in
        Stream_corrupt
    | Wire.Bad_header m ->
        let (_ : (unit, string) result) =
          protocol_error (Errors.Parse_error { stage = "frame"; message = m })
        in
        Stream_corrupt
  in
  let reason =
    match loop () with
    | r -> r
    | exception e ->
        (* last-ditch barrier; nothing below is expected to raise, and
           the final write cannot raise again — a dead out_fd is an
           ignored [Error], not a second exception *)
        let (_ : (unit, string) result) =
          protocol_error (Errors.of_exn ~where:"serve-loop" e)
        in
        Stream_corrupt
  in
  Metrics.set_gauge Metrics.Serve_queue_depth 0;
  persist config cache;
  reason

(* ---------------- entry points ---------------- *)

(* With SIGPIPE at its default disposition, a client that disconnects
   before reading its response would kill the whole daemon at the next
   write — the opposite of crash-only.  Ignoring it turns that write
   into an EPIPE that Wire.write_frame reports as [Error], which ends
   one conversation (Client_gone) and nothing else. *)
let with_sigpipe_ignored f =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | old -> Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe old) f
  | exception Invalid_argument _ | exception Sys_error _ ->
      (* no SIGPIPE on this platform: nothing to ignore *)
      f ()

let with_sigterm drain f =
  match
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set drain true))
  with
  | old -> Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigterm old) f
  | exception Invalid_argument _ | exception Sys_error _ ->
      (* no signal support (exotic platform): serve without drain *)
      f ()

let serve_stdin config =
  let drain = Atomic.make false in
  with_sigpipe_ignored (fun () ->
      with_sigterm drain (fun () ->
          ignore (serve config ~drain ~in_fd:Unix.stdin ~out_fd:Unix.stdout);
          0))

let serve_socket config ~path =
  let drain = Atomic.make false in
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    if Sys.file_exists path then Unix.unlink path;
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 8;
    fd
  with
  | exception Unix.Unix_error (err, _, _) ->
      let e =
        Errors.Io_error { path; reason = Unix.error_message err }
      in
      Fmt.epr "balign serve: %a@." Errors.pp e;
      Errors.exit_code e
  | listen_fd ->
      with_sigpipe_ignored @@ fun () ->
      with_sigterm drain (fun () ->
          let rec accept_loop () =
            if Atomic.get drain then ()
            else
              match Unix.accept listen_fd with
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              | exception Unix.Unix_error (_, _, _) -> ()
              | conn, _ -> (
                  let reason =
                    Fun.protect
                      ~finally:(fun () ->
                        try Unix.close conn with Unix.Unix_error (_, _, _) -> ())
                      (fun () ->
                        serve config ~drain ~in_fd:conn ~out_fd:conn)
                  in
                  match reason with
                  | Shutdown_verb | Drained -> ()
                  (* one client hanging up (Client_gone) does not end
                     the daemon: serve the next connection *)
                  | Clean_eof | Stream_corrupt | Client_gone -> accept_loop ())
          in
          accept_loop ();
          (try Unix.close listen_fd with Unix.Unix_error (_, _, _) -> ());
          (try Unix.unlink path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
          0)
