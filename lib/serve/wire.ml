(** Length-prefixed JSON framing and the align request/response codecs.

    The framing layer is deliberately paranoid: the byte stream is
    attacker-controlled (the fault suite replays truncated, garbage and
    oversized frames at it), so nothing here raises on malformed input
    — every failure mode is a constructor of {!event} or a typed
    {!Ba_robust.Errors.t}.  Oversized frames are skipped without ever
    buffering their payload, so a hostile length header cannot balloon
    the server's memory. *)

open Ba_cfg
module Profile = Ba_profile.Profile
module Errors = Ba_robust.Errors
module Json = Ba_obs.Json

(* ---------------- framing ---------------- *)

let encode_frame payload =
  Printf.sprintf "%d\n%s\n" (String.length payload) payload

(* A failed write means the peer is gone — EPIPE (the server entry
   points ignore SIGPIPE so a hung-up client surfaces here instead of
   killing the process) or a closed descriptor.  Report it; never
   raise: the caller ends the conversation, nothing else. *)
let write_frame fd payload =
  let s = encode_frame payload in
  let n = String.length s in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  go 0

type reader = {
  fd : Unix.file_descr;
  max_frame_bytes : int;
  mutable buf : Bytes.t;  (** grows on demand; valid data is [pos, len) *)
  mutable pos : int;  (** start of the unconsumed bytes *)
  mutable len : int;  (** end of the valid bytes (exclusive) *)
  mutable to_skip : int;  (** oversized-payload bytes still to discard *)
}

let reader ?(max_frame_bytes = 4 * 1024 * 1024) fd =
  { fd; max_frame_bytes; buf = Bytes.create 65536; pos = 0; len = 0; to_skip = 0 }

(* the length header is a short decimal line; anything longer than this
   without a newline cannot be a valid header *)
let max_header_len = 20

type event =
  | Frame of string
  | Eof
  | Truncated
  | Bad_header of string
  | Oversized of int
  | Drained

(** What the buffer alone yields, without touching the fd.  Byte counts
    are relative to the start of the unconsumed region. *)
type parsed =
  | P_frame of string * int  (** payload, total bytes consumed *)
  | P_need_more
  | P_bad of string
  | P_oversized of int * int  (** declared length, header bytes consumed *)

(* first '\n' in [buf.[pos, len)]; the header is at most
   [max_header_len] bytes so the scan is O(1) per attempt *)
let index_nl buf pos len =
  let rec go i =
    if i >= len then None
    else if Bytes.get buf i = '\n' then Some i
    else go (i + 1)
  in
  go pos

let parse_buffer ~max_frame_bytes buf pos len =
  let avail = len - pos in
  match index_nl buf pos len with
  | None ->
      if avail > max_header_len then
        P_bad "length header is not a short decimal line"
      else P_need_more
  | Some nl -> (
      let header = Bytes.sub_string buf pos (nl - pos) in
      let ok_digits =
        header <> "" && String.for_all (fun c -> c >= '0' && c <= '9') header
        && String.length header <= 18
      in
      match if ok_digits then int_of_string_opt header else None with
      | None -> P_bad (Printf.sprintf "bad length header %S" header)
      | Some flen ->
          if flen > max_frame_bytes then P_oversized (flen, nl - pos + 1)
          else begin
            (* header + '\n' + payload + '\n' *)
            let total = nl - pos + 1 + flen + 1 in
            if avail < total then P_need_more
            else if Bytes.get buf (pos + total - 1) <> '\n' then
              P_bad "missing frame separator after payload"
            else P_frame (Bytes.sub_string buf (nl + 1) flen, total)
          end)

let consume r n =
  r.pos <- r.pos + n;
  if r.pos = r.len then begin
    r.pos <- 0;
    r.len <- 0
  end

(** One blocking read into the buffer: [`Got], [`Eof], or [`Stopped]
    when [stop] turned true (checked before the read and after every
    [EINTR]).  Reads land directly in [buf]; when it is full the
    consumed prefix is compacted away, else it doubles — amortized O(1)
    per byte, so a max-size frame arriving in small reads costs O(n),
    not O(n²).  Memory stays bounded: headers are capped at
    [max_header_len] and over-limit payloads are skipped unbuffered, so
    the buffer never exceeds ~2× (max_frame_bytes + framing). *)
let refill ~stop r =
  let rec go () =
    if stop () then `Stopped
    else begin
      if r.len = Bytes.length r.buf then
        if r.pos > 0 then begin
          Bytes.blit r.buf r.pos r.buf 0 (r.len - r.pos);
          r.len <- r.len - r.pos;
          r.pos <- 0
        end
        else begin
          let bigger = Bytes.create (2 * Bytes.length r.buf) in
          Bytes.blit r.buf 0 bigger 0 r.len;
          r.buf <- bigger
        end;
      match Unix.read r.fd r.buf r.len (Bytes.length r.buf - r.len) with
      | 0 -> `Eof
      | n ->
          r.len <- r.len + n;
          `Got
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> `Eof
    end
  in
  go ()

let read_frame ?(stop = fun () -> false) r =
  let rec drop_skipped () =
    (* discard the tail of an oversized frame, separator included *)
    if r.to_skip > 0 then begin
      let have = r.len - r.pos in
      if have > 0 then begin
        let n = min have r.to_skip in
        consume r n;
        r.to_skip <- r.to_skip - n;
        drop_skipped ()
      end
      else
        match refill ~stop r with
        | `Got -> drop_skipped ()
        | `Eof -> `Eof
        | `Stopped -> `Stopped
    end
    else `Done
  in
  let empty r = r.len = r.pos in
  let rec next () =
    match parse_buffer ~max_frame_bytes:r.max_frame_bytes r.buf r.pos r.len with
    | P_frame (payload, total) ->
        consume r total;
        Frame payload
    | P_bad m -> Bad_header m
    | P_oversized (len, header) ->
        consume r header;
        r.to_skip <- len + 1;
        (match drop_skipped () with
        | `Done | `Stopped ->
            (* even when stopping we report the oversized frame first;
               the next call will drain/exit *)
            Oversized len
        | `Eof ->
            r.to_skip <- 0;
            Oversized len)
    | P_need_more -> (
        match refill ~stop r with
        | `Got -> next ()
        | `Stopped -> Drained
        | `Eof -> if empty r then Eof else Truncated)
  in
  match drop_skipped () with
  | `Done -> next ()
  | `Stopped -> Drained
  | `Eof -> if empty r then Eof else Truncated

let buffered_frames r =
  let rec count pos acc =
    match parse_buffer ~max_frame_bytes:r.max_frame_bytes r.buf pos r.len with
    | P_frame (_, total) -> count (pos + total) (acc + 1)
    | _ -> acc
  in
  let start = r.pos + r.to_skip in
  if start >= r.len then 0 else count start 0

(* ---------------- requests ---------------- *)

type align_options = {
  deadline_ms : int option;
  method_ : Ba_align.Driver.method_;
  model : Ba_machine.Model.t option;
      (** [None] = the server's configured default model *)
  profile_mode : [ `Collected | `Static ] option;
      (** [`Static] trains on the structural estimate instead of the
          request's profile; [None] = the server's configured default *)
}

let default_options =
  {
    deadline_ms = None;
    method_ = Ba_align.Driver.Tsp Ba_align.Tsp_align.default;
    model = None;
    profile_mode = None;
  }

type request =
  | Align of {
      id : int;
      cfg : Cfg.t;
      profile : Profile.proc;
      options : align_options;
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

let request_id = function
  | Align { id; _ } | Stats { id } | Shutdown { id } -> id

let perr fmt =
  Printf.ksprintf
    (fun message -> Error (Errors.Parse_error { stage = "request"; message }))
    fmt

let ( let* ) r f = Result.bind r f

let to_int v =
  match Json.to_number v with
  | Some f when Float.is_integer f && Float.abs f < 1e15 -> Some (int_of_float f)
  | _ -> None

let field name doc =
  match Json.member name doc with
  | Some v -> Ok v
  | None -> perr "missing field %S" name

let int_field name doc =
  let* v = field name doc in
  match to_int v with Some i -> Ok i | None -> perr "field %S is not an integer" name

let str_field name doc =
  let* v = field name doc in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> perr "field %S is not a string" name

let list_field name doc =
  let* v = field name doc in
  match Json.to_list v with
  | Some l -> Ok l
  | None -> perr "field %S is not a list" name

(* -------- CFG codec -------- *)

let term_to_json : Block.terminator -> Json.t = function
  | Block.Exit -> Json.Obj [ ("kind", Json.String "exit") ]
  | Block.Goto l -> Json.Obj [ ("kind", Json.String "goto"); ("to", Json.Int l) ]
  | Block.Branch { t; f } ->
      Json.Obj [ ("kind", Json.String "branch"); ("t", Json.Int t); ("f", Json.Int f) ]
  | Block.Multiway ts ->
      Json.Obj
        [
          ("kind", Json.String "multiway");
          ("targets", Json.List (Array.to_list (Array.map (fun l -> Json.Int l) ts)));
        ]

let term_of_json v =
  let* kind = str_field "kind" v in
  match kind with
  | "exit" -> Ok Block.Exit
  | "goto" ->
      let* l = int_field "to" v in
      Ok (Block.Goto l)
  | "branch" ->
      let* t = int_field "t" v in
      let* f = int_field "f" v in
      Ok (Block.Branch { t; f })
  | "multiway" ->
      let* ts = list_field "targets" v in
      let* ts =
        List.fold_right
          (fun t acc ->
            let* acc = acc in
            match to_int t with
            | Some i -> Ok (i :: acc)
            | None -> perr "multiway target is not an integer")
          ts (Ok [])
      in
      Ok (Block.Multiway (Array.of_list ts))
  | k -> perr "unknown terminator kind %S" k

let cfg_to_json (g : Cfg.t) : Json.t =
  Json.Obj
    [
      ("name", Json.String g.Cfg.name);
      ("entry", Json.Int g.Cfg.entry);
      ( "blocks",
        Json.List
          (Array.to_list
             (Array.map
                (fun b ->
                  Json.Obj
                    [
                      ("size", Json.Int b.Block.size);
                      ("term", term_to_json b.Block.term);
                    ])
                g.Cfg.blocks)) );
    ]

let cfg_of_json ~max_blocks v =
  let* name = str_field "name" v in
  let* entry = int_field "entry" v in
  let* blocks = list_field "blocks" v in
  let n = List.length blocks in
  if n > max_blocks then
    Error
      (Errors.Invalid_cfg
         {
           proc = None;
           name = Some name;
           reason = Printf.sprintf "%d blocks exceeds the limit of %d" n max_blocks;
         })
  else
    let* blocks =
      List.fold_right
        (fun b acc ->
          let* acc = acc in
          let* size = int_field "size" b in
          let* t = field "term" b in
          let* term = term_of_json t in
          Ok ((size, term) :: acc))
        blocks (Ok [])
    in
    (* Block.make / Cfg.make validate shapes and raise Invalid_argument;
       route that into the typed pipeline rather than letting it escape *)
    match
      let blocks =
        List.mapi (fun id (size, term) -> Block.make ~id ~size term) blocks
      in
      Cfg.make ~name ~entry (Array.of_list blocks)
    with
    | g -> Ok g
    | exception Invalid_argument reason ->
        Error (Errors.Invalid_cfg { proc = None; name = Some name; reason })

(* -------- profile codec -------- *)

let profile_to_json (p : Profile.proc) : Json.t =
  Json.List
    (Array.to_list
       (Array.map
          (fun row ->
            Json.List
              (Array.to_list
                 (Array.map
                    (fun (dst, count) -> Json.List [ Json.Int dst; Json.Int count ])
                    row)))
          p.Profile.freqs))

let profile_of_json ~n_blocks v =
  match Json.to_list v with
  | None -> perr "profile is not a list"
  | Some rows ->
      if List.length rows <> n_blocks then
        Error
          (Errors.Profile_mismatch
             {
               proc = None;
               expected = n_blocks;
               got = List.length rows;
               what = "profile rows";
             })
      else
        let* triples =
          List.fold_right
            (fun (src, row) acc ->
              let* acc = acc in
              match Json.to_list row with
              | None -> perr "profile row %d is not a list" src
              | Some pairs ->
                  List.fold_right
                    (fun pair acc ->
                      let* acc = acc in
                      match Json.to_list pair with
                      | Some [ d; c ] -> (
                          match (to_int d, to_int c) with
                          | Some dst, Some count -> Ok ((src, dst, count) :: acc)
                          | _ -> perr "profile entry in row %d is not [dst, count]" src)
                      | _ -> perr "profile entry in row %d is not [dst, count]" src)
                    pairs (Ok acc))
            (List.mapi (fun i r -> (i, r)) rows)
            (Ok [])
        in
        (* of_assoc tolerates duplicates and zeros; anything genuinely
           invalid (dangling labels, negative counts) is left for the
           lint gate, which reports it as a typed profile error *)
        Errors.catch ~where:"profile" (fun () ->
            Profile.of_assoc ~n_blocks triples)

(* -------- options / request -------- *)

let options_of_json = function
  | None -> Ok default_options
  | Some v ->
      let* deadline_ms =
        match Json.member "deadline_ms" v with
        | None -> Ok None
        | Some d -> (
            match to_int d with
            | Some ms -> Ok (Some ms)
            | None -> perr "deadline_ms is not an integer")
      in
      let* method_ =
        match Json.member "method" v with
        | None -> Ok default_options.method_
        | Some m -> (
            match Json.to_str m with
            | Some "original" -> Ok Ba_align.Driver.Original
            | Some "greedy" -> Ok Ba_align.Driver.Greedy
            | Some "calder" -> Ok Ba_align.Driver.Calder
            | Some "calder-exhaustive" -> Ok Ba_align.Driver.Calder_exhaustive
            | Some "btfnt" -> Ok Ba_align.Driver.Btfnt
            | Some "tsp" -> Ok (Ba_align.Driver.Tsp Ba_align.Tsp_align.default)
            | Some s -> Error (Errors.Usage (Printf.sprintf "unknown method %S" s))
            | None -> perr "method is not a string")
      in
      let* model =
        match Json.member "model" v with
        | None -> Ok None
        | Some m -> (
            match Json.to_str m with
            | None -> perr "model is not a string"
            | Some s -> (
                match Ba_machine.Model.find s with
                | Some model -> Ok (Some model)
                | None ->
                    Error
                      (Errors.Unknown_model
                         { requested = s; known = Ba_machine.Model.known })))
      in
      let* profile_mode =
        match Json.member "profile" v with
        | None -> Ok None
        | Some p -> (
            match Json.to_str p with
            | Some "collected" -> Ok (Some `Collected)
            | Some "static" -> Ok (Some `Static)
            | Some s ->
                Error
                  (Errors.Usage
                     (Printf.sprintf
                        "unknown profile mode %S (collected | static)" s))
            | None -> perr "profile is not a string")
      in
      Ok { deadline_ms; method_; model; profile_mode }

let method_string = Ba_align.Driver.method_name

let options_to_json (o : align_options) : Json.t =
  Json.Obj
    (List.filter_map Fun.id
       [
         Option.map (fun ms -> ("deadline_ms", Json.Int ms)) o.deadline_ms;
         Some ("method", Json.String (method_string o.method_));
         Option.map
           (fun m -> ("model", Json.String (Ba_machine.Model.to_string m)))
           o.model;
         Option.map
           (fun pm ->
             ( "profile",
               Json.String
                 (match pm with `Collected -> "collected" | `Static -> "static")
             ))
           o.profile_mode;
       ])

let request_of_string ?(max_blocks = 100_000) s =
  match Json.parse s with
  | Error m -> Error (Errors.Parse_error { stage = "frame-json"; message = m })
  | Ok doc -> (
      let* id = int_field "id" doc in
      let* verb = str_field "verb" doc in
      match verb with
      | "stats" -> Ok (Stats { id })
      | "shutdown" -> Ok (Shutdown { id })
      | "align" ->
          let* cfg_json = field "cfg" doc in
          let* cfg = cfg_of_json ~max_blocks cfg_json in
          let* prof_json = field "profile" doc in
          let* profile = profile_of_json ~n_blocks:(Cfg.n_blocks cfg) prof_json in
          let* options = options_of_json (Json.member "options" doc) in
          Ok (Align { id; cfg; profile; options })
      | v -> Error (Errors.Usage (Printf.sprintf "unknown verb %S" v)))

let request_to_string = function
  | Stats { id } ->
      Json.to_string
        (Json.Obj [ ("id", Json.Int id); ("verb", Json.String "stats") ])
  | Shutdown { id } ->
      Json.to_string
        (Json.Obj [ ("id", Json.Int id); ("verb", Json.String "shutdown") ])
  | Align { id; cfg; profile; options } ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("verb", Json.String "align");
             ("cfg", cfg_to_json cfg);
             ("profile", profile_to_json profile);
             ("options", options_to_json options);
           ])

(* ---------------- responses ---------------- *)

let error_class : Errors.t -> string = function
  | Errors.Parse_error _ -> "parse-error"
  | Errors.Invalid_input _ -> "invalid-input"
  | Errors.Invalid_cfg _ -> "invalid-cfg"
  | Errors.Invalid_profile _ -> "invalid-profile"
  | Errors.Profile_mismatch _ -> "profile-mismatch"
  | Errors.Solver_timeout _ -> "solver-timeout"
  | Errors.Invalid_layout _ -> "invalid-layout"
  | Errors.Io_error _ -> "io-error"
  | Errors.Unknown_model _ -> "unknown-model"
  | Errors.Usage _ -> "usage"
  | Errors.Internal _ -> "internal"

type ok_payload = {
  layout : Layout.order;
  cost : int;
  cached : bool;
  warm : bool;
  fallbacks : int;
}

type response =
  | Ok_layout of { id : int; payload : ok_payload }
  | Error_response of { id : int option; error : Errors.t }
  | Stats_response of { id : int; stats : Json.t }
  | Shutdown_ack of { id : int }

let response_to_string = function
  | Ok_layout { id; payload = p } ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("status", Json.String "ok");
             ( "layout",
               Json.List (Array.to_list (Array.map (fun l -> Json.Int l) p.layout))
             );
             ("cost", Json.Int p.cost);
             ("cached", Json.Bool p.cached);
             ("warm", Json.Bool p.warm);
             ("fallbacks", Json.Int p.fallbacks);
           ])
  | Error_response { id; error } ->
      Json.to_string
        (Json.Obj
           [
             ("id", match id with Some i -> Json.Int i | None -> Json.Null);
             ("status", Json.String "error");
             ( "error",
               Json.Obj
                 [
                   ("class", Json.String (error_class error));
                   ("exit_code", Json.Int (Errors.exit_code error));
                   ("message", Json.String (Errors.to_string error));
                 ] );
           ])
  | Stats_response { id; stats } ->
      Json.to_string
        (Json.Obj
           [
             ("id", Json.Int id);
             ("status", Json.String "stats");
             ("stats", stats);
           ])
  | Shutdown_ack { id } ->
      Json.to_string
        (Json.Obj [ ("id", Json.Int id); ("status", Json.String "shutdown") ])

(* the client-side decoder rebuilds a structural view of the response;
   typed errors travel as their wire triple (class/exit/message) —
   the client never reconstructs the server's Errors.t *)
type client_error = { eclass : string; eexit : int; emessage : string }

type client_response =
  | C_ok of { id : int; payload : ok_payload }
  | C_error of { id : int option; error : client_error }
  | C_stats of { id : int; stats : Json.t }
  | C_shutdown of { id : int }

let response_of_string s =
  let ( let* ) = Result.bind in
  let fail m = Error m in
  match Json.parse s with
  | Error m -> fail ("invalid JSON: " ^ m)
  | Ok doc -> (
      let* status =
        match Json.member "status" doc with
        | Some v -> (
            match Json.to_str v with
            | Some s -> Ok s
            | None -> fail "status is not a string")
        | None -> fail "missing status"
      in
      let int_of name =
        match Json.member name doc with
        | Some v -> (
            match to_int v with Some i -> Ok i | None -> fail (name ^ " not an int"))
        | None -> fail ("missing " ^ name)
      in
      match status with
      | "shutdown" ->
          let* id = int_of "id" in
          Ok (C_shutdown { id })
      | "stats" ->
          let* id = int_of "id" in
          let* stats =
            match Json.member "stats" doc with
            | Some v -> Ok v
            | None -> fail "missing stats"
          in
          Ok (C_stats { id; stats })
      | "ok" ->
          let* id = int_of "id" in
          let* layout =
            match Json.member "layout" doc with
            | Some v -> (
                match Json.to_list v with
                | Some l -> (
                    match
                      List.map (fun x -> Option.get (to_int x)) l
                    with
                    | l -> Ok (Array.of_list l)
                    | exception _ -> fail "layout entry not an int")
                | None -> fail "layout not a list")
            | None -> fail "missing layout"
          in
          let* cost = int_of "cost" in
          let bool_of name =
            match Json.member name doc with
            | Some (Json.Bool b) -> Ok b
            | _ -> fail (name ^ " not a bool")
          in
          let* cached = bool_of "cached" in
          let* warm = bool_of "warm" in
          let* fallbacks = int_of "fallbacks" in
          Ok (C_ok { id; payload = { layout; cost; cached; warm; fallbacks } })
      | "error" ->
          let id =
            match Json.member "id" doc with
            | Some (Json.Int i) -> Some i
            | _ -> None
          in
          let* e =
            match Json.member "error" doc with
            | Some e -> Ok e
            | None -> fail "missing error"
          in
          let* eclass =
            match Option.bind (Json.member "class" e) Json.to_str with
            | Some s -> Ok s
            | None -> fail "missing error class"
          in
          let* eexit =
            match Option.bind (Json.member "exit_code" e) to_int with
            | Some i -> Ok i
            | None -> fail "missing error exit_code"
          in
          let* emessage =
            match Option.bind (Json.member "message" e) Json.to_str with
            | Some s -> Ok s
            | None -> fail "missing error message"
          in
          Ok (C_error { id; error = { eclass; eexit; emessage } })
      | s -> fail (Printf.sprintf "unknown status %S" s))
