(** The daemon's wire protocol: length-prefixed JSON frames plus the
    request/response codecs (see docs/SERVING.md for the full spec).

    A frame is [<decimal length>\n<payload>\n] where [length] is the
    byte length of [payload] (the trailing newline is a frame
    separator, not part of the payload).  The framing layer is where
    the protocol-robustness contract lives: a reader never raises on
    malformed input — every way a byte stream can be broken maps to a
    typed {!event}. *)

open Ba_cfg
module Profile = Ba_profile.Profile
module Errors = Ba_robust.Errors

(** {1 Framing} *)

(** [encode_frame payload] is the full byte string of one frame. *)
val encode_frame : string -> string

(** [write_frame fd payload] writes one frame, handling short writes.
    Never raises: a failed write — [EPIPE] from a client that hung up
    before reading (the server entry points ignore SIGPIPE), or a
    closed descriptor — is reported as [Error reason] so the caller can
    end the conversation instead of the process. *)
val write_frame : Unix.file_descr -> string -> (unit, string) result

(** Buffered frame reader over a file descriptor. *)
type reader

(** [reader ?max_frame_bytes fd] wraps [fd].  Frames whose declared
    length exceeds [max_frame_bytes] (default 4 MiB) are skipped
    without buffering their payload. *)
val reader : ?max_frame_bytes:int -> Unix.file_descr -> reader

(** Everything a read can yield.  [Oversized] and [Frame] leave the
    stream synchronized (the next read starts at the next frame);
    the remaining non-[Frame] events are terminal for the stream. *)
type event =
  | Frame of string  (** one complete payload *)
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** end of stream in the middle of a frame *)
  | Bad_header of string  (** the length line is not a decimal number *)
  | Oversized of int  (** declared length over the limit; payload skipped *)
  | Drained  (** [stop] said quit and no complete frame was buffered *)

(** [read_frame ?stop r] returns the next event.  [stop] (polled before
    every blocking read, and after [EINTR]) requests a drain: frames
    already buffered are still returned, but the reader never blocks
    for more bytes once [stop ()] is true. *)
val read_frame : ?stop:(unit -> bool) -> reader -> event

(** Number of complete frames sitting in the buffer (the queue-depth
    gauge); parses the buffer, reads nothing. *)
val buffered_frames : reader -> int

(** {1 Requests} *)

type align_options = {
  deadline_ms : int option;  (** per-request solver budget *)
  method_ : Ba_align.Driver.method_;  (** default: the paper's TSP aligner *)
  model : Ba_machine.Model.t option;
      (** requested cost model; [None] = the server's configured
          default.  An unrecognized name decodes to a typed
          [Unknown_model] error (wire class ["unknown-model"]). *)
  profile_mode : [ `Collected | `Static ] option;
      (** wire field ["profile"]: [`Static] makes the server discard
          the request's profile and train on the structural estimate
          ({!Ba_analysis.Estimate}); [`Collected] forces the request's
          profile; [None] = the server's configured default. *)
}

val default_options : align_options

type request =
  | Align of {
      id : int;
      cfg : Cfg.t;
      profile : Profile.proc;
      options : align_options;
    }
  | Stats of { id : int }
  | Shutdown of { id : int }

val request_id : request -> int

(** Strict decoder: every malformed payload is a typed error, never an
    exception.  [max_blocks] (default 100_000) bounds the accepted CFG
    size before any array is allocated from attacker-controlled
    numbers. *)
val request_of_string : ?max_blocks:int -> string -> (request, Errors.t) result

(** Canonical encoder (the client side; also the QCheck round-trip
    anchor). *)
val request_to_string : request -> string

(** {1 Responses} *)

(** Kebab-case wire name of an error class, e.g. ["invalid-cfg"]. *)
val error_class : Errors.t -> string

type ok_payload = {
  layout : Layout.order;  (** certified block order *)
  cost : int;  (** independently recomputed penalty, cycles *)
  cached : bool;  (** served from the layout cache *)
  warm : bool;  (** solver seeded from a cached tour (profile drift) *)
  fallbacks : int;  (** degradations along the method chain *)
}

type response =
  | Ok_layout of { id : int; payload : ok_payload }
  | Error_response of { id : int option; error : Errors.t }
  | Stats_response of { id : int; stats : Ba_obs.Json.t }
  | Shutdown_ack of { id : int }

val response_to_string : response -> string

(** The client-side structural view of a response: typed errors travel
    as their wire triple (class, exit code, message) — the client does
    not reconstruct the server's {!Errors.t}. *)
type client_error = { eclass : string; eexit : int; emessage : string }

type client_response =
  | C_ok of { id : int; payload : ok_payload }
  | C_error of { id : int option; error : client_error }
  | C_stats of { id : int; stats : Ba_obs.Json.t }
  | C_shutdown of { id : int }

(** Decoder for the client side (tests, the soak driver). *)
val response_of_string : string -> (client_response, string) result
