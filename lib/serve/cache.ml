(** LRU layout cache with a drift index and JSON persistence.

    Single-threaded by design: the serve loop handles requests
    sequentially (the parallelism lives {e inside} a request, in the
    engine's domain pool), so no locking is needed here. *)

open Ba_cfg
module Profile = Ba_profile.Profile
module Errors = Ba_robust.Errors
module Json = Ba_obs.Json

(* FNV-1a, same construction as Cfg.structural_hash (which is private
   to ba_cfg); hashes the profile rows in order — the sketch is
   order-sensitive on purpose, two profiles differing only in counts
   must not collide structurally *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let fnv1a_int h v =
  let h = ref h in
  for shift = 0 to 7 do
    h := fnv1a_byte !h (v lsr (shift * 8))
  done;
  !h

let string_sketch s0 =
  let h = ref fnv_offset in
  String.iter (fun c -> h := fnv1a_byte !h (Char.code c)) s0;
  !h

let profile_sketch (p : Profile.proc) =
  let h = ref (fnv1a_int fnv_offset (Array.length p.Profile.freqs)) in
  Array.iter
    (fun row ->
      h := fnv1a_int !h (Array.length row);
      Array.iter
        (fun (dst, count) -> h := fnv1a_int (fnv1a_int !h dst) count)
        row)
    p.Profile.freqs;
  !h

type key = { cfg_hash : int64; profile_hash : int64; model_hash : int64 }

(* the model participates in the key through its canonical name, so one
   daemon caches layouts for several models side by side and a hit is
   always certified under the very model that produced it *)
let model_sketch m = string_sketch (Ba_machine.Model.to_string m)

let key_of cfg profile ~model =
  {
    cfg_hash = Cfg.structural_hash cfg;
    profile_hash = profile_sketch profile;
    model_hash = model_sketch model;
  }

type entry = {
  e_key : key;
  order : Layout.order;
  cost : int;
  mutable last_use : int;
}

type t = {
  capacity : int;
  tbl : (key, entry) Hashtbl.t;
  drift : (int64 * int64, entry) Hashtbl.t;
      (** (cfg hash, model hash) → most recently added *)
  mutable tick : int;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    tbl = Hashtbl.create 64;
    drift = Hashtbl.create 64;
    tick = 0;
  }

let length t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> None
  | Some e ->
      touch t e;
      Some (Array.copy e.order, e.cost)

let drift_key key = (key.cfg_hash, key.model_hash)

let remove t key =
  match Hashtbl.find_opt t.tbl key with
  | None -> ()
  | Some e ->
      Hashtbl.remove t.tbl key;
      (* the drift index may point at the removed entry; repoint it at
         the most recent surviving entry for that (CFG, model), if any *)
      (match Hashtbl.find_opt t.drift (drift_key key) with
      | Some d when d == e ->
          Hashtbl.remove t.drift (drift_key key);
          Hashtbl.iter
            (fun k e' ->
              if drift_key k = drift_key key then
                match Hashtbl.find_opt t.drift (drift_key key) with
                | Some cur when cur.last_use >= e'.last_use -> ()
                | _ -> Hashtbl.replace t.drift (drift_key key) e')
            t.tbl
      | _ -> ())

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ e acc ->
        match acc with
        | Some best when best.last_use <= e.last_use -> acc
        | _ -> Some e)
      t.tbl None
  in
  match victim with None -> () | Some e -> remove t e.e_key

let add t key order cost =
  remove t key;
  while Hashtbl.length t.tbl >= t.capacity do
    evict_lru t
  done;
  let e = { e_key = key; order = Array.copy order; cost; last_use = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e;
  Hashtbl.replace t.drift (drift_key key) e

let drift_hint t key =
  Option.map
    (fun e -> Array.copy e.order)
    (Hashtbl.find_opt t.drift (drift_key key))

(* ---------------- persistence ---------------- *)

let hex h = Printf.sprintf "%016Lx" h

let of_hex s =
  if String.length s = 16
     && String.for_all
          (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
          s
  then Int64.of_string_opt ("0x" ^ s)
  else None

let save t path =
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.tbl []
    (* oldest first, so a load replays insertions in LRU order *)
    |> List.sort (fun a b -> compare a.last_use b.last_use)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.String "balign-cache-2");
        ( "entries",
          Json.List
            (List.map
               (fun e ->
                 Json.Obj
                   [
                     ("cfg", Json.String (hex e.e_key.cfg_hash));
                     ("profile", Json.String (hex e.e_key.profile_hash));
                     ("model", Json.String (hex e.e_key.model_hash));
                     ( "layout",
                       Json.List
                         (Array.to_list
                            (Array.map (fun l -> Json.Int l) e.order)) );
                     ("cost", Json.Int e.cost);
                   ])
               entries) );
      ]
  in
  match Json.write_file path doc with
  | () -> Ok ()
  | exception Sys_error reason -> Error (Errors.Io_error { path; reason })

let load ~capacity path =
  let fail reason = Error (Errors.Io_error { path; reason }) in
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error reason -> fail reason
  | s -> (
      match Json.parse s with
      | Error m -> fail ("invalid cache JSON: " ^ m)
      | Ok doc -> (
          match Option.bind (Json.member "schema" doc) Json.to_str with
          | Some "balign-cache-2" -> (
              match Option.bind (Json.member "entries" doc) Json.to_list with
              | None -> fail "cache has no entries list"
              | Some entries ->
                  let t = create ~capacity in
                  let to_int v =
                    match Json.to_number v with
                    | Some f when Float.is_integer f -> Some (int_of_float f)
                    | _ -> None
                  in
                  let entry_ok e =
                    match
                      ( Option.bind (Json.member "cfg" e) Json.to_str
                        |> Fun.flip Option.bind of_hex,
                        Option.bind (Json.member "profile" e) Json.to_str
                        |> Fun.flip Option.bind of_hex,
                        Option.bind (Json.member "model" e) Json.to_str
                        |> Fun.flip Option.bind of_hex,
                        Option.bind (Json.member "layout" e) Json.to_list,
                        Option.bind (Json.member "cost" e) to_int )
                    with
                    | ( Some cfg_hash,
                        Some profile_hash,
                        Some model_hash,
                        Some layout,
                        Some cost ) ->
                        let order = List.filter_map to_int layout in
                        if List.length order = List.length layout then
                          Some
                            ( { cfg_hash; profile_hash; model_hash },
                              Array.of_list order,
                              cost )
                        else None
                    | _ -> None
                  in
                  let bad = ref false in
                  List.iter
                    (fun e ->
                      match entry_ok e with
                      | Some (key, order, cost) -> add t key order cost
                      | None -> bad := true)
                    entries;
                  if !bad then fail "cache entry is malformed" else Ok t)
          | _ -> fail "not a balign-cache-2 snapshot"))
