(** Certified layout cache for the daemon, keyed by (CFG structural
    hash, profile sketch, model name hash) with LRU eviction and
    optional JSON persistence for warm restarts.  One daemon serves
    several models from the same cache without cross-talk: the model's
    canonical name is part of the key.

    The cache stores {e claims}, not truths: a 64-bit key can collide
    and a persisted file can be tampered with, so the server re-runs
    {!Ba_check.Certify} on every hit before trusting a cached layout —
    a poisoned entry is evicted and re-solved, never served (see
    docs/SERVING.md).  Next to the exact map the cache keeps a
    per-(CFG, model) {e drift index}: the most recent layout of each
    (CFG hash, model hash) pair, used to warm-start the solver when the
    same procedure arrives with a changed profile. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type key = { cfg_hash : int64; profile_hash : int64; model_hash : int64 }

(** Order-sensitive 64-bit digest of a per-procedure profile. *)
val profile_sketch : Profile.proc -> int64

(** FNV-1a digest of the model's canonical name. *)
val model_sketch : Ba_machine.Model.t -> int64

val key_of : Cfg.t -> Profile.proc -> model:Ba_machine.Model.t -> key

type t

(** [create ~capacity] is an empty cache holding at most [capacity]
    entries (at least 1). *)
val create : capacity:int -> t

val length : t -> int

(** Exact lookup; bumps the entry's recency.  Returns a {e copy} of the
    stored layout together with its cached cost. *)
val find : t -> key -> (Layout.order * int) option

(** [add t key order cost] inserts (copying [order]), evicting the
    least-recently-used entry when full, and updates the drift index. *)
val add : t -> key -> Layout.order -> int -> unit

(** Drop one entry (hit-time certification failed: the entry is
    poisoned or a key collision). *)
val remove : t -> key -> unit

(** Most recent layout cached for the key's (CFG hash, model hash)
    under {e any} profile — the warm-start seed for profile drift.
    Copied. *)
val drift_hint : t -> key -> Layout.order option

(** {1 Persistence (schema ["balign-cache-2"])} *)

(** [save t path] writes every entry as canonical JSON. *)
val save : t -> string -> (unit, Ba_robust.Errors.t) result

(** [load ~capacity path] rebuilds a cache from a snapshot.  Malformed
    files yield a typed error, never an exception; entries beyond
    [capacity] are dropped oldest-first.  The snapshot is untrusted
    input — loaded layouts are only ever served after hit-time
    certification. *)
val load : capacity:int -> string -> (t, Ba_robust.Errors.t) result
