(** Per-procedure pipeline tasks: pure, re-entrant units (build →
    solve → realize → verify) with their own [(seed, id)]-derived RNG
    and a task-local stage clock, merged back by index after the join.
    See docs/ARCHITECTURE.md for the determinism contract. *)

(** Pipeline stages a task may charge time to. *)
type stage = Build | Solve | Realize | Verify

(** Seconds spent per stage; immutable, one value per task. *)
type stages = {
  build_s : float;
  solve_s : float;
  realize_s : float;
  verify_s : float;
}

val no_stages : stages

(** Pure merges, applied in index order after the join. *)
val add_stages : stages -> stages -> stages

val sum_stages : stages list -> stages

(** Per-task execution context: seeded RNG + task-local stage clock. *)
type ctx

(** The task's own random stream, a function of [(seed, id)] only. *)
val rng : ctx -> Random.State.t

(** The task's span buffer: single-writer while the task runs, a no-op
    unless tracing is enabled.  Pipeline stages may record their own
    finer-grained spans into it. *)
val spans : ctx -> Ba_obs.Span.buf

(** [staged ctx stage f] runs [f ()], charging its wall-clock time to
    [stage] in the task-local record (and recording a stage span when
    tracing is enabled). *)
val staged : ctx -> stage -> (unit -> 'a) -> 'a

type 'a t = {
  id : int;  (** merge key: procedure / row index *)
  label : string;
  run : ctx -> 'a;
}

val make : id:int -> ?label:string -> (ctx -> 'a) -> 'a t

(** The documented seeding scheme: splitmix64 of [seed] xor a
    golden-ratio multiple of [id + 1] — distinct well-mixed streams
    per task, independent of scheduling. *)
val derive_seed : seed:int -> id:int -> int

val seed_rng : seed:int -> id:int -> Random.State.t

type 'a outcome = {
  id : int;
  label : string;
  value : 'a;
  stages : stages;
  elapsed_s : float;
  spans : Ba_obs.Span.span array;
      (** completed spans (empty unless tracing is on) *)
}

(** Execute one task on the calling domain (inside a root ["task"]
    span when tracing is on). *)
val run_one : seed:int -> 'a t -> 'a outcome

(** Execute every task under the executor; outcomes come back in input
    order whatever the completion order was.  Joined span buffers are
    handed to {!Ba_obs.Trace} in index order. *)
val run_all : ?seed:int -> Executor.t -> 'a t array -> 'a outcome array
