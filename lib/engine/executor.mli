(** Pluggable executors for independent index-addressed jobs: [Seq]
    (historical sequential behaviour) or [Pool j] (a fixed pool of [j]
    OCaml 5 domains, jobs claimed from an atomic counter).  Results are
    merged by index and exceptions re-raised lowest-index-first, so for
    pure jobs the outcome is bit-identical at any job count.  See
    docs/ARCHITECTURE.md for the determinism contract. *)

type t =
  | Seq  (** evaluate jobs in index order on the calling domain *)
  | Pool of int  (** fixed pool of this many domains (including the caller) *)

(** [Domain.recommended_domain_count ()]. *)
val default_jobs : unit -> int

(** [of_jobs n] is [Seq] for [n <= 1], [Pool n] otherwise. *)
val of_jobs : int -> t

(** [pool ()] sizes the pool by {!default_jobs}; [pool ~domains ()]
    fixes it explicitly. *)
val pool : ?domains:int -> unit -> t

(** The number of domains this executor will use (1 for [Seq]). *)
val jobs : t -> int

val pp : Format.formatter -> t -> unit

(** [init t n f] is [Array.init n f] under executor [t].  [f] must be a
    pure function of its index (no cross-job mutation); then the result
    — including which exception escapes, if any — does not depend on
    the job count. *)
val init : t -> int -> (int -> 'a) -> 'a array

(** Element-wise mappings, results merged by input index. *)
val map : t -> ('a -> 'b) -> 'a array -> 'b array

val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [map_list t f l] maps over a list, preserving order. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
