(** Pluggable executors for independent per-procedure work.

    An executor evaluates [n] independent index-addressed jobs and
    returns their results merged {e by index}, so the output of a
    mapping is bit-identical at any job count.  Two implementations:

    - {!Seq} evaluates jobs [0 .. n-1] in order on the calling domain
      (the historical sequential behaviour);
    - [Pool j] evaluates them on a fixed pool of [j] OCaml 5 domains.
      Jobs are claimed from a shared atomic counter (no work stealing,
      no reordering of results); each job's result is written to its
      own slot of the result array, so no two domains ever write the
      same location.

    Determinism contract: provided every job [f i] is a pure function
    of [i] (no cross-job mutation, RNG derived from the job index —
    see {!Task}), [init], [map] and [mapi] return identical arrays for
    every executor.  Exceptions are deterministic too: if several jobs
    raise, the exception of the {e lowest} job index is re-raised on
    the caller's domain (with its backtrace), exactly what [Seq] would
    have raised first. *)

type t =
  | Seq  (** evaluate jobs in index order on the calling domain *)
  | Pool of int  (** fixed pool of this many domains (including the caller) *)

let default_jobs () = Domain.recommended_domain_count ()

let of_jobs n = if n <= 1 then Seq else Pool n

let pool ?domains () =
  match domains with Some j -> of_jobs j | None -> of_jobs (default_jobs ())

let jobs = function Seq -> 1 | Pool j -> max 1 j

let pp ppf = function
  | Seq -> Fmt.string ppf "seq"
  | Pool j -> Fmt.pf ppf "pool:%d" j

(** One job's outcome, kept internal: a value or the exception it
    raised, with the backtrace captured on the worker domain. *)
type 'a slot =
  | Empty
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

(** [init t n f] is [Array.init n f] evaluated under executor [t];
    results (and the first-by-index exception) are independent of the
    job count for pure [f]. *)
let init t n f =
  if n < 0 then invalid_arg "Executor.init: negative length";
  match t with
  | Seq -> Array.init n f
  | Pool j when min j n <= 1 -> Array.init n f
  | Pool j ->
      let slots = Array.make n Empty in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (slots.(i) <-
               (match f i with
               | v -> Value v
               | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
            loop ()
          end
        in
        loop ()
      in
      let helpers = Array.init (min j n - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join helpers;
      (* deterministic failure: re-raise what Seq would have hit first *)
      Array.iter
        (function
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Value _ -> ()
          | Empty -> assert false)
        slots;
      Array.map (function Value v -> v | _ -> assert false) slots

(** [mapi t f a] / [map t f a]: element-wise mapping under [t], results
    merged by index. *)
let mapi t f a = init t (Array.length a) (fun i -> f i a.(i))
let map t f a = mapi t (fun _ x -> f x) a

(** [map_list t f l] maps over a list, preserving order. *)
let map_list t f l =
  Array.to_list (map t f (Array.of_list l))
