(** Per-procedure alignment tasks.

    A task is one pure, re-entrant unit of pipeline work — for the
    aligner, "build the reduction → solve → realize → verify" for a
    single procedure — identified by the index it will be merged back
    under.  Each task gets:

    - its own {!Random.State}, derived from the pipeline seed and the
      task id only (never from scheduling), so randomized stages make
      the same draws no matter which domain runs them or in what order;
    - a stage clock that accumulates wall-clock seconds into a
      {e task-local} record, returned in the task's {!outcome} — tasks
      never write shared timing state, the caller merges after the
      join.

    Tasks must not mutate anything reachable from another task; under
    that contract {!run_all} produces identical outcomes (modulo the
    measured seconds) on every {!Executor.t}. *)

(** Pipeline stages a task may charge time to, mirroring the classic
    per-procedure aligner pipeline. *)
type stage = Build | Solve | Realize | Verify

(** Seconds spent per stage, immutable; one value per task. *)
type stages = {
  build_s : float;  (** reduction / instance construction *)
  solve_s : float;  (** the search itself *)
  realize_s : float;  (** tour/order → realized layout *)
  verify_s : float;  (** semantic checks on the result *)
}

let no_stages = { build_s = 0.; solve_s = 0.; realize_s = 0.; verify_s = 0. }

(** Pure merge of two stage records (used index-order after the join). *)
let add_stages a b =
  {
    build_s = a.build_s +. b.build_s;
    solve_s = a.solve_s +. b.solve_s;
    realize_s = a.realize_s +. b.realize_s;
    verify_s = a.verify_s +. b.verify_s;
  }

let sum_stages l = List.fold_left add_stages no_stages l

(* ------------------------------------------------------------------ *)

(** The per-task execution context: the seeded RNG, the task-local
    stage clock, and the task's span buffer (single-writer; disabled —
    a no-op — unless tracing is on, see {!Ba_obs.Trace}). *)
type ctx = {
  rng : Random.State.t;
  mutable acc : stages;  (** task-local; never shared across tasks *)
  span_buf : Ba_obs.Span.buf;  (** task-local, lock-free by ownership *)
}

let rng ctx = ctx.rng
let spans ctx = ctx.span_buf

let stage_name = function
  | Build -> "build"
  | Solve -> "solve"
  | Realize -> "realize"
  | Verify -> "verify"

(** [staged ctx stage f] runs [f ()] charging its wall-clock time to
    [stage] in the task-local record, and — when tracing is enabled —
    recording one span named after the stage. *)
let staged ctx stage f =
  Ba_obs.Span.with_span ctx.span_buf (stage_name stage) (fun () ->
      let t0 = Unix.gettimeofday () in
      let finally () =
        let dt = Unix.gettimeofday () -. t0 in
        ctx.acc <-
          (match stage with
          | Build -> { ctx.acc with build_s = ctx.acc.build_s +. dt }
          | Solve -> { ctx.acc with solve_s = ctx.acc.solve_s +. dt }
          | Realize -> { ctx.acc with realize_s = ctx.acc.realize_s +. dt }
          | Verify -> { ctx.acc with verify_s = ctx.acc.verify_s +. dt })
      in
      Fun.protect ~finally f)

(* ------------------------------------------------------------------ *)

type 'a t = {
  id : int;  (** merge key: procedure / row index *)
  label : string;
  run : ctx -> 'a;
}

let make ~id ?(label = "") run = { id; label; run }

(** The documented seeding scheme: splitmix64 over [seed] xor a
    golden-ratio multiple of [id + 1].  Every task id gets a distinct,
    well-mixed stream that depends only on [(seed, id)]. *)
let derive_seed ~seed ~id =
  let splitmix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (id + 1)) 0x9e3779b97f4a7c15L)
  in
  Int64.to_int (splitmix64 z) land max_int

let seed_rng ~seed ~id = Random.State.make [| derive_seed ~seed ~id |]

(** One task's merged-back result. *)
type 'a outcome = {
  id : int;
  label : string;
  value : 'a;
  stages : stages;  (** per-task stage seconds (task-local, merged after join) *)
  elapsed_s : float;  (** total wall-clock of the task *)
  spans : Ba_obs.Span.span array;
      (** the task's completed spans (empty unless tracing is on) *)
}

(** [run_one ~seed task] executes one task on the calling domain.  With
    tracing on, the whole task body runs inside a root span named
    ["task"], so stage spans nest under it in the trace viewer. *)
let run_one ~seed (t : 'a t) : 'a outcome =
  let span_buf =
    Ba_obs.Span.create ~task:t.id ~enabled:(Ba_obs.Trace.enabled ())
  in
  let ctx = { rng = seed_rng ~seed ~id:t.id; acc = no_stages; span_buf } in
  let t0 = Unix.gettimeofday () in
  let value = Ba_obs.Span.with_span span_buf "task" (fun () -> t.run ctx) in
  {
    id = t.id;
    label = t.label;
    value;
    stages = ctx.acc;
    elapsed_s = Unix.gettimeofday () -. t0;
    spans = Ba_obs.Span.spans span_buf;
  }

(** [run_all ?seed exec tasks] executes every task under [exec] and
    returns the outcomes in input order (deterministic merge by
    position, regardless of which domain finished first).  After the
    join, each task's span buffer is handed to the global trace in
    index order, so trace groups are scheduling-independent too. *)
let run_all ?(seed = 0) (exec : Executor.t) (tasks : 'a t array) :
    'a outcome array =
  let outcomes =
    Executor.init exec (Array.length tasks) (fun i -> run_one ~seed tasks.(i))
  in
  Ba_obs.Metrics.incr ~n:(Array.length tasks) Ba_obs.Metrics.Tasks_run;
  Ba_obs.Metrics.set_gauge Ba_obs.Metrics.Jobs (Executor.jobs exec);
  if Ba_obs.Trace.enabled () then
    Array.iter
      (fun o -> Ba_obs.Trace.add_task ~label:o.label ~task:o.id o.spans)
      outcomes;
  outcomes
