(** Per-procedure alignment tasks.

    A task is one pure, re-entrant unit of pipeline work — for the
    aligner, "build the reduction → solve → realize → verify" for a
    single procedure — identified by the index it will be merged back
    under.  Each task gets:

    - its own {!Random.State}, derived from the pipeline seed and the
      task id only (never from scheduling), so randomized stages make
      the same draws no matter which domain runs them or in what order;
    - a stage clock that accumulates wall-clock seconds into a
      {e task-local} record, returned in the task's {!outcome} — tasks
      never write shared timing state, the caller merges after the
      join.

    Tasks must not mutate anything reachable from another task; under
    that contract {!run_all} produces identical outcomes (modulo the
    measured seconds) on every {!Executor.t}. *)

(** Pipeline stages a task may charge time to, mirroring the classic
    per-procedure aligner pipeline. *)
type stage = Build | Solve | Realize | Verify

(** Seconds spent per stage, immutable; one value per task. *)
type stages = {
  build_s : float;  (** reduction / instance construction *)
  solve_s : float;  (** the search itself *)
  realize_s : float;  (** tour/order → realized layout *)
  verify_s : float;  (** semantic checks on the result *)
}

let no_stages = { build_s = 0.; solve_s = 0.; realize_s = 0.; verify_s = 0. }

(** Pure merge of two stage records (used index-order after the join). *)
let add_stages a b =
  {
    build_s = a.build_s +. b.build_s;
    solve_s = a.solve_s +. b.solve_s;
    realize_s = a.realize_s +. b.realize_s;
    verify_s = a.verify_s +. b.verify_s;
  }

let sum_stages l = List.fold_left add_stages no_stages l

(* ------------------------------------------------------------------ *)

(** The per-task execution context: the seeded RNG plus the task-local
    stage clock. *)
type ctx = {
  rng : Random.State.t;
  mutable acc : stages;  (** task-local; never shared across tasks *)
}

let rng ctx = ctx.rng

(** [staged ctx stage f] runs [f ()] charging its wall-clock time to
    [stage] in the task-local record. *)
let staged ctx stage f =
  let t0 = Unix.gettimeofday () in
  let finally () =
    let dt = Unix.gettimeofday () -. t0 in
    ctx.acc <-
      (match stage with
      | Build -> { ctx.acc with build_s = ctx.acc.build_s +. dt }
      | Solve -> { ctx.acc with solve_s = ctx.acc.solve_s +. dt }
      | Realize -> { ctx.acc with realize_s = ctx.acc.realize_s +. dt }
      | Verify -> { ctx.acc with verify_s = ctx.acc.verify_s +. dt })
  in
  Fun.protect ~finally f

(* ------------------------------------------------------------------ *)

type 'a t = {
  id : int;  (** merge key: procedure / row index *)
  label : string;
  run : ctx -> 'a;
}

let make ~id ?(label = "") run = { id; label; run }

(** The documented seeding scheme: splitmix64 over [seed] xor a
    golden-ratio multiple of [id + 1].  Every task id gets a distinct,
    well-mixed stream that depends only on [(seed, id)]. *)
let derive_seed ~seed ~id =
  let splitmix64 z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
              0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
              0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul (Int64.of_int (id + 1)) 0x9e3779b97f4a7c15L)
  in
  Int64.to_int (splitmix64 z) land max_int

let seed_rng ~seed ~id = Random.State.make [| derive_seed ~seed ~id |]

(** One task's merged-back result. *)
type 'a outcome = {
  id : int;
  label : string;
  value : 'a;
  stages : stages;  (** per-task stage seconds (task-local, merged after join) *)
  elapsed_s : float;  (** total wall-clock of the task *)
}

(** [run_one ~seed task] executes one task on the calling domain. *)
let run_one ~seed (t : 'a t) : 'a outcome =
  let ctx = { rng = seed_rng ~seed ~id:t.id; acc = no_stages } in
  let t0 = Unix.gettimeofday () in
  let value = t.run ctx in
  {
    id = t.id;
    label = t.label;
    value;
    stages = ctx.acc;
    elapsed_s = Unix.gettimeofday () -. t0;
  }

(** [run_all ?seed exec tasks] executes every task under [exec] and
    returns the outcomes in input order (deterministic merge by
    position, regardless of which domain finished first). *)
let run_all ?(seed = 0) (exec : Executor.t) (tasks : 'a t array) :
    'a outcome array =
  Executor.init exec (Array.length tasks) (fun i -> run_one ~seed tasks.(i))
