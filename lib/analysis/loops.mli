(** Natural-loop forest with nesting depths, plus irreducible-region
    detection, built on {!Dom}.

    A retreating edge [t → h] (one whose target does not come later in
    reverse postorder) is a {e back edge} when [h] dominates [t]; the
    natural loop of a header is everything that can reach its back-edge
    tails without passing through the header.  Retreating edges whose
    target does {e not} dominate the tail witness irreducible control
    flow: no natural loop is formed for them, and they are reported
    separately (rule BA301). *)

open Ba_cfg

type loop = {
  header : Block.label;
  parent : int;  (** index of the enclosing loop, [-1] for top level *)
  depth : int;  (** nesting depth, 1 for outermost loops *)
  n_blocks : int;  (** blocks whose {e innermost} loop this is *)
  back_edges : (Block.label * Block.label) list;  (** [(tail, header)] *)
}

type t

val compute : Dom.t -> t

val loops : t -> loop array

(** Index of the innermost loop containing a block, [-1] if none. *)
val innermost : t -> Block.label -> int

(** Nesting depth of a block: depth of its innermost loop, 0 outside
    any loop. *)
val depth_of : t -> Block.label -> int

(** Deepest nesting in the procedure, 0 when loop-free. *)
val max_depth : t -> int

(** [mem t i l] — is block [l] inside loop [i] (including nested
    loops)?  O(nesting depth). *)
val mem : t -> int -> Block.label -> bool

(** [header_of t l] is [Some i] when [l] is the header of loop [i]. *)
val header_of : t -> Block.label -> int option

(** Retreating edges whose target does not dominate the tail —
    witnesses of irreducible control flow, as [(src, dst)] pairs in
    deterministic (reverse-postorder source) order. *)
val irreducible : t -> (Block.label * Block.label) list
