(** [balign analyze] summaries (see report.mli). *)

open Ba_cfg
module Json = Ba_obs.Json
module Profile = Ba_profile.Profile

type proc_report = {
  fid : int;
  name : string;
  n_blocks : int;
  n_reachable : int;
  n_edges : int;
  dom_height : int;
  n_loops : int;
  max_loop_depth : int;
  n_back_edges : int;
  loops : (Block.label * int * int) list;
  irreducible : (Block.label * Block.label) list;
  est_scale : int;
  est_transfers : int;
  hottest : (Block.label * int) list;
}

let analyze ?(top = 5) ?invocations ~fid (g : Cfg.t) : proc_report =
  let dom = Dom.compute g in
  let loops = Loops.compute dom in
  let est = Estimate.estimate ?invocations dom loops in
  let n = Cfg.n_blocks g in
  let dom_height = ref 0 in
  for l = 0 to n - 1 do
    if Dom.depth dom l > !dom_height then dom_height := Dom.depth dom l
  done;
  let larr = Loops.loops loops in
  let n_back_edges =
    Array.fold_left
      (fun acc (l : Loops.loop) -> acc + List.length l.Loops.back_edges)
      0 larr
  in
  let hot = ref [] in
  for l = 0 to n - 1 do
    let c = Profile.out_count est.Estimate.profile l in
    if c > 0 then hot := (l, c) :: !hot
  done;
  let hot =
    List.sort
      (fun (l1, c1) (l2, c2) ->
        if c1 <> c2 then compare c2 c1 else compare l1 l2)
      !hot
  in
  let rec take k = function
    | x :: tl when k > 0 -> x :: take (k - 1) tl
    | _ -> []
  in
  {
    fid;
    name = g.Cfg.name;
    n_blocks = n;
    n_reachable = Dom.n_reachable dom;
    n_edges = Cfg.n_edges g;
    dom_height = !dom_height;
    n_loops = Array.length larr;
    max_loop_depth = Loops.max_depth loops;
    n_back_edges;
    loops =
      Array.to_list
        (Array.map
           (fun (l : Loops.loop) -> (l.Loops.header, l.Loops.depth, l.Loops.n_blocks))
           larr);
    irreducible = Loops.irreducible loops;
    est_scale = int_of_float est.Estimate.scale;
    est_transfers = Profile.total_transfers est.Estimate.profile;
    hottest = take top hot;
  }

let pp ppf r =
  Fmt.pf ppf "proc %d (%s): %d block(s) (%d reachable), %d edge(s), dom height %d@."
    r.fid r.name r.n_blocks r.n_reachable r.n_edges r.dom_height;
  Fmt.pf ppf "  loops: %d (max depth %d), back edge(s) %d, irreducible edge(s) %d@."
    r.n_loops r.max_loop_depth r.n_back_edges (List.length r.irreducible);
  List.iter
    (fun (h, d, nb) ->
      Fmt.pf ppf "    loop at block %d: depth %d, %d block(s)@." h d nb)
    r.loops;
  List.iter
    (fun (u, v) -> Fmt.pf ppf "    irreducible: %d -> %d@." u v)
    r.irreducible;
  Fmt.pf ppf "  estimated hotness (%d invocations, %d transfers):%a@."
    r.est_scale r.est_transfers
    Fmt.(list ~sep:nop (fun ppf (l, c) -> Fmt.pf ppf " %d:%d" l c))
    r.hottest

let proc_json r =
  Json.Obj
    [
      ("proc", Json.Int r.fid);
      ("name", Json.String r.name);
      ("n_blocks", Json.Int r.n_blocks);
      ("n_reachable", Json.Int r.n_reachable);
      ("n_edges", Json.Int r.n_edges);
      ("dom_height", Json.Int r.dom_height);
      ("n_loops", Json.Int r.n_loops);
      ("max_loop_depth", Json.Int r.max_loop_depth);
      ("n_back_edges", Json.Int r.n_back_edges);
      ( "loops",
        Json.List
          (List.map
             (fun (h, d, nb) ->
               Json.Obj
                 [
                   ("header", Json.Int h);
                   ("depth", Json.Int d);
                   ("n_blocks", Json.Int nb);
                 ])
             r.loops) );
      ( "irreducible",
        Json.List
          (List.map
             (fun (u, v) ->
               Json.Obj [ ("src", Json.Int u); ("dst", Json.Int v) ])
             r.irreducible) );
      ("est_scale", Json.Int r.est_scale);
      ("est_transfers", Json.Int r.est_transfers);
      ( "hottest",
        Json.List
          (List.map
             (fun (l, c) ->
               Json.Obj [ ("block", Json.Int l); ("count", Json.Int c) ])
             r.hottest) );
    ]

let program_json rs =
  Json.Obj
    [
      ("schema", Json.String "balign-analyze-1");
      ("procs", Json.List (List.map proc_json rs));
    ]
