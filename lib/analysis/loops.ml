(** Natural-loop forest (see loops.mli).

    Discovery is the classic attribute-innermost-first walk: headers
    are processed in decreasing reverse-postorder (an outer header
    dominates every inner header, so it has a strictly smaller rpo
    number and is processed later), and each loop claims, via a
    backward walk from its back-edge tails, every block not yet owned
    by an inner loop — when the walk hits an inner loop it re-parents
    that loop and continues from its header's predecessors.  Total
    work is O(E · max nesting) with no recursion. *)

open Ba_cfg

type loop = {
  header : Block.label;
  parent : int;
  depth : int;
  n_blocks : int;
  back_edges : (Block.label * Block.label) list;
}

type t = {
  loops : loop array;
  loop_of : int array;  (* label -> innermost loop index, -1 *)
  header_idx : int array;  (* label -> loop index if header, -1 *)
  max_depth : int;
  irreducible : (Block.label * Block.label) list;
}

let loops t = t.loops
let innermost t l = t.loop_of.(l)

let depth_of t l =
  if t.loop_of.(l) < 0 then 0 else t.loops.(t.loop_of.(l)).depth

let max_depth t = t.max_depth
let header_of t l = if t.header_idx.(l) < 0 then None else Some t.header_idx.(l)
let irreducible t = t.irreducible

let mem t i l =
  let rec walk j = j >= 0 && (j = i || walk t.loops.(j).parent) in
  walk t.loop_of.(l)

let compute (dom : Dom.t) : t =
  let g = Dom.cfg dom in
  let n = Cfg.n_blocks g in
  let order = Dom.order dom in
  (* classify retreating edges: back edges per header vs irreducible *)
  let tails = Array.make n [] in
  let irreducible = ref [] in
  Array.iter
    (fun u ->
      List.iter
        (fun v ->
          if Dom.rpo_number dom v <= Dom.rpo_number dom u then
            if Dom.dominates dom v u then tails.(v) <- u :: tails.(v)
            else irreducible := (u, v) :: !irreducible)
        (Block.distinct_successors (Cfg.block g u)))
    order;
  let irreducible = List.rev !irreducible in
  (* growable int worklist *)
  let buf = ref (Array.make 64 0) in
  let len = ref 0 in
  let push x =
    if !len = Array.length !buf then begin
      let b = Array.make (2 * Array.length !buf) 0 in
      Array.blit !buf 0 b 0 !len;
      buf := b
    end;
    !buf.(!len) <- x;
    incr len
  in
  let loop_of = Array.make n (-1) in
  let header_idx = Array.make n (-1) in
  let back_edges = ref [] in
  let n_loops = ref 0 in
  let parent_arr = ref (Array.make 16 (-1)) in
  let header_arr = ref (Array.make 16 0) in
  let rec root j =
    if !parent_arr.(j) < 0 then j else root !parent_arr.(j)
  in
  for k = Array.length order - 1 downto 0 do
    let h = order.(k) in
    match tails.(h) with
    | [] -> ()
    | ts ->
        let li = !n_loops in
        incr n_loops;
        if li = Array.length !parent_arr then begin
          let grow a fill =
            let b = Array.make (2 * Array.length a) fill in
            Array.blit a 0 b 0 (Array.length a);
            b
          in
          parent_arr := grow !parent_arr (-1);
          header_arr := grow !header_arr 0
        end;
        !parent_arr.(li) <- -1;
        !header_arr.(li) <- h;
        header_idx.(h) <- li;
        loop_of.(h) <- li;
        len := 0;
        List.iter push ts;
        while !len > 0 do
          decr len;
          let b = !buf.(!len) in
          if loop_of.(b) < 0 then begin
            loop_of.(b) <- li;
            Dom.iter_preds dom b push
          end
          else begin
            let r = root loop_of.(b) in
            if r <> li then begin
              !parent_arr.(r) <- li;
              Dom.iter_preds dom !header_arr.(r) push
            end
          end
        done;
        back_edges := List.rev_map (fun t -> (t, h)) ts :: !back_edges
  done;
  (* assemble in discovery order; parents point at later (outer) indices,
     so depths resolve by iterating outermost-first *)
  let nl = !n_loops in
  let headers = Array.sub !header_arr 0 nl in
  let backs = Array.of_list (List.rev !back_edges) in
  let counts = Array.make nl 0 in
  Array.iter (fun li -> if li >= 0 then counts.(li) <- counts.(li) + 1) loop_of;
  let depth = Array.make nl 0 in
  let max_depth = ref 0 in
  for li = nl - 1 downto 0 do
    let p = !parent_arr.(li) in
    depth.(li) <- (if p < 0 then 1 else depth.(p) + 1);
    if depth.(li) > !max_depth then max_depth := depth.(li)
  done;
  let loops =
    Array.init nl (fun li ->
        {
          header = headers.(li);
          parent = !parent_arr.(li);
          depth = depth.(li);
          n_blocks = counts.(li);
          back_edges = backs.(li);
        })
  in
  { loops; loop_of; header_idx; max_depth = !max_depth; irreducible }
