(** Dominator analysis over {!Ba_cfg.Cfg.t}: reverse postorder, CSR
    predecessor lists, and the Cooper–Harvey–Kennedy iterative dominator
    tree, with O(1) dominance queries through dominator-tree DFS
    intervals.

    Everything runs on flat int arrays with explicit work stacks — no
    recursion, no per-node allocation — so the 10⁵–10⁶-block `scale`
    families analyze in near-linear time without overflowing the OCaml
    stack.  Unreachable blocks carry no dominator information
    ({!rpo_number} [-1], {!idom} [None], {!dominates} false). *)

open Ba_cfg

type t

(** Analyze one procedure.  Total: accepts any structurally sound CFG,
    including ones with unreachable blocks or irreducible flow. *)
val compute : Cfg.t -> t

val cfg : t -> Cfg.t

(** Number of blocks reachable from the entry. *)
val n_reachable : t -> int

val is_reachable : t -> Block.label -> bool

(** Reachable blocks in reverse postorder; element 0 is the entry. *)
val order : t -> Block.label array

(** Position of a block in {!order}; [-1] if unreachable. *)
val rpo_number : t -> Block.label -> int

(** Immediate dominator; [None] for the entry and unreachable blocks. *)
val idom : t -> Block.label -> Block.label option

(** [dominates t a b] — does [a] dominate [b]?  O(1); reflexive on
    reachable blocks, false whenever either block is unreachable. *)
val dominates : t -> Block.label -> Block.label -> bool

(** Depth of a block in the dominator tree (entry is 0); [-1] if
    unreachable. *)
val depth : t -> Block.label -> int

(** Iterate the distinct CFG predecessors of [l], reachable ones only. *)
val iter_preds : t -> Block.label -> (Block.label -> unit) -> unit
