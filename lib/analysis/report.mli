(** Per-procedure structural summaries for [balign analyze]: dominator
    and loop shape, irreducibility witnesses, and estimated hotness,
    renderable as deterministic text or JSON (schema
    ["balign-analyze-1"]). *)

open Ba_cfg

type proc_report = {
  fid : int;
  name : string;
  n_blocks : int;
  n_reachable : int;
  n_edges : int;
  dom_height : int;  (** deepest dominator-tree depth (entry is 0) *)
  n_loops : int;
  max_loop_depth : int;
  n_back_edges : int;
  loops : (Block.label * int * int) list;
      (** [(header, depth, n_blocks)], innermost-discovery order *)
  irreducible : (Block.label * Block.label) list;
  est_scale : int;  (** invocation scale of the hotness estimates *)
  est_transfers : int;  (** total estimated transfer count *)
  hottest : (Block.label * int) list;
      (** top blocks by estimated out-count, hottest first *)
}

(** [analyze ~fid g] runs {!Dom}, {!Loops} and {!Estimate} on one sound
    procedure.  [top] bounds the {!field-hottest} list (default 5). *)
val analyze : ?top:int -> ?invocations:int -> fid:int -> Cfg.t -> proc_report

val pp : Format.formatter -> proc_report -> unit

(** Whole-program document: [{"schema": "balign-analyze-1", "procs": [...]}] *)
val program_json : proc_report list -> Ba_obs.Json.t
