(** Static profile estimation: Wu–Larus-style branch probabilities from
    CFG structure alone, propagated to block/edge frequencies through
    the loop forest, and emitted as a flow-consistent integer profile.

    The estimator never looks at a training run.  Per branch it combines
    Ball–Larus-style heuristics — loop-back, loop-exit, loop-header,
    return/exit, and opcode/arity priors read off
    {!Ba_cfg.Block.terminator} — with the Dempster–Shafer evidence rule,
    then runs one frequency-propagation pass per loop (innermost first,
    computing each loop's cyclic probability and the derived header
    multiplier, capped so deep nests cannot overflow the cost model) and
    a final top-level pass.  The float frequencies are rounded to
    integer counts per block by largest-remainder apportionment and made
    {e exactly} Kirchhoff-consistent by routing each block's residual
    along a BFS path to the exit (excess) or from the entry (deficit),
    so the result passes {!Ba_profile.Profile.validate} and the BA2xx
    profile rules — including BA207 flow conservation — on any sound
    CFG, reducible or not.

    Everything is O(n + E) per loop-nesting level; the 10⁵-block `scale`
    families estimate in well under a second. *)

open Ba_cfg

type result = {
  profile : Ba_profile.Profile.proc;
      (** flow-consistent integer profile (sorted rows, positive counts) *)
  freq : float array;
      (** per-invocation block-frequency estimates, indexed by label
          (0.0 for unreachable blocks and blocks that cannot reach an
          exit) *)
  scale : float;
      (** invocation count the integer profile is scaled by (clamped
          from [?invocations] so no count can overflow the cost model) *)
}

(** Estimate one procedure from precomputed structure (shares the
    {!Dom.t}/{!Loops.t} with other analyses).  [invocations] requests
    the integer scale (default 10000). *)
val estimate : ?invocations:int -> Dom.t -> Loops.t -> result

(** [proc g] is [(estimate (Dom.compute g) (Loops.compute _)).profile]. *)
val proc : ?invocations:int -> Cfg.t -> Ba_profile.Profile.proc

(** Whole-program estimate: one {!proc} per procedure, no call graph
    (static estimation is intraprocedural). *)
val program : ?invocations:int -> Cfg.t array -> Ba_profile.Profile.t
