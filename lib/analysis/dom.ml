(** Dominators (Cooper–Harvey–Kennedy).  See dom.mli for the contract.

    Layout of the analysis record: [order]/[rpo] are the two directions
    of the reverse-postorder numbering over reachable blocks; the
    predecessor lists are a CSR pair ([pred_off] indexed by rpo number,
    [pred_lab] holding distinct reachable predecessor labels); [pre] /
    [post] are dominator-tree DFS intervals, which make [dominates] a
    pair of integer comparisons. *)

open Ba_cfg

type t = {
  g : Cfg.t;
  order : int array;  (* rpo number -> label *)
  rpo : int array;  (* label -> rpo number, -1 if unreachable *)
  idom_ : int array;  (* label -> idom label, -1 for entry/unreachable *)
  depth_ : int array;  (* label -> dominator-tree depth, -1 if unreachable *)
  pre : int array;  (* label -> dominator-tree DFS entry time *)
  post : int array;  (* label -> dominator-tree DFS exit time *)
  pred_off : int array;  (* rpo number -> offset into pred_lab *)
  pred_lab : int array;  (* distinct reachable predecessors, as labels *)
}

let cfg t = t.g
let n_reachable t = Array.length t.order
let is_reachable t l = t.rpo.(l) >= 0
let order t = t.order
let rpo_number t l = t.rpo.(l)
let idom t l = if t.idom_.(l) < 0 then None else Some t.idom_.(l)
let depth t l = t.depth_.(l)

let dominates t a b =
  t.rpo.(a) >= 0 && t.rpo.(b) >= 0
  && t.pre.(a) <= t.pre.(b)
  && t.post.(b) <= t.post.(a)

let iter_preds t l f =
  let r = t.rpo.(l) in
  if r >= 0 then
    for i = t.pred_off.(r) to t.pred_off.(r + 1) - 1 do
      f t.pred_lab.(i)
    done

let compute (g : Cfg.t) : t =
  let n = Cfg.n_blocks g in
  let succs =
    Array.init n (fun l -> Array.of_list (Block.successors (Cfg.block g l)))
  in
  (* --- depth-first search from the entry: reverse postorder --- *)
  let rpo = Array.make n (-1) in
  let visited = Array.make n false in
  let stack_l = Array.make n 0 and stack_i = Array.make n 0 in
  let sp = ref 0 in
  let push l =
    visited.(l) <- true;
    stack_l.(!sp) <- l;
    stack_i.(!sp) <- 0;
    incr sp
  in
  let post_seq = Array.make n 0 in
  let n_post = ref 0 in
  push g.Cfg.entry;
  while !sp > 0 do
    let u = stack_l.(!sp - 1) in
    let i = stack_i.(!sp - 1) in
    let su = succs.(u) in
    if i < Array.length su then begin
      stack_i.(!sp - 1) <- i + 1;
      let v = su.(i) in
      if not visited.(v) then push v
    end
    else begin
      decr sp;
      post_seq.(!n_post) <- u;
      incr n_post
    end
  done;
  let n_reach = !n_post in
  let order = Array.make n_reach 0 in
  for k = 0 to n_reach - 1 do
    let l = post_seq.(n_reach - 1 - k) in
    order.(k) <- l;
    rpo.(l) <- k
  done;
  (* --- distinct reachable predecessors, CSR over rpo numbers --- *)
  let pred_off = Array.make (n_reach + 1) 0 in
  let stamp = Array.make n (-1) in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if stamp.(v) <> 2 * u then begin
            stamp.(v) <- (2 * u);
            pred_off.(rpo.(v) + 1) <- pred_off.(rpo.(v) + 1) + 1
          end)
        succs.(u))
    order;
  for k = 1 to n_reach do
    pred_off.(k) <- pred_off.(k) + pred_off.(k - 1)
  done;
  let pred_lab = Array.make (max 1 pred_off.(n_reach)) 0 in
  let fill = Array.make n_reach 0 in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if stamp.(v) <> (2 * u) + 1 then begin
            stamp.(v) <- (2 * u) + 1;
            let r = rpo.(v) in
            pred_lab.(pred_off.(r) + fill.(r)) <- u;
            fill.(r) <- fill.(r) + 1
          end)
        succs.(u))
    order;
  (* --- Cooper–Harvey–Kennedy iteration over rpo numbers --- *)
  let idom_rpo = Array.make n_reach (-1) in
  idom_rpo.(0) <- 0;
  let rec intersect f1 f2 =
    if f1 = f2 then f1
    else if f1 > f2 then intersect idom_rpo.(f1) f2
    else intersect f1 idom_rpo.(f2)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 1 to n_reach - 1 do
      let new_idom = ref (-1) in
      for i = pred_off.(b) to pred_off.(b + 1) - 1 do
        let p = rpo.(pred_lab.(i)) in
        if idom_rpo.(p) >= 0 then
          new_idom := if !new_idom < 0 then p else intersect p !new_idom
      done;
      if !new_idom >= 0 && idom_rpo.(b) <> !new_idom then begin
        idom_rpo.(b) <- !new_idom;
        changed := true
      end
    done
  done;
  (* --- dominator-tree DFS: depths and O(1) dominance intervals --- *)
  let kids_off = Array.make (n_reach + 1) 0 in
  for b = 1 to n_reach - 1 do
    kids_off.(idom_rpo.(b) + 1) <- kids_off.(idom_rpo.(b) + 1) + 1
  done;
  for k = 1 to n_reach do
    kids_off.(k) <- kids_off.(k) + kids_off.(k - 1)
  done;
  let kids = Array.make (max 1 kids_off.(n_reach)) 0 in
  let kfill = Array.make n_reach 0 in
  for b = 1 to n_reach - 1 do
    let p = idom_rpo.(b) in
    kids.(kids_off.(p) + kfill.(p)) <- b;
    kfill.(p) <- kfill.(p) + 1
  done;
  let idom_ = Array.make n (-1) in
  for b = 1 to n_reach - 1 do
    idom_.(order.(b)) <- order.(idom_rpo.(b))
  done;
  let depth_ = Array.make n (-1) in
  let pre = Array.make n 0 and post = Array.make n 0 in
  let time = ref 0 in
  let sp = ref 0 in
  stack_l.(0) <- 0;
  stack_i.(0) <- 0;
  sp := 1;
  depth_.(g.Cfg.entry) <- 0;
  pre.(g.Cfg.entry) <- !time;
  incr time;
  while !sp > 0 do
    let b = stack_l.(!sp - 1) in
    let i = stack_i.(!sp - 1) in
    if kids_off.(b) + i < kids_off.(b + 1) then begin
      stack_i.(!sp - 1) <- i + 1;
      let c = kids.(kids_off.(b) + i) in
      depth_.(order.(c)) <- depth_.(order.(b)) + 1;
      pre.(order.(c)) <- !time;
      incr time;
      stack_l.(!sp) <- c;
      stack_i.(!sp) <- 0;
      incr sp
    end
    else begin
      decr sp;
      post.(order.(b)) <- !time;
      incr time
    end
  done;
  { g; order; rpo; idom_; depth_; pre; post; pred_off; pred_lab }
