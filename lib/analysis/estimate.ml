(** Static profile estimation (see estimate.mli for the contract).

    Pipeline, per procedure:

    1. {e drains} — backward BFS from the exit blocks; a block that
       cannot reach an exit can never retire flow, so arms into it get
       probability zero and the block itself stays at frequency zero.
    2. {e branch probabilities} — per block, over its distinct
       successors: Dempster–Shafer combination of the applicable
       heuristics for two-way branches, weight products for multiway
       dispatch, certainty for gotos.
    3. {e cyclic probabilities} — one propagation pass per loop,
       innermost first, over the loop body in reverse postorder
       (back edges excluded; inner headers contribute through their
       multiplier [1/(1−cp)]); cp is capped at 63/64 and multiplier
       chains are capped top-down so no frequency can overflow.
    4. {e final pass} — top-level propagation over all reachable
       blocks yields float block frequencies.
    5. {e integerization} — per block, largest-remainder apportionment
       of the rounded block frequency over its positive-probability
       arms; then every block's residual (integer inflow minus integer
       outflow, nonzero only through rounding, capping, or irreducible
       retreating edges) is routed as extra flow along a drain-tree
       path to an exit (excess) or a feed-tree path from the entry
       (deficit).  Each routed path changes only its endpoints'
       balances, so one pass makes Kirchhoff's law hold exactly. *)

open Ba_cfg

(* The heuristic table (docs/ANALYSIS.md).  Probabilities are for the
   arm the heuristic favors; multiway arm weights are multiplicative. *)
let p_loop_back = 0.88 (* LBH: the back-edge arm of a 2-way branch *)
let p_loop_exit = 0.80 (* LEH: the arm that stays in the loop *)
let p_loop_header = 0.75 (* LHH: the arm that enters a new loop *)
let p_return = 0.72 (* RH: the arm that does NOT go to an exit block *)
let p_opcode = 0.60 (* OH: the arm targeting a multiway dispatch *)
let p_arity = 0.55 (* AH: the arm whose target has more out-edges *)
let w_back = 8.0 (* multiway: back-edge arm weight *)
let w_exit = 0.4 (* multiway: exit-target arm weight *)
let cp_cap = 63.0 /. 64.0 (* max cyclic probability: multiplier <= 64 *)

(* Mirrors the BA208 threshold in lib/check/rules.ml: estimated counts
   stay two orders of magnitude below it even after repairs. *)
let overflow_guard = max_int / 65536
let mult_chain_cap = 1.1e12

(* Dempster–Shafer evidence combination of two probabilities. *)
let ds p q =
  let num = p *. q in
  num /. (num +. ((1.0 -. p) *. (1.0 -. q)))

type result = {
  profile : Ba_profile.Profile.proc;
  freq : float array;
  scale : float;
}

let estimate ?(invocations = 10_000) (dom : Dom.t) (loops : Loops.t) : result =
  let g = Dom.cfg dom in
  let n = Cfg.n_blocks g in
  let order = Dom.order dom in
  let entry = g.Cfg.entry in
  let term l = (Cfg.block g l).Block.term in
  (* ---- 1. drains: backward BFS from the exit blocks ---- *)
  let drain_next = Array.make n (-1) in
  (* -1 cannot reach an exit; -2 is an exit; otherwise the next hop *)
  let queue = Array.make (max 1 n) 0 in
  let qh = ref 0 and qt = ref 0 in
  Array.iter
    (fun b ->
      if term b = Block.Exit then begin
        drain_next.(b) <- -2;
        queue.(!qt) <- b;
        incr qt
      end)
    order;
  while !qh < !qt do
    let v = queue.(!qh) in
    incr qh;
    Dom.iter_preds dom v (fun u ->
        if drain_next.(u) = -1 then begin
          drain_next.(u) <- v;
          queue.(!qt) <- u;
          incr qt
        end)
  done;
  let drains b = drain_next.(b) <> -1 in
  (* ---- 2. arm probabilities over distinct successors ---- *)
  let dsts = Array.make n [||] in
  let probs = Array.make n [||] in
  let retreating u v = Dom.rpo_number dom v <= Dom.rpo_number dom u in
  let back u v = retreating u v && Dom.dominates dom v u in
  let arity l = List.length (Block.distinct_successors (Cfg.block g l)) in
  Array.iter
    (fun b ->
      let blk = Cfg.block g b in
      let d = Array.of_list (Block.distinct_successors blk) in
      dsts.(b) <- d;
      let k = Array.length d in
      let p = Array.make k 0.0 in
      (if drains b then
         match blk.Block.term with
         | Block.Exit -> ()
         | Block.Goto _ -> p.(0) <- 1.0
         | Block.Branch { t; f } ->
             let pt =
               if not (drains t) then 0.0
               else if not (drains f) then 1.0
               else begin
                 let pt = ref 0.5 in
                 let vote taken q =
                   pt := ds !pt (if taken then q else 1.0 -. q)
                 in
                 let bt = back b t and bf = back b f in
                 if bt && not bf then vote true p_loop_back
                 else if bf && not bt then vote false p_loop_back;
                 (match Loops.innermost loops b with
                 | -1 -> ()
                 | li ->
                     let st = Loops.mem loops li t
                     and sf = Loops.mem loops li f in
                     if st && not sf then vote true p_loop_exit
                     else if sf && not st then vote false p_loop_exit);
                 let enters a =
                   match Loops.header_of loops a with
                   | Some la -> not (Loops.mem loops la b)
                   | None -> false
                 in
                 let et = enters t and ef = enters f in
                 if et && not ef then vote true p_loop_header
                 else if ef && not et then vote false p_loop_header;
                 let xt = term t = Block.Exit and xf = term f = Block.Exit in
                 if xt && not xf then vote false p_return
                 else if xf && not xt then vote true p_return;
                 let mt = Block.is_multiway (Cfg.block g t)
                 and mf = Block.is_multiway (Cfg.block g f) in
                 if mt && not mf then vote true p_opcode
                 else if mf && not mt then vote false p_opcode;
                 let at = arity t and af = arity f in
                 if at > af then vote true p_arity
                 else if af > at then vote false p_arity;
                 !pt
               end
             in
             Array.iteri
               (fun i dst -> p.(i) <- (if dst = t then pt else 1.0 -. pt))
               d
         | Block.Multiway ts ->
             let w = Array.make k 0.0 in
             let idx_of v =
               let lo = ref 0 and hi = ref (k - 1) and res = ref (-1) in
               while !lo <= !hi do
                 let mid = (!lo + !hi) / 2 in
                 if d.(mid) = v then begin
                   res := mid;
                   lo := !hi + 1
                 end
                 else if d.(mid) < v then lo := mid + 1
                 else hi := mid - 1
               done;
               !res
             in
             Array.iter (fun tgt -> w.(idx_of tgt) <- w.(idx_of tgt) +. 1.0) ts;
             Array.iteri
               (fun i dst ->
                 if not (drains dst) then w.(i) <- 0.0
                 else begin
                   if back b dst then w.(i) <- w.(i) *. w_back;
                   if term dst = Block.Exit then w.(i) <- w.(i) *. w_exit
                 end)
               d;
             let total = Array.fold_left ( +. ) 0.0 w in
             if total > 0.0 then
               Array.iteri (fun i wi -> p.(i) <- wi /. total) w);
      probs.(b) <- p)
    order;
  let p_of u v =
    let d = dsts.(u) in
    let lo = ref 0 and hi = ref (Array.length d - 1) and res = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if d.(mid) = v then begin
        res := mid;
        lo := !hi + 1
      end
      else if d.(mid) < v then lo := mid + 1
      else hi := mid - 1
    done;
    if !res < 0 then 0.0 else probs.(u).(!res)
  in
  (* ---- 3. cyclic probabilities, innermost first ---- *)
  let larr = Loops.loops loops in
  let nl = Array.length larr in
  let direct = Array.make nl [] in
  for k = Array.length order - 1 downto 0 do
    let b = order.(k) in
    let li = Loops.innermost loops b in
    if li >= 0 then direct.(li) <- b :: direct.(li)
  done;
  let children = Array.make nl [] in
  Array.iteri
    (fun li (l : Loops.loop) ->
      if l.Loops.parent >= 0 then
        children.(l.Loops.parent) <- li :: children.(l.Loops.parent))
    larr;
  let body = Array.make nl [||] in
  for li = 0 to nl - 1 do
    let acc =
      List.fold_left
        (fun acc c -> List.rev_append (Array.to_list body.(c)) acc)
        direct.(li) children.(li)
    in
    let a = Array.of_list acc in
    Array.sort
      (fun a b -> compare (Dom.rpo_number dom a) (Dom.rpo_number dom b))
      a;
    body.(li) <- a
  done;
  let mult = Array.make nl 1.0 in
  let fscratch = Array.make n 0.0 in
  let fstamp = Array.make n (-1) in
  let getf li b = if fstamp.(b) = li then fscratch.(b) else 0.0 in
  for li = 0 to nl - 1 do
    let h = larr.(li).Loops.header in
    Array.iter
      (fun b ->
        let v =
          if b = h then 1.0
          else begin
            let base = ref 0.0 in
            Dom.iter_preds dom b (fun u ->
                if
                  Dom.rpo_number dom u < Dom.rpo_number dom b
                  && Loops.mem loops li u
                then base := !base +. (getf li u *. p_of u b));
            match Loops.header_of loops b with
            | Some lc when lc <> li -> !base *. mult.(lc)
            | _ -> !base
          end
        in
        fscratch.(b) <- v;
        fstamp.(b) <- li)
      body.(li);
    let cp =
      List.fold_left
        (fun acc (t, h') -> acc +. (getf li t *. p_of t h'))
        0.0 larr.(li).Loops.back_edges
    in
    let cp = Float.min (Float.max cp 0.0) cp_cap in
    mult.(li) <- 1.0 /. (1.0 -. cp)
  done;
  (* cap multiplier chains top-down (outer loops have higher indices)
     so the deepest nest cannot push counts past the overflow guard *)
  let chain = Array.make nl 1.0 in
  for li = nl - 1 downto 0 do
    let q =
      match larr.(li).Loops.parent with -1 -> 1.0 | p -> chain.(p)
    in
    if q *. mult.(li) > mult_chain_cap then
      mult.(li) <- Float.max 1.0 (mult_chain_cap /. q);
    chain.(li) <- q *. mult.(li)
  done;
  (* ---- 4. final top-level propagation ---- *)
  let ff = Array.make n 0.0 in
  Array.iter
    (fun b ->
      let base =
        if b = entry then 1.0
        else begin
          let s = ref 0.0 in
          Dom.iter_preds dom b (fun u ->
              if Dom.rpo_number dom u < Dom.rpo_number dom b then
                s := !s +. (ff.(u) *. p_of u b));
          !s
        end
      in
      ff.(b) <-
        (match Loops.header_of loops b with
        | Some li -> base *. mult.(li)
        | None -> base))
    order;
  (* ---- 5. integerization + exact conservation repair ---- *)
  let fmax = Array.fold_left Float.max 1.0 ff in
  let budget = float_of_int overflow_guard /. 64.0 in
  let scale =
    Float.max 1.0 (Float.min (float_of_int (max 1 invocations)) (budget /. fmax))
  in
  let counts = Array.make n [||] in
  Array.iter
    (fun b ->
      let k = Array.length dsts.(b) in
      let c = Array.make k 0 in
      counts.(b) <- c;
      let r = int_of_float (Float.round (scale *. ff.(b))) in
      if r > 0 && k > 0 then begin
        let rf = float_of_int r in
        let shares = Array.make k 0.0 in
        let floors = ref 0 in
        for i = 0 to k - 1 do
          if probs.(b).(i) > 0.0 then begin
            shares.(i) <- probs.(b).(i) *. rf;
            c.(i) <- int_of_float (Float.floor shares.(i));
            floors := !floors + c.(i)
          end
        done;
        let rem = r - !floors in
        if rem > 0 then begin
          (* leftover units to the largest fractional parts; ties toward
             the smaller arm index (= smaller destination) *)
          let idx = Array.init k (fun i -> i) in
          Array.sort
            (fun i j ->
              let fi = shares.(i) -. Float.floor shares.(i)
              and fj = shares.(j) -. Float.floor shares.(j) in
              if fi = fj then compare i j else compare fj fi)
            idx;
          let given = ref 0 in
          Array.iter
            (fun i ->
              if !given < rem && probs.(b).(i) > 0.0 then begin
                c.(i) <- c.(i) + 1;
                incr given
              end)
            idx
        end
      end)
    order;
  let inflow = Array.make n 0 in
  Array.iter
    (fun u ->
      Array.iteri
        (fun i dst -> inflow.(dst) <- inflow.(dst) + counts.(u).(i))
        dsts.(u))
    order;
  let feed_parent = Array.make n (-1) in
  feed_parent.(entry) <- -2;
  qh := 0;
  qt := 0;
  queue.(!qt) <- entry;
  incr qt;
  while !qh < !qt do
    let u = queue.(!qh) in
    incr qh;
    Array.iter
      (fun v ->
        if feed_parent.(v) = -1 then begin
          feed_parent.(v) <- u;
          queue.(!qt) <- v;
          incr qt
        end)
      dsts.(u)
  done;
  let add_edge u v d =
    let a = dsts.(u) in
    let lo = ref 0 and hi = ref (Array.length a - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if a.(mid) < v then lo := mid + 1 else hi := mid
    done;
    counts.(u).(!lo) <- counts.(u).(!lo) + d
  in
  (* snapshot the residuals before any repair touches the counts: each
     routed path adds balanced flow through its interior blocks, so the
     snapshot residuals remain the exact per-block corrections *)
  let residual = Array.make n 0 in
  Array.iter
    (fun b ->
      residual.(b) <- inflow.(b) - Array.fold_left ( + ) 0 counts.(b))
    order;
  Array.iter
    (fun b ->
      if term b <> Block.Exit then begin
        let res = residual.(b) in
        if res > 0 then begin
          (* excess inflow: push it to an exit along the drain tree.
             Only draining blocks can carry flow, so the path exists. *)
          let u = ref b in
          while term !u <> Block.Exit do
            let v = drain_next.(!u) in
            add_edge !u v res;
            u := v
          done
        end
        else if res < 0 && b <> entry then begin
          (* deficit: feed it from the entry along the BFS tree
             (the entry is allowed to emit more than it absorbs) *)
          let v = ref b in
          while !v <> entry do
            let u = feed_parent.(!v) in
            add_edge u !v (-res);
            v := u
          done
        end
      end)
    order;
  let rows =
    Array.init n (fun b ->
        let d = dsts.(b) and c = counts.(b) in
        Array.init (Array.length d) (fun i -> (d.(i), c.(i))))
  in
  { profile = Ba_profile.Profile.of_freqs rows; freq = ff; scale }

let proc ?invocations (g : Cfg.t) =
  let dom = Dom.compute g in
  (estimate ?invocations dom (Loops.compute dom)).profile

let program ?invocations (cfgs : Cfg.t array) : Ba_profile.Profile.t =
  { procs = Array.map (fun g -> proc ?invocations g) cfgs; calls = [] }
