(** "go" — the 099.go stand-in (SPEC95 extension suite): board-game
    mechanics on a 9×9 go board.  Plays a scripted move stream: stones
    placed alternately, each placement flood-fills the neighbouring
    groups (explicit work-stack) to count liberties and removes captured
    groups — irregular, deeply data-dependent control flow with almost
    no exploitable loop regularity, which is what made 099.go a
    notoriously branchy SPEC95 member. *)

let source =
  String.concat "\n"
    [
      "// input: size, nmoves, then board positions (skips illegal).";
      "// output: stones placed, captures, skipped moves, checksum.";
      "fn main() {";
      "  var size = read();";
      "  var n = size * size;";
      "  var board = array(n);     // 0 empty, 1 black, 2 white";
      "  var mark = array(n);      // visit stamps for flood fill";
      "  var stack = array(n);";
      "  var group = array(n);";
      "  var stamp = 0;";
      "  var placed = 0;";
      "  var captures = 0;";
      "  var skipped = 0;";
      "  var checksum = 0;";
      "  var color = 1;";
      "  var nmoves = read();";
      "  var mv = 0;";
      "  while (mv < nmoves) {";
      "    var pos = read() % n;";
      "    if (pos < 0) { pos = 0 - pos; }";
      "    if (board[pos] != 0) { skipped = skipped + 1; }";
      "    else {";
      "      board[pos] = color;";
      "      placed = placed + 1;";
      "      // examine the four neighbours' groups for capture";
      "      var d = 0;";
      "      while (d < 4) {";
      "        var nb = 0 - 1;";
      "        var x = pos % size;";
      "        var y = pos / size;";
      "        if (d == 0 && x > 0) { nb = pos - 1; }";
      "        if (d == 1 && x < size - 1) { nb = pos + 1; }";
      "        if (d == 2 && y > 0) { nb = pos - size; }";
      "        if (d == 3 && y < size - 1) { nb = pos + size; }";
      "        if (nb >= 0 && board[nb] != 0 && board[nb] != color) {";
      "          // flood fill the group at nb, counting liberties";
      "          stamp = stamp + 1;";
      "          var sp = 0;";
      "          var gn = 0;";
      "          var libs = 0;";
      "          stack[sp] = nb;";
      "          sp = sp + 1;";
      "          mark[nb] = stamp;";
      "          var enemy = board[nb];";
      "          while (sp > 0) {";
      "            sp = sp - 1;";
      "            var cur = stack[sp];";
      "            group[gn] = cur;";
      "            gn = gn + 1;";
      "            var e = 0;";
      "            while (e < 4) {";
      "              var nn = 0 - 1;";
      "              var cx = cur % size;";
      "              var cy = cur / size;";
      "              if (e == 0 && cx > 0) { nn = cur - 1; }";
      "              if (e == 1 && cx < size - 1) { nn = cur + 1; }";
      "              if (e == 2 && cy > 0) { nn = cur - size; }";
      "              if (e == 3 && cy < size - 1) { nn = cur + size; }";
      "              if (nn >= 0 && mark[nn] != stamp) {";
      "                if (board[nn] == 0) { libs = libs + 1; mark[nn] = stamp; }";
      "                else {";
      "                  if (board[nn] == enemy) {";
      "                    mark[nn] = stamp;";
      "                    stack[sp] = nn;";
      "                    sp = sp + 1;";
      "                  }";
      "                }";
      "              }";
      "              e = e + 1;";
      "            }";
      "          }";
      "          if (libs == 0) {";
      "            // capture: remove the whole group";
      "            captures = captures + gn;";
      "            var r = 0;";
      "            while (r < gn) {";
      "              board[group[r]] = 0;";
      "              checksum = (checksum * 7 + group[r]) & 1048575;";
      "              r = r + 1;";
      "            }";
      "          }";
      "        }";
      "        d = d + 1;";
      "      }";
      "      color = 3 - color;";
      "    }";
      "    mv = mv + 1;";
      "  }";
      "  print(placed);";
      "  print(captures);";
      "  print(skipped);";
      "  print(checksum);";
      "}";
    ]

(** [dataset ~size ~nmoves ~seed]: a scripted stream of board positions,
    biased towards the centre and towards neighbourhoods of earlier
    moves so groups and captures actually form. *)
let dataset ~size ~nmoves ~seed =
  let g = Lcg.create seed in
  let n = size * size in
  let last = ref (n / 2) in
  let moves =
    Array.init nmoves (fun _ ->
        let near = Lcg.int g 100 < 55 in
        let pos =
          if near then begin
            let dx = Lcg.int g 5 - 2 and dy = Lcg.int g 5 - 2 in
            let x = (!last mod size) + dx and y = (!last / size) + dy in
            let x = max 0 (min (size - 1) x) and y = max 0 (min (size - 1) y) in
            (y * size) + x
          end
          else Lcg.int g n
        in
        last := pos;
        pos)
  in
  Array.concat [ [| size; nmoves |]; moves ]
