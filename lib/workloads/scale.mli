(** Deterministic synthetic CFGs at whole-program scale (10⁵–10⁶
    blocks): deep loop nests, jump-table cascades, interpreter dispatch
    loops.  Every instance has exactly [n] blocks, entry 0, a single
    [Exit], is fully reachable, and carries an analytic edge profile —
    no RNG anywhere, so instances are reproducible bit-for-bit. *)

type family =
  | Loop_nest  (** counted-loop nest (depth ≤ 16) around a hot body *)
  | Switch  (** cascade of 64-arm [Multiway] jump tables *)
  | Interp  (** one ≈(n/4)-arm dispatch loop with handler chains *)

val all : family list

(** Stable CLI name: ["loop-nest"], ["switch"], ["interp"]. *)
val name : family -> string

val find : string -> family option

(** Smallest supported [n]. *)
val min_blocks : int

(** Arms per jump table in the {!Switch} cascade. *)
val switch_width : int

(** Handler chain length in {!Interp}. *)
val handler_len : int

(** Loop-nest depth for a given [n] (capped at 16). *)
val loop_depth : n:int -> int

(** Distinct static CFG edges of [cfg fam ~n], in closed form. *)
val expected_edges : family -> n:int -> int

(** [instance fam ~n ~invocations] builds the [n]-block CFG and its
    deterministic flow-consistent profile ([invocations] scales the
    counts).
    @raise Invalid_argument when [n < min_blocks] or [invocations < 1]. *)
val instance :
  family -> n:int -> invocations:int -> Ba_cfg.Cfg.t * Ba_profile.Profile.proc

(** The CFG alone. *)
val cfg : family -> n:int -> Ba_cfg.Cfg.t
