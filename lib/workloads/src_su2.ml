(** "su2" — the 089.su2cor stand-in: a statistical-mechanics lattice
    sweep (Metropolis-flavoured Ising updates in fixed point).  Like
    su2cor it is overwhelmingly loop-dominated arithmetic with very few
    data-dependent branches per iteration, so branch alignment has almost
    nothing to win — reproducing the paper's observation that aligning
    su2cor has virtually no effect. *)

let source =
  String.concat "\n"
    [
      "// 2D Ising-like lattice with deterministic LCG acceptance.";
      "// input: size, sweeps, seed. output: magnetization, energy checksum.";
      "fn main() {";
      "  var size = read();";
      "  var sweeps = read();";
      "  var seed = read();";
      "  var n = size * size;";
      "  var lat = array(n);";
      "  var i = 0;";
      "  while (i < n) {";
      "    seed = (seed * 25214903917 + 11) & 281474976710655;";
      "    lat[i] = ((seed >> 33) & 1) * 2 - 1;";
      "    i = i + 1;";
      "  }";
      "  var s = 0;";
      "  while (s < sweeps) {";
      "    var c = 0;";
      "    while (c < n) {";
      "      var x = c % size;";
      "      var y = c / size;";
      "      var xr = x + 1;";
      "      if (xr == size) { xr = 0; }";
      "      var xl = x - 1;";
      "      if (xl < 0) { xl = size - 1; }";
      "      var yd = y + 1;";
      "      if (yd == size) { yd = 0; }";
      "      var yu = y - 1;";
      "      if (yu < 0) { yu = size - 1; }";
      "      var nb = lat[y * size + xr] + lat[y * size + xl]";
      "             + lat[yd * size + x] + lat[yu * size + x];";
      "      var de = 2 * lat[c] * nb;";
      "      seed = (seed * 25214903917 + 11) & 281474976710655;";
      "      var r = (seed >> 33) & 1023;";
      "      // accept if energy drops, or with temperature-ish probability";
      "      if (de <= 0 || r < 1024 / (1 + de * de)) { lat[c] = 0 - lat[c]; }";
      "      c = c + 1;";
      "    }";
      "    s = s + 1;";
      "  }";
      "  var mag = 0;";
      "  var energy = 0;";
      "  var k = 0;";
      "  while (k < n) {";
      "    mag = mag + lat[k];";
      "    var xk = k % size;";
      "    var xkr = xk + 1;";
      "    if (xkr == size) { xkr = 0; }";
      "    energy = (energy + lat[k] * lat[(k / size) * size + xkr] + 65536) & 1048575;";
      "    k = k + 1;";
      "  }";
      "  print(mag);";
      "  print(energy);";
      "}";
    ]

(** [dataset ~size ~sweeps ~seed] packs the input stream. *)
let dataset ~size ~sweeps ~seed = [| size; sweeps; seed |]
