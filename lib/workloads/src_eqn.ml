(** "eqn" — the 023.eqntott stand-in: evaluate a sum-of-products boolean
    function over all input assignments to build a truth table, then
    quicksort the rows with a data-dependent comparison.  eqntott's
    running time is famously dominated by exactly such a comparison-heavy
    quicksort over truth-table rows. *)

let source =
  String.concat "\n"
    [
      "// Truth-table generation + quicksort.";
      "// input: k (variables), nterms, then per term: pos_mask, neg_mask.";
      "// output: ones count, sorted-table checksum.";
      "fn cmp_rows(a, b) {";
      "  // order by output bit first, then by gray-coded input";
      "  var oa = a & 1;";
      "  var ob = b & 1;";
      "  if (oa != ob) { return oa - ob; }";
      "  var ga = (a >> 1) ^ (a >> 2);";
      "  var gb = (b >> 1) ^ (b >> 2);";
      "  if (ga < gb) { return 0 - 1; }";
      "  if (ga > gb) { return 1; }";
      "  return 0;";
      "}";
      "fn qsort(rows, lo, hi) {";
      "  if (lo >= hi) { return 0; }";
      "  var pivot = rows[(lo + hi) / 2];";
      "  var i = lo;";
      "  var j = hi;";
      "  while (i <= j) {";
      "    while (cmp_rows(rows[i], pivot) < 0) { i = i + 1; }";
      "    while (cmp_rows(rows[j], pivot) > 0) { j = j - 1; }";
      "    if (i <= j) {";
      "      var t = rows[i];";
      "      rows[i] = rows[j];";
      "      rows[j] = t;";
      "      i = i + 1;";
      "      j = j - 1;";
      "    }";
      "  }";
      "  if (lo < j) { qsort(rows, lo, j); }";
      "  if (i < hi) { qsort(rows, i, hi); }";
      "  return 0;";
      "}";
      "fn main() {";
      "  var k = read();";
      "  var nterms = read();";
      "  var pos = array(nterms);";
      "  var neg = array(nterms);";
      "  var t = 0;";
      "  while (t < nterms) {";
      "    pos[t] = read();";
      "    neg[t] = read();";
      "    t = t + 1;";
      "  }";
      "  var nrows = 1 << k;";
      "  var rows = array(nrows);";
      "  var a = 0;";
      "  var ones = 0;";
      "  while (a < nrows) {";
      "    var out = 0;";
      "    var ti = 0;";
      "    while (ti < nterms && out == 0) {";
      "      if ((a & pos[ti]) == pos[ti] && (a & neg[ti]) == 0) { out = 1; }";
      "      ti = ti + 1;";
      "    }";
      "    rows[a] = a * 2 + out;";
      "    ones = ones + out;";
      "    a = a + 1;";
      "  }";
      "  qsort(rows, 0, nrows - 1);";
      "  var checksum = 0;";
      "  var r = 0;";
      "  while (r < nrows) {";
      "    checksum = (checksum * 131 + rows[r]) & 1048575;";
      "    r = r + 1;";
      "  }";
      "  print(ones);";
      "  print(checksum);";
      "}";
    ]

(** [dataset ~k ~nterms ~seed] draws random product terms over [k]
    variables (disjoint positive/negative masks). *)
let dataset ~k ~nterms ~seed =
  let g = Lcg.create seed in
  let buf = ref [ nterms; k ] in
  for _ = 1 to nterms do
    let pos = ref 0 and neg = ref 0 in
    for v = 0 to k - 1 do
      match Lcg.int g 4 with
      | 0 -> pos := !pos lor (1 lsl v)
      | 1 -> neg := !neg lor (1 lsl v)
      | _ -> ()
    done;
    buf := !neg :: !pos :: !buf
  done;
  Array.of_list (List.rev !buf)
