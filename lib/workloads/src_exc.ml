(** "exc" — an application workload beyond the SPEC suites: an
    expression {e compiler} written in minic.  A recursive-descent parser
    (mutually recursive procedures, state threaded through arrays since
    minic has no globals) compiles a token stream to stack-machine code,
    which a small evaluator then runs.  Eight procedures with deep
    recursion and a dispatch loop — the closest thing in the repository
    to aligning a real compiler with many procedures, and the reason it
    anchors the interprocedural tests.

    Token stream: 0 end-of-expression, 1 ⟨number⟩, 2 '+', 3 '-', 4 '*',
    5 '/', 6 '(', 7 ')', 8 ⟨variable index⟩, 9 end-of-input.
    Compiled ops: 1 PUSH ⟨v⟩, 2 LOADV ⟨i⟩, 3 ADD, 4 SUB, 5 MUL,
    6 DIV (0 on zero divisor), 7 NEG. *)

let source =
  String.concat "\n"
    [
      "// input: 26 variable values, ntoks, tokens.";
      "// output: expressions parsed, result checksum, parse errors.";
      "fn peek(toks, st) { return toks[st[0]]; }";
      "fn advance(toks, st) {";
      "  var t = toks[st[0]];";
      "  st[0] = st[0] + 1;";
      "  return t;";
      "}";
      "fn emit1(code, st, op) {";
      "  code[st[1]] = op;";
      "  st[1] = st[1] + 1;";
      "  return 0;";
      "}";
      "fn emit2(code, st, op, arg) {";
      "  code[st[1]] = op;";
      "  code[st[1] + 1] = arg;";
      "  st[1] = st[1] + 2;";
      "  return 0;";
      "}";
      "fn parse_factor(toks, st, code) {";
      "  var t = advance(toks, st);";
      "  if (t == 1) { emit2(code, st, 1, advance(toks, st)); return 0; }";
      "  if (t == 8) { emit2(code, st, 2, advance(toks, st)); return 0; }";
      "  if (t == 6) {";
      "    parse_expr(toks, st, code);";
      "    if (advance(toks, st) != 7) { st[2] = st[2] + 1; }";
      "    return 0;";
      "  }";
      "  if (t == 3) {";
      "    parse_factor(toks, st, code);";
      "    emit1(code, st, 7);";
      "    return 0;";
      "  }";
      "  st[2] = st[2] + 1;";
      "  return 0;";
      "}";
      "fn parse_term(toks, st, code) {";
      "  parse_factor(toks, st, code);";
      "  var looping = 1;";
      "  while (looping) {";
      "    var t = peek(toks, st);";
      "    if (t == 4) {";
      "      st[0] = st[0] + 1;";
      "      parse_factor(toks, st, code);";
      "      emit1(code, st, 5);";
      "    } else {";
      "      if (t == 5) {";
      "        st[0] = st[0] + 1;";
      "        parse_factor(toks, st, code);";
      "        emit1(code, st, 6);";
      "      } else { looping = 0; }";
      "    }";
      "  }";
      "  return 0;";
      "}";
      "fn parse_expr(toks, st, code) {";
      "  parse_term(toks, st, code);";
      "  var looping = 1;";
      "  while (looping) {";
      "    var t = peek(toks, st);";
      "    if (t == 2) {";
      "      st[0] = st[0] + 1;";
      "      parse_term(toks, st, code);";
      "      emit1(code, st, 3);";
      "    } else {";
      "      if (t == 3) {";
      "        st[0] = st[0] + 1;";
      "        parse_term(toks, st, code);";
      "        emit1(code, st, 4);";
      "      } else { looping = 0; }";
      "    }";
      "  }";
      "  return 0;";
      "}";
      "fn run_code(code, clen, vals) {";
      "  var stack = array(256);";
      "  var sp = 0;";
      "  var pc = 0;";
      "  while (pc < clen) {";
      "    var op = code[pc];";
      "    pc = pc + 1;";
      "    switch (op) {";
      "      case 1: { stack[sp] = code[pc]; pc = pc + 1; sp = sp + 1; }";
      "      case 2: { stack[sp] = vals[code[pc]]; pc = pc + 1; sp = sp + 1; }";
      "      case 3: { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }";
      "      case 4: { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }";
      "      case 5: { stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; sp = sp - 1; }";
      "      case 6: {";
      "        if (stack[sp - 1] == 0) { stack[sp - 2] = 0; }";
      "        else { stack[sp - 2] = stack[sp - 2] / stack[sp - 1]; }";
      "        sp = sp - 1;";
      "      }";
      "      case 7: { stack[sp - 1] = 0 - stack[sp - 1]; }";
      "      default: { pc = clen; }";
      "    }";
      "  }";
      "  if (sp > 0) { return stack[sp - 1]; }";
      "  return 0;";
      "}";
      "fn main() {";
      "  var vals = array(26);";
      "  for (var v = 0; v < 26; v = v + 1) { vals[v] = read(); }";
      "  var ntoks = read();";
      "  var toks = array(ntoks);";
      "  for (var i = 0; i < ntoks; i = i + 1) { toks[i] = read(); }";
      "  var st = array(4);       // cursor, emit pos, error count";
      "  var code = array(2 * ntoks + 16);";
      "  var nexpr = 0;";
      "  var checksum = 0;";
      "  var looping = 1;";
      "  while (looping) {";
      "    if (peek(toks, st) == 9) { looping = 0; }";
      "    else {";
      "      st[1] = 0;";
      "      parse_expr(toks, st, code);";
      "      if (advance(toks, st) != 0) { st[2] = st[2] + 1; }";
      "      var result = run_code(code, st[1], vals);";
      "      nexpr = nexpr + 1;";
      "      checksum = (checksum * 31 + result) & 1048575;";
      "    }";
      "  }";
      "  print(nexpr);";
      "  print(checksum);";
      "  print(st[2]);";
      "}";
    ]

(* ------------------------------------------------------------------ *)
(* OCaml-side reference: expression generator + evaluator, used both to
   build the token streams and to predict the minic program's checksum
   (a differential test of the whole front end + interpreter). *)

type expr =
  | Num of int
  | Var of int
  | Neg of expr
  | Bin of char * expr * expr

let rec gen_expr g ~depth =
  if depth = 0 || Lcg.int g 100 < 30 then
    if Lcg.int g 100 < 40 then Var (Lcg.int g 26) else Num (Lcg.int g 100)
  else
    match Lcg.int g 10 with
    | 0 -> Neg (gen_expr g ~depth:(depth - 1))
    | 1 | 2 ->
        (* division only by a non-zero literal, keeping semantics exact *)
        Bin ('/', gen_expr g ~depth:(depth - 1), Num (1 + Lcg.int g 9))
    | 3 | 4 | 5 -> Bin ('*', gen_expr g ~depth:(depth - 1), gen_expr g ~depth:(depth - 1))
    | 6 | 7 -> Bin ('-', gen_expr g ~depth:(depth - 1), gen_expr g ~depth:(depth - 1))
    | _ -> Bin ('+', gen_expr g ~depth:(depth - 1), gen_expr g ~depth:(depth - 1))

let rec eval vals = function
  | Num n -> n
  | Var i -> vals.(i)
  | Neg e -> -eval vals e
  | Bin ('+', a, b) -> eval vals a + eval vals b
  | Bin ('-', a, b) -> eval vals a - eval vals b
  | Bin ('*', a, b) -> eval vals a * eval vals b
  | Bin ('/', a, b) ->
      let d = eval vals b in
      if d = 0 then 0 else eval vals a / d
  | Bin _ -> invalid_arg "eval"

(* serialize with explicit parentheses everywhere precedence requires;
   fully parenthesizing sub-expressions is always safe *)
let rec tokens_of = function
  | Num n -> [ 1; n ]
  | Var i -> [ 8; i ]
  | Neg e -> (3 :: paren e) (* unary minus applies to a factor *)
  | Bin (op, a, b) ->
      let opc = match op with '+' -> 2 | '-' -> 3 | '*' -> 4 | _ -> 5 in
      paren a @ (opc :: paren b)

and paren e =
  match e with
  | Num _ | Var _ -> tokens_of e
  | _ -> (6 :: tokens_of e) @ [ 7 ]

(** [dataset ~n_exprs ~depth ~seed] builds the input stream and returns
    it with the reference [(n_exprs, checksum, 0)] output. *)
let dataset ~n_exprs ~depth ~seed : int array * int list =
  let g = Lcg.create seed in
  let vals = Array.init 26 (fun _ -> Lcg.int g 50 - 10) in
  let checksum = ref 0 in
  let toks = ref [] in
  for _ = 1 to n_exprs do
    let e = gen_expr g ~depth in
    checksum := ((!checksum * 31) + eval vals e) land 1048575;
    (* [toks] accumulates the stream in reverse: push the expression's
       reversed tokens, then its terminating 0 *)
    toks := 0 :: List.rev_append (tokens_of e) !toks
  done;
  let stream =
    Array.concat
      [
        vals;
        (let t = List.rev (9 :: !toks) in
         Array.of_list (List.length t :: t));
      ]
  in
  (stream, [ n_exprs; !checksum; 0 ])
