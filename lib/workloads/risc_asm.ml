(** Cross-assembler for the m88 RISC simulator (see {!Src_m88}): four
    words per instruction, label-resolved branch targets, plus the two
    guest programs used as data sets. *)

type reg = int

type instr =
  | Halt
  | Loadi of reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Ld of reg * reg * int  (** rd ← mem[ra + imm] *)
  | St of reg * int * reg  (** mem[ra + imm] ← rs *)
  | Beq of reg * reg * string
  | Bne of reg * reg * string
  | Blt of reg * reg * string
  | Jmp of string
  | Out of reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Mods of reg * reg * reg
  | Mov of reg * reg
  | Label of string

exception Error of string

let width = function Label _ -> 0 | _ -> 4

(** Resolve labels and encode the four-word stream. *)
let assemble (prog : instr list) : int array =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun i ->
      (match i with
      | Label l ->
          if Hashtbl.mem labels l then raise (Error ("duplicate label " ^ l));
          Hashtbl.replace labels l !pc
      | _ -> ());
      pc := !pc + width i)
    prog;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> raise (Error ("undefined label " ^ l))
  in
  let out = ref [] in
  let quad a b c d = out := d :: c :: b :: a :: !out in
  List.iter
    (fun i ->
      match i with
      | Label _ -> ()
      | Halt -> quad 0 0 0 0
      | Loadi (rd, imm) -> quad 1 rd imm 0
      | Add (rd, ra, rb) -> quad 2 rd ra rb
      | Sub (rd, ra, rb) -> quad 3 rd ra rb
      | Mul (rd, ra, rb) -> quad 4 rd ra rb
      | Div (rd, ra, rb) -> quad 5 rd ra rb
      | Ld (rd, ra, imm) -> quad 6 rd ra imm
      | St (ra, imm, rs) -> quad 7 ra imm rs
      | Beq (ra, rb, l) -> quad 8 ra rb (target l)
      | Bne (ra, rb, l) -> quad 9 ra rb (target l)
      | Blt (ra, rb, l) -> quad 10 ra rb (target l)
      | Jmp l -> quad 11 0 0 (target l)
      | Out ra -> quad 12 ra 0 0
      | And_ (rd, ra, rb) -> quad 13 rd ra rb
      | Or_ (rd, ra, rb) -> quad 14 rd ra rb
      | Xor_ (rd, ra, rb) -> quad 15 rd ra rb
      | Shl (rd, ra, rb) -> quad 16 rd ra rb
      | Shr (rd, ra, rb) -> quad 17 rd ra rb
      | Mods (rd, ra, rb) -> quad 18 rd ra rb
      | Mov (rd, ra) -> quad 19 rd ra 0)
    prog;
  Array.of_list (List.rev !out)

(** Pack a guest program + initial memory into the simulator's input
    stream. *)
let dataset ~memsize (code : int array) ~(init : (int * int) list) : int array =
  Array.concat
    [
      [| memsize; Array.length code |];
      code;
      [| List.length init |];
      Array.of_list (List.concat_map (fun (a, v) -> [ a; v ]) init);
    ]

(* ------------------------------------------------------------------ *)

(** Guest program 1: in-place bubble sort of [n] words at memory 0, then
    output a checksum of the sorted array.  Registers: r1=i, r2=j, r3=n,
    r4/r5 scratch, r6 = tmp addr, r7 = acc, r15 = constant 1. *)
let bubble_sort_program ~n : int array =
  assemble
    [
      Loadi (3, n);
      Loadi (15, 1);
      Loadi (1, 0);
      Label "outer";
      (* if i >= n-1 goto done *)
      Sub (4, 3, 15);
      Blt (1, 4, "inner_init");
      Jmp "sum";
      Label "inner_init";
      Loadi (2, 0);
      Label "inner";
      Sub (4, 3, 1);
      Sub (4, 4, 15);
      Blt (2, 4, "body");
      (* i++, next outer *)
      Add (1, 1, 15);
      Jmp "outer";
      Label "body";
      (* if mem[j] > mem[j+1] swap *)
      Ld (5, 2, 0);
      Ld (6, 2, 1);
      Blt (6, 5, "swap");
      Jmp "next";
      Label "swap";
      St (2, 0, 6);
      St (2, 1, 5);
      Label "next";
      Add (2, 2, 15);
      Jmp "inner";
      Label "sum";
      (* checksum: r7 = sum of i*mem[i] *)
      Loadi (7, 0);
      Loadi (1, 0);
      Label "sum_loop";
      Blt (1, 3, "sum_body");
      Out 7;
      Halt;
      Label "sum_body";
      Ld (5, 1, 0);
      Mul (5, 5, 1);
      Add (7, 7, 5);
      Add (1, 1, 15);
      Jmp "sum_loop";
    ]

(** Guest program 2: iterated Collatz lengths — for each seed in
    [1..count], walk the 3n+1 sequence, accumulate total steps.  Very
    branchy guest code.  r1=seed, r2=x, r3=steps, r4=total, r5/r6
    scratch, r14=2, r15=1. *)
let collatz_program ~count : int array =
  assemble
    [
      Loadi (15, 1);
      Loadi (14, 2);
      Loadi (12, 3);
      Loadi (13, count);
      Loadi (1, 1);
      Loadi (4, 0);
      Label "seeds";
      Blt (13, 1, "done");
      Mov (2, 1);
      Loadi (3, 0);
      Label "step";
      Beq (2, 15, "seed_done");
      Mods (5, 2, 14);
      Beq (5, 15, "odd");
      Div (2, 2, 14);
      Jmp "stepped";
      Label "odd";
      Mul (2, 2, 12);
      Add (2, 2, 15);
      Jmp "stepped";
      Label "stepped";
      Add (3, 3, 15);
      Jmp "step";
      Label "seed_done";
      Add (4, 4, 3);
      Add (1, 1, 15);
      Jmp "seeds";
      Label "done";
      Out 4;
      Halt;
    ]
