(** "dod" — the 015.doduc stand-in: a thermohydraulic-flavoured
    fixed-point simulation with deeply nested data-dependent
    conditionals in the inner loop.  Like doduc, it is floating-point
    work dominated by branchy per-cell state updates, which is why the
    paper sees branch alignment remove two thirds of its control
    penalties. *)

let source =
  String.concat "\n"
    [
      "// Fixed-point (scale 1024) reactor-cell relaxation.";
      "// input: steps, ncells, seed. output: checksums.";
      "fn clamp(x, lo, hi) {";
      "  if (x < lo) { return lo; }";
      "  if (x > hi) { return hi; }";
      "  return x;";
      "}";
      "fn lcg(s) { return (s * 25214903917 + 11) & 281474976710655; }";
      "fn main() {";
      "  var steps = read();";
      "  var ncells = read();";
      "  var seed = read();";
      "  var temp = array(ncells);";
      "  var press = array(ncells);";
      "  var flow = array(ncells);";
      "  var i = 0;";
      "  while (i < ncells) {";
      "    seed = lcg(seed);";
      "    temp[i] = 1024 + ((seed >> 20) & 4095);";
      "    seed = lcg(seed);";
      "    press[i] = 512 + ((seed >> 20) & 2047);";
      "    seed = lcg(seed);";
      "    flow[i] = (seed >> 20) & 1023;";
      "    i = i + 1;";
      "  }";
      "  var s = 0;";
      "  while (s < steps) {";
      "    var c = 0;";
      "    while (c < ncells) {";
      "      var t = temp[c];";
      "      var p = press[c];";
      "      var f = flow[c];";
      "      var left = 0;";
      "      if (c > 0) { left = flow[c - 1]; } else { left = flow[ncells - 1]; }";
      "      // pressure response to overheating (hot path: mild regime)";
      "      if (t > 3072) {";
      "        p = p + ((t - 3072) * 3) / 4;";
      "        if (p > 8192) { p = 8192; f = f / 2; }";
      "      } else {";
      "        if (t < 512) { p = p - (512 - t) / 8; }";
      "        else { p = p + (t - 1024) / 64; }";
      "      }";
      "      if (p < 0) { p = 0; }";
      "      // heat exchange with the flow";
      "      if (f > t) {";
      "        t = t + (f - t) / 4;";
      "      } else {";
      "        if (p > 2048) { t = t + p / 128; }";
      "        else { t = t - t / 32; }";
      "      }";
      "      // flow relaxation towards the left neighbour";
      "      if (left > f) { f = f + (left - f) / 2; }";
      "      else { f = f - (f - left) / 2; }";
      "      if (f < 0) { f = 0; }";
      "      temp[c] = clamp(t, 0, 65536);";
      "      press[c] = clamp(p, 0, 8192);";
      "      flow[c] = clamp(f, 0, 65536);";
      "      c = c + 1;";
      "    }";
      "    s = s + 1;";
      "  }";
      "  var sum_t = 0;";
      "  var sum_p = 0;";
      "  var k = 0;";
      "  while (k < ncells) {";
      "    sum_t = (sum_t + temp[k]) & 1048575;";
      "    sum_p = (sum_p + press[k]) & 1048575;";
      "    k = k + 1;";
      "  }";
      "  print(sum_t);";
      "  print(sum_p);";
      "}";
    ]

(** [dataset ~steps ~ncells ~seed] packs the input stream. *)
let dataset ~steps ~ncells ~seed = [| steps; ncells; seed |]
