(** "prl" — the 134.perl stand-in (SPEC95 extension suite): text
    processing.  Builds a KMP failure table for a pattern, scans a byte
    stream counting matches, and simultaneously hashes words into a
    small table to count distinct words — the mix of state-machine
    branches and hash probing typical of scripting-language cores. *)

let source =
  String.concat "\n"
    [
      "// input: plen, pattern bytes, tlen, text bytes.";
      "// output: KMP matches, distinct words, total words, checksum.";
      "fn is_word_byte(c) {";
      "  if (c >= 97 && c <= 122) { return 1; }";
      "  if (c >= 65 && c <= 90) { return 1; }";
      "  if (c >= 48 && c <= 57) { return 1; }";
      "  return 0;";
      "}";
      "fn main() {";
      "  var plen = read();";
      "  var pat = array(plen);";
      "  var i = 0;";
      "  while (i < plen) { pat[i] = read(); i = i + 1; }";
      "  // KMP failure table";
      "  var fail = array(plen);";
      "  fail[0] = 0;";
      "  var k = 0;";
      "  var p = 1;";
      "  while (p < plen) {";
      "    while (k > 0 && pat[p] != pat[k]) { k = fail[k - 1]; }";
      "    if (pat[p] == pat[k]) { k = k + 1; }";
      "    fail[p] = k;";
      "    p = p + 1;";
      "  }";
      "  var tlen = read();";
      "  var hsize = 32768;";
      "  var hkey = array(hsize);";
      "  var j = 0;";
      "  while (j < hsize) { hkey[j] = 0 - 1; j = j + 1; }";
      "  var matches = 0;";
      "  var distinct = 0;";
      "  var words = 0;";
      "  var checksum = 0;";
      "  var state = 0;       // KMP state";
      "  var wordhash = 0;";
      "  var in_word = 0;";
      "  var t = 0;";
      "  while (t < tlen) {";
      "    var c = read();";
      "    // KMP step";
      "    while (state > 0 && c != pat[state]) { state = fail[state - 1]; }";
      "    if (c == pat[state]) { state = state + 1; }";
      "    if (state == plen) {";
      "      matches = matches + 1;";
      "      checksum = (checksum * 13 + t) & 1048575;";
      "      state = fail[state - 1];";
      "    }";
      "    // word accounting";
      "    if (is_word_byte(c)) {";
      "      wordhash = (wordhash * 131 + c) & 1048575;";
      "      in_word = 1;";
      "    } else {";
      "      if (in_word) {";
      "        words = words + 1;";
      "        if (distinct * 4 >= hsize * 3) { wordhash = 0; }  // table guard";
      "        var h = wordhash & 32767;";
      "        var probing = 1;";
      "        while (probing) {";
      "          if (hkey[h] == wordhash) { probing = 0; }";
      "          else {";
      "            if (hkey[h] < 0) {";
      "              hkey[h] = wordhash;";
      "              distinct = distinct + 1;";
      "              probing = 0;";
      "            } else { h = (h + 1) & 2047; }";
      "          }";
      "        }";
      "      }";
      "      in_word = 0;";
      "      wordhash = 0;";
      "    }";
      "    t = t + 1;";
      "  }";
      "  print(matches);";
      "  print(distinct);";
      "  print(words);";
      "  print(checksum);";
      "}";
    ]

(** [dataset ~pattern ~n ~match_rate ~seed]: a text-like stream with the
    pattern planted roughly every [match_rate] bytes (0 = never). *)
let dataset ~(pattern : string) ~n ~match_rate ~seed =
  let g = Lcg.create seed in
  let plen = String.length pattern in
  let buf = ref [] in
  let planted = ref 0 in
  let i = ref 0 in
  while !i < n do
    if match_rate > 0 && !i > 0 && Lcg.int g match_rate = 0 && !i + plen < n
    then begin
      String.iter (fun c -> buf := Char.code c :: !buf) pattern;
      i := !i + plen;
      incr planted
    end
    else begin
      buf := Lcg.text_byte g :: !buf;
      incr i
    end
  done;
  let text = List.rev !buf in
  Array.of_list
    ((plen :: List.map Char.code (List.init plen (String.get pattern)))
    @ (List.length text :: text))
