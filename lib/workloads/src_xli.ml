(** "xli" — the 022.li (xlisp) stand-in: an interpreter benchmark.  The
    minic program is a stack-machine VM whose dispatch is one big
    [switch] — exactly the indirect-branch-dominated control structure
    that makes interpreters interesting for branch alignment (the
    multiway dispatch itself is layout-independent, but the per-opcode
    handler blocks chain with conditionals).  The two data sets are
    bytecode programs: Newton's method (the paper's very short "ne"
    input, deliberately a poor training set) and the 7-queens problem
    ("q7"). *)

let source =
  String.concat "\n"
    [
      "// Stack-machine bytecode interpreter.";
      "// input: nglobals, codelen, then the code words.";
      "// output: the program's prints, then executed step count.";
      "fn main() {";
      "  var ng = read();";
      "  var nc = read();";
      "  var code = array(nc);";
      "  var i = 0;";
      "  while (i < nc) { code[i] = read(); i = i + 1; }";
      "  var g = array(ng);";
      "  var stack = array(256);";
      "  var sp = 0;";
      "  var pc = 0;";
      "  var running = 1;";
      "  var steps = 0;";
      "  while (running) {";
      "    var op = code[pc];";
      "    pc = pc + 1;";
      "    switch (op) {";
      "      case 0: { running = 0; }                                   // HALT";
      "      case 1: { stack[sp] = code[pc]; pc = pc + 1; sp = sp + 1; } // PUSH";
      "      case 2: { stack[sp] = g[code[pc]]; pc = pc + 1; sp = sp + 1; } // GLOAD";
      "      case 3: { sp = sp - 1; g[code[pc]] = stack[sp]; pc = pc + 1; } // GSTORE";
      "      case 4: { stack[sp - 1] = g[stack[sp - 1]]; }               // GLOADI";
      "      case 5: { g[stack[sp - 1]] = stack[sp - 2]; sp = sp - 2; }  // GSTOREI";
      "      case 6: { stack[sp - 2] = stack[sp - 2] + stack[sp - 1]; sp = sp - 1; }";
      "      case 7: { stack[sp - 2] = stack[sp - 2] - stack[sp - 1]; sp = sp - 1; }";
      "      case 8: { stack[sp - 2] = stack[sp - 2] * stack[sp - 1]; sp = sp - 1; }";
      "      case 9: { stack[sp - 2] = stack[sp - 2] / stack[sp - 1]; sp = sp - 1; }";
      "      case 10: { stack[sp - 2] = stack[sp - 2] % stack[sp - 1]; sp = sp - 1; }";
      "      case 11: { if (stack[sp - 2] < stack[sp - 1]) { stack[sp - 2] = 1; }";
      "                 else { stack[sp - 2] = 0; } sp = sp - 1; }       // LT";
      "      case 12: { if (stack[sp - 2] <= stack[sp - 1]) { stack[sp - 2] = 1; }";
      "                 else { stack[sp - 2] = 0; } sp = sp - 1; }       // LE";
      "      case 13: { if (stack[sp - 2] == stack[sp - 1]) { stack[sp - 2] = 1; }";
      "                 else { stack[sp - 2] = 0; } sp = sp - 1; }       // EQ";
      "      case 14: { if (stack[sp - 2] != stack[sp - 1]) { stack[sp - 2] = 1; }";
      "                 else { stack[sp - 2] = 0; } sp = sp - 1; }       // NE";
      "      case 15: { pc = code[pc]; }                                 // JMP";
      "      case 16: { sp = sp - 1; if (stack[sp] == 0) { pc = code[pc]; }";
      "                 else { pc = pc + 1; } }                          // JZ";
      "      case 17: { sp = sp - 1; if (stack[sp] != 0) { pc = code[pc]; }";
      "                 else { pc = pc + 1; } }                          // JNZ";
      "      case 18: { stack[sp] = stack[sp - 1]; sp = sp + 1; }        // DUP";
      "      case 19: { sp = sp - 1; }                                   // POP";
      "      case 20: { var t = stack[sp - 1]; stack[sp - 1] = stack[sp - 2];";
      "                 stack[sp - 2] = t; }                             // SWAP";
      "      case 21: { sp = sp - 1; print(stack[sp]); }                 // PRINT";
      "      case 22: { stack[sp - 1] = 0 - stack[sp - 1]; }             // NEG";
      "      default: { running = 0; }                                   // bad op";
      "    }";
      "    steps = steps + 1;";
      "  }";
      "  print(steps);";
      "}";
    ]
