(** The benchmark registry: the six SPEC92 stand-ins of the paper's
    Table 1, each with two data sets (see the module body and DESIGN.md
    for the mapping to the original benchmarks). *)

type dataset = {
  ds_name : string;  (** e.g. "in" *)
  input : int array;  (** the stream [read()] consumes *)
  ds_description : string;
}

type t = {
  name : string;  (** e.g. "com" *)
  paper_name : string;  (** e.g. "026.compress" *)
  description : string;
  source : string;  (** minic source text *)
  datasets : dataset * dataset;
}

val com : t
val dod : t
val eqn : t
val esp : t
val su2 : t
val xli : t

(** All six benchmarks, in Table 1 order. *)
val all : t list

(** Look a benchmark up by short name (this suite only). *)
val find : string -> t option

(** Compile the benchmark's bundled source.
    @raise Failure if it does not compile (a bug). *)
val compile : t -> Ba_minic.Compile.compiled

(** Both data sets, the paper's "testing" set first. *)
val dataset_list : t -> dataset list

(** The other data set — the cross-validation training set. *)
val sibling : t -> dataset -> dataset
