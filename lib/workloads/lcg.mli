(** Deterministic pseudo-random input generation for the workload data
    sets (bit-reproducible across runs and platforms). *)

type t

val create : int -> t

(** Next raw 16-bit value. *)
val next : t -> int

(** Uniform integer in [0, bound).
    @raise Invalid_argument on non-positive bounds. *)
val int : t -> int -> int

(** Biased byte stream resembling program text (letters/spaces dominate) —
    the paper's compressible "program text" input flavour. *)
val text_byte : t -> int

(** Near-uniform byte stream resembling compressed media — the paper's
    MPEG input flavour. *)
val media_byte : t -> int
