(** Cross-assembler for the m88 RISC simulator (four words per
    instruction), plus the two guest programs used as data sets. *)

type reg = int

type instr =
  | Halt
  | Loadi of reg * int
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | Mul of reg * reg * reg
  | Div of reg * reg * reg
  | Ld of reg * reg * int  (** rd ← mem[ra + imm] *)
  | St of reg * int * reg  (** mem[ra + imm] ← rs *)
  | Beq of reg * reg * string
  | Bne of reg * reg * string
  | Blt of reg * reg * string
  | Jmp of string
  | Out of reg
  | And_ of reg * reg * reg
  | Or_ of reg * reg * reg
  | Xor_ of reg * reg * reg
  | Shl of reg * reg * reg
  | Shr of reg * reg * reg
  | Mods of reg * reg * reg
  | Mov of reg * reg
  | Label of string

exception Error of string

(** Resolve labels and encode the four-word stream.
    @raise Error on duplicate or undefined labels. *)
val assemble : instr list -> int array

(** Pack a guest program + initial memory into the simulator's input. *)
val dataset : memsize:int -> int array -> init:(int * int) list -> int array

(** Guest: in-place bubble sort of [n] words, then a position-weighted
    checksum. *)
val bubble_sort_program : n:int -> int array

(** Guest: total Collatz walk lengths for seeds 1..count. *)
val collatz_program : count:int -> int array
