(** Application workloads beyond the SPEC stand-in suites. *)

(** Expression compiler + stack evaluator written in minic: nine
    procedures with deep (mutual) recursion.  Data sets "dp" (deeply
    nested expressions) and "fl" (long flat chains). *)
val exc : Workload.t

(** The reference outputs of the two exc data sets, computed by the
    OCaml-side evaluator — the minic program must reproduce them exactly
    (a differential test of the whole front end). *)
val exc_reference_outputs : int list * int list

val all : Workload.t list

(** Every workload in the repository: SPEC92 + SPEC95 + applications. *)
val everything : Workload.t list
