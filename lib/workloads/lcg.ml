(** Deterministic pseudo-random input generation for the workload data
    sets.  A fixed 64-bit LCG keeps every data set bit-reproducible
    across runs and platforms (OCaml ints are 63-bit; we mask to 48 bits
    of state and use the high bits). *)

type t = { mutable state : int }

let mask48 = (1 lsl 48) - 1

let create seed = { state = ((seed * 2862933555777941757) + 3037000493) land mask48 }

(** Next raw 16-bit value. *)
let next t =
  t.state <- (t.state * 25214903917 + 11) land mask48;
  (t.state lsr 32) land 0xFFFF

(** Uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Lcg.int: non-positive bound";
  next t mod bound

(** Biased byte stream resembling ASCII program text: letters and spaces
    dominate, with punctuation sprinkled in — gives an LZW compressor the
    skewed, repetitive distribution of the paper's "program text" input. *)
let text_byte t =
  let r = int t 100 in
  if r < 18 then 32 (* space *)
  else if r < 70 then 97 + int t 26 (* lowercase *)
  else if r < 80 then 101 (* extra 'e' weight *)
  else if r < 88 then 48 + int t 10 (* digits *)
  else if r < 94 then 10 (* newline *)
  else [| 40; 41; 59; 61; 42; 43 |].(int t 6)

(** Byte stream resembling compressed media: near-uniform with short
    runs, like the paper's MPEG input — much less compressible. *)
let media_byte t =
  if int t 16 = 0 then 0 (* occasional run-marker byte *) else int t 256
