(** "m88" — the 124.m88ksim stand-in (SPEC95 extension suite): a small
    RISC CPU simulator.  The simulated machine has 16 registers, a flat
    word memory and four-word instructions; the simulator's main loop is
    a fetch–decode–execute switch, the classic simulator control
    structure (and, like xli, a multiway-dispatch workload — but over a
    register machine with guarded memory and arithmetic, so the handler
    blocks are branchier). *)

let source =
  String.concat "\n"
    [
      "// RISC CPU simulator.  input: memsize, codelen, code words,";
      "// then ninit and (addr, value) pairs for initial memory.";
      "// output: the simulated program's OUTs, then retired count.";
      "fn main() {";
      "  var memsize = read();";
      "  var codelen = read();";
      "  var code = array(codelen);";
      "  var i = 0;";
      "  while (i < codelen) { code[i] = read(); i = i + 1; }";
      "  var ninit = read();";
      "  var mem = array(memsize);";
      "  var j = 0;";
      "  while (j < ninit) {";
      "    var a = read();";
      "    var v = read();";
      "    if (a >= 0 && a < memsize) { mem[a] = v; }";
      "    j = j + 1;";
      "  }";
      "  var reg = array(16);";
      "  var pc = 0;";
      "  var running = 1;";
      "  var retired = 0;";
      "  var faults = 0;";
      "  while (running) {";
      "    if (pc < 0 || pc + 3 >= codelen) { running = 0; }";
      "    else {";
      "      var op = code[pc];";
      "      var f1 = code[pc + 1];";
      "      var f2 = code[pc + 2];";
      "      var f3 = code[pc + 3];";
      "      pc = pc + 4;";
      "      switch (op) {";
      "        case 0: { running = 0; }                             // HALT";
      "        case 1: { reg[f1] = f2; }                            // LOADI rd imm";
      "        case 2: { reg[f1] = reg[f2] + reg[f3]; }             // ADD";
      "        case 3: { reg[f1] = reg[f2] - reg[f3]; }             // SUB";
      "        case 4: { reg[f1] = reg[f2] * reg[f3]; }             // MUL";
      "        case 5: {                                            // DIV (guarded)";
      "          if (reg[f3] == 0) { faults = faults + 1; reg[f1] = 0; }";
      "          else { reg[f1] = reg[f2] / reg[f3]; }";
      "        }";
      "        case 6: {                                            // LD rd ra imm";
      "          var addr = reg[f2] + f3;";
      "          if (addr < 0 || addr >= memsize) { faults = faults + 1; reg[f1] = 0; }";
      "          else { reg[f1] = mem[addr]; }";
      "        }";
      "        case 7: {                                            // ST ra imm rs";
      "          var waddr = reg[f1] + f2;";
      "          if (waddr < 0 || waddr >= memsize) { faults = faults + 1; }";
      "          else { mem[waddr] = reg[f3]; }";
      "        }";
      "        case 8: { if (reg[f1] == reg[f2]) { pc = f3; } }     // BEQ";
      "        case 9: { if (reg[f1] != reg[f2]) { pc = f3; } }     // BNE";
      "        case 10: { if (reg[f1] < reg[f2]) { pc = f3; } }     // BLT";
      "        case 11: { pc = f3; }                                // JMP";
      "        case 12: { print(reg[f1]); }                         // OUT";
      "        case 13: { reg[f1] = reg[f2] & reg[f3]; }            // AND";
      "        case 14: { reg[f1] = reg[f2] | reg[f3]; }            // OR";
      "        case 15: { reg[f1] = reg[f2] ^ reg[f3]; }            // XOR";
      "        case 16: { reg[f1] = reg[f2] << (reg[f3] & 31); }    // SHL";
      "        case 17: { reg[f1] = reg[f2] >> (reg[f3] & 31); }    // SHR";
      "        case 18: {                                           // MOD (guarded)";
      "          if (reg[f3] == 0) { faults = faults + 1; reg[f1] = 0; }";
      "          else { reg[f1] = reg[f2] % reg[f3]; }";
      "        }";
      "        case 19: { reg[f1] = reg[f2]; }                      // MOV";
      "        default: { faults = faults + 1; running = 0; }";
      "      }";
      "      retired = retired + 1;";
      "    }";
      "  }";
      "  print(retired);";
      "  print(faults);";
      "}";
    ]
