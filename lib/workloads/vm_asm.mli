(** Assembler for the xli stack-machine bytecode, plus the two guest
    programs used as the xli data sets. *)

type instr =
  | Halt
  | Push of int
  | Gload of int
  | Gstore of int
  | Gloadi  (** index on stack *)
  | Gstorei  (** value below index on stack *)
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Eq | Ne
  | Jmp of string
  | Jz of string
  | Jnz of string
  | Dup | Pop | Swap | Print | Neg
  | Label of string

exception Error of string

(** Resolve labels and encode.
    @raise Error on duplicate or undefined labels. *)
val assemble : instr list -> int array

(** Pack a bytecode program into the xli interpreter's input stream. *)
val dataset : n_globals:int -> int array -> int array

(** Newton integer square roots — deliberately very short-running
    (the paper's xli.ne pathology). *)
val newton_program : ?values:int list -> unit -> int array

(** Iterative backtracking N-queens counter. *)
val queens_program : n:int -> int array
