(** "com" — the 026.compress stand-in: an LZW compressor with an
    open-addressing string table.  Control structure mirrors the real
    thing: a hot probe loop inside the per-symbol loop, a hit/miss
    conditional, and a table-reset branch. *)

let source =
  String.concat "\n"
    [
      "// LZW compressor over a byte stream.";
      "// input: n, then n symbols in 0..255.";
      "// output: emitted code count, final dictionary size, checksum.";
      "fn hash(key) {";
      "  var h = key * 40503;";
      "  h = (h ^ (h >> 7)) & 16383;";
      "  return h;";
      "}";
      "fn main() {";
      "  var n = read();";
      "  var hkey = array(16384);";
      "  var hval = array(16384);";
      "  var i = 0;";
      "  while (i < 16384) { hkey[i] = 0 - 1; i = i + 1; }";
      "  var next_code = 256;";
      "  var prefix = read();";
      "  var count = 1;";
      "  var emitted = 0;";
      "  var checksum = 0;";
      "  while (count < n) {";
      "    var sym = read();";
      "    count = count + 1;";
      "    var key = prefix * 256 + sym;";
      "    var h = hash(key);";
      "    var found = 0 - 1;";
      "    var probing = 1;";
      "    while (probing) {";
      "      if (hkey[h] == key) {";
      "        found = hval[h];";
      "        probing = 0;";
      "      } else {";
      "        if (hkey[h] < 0) { probing = 0; }";
      "        else { h = (h + 1) & 16383; }";
      "      }";
      "    }";
      "    if (found >= 0) {";
      "      prefix = found;";
      "    } else {";
      "      emitted = emitted + 1;";
      "      checksum = (checksum * 31 + prefix) & 1048575;";
      "      if (next_code < 4096) {";
      "        hkey[h] = key;";
      "        hval[h] = next_code;";
      "        next_code = next_code + 1;";
      "      } else {";
      "        // dictionary full: reset, like compress(1) does";
      "        var j = 0;";
      "        while (j < 16384) { hkey[j] = 0 - 1; j = j + 1; }";
      "        next_code = 256;";
      "      }";
      "      prefix = sym;";
      "    }";
      "  }";
      "  emitted = emitted + 1;";
      "  checksum = (checksum * 31 + prefix) & 1048575;";
      "  print(emitted);";
      "  print(next_code);";
      "  print(checksum);";
      "}";
    ]

(** Text-like input ("in", the paper's program-text reference input). *)
let dataset_text ~n ~seed =
  let g = Lcg.create seed in
  Array.init (n + 1) (fun i -> if i = 0 then n else Lcg.text_byte g)

(** Media-like input ("st", the paper's MPEG movie data). *)
let dataset_media ~n ~seed =
  let g = Lcg.create seed in
  Array.init (n + 1) (fun i -> if i = 0 then n else Lcg.media_byte g)
