(** Application workloads beyond the SPEC stand-in suites — programs with
    richer procedure structure, used by the interprocedural experiments
    and as additional alignment subjects. *)

open Workload

let exc_expected =
  (* reference outputs computed by the OCaml-side evaluator; the test
     suite checks the minic program reproduces them exactly *)
  let deep_input, deep_out = Src_exc.dataset ~n_exprs:400 ~depth:7 ~seed:101 in
  let flat_input, flat_out = Src_exc.dataset ~n_exprs:1200 ~depth:3 ~seed:102 in
  ((deep_input, deep_out), (flat_input, flat_out))

let exc =
  let (deep_input, _), (flat_input, _) = exc_expected in
  {
    name = "exc";
    paper_name = "(application)";
    description = "expression compiler + stack evaluator (8 procedures, recursive)";
    source = Src_exc.source;
    datasets =
      ( {
          ds_name = "dp";
          input = deep_input;
          ds_description = "deeply nested expressions (heavy recursion)";
        },
        {
          ds_name = "fl";
          input = flat_input;
          ds_description = "long flat operator chains";
        } );
  }

(** Reference outputs for the two exc data sets (deep, flat). *)
let exc_reference_outputs =
  let (_, deep_out), (_, flat_out) = exc_expected in
  (deep_out, flat_out)

let all = [ exc ]

(** Every workload in the repository: SPEC92 + SPEC95 + applications. *)
let everything = Workload.all @ Workload95.all @ all
