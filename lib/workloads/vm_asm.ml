(** Assembler for the xli stack-machine bytecode (see {!Src_xli}), plus
    the two bytecode programs used as data sets. *)

type instr =
  | Halt
  | Push of int
  | Gload of int
  | Gstore of int
  | Gloadi  (** idx on stack *)
  | Gstorei  (** value below index on stack *)
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Eq | Ne
  | Jmp of string
  | Jz of string
  | Jnz of string
  | Dup | Pop | Swap | Print | Neg
  | Label of string

exception Error of string

let width = function
  | Label _ -> 0
  | Push _ | Gload _ | Gstore _ | Jmp _ | Jz _ | Jnz _ -> 2
  | _ -> 1

(** [assemble prog] resolves labels and encodes the opcode stream. *)
let assemble (prog : instr list) : int array =
  let labels = Hashtbl.create 16 in
  let pc = ref 0 in
  List.iter
    (fun i ->
      (match i with
      | Label l ->
          if Hashtbl.mem labels l then raise (Error ("duplicate label " ^ l));
          Hashtbl.replace labels l !pc
      | _ -> ());
      pc := !pc + width i)
    prog;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some a -> a
    | None -> raise (Error ("undefined label " ^ l))
  in
  let out = ref [] in
  let push v = out := v :: !out in
  List.iter
    (fun i ->
      match i with
      | Label _ -> ()
      | Halt -> push 0
      | Push n -> push 1; push n
      | Gload n -> push 2; push n
      | Gstore n -> push 3; push n
      | Gloadi -> push 4
      | Gstorei -> push 5
      | Add -> push 6
      | Sub -> push 7
      | Mul -> push 8
      | Div -> push 9
      | Mod -> push 10
      | Lt -> push 11
      | Le -> push 12
      | Eq -> push 13
      | Ne -> push 14
      | Jmp l -> push 15; push (target l)
      | Jz l -> push 16; push (target l)
      | Jnz l -> push 17; push (target l)
      | Dup -> push 18
      | Pop -> push 19
      | Swap -> push 20
      | Print -> push 21
      | Neg -> push 22)
    prog;
  Array.of_list (List.rev !out)

(** [dataset ~n_globals code] packs a bytecode program into the xli
    interpreter's input stream. *)
let dataset ~n_globals (code : int array) : int array =
  Array.concat [ [| n_globals; Array.length code |]; code ]

(* ------------------------------------------------------------------ *)

(** Newton's method integer square roots for a few constants — a
    deliberately very short-running program, mirroring the paper's xli.ne
    training-set pathology.  Globals: 0 = v, 1 = x, 2 = counter. *)
let newton_program ?(values = [ 1234567; 99980001; 42 ]) () : int array =
  let body =
    List.concat_map
      (fun v ->
        let l = Printf.sprintf "newton_%d" v in
        [
          Push v; Gstore 0;
          Push v; Gstore 1;
          Push 20; Gstore 2;
          Label l;
          (* x = (x + v / x) / 2 *)
          Gload 1; Gload 0; Gload 1; Div; Add; Push 2; Div; Gstore 1;
          Gload 2; Push 1; Sub; Dup; Gstore 2;
          Jnz l;
          Gload 1; Print;
        ])
      values
  in
  assemble (body @ [ Halt ])

(** Iterative backtracking N-queens counter.  Globals: 0 = row,
    1 = solution count, 2 = N, 3 = j; 10.. = column of the queen on each
    row. *)
let queens_program ~n : int array =
  assemble
    [
      Push n; Gstore 2;
      Push 0; Gstore 1;
      Push 0; Gstore 0;
      Push (-1); Gstore 10;  (* pos[0] = -1 *)
      Label "loop";
      (* while row >= 0 *)
      Gload 0; Push 0; Lt; Jnz "done";
      (* pos[row] += 1 *)
      Push 10; Gload 0; Add; Gloadi;
      Push 1; Add;
      Push 10; Gload 0; Add; Gstorei;
      (* if pos[row] >= N: row--, retry *)
      Push 10; Gload 0; Add; Gloadi;
      Gload 2; Lt; Jnz "check";
      Gload 0; Push 1; Sub; Gstore 0;
      Jmp "loop";
      Label "check";
      Push 0; Gstore 3;  (* j = 0 *)
      Label "safe_loop";
      Gload 3; Gload 0; Lt; Jz "safe_ok";
      (* same column? *)
      Push 10; Gload 3; Add; Gloadi;
      Push 10; Gload 0; Add; Gloadi;
      Eq; Jnz "loop";
      (* same diagonal? |pos[j] - pos[row]| == row - j *)
      Push 10; Gload 3; Add; Gloadi;
      Push 10; Gload 0; Add; Gloadi;
      Sub; Dup;
      Push 0; Lt; Jz "absok";
      Neg;
      Label "absok";
      Gload 0; Gload 3; Sub;
      Eq; Jnz "loop";
      Gload 3; Push 1; Add; Gstore 3;
      Jmp "safe_loop";
      Label "safe_ok";
      (* full board? *)
      Gload 0; Gload 2; Push 1; Sub; Eq; Jz "descend";
      Gload 1; Push 1; Add; Gstore 1;
      Jmp "loop";
      Label "descend";
      Gload 0; Push 1; Add; Gstore 0;
      Push (-1); Push 10; Gload 0; Add; Gstorei;
      Jmp "loop";
      Label "done";
      Gload 1; Print;
      Halt;
    ]
