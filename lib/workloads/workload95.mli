(** The SPEC95-style extension suite — the paper's stated next step.
    Same {!Workload.t} shape as the SPEC92 suite, so every harness
    function works on either. *)

val m88 : Workload.t  (** 124.m88ksim stand-in: RISC CPU simulator *)

val ijp : Workload.t  (** 132.ijpeg stand-in: integer DCT coder *)

val prl : Workload.t  (** 134.perl stand-in: KMP matcher + word hashing *)

val vor : Workload.t  (** 147.vortex stand-in: transactional hash store *)

val go : Workload.t  (** 099.go stand-in: board mechanics *)

(** The five SPEC95 stand-ins. *)
val all : Workload.t list

(** SPEC92 + SPEC95 suites together. *)
val everything : Workload.t list

val find : string -> Workload.t option
