(** The SPEC95-style extension suite — the paper's stated next step
    ("We would have preferred to run our algorithm on larger,
    longer-running benchmarks, including those in SPEC95").

    | paper (SPEC95) | stand-in                                    | data sets |
    |----------------|---------------------------------------------|-----------|
    | 124.m88ksim    | RISC CPU simulator                          | srt (bubble sort guest), clz (collatz guest) |
    | 132.ijpeg      | integer DCT + quantization + RLE            | sm (smooth image), nz (noisy image) |
    | 134.perl       | KMP text matcher + word hashing             | hi (match-rich), lo (match-poor) |
    | 147.vortex     | transactional hash object store             | rd (lookup-heavy), wr (churn-heavy) |
    | 099.go         | 9×9 board mechanics with flood-fill capture | a, b (game scripts) |

    Same {!Workload.t} shape as the SPEC92 suite, so every harness
    function works on either. *)

open Workload

let m88 =
  {
    name = "m88";
    paper_name = "124.m88ksim";
    description = "RISC CPU simulator (fetch-decode-execute over guest code)";
    source = Src_m88.source;
    datasets =
      ( {
          ds_name = "srt";
          input =
            Risc_asm.dataset ~memsize:256
              (Risc_asm.bubble_sort_program ~n:64)
              ~init:
                (List.init 64 (fun i -> (i, (i * 37 mod 101) + ((i * i) mod 17))));
          ds_description = "guest: bubble sort of 64 words";
        },
        {
          ds_name = "clz";
          input =
            Risc_asm.dataset ~memsize:16
              (Risc_asm.collatz_program ~count:300)
              ~init:[];
          ds_description = "guest: collatz lengths for 300 seeds";
        } );
  }

let ijp =
  {
    name = "ijp";
    paper_name = "132.ijpeg";
    description = "integer DCT image coder (quantization + zigzag RLE)";
    source = Src_ijp.source;
    datasets =
      ( {
          ds_name = "sm";
          input = Src_ijp.dataset ~nblocks:40 ~noise:0 ~seed:61;
          ds_description = "smooth gradients (sparse spectra)";
        },
        {
          ds_name = "nz";
          input = Src_ijp.dataset ~nblocks:40 ~noise:60 ~seed:62;
          ds_description = "noisy texture (dense spectra)";
        } );
  }

let prl =
  {
    name = "prl";
    paper_name = "134.perl";
    description = "text processing: KMP matching + word hashing";
    source = Src_prl.source;
    datasets =
      ( {
          ds_name = "hi";
          input =
            Src_prl.dataset ~pattern:"begin" ~n:60_000 ~match_rate:400 ~seed:71;
          ds_description = "match-rich text";
        },
        {
          ds_name = "lo";
          input = Src_prl.dataset ~pattern:"begin" ~n:60_000 ~match_rate:0 ~seed:72;
          ds_description = "match-poor text";
        } );
  }

let vor =
  {
    name = "vor";
    paper_name = "147.vortex";
    description = "in-memory object store (hash transactions + rehashing)";
    source = Src_vor.source;
    datasets =
      ( {
          ds_name = "rd";
          input = Src_vor.dataset ~nops:30_000 ~churn:5 ~seed:81;
          ds_description = "lookup-heavy transactions";
        },
        {
          ds_name = "wr";
          input = Src_vor.dataset ~nops:30_000 ~churn:30 ~seed:82;
          ds_description = "churn-heavy transactions";
        } );
  }

let go =
  {
    name = "go";
    paper_name = "099.go";
    description = "go-board mechanics (flood-fill groups, captures)";
    source = Src_go.source;
    datasets =
      ( {
          ds_name = "a";
          input = Src_go.dataset ~size:9 ~nmoves:4_000 ~seed:91;
          ds_description = "game script a";
        },
        {
          ds_name = "b";
          input = Src_go.dataset ~size:9 ~nmoves:4_000 ~seed:92;
          ds_description = "game script b";
        } );
  }

(** The five SPEC95 stand-ins. *)
let all = [ m88; ijp; prl; vor; go ]

(** Both suites together. *)
let everything = Workload.all @ all

let find name = List.find_opt (fun w -> w.name = name) all
