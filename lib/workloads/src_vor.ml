(** "vor" — the 147.vortex stand-in (SPEC95 extension suite): an
    in-memory object store.  An open-addressing hash table with
    tombstones processes a transaction stream of inserts, lookups and
    deletes, growing (rehashing) when the load factor passes 70% — the
    pointer-free skeleton of a database working set, dominated by probe
    loops and occasional long rehash bursts. *)

let source =
  String.concat "\n"
    [
      "// input: nops, then ops: (0 ins, key, val) (1 get, key) (2 del, key).";
      "// output: hits, misses, rehashes, live entries, checksum.";
      "fn main() {";
      "  var cap = 256;";
      "  var hkey = array(cap);";
      "  var hval = array(cap);";
      "  var i = 0;";
      "  while (i < cap) { hkey[i] = 0 - 1; i = i + 1; }  // -1 empty, -2 tomb";
      "  var live = 0;";
      "  var used = 0;";
      "  var hits = 0;";
      "  var misses = 0;";
      "  var rehashes = 0;";
      "  var checksum = 0;";
      "  var nops = read();";
      "  var op = 0;";
      "  while (op < nops) {";
      "    var kind = read();";
      "    var key = read();";
      "    if (kind == 0) {";
      "      var value = read();";
      "      // grow at 70% load (counting tombstones)";
      "      if (used * 10 >= cap * 7) {";
      "        rehashes = rehashes + 1;";
      "        var ncap = cap * 2;";
      "        var nkey = array(ncap);";
      "        var nval = array(ncap);";
      "        var r = 0;";
      "        while (r < ncap) { nkey[r] = 0 - 1; r = r + 1; }";
      "        var m = 0;";
      "        while (m < cap) {";
      "          if (hkey[m] >= 0) {";
      "            var h2 = (hkey[m] * 2654435) & (ncap - 1);";
      "            while (nkey[h2] >= 0) { h2 = (h2 + 1) & (ncap - 1); }";
      "            nkey[h2] = hkey[m];";
      "            nval[h2] = hval[m];";
      "          }";
      "          m = m + 1;";
      "        }";
      "        hkey = nkey;";
      "        hval = nval;";
      "        cap = ncap;";
      "        used = live;";
      "      }";
      "      var h = (key * 2654435) & (cap - 1);";
      "      var ins = 1;";
      "      while (ins) {";
      "        if (hkey[h] == key) { hval[h] = value; ins = 0; }";
      "        else {";
      "          if (hkey[h] < 0) {";
      "            if (hkey[h] == 0 - 1) { used = used + 1; }";
      "            hkey[h] = key;";
      "            hval[h] = value;";
      "            live = live + 1;";
      "            ins = 0;";
      "          } else { h = (h + 1) & (cap - 1); }";
      "        }";
      "      }";
      "    } else {";
      "      var g = (key * 2654435) & (cap - 1);";
      "      var found = 0 - 1;";
      "      var probing = 1;";
      "      while (probing) {";
      "        if (hkey[g] == key) { found = g; probing = 0; }";
      "        else {";
      "          if (hkey[g] == 0 - 1) { probing = 0; }";
      "          else { g = (g + 1) & (cap - 1); }";
      "        }";
      "      }";
      "      if (kind == 1) {";
      "        if (found >= 0) {";
      "          hits = hits + 1;";
      "          checksum = (checksum * 17 + hval[found]) & 1048575;";
      "        } else { misses = misses + 1; }";
      "      } else {";
      "        if (found >= 0) { hkey[found] = 0 - 2; live = live - 1; }";
      "        else { misses = misses + 1; }";
      "      }";
      "    }";
      "    op = op + 1;";
      "  }";
      "  print(hits);";
      "  print(misses);";
      "  print(rehashes);";
      "  print(live);";
      "  print(checksum);";
      "}";
    ]

(** [dataset ~nops ~churn ~seed]: a transaction stream over a skewed key
    space; [churn] in percent controls the delete/insert mix (lookups
    fill the rest). *)
let dataset ~nops ~churn ~seed =
  let g = Lcg.create seed in
  let acc = ref [] in
  for _ = 1 to nops do
    let key =
      (* skewed keys: small keys dominate *)
      let r = Lcg.int g 100 in
      if r < 60 then Lcg.int g 64
      else if r < 85 then Lcg.int g 1024
      else Lcg.int g 65536
    in
    let r = Lcg.int g 100 in
    if r < churn then acc := key :: 2 :: !acc (* delete *)
    else if r < churn + 30 then
      acc := Lcg.int g 100000 :: key :: 0 :: !acc (* insert *)
    else acc := key :: 1 :: !acc (* lookup *)
  done;
  Array.of_list (nops :: List.rev !acc)
