(** "esp" — the 008.espresso stand-in: a two-level boolean minimizer
    doing Quine–McCluskey-style cube merging.  Like espresso it is
    pointer-free set manipulation: repeated O(n²) passes over a cube
    cover, merging cubes that differ in a single literal, with a popcount
    inner loop — lots of short, data-dependent branches. *)

let source =
  String.concat "\n"
    [
      "// Cube-cover reduction by single-literal merging.";
      "// input: nvars, ncubes, then per cube: care mask, value mask.";
      "// output: passes, final cube count, checksum.";
      "fn popcount(x) {";
      "  var c = 0;";
      "  while (x != 0) {";
      "    x = x & (x - 1);";
      "    c = c + 1;";
      "  }";
      "  return c;";
      "}";
      "fn main() {";
      "  var nvars = read();";
      "  var ncubes = read();";
      "  var care = array(ncubes);";
      "  var value = array(ncubes);";
      "  var alive = array(ncubes);";
      "  var i = 0;";
      "  while (i < ncubes) {";
      "    care[i] = read();";
      "    value[i] = read() & care[i];";
      "    alive[i] = 1;";
      "    i = i + 1;";
      "  }";
      "  var passes = 0;";
      "  var changed = 1;";
      "  while (changed) {";
      "    changed = 0;";
      "    passes = passes + 1;";
      "    var a = 0;";
      "    while (a < ncubes) {";
      "      if (alive[a]) {";
      "        var b = a + 1;";
      "        while (b < ncubes) {";
      "          if (alive[b]) {";
      "            if (care[a] == care[b]) {";
      "              var diff = value[a] ^ value[b];";
      "              if (popcount(diff) == 1) {";
      "                // merge: drop the differing literal from cube a";
      "                care[a] = care[a] & (0 - 1 - diff);  // &= ~diff";
      "                value[a] = value[a] & care[a];";
      "                alive[b] = 0;";
      "                changed = 1;";
      "              }";
      "            } else {";
      "              // containment check: does a cover b?";
      "              if ((care[a] & care[b]) == care[a]) {";
      "                if ((value[b] & care[a]) == value[a]) {";
      "                  alive[b] = 0;";
      "                  changed = 1;";
      "                }";
      "              }";
      "            }";
      "          }";
      "          b = b + 1;";
      "        }";
      "      }";
      "      a = a + 1;";
      "    }";
      "  }";
      "  var live = 0;";
      "  var checksum = 0;";
      "  var k = 0;";
      "  while (k < ncubes) {";
      "    if (alive[k]) {";
      "      live = live + 1;";
      "      checksum = (checksum * 37 + care[k] * 3 + value[k]) & 1048575;";
      "    }";
      "    k = k + 1;";
      "  }";
      "  print(passes);";
      "  print(live);";
      "  print(checksum);";
      "  print(nvars);";
      "}";
    ]

(** [dataset ~nvars ~ncubes ~seed] draws a random cube cover. *)
let dataset ~nvars ~ncubes ~seed =
  let g = Lcg.create seed in
  let buf = ref [ ncubes; nvars ] in
  for _ = 1 to ncubes do
    let care = ref 0 and value = ref 0 in
    for v = 0 to nvars - 1 do
      if Lcg.int g 3 < 2 then begin
        care := !care lor (1 lsl v);
        if Lcg.int g 2 = 0 then value := !value lor (1 lsl v)
      end
    done;
    buf := !value :: !care :: !buf
  done;
  Array.of_list (List.rev !buf)
