(** "ijp" — the 132.ijpeg stand-in (SPEC95 extension suite): an integer
    JPEG-style encoder front half.  For each 8×8 block of a synthetic
    image: 2-D integer DCT (naive O(8⁴) with a fixed-point cosine table
    supplied in the input), quantization, zigzag scan and run-length
    coding — dense loop nests ended by the data-dependent RLE
    branches. *)

let source =
  String.concat "\n"
    [
      "// input: 64 cosine-table entries (scale 1024), 64 quant entries,";
      "//        64 zigzag indices, nblocks, then nblocks x 64 samples.";
      "// output: nonzero coefficients, total RLE runs, checksum.";
      "fn main() {";
      "  var cosv = array(64);";
      "  var i = 0;";
      "  while (i < 64) { cosv[i] = read(); i = i + 1; }";
      "  var quant = array(64);";
      "  var q = 0;";
      "  while (q < 64) { quant[q] = read(); q = q + 1; }";
      "  var zig = array(64);";
      "  var z = 0;";
      "  while (z < 64) { zig[z] = read(); z = z + 1; }";
      "  var nblocks = read();";
      "  var block = array(64);";
      "  var coef = array(64);";
      "  var nonzero = 0;";
      "  var runs = 0;";
      "  var checksum = 0;";
      "  var b = 0;";
      "  while (b < nblocks) {";
      "    var s = 0;";
      "    while (s < 64) { block[s] = read() - 128; s = s + 1; }";
      "    // 2-D DCT: coef[u,v] = sum_xy block[x,y] cos[x,u] cos[y,v]";
      "    var u = 0;";
      "    while (u < 8) {";
      "      var v = 0;";
      "      while (v < 8) {";
      "        var acc = 0;";
      "        var x = 0;";
      "        while (x < 8) {";
      "          var rowsum = 0;";
      "          var y = 0;";
      "          while (y < 8) {";
      "            rowsum = rowsum + block[x * 8 + y] * cosv[y * 8 + v];";
      "            y = y + 1;";
      "          }";
      "          acc = acc + (rowsum / 32) * cosv[x * 8 + u];";
      "          x = x + 1;";
      "        }";
      "        coef[u * 8 + v] = acc / 32768;";
      "        v = v + 1;";
      "      }";
      "      u = u + 1;";
      "    }";
      "    // quantize + zigzag + RLE";
      "    var run = 0;";
      "    var k = 0;";
      "    while (k < 64) {";
      "      var c = coef[zig[k]];";
      "      var qv = quant[zig[k]];";
      "      var level = 0;";
      "      if (c >= 0) { level = (c + qv / 2) / qv; }";
      "      else { level = 0 - ((qv / 2 - c) / qv); }";
      "      if (level == 0) {";
      "        run = run + 1;";
      "        if (run == 16) { runs = runs + 1; run = 0; }";
      "      } else {";
      "        nonzero = nonzero + 1;";
      "        runs = runs + 1;";
      "        checksum = (checksum * 31 + level + run * 7) & 1048575;";
      "        run = 0;";
      "      }";
      "      k = k + 1;";
      "    }";
      "    if (run > 0) { runs = runs + 1; }  // end-of-block run";
      "    b = b + 1;";
      "  }";
      "  print(nonzero);";
      "  print(runs);";
      "  print(checksum);";
      "}";
    ]

let cos_table () =
  (* c[x][u] = cos((2x+1) u pi / 16), scaled by 1024 *)
  Array.init 64 (fun i ->
      let x = i / 8 and u = i mod 8 in
      let v =
        cos (float_of_int ((2 * x) + 1) *. float_of_int u *. Float.pi /. 16.0)
      in
      int_of_float (Float.round (v *. 1024.0)))

let quant_table () =
  (* luminance-ish: coarser towards high frequencies *)
  Array.init 64 (fun i ->
      let u = i / 8 and v = i mod 8 in
      4 + (2 * (u + v)))

let zigzag () =
  (* standard zigzag order of an 8x8 block *)
  let order = Array.make 64 0 in
  let k = ref 0 in
  for s = 0 to 14 do
    let coords =
      List.init (s + 1) (fun i -> (i, s - i))
      |> List.filter (fun (x, y) -> x < 8 && y < 8)
    in
    let coords = if s mod 2 = 0 then List.rev coords else coords in
    List.iter
      (fun (x, y) ->
        order.(!k) <- (x * 8) + y;
        incr k)
      coords
  done;
  order

(** [dataset ~nblocks ~noise ~seed] packs tables + synthetic image
    blocks; [noise = 0] gives smooth gradients (sparse spectra, long
    runs), larger values add texture (dense spectra). *)
let dataset ~nblocks ~noise ~seed =
  let g = Lcg.create seed in
  let blocks =
    Array.init (nblocks * 64) (fun i ->
        let x = i / 8 mod 8 and y = i mod 8 and b = i / 64 in
        let base = 128 + ((x - 4) * 6) + ((y - 4) * 4) + (b mod 17) in
        let n = if noise = 0 then 0 else Lcg.int g (2 * noise) - noise in
        max 0 (min 255 (base + n)))
  in
  Array.concat
    [ cos_table (); quant_table (); zigzag (); [| nblocks |]; blocks ]
