(** The benchmark registry: six programs × two data sets, mirroring the
    paper's Table 1.

    | paper        | stand-in                               | data sets |
    |--------------|----------------------------------------|-----------|
    | 026.compress | LZW compressor                         | in (text), st (media) |
    | 015.doduc    | fixed-point thermohydraulic relaxation  | re (ref), sm (small)  |
    | 023.eqntott  | truth-table build + quicksort          | fx, ip    |
    | 008.espresso | cube-cover minimizer                   | ti, tl    |
    | 089.su2cor   | lattice sweep (loop-dominated)         | re, sh    |
    | 022.li       | bytecode VM interpreter                | ne (newton, tiny), q7 (7-queens) |

    Data-set sizes are scaled so the full experiment harness runs in
    seconds rather than hours; the control-flow {e shapes} (hot loops,
    probe chains, dispatch switches, input-dependent branches) are what
    the alignment experiments depend on. *)

type dataset = {
  ds_name : string;  (** e.g. "in" *)
  input : int array;  (** the stream [read()] consumes *)
  ds_description : string;
}

type t = {
  name : string;  (** e.g. "com" *)
  paper_name : string;  (** e.g. "026.compress" *)
  description : string;
  source : string;  (** minic source text *)
  datasets : dataset * dataset;
}

let com =
  {
    name = "com";
    paper_name = "026.compress";
    description = "Lempel-Ziv compressor (LZW, open-addressing string table)";
    source = Src_com.source;
    datasets =
      ( {
          ds_name = "in";
          input = Src_com.dataset_text ~n:24_000 ~seed:11;
          ds_description = "program text (skewed, compressible)";
        },
        {
          ds_name = "st";
          input = Src_com.dataset_media ~n:24_000 ~seed:12;
          ds_description = "movie data (near-uniform bytes)";
        } );
  }

let dod =
  {
    name = "dod";
    paper_name = "015.doduc";
    description = "nuclear reactor thermohydraulic simulation (fixed point)";
    source = Src_dod.source;
    datasets =
      ( {
          ds_name = "re";
          input = Src_dod.dataset ~steps:160 ~ncells:220 ~seed:21;
          ds_description = "ref input (long relaxation)";
        },
        {
          ds_name = "sm";
          input = Src_dod.dataset ~steps:40 ~ncells:150 ~seed:22;
          ds_description = "small input";
        } );
  }

let eqn =
  {
    name = "eqn";
    paper_name = "023.eqntott";
    description = "translates boolean equations to truth tables";
    source = Src_eqn.source;
    datasets =
      ( {
          ds_name = "fx";
          input = Src_eqn.dataset ~k:12 ~nterms:24 ~seed:31;
          ds_description = "fixed-to-floating-point encoder equations";
        },
        {
          ds_name = "ip";
          input = Src_eqn.dataset ~k:12 ~nterms:10 ~seed:32;
          ds_description = "priority encoder equations (sparser terms)";
        } );
  }

let esp =
  {
    name = "esp";
    paper_name = "008.espresso";
    description = "boolean function minimizer (cube-cover merging)";
    source = Src_esp.source;
    datasets =
      ( {
          ds_name = "ti";
          input = Src_esp.dataset ~nvars:14 ~ncubes:380 ~seed:41;
          ds_description = "ti PLA table";
        },
        {
          ds_name = "tl";
          input = Src_esp.dataset ~nvars:12 ~ncubes:300 ~seed:42;
          ds_description = "tial PLA table";
        } );
  }

let su2 =
  {
    name = "su2";
    paper_name = "089.su2cor";
    description = "statistical mechanics lattice calculation";
    source = Src_su2.source;
    datasets =
      ( {
          ds_name = "re";
          input = Src_su2.dataset ~size:24 ~sweeps:90 ~seed:51;
          ds_description = "ref lattice";
        },
        {
          ds_name = "sh";
          input = Src_su2.dataset ~size:16 ~sweeps:60 ~seed:52;
          ds_description = "short run";
        } );
  }

let xli =
  {
    name = "xli";
    paper_name = "022.li";
    description = "interpreter (stack-machine VM) running bytecode programs";
    source = Src_xli.source;
    datasets =
      ( {
          ds_name = "ne";
          input = Vm_asm.dataset ~n_globals:8 (Vm_asm.newton_program ());
          ds_description = "Newton's method (very short run)";
        },
        {
          ds_name = "q7";
          input = Vm_asm.dataset ~n_globals:20 (Vm_asm.queens_program ~n:7);
          ds_description = "7-queens problem";
        } );
  }

(** All six benchmarks, in the paper's Table 1 order. *)
let all = [ com; dod; eqn; esp; su2; xli ]

(** [find name] looks a benchmark up by short name. *)
let find name = List.find_opt (fun w -> w.name = name) all

(** [compile w] runs the minic front end on the benchmark source.
    @raise Failure if the bundled source does not compile (a bug). *)
let compile (w : t) = Ba_minic.Compile.compile_exn w.source

(** Both data sets as a list, first the paper's "testing" set. *)
let dataset_list (w : t) = [ fst w.datasets; snd w.datasets ]

(** [sibling w ds] is the other data set of the benchmark — the paper's
    cross-validation training set for [ds]. *)
let sibling (w : t) (ds : dataset) =
  let a, b = w.datasets in
  if ds.ds_name = a.ds_name then b else a
