(** Parameterized synthetic whole-program-scale CFGs.

    The minic benchmarks top out around a hundred blocks per procedure;
    production layout optimizers (Codestitcher, BOLT — PAPERS.md) chew
    on whole-binary CFGs of 10⁵–10⁶ blocks.  These generators produce
    such instances deterministically — no RNG, every block and count a
    closed-form function of [(family, n, invocations)] — so bench rows
    are reproducible bit-for-bit and the expected block/edge counts can
    be asserted independently in tests.

    Three shapes cover the structures that dominate real programs:

    - {!Loop_nest}: a deep nest (depth ≤ 16) of counted loops around a
      long straight-line body — geometric frequency growth toward the
      innermost body, the classic hot-loop profile.
    - {!Switch}: a cascade of [Multiway] jump tables, each fanning out
      to its arm blocks which reconverge on the next table — wide,
      shallow, harmonically skewed.
    - {!Interp}: one huge dispatch [Multiway] (≈ n/4 arms) feeding
      fixed-length handler chains that loop back to the dispatcher —
      the interpreter main-loop shape, geometrically skewed toward hot
      opcodes.

    Every instance has exactly [n] blocks, entry 0, [Exit] at n−1, is
    fully reachable ([Cfg.validate ~strict] passes), and ships a
    flow-conserving (loop-nest, interp) or locally consistent (switch)
    edge profile that passes [Profile.validate_proc] and [Lint.gate]. *)

open Ba_cfg
module Profile = Ba_profile.Profile

type family = Loop_nest | Switch | Interp

let all = [ Loop_nest; Switch; Interp ]

let name = function
  | Loop_nest -> "loop-nest"
  | Switch -> "switch"
  | Interp -> "interp"

let find s = List.find_opt (fun f -> name f = s) all

(** Smallest supported instance; below this the shapes degenerate. *)
let min_blocks = 8

(** Arms per jump table in the {!Switch} cascade. *)
let switch_width = 64

(** Handler chain length in {!Interp} (the first handler absorbs the
    remainder, so arm count ≈ (n−3)/4). *)
let handler_len = 4

(** Loop-nest depth: as deep as n allows, capped so the innermost
    frequency (2 per entry, compounded) stays far from overflow. *)
let loop_depth ~n = max 1 (min 16 ((n - 3) / 2))

(* deterministic block sizes — arbitrary but varied, so fetch-window
   terms in Ext-TSP-style objectives see non-trivial byte layouts *)
let size_of id = 1 + ((id * 7) + 3) mod 13

let check fam ~n =
  if n < min_blocks then
    invalid_arg
      (Printf.sprintf "Scale.%s: n = %d below minimum %d" (name fam) n
         min_blocks)

(** Distinct static CFG edges of [cfg fam ~n], in closed form (asserted
    against [Cfg.n_edges] in the tests). *)
let expected_edges fam ~n =
  check fam ~n;
  match fam with
  | Loop_nest -> n + loop_depth ~n - 1
  | Interp -> n + max 1 ((n - 3) / handler_len) - 1
  | Switch ->
      let stride = switch_width + 1 in
      let heads = ((n - 3) / stride) + 1 in
      let arms = n - 2 - heads in
      (* a head whose section has no arm blocks left degrades to a
         single edge straight to the exit *)
      let empty_head = if (n - 3) mod stride = 0 then 1 else 0 in
      1 + (2 * arms) + empty_head

(* ------------------------------------------------------------------ *)

(* Loop nest: 0 entry → header 1 → … → header D → body chain → latch D;
   latch j closes loop j; header j's exit arm unwinds to latch (j−1)
   (to the procedure exit for j = 1).  Trip count 2 per entry. *)
let build_loop_nest ~n ~invocations =
  let dd = loop_depth ~n in
  let bb = n - (2 * dd) - 2 in
  let latch j = dd + bb + j in
  let inner j = if j < dd then j + 1 else dd + 1 in
  let unwind j = if j = 1 then n - 1 else latch (j - 1) in
  let term id =
    if id = 0 then Block.Goto 1
    else if id <= dd then Block.Branch { t = inner id; f = unwind id }
    else if id < dd + bb then Block.Goto (id + 1)
    else if id = dd + bb then Block.Goto (latch dd)
    else if id < n - 1 then Block.Goto (id - (dd + bb)) (* latch j → header j *)
    else Block.Exit
  in
  let entries = Array.make (dd + 1) 0 in
  entries.(1) <- invocations;
  for j = 2 to dd do
    entries.(j) <- 2 * entries.(j - 1)
  done;
  let triples = ref [ (0, 1, invocations) ] in
  for j = 1 to dd do
    triples := (j, inner j, 2 * entries.(j)) :: (j, unwind j, entries.(j))
               :: (latch j, j, 2 * entries.(j)) :: !triples
  done;
  let body_count = 2 * entries.(dd) in
  for i = dd + 1 to dd + bb do
    let dst = if i = dd + bb then latch dd else i + 1 in
    triples := (i, dst, body_count) :: !triples
  done;
  (term, !triples)

(* Switch cascade: sections of (head + up to switch_width arm blocks);
   each head fans out over its arms, each arm falls through to the next
   head (the exit after the last section). *)
let build_switch ~n ~invocations =
  let stride = switch_width + 1 in
  let head_of id = 1 + ((id - 1) / stride * stride) in
  let section_hi id = min (head_of id + switch_width) (n - 2) in
  let next_of id = if section_hi id = n - 2 then n - 1 else section_hi id + 1 in
  let arm_count id = max 1 (invocations / (id - head_of id)) in
  let term id =
    if id = 0 then Block.Goto 1
    else if id = n - 1 then Block.Exit
    else if id = head_of id then begin
      let lo = id + 1 and hi = section_hi id in
      if lo > hi then Block.Goto (n - 1)
      else Block.Multiway (Array.init (hi - lo + 1) (fun i -> lo + i))
    end
    else Block.Goto (next_of id)
  in
  let triples = ref [] in
  let first_total = ref 0 in
  let m = ref 1 in
  while !m <= n - 2 do
    let lo = !m + 1 and hi = section_hi !m in
    if lo > hi then triples := (!m, n - 1, 1) :: !triples
    else
      for p = lo to hi do
        let c = arm_count p in
        if !m = 1 then first_total := !first_total + c;
        triples := (!m, p, c) :: (p, next_of p, c) :: !triples
      done;
    m := !m + stride
  done;
  triples := (0, 1, max 1 !first_total) :: !triples;
  (term, !triples)

(* Interpreter: one dispatch Multiway over all handler heads plus an
   exit arm; handlers are fixed-length chains looping back to the
   dispatcher; handler frequencies fall geometrically (hot opcodes). *)
let build_interp ~n ~invocations =
  let hh = max 1 ((n - 3) / handler_len) in
  let rem = n - 3 - (hh * handler_len) in
  (* handler 0 spans [2, 2+handler_len+rem); the rest are handler_len *)
  let start h = if h = 0 then 2 else 2 + handler_len + rem + ((h - 1) * handler_len) in
  let handler_of id =
    if id < 2 + handler_len + rem then 0
    else 1 + ((id - 2 - handler_len - rem) / handler_len)
  in
  let last h = start (h + 1) - 1 in
  let freq h = max 1 (invocations lsr min h 30) in
  let term id =
    if id = 0 then Block.Goto 1
    else if id = 1 then
      Block.Multiway
        (Array.init (hh + 1) (fun h -> if h = hh then n - 1 else start h))
    else if id = n - 1 then Block.Exit
    else if id = last (handler_of id) then Block.Goto 1
    else Block.Goto (id + 1)
  in
  let triples = ref [ (0, 1, 1); (1, n - 1, 1) ] in
  for h = 0 to hh - 1 do
    let f = freq h in
    triples := (1, start h, f) :: !triples;
    for p = start h to last h do
      let dst = if p = last h then 1 else p + 1 in
      triples := (p, dst, f) :: !triples
    done
  done;
  (term, !triples)

(* ------------------------------------------------------------------ *)

let builder = function
  | Loop_nest -> build_loop_nest
  | Switch -> build_switch
  | Interp -> build_interp

(** [instance fam ~n ~invocations] builds the CFG (exactly [n] blocks)
    and its deterministic analytic profile in one pass.
    @raise Invalid_argument when [n < min_blocks] or [invocations < 1]. *)
let instance fam ~n ~invocations =
  check fam ~n;
  if invocations < 1 then invalid_arg "Scale.instance: invocations < 1";
  let term, triples = builder fam ~n ~invocations in
  let blocks =
    Array.init n (fun id -> Block.make ~id ~size:(size_of id) (term id))
  in
  let g = Cfg.make ~name:(Printf.sprintf "%s-%d" (name fam) n) ~entry:0 blocks in
  (g, Profile.of_assoc ~n_blocks:n triples)

(** The CFG alone (profile discarded). *)
let cfg fam ~n = fst (instance fam ~n ~invocations:1024)
