(** Minimal dependency-free JSON: canonical emission for the
    observability artifacts plus a strict parser for validating them in
    tests.  Floats emit as ["%.6f"]; non-finite floats emit [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** Compact canonical rendering (insertion-ordered keys). *)
val to_string : t -> string

(** [write_file path v] writes [to_string v] plus a trailing newline. *)
val write_file : string -> t -> unit

(** Strict parse of a complete JSON document. *)
val parse : string -> (t, string) result

(** [member k v] is the value of field [k] when [v] is an object. *)
val member : string -> t -> t option

val to_list : t -> t list option

(** Numeric payload of an [Int] or [Float]. *)
val to_number : t -> float option

val to_str : t -> string option
