(** Lightweight spans, collected per task into single-writer buffers.

    A span is one named interval on the observability clock, tagged
    with the id of the task that produced it and the id of its
    enclosing span.  Each task owns exactly one {!buf}; a buffer is
    only ever written by the domain running its task, so recording is
    lock-free by construction.  After the task joins, the caller reads
    the buffer out as an immutable array ({!spans}) and merges buffers
    deterministically by task index (see {!Trace}).

    A disabled buffer records nothing: {!with_span} costs one branch
    and calls the thunk directly, which is what keeps the default
    (null-sink) build bit-identical to a build without observability. *)

type span = {
  id : int;  (** per-task open order, 0-based *)
  parent : int;  (** id of the enclosing span; -1 for a root *)
  task : int;  (** owning task id *)
  name : string;
  start_ns : int64;
  stop_ns : int64;
}

type buf = {
  task : int;
  enabled : bool;
  mutable next_id : int;
  mutable stack : int list;  (** ids of currently open spans *)
  mutable closed : span list;  (** completed spans, most recent first *)
}

let create ~task ~enabled = { task; enabled; next_id = 0; stack = []; closed = [] }

(** The shared disabled buffer, for callers with nothing to trace. *)
let null = create ~task:(-1) ~enabled:false

let enabled buf = buf.enabled

(** [with_span buf name f] runs [f ()] inside a span named [name];
    the span closes (and is recorded) even if [f] raises.  On a
    disabled buffer this is exactly [f ()]. *)
let with_span buf name f =
  if not buf.enabled then f ()
  else begin
    let id = buf.next_id in
    buf.next_id <- id + 1;
    let parent = match buf.stack with [] -> -1 | p :: _ -> p in
    buf.stack <- id :: buf.stack;
    let start_ns = Mono.now_ns () in
    let finally () =
      let stop_ns = Mono.now_ns () in
      buf.stack <- List.tl buf.stack;
      buf.closed <-
        { id; parent; task = buf.task; name; start_ns; stop_ns } :: buf.closed
    in
    Fun.protect ~finally f
  end

(** Completed spans in open order (the immutable read-out). *)
let spans buf : span array =
  let a = Array.of_list buf.closed in
  Array.sort (fun a b -> compare a.id b.id) a;
  a

let duration_ns s = Int64.sub s.stop_ns s.start_ns
