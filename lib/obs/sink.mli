(** Metric sinks: Null (default, renders nothing), a stderr summary,
    and JSON/CSV snapshot writers. *)

type t = Null | Stderr | Json_file of string | Csv_file of string

(** Map a [--metrics] argument: ["-"]/["stderr"] → Stderr, [*.csv] →
    CSV, anything else → JSON. *)
val of_spec : string -> t

(** The snapshot as a JSON document ([counters]/[gauges]/[hk_gap]). *)
val snapshot_json : Metrics.snapshot -> Json.t

(** The snapshot as [metric,value] CSV lines (header first). *)
val snapshot_csv : Metrics.snapshot -> string list

val emit_snapshot : t -> Metrics.snapshot -> unit

(** Render the current global registry through the sink. *)
val emit : t -> unit
