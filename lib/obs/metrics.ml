(** The typed counter/gauge registry, aggregated lock-free across
    domains.

    Counters are process-global [Atomic.t] cells: increments from
    concurrent solver tasks commute, so the final totals are
    independent of the job count and of scheduling.  Collection is
    always on — one [fetch_and_add] per {e solve} or {e local-search
    run}, never per move — and nothing is ever printed unless a
    {!Sink} is asked to emit, so the default build's output is
    untouched.

    The catalogue (see docs/OBSERVABILITY.md):
    - solver work: 2-opt / 3-opt improving moves, double-bridge kicks,
      restarts (construction starts), exact vs heuristic solves;
    - degradation: budget exhaustions, fallback transitions;
    - engine: tasks executed;
    - validation: lint diagnostics by severity, alignment certificates
      checked and failed (the ba_check layer);
    and two gauges (candidate-list width, job count) plus the
    gap-to-Held–Karp distribution observed per procedure. *)

type counter =
  | Moves_2opt  (** improving 2-opt moves applied *)
  | Moves_3opt  (** improving pure-3-opt moves applied *)
  | Kicks  (** double-bridge perturbations *)
  | Restarts  (** solver construction starts (runs) *)
  | Exact_solves  (** instances solved to proven optimality *)
  | Heuristic_solves  (** instances solved by iterated 3-opt *)
  | Budget_exhaustions  (** solves that hit the wall-clock/move budget *)
  | Fallbacks  (** procedures degraded along the method chain *)
  | Tasks_run  (** engine tasks executed *)
  | Lint_errors  (** Error-severity lint diagnostics emitted *)
  | Lint_warnings  (** Warning-severity lint diagnostics emitted *)
  | Lint_infos  (** Info-severity lint diagnostics emitted *)
  | Certs_checked  (** alignment certificates validated *)
  | Certs_failed  (** alignment certificates rejected *)

let all_counters =
  [
    (Moves_2opt, "solver.moves.2opt");
    (Moves_3opt, "solver.moves.3opt");
    (Kicks, "solver.kicks");
    (Restarts, "solver.restarts");
    (Exact_solves, "solver.exact_solves");
    (Heuristic_solves, "solver.heuristic_solves");
    (Budget_exhaustions, "solver.budget_exhaustions");
    (Fallbacks, "align.fallbacks");
    (Tasks_run, "engine.tasks_run");
    (Lint_errors, "lint.errors");
    (Lint_warnings, "lint.warnings");
    (Lint_infos, "lint.infos");
    (Certs_checked, "check.certs_checked");
    (Certs_failed, "check.certs_failed");
  ]

let counter_name c = List.assoc c all_counters

let counter_index = function
  | Moves_2opt -> 0
  | Moves_3opt -> 1
  | Kicks -> 2
  | Restarts -> 3
  | Exact_solves -> 4
  | Heuristic_solves -> 5
  | Budget_exhaustions -> 6
  | Fallbacks -> 7
  | Tasks_run -> 8
  | Lint_errors -> 9
  | Lint_warnings -> 10
  | Lint_infos -> 11
  | Certs_checked -> 12
  | Certs_failed -> 13

let n_counters = List.length all_counters
let counters : int Atomic.t array = Array.init n_counters (fun _ -> Atomic.make 0)

let incr ?(n = 1) c =
  if n <> 0 then ignore (Atomic.fetch_and_add counters.(counter_index c) n)

let get c = Atomic.get counters.(counter_index c)

(* ---------------- gauges ---------------- *)

type gauge =
  | Neighbor_width  (** 3-opt candidate-list width (last solve's config) *)
  | Jobs  (** executor domain count of the last fan-out *)

let all_gauges = [ (Neighbor_width, "solver.neighbor_width"); (Jobs, "engine.jobs") ]
let gauge_name g = List.assoc g all_gauges
let gauge_index = function Neighbor_width -> 0 | Jobs -> 1
let gauges : int Atomic.t array = Array.init 2 (fun _ -> Atomic.make 0)
let set_gauge g v = Atomic.set gauges.(gauge_index g) v
let get_gauge g = Atomic.get gauges.(gauge_index g)

(* ---------------- gap-to-Held–Karp distribution ---------------- *)

(* fixed-point micro-units so the aggregate stays lock-free on int
   atomics; gaps are small ratios, so micro precision is plenty *)
let gap_count = Atomic.make 0
let gap_sum_micro = Atomic.make 0
let gap_max_micro = Atomic.make 0

(** [observe_hk_gap g] records one procedure's relative gap between the
    solved penalty and its Held–Karp lower bound (clamped at 0). *)
let observe_hk_gap g =
  let micro = int_of_float (Float.max 0. g *. 1e6) in
  ignore (Atomic.fetch_and_add gap_count 1);
  ignore (Atomic.fetch_and_add gap_sum_micro micro);
  let rec raise_max () =
    let cur = Atomic.get gap_max_micro in
    if micro > cur && not (Atomic.compare_and_set gap_max_micro cur micro) then
      raise_max ()
  in
  raise_max ()

type gap_summary = { count : int; mean : float; max : float }

let hk_gap () =
  let n = Atomic.get gap_count in
  {
    count = n;
    mean =
      (if n = 0 then 0.
       else float_of_int (Atomic.get gap_sum_micro) /. 1e6 /. float_of_int n);
    max = float_of_int (Atomic.get gap_max_micro) /. 1e6;
  }

(* ---------------- snapshot / reset ---------------- *)

(** One immutable read-out of the whole registry, for sinks. *)
type snapshot = {
  counter_values : (string * int) list;  (** catalogue order *)
  gauge_values : (string * int) list;
  gap : gap_summary;
}

let snapshot () =
  {
    counter_values = List.map (fun (c, name) -> (name, get c)) all_counters;
    gauge_values = List.map (fun (g, name) -> (name, get_gauge g)) all_gauges;
    gap = hk_gap ();
  }

(** Zero every cell (tests only — production code never resets). *)
let reset () =
  Array.iter (fun a -> Atomic.set a 0) counters;
  Array.iter (fun a -> Atomic.set a 0) gauges;
  Atomic.set gap_count 0;
  Atomic.set gap_sum_micro 0;
  Atomic.set gap_max_micro 0
